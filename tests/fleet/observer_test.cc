// Observability-plane fleet tests: StatusRequest/StatusReply wire codecs,
// HandleStatus aggregation and its bounded-staleness cache, the observer's
// zero-perturbation guarantee (an observed fleet run produces bit-identical
// campaign results to an unobserved one), the loopback FetchStatus poll, the
// /metrics HTTP endpoint, and the eof-top / fleet-metrics renderers.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/coverage_serial.h"
#include "src/core/fuzzer.h"
#include "src/fleet/observer.h"
#include "src/fleet/orchestrator.h"
#include "src/fleet/proto.h"
#include "src/fleet/status_http.h"
#include "src/fleet/transport.h"
#include "src/fleet/worker.h"
#include "src/os/all_oses.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/prometheus.h"

namespace eof {
namespace fleet {
namespace {

FuzzerConfig TinyConfig(uint64_t seed = 7) {
  FuzzerConfig config;
  config.os_name = "zephyr";
  config.seed = seed;
  config.budget = 30 * kVirtualSecond;
  config.sample_points = 4;
  return config;
}

StatusReplyMsg FullReply() {
  StatusReplyMsg reply;
  reply.server_ms = 123456;
  reply.assembled_ms = 123400;
  reply.heartbeat_interval_ms = 250;
  CampaignStatusWire campaign;
  campaign.campaign_id = "c1";
  campaign.os_name = "zephyr";
  campaign.board_name = "default";
  campaign.budget_us = 30000000;
  campaign.shards_total = 4;
  campaign.shards_pending = 1;
  campaign.shards_leased = 2;
  campaign.shards_done = 1;
  campaign.coverage = 234;
  campaign.corpus = 17;
  campaign.execs = 9001;
  campaign.crashes = 2;
  campaign.frontier_us = 1500000;
  campaign.leases_granted = 5;
  campaign.leases_reclaimed = 1;
  campaign.rejected_uploads = 3;
  campaign.workers_lost = 1;
  campaign.corpus_syncs = 8;
  campaign.journal_dropped = 4;
  campaign.journal_dropped_workers = 11;
  campaign.finalized = 1;
  ShardStatusWire shard;
  shard.shard = 2;
  shard.phase = 1;
  shard.lease_id = 42;
  shard.worker = 7;
  shard.attempt = 3;
  shard.deadline_ms = 124000;
  shard.elapsed_us = 2500000;
  shard.execs = 321;
  campaign.shards.push_back(shard);
  BugStatusWire bug;
  bug.catalog_id = 9;
  bug.detector = "exception";
  bug.kind = "double free";
  bug.excerpt = "PANIC: double\nfree";
  bug.at_us = 777;
  bug.board = 1;
  campaign.bugs.push_back(bug);
  reply.campaigns.push_back(campaign);
  WorkerStatusWire worker;
  worker.worker_id = 7;
  worker.name = "rack0/w7";
  worker.last_seen_ms = 123300;
  worker.lost = 0;
  worker.execs = 4567;
  worker.leases = 2;
  worker.syncs = 31;
  worker.journal_dropped = 6;
  reply.workers.push_back(worker);
  return reply;
}

TEST(StatusProtoTest, RequestRoundtrip) {
  StatusRequestMsg request;
  request.campaign_id = "only-this";
  request.include_shards = 0;
  auto decoded = DecodeStatusRequest(Encode(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->campaign_id, "only-this");
  EXPECT_EQ(decoded->include_shards, 0);
}

TEST(StatusProtoTest, ReplyRoundtripPreservesEveryField) {
  StatusReplyMsg reply = FullReply();
  auto decoded = DecodeStatusReply(Encode(reply));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->server_ms, 123456u);
  EXPECT_EQ(decoded->assembled_ms, 123400u);
  EXPECT_EQ(decoded->heartbeat_interval_ms, 250u);
  ASSERT_EQ(decoded->campaigns.size(), 1u);
  const CampaignStatusWire& campaign = decoded->campaigns[0];
  EXPECT_EQ(campaign.campaign_id, "c1");
  EXPECT_EQ(campaign.os_name, "zephyr");
  EXPECT_EQ(campaign.board_name, "default");
  EXPECT_EQ(campaign.budget_us, 30000000u);
  EXPECT_EQ(campaign.shards_total, 4u);
  EXPECT_EQ(campaign.shards_pending, 1u);
  EXPECT_EQ(campaign.shards_leased, 2u);
  EXPECT_EQ(campaign.shards_done, 1u);
  EXPECT_EQ(campaign.coverage, 234u);
  EXPECT_EQ(campaign.corpus, 17u);
  EXPECT_EQ(campaign.execs, 9001u);
  EXPECT_EQ(campaign.crashes, 2u);
  EXPECT_EQ(campaign.frontier_us, 1500000u);
  EXPECT_EQ(campaign.leases_granted, 5u);
  EXPECT_EQ(campaign.leases_reclaimed, 1u);
  EXPECT_EQ(campaign.rejected_uploads, 3u);
  EXPECT_EQ(campaign.workers_lost, 1u);
  EXPECT_EQ(campaign.corpus_syncs, 8u);
  EXPECT_EQ(campaign.journal_dropped, 4u);
  EXPECT_EQ(campaign.journal_dropped_workers, 11u);
  EXPECT_EQ(campaign.finalized, 1u);
  ASSERT_EQ(campaign.shards.size(), 1u);
  EXPECT_EQ(campaign.shards[0].shard, 2u);
  EXPECT_EQ(campaign.shards[0].phase, 1u);
  EXPECT_EQ(campaign.shards[0].lease_id, 42u);
  EXPECT_EQ(campaign.shards[0].worker, 7u);
  EXPECT_EQ(campaign.shards[0].attempt, 3u);
  EXPECT_EQ(campaign.shards[0].deadline_ms, 124000u);
  EXPECT_EQ(campaign.shards[0].elapsed_us, 2500000u);
  EXPECT_EQ(campaign.shards[0].execs, 321u);
  ASSERT_EQ(campaign.bugs.size(), 1u);
  EXPECT_EQ(campaign.bugs[0].catalog_id, 9u);
  EXPECT_EQ(campaign.bugs[0].detector, "exception");
  EXPECT_EQ(campaign.bugs[0].kind, "double free");
  EXPECT_EQ(campaign.bugs[0].excerpt, "PANIC: double\nfree");
  EXPECT_EQ(campaign.bugs[0].at_us, 777u);
  EXPECT_EQ(campaign.bugs[0].board, 1u);
  ASSERT_EQ(decoded->workers.size(), 1u);
  EXPECT_EQ(decoded->workers[0].worker_id, 7u);
  EXPECT_EQ(decoded->workers[0].name, "rack0/w7");
  EXPECT_EQ(decoded->workers[0].last_seen_ms, 123300u);
  EXPECT_EQ(decoded->workers[0].lost, 0u);
  EXPECT_EQ(decoded->workers[0].execs, 4567u);
  EXPECT_EQ(decoded->workers[0].leases, 2u);
  EXPECT_EQ(decoded->workers[0].syncs, 31u);
  EXPECT_EQ(decoded->workers[0].journal_dropped, 6u);
}

TEST(StatusProtoTest, ReplyRejectsTruncationAndTrailingBytes) {
  std::vector<uint8_t> payload = Encode(FullReply());
  // Every strict prefix must fail to decode — no partial-read acceptance.
  for (size_t len = 0; len < payload.size(); ++len) {
    std::vector<uint8_t> cut(payload.begin(), payload.begin() + len);
    EXPECT_FALSE(DecodeStatusReply(cut).ok()) << "prefix length " << len;
  }
  std::vector<uint8_t> padded = payload;
  padded.push_back(0);
  EXPECT_FALSE(DecodeStatusReply(padded).ok());
}

class ObserverTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }

  std::unique_ptr<Orchestrator> Make(int pool = 64) {
    Orchestrator::Options options;
    options.board_pool = pool;
    options.heartbeat_interval_ms = 100;
    options.lease_timeout_ms = 1000;
    options.sink = &sink_;
    options.clock_ms = [this] { return now_ms_; };
    auto orchestrator = Orchestrator::Create(std::move(options));
    EXPECT_TRUE(orchestrator.ok());
    return std::move(orchestrator).value();
  }

  static uint32_t SayHello(Transport* t, const std::string& name) {
    Frame hello{MsgType::kHello, Encode(HelloMsg{name, 4})};
    EXPECT_TRUE(t->Send(hello).ok());
    auto ack = t->Recv(2000);
    EXPECT_TRUE(ack.ok());
    auto decoded = DecodeHelloAck(ack->payload);
    EXPECT_TRUE(decoded.ok());
    return decoded->worker_id;
  }

  static Result<LeaseGrantMsg> AskForWork(Transport* t, uint32_t worker_id,
                                          uint32_t capacity) {
    Frame request{MsgType::kLeaseRequest,
                  Encode(LeaseRequestMsg{worker_id, capacity})};
    RETURN_IF_ERROR(t->Send(request));
    ASSIGN_OR_RETURN(Frame reply, t->Recv(2000));
    if (reply.type == MsgType::kNoWork) {
      return UnavailableError("no work");
    }
    return DecodeLeaseGrant(reply.payload);
  }

  telemetry::MemoryEventSink sink_;
  uint64_t now_ms_ = 1000;
};

TEST_F(ObserverTest, HandleStatusAggregatesCampaignWorkerAndShardState) {
  auto orchestrator = Make();
  FleetCampaignSpec spec;
  spec.campaign_id = "c";
  spec.config = TinyConfig();
  spec.shards = 2;
  ASSERT_TRUE(orchestrator->AddCampaign(spec).ok());

  auto [client, server] = LoopbackPair();
  std::thread handler([&] { orchestrator->ServeConnection(server.get()); });
  uint32_t worker_id = SayHello(client.get(), "w0");
  auto grant = AskForWork(client.get(), worker_id, 2);
  ASSERT_TRUE(grant.ok());
  ASSERT_EQ(grant->leases.size(), 2u);

  SyncMsg sync;
  sync.worker_id = worker_id;
  sync.campaign_id = "c";
  sync.seq = 1;
  sync.shards.push_back({grant->leases[0].lease_id, grant->leases[0].shard,
                         5000000, 500, 0});
  sync.coverage_delta = SerializeCoverageIds({11, 22}, CoverageWireKind::kDiff);
  BugWire bug;
  bug.catalog_id = 3;
  bug.detector = "exception";
  bug.kind = "crash";
  bug.excerpt = "PANIC: null deref";
  sync.bugs.push_back(bug);
  sync.journal_dropped = 9;
  ASSERT_TRUE(client->Send({MsgType::kSync, Encode(sync)}).ok());
  ASSERT_TRUE(client->Recv(2000).ok());

  StatusReplyMsg status = orchestrator->HandleStatus(StatusRequestMsg{});
  EXPECT_EQ(status.server_ms, 1000u);
  EXPECT_EQ(status.assembled_ms, 1000u);
  EXPECT_EQ(status.heartbeat_interval_ms, 100u);
  ASSERT_EQ(status.campaigns.size(), 1u);
  const CampaignStatusWire& campaign = status.campaigns[0];
  EXPECT_EQ(campaign.campaign_id, "c");
  EXPECT_EQ(campaign.os_name, "zephyr");
  EXPECT_EQ(campaign.shards_total, 2u);
  EXPECT_EQ(campaign.shards_pending, 0u);
  EXPECT_EQ(campaign.shards_leased, 2u);
  EXPECT_EQ(campaign.shards_done, 0u);
  EXPECT_EQ(campaign.coverage, 2u);
  EXPECT_EQ(campaign.execs, 500u);  // live lease progress, no finals yet
  EXPECT_EQ(campaign.leases_granted, 2u);
  EXPECT_EQ(campaign.journal_dropped_workers, 9u);
  EXPECT_EQ(campaign.finalized, 0u);
  ASSERT_EQ(campaign.bugs.size(), 1u);
  EXPECT_EQ(campaign.bugs[0].catalog_id, 3u);
  EXPECT_EQ(campaign.bugs[0].excerpt, "PANIC: null deref");
  ASSERT_EQ(campaign.shards.size(), 2u);
  uint64_t synced_execs = 0;
  for (const ShardStatusWire& shard : campaign.shards) {
    EXPECT_EQ(shard.phase, 1u);  // leased
    EXPECT_EQ(shard.worker, worker_id);
    EXPECT_EQ(shard.attempt, 1u);
    synced_execs += shard.execs;
  }
  EXPECT_EQ(synced_execs, 500u);
  ASSERT_EQ(status.workers.size(), 1u);
  EXPECT_EQ(status.workers[0].name, "w0");
  EXPECT_EQ(status.workers[0].worker_id, worker_id);
  EXPECT_EQ(status.workers[0].lost, 0u);
  EXPECT_EQ(status.workers[0].execs, 500u);
  EXPECT_EQ(status.workers[0].leases, 2u);
  EXPECT_EQ(status.workers[0].syncs, 1u);
  EXPECT_EQ(status.workers[0].journal_dropped, 9u);

  // include_shards=0 strips the lease table but keeps the phase counters.
  StatusRequestMsg no_shards;
  no_shards.include_shards = 0;
  StatusReplyMsg lean = orchestrator->HandleStatus(no_shards);
  ASSERT_EQ(lean.campaigns.size(), 1u);
  EXPECT_TRUE(lean.campaigns[0].shards.empty());
  EXPECT_EQ(lean.campaigns[0].shards_leased, 2u);

  // A campaign filter that matches nothing returns an empty campaign list
  // (workers are global and still present).
  StatusRequestMsg filtered;
  filtered.campaign_id = "no-such-campaign";
  EXPECT_TRUE(orchestrator->HandleStatus(filtered).campaigns.empty());

  // The poll path left the campaign untouched: same grant state, no journal
  // rows beyond the scripted worker's own.
  EXPECT_EQ(orchestrator->CompletedShards("c"), 0);

  client->Send({MsgType::kGoodbye, Encode(GoodbyeMsg{worker_id})});
  client->Close();
  handler.join();
}

TEST_F(ObserverTest, StatusSnapshotHasBoundedStaleness) {
  auto orchestrator = Make();
  FleetCampaignSpec spec;
  spec.campaign_id = "c";
  spec.config = TinyConfig();
  spec.shards = 2;
  ASSERT_TRUE(orchestrator->AddCampaign(spec).ok());

  // First poll assembles a snapshot at t=1000: all shards pending.
  StatusReplyMsg first = orchestrator->HandleStatus(StatusRequestMsg{});
  EXPECT_EQ(first.assembled_ms, 1000u);
  ASSERT_EQ(first.campaigns.size(), 1u);
  EXPECT_EQ(first.campaigns[0].shards_pending, 2u);

  // State changes: a worker takes both shards.
  auto [client, server] = LoopbackPair();
  std::thread handler([&] { orchestrator->ServeConnection(server.get()); });
  uint32_t worker_id = SayHello(client.get(), "w0");
  ASSERT_TRUE(AskForWork(client.get(), worker_id, 2).ok());

  // Within the heartbeat interval the cached snapshot is served: the lease is
  // invisible, but server_ms is stamped fresh — that skew IS the advertised
  // snapshot age.
  now_ms_ = 1050;
  StatusReplyMsg cached = orchestrator->HandleStatus(StatusRequestMsg{});
  EXPECT_EQ(cached.server_ms, 1050u);
  EXPECT_EQ(cached.assembled_ms, 1000u);
  ASSERT_EQ(cached.campaigns.size(), 1u);
  EXPECT_EQ(cached.campaigns[0].shards_pending, 2u);
  EXPECT_EQ(cached.campaigns[0].shards_leased, 0u);

  // Past the interval the next poll re-assembles and sees the leases.
  now_ms_ = 1101;
  StatusReplyMsg fresh = orchestrator->HandleStatus(StatusRequestMsg{});
  EXPECT_EQ(fresh.assembled_ms, 1101u);
  ASSERT_EQ(fresh.campaigns.size(), 1u);
  EXPECT_EQ(fresh.campaigns[0].shards_pending, 0u);
  EXPECT_EQ(fresh.campaigns[0].shards_leased, 2u);

  // The status path itself is instrumented.
  auto snapshot = orchestrator->MetricsSnapshot();
  auto it = snapshot.counters.find("fleet.status_requests");
  ASSERT_NE(it, snapshot.counters.end());
  EXPECT_EQ(it->second, 3u);

  client->Send({MsgType::kGoodbye, Encode(GoodbyeMsg{worker_id})});
  client->Close();
  handler.join();
}

TEST_F(ObserverTest, FetchStatusPollsOverLoopback) {
  auto orchestrator = Make();
  FleetCampaignSpec spec;
  spec.campaign_id = "c";
  spec.config = TinyConfig();
  spec.shards = 1;
  ASSERT_TRUE(orchestrator->AddCampaign(spec).ok());

  auto [client, server] = LoopbackPair();
  std::thread handler([&] { orchestrator->ServeConnection(server.get()); });
  auto status = FetchStatus(client.get(), "", /*include_shards=*/true,
                            /*timeout_ms=*/2000);
  ASSERT_TRUE(status.ok());
  ASSERT_EQ(status->campaigns.size(), 1u);
  EXPECT_EQ(status->campaigns[0].campaign_id, "c");
  EXPECT_EQ(status->campaigns[0].shards_total, 1u);
  EXPECT_EQ(status->heartbeat_interval_ms, 100u);
  EXPECT_TRUE(status->workers.empty());  // observers are not workers
  client->Close();
  handler.join();
}

// The acceptance bar for the whole observer role: a fleet run polled by a
// concurrent observer ends with exactly the same merged campaign outcome as an
// unobserved run of the same spec. One shard / capacity one keeps the worker
// single-session and therefore bit-deterministic (two concurrent sessions
// interleave corpus admission on thread timing — see fleet_differential_test),
// so any observer-induced perturbation shows up as a hard diff.
TEST_F(ObserverTest, ObserverPollingPerturbsNothing) {
  auto run = [](bool observed, telemetry::MemoryEventSink* sink,
                uint64_t* status_polls) {
    Orchestrator::Options options;
    options.board_pool = 64;
    options.heartbeat_interval_ms = 100;
    options.lease_timeout_ms = 1000;
    options.sink = sink;
    auto orchestrator = Orchestrator::Create(std::move(options));
    EXPECT_TRUE(orchestrator.ok());
    FleetCampaignSpec spec;
    spec.campaign_id = "diff";
    spec.config = TinyConfig();
    spec.shards = 1;
    EXPECT_TRUE(orchestrator.value()->AddCampaign(spec).ok());

    auto [client, server] = LoopbackPair();
    std::thread handler(
        [&] { orchestrator.value()->ServeConnection(server.get()); });

    std::atomic<bool> done{false};
    std::thread poller([&] {
      if (!observed) {
        return;
      }
      while (!done.load()) {
        auto [observer_client, observer_server] = LoopbackPair();
        std::thread observer_handler([&] {
          orchestrator.value()->ServeConnection(observer_server.get());
        });
        auto status = FetchStatus(observer_client.get(), "", true, 2000);
        EXPECT_TRUE(status.ok());
        if (status_polls != nullptr) {
          ++*status_polls;
        }
        observer_client->Close();
        observer_handler.join();
      }
    });

    telemetry::MemoryEventSink worker_sink;
    FleetWorker::Options worker_options;
    worker_options.name = "w0";
    worker_options.capacity = 1;
    worker_options.sink = &worker_sink;
    auto worker = FleetWorker::Create(std::move(worker_options));
    EXPECT_TRUE(worker.ok());
    Status ran = worker.value()->Run(client.get());
    EXPECT_TRUE(ran.ok()) << ran.ToString();
    done.store(true);
    handler.join();
    poller.join();
    return orchestrator.value()->Results();
  };

  telemetry::MemoryEventSink baseline_sink;
  telemetry::MemoryEventSink observed_sink;
  uint64_t polls = 0;
  auto baseline = run(/*observed=*/false, &baseline_sink, nullptr);
  auto observed = run(/*observed=*/true, &observed_sink, &polls);
  EXPECT_GT(polls, 0u);  // the observer actually ran against the live campaign

  ASSERT_EQ(baseline.size(), 1u);
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0].result.final_coverage, baseline[0].result.final_coverage);
  EXPECT_EQ(observed[0].result.execs, baseline[0].result.execs);
  EXPECT_EQ(observed[0].result.crashes, baseline[0].result.crashes);
  EXPECT_EQ(observed[0].result.corpus_size, baseline[0].result.corpus_size);
  EXPECT_EQ(observed[0].result.corpus_programs, baseline[0].result.corpus_programs);
  EXPECT_EQ(observed[0].result.elapsed, baseline[0].result.elapsed);
  EXPECT_EQ(observed[0].bugs.size(), baseline[0].bugs.size());
  for (size_t i = 0; i < baseline[0].bugs.size(); ++i) {
    EXPECT_EQ(observed[0].bugs[i].catalog_id, baseline[0].bugs[i].catalog_id);
    EXPECT_EQ(observed[0].bugs[i].excerpt, baseline[0].bugs[i].excerpt);
  }
  EXPECT_EQ(observed[0].leases_granted, baseline[0].leases_granted);
  EXPECT_EQ(observed[0].leases_reclaimed, baseline[0].leases_reclaimed);
  EXPECT_EQ(observed[0].rejected_uploads, baseline[0].rejected_uploads);
  EXPECT_EQ(observed[0].corpus_syncs, baseline[0].corpus_syncs);

  // The fleet journals agree row-type-for-row-type: status polls add nothing.
  auto count = [](const telemetry::MemoryEventSink& sink,
                  const std::string& type) {
    uint64_t n = 0;
    for (const telemetry::Event& event : sink.Events()) {
      n += event.type == type ? 1 : 0;
    }
    return n;
  };
  for (const char* type : {"lease_grant", "lease_complete", "lease_reclaim",
                           "worker_lost", "worker_final", "campaign_end"}) {
    EXPECT_EQ(count(observed_sink, type), count(baseline_sink, type)) << type;
  }
}

// Raw HTTP client: one request, read to EOF (the server closes per request).
std::string HttpRequest(uint16_t port, const std::string& request) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      break;
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

TEST(StatusHttpTest, ServesMetricsHealthzAndErrors) {
  StatusHttpServer::Handlers handlers;
  handlers.metrics = [] { return std::string("eof_fleet_server_ms 42\n"); };
  auto server = StatusHttpServer::Start(/*port=*/0, handlers);
  ASSERT_TRUE(server.ok());
  uint16_t port = server.value()->bound_port();
  ASSERT_GT(port, 0u);

  std::string metrics =
      HttpRequest(port, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find(telemetry::kPrometheusContentType), std::string::npos);
  EXPECT_NE(metrics.find("Connection: close"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Length: 23"), std::string::npos);
  EXPECT_NE(metrics.find("\r\n\r\neof_fleet_server_ms 42\n"), std::string::npos);

  std::string healthz =
      HttpRequest(port, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(healthz.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(healthz.find("\r\n\r\nok\n"), std::string::npos);

  std::string missing =
      HttpRequest(port, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  std::string bad_method =
      HttpRequest(port, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(bad_method.find("HTTP/1.1 405"), std::string::npos);

  server.value()->Stop();
  server.value()->Stop();  // idempotent
}

TEST(RenderTopFrameTest, RendersCampaignTableHighlightsAndSparkline) {
  EXPECT_EQ(RenderTopFrame({}), "eof top | no status yet\n");

  // Three polls, one second apart: coverage flat (plateau), execs climbing
  // unevenly (sparkline), one live worker, one lost, one silent (stalled).
  std::vector<StatusReplyMsg> history;
  for (int i = 0; i < 3; ++i) {
    StatusReplyMsg poll = FullReply();
    poll.server_ms = 1000 + 1000 * static_cast<uint64_t>(i);
    poll.assembled_ms = poll.server_ms - 60;
    poll.heartbeat_interval_ms = 100;
    poll.campaigns[0].coverage = 234;  // unchanged across all three
    static const uint64_t kExecs[] = {1000, 1100, 9500};  // rates 100 then 8400
    poll.campaigns[0].execs = kExecs[i];
    poll.campaigns[0].finalized = 0;
    poll.workers[0].last_seen_ms = poll.server_ms - 50;
    WorkerStatusWire lost;
    lost.worker_id = 8;
    lost.name = "gone";
    lost.lost = 1;
    poll.workers.push_back(lost);
    WorkerStatusWire silent;
    silent.worker_id = 9;
    silent.name = "quiet";
    silent.last_seen_ms = 500;  // ages past 3 heartbeats immediately
    poll.workers.push_back(silent);
    history.push_back(poll);
  }

  std::string frame = RenderTopFrame(history);
  EXPECT_NE(frame.find("campaign c1 zephyr/default"), std::string::npos);
  EXPECT_NE(frame.find("shards 4: 1 pending / 2 leased / 1 done"),
            std::string::npos);
  EXPECT_NE(frame.find("coverage 234"), std::string::npos);
  EXPECT_NE(frame.find("snapshot age 60ms (bound 100ms)"), std::string::npos);
  EXPECT_NE(frame.find("execs/s"), std::string::npos);
  EXPECT_NE(frame.find("PLATEAU"), std::string::npos);
  // Sparkline: two rate samples, the second 3x the first -> a low block then
  // the full block.
  EXPECT_NE(frame.find("▁"), std::string::npos);
  EXPECT_NE(frame.find("█"), std::string::npos);
  EXPECT_NE(frame.find("leased"), std::string::npos);  // shard table
  EXPECT_NE(frame.find("bug 9 exception/double free"), std::string::npos);
  EXPECT_NE(frame.find("rack0/w7"), std::string::npos);
  EXPECT_NE(frame.find(" LOST"), std::string::npos);
  EXPECT_NE(frame.find(" STALLED"), std::string::npos);
  // The live worker is neither lost nor stalled: its row carries no flag.
  size_t live_row = frame.find("rack0/w7");
  size_t live_row_end = frame.find('\n', live_row);
  EXPECT_EQ(frame.substr(live_row, live_row_end - live_row).find("LOST"),
            std::string::npos);

  // FINALIZED shows once the campaign closes.
  history.back().campaigns[0].finalized = 1;
  EXPECT_NE(RenderTopFrame(history).find("FINALIZED"), std::string::npos);
}

TEST(RenderFleetMetricsTest, EmitsCampaignWorkerAndOrchestratorFamilies) {
  StatusReplyMsg status = FullReply();
  telemetry::MetricsRegistry registry;
  registry.RegisterCounter("fleet.status_requests")->Add(5);
  std::string out = RenderFleetMetrics(status, registry.Snapshot());

  EXPECT_NE(out.find("# TYPE eof_fleet_campaign_coverage gauge\n"
                     "eof_fleet_campaign_coverage{campaign=\"c1\"} 234\n"),
            std::string::npos);
  EXPECT_NE(out.find("eof_fleet_campaign_execs_total{campaign=\"c1\"} 9001\n"),
            std::string::npos);
  EXPECT_NE(out.find("eof_fleet_campaign_bugs{campaign=\"c1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(out.find("eof_fleet_shards{campaign=\"c1\",phase=\"leased\"} 2\n"),
            std::string::npos);
  EXPECT_NE(
      out.find("eof_fleet_journal_dropped_total{campaign=\"c1\","
               "sink=\"orchestrator\"} 4\n"),
      std::string::npos);
  EXPECT_NE(out.find("eof_fleet_journal_dropped_total{campaign=\"c1\","
                     "sink=\"workers\"} 11\n"),
            std::string::npos);
  EXPECT_NE(
      out.find(
          "eof_fleet_worker_execs_total{worker=\"rack0/w7\",id=\"7\"} 4567\n"),
      std::string::npos);
  EXPECT_NE(out.find("eof_fleet_worker_last_seen_ms{worker=\"rack0/w7\","
                     "id=\"7\"} 123300\n"),
            std::string::npos);
  EXPECT_NE(out.find("eof_fleet_server_ms 123456\n"), std::string::npos);
  EXPECT_NE(out.find("eof_fleet_snapshot_age_ms 56\n"), std::string::npos);
  // The orchestrator's own registry rides along at the end.
  EXPECT_NE(out.find("eof_fleet_status_requests_total 5\n"), std::string::npos);
}

}  // namespace
}  // namespace fleet
}  // namespace eof
