// Orchestrator tests: lease state machine, weighted fair share, idempotent
// uploads, and crash/rejoin — a scripted worker that goes silent has its leases
// reclaimed on a fake clock and a real FleetWorker picks them up without
// losing shards or double-counting bugs.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/coverage_serial.h"
#include "src/core/fuzzer.h"
#include "src/fleet/orchestrator.h"
#include "src/fleet/proto.h"
#include "src/fleet/transport.h"
#include "src/fleet/worker.h"
#include "src/os/all_oses.h"
#include "src/telemetry/journal.h"

namespace eof {
namespace fleet {
namespace {

FuzzerConfig TinyConfig(uint64_t seed = 7) {
  FuzzerConfig config;
  config.os_name = "zephyr";
  config.seed = seed;
  config.budget = 30 * kVirtualSecond;
  config.sample_points = 4;
  return config;
}

class OrchestratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }

  // Builds an orchestrator on a fake clock and a memory journal.
  std::unique_ptr<Orchestrator> Make(int pool = 64) {
    Orchestrator::Options options;
    options.board_pool = pool;
    options.heartbeat_interval_ms = 100;
    options.lease_timeout_ms = 1000;
    options.sink = &sink_;
    options.clock_ms = [this] { return now_ms_; };
    auto orchestrator = Orchestrator::Create(std::move(options));
    EXPECT_TRUE(orchestrator.ok());
    return std::move(orchestrator).value();
  }

  // Raw-protocol helpers for scripting a worker by hand over loopback.
  static uint32_t SayHello(Transport* t, const std::string& name) {
    Frame hello{MsgType::kHello, Encode(HelloMsg{name, 4})};
    EXPECT_TRUE(t->Send(hello).ok());
    auto ack = t->Recv(2000);
    EXPECT_TRUE(ack.ok());
    auto decoded = DecodeHelloAck(ack->payload);
    EXPECT_TRUE(decoded.ok());
    return decoded->worker_id;
  }

  static Result<LeaseGrantMsg> AskForWork(Transport* t, uint32_t worker_id,
                                          uint32_t capacity) {
    Frame request{MsgType::kLeaseRequest,
                  Encode(LeaseRequestMsg{worker_id, capacity})};
    RETURN_IF_ERROR(t->Send(request));
    ASSIGN_OR_RETURN(Frame reply, t->Recv(2000));
    if (reply.type == MsgType::kNoWork) {
      return UnavailableError("no work");
    }
    return DecodeLeaseGrant(reply.payload);
  }

  uint64_t CountRows(const std::string& type) const {
    uint64_t count = 0;
    for (const telemetry::Event& event : sink_.Events()) {
      if (event.type == type) {
        ++count;
      }
    }
    return count;
  }

  telemetry::MemoryEventSink sink_;
  uint64_t now_ms_ = 1000;
};

TEST_F(OrchestratorTest, RejectsBadOptionsAndCampaigns) {
  Orchestrator::Options bad;
  bad.sink = &sink_;
  bad.lease_timeout_ms = 100;
  bad.heartbeat_interval_ms = 100;  // lease must exceed heartbeat
  EXPECT_FALSE(Orchestrator::Create(std::move(bad)).ok());

  auto orchestrator = Make();
  FleetCampaignSpec spec;
  spec.campaign_id = "";
  spec.config = TinyConfig();
  EXPECT_FALSE(orchestrator->AddCampaign(spec).ok());
  spec.campaign_id = "c";
  spec.shards = 0;
  EXPECT_FALSE(orchestrator->AddCampaign(spec).ok());
  spec.shards = 1;
  ASSERT_TRUE(orchestrator->AddCampaign(spec).ok());
  EXPECT_FALSE(orchestrator->AddCampaign(spec).ok());  // duplicate id
}

TEST_F(OrchestratorTest, GrantsLeasesUpToPoolAndTracksShards) {
  auto orchestrator = Make(/*pool=*/2);
  FleetCampaignSpec spec;
  spec.campaign_id = "c";
  spec.config = TinyConfig();
  spec.shards = 3;
  ASSERT_TRUE(orchestrator->AddCampaign(spec).ok());

  auto [client, server] = LoopbackPair();
  std::thread handler([&] { orchestrator->ServeConnection(server.get()); });

  uint32_t worker_id = SayHello(client.get(), "w0");
  ASSERT_GT(worker_id, 0u);
  auto grant = AskForWork(client.get(), worker_id, 4);
  ASSERT_TRUE(grant.ok());
  // Pool of 2 caps the grant below both capacity (4) and shard count (3).
  EXPECT_EQ(grant->leases.size(), 2u);
  EXPECT_EQ(grant->config.campaign_id, "c");
  EXPECT_EQ(grant->config.total_shards, 3u);
  std::set<uint32_t> shards;
  for (const ShardLease& lease : grant->leases) {
    EXPECT_EQ(lease.attempt, 1u);
    shards.insert(lease.shard);
  }
  EXPECT_EQ(shards.size(), 2u);

  // Nothing left in the pool: a second worker gets NoWork.
  auto denied = AskForWork(client.get(), worker_id, 4);
  EXPECT_FALSE(denied.ok());

  client->Send({MsgType::kGoodbye, Encode(GoodbyeMsg{worker_id})});
  client->Close();
  handler.join();
  EXPECT_EQ(CountRows("lease_grant"), 2u);
  EXPECT_EQ(orchestrator->CompletedShards("c"), 0);
}

TEST_F(OrchestratorTest, WeightedFairShareFavorsHeavierCampaign) {
  auto orchestrator = Make();
  FleetCampaignSpec light;
  light.campaign_id = "light";
  light.config = TinyConfig();
  light.shards = 8;
  light.weight = 1;
  FleetCampaignSpec heavy = light;
  heavy.campaign_id = "heavy";
  heavy.weight = 3;
  ASSERT_TRUE(orchestrator->AddCampaign(light).ok());
  ASSERT_TRUE(orchestrator->AddCampaign(heavy).ok());

  auto [client, server] = LoopbackPair();
  std::thread handler([&] { orchestrator->ServeConnection(server.get()); });
  uint32_t worker_id = SayHello(client.get(), "w0");

  // One lease at a time: count where the first 8 go. Weight 3:1 means heavy
  // should take 6 of 8.
  int heavy_grants = 0;
  for (int i = 0; i < 8; ++i) {
    auto grant = AskForWork(client.get(), worker_id, 1);
    ASSERT_TRUE(grant.ok());
    ASSERT_EQ(grant->leases.size(), 1u);
    if (grant->config.campaign_id == "heavy") {
      ++heavy_grants;
    }
  }
  EXPECT_EQ(heavy_grants, 6);

  client->Send({MsgType::kGoodbye, Encode(GoodbyeMsg{worker_id})});
  client->Close();
  handler.join();
}

TEST_F(OrchestratorTest, ReclaimsExpiredLeasesAndReassigns) {
  auto orchestrator = Make();
  FleetCampaignSpec spec;
  spec.campaign_id = "c";
  spec.config = TinyConfig();
  spec.shards = 1;
  ASSERT_TRUE(orchestrator->AddCampaign(spec).ok());

  // Worker A takes the shard, then goes silent (crash).
  auto [a_client, a_server] = LoopbackPair();
  std::thread a_handler([&] { orchestrator->ServeConnection(a_server.get()); });
  uint32_t a_id = SayHello(a_client.get(), "doomed");
  auto a_grant = AskForWork(a_client.get(), a_id, 1);
  ASSERT_TRUE(a_grant.ok());
  ASSERT_EQ(a_grant->leases.size(), 1u);
  uint64_t a_lease = a_grant->leases[0].lease_id;

  // Silence past the lease timeout on the fake clock: the lease reclaims.
  now_ms_ += 5000;
  orchestrator->ReapExpiredLeases();
  EXPECT_EQ(CountRows("lease_reclaim"), 1u);
  EXPECT_EQ(CountRows("worker_lost"), 1u);
  EXPECT_FALSE(orchestrator->AllCampaignsDone());

  // Worker B rejoins and gets the same shard, attempt 2, a fresh lease id.
  auto [b_client, b_server] = LoopbackPair();
  std::thread b_handler([&] { orchestrator->ServeConnection(b_server.get()); });
  uint32_t b_id = SayHello(b_client.get(), "rejoin");
  auto b_grant = AskForWork(b_client.get(), b_id, 1);
  ASSERT_TRUE(b_grant.ok());
  ASSERT_EQ(b_grant->leases.size(), 1u);
  EXPECT_EQ(b_grant->leases[0].shard, a_grant->leases[0].shard);
  EXPECT_EQ(b_grant->leases[0].attempt, 2u);
  EXPECT_NE(b_grant->leases[0].lease_id, a_lease);

  // A's late Sync on the dead lease is refused per-shard: the ack lists the
  // lease as revoked so A aborts its batch.
  SyncMsg stale;
  stale.worker_id = a_id;
  stale.campaign_id = "c";
  stale.seq = 1;
  stale.shards.push_back({a_lease, a_grant->leases[0].shard, 100, 5, 0});
  ASSERT_TRUE(a_client->Send({MsgType::kSync, Encode(stale)}).ok());
  auto stale_ack = a_client->Recv(2000);
  ASSERT_TRUE(stale_ack.ok());
  auto stale_decoded = DecodeSyncAck(stale_ack->payload);
  ASSERT_TRUE(stale_decoded.ok());
  EXPECT_EQ(stale_decoded->accepted, 1u);
  ASSERT_EQ(stale_decoded->revoked.size(), 1u);
  EXPECT_EQ(stale_decoded->revoked[0], a_lease);

  // B completes the shard; the same bug uploaded by both workers counts once.
  BugWire bug;
  bug.catalog_id = 3;
  bug.excerpt = "PANIC: double free";
  SyncMsg a_bug;
  a_bug.worker_id = a_id;
  a_bug.campaign_id = "c";
  a_bug.seq = 2;
  a_bug.bugs.push_back(bug);
  ASSERT_TRUE(a_client->Send({MsgType::kSync, Encode(a_bug)}).ok());
  ASSERT_TRUE(a_client->Recv(2000).ok());

  SyncMsg b_done;
  b_done.worker_id = b_id;
  b_done.campaign_id = "c";
  b_done.seq = 1;
  b_done.shards.push_back(
      {b_grant->leases[0].lease_id, b_grant->leases[0].shard, 30000000, 40, 1});
  b_done.bugs.push_back(bug);
  b_done.coverage_delta = SerializeCoverageIds({11, 22}, CoverageWireKind::kDiff);
  ASSERT_TRUE(b_client->Send({MsgType::kSync, Encode(b_done)}).ok());
  auto b_ack = b_client->Recv(2000);
  ASSERT_TRUE(b_ack.ok());

  EXPECT_TRUE(orchestrator->AllCampaignsDone());
  EXPECT_EQ(orchestrator->CompletedShards("c"), 1);

  a_client->Close();
  b_client->Close();
  a_handler.join();
  b_handler.join();

  auto results = orchestrator->Results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].leases_granted, 2u);
  EXPECT_EQ(results[0].leases_reclaimed, 1u);
  EXPECT_EQ(results[0].workers_lost, 1u);
  EXPECT_EQ(results[0].bugs.size(), 1u);  // deduped across both uploads
  EXPECT_EQ(results[0].result.final_coverage, 2u);
}

TEST_F(OrchestratorTest, EndToEndWithRealWorkerOverLoopback) {
  auto orchestrator = Make();
  FleetCampaignSpec spec;
  spec.campaign_id = "e2e";
  spec.config = TinyConfig();
  spec.shards = 2;
  ASSERT_TRUE(orchestrator->AddCampaign(spec).ok());

  auto [client, server] = LoopbackPair();
  std::thread handler([&] { orchestrator->ServeConnection(server.get()); });

  telemetry::MemoryEventSink worker_sink;
  FleetWorker::Options options;
  options.name = "w0";
  options.capacity = 2;
  options.sink = &worker_sink;
  auto worker = FleetWorker::Create(std::move(options));
  ASSERT_TRUE(worker.ok());
  Status ran = worker.value()->Run(client.get());
  EXPECT_TRUE(ran.ok()) << ran.ToString();
  handler.join();

  EXPECT_TRUE(orchestrator->AllCampaignsDone());
  EXPECT_EQ(orchestrator->CompletedShards("e2e"), 2);
  EXPECT_EQ(CountRows("campaign_end"), 0u);  // only Results() finalizes
  auto results = orchestrator->Results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].leases_granted, 2u);
  EXPECT_EQ(results[0].leases_reclaimed, 0u);
  EXPECT_EQ(results[0].workers_served, 1u);
  EXPECT_GT(results[0].result.execs, 0u);
  EXPECT_GT(results[0].result.final_coverage, 0u);

  // Fleet journal rows: grants for both shards, completions, a worker final.
  EXPECT_EQ(CountRows("lease_grant"), 2u);
  EXPECT_EQ(CountRows("lease_complete"), 2u);
  EXPECT_EQ(CountRows("worker_final"), 1u);
  EXPECT_EQ(CountRows("campaign_end"), 1u);
  orchestrator->Results();  // idempotent: no second campaign_end
  EXPECT_EQ(CountRows("campaign_end"), 1u);
}

}  // namespace
}  // namespace fleet
}  // namespace eof
