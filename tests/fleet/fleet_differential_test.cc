// Fleet differential test: the sharded-service contract. An orchestrator plus
// one worker over loopback must produce bit-identical campaign truths to the
// in-process farm at --jobs 1 — same execs, same coverage, same corpus
// programs, same bug table down to the flight-recorder text. The worker's
// sync pump, the wire codecs, and the orchestrator's merge path all sit
// between the two runs, so any nondeterminism or lossy encoding fails here.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/core/board_farm.h"
#include "src/core/fuzzer.h"
#include "src/fleet/fleet_config.h"
#include "src/fleet/orchestrator.h"
#include "src/fleet/transport.h"
#include "src/fleet/worker.h"
#include "src/os/all_oses.h"
#include "src/telemetry/journal.h"

namespace eof {
namespace fleet {
namespace {

class FleetDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }
};

FuzzerConfig DiffConfig(const std::string& os_name, uint64_t seed) {
  FuzzerConfig config;
  config.os_name = os_name;
  config.seed = seed;
  config.budget = 2 * kVirtualMinute;
  config.sample_points = 6;
  config.export_corpus = true;
  return config;
}

void ExpectSameBug(const BugWire& fleet_bug, const BugWire& local_bug) {
  EXPECT_EQ(fleet_bug.catalog_id, local_bug.catalog_id);
  EXPECT_EQ(fleet_bug.detector, local_bug.detector);
  EXPECT_EQ(fleet_bug.kind, local_bug.kind);
  EXPECT_EQ(fleet_bug.excerpt, local_bug.excerpt);
  EXPECT_EQ(fleet_bug.program_text, local_bug.program_text);
  EXPECT_EQ(fleet_bug.at_us, local_bug.at_us);
  EXPECT_EQ(fleet_bug.first_exec, local_bug.first_exec);
  EXPECT_EQ(fleet_bug.board, local_bug.board);
  EXPECT_EQ(fleet_bug.seed_stream, local_bug.seed_stream);
  EXPECT_EQ(fleet_bug.coverage_delta, local_bug.coverage_delta);
  EXPECT_EQ(fleet_bug.snapshot_validation, local_bug.snapshot_validation);
  EXPECT_EQ(fleet_bug.dump_reason, local_bug.dump_reason);
  EXPECT_EQ(fleet_bug.dump_last_restore, local_bug.dump_last_restore);
  EXPECT_EQ(fleet_bug.uart_tail, local_bug.uart_tail);
  EXPECT_EQ(fleet_bug.port_ops, local_bug.port_ops);
  EXPECT_EQ(fleet_bug.events, local_bug.events);
}

void RunDifferential(const std::string& os_name, uint64_t seed) {
  SCOPED_TRACE(os_name + " seed " + std::to_string(seed));
  FuzzerConfig config = DiffConfig(os_name, seed);

  // In-process truth: one-board farm.
  BoardFarm farm(config, /*jobs=*/1);
  auto local = farm.Run();
  ASSERT_TRUE(local.ok()) << local.status().ToString();

  // Fleet run: orchestrator + one worker, one shard, over loopback.
  telemetry::MemoryEventSink orch_sink;
  Orchestrator::Options options;
  options.sink = &orch_sink;
  auto orchestrator = Orchestrator::Create(std::move(options));
  ASSERT_TRUE(orchestrator.ok());
  FleetCampaignSpec spec;
  spec.campaign_id = "diff";
  spec.config = config;
  spec.shards = 1;
  ASSERT_TRUE(orchestrator.value()->AddCampaign(spec).ok());

  auto [client, server] = LoopbackPair();
  std::thread handler(
      [&] { orchestrator.value()->ServeConnection(server.get()); });

  telemetry::MemoryEventSink worker_sink;
  FleetWorker::Options worker_options;
  worker_options.name = "w0";
  worker_options.capacity = 1;
  worker_options.sink = &worker_sink;
  auto worker = FleetWorker::Create(std::move(worker_options));
  ASSERT_TRUE(worker.ok());
  Status ran = worker.value()->Run(client.get());
  ASSERT_TRUE(ran.ok()) << ran.ToString();
  handler.join();

  auto results = orchestrator.value()->Results();
  ASSERT_EQ(results.size(), 1u);
  const CampaignResult& fleet_result = results[0].result;
  const CampaignResult& local_result = local.value();

  // Scalar truths, bit for bit.
  EXPECT_EQ(fleet_result.execs, local_result.execs);
  EXPECT_EQ(fleet_result.final_coverage, local_result.final_coverage);
  EXPECT_EQ(fleet_result.crashes, local_result.crashes);
  EXPECT_EQ(fleet_result.rejected, local_result.rejected);
  EXPECT_EQ(fleet_result.stalls, local_result.stalls);
  EXPECT_EQ(fleet_result.timeouts, local_result.timeouts);
  EXPECT_EQ(fleet_result.restores, local_result.restores);
  EXPECT_EQ(fleet_result.snapshot_restores, local_result.snapshot_restores);
  EXPECT_EQ(fleet_result.corpus_size, local_result.corpus_size);
  EXPECT_EQ(fleet_result.elapsed, local_result.elapsed);
  EXPECT_EQ(fleet_result.bugs_rejected, local_result.bugs_rejected);
  EXPECT_EQ(fleet_result.link.transactions, local_result.link.transactions);
  EXPECT_EQ(fleet_result.link.bytes_read, local_result.link.bytes_read);
  EXPECT_EQ(fleet_result.link.bytes_written, local_result.link.bytes_written);
  EXPECT_EQ(fleet_result.link.flash_bytes, local_result.link.flash_bytes);

  // Coverage series, sampled at identical virtual instants.
  ASSERT_EQ(fleet_result.series.size(), local_result.series.size());
  for (size_t i = 0; i < local_result.series.size(); ++i) {
    EXPECT_EQ(fleet_result.series[i].time, local_result.series[i].time);
    EXPECT_EQ(fleet_result.series[i].coverage, local_result.series[i].coverage);
  }

  // Same corpus: identical programs in identical admission order.
  EXPECT_EQ(fleet_result.corpus_programs, local_result.corpus_programs);

  // Same bug table with full provenance (compare through the same wire
  // conversion the worker uses, so text renders line up exactly).
  ASSERT_EQ(results[0].bugs.size(), local_result.bugs.size());
  for (size_t i = 0; i < local_result.bugs.size(); ++i) {
    ExpectSameBug(results[0].bugs[i], ToWireBug(local_result.bugs[i]));
  }
}

TEST_F(FleetDifferentialTest, SingleWorkerMatchesInProcessZephyr) {
  RunDifferential("zephyr", 7);
}

TEST_F(FleetDifferentialTest, SingleWorkerMatchesInProcessSecondSeed) {
  RunDifferential("zephyr", 1234);
}

TEST_F(FleetDifferentialTest, SingleWorkerMatchesInProcessFreeRtos) {
  RunDifferential("freertos", 99);
}

TEST_F(FleetDifferentialTest, TwoShardsTrackTwoJobFarm) {
  // At two concurrent sessions the shared-corpus interleaving is thread-timing
  // dependent (the in-process farm makes the same non-guarantee), so this
  // compares campaign-scale truths, not bits: the sharded run must complete
  // both shards and land in the same throughput regime as the 2-job farm.
  FuzzerConfig config = DiffConfig("zephyr", 7);
  BoardFarm farm(config, /*jobs=*/2);
  auto local = farm.Run();
  ASSERT_TRUE(local.ok()) << local.status().ToString();

  telemetry::MemoryEventSink orch_sink;
  Orchestrator::Options options;
  options.sink = &orch_sink;
  auto orchestrator = Orchestrator::Create(std::move(options));
  ASSERT_TRUE(orchestrator.ok());
  FleetCampaignSpec spec;
  spec.campaign_id = "diff2";
  spec.config = config;
  spec.shards = 2;
  ASSERT_TRUE(orchestrator.value()->AddCampaign(spec).ok());

  auto [client, server] = LoopbackPair();
  std::thread handler(
      [&] { orchestrator.value()->ServeConnection(server.get()); });
  telemetry::MemoryEventSink worker_sink;
  FleetWorker::Options worker_options;
  worker_options.capacity = 2;
  worker_options.sink = &worker_sink;
  auto worker = FleetWorker::Create(std::move(worker_options));
  ASSERT_TRUE(worker.ok());
  Status ran = worker.value()->Run(client.get());
  ASSERT_TRUE(ran.ok()) << ran.ToString();
  handler.join();

  EXPECT_EQ(orchestrator.value()->CompletedShards("diff2"), 2);
  auto results = orchestrator.value()->Results();
  ASSERT_EQ(results.size(), 1u);
  const CampaignResult& fleet_result = results[0].result;
  EXPECT_GT(fleet_result.execs, local->execs / 2);
  EXPECT_LT(fleet_result.execs, local->execs * 2);
  EXPECT_GT(fleet_result.final_coverage, local->final_coverage / 2);
  EXPECT_EQ(results[0].leases_granted, 2u);
  EXPECT_EQ(results[0].leases_reclaimed, 0u);
}

}  // namespace
}  // namespace fleet
}  // namespace eof
