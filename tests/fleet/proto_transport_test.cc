// Fleet wire protocol and transport tests: codec round-trips for every message,
// frame validation against corruption, loopback queue semantics, and a TCP
// round-trip over a real localhost socket.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/fleet/proto.h"
#include "src/fleet/transport.h"

namespace eof {
namespace fleet {
namespace {

TEST(ProtoTest, FrameRoundTrips) {
  Frame frame;
  frame.type = MsgType::kSync;
  frame.payload = {1, 2, 3, 0xff, 0};
  std::vector<uint8_t> wire = EncodeFrame(frame);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + frame.payload.size());

  auto decoded = DecodeFrame(wire.data(), wire.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, MsgType::kSync);
  EXPECT_EQ(decoded->payload, frame.payload);

  MsgType type = MsgType::kGoodbye;
  auto payload_size = DecodeFrameHeader(wire.data(), &type);
  ASSERT_TRUE(payload_size.ok());
  EXPECT_EQ(payload_size.value(), frame.payload.size());
  EXPECT_EQ(type, MsgType::kSync);
}

TEST(ProtoTest, FrameRejectsCorruption) {
  Frame frame;
  frame.type = MsgType::kHello;
  frame.payload = Encode(HelloMsg{});
  std::vector<uint8_t> wire = EncodeFrame(frame);

  std::vector<uint8_t> bad_magic = wire;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(DecodeFrame(bad_magic.data(), bad_magic.size()).ok());

  std::vector<uint8_t> bad_version = wire;
  bad_version[4] = 0xee;
  EXPECT_FALSE(DecodeFrame(bad_version.data(), bad_version.size()).ok());

  std::vector<uint8_t> bad_type = wire;
  bad_type[6] = 0x7f;  // type 0x7f is outside [kHello, kGoodbye]
  EXPECT_FALSE(DecodeFrame(bad_type.data(), bad_type.size()).ok());

  EXPECT_FALSE(DecodeFrame(wire.data(), wire.size() - 1).ok());
  EXPECT_FALSE(DecodeFrame(wire.data(), kFrameHeaderBytes - 1).ok());
}

TEST(ProtoTest, HandshakeMessagesRoundTrip) {
  HelloMsg hello;
  hello.worker_name = "rig-7";
  hello.capacity = 8;
  auto hello2 = DecodeHello(Encode(hello));
  ASSERT_TRUE(hello2.ok());
  EXPECT_EQ(hello2->worker_name, "rig-7");
  EXPECT_EQ(hello2->capacity, 8u);

  HelloAckMsg ack;
  ack.worker_id = 42;
  ack.heartbeat_interval_ms = 250;
  ack.lease_timeout_ms = 2000;
  auto ack2 = DecodeHelloAck(Encode(ack));
  ASSERT_TRUE(ack2.ok());
  EXPECT_EQ(ack2->worker_id, 42u);
  EXPECT_EQ(ack2->heartbeat_interval_ms, 250u);
  EXPECT_EQ(ack2->lease_timeout_ms, 2000u);
}

TEST(ProtoTest, LeaseGrantRoundTrips) {
  LeaseGrantMsg grant;
  grant.config.campaign_id = "night-run";
  grant.config.os_name = "zephyr";
  grant.config.board_name = "frdm_k64f";
  grant.config.seed = 1234;
  grant.config.budget_us = 60'000'000;
  grant.config.total_shards = 8;
  grant.config.flags = kFlagCoverageFeedback | kFlagDirected;
  grant.config.seed_programs = {"r0 = k_yield()", "r1 = k_msgq_put(r0, `00`)"};
  grant.leases.push_back({77, 3, 2});
  grant.leases.push_back({78, 5, 1});
  grant.coverage = {0xaa, 0xbb};
  grant.corpus.push_back({"r0 = k_yield()", 4});
  grant.focus = {1, 9, 200};

  auto grant2 = DecodeLeaseGrant(Encode(grant));
  ASSERT_TRUE(grant2.ok());
  EXPECT_EQ(grant2->config.campaign_id, "night-run");
  EXPECT_EQ(grant2->config.seed, 1234u);
  EXPECT_EQ(grant2->config.flags, grant.config.flags);
  EXPECT_EQ(grant2->config.seed_programs, grant.config.seed_programs);
  ASSERT_EQ(grant2->leases.size(), 2u);
  EXPECT_EQ(grant2->leases[0].lease_id, 77u);
  EXPECT_EQ(grant2->leases[0].shard, 3u);
  EXPECT_EQ(grant2->leases[0].attempt, 2u);
  EXPECT_EQ(grant2->coverage, grant.coverage);
  ASSERT_EQ(grant2->corpus.size(), 1u);
  EXPECT_EQ(grant2->corpus[0].text, "r0 = k_yield()");
  EXPECT_EQ(grant2->corpus[0].new_edges, 4u);
  EXPECT_EQ(grant2->focus, grant.focus);
}

TEST(ProtoTest, SyncRoundTrips) {
  SyncMsg sync;
  sync.worker_id = 3;
  sync.campaign_id = "c";
  sync.seq = 17;
  sync.shards.push_back({9, 1, 500, 12, 1});
  sync.coverage_delta = {1, 2, 3};
  sync.corpus.push_back({"prog", 2});
  BugWire bug;
  bug.catalog_id = 6;
  bug.detector = "watchdog";
  bug.excerpt = "STALL";
  bug.program_text = "r0 = k_yield()";
  bug.uart_tail = "line1\nline2";
  sync.bugs.push_back(bug);
  sync.focus = {4, 5};

  auto sync2 = DecodeSync(Encode(sync));
  ASSERT_TRUE(sync2.ok());
  EXPECT_EQ(sync2->seq, 17u);
  ASSERT_EQ(sync2->shards.size(), 1u);
  EXPECT_EQ(sync2->shards[0].lease_id, 9u);
  EXPECT_EQ(sync2->shards[0].completed, 1u);
  ASSERT_EQ(sync2->bugs.size(), 1u);
  EXPECT_EQ(sync2->bugs[0].catalog_id, 6u);
  EXPECT_EQ(sync2->bugs[0].uart_tail, "line1\nline2");
  EXPECT_EQ(sync2->focus, sync.focus);
}

TEST(ProtoTest, WorkerFinalRoundTrips) {
  WorkerFinalMsg final_msg;
  final_msg.worker_id = 2;
  final_msg.campaign_id = "c";
  final_msg.seq = 5;
  final_msg.final_coverage = 100;
  final_msg.execs = 5000;
  final_msg.crashes = 3;
  final_msg.link_bytes_read = 1 << 20;
  final_msg.link_warm_restores = 7;
  final_msg.series = {{0, 0}, {1000, 50}, {2000, 100}};

  auto final2 = DecodeWorkerFinal(Encode(final_msg));
  ASSERT_TRUE(final2.ok());
  EXPECT_EQ(final2->final_coverage, 100u);
  EXPECT_EQ(final2->execs, 5000u);
  EXPECT_EQ(final2->crashes, 3u);
  EXPECT_EQ(final2->link_bytes_read, 1u << 20);
  EXPECT_EQ(final2->link_warm_restores, 7u);
  EXPECT_EQ(final2->series, final_msg.series);
}

TEST(ProtoTest, DecodersRejectTruncationAndTrailingBytes) {
  std::vector<uint8_t> payload = Encode(HelloAckMsg{});
  std::vector<uint8_t> truncated(payload.begin(), payload.end() - 1);
  EXPECT_FALSE(DecodeHelloAck(truncated).ok());

  std::vector<uint8_t> trailing = payload;
  trailing.push_back(0);
  EXPECT_FALSE(DecodeHelloAck(trailing).ok());

  // A Sync payload is not a LeaseGrant payload.
  SyncMsg sync;
  sync.worker_id = 1;
  EXPECT_FALSE(DecodeLeaseGrant(Encode(sync)).ok());
}

TEST(TransportTest, LoopbackPairMovesFrames) {
  auto [a, b] = LoopbackPair();
  Frame frame;
  frame.type = MsgType::kHello;
  frame.payload = Encode(HelloMsg{"w", 1});
  ASSERT_TRUE(a->Send(frame).ok());

  auto got = b->Recv(1000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->type, MsgType::kHello);
  EXPECT_EQ(got->payload, frame.payload);

  // Nothing queued: times out.
  auto empty = b->Recv(10);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), ErrorCode::kTimeout);

  // Close unblocks and fails the peer.
  a->Close();
  auto closed = b->Recv(1000);
  ASSERT_FALSE(closed.ok());
  EXPECT_EQ(closed.status().code(), ErrorCode::kUnavailable);
  EXPECT_FALSE(b->Send(frame).ok());
}

TEST(TransportTest, LoopbackPreservesFrameOrder) {
  auto [a, b] = LoopbackPair();
  for (uint32_t i = 0; i < 10; ++i) {
    Frame frame;
    frame.type = MsgType::kSync;
    frame.payload = {static_cast<uint8_t>(i)};
    ASSERT_TRUE(a->Send(frame).ok());
  }
  for (uint32_t i = 0; i < 10; ++i) {
    auto got = b->Recv(1000);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->payload[0], static_cast<uint8_t>(i));
  }
}

TEST(TransportTest, LoopbackListenerAcceptsConnections) {
  LoopbackListener listener;
  auto timeout = listener.Accept(10);
  ASSERT_FALSE(timeout.ok());
  EXPECT_EQ(timeout.status().code(), ErrorCode::kTimeout);

  std::unique_ptr<Transport> client = listener.Connect();
  auto server = listener.Accept(1000);
  ASSERT_TRUE(server.ok());

  Frame frame;
  frame.type = MsgType::kGoodbye;
  frame.payload = Encode(GoodbyeMsg{1});
  ASSERT_TRUE(client->Send(frame).ok());
  auto got = server.value()->Recv(1000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->type, MsgType::kGoodbye);

  listener.Close();
  auto after_close = listener.Accept(10);
  ASSERT_FALSE(after_close.ok());
  EXPECT_EQ(after_close.status().code(), ErrorCode::kUnavailable);
}

TEST(TransportTest, TcpRoundTrip) {
  uint16_t port = 0;
  auto listener = ListenTcp(0, &port);
  if (!listener.ok()) {
    GTEST_SKIP() << "cannot bind localhost: " << listener.status().ToString();
  }
  ASSERT_GT(port, 0);

  auto client = ConnectTcp("127.0.0.1", port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto server = listener.value()->Accept(2000);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Big frame to exercise chunked socket reads.
  Frame frame;
  frame.type = MsgType::kSync;
  frame.payload.assign(1 << 20, 0x5a);
  ASSERT_TRUE(client.value()->Send(frame).ok());
  auto got = server.value()->Recv(5000);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->payload.size(), frame.payload.size());
  EXPECT_EQ(got->payload, frame.payload);

  // And the reply direction.
  Frame reply;
  reply.type = MsgType::kSyncAck;
  reply.payload = Encode(SyncAckMsg{});
  ASSERT_TRUE(server.value()->Send(reply).ok());
  auto got_reply = client.value()->Recv(5000);
  ASSERT_TRUE(got_reply.ok());
  EXPECT_EQ(got_reply->type, MsgType::kSyncAck);

  // Peer close surfaces as Unavailable between frames.
  client.value()->Close();
  auto closed = server.value()->Recv(5000);
  ASSERT_FALSE(closed.ok());
  EXPECT_EQ(closed.status().code(), ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace fleet
}  // namespace eof
