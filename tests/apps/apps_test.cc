// Table-driven + property tests of the application-level targets: the HTTP request
// parser/router and the JSON recursive-descent parser, exercised directly against a
// kernel context (no fuzzer in the loop).

#include <gtest/gtest.h>

#include "src/agent/agent_layout.h"
#include "src/apps/apps.h"
#include "src/common/rng.h"
#include "src/core/image_builder.h"
#include "src/hw/board_catalog.h"
#include "src/kernel/kernel_context.h"
#include "src/os/all_oses.h"

namespace eof {
namespace apps {
namespace {

class AppsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }

  AppsTest() : board_(BoardSpecByName("esp32-devkitc").value()) {
    ImageBuildOptions options;
    options.os_name = "freertos";
    image_ = BuildImage(board_.spec(), options).value();
    board_.InstallImage(image_);
    ring_.ram_offset = kCovRingOffset;
    ring_.capacity = 512;
    ctx_ = std::make_unique<KernelContext>(board_, *image_, ring_);
    state_.server_started = true;
    state_.server_port = 80;
  }

  int64_t Http(const std::string& raw) { return HttpHandleRaw(*ctx_, state_, raw); }
  int64_t Json(const std::string& doc) { return JsonParse(*ctx_, state_, doc); }

  Board board_;
  std::shared_ptr<FirmwareImage> image_;
  CovRingLayout ring_;
  std::unique_ptr<KernelContext> ctx_;
  AppsState state_;
};

TEST_F(AppsTest, HttpServerStartSemantics) {
  AppsState fresh;
  EXPECT_EQ(HttpHandleRaw(*ctx_, fresh, "GET / HTTP/1.1\r\n\r\n"), -1);  // not started
  EXPECT_EQ(HttpServerStart(*ctx_, fresh, 0), 400);
  EXPECT_EQ(HttpServerStart(*ctx_, fresh, 8080), 200);
  EXPECT_EQ(HttpServerStart(*ctx_, fresh, 8081), 500);  // already bound
}

struct HttpCase {
  const char* name;
  const char* raw;
  int64_t status;
};

class HttpTable : public AppsTest, public ::testing::WithParamInterface<HttpCase> {};

TEST_P(HttpTable, ReturnsExpectedStatus) {
  EXPECT_EQ(Http(GetParam().raw), GetParam().status) << GetParam().raw;
}

INSTANTIATE_TEST_SUITE_P(
    Requests, HttpTable,
    ::testing::Values(
        HttpCase{"index", "GET / HTTP/1.1\r\nhost: a\r\n\r\n", 200},
        HttpCase{"index_html", "GET /index.html HTTP/1.0\r\n\r\n", 200},
        HttpCase{"index_post_rejected", "POST / HTTP/1.1\r\n\r\n", 405},
        HttpCase{"status_query", "GET /api/status?verbose=1&x=2 HTTP/1.1\r\n\r\n", 200},
        HttpCase{"led_unauthorized",
                 "POST /api/led HTTP/1.1\r\ncontent-length: 2\r\n\r\non", 401},
        HttpCase{"led_on",
                 "POST /api/led HTTP/1.1\r\nauthorization: Bearer tok-3fe1\r\n"
                 "content-length: 2\r\n\r\non",
                 204},
        HttpCase{"led_bad_body",
                 "POST /api/led HTTP/1.1\r\nauthorization: Bearer tok-3fe1\r\n"
                 "content-length: 3\r\n\r\ndim",
                 400},
        HttpCase{"upload", "PUT /upload HTTP/1.1\r\ncontent-length: 4\r\n\r\nDATA", 201},
        HttpCase{"upload_empty", "PUT /upload HTTP/1.1\r\ncontent-length: 0\r\n\r\n", 400},
        HttpCase{"chunked_upload",
                 "POST /upload HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"
                 "4\r\nDATA\r\n0\r\n\r\n",
                 201},
        HttpCase{"chunked_bad_hex",
                 "POST /upload HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\nZZ\r\nx", 400},
        HttpCase{"files_delete", "DELETE /files/a.txt HTTP/1.1\r\n\r\n", 204},
        HttpCase{"files_traversal", "GET /files/../etc HTTP/1.1\r\n\r\n", 400},
        HttpCase{"not_found", "GET /nope HTTP/1.1\r\n\r\n", 404},
        HttpCase{"bad_method", "BREW /coffee HTTP/1.1\r\n\r\n", 405},
        HttpCase{"bad_version", "GET / HTTP/9.9\r\n\r\n", 400},
        HttpCase{"no_crlf", "GET / HTTP/1.1", 400},
        HttpCase{"missing_colon", "GET / HTTP/1.1\r\nbadheader\r\n\r\n", 400},
        HttpCase{"bad_content_length", "GET / HTTP/1.1\r\ncontent-length: 12x\r\n\r\n", 400},
        HttpCase{"truncated_body", "POST / HTTP/1.1\r\ncontent-length: 50\r\n\r\nshort",
                 400}),
    [](const ::testing::TestParamInfo<HttpCase>& info) { return info.param.name; });

TEST_F(AppsTest, HttpHeaderLimit) {
  std::string raw = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 40; ++i) {
    raw += "x-h" + std::to_string(i) + ": v\r\n";
  }
  raw += "\r\n";
  EXPECT_EQ(Http(raw), 400);
}

TEST_F(AppsTest, HttpStatsAccumulate) {
  (void)Http("GET / HTTP/1.1\r\n\r\n");
  (void)Http("GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_EQ(state_.requests_handled, 2u);
  EXPECT_EQ(state_.errors_returned, 1u);
}

struct JsonCase {
  const char* name;
  const char* doc;
  bool valid;
};

class JsonTable : public AppsTest, public ::testing::WithParamInterface<JsonCase> {};

TEST_P(JsonTable, ParsesOrRejects) {
  int64_t nodes = Json(GetParam().doc);
  if (GetParam().valid) {
    EXPECT_GT(nodes, 0) << GetParam().doc << " -> " << nodes;
  } else {
    EXPECT_LT(nodes, 0) << GetParam().doc << " -> " << nodes;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Documents, JsonTable,
    ::testing::Values(
        JsonCase{"number", "42", true}, JsonCase{"negative_frac_exp", "-12.5e+3", true},
        JsonCase{"string_escapes", "\"a\\n\\t\\u0041\"", true},
        JsonCase{"literals", "[true,false,null]", true},
        JsonCase{"nested", "{\"a\":{\"b\":[1,{\"c\":[]}]}}", true},
        JsonCase{"whitespace", "  { \"k\" : [ 1 , 2 ] }  ", true},
        JsonCase{"empty_doc", "", false}, JsonCase{"bare_minus", "-", false},
        JsonCase{"trailing_garbage", "1 x", false},
        JsonCase{"bad_escape", "\"\\q\"", false},
        JsonCase{"short_unicode", "\"\\u00\"", false},
        JsonCase{"unterminated_string", "\"abc", false},
        JsonCase{"missing_colon", "{\"a\" 1}", false},
        JsonCase{"missing_comma", "[1 2]", false},
        JsonCase{"bad_frac", "1.", false}, JsonCase{"bad_exp", "1e", false},
        JsonCase{"depth_bomb", "[[[[[[[[[[[[[[[1]]]]]]]]]]]]]]]", false}),
    [](const ::testing::TestParamInfo<JsonCase>& info) { return info.param.name; });

TEST_F(AppsTest, JsonNodeCountIsExact) {
  // {k:[1,2]} = object + string? keys are not nodes; object, array, 1, 2 = 4.
  EXPECT_EQ(Json("{\"k\":[1,2]}"), 4);
}

// Property: arbitrary bytes never wedge the parser (it terminates with a verdict), and
// every valid document round-trips through deterministic re-parse.
TEST_F(AppsTest, JsonFuzzPropertyNoHangNoCrash) {
  Rng rng(2024);
  for (int i = 0; i < 2000; ++i) {
    std::string doc;
    size_t len = rng.Below(64);
    for (size_t c = 0; c < len; ++c) {
      doc.push_back(static_cast<char>("{}[]\",:0123456789.eE+-truefalsn \\\"x"[rng.Below(35)]));
    }
    int64_t first = Json(doc);
    EXPECT_EQ(first, Json(doc)) << "non-deterministic parse of: " << doc;
  }
}

}  // namespace
}  // namespace apps
}  // namespace eof
