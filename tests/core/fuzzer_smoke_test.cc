// Short-campaign smoke tests of the full EOF engine on each OS: coverage grows, the
// engine survives crashes/stalls via restoration, and feedback beats no-feedback.

#include "src/core/fuzzer.h"

#include <gtest/gtest.h>

#include "src/os/all_oses.h"

namespace eof {
namespace {

class FuzzerSmokeTest : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }
};

TEST_P(FuzzerSmokeTest, ShortCampaignMakesProgress) {
  FuzzerConfig config;
  config.os_name = GetParam();
  config.seed = 11;
  config.budget = 5 * kVirtualMinute;
  config.sample_points = 10;
  EofFuzzer fuzzer(config);
  auto result = fuzzer.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const CampaignResult& campaign = result.value();
  EXPECT_GT(campaign.execs, 10u);
  EXPECT_GT(campaign.final_coverage, 20u);
  EXPECT_EQ(campaign.series.size(), 10u);
  // Series is monotone.
  for (size_t i = 1; i < campaign.series.size(); ++i) {
    EXPECT_GE(campaign.series[i].coverage, campaign.series[i - 1].coverage);
  }
  EXPECT_LE(campaign.elapsed, config.budget + kVirtualMinute);
}

INSTANTIATE_TEST_SUITE_P(AllOses, FuzzerSmokeTest,
                         ::testing::Values("freertos", "rtthread", "nuttx", "zephyr",
                                           "pokos"));

TEST(FuzzerFeedbackTest, FeedbackBuildsACorpus) {
  ASSERT_TRUE(RegisterAllOses().ok());
  FuzzerConfig config;
  config.os_name = "rtthread";
  config.seed = 3;
  config.budget = 5 * kVirtualMinute;
  EofFuzzer fuzzer(config);
  auto result = fuzzer.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().corpus_size, 5u);
}

TEST(FuzzerFeedbackTest, NoFeedbackKeepsNoCorpus) {
  ASSERT_TRUE(RegisterAllOses().ok());
  FuzzerConfig config;
  config.os_name = "rtthread";
  config.seed = 3;
  config.budget = 5 * kVirtualMinute;
  config.coverage_feedback = false;
  EofFuzzer fuzzer(config);
  auto result = fuzzer.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().corpus_size, 0u);
}

TEST(FuzzerCrashTest, SurvivesCrashesOnZephyr) {
  ASSERT_TRUE(RegisterAllOses().ok());
  FuzzerConfig config;
  config.os_name = "zephyr";  // k_heap_init(size<8) crashes are shallow
  config.seed = 5;
  config.budget = 20 * kVirtualMinute;
  EofFuzzer fuzzer(config);
  auto result = fuzzer.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The campaign keeps executing after crashes (restores happened).
  if (result.value().crashes > 0) {
    EXPECT_GT(result.value().restores, 0u);
  }
  EXPECT_GT(result.value().execs, 50u);
}

}  // namespace
}  // namespace eof
