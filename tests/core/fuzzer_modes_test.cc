// Engine-mode tests: watchdog ablation, monitor configurations, restore modes under
// flash damage, oversized-program trimming, and extension flags.

#include <gtest/gtest.h>

#include "src/core/fuzzer.h"
#include "src/os/all_oses.h"

namespace eof {
namespace {

class FuzzerModesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }

  CampaignResult Run(FuzzerConfig config) {
    EofFuzzer fuzzer(std::move(config));
    auto result = fuzzer.Run();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result.value() : CampaignResult{};
  }
};

TEST_F(FuzzerModesTest, WatchdogsOffBurnsManualInterventionTime) {
  // RT-Thread wedges often (stale-console hangs); without watchdogs each wedge costs a
  // 30-virtual-minute human walk-over, so the no-watchdog campaign executes far less.
  FuzzerConfig with;
  with.os_name = "rtthread";
  with.seed = 61;
  with.budget = 2 * kVirtualHour;
  FuzzerConfig without = with;
  without.watchdogs = false;
  CampaignResult guarded = Run(with);
  CampaignResult manual = Run(without);
  EXPECT_GT(guarded.execs, manual.execs * 2);
}

TEST_F(FuzzerModesTest, TimeoutOnlyDetectionIdentifiesNothing) {
  FuzzerConfig config;
  config.os_name = "zephyr";
  config.seed = 62;
  config.budget = 90 * kVirtualMinute;
  config.log_monitor = false;
  config.exception_monitor = false;
  CampaignResult result = Run(config);
  // Crashes still *happen* (stall events / restores), but nothing is identified.
  EXPECT_TRUE(result.bugs.empty());
  EXPECT_GT(result.stalls + result.timeouts + result.crashes, 0u);
}

TEST_F(FuzzerModesTest, LogMonitorAloneStillCatchesAssertionBugs) {
  // Exception monitor off: panics degrade to stalls, but assertion bugs (#5/#8) leave
  // console text the log monitor reads during the stall protocol.
  FuzzerConfig config;
  config.os_name = "rtthread";
  config.seed = 63;
  config.budget = 2 * kVirtualHour;
  config.exception_monitor = false;
  CampaignResult result = Run(config);
  bool found_log_bug = false;
  for (const BugReport& bug : result.bugs) {
    EXPECT_EQ(bug.detector, "log");  // only the log monitor is armed
    if (bug.catalog_id == 5 || bug.catalog_id == 8) {
      found_log_bug = true;
    }
  }
  EXPECT_TRUE(found_log_bug);
}

TEST_F(FuzzerModesTest, RebootOnlyModeRecoversViaManualReflashAfterFlashDamage) {
  // FreeRTOS bug #13 corrupts flash. In reboot-only mode the engine pays the manual-
  // intervention cost and still recovers (a human reflashes), so the campaign finishes.
  FuzzerConfig config;
  config.os_name = "freertos";
  config.seed = 64;
  config.budget = 4 * kVirtualHour;
  config.restore_mode = RestoreMode::kRebootOnly;
  CampaignResult result = Run(config);
  EXPECT_GT(result.execs, 100u);
  if (result.FoundBug(13)) {
    EXPECT_GT(result.restores, 0u);
  }
}

TEST_F(FuzzerModesTest, SubsystemConfinementHoldsDuringCampaign) {
  FuzzerConfig config;
  config.os_name = "freertos";
  config.seed = 65;
  config.budget = 30 * kVirtualMinute;
  config.gen.allowed_subsystems = {"json"};
  config.instrumentation.module_filter = {"apps/json"};
  CampaignResult result = Run(config);
  EXPECT_GT(result.execs, 10u);
  // Coverage confined to the JSON module: far below a full-system campaign's take.
  EXPECT_LT(result.final_coverage, 160u);
  EXPECT_GT(result.final_coverage, 5u);
}

TEST_F(FuzzerModesTest, DeterministicForSeedAndDifferentAcrossSeeds) {
  FuzzerConfig config;
  config.os_name = "nuttx";
  config.seed = 66;
  config.budget = 20 * kVirtualMinute;
  CampaignResult a = Run(config);
  CampaignResult b = Run(config);
  EXPECT_EQ(a.final_coverage, b.final_coverage);
  EXPECT_EQ(a.execs, b.execs);
  EXPECT_EQ(a.crashes, b.crashes);
  config.seed = 67;
  CampaignResult c = Run(config);
  EXPECT_NE(a.execs, c.execs);
}

}  // namespace
}  // namespace eof
