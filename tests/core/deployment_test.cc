// End-to-end smoke tests of the deploy → boot → execute loop (Figure 4): flash the image,
// park at executor_main, feed a program through the mailbox, observe status and coverage.

#include "src/core/deployment.h"

#include <gtest/gtest.h>

#include "src/agent/wire.h"
#include "src/kernel/os.h"
#include "src/os/all_oses.h"

namespace eof {
namespace {

class DeploymentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }

  std::unique_ptr<Deployment> Deploy(const std::string& os_name) {
    DeployOptions options;
    options.os_name = os_name;
    auto deployment = Deployment::Create(options);
    EXPECT_TRUE(deployment.ok()) << deployment.status().ToString();
    return deployment.ok() ? std::move(deployment.value()) : nullptr;
  }

  // Runs one program through the Figure-4 protocol: stop at executor_main, publish the
  // test case, resume until the agent is back at executor_main.
  void RunProgram(Deployment& deployment, const WireProgram& program) {
    uint64_t executor_main = deployment.SymbolAddress("executor_main").value();
    ASSERT_TRUE(deployment.port().SetBreakpoint(executor_main).ok());
    auto parked = deployment.port().Continue();
    ASSERT_TRUE(parked.ok()) << parked.status().ToString();
    ASSERT_EQ(parked.value().reason, HaltReason::kBreakpoint);
    ASSERT_TRUE(deployment.WriteTestCase(EncodeProgram(program)).ok());
    auto done = deployment.port().Continue();
    ASSERT_TRUE(done.ok()) << done.status().ToString();
  }
};

TEST_F(DeploymentTest, BootsToAgentIdle) {
  auto deployment = Deploy("freertos");
  ASSERT_NE(deployment, nullptr);
  EXPECT_EQ(deployment->board().power_state(), PowerState::kRunning);

  // Boot banner reaches the UART.
  std::string uart = deployment->port().DrainUart();
  EXPECT_NE(uart.find("FreeRTOS"), std::string::npos) << uart;
  EXPECT_NE(uart.find("eof-agent: ready"), std::string::npos) << uart;

  // With no breakpoints, the agent parks waiting for input.
  auto stop = deployment->port().Continue();
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop.value().reason, HaltReason::kIdle);

  auto status = deployment->ReadAgentStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().state, AgentState::kWaiting);
}

TEST_F(DeploymentTest, StopsAtExecutorMainBreakpoint) {
  auto deployment = Deploy("freertos");
  ASSERT_NE(deployment, nullptr);
  uint64_t executor_main = deployment->SymbolAddress("executor_main").value();
  ASSERT_TRUE(deployment->port().SetBreakpoint(executor_main).ok());

  auto stop = deployment->port().Continue();
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop.value().reason, HaltReason::kBreakpoint);
  EXPECT_EQ(stop.value().symbol, "executor_main");
}

TEST_F(DeploymentTest, ExecutesProgramAndReportsStatus) {
  auto deployment = Deploy("freertos");
  ASSERT_NE(deployment, nullptr);

  // Query API ids through a scratch OS instance (registration order is deterministic, so
  // ids match the booted instance).
  std::unique_ptr<Os> os = OsRegistry::Instance().Find("freertos").value().factory();
  const ApiSpec* create = os->registry().FindByName("xTaskCreate");
  ASSERT_NE(create, nullptr);

  WireProgram program;
  WireCall call;
  call.api_id = create->id;
  call.args = {WireArg::Bytes({'t', 'e', 's', 't'}), WireArg::Scalar(256), WireArg::Scalar(5)};
  program.calls.push_back(call);

  RunProgram(*deployment, program);

  auto status = deployment->ReadAgentStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().progs_done, 1u);
  EXPECT_EQ(status.value().total_calls, 1u);
  EXPECT_EQ(status.value().last_error, AgentError::kNone);

  // The instrumented kernel produced coverage.
  auto coverage = deployment->DrainCoverage();
  ASSERT_TRUE(coverage.ok());
  EXPECT_GT(coverage.value().size(), 0u);
}

TEST_F(DeploymentTest, RejectsMalformedProgram) {
  auto deployment = Deploy("freertos");
  ASSERT_NE(deployment, nullptr);
  ASSERT_TRUE(deployment->WriteTestCase({0xde, 0xad, 0xbe, 0xef}).ok());
  auto stop = deployment->port().Continue();
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop.value().reason, HaltReason::kIdle);

  auto status = deployment->ReadAgentStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().last_error, AgentError::kBadMagic);
  EXPECT_EQ(status.value().progs_done, 1u);
}

TEST_F(DeploymentTest, PanicFreezesTargetAndReflashRestores) {
  auto deployment = Deploy("freertos");
  ASSERT_NE(deployment, nullptr);

  std::unique_ptr<Os> os = OsRegistry::Instance().Find("freertos").value().factory();
  const ApiSpec* load = os->registry().FindByName("load_partitions");
  ASSERT_NE(load, nullptr);

  // Exception monitor: breakpoint on the OS exception handler.
  uint64_t handler = deployment->SymbolAddress("panic_handler").value();
  ASSERT_TRUE(deployment->port().SetBreakpoint(handler).ok());

  WireProgram program;
  WireCall call;
  call.api_id = load->id;
  call.args = {WireArg::Scalar(7), WireArg::Scalar(15)};  // long copy from a high slot -> bug #13
  program.calls.push_back(call);
  ASSERT_TRUE(deployment->WriteTestCase(EncodeProgram(program)).ok());

  auto stop = deployment->port().Continue();
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(stop.value().reason, HaltReason::kBreakpoint);
  EXPECT_EQ(stop.value().symbol, "panic_handler");
  EXPECT_EQ(deployment->board().power_state(), PowerState::kFaulted);

  std::string uart = deployment->port().DrainUart();
  EXPECT_NE(uart.find("Guru Meditation"), std::string::npos) << uart;

  // Bug #13 also corrupts flash: a plain reboot must NOT recover the target.
  ASSERT_TRUE(deployment->port().ResetTarget().ok());
  EXPECT_EQ(deployment->board().power_state(), PowerState::kBootFailed);
  auto dead = deployment->port().Continue();
  EXPECT_FALSE(dead.ok());  // connection timeout: watchdog #1 territory

  // Full reflash restores it.
  ASSERT_TRUE(deployment->ReflashAndReboot().ok());
  EXPECT_EQ(deployment->board().power_state(), PowerState::kRunning);
}

}  // namespace
}  // namespace eof
