// Detail tests of the deployment helpers: coverage-ring drop accounting, mailbox bounds,
// debug-port traffic statistics, and virtual-time cost accounting of the reflash path.

#include <gtest/gtest.h>

#include "src/core/deployment.h"
#include "src/hw/timing.h"
#include "src/kernel/os.h"
#include "src/os/all_oses.h"

namespace eof {
namespace {

class DeploymentDetailsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }

  std::unique_ptr<Deployment> Deploy(const std::string& os_name) {
    DeployOptions options;
    options.os_name = os_name;
    return std::move(Deployment::Create(options).value());
  }
};

TEST_F(DeploymentDetailsTest, MailboxRejectsOversizedTestCase) {
  auto deployment = Deploy("pokos");
  std::vector<uint8_t> oversized(kMailboxMaxBytes + 1, 0xab);
  EXPECT_EQ(deployment->WriteTestCase(oversized).code(), ErrorCode::kInvalidArgument);
  std::vector<uint8_t> max_size(kMailboxMaxBytes, 0xab);
  EXPECT_TRUE(deployment->WriteTestCase(max_size).ok());
}

TEST_F(DeploymentDetailsTest, CoverageDrainResetsHeaderAndReportsDrops) {
  auto deployment = Deploy("pokos");  // HiFive1: tiny 192-entry ring
  Board& board = deployment->board();
  // Fabricate a full ring with drops, as heavy instrumentation would leave it.
  CovRingLayout ring = deployment->cov_ring();
  ASSERT_EQ(ring.capacity, 192u);
  for (uint32_t i = 0; i < ring.capacity; ++i) {
    ASSERT_TRUE(board.RamWriteU64(ring.EntryOffset(0, i), 0x1000 + i).ok());
    ASSERT_TRUE(board.RamWriteU32(ring.EntryOffset(0, i) + 8, i % 5).ok());
  }
  ASSERT_TRUE(board.RamWriteU32(ring.BankOffset(0) + CovRingLayout::kCountOffset,
                                ring.capacity).ok());
  ASSERT_TRUE(
      board.RamWriteU32(ring.BankOffset(0) + CovRingLayout::kDroppedOffset, 7).ok());

  uint32_t dropped = 0;
  auto entries = deployment->DrainCoverage(&dropped);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value().size(), ring.capacity);
  EXPECT_EQ(dropped, 7u);
  EXPECT_EQ(entries.value()[3].edge, 0x1003u);
  EXPECT_EQ(entries.value()[3].call, 3u);  // attribution survives the drain

  // Header reset: a second drain is empty.
  auto again = deployment->DrainCoverage(&dropped);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().empty());
  EXPECT_EQ(dropped, 0u);
}

TEST_F(DeploymentDetailsTest, ScribbledRingCountIsClamped) {
  auto deployment = Deploy("pokos");
  CovRingLayout ring = deployment->cov_ring();
  // A buggy target wrote a huge count; the host must not issue a giant read.
  ASSERT_TRUE(deployment->board().RamWriteU32(
      ring.BankOffset(0) + CovRingLayout::kCountOffset, 0xffffffff).ok());
  auto entries = deployment->DrainCoverage();
  ASSERT_TRUE(entries.ok());
  EXPECT_LE(entries.value().size(), ring.capacity);
}

TEST_F(DeploymentDetailsTest, CorruptRingHeaderFailsValidationLoudly) {
  auto deployment = Deploy("pokos");
  CovRingLayout ring = deployment->cov_ring();
  ASSERT_TRUE(deployment->ValidateCovRing().ok());
  // An image built against the old unversioned layout leaves garbage where the
  // version magic lives; deployment must refuse it instead of mis-parsing drains.
  ASSERT_TRUE(deployment->board()
                  .RamWriteU32(ring.ram_offset + CovRingLayout::kVersionOffset,
                               0xdeadbeef)
                  .ok());
  Status bad_version = deployment->ValidateCovRing();
  EXPECT_EQ(bad_version.code(), ErrorCode::kFailedPrecondition);
  EXPECT_NE(bad_version.ToString().find("version"), std::string::npos);

  ASSERT_TRUE(deployment->board()
                  .RamWriteU32(ring.ram_offset + CovRingLayout::kVersionOffset,
                               CovRingLayout::kVersionMagic)
                  .ok());
  ASSERT_TRUE(deployment->board()
                  .RamWriteU32(ring.ram_offset + CovRingLayout::kCapacityOffset,
                               ring.capacity + 1)
                  .ok());
  Status bad_capacity = deployment->ValidateCovRing();
  EXPECT_EQ(bad_capacity.code(), ErrorCode::kFailedPrecondition);
  EXPECT_NE(bad_capacity.ToString().find("capacity"), std::string::npos);
}

TEST_F(DeploymentDetailsTest, DebugPortStatsAccumulate) {
  auto deployment = Deploy("zephyr");
  DebugPortStats before = deployment->port().stats();
  (void)deployment->port().ReadMem(deployment->board_spec().ram_base, 256);
  (void)deployment->port().Continue();
  DebugPortStats after = deployment->port().stats();
  EXPECT_GT(after.transactions, before.transactions);
  EXPECT_EQ(after.bytes_read, before.bytes_read + 256);
  EXPECT_GT(after.flash_bytes, 0u);  // the initial deployment flashed partitions
  EXPECT_GE(after.resets, 1u);
}

TEST_F(DeploymentDetailsTest, ReflashCostScalesWithImageSize) {
  // Measures the full-reprogram cost model, so pin the legacy link: the batched
  // link's delta reflash would skip every (still pristine) partition.
  auto small = Deploy("zephyr");    // ~0.9 MB image
  auto large = Deploy("nuttx");     // ~3.6 MB image
  small->set_batched_link(false);
  large->set_batched_link(false);
  VirtualTime t0 = small->port().Now();
  ASSERT_TRUE(small->ReflashAndReboot().ok());
  VirtualDuration small_cost = small->port().Now() - t0;

  t0 = large->port().Now();
  ASSERT_TRUE(large->ReflashAndReboot().ok());
  VirtualDuration large_cost = large->port().Now() - t0;

  EXPECT_GT(large_cost, small_cost * 2);
  EXPECT_GT(small_cost, kRebootCost);  // flash programming dominates a bare reboot
}

TEST_F(DeploymentDetailsTest, DeltaReflashSkipsCleanPartitions) {
  auto deployment = Deploy("zephyr");
  const DebugPortStats before = deployment->port().stats();
  VirtualTime t0 = deployment->port().Now();
  ASSERT_TRUE(deployment->ReflashAndReboot().ok());
  const DebugPortStats after = deployment->port().stats();

  // Nothing was corrupted, so no byte is reprogrammed; every payload partition is
  // proven unchanged by checksum and skipped.
  EXPECT_EQ(after.flash_bytes, before.flash_bytes);
  EXPECT_GT(after.flash_skipped_bytes, before.flash_skipped_bytes);
  // The whole restore costs reboot + a few checksum round trips, far below the
  // 5 us/byte full reprogram (~4.5 virtual seconds for this image).
  EXPECT_LT(deployment->port().Now() - t0, kRebootCost * 4);
}

TEST_F(DeploymentDetailsTest, DeltaReflashReprogramsOnlyCorruptedPartition) {
  auto deployment = Deploy("zephyr");
  // Pick a payload-backed partition and corrupt one byte of its flash region.
  const Partition* victim = nullptr;
  uint64_t victim_bytes = 0;
  uint64_t payload_total = 0;
  for (const Partition& part : deployment->image().partition_table().partitions) {
    auto payload = deployment->image().PayloadOf(part.name);
    if (!payload.ok()) {
      continue;
    }
    payload_total += payload.value().size();
    if (victim == nullptr) {
      victim = &part;
      victim_bytes = payload.value().size();
    }
  }
  ASSERT_NE(victim, nullptr);
  auto byte = deployment->board().flash().Read(victim->offset, 1);
  ASSERT_TRUE(byte.ok());
  ASSERT_TRUE(deployment->board()
                  .FlashWrite(victim->offset, {static_cast<uint8_t>(~byte.value()[0])})
                  .ok());

  const DebugPortStats before = deployment->port().stats();
  ASSERT_TRUE(deployment->ReflashAndReboot().ok());
  const DebugPortStats after = deployment->port().stats();

  // Exactly the damaged partition is reprogrammed; the rest are checksum-skipped.
  EXPECT_EQ(after.flash_bytes - before.flash_bytes, victim_bytes);
  EXPECT_EQ(after.flash_skipped_bytes - before.flash_skipped_bytes,
            payload_total - victim_bytes);
}

TEST_F(DeploymentDetailsTest, BatchedDrainIsOneRoundTrip) {
  auto deployment = Deploy("pokos");
  Board& board = deployment->board();
  CovRingLayout ring = deployment->cov_ring();
  auto fill = [&](uint32_t count) {
    for (uint32_t i = 0; i < count; ++i) {
      ASSERT_TRUE(board.RamWriteU64(ring.EntryOffset(0, i), 0x2000 + i).ok());
    }
    ASSERT_TRUE(
        board.RamWriteU32(ring.BankOffset(0) + CovRingLayout::kCountOffset, count).ok());
  };

  fill(8);
  uint64_t t0 = deployment->port().stats().transactions;
  auto entries = deployment->DrainCoverage();
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value().size(), 8u);
  // Header read, entries prefetch, and both header subtracts fold into one batch.
  EXPECT_EQ(deployment->port().stats().transactions - t0, 1u);

  // The legacy protocol pays three round trips for the identical drain.
  deployment->set_batched_link(false);
  fill(8);
  t0 = deployment->port().stats().transactions;
  entries = deployment->DrainCoverage();
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries.value().size(), 8u);
  EXPECT_EQ(deployment->port().stats().transactions - t0, 3u);
}

TEST_F(DeploymentDetailsTest, WriteTestCaseIsOneRoundTrip) {
  auto deployment = Deploy("pokos");
  std::vector<uint8_t> encoded(64, 0xcd);
  uint64_t t0 = deployment->port().stats().transactions;
  ASSERT_TRUE(deployment->WriteTestCase(encoded).ok());
  EXPECT_EQ(deployment->port().stats().transactions - t0, 1u);

  deployment->set_batched_link(false);
  t0 = deployment->port().stats().transactions;
  ASSERT_TRUE(deployment->WriteTestCase(encoded).ok());
  EXPECT_EQ(deployment->port().stats().transactions - t0, 2u);
}

}  // namespace
}  // namespace eof
