// Tests of the image builder: flash layout, symbol publication, architecture gating,
// instrumentation sizing (§5.5.1 accounting), and flash-capacity rejection.

#include <gtest/gtest.h>

#include "src/core/image_builder.h"

#include "src/agent/agent_layout.h"
#include "src/hw/board_catalog.h"
#include "src/kernel/image_layout.h"
#include "src/kernel/os.h"
#include "src/os/all_oses.h"

namespace eof {
namespace {

class ImageBuilderTest : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }
};

TEST_P(ImageBuilderTest, BuildsOnDefaultBoardWithAllSymbols) {
  OsInfo info = OsRegistry::Instance().Find(GetParam()).value();
  BoardSpec spec = BoardSpecByName(info.default_board).value();
  ImageBuildOptions options;
  options.os_name = GetParam();
  auto image = BuildImage(spec, options);
  ASSERT_TRUE(image.ok()) << image.status().ToString();

  // The Figure-4 program points, the OS exception function, and the agent data blocks.
  std::unique_ptr<Os> os = info.factory();
  for (const char* symbol : {"agent_start", "executor_main", "read_prog", "execute_one",
                             "_kcmp_buf_full", "g_eof_status", "g_eof_mailbox",
                             "g_eof_cov_ring"}) {
    EXPECT_TRUE(image.value()->symbols().Has(symbol)) << symbol;
  }
  EXPECT_TRUE(image.value()->symbols().Has(os->exception_symbol()));

  // Partition layout: bootloader / ptable / kernel / nvs, table validates, ptable at the
  // shared constant the kernels use.
  const PartitionTable& table = image.value()->partition_table();
  ASSERT_EQ(table.partitions.size(), 4u);
  EXPECT_EQ(table.Find("ptable")->offset, kPtableFlashOffset);
  EXPECT_TRUE(table.Validate(spec.flash_bytes).ok());

  // Module code regions exist for every declared module and stay inside flash-ish space.
  EXPECT_EQ(image.value()->modules().size(), os->modules().size());
}

TEST_P(ImageBuilderTest, InstrumentationGrowsImageWithinPaperBand) {
  InstrumentationOptions off;
  off.enabled = false;
  uint64_t base = ComputeImageSize(GetParam(), off).value();
  uint64_t on = ComputeImageSize(GetParam(), InstrumentationOptions{}).value();
  double overhead = (static_cast<double>(on) - base) / base * 100.0;
  EXPECT_GT(overhead, 3.0) << GetParam();
  EXPECT_LT(overhead, 11.0) << GetParam();  // paper band: 4.32% .. 9.58%
}

INSTANTIATE_TEST_SUITE_P(AllOses, ImageBuilderTest,
                         ::testing::Values("freertos", "rtthread", "nuttx", "zephyr",
                                           "pokos"));

TEST(ImageBuilderGatingTest, RejectsUnportedArchitecture) {
  ASSERT_TRUE(RegisterAllOses().ok());
  // RT-Thread has no Xtensa port in the registry; ESP32 is Xtensa.
  BoardSpec esp32 = BoardSpecByName("esp32-devkitc").value();
  ImageBuildOptions options;
  options.os_name = "rtthread";
  auto image = BuildImage(esp32, options);
  EXPECT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), ErrorCode::kFailedPrecondition);
}

TEST(ImageBuilderGatingTest, RejectsImageLargerThanFlash) {
  ASSERT_TRUE(RegisterAllOses().ok());
  BoardSpec tiny = BoardSpecByName("stm32f407-disco").value();  // 1 MiB flash
  ImageBuildOptions options;
  options.os_name = "nuttx";  // ~3.5 MiB image
  auto image = BuildImage(tiny, options);
  EXPECT_FALSE(image.ok());
  EXPECT_EQ(image.status().code(), ErrorCode::kResourceExhausted);
}

TEST(ImageBuilderGatingTest, AppFilteredInstrumentationIsSmaller) {
  ASSERT_TRUE(RegisterAllOses().ok());
  InstrumentationOptions apps_only;
  apps_only.module_filter = {"apps/"};
  uint64_t full = ComputeImageSize("freertos", InstrumentationOptions{}).value();
  uint64_t filtered = ComputeImageSize("freertos", apps_only).value();
  InstrumentationOptions off;
  off.enabled = false;
  uint64_t base = ComputeImageSize("freertos", off).value();
  EXPECT_LT(filtered, full);
  EXPECT_GT(filtered, base);
}

}  // namespace
}  // namespace eof
