// Tests of the bug monitors (§4.5.2) and the Algorithm-1 liveness machinery, including
// link-fault injection against a live deployment.

#include <gtest/gtest.h>

#include "src/core/campaign.h"
#include "src/core/deployment.h"
#include "src/core/liveness.h"
#include "src/core/monitors.h"
#include "src/os/all_oses.h"

namespace eof {
namespace {

TEST(LogMonitorTest, MatchesCrashVocabulary) {
  LogMonitor monitor;
  const char* panics[] = {
      "BUG: kernel panic - rt_mp_alloc: suspend list head corrupt",
      "Guru Meditation Error: Core 0 panic'ed (LoadProhibited)",
      "FATAL EXCEPTION: divide fault in z_impl_k_msgq_get (msg_size=0)",
      "up_assert: PANIC! null deref in clock_getres (clockid=6)",
  };
  for (const char* line : panics) {
    auto hit = monitor.Scan(line);
    ASSERT_TRUE(hit.has_value()) << line;
    EXPECT_EQ(hit->kind, "panic") << line;
    EXPECT_EQ(hit->detector, "log");
  }
  auto assertion = monitor.Scan("(object != RT_NULL) assertion failed at rt_object_get_type");
  ASSERT_TRUE(assertion.has_value());
  EXPECT_EQ(assertion->kind, "assertion");

  EXPECT_FALSE(monitor.Scan("").has_value());
  EXPECT_FALSE(monitor.Scan("[sal] socket created: domain=2 type=1 proto=0").has_value());
  EXPECT_FALSE(monitor.Scan("FreeRTOS v10.5 scheduler started").has_value());
}

TEST(LogMonitorTest, CustomPatternAndBadRegex) {
  LogMonitor monitor;
  EXPECT_FALSE(monitor.AddPattern("(unclosed", "panic").ok());
  ASSERT_TRUE(monitor.AddPattern(R"(WDT timeout on core \d)", "panic").ok());
  EXPECT_TRUE(monitor.Scan("WDT timeout on core 1").has_value());
}

class LivenessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }

  void SetUp() override {
    DeployOptions options;
    options.os_name = "freertos";
    auto deployment = Deployment::Create(options);
    ASSERT_TRUE(deployment.ok());
    deployment_ = std::move(deployment.value());
  }

  std::unique_ptr<Deployment> deployment_;
};

TEST_F(LivenessTest, AliveTargetPassesChecks) {
  LivenessWatchdog watchdog;
  EXPECT_EQ(watchdog.Check(deployment_->port()), LivenessVerdict::kAlive);  // first sample
  (void)deployment_->port().Continue();  // burn cycles; PC moves
  EXPECT_EQ(watchdog.Check(deployment_->port()), LivenessVerdict::kAlive);
}

TEST_F(LivenessTest, SeveredLinkIsConnectionTimeout) {
  LivenessWatchdog watchdog;
  deployment_->port().InjectLinkFailure(true);
  EXPECT_EQ(watchdog.Check(deployment_->port()), LivenessVerdict::kConnectionTimeout);
  deployment_->port().InjectLinkFailure(false);
  // Watchdog recovers its PC history after restoration.
  watchdog.Reset();
  EXPECT_EQ(watchdog.Check(deployment_->port()), LivenessVerdict::kAlive);
}

TEST_F(LivenessTest, FaultedTargetStallsPc) {
  deployment_->board().LatchFault(0x5000, "injected");
  LivenessWatchdog watchdog;
  EXPECT_EQ(watchdog.Check(deployment_->port()), LivenessVerdict::kAlive);  // records PC
  (void)deployment_->port().Continue();  // frozen core: PC does not move
  EXPECT_EQ(watchdog.Check(deployment_->port()), LivenessVerdict::kPcStall);

  // StateRestoration brings it back (Algorithm 1 lines 12-19).
  ASSERT_TRUE(StateRestoration(*deployment_).ok());
  EXPECT_EQ(deployment_->board().power_state(), PowerState::kRunning);
}

TEST_F(LivenessTest, BootFailureAfterFlashCorruptionNeedsReflash) {
  // Scribble on the kernel partition behind the boot ROM's back.
  const Partition* kernel = deployment_->image().partition_table().Find("kernel");
  ASSERT_NE(kernel, nullptr);
  ASSERT_TRUE(deployment_->board().FlashWrite(kernel->offset + 64, {0x00, 0x00}).ok());
  ASSERT_TRUE(deployment_->port().ResetTarget().ok());
  EXPECT_EQ(deployment_->board().power_state(), PowerState::kBootFailed);

  LivenessWatchdog watchdog;
  EXPECT_EQ(watchdog.Check(deployment_->port()), LivenessVerdict::kConnectionTimeout);
  ASSERT_TRUE(StateRestoration(*deployment_).ok());
  EXPECT_EQ(deployment_->board().power_state(), PowerState::kRunning);
}

TEST(CampaignTest, RepeatedRunsAreSeededAndDeterministic) {
  ASSERT_TRUE(RegisterAllOses().ok());
  FuzzerConfig config;
  config.os_name = "pokos";
  config.seed = 7;
  config.budget = 3 * kVirtualMinute;
  config.sample_points = 6;
  auto first = RunRepeated(config, 2);
  auto second = RunRepeated(config, 2);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first.value().runs.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(first.value().runs[i].final_coverage, second.value().runs[i].final_coverage);
    EXPECT_EQ(first.value().runs[i].execs, second.value().runs[i].execs);
  }
  // Different seeds across repetitions actually differ.
  EXPECT_NE(first.value().runs[0].execs, 0u);

  SeriesBand band = first.value().Band();
  ASSERT_EQ(band.time.size(), 6u);
  for (size_t i = 0; i < band.time.size(); ++i) {
    EXPECT_LE(band.min[i], band.mean[i]);
    EXPECT_LE(band.mean[i], band.max[i]);
  }
}

}  // namespace
}  // namespace eof
