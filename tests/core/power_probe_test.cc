// Tests of the §6 power-signal extension: the ammeter model per power state, the
// plateau watchdog verdict, and a campaign with the probe enabled.

#include <gtest/gtest.h>

#include "src/core/deployment.h"
#include "src/core/fuzzer.h"
#include "src/core/liveness.h"
#include "src/os/all_oses.h"

namespace eof {
namespace {

class PowerProbeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }

  std::unique_ptr<Deployment> Deploy() {
    DeployOptions options;
    options.os_name = "rtthread";
    return std::move(Deployment::Create(options).value());
  }
};

TEST_F(PowerProbeTest, DrawTracksPowerState) {
  auto deployment = Deploy();
  Board& board = deployment->board();
  uint32_t running = deployment->port().SamplePowerMilliAmps();
  EXPECT_GE(running, 40u);
  EXPECT_LT(running, 100u);

  board.LatchHang("test wedge");
  EXPECT_GE(deployment->port().SamplePowerMilliAmps(), 100u);  // flat-out spin

  ASSERT_TRUE(deployment->ReflashAndReboot().ok());
  EXPECT_LT(deployment->port().SamplePowerMilliAmps(), 100u);

  // Corrupt flash -> boot failure -> ROM idle draw.
  const Partition* kernel = deployment->image().partition_table().Find("kernel");
  ASSERT_TRUE(board.FlashWrite(kernel->offset + 32, {0}).ok());
  ASSERT_TRUE(deployment->port().ResetTarget().ok());
  EXPECT_LT(deployment->port().SamplePowerMilliAmps(), 40u);
  EXPECT_GT(deployment->port().SamplePowerMilliAmps(), 0u);
}

TEST_F(PowerProbeTest, AmmeterWorksWithSeveredLink) {
  auto deployment = Deploy();
  deployment->board().LatchHang("wedge");
  deployment->port().InjectLinkFailure(true);
  // The ammeter is a separate physical channel.
  EXPECT_GE(deployment->port().SamplePowerMilliAmps(), 100u);
}

TEST_F(PowerProbeTest, PlateauVerdictBeforePcProtocol) {
  auto deployment = Deploy();
  deployment->board().LatchHang("wedge");
  LivenessWatchdog watchdog;
  watchdog.EnablePowerProbe();
  // First check records the plateau strike (and a PC sample); second confirms.
  LivenessVerdict first = watchdog.Check(deployment->port());
  EXPECT_NE(first, LivenessVerdict::kPowerPlateau);
  EXPECT_EQ(watchdog.Check(deployment->port()), LivenessVerdict::kPowerPlateau);
  watchdog.Reset();
  EXPECT_NE(watchdog.Check(deployment->port()), LivenessVerdict::kPowerPlateau);
}

TEST_F(PowerProbeTest, HealthyTargetNeverTripsTheProbe) {
  auto deployment = Deploy();
  LivenessWatchdog watchdog;
  watchdog.EnablePowerProbe();
  for (int i = 0; i < 6; ++i) {
    (void)deployment->port().Continue();
    EXPECT_EQ(watchdog.Check(deployment->port()), LivenessVerdict::kAlive) << i;
  }
}

TEST_F(PowerProbeTest, CampaignWithProbeMatchesStallRecoveryBudget) {
  // The probe must not regress a campaign (same recovery semantics, fewer PC rounds).
  for (bool probe : {false, true}) {
    FuzzerConfig config;
    config.os_name = "rtthread";
    config.seed = 91;
    config.budget = 45 * kVirtualMinute;
    config.power_probe = probe;
    EofFuzzer fuzzer(config);
    auto result = fuzzer.Run();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result.value().execs, 100u) << "probe=" << probe;
  }
}

}  // namespace
}  // namespace eof
