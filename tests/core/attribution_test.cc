// Differential proof of the double-buffered drain and campaign-level checks of
// the attribution modes.
//
// The overlapped drain is only admissible if it is indistinguishable from the
// stop-and-drain baseline everywhere except the clock: same inputs, same
// coverage, same corpus, same deduped bug table — at --jobs 1 and --jobs 4 —
// while folding the drain's round trip into the next continue. Directed mode and
// trim-on-add change scheduling on purpose, so for them the suite checks the
// contract instead: attribution counters populate, trims never lose coverage
// credit (the trimmed program is what was admitted), and `--directed=off
// --trim=off` stays the deterministic default the rest of the suite pins.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/core/board_farm.h"
#include "src/core/fuzzer.h"
#include "src/os/all_oses.h"

namespace eof {
namespace {

// Bug #13 reproducer; seeds the corpus so differential bug tables are non-empty.
constexpr char kFlashCorruptingCrasher[] = "r0 = load_partitions(0x7, 0xf)";

class AttributionDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }

  // Capped on exec count, not virtual time: both drain modes run the exact same
  // input sequence even though the overlapped path burns less virtual time.
  static FuzzerConfig CappedConfig(bool overlapped_drain, uint64_t seed,
                                   uint64_t max_execs) {
    FuzzerConfig config;
    config.os_name = "freertos";
    config.overlapped_drain = overlapped_drain;
    config.seed = seed;
    config.budget = 24 * kVirtualHour;  // never the binding constraint
    config.max_execs = max_execs;
    config.sample_points = 8;
    config.seed_programs = {kFlashCorruptingCrasher};
    return config;
  }

  static void ExpectSameBugTable(const CampaignResult& plain,
                                 const CampaignResult& overlapped) {
    ASSERT_EQ(plain.bugs.size(), overlapped.bugs.size());
    for (size_t i = 0; i < plain.bugs.size(); ++i) {
      SCOPED_TRACE(plain.bugs[i].program_text);
      EXPECT_EQ(plain.bugs[i].catalog_id, overlapped.bugs[i].catalog_id);
      EXPECT_EQ(plain.bugs[i].detector, overlapped.bugs[i].detector);
      EXPECT_EQ(plain.bugs[i].kind, overlapped.bugs[i].kind);
      EXPECT_EQ(plain.bugs[i].excerpt, overlapped.bugs[i].excerpt);
      EXPECT_EQ(plain.bugs[i].program_text, overlapped.bugs[i].program_text);
      EXPECT_EQ(plain.bugs[i].first_exec, overlapped.bugs[i].first_exec);
      EXPECT_EQ(plain.bugs[i].board, overlapped.bugs[i].board);
      EXPECT_EQ(plain.bugs[i].seed_stream, overlapped.bugs[i].seed_stream);
      EXPECT_EQ(plain.bugs[i].coverage_delta, overlapped.bugs[i].coverage_delta);
    }
  }
};

TEST_F(AttributionDifferentialTest, OverlappedDrainBitMatchesPlainJobs1) {
  constexpr uint64_t kSeed = 11;
  constexpr uint64_t kExecs = 350;
  // The overlap only engages on mid-program ring-full pauses, so run on the
  // tiny-RAM board whose 192-entry ring overflows on ordinary programs.
  FuzzerConfig plain_config = CappedConfig(false, kSeed, kExecs);
  FuzzerConfig overlapped_config = CappedConfig(true, kSeed, kExecs);
  plain_config.board_name = "hifive1-revb";
  overlapped_config.board_name = "hifive1-revb";
  auto plain = EofFuzzer(plain_config).Run();
  auto overlapped = EofFuzzer(overlapped_config).Run();
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_TRUE(overlapped.ok()) << overlapped.status().ToString();

  // Identical campaign: same execs, same coverage, same corpus, same crash and
  // restore counts, same deduped bug table. Only the clock may differ.
  EXPECT_EQ(plain->execs, kExecs);
  EXPECT_EQ(overlapped->execs, kExecs);
  EXPECT_EQ(plain->final_coverage, overlapped->final_coverage);
  EXPECT_EQ(plain->corpus_size, overlapped->corpus_size);
  EXPECT_EQ(plain->crashes, overlapped->crashes);
  EXPECT_EQ(plain->stalls, overlapped->stalls);
  EXPECT_EQ(plain->timeouts, overlapped->timeouts);
  EXPECT_EQ(plain->restores, overlapped->restores);
  EXPECT_EQ(plain->rejected, overlapped->rejected);
  ASSERT_FALSE(overlapped->bugs.empty());  // the differential must prove something
  ExpectSameBugTable(*plain, *overlapped);

  // The overlapped campaign rode the banked ring and spent less virtual time.
  EXPECT_LT(overlapped->elapsed, plain->elapsed);
}

TEST_F(AttributionDifferentialTest, OverlappedDrainMatchesPlainJobs4) {
  constexpr uint64_t kSeed = 5;
  constexpr uint64_t kExecsPerWorker = 120;
  // Feedback off: each worker's input stream is then a pure function of its
  // seed, so farm results are interleaving-independent and the modes comparable.
  FuzzerConfig plain_config = CappedConfig(false, kSeed, kExecsPerWorker);
  FuzzerConfig overlapped_config = CappedConfig(true, kSeed, kExecsPerWorker);
  plain_config.coverage_feedback = false;
  overlapped_config.coverage_feedback = false;

  auto plain = BoardFarm(plain_config, /*jobs=*/4).Run();
  auto overlapped = BoardFarm(overlapped_config, /*jobs=*/4).Run();
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  ASSERT_TRUE(overlapped.ok()) << overlapped.status().ToString();

  EXPECT_EQ(plain->execs, 4 * kExecsPerWorker);
  EXPECT_EQ(overlapped->execs, 4 * kExecsPerWorker);
  EXPECT_EQ(plain->final_coverage, overlapped->final_coverage);
  EXPECT_EQ(plain->crashes, overlapped->crashes);
  EXPECT_EQ(plain->stalls, overlapped->stalls);
  EXPECT_EQ(plain->timeouts, overlapped->timeouts);
  EXPECT_EQ(plain->restores, overlapped->restores);

  // Bug identity is worker-timing-independent only as a set: first-sighting
  // attribution may land on a different worker across runs.
  auto ids = [](const CampaignResult& result) {
    std::vector<int> ids;
    for (const BugReport& bug : result.bugs) {
      ids.push_back(bug.catalog_id);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  EXPECT_EQ(ids(*plain), ids(*overlapped));
}

TEST_F(AttributionDifferentialTest, DirectedTrimCampaignPopulatesAttribution) {
  FuzzerConfig config = CappedConfig(true, /*seed=*/23, /*max_execs=*/250);
  config.directed = true;
  config.trim = true;
  auto result = EofFuzzer(config).Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Every fresh edge feeds the frontier table, so a campaign that found any
  // coverage leaves a non-empty frontier behind and trims on every admission.
  EXPECT_GT(result->final_coverage, 0u);
  EXPECT_GT(result->frontier, 0u);
  EXPECT_GT(result->trim_kept_calls, 0u);
  // Attribution granularity keeps at least the owner calls; what it removed is
  // bounded by what it saw.
  EXPECT_GE(result->trim_kept_calls + result->trim_removed_calls,
            result->trim_kept_calls);
}

TEST_F(AttributionDifferentialTest, DefaultModeLeavesAttributionCountersZero) {
  // The determinism contract's other half: with --directed=off --trim=off the
  // attribution machinery observes (frontier bookkeeping is always on, so the
  // frontier gauge and directed_hits tally still fill in) but never steers —
  // generators get no focus boost and no trim ever runs.
  auto result = EofFuzzer(CappedConfig(true, /*seed=*/23, /*max_execs=*/120)).Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->trim_kept_calls, 0u);
  EXPECT_EQ(result->trim_removed_calls, 0u);
  EXPECT_GT(result->frontier, 0u);  // bookkeeping runs regardless
}

}  // namespace
}  // namespace eof
