// Differential proof of the snapshot/restore fast path (RestoreMode::kSnapshot).
//
// The fast path is only admissible if it is indistinguishable from the reflash
// baseline everywhere except the clock: same inputs, same coverage, same deduped
// bug table — at --jobs 1 and --jobs 4 — while spending kWarmRestoreCost instead
// of the reflash+reboot tax. The suite also pins down every restore trigger
// (crash, stall, power_plateau, pc_stall, link_lost, write_failed,
// periodic_reset_failed), the severed-link and flash-damage fallbacks to the full
// ReflashAndReboot, the delta-reflash interaction, the flight-recorder lifecycle
// across warm vs. cold restores, and the cold-boot validation oracle that keeps
// snapshot-only artifacts (the libriscv lesson) out of the bug table.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/agent/agent_layout.h"
#include "src/core/board_farm.h"
#include "src/core/executor.h"
#include "src/core/fuzzer.h"
#include "src/core/scheduler.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/program_text.h"
#include "src/hw/board_snapshot.h"
#include "src/os/all_oses.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/telemetry.h"

namespace eof {
namespace {

// Bug #13: flash-corrupting kernel panic — the crash class that defeats the warm
// path (the flash shadow no longer matches) and forces the reflash fallback.
constexpr char kFlashCorruptingCrasher[] = "r0 = load_partitions(0x7, 0xf)";
constexpr char kFreertosBenign[] = "r0 = load_partitions(0x1, 0x2)";

// Bug #9: pure heap-state panic, no flash damage — crashes warm-restore cleanly.
constexpr char kHeapCrasher[] =
    "r0 = rt_malloc(0xfa0)\nr1 = rt_malloc(0x7d0)\nr2 = rt_malloc(0x1001)";
constexpr char kRtthreadBenign[] = "r0 = rt_malloc(0x8)";
// The hidden-state half of Bug #9: two allocations that leave heap_used at 6000.
constexpr char kHeapPressure[] = "r0 = rt_malloc(0xfa0)\nr1 = rt_malloc(0x7d0)";
// The other half: only panics when the pressure above is already resident.
constexpr char kOddOomMalloc[] = "r0 = rt_malloc(0x1001)";

void PutU32(std::vector<uint8_t>& bytes, uint64_t offset, uint32_t value) {
  bytes[offset] = static_cast<uint8_t>(value & 0xff);
  bytes[offset + 1] = static_cast<uint8_t>((value >> 8) & 0xff);
  bytes[offset + 2] = static_cast<uint8_t>((value >> 16) & 0xff);
  bytes[offset + 3] = static_cast<uint8_t>((value >> 24) & 0xff);
}

std::string TextField(const telemetry::Event& event, const std::string& key) {
  for (const telemetry::EventField& field : event.fields) {
    if (field.key == key) {
      return field.text_value;
    }
  }
  return "";
}

// One board session in snapshot mode with a journaled telemetry sink, driven one
// hand-built program at a time.
class SnapshotSessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }

  void MakeExecutor(const std::string& os_name, FuzzerConfig config = FuzzerConfig()) {
    config.os_name = os_name;
    config.restore_mode = RestoreMode::kSnapshot;
    auto plan = PrepareCampaign(config);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    plan_ = std::move(plan.value());
    config_ = config;
    telemetry_ = std::make_unique<telemetry::BoardTelemetry>(/*worker=*/0, config.seed,
                                                             &sink_);
    rng_ = std::make_unique<Rng>(config.seed ^ 0x5eedf00dULL);
    ExecutorOptions options =
        MakeExecutorOptions(config, config.seed, plan_.exception_symbol);
    options.telemetry = telemetry_.get();
    auto executor = TargetExecutor::Create(options, rng_.get());
    ASSERT_TRUE(executor.ok()) << executor.status().ToString();
    executor_ = std::move(executor.value());
  }

  fuzz::Program Parse(const std::string& text) {
    auto program = fuzz::ParseProgramText(plan_.specs, text);
    EXPECT_TRUE(program.ok()) << program.status().ToString() << " in: " << text;
    return program.ok() ? std::move(program.value()) : fuzz::Program();
  }

  std::vector<uint8_t> Encode(const std::string& text) {
    fuzz::Program program = Parse(text);
    std::vector<uint8_t> encoded;
    EXPECT_TRUE(EncodeForMailbox(plan_.specs, &program, &encoded));
    return encoded;
  }

  // Executes `text` and requires the link to survive (the outcome itself may be
  // any of completed/crashed/stalled).
  ExecOutcome Run(const std::string& text) {
    auto outcome = executor_->ExecuteOne(Encode(text));
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    return outcome.ok() ? std::move(outcome.value()) : ExecOutcome();
  }

  std::vector<telemetry::Event> Rows(const std::string& type) const {
    std::vector<telemetry::Event> rows;
    for (const telemetry::Event& event : sink_.Events()) {
      if (event.type == type) {
        rows.push_back(event);
      }
    }
    return rows;
  }

  void CorruptKernelFlash() {
    const Partition* kernel =
        executor_->deployment().image().partition_table().Find("kernel");
    ASSERT_NE(kernel, nullptr);
    ASSERT_TRUE(
        executor_->deployment().board().FlashWrite(kernel->offset + 64, {0x00, 0x00})
            .ok());
  }

  FuzzerConfig config_;
  CampaignPlan plan_;
  telemetry::MemoryEventSink sink_;
  std::unique_ptr<telemetry::BoardTelemetry> telemetry_;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<TargetExecutor> executor_;
};

// --- Per-trigger restore behaviour -----------------------------------------

TEST_F(SnapshotSessionTest, CrashRestoresWarmWithoutReboot) {
  MakeExecutor("rtthread");
  Board& board = executor_->deployment().board();
  const uint64_t boots_before = board.reset_count();

  ExecOutcome outcome = Run(kHeapCrasher);
  EXPECT_EQ(outcome.status, ExecStatus::kCrashed);
  ASSERT_TRUE(outcome.signature.has_value());
  EXPECT_EQ(outcome.signature->detector, "exception");
  ASSERT_TRUE(outcome.dump.has_value());
  EXPECT_EQ(outcome.dump->reason, "crash");
  // The dump labels the board state the crash fired ON — before any restore ran.
  EXPECT_EQ(outcome.dump->last_restore, "none");

  ExecStats stats = executor_->stats();
  EXPECT_EQ(stats.restores, 1u);
  EXPECT_EQ(stats.snapshot_restores, 1u);
  EXPECT_GT(stats.snapshot_bytes, 0u);
  EXPECT_EQ(stats.snapshot_bytes, executor_->snapshot_for_test()->ram_bytes());
  EXPECT_EQ(std::string(executor_->last_restore()), "snapshot");
  // The reboot tax was never paid: no power cycle, one warm core restore.
  EXPECT_EQ(board.reset_count(), boots_before);
  EXPECT_EQ(board.warm_restore_count(), 1u);
  EXPECT_EQ(board.power_state(), PowerState::kRunning);

  auto resets = Rows("liveness_reset");
  ASSERT_EQ(resets.size(), 1u);
  EXPECT_EQ(TextField(resets[0], "reason"), "crash");
  EXPECT_EQ(TextField(resets[0], "restore"), "snapshot");

  // The restored board is healthy and runs the next case to completion.
  EXPECT_EQ(Run(kRtthreadBenign).status, ExecStatus::kCompleted);
  // And the restore resets kernel state: the same crasher crashes identically.
  EXPECT_EQ(Run(kHeapCrasher).status, ExecStatus::kCrashed);
  EXPECT_EQ(executor_->stats().snapshot_restores, 2u);
}

TEST_F(SnapshotSessionTest, StallRestoresWarm) {
  FuzzerConfig config;
  config.watchdogs = false;  // ablation: six dead rounds, then manual intervention
  MakeExecutor("freertos", config);
  executor_->deployment().board().LatchHang("injected wedge");

  ExecOutcome outcome = Run(kFreertosBenign);
  EXPECT_EQ(outcome.status, ExecStatus::kStalled);
  ASSERT_TRUE(outcome.dump.has_value());
  EXPECT_EQ(outcome.dump->reason, "stall");
  ExecStats stats = executor_->stats();
  EXPECT_EQ(stats.stalls, 1u);
  EXPECT_EQ(stats.snapshot_restores, 1u);
  EXPECT_EQ(std::string(executor_->last_restore()), "snapshot");
  EXPECT_EQ(Run(kFreertosBenign).status, ExecStatus::kCompleted);
}

TEST_F(SnapshotSessionTest, PcStallRestoresWarm) {
  MakeExecutor("freertos");
  executor_->deployment().board().LatchHang("injected wedge");

  ExecOutcome outcome = Run(kFreertosBenign);
  EXPECT_EQ(outcome.status, ExecStatus::kStalled);
  ASSERT_TRUE(outcome.dump.has_value());
  EXPECT_EQ(outcome.dump->reason, "pc_stall");
  EXPECT_EQ(executor_->stats().snapshot_restores, 1u);
  EXPECT_EQ(std::string(executor_->last_restore()), "snapshot");
  EXPECT_EQ(Run(kFreertosBenign).status, ExecStatus::kCompleted);
}

TEST_F(SnapshotSessionTest, PowerPlateauRestoresWarm) {
  FuzzerConfig config;
  config.power_probe = true;
  MakeExecutor("freertos", config);
  executor_->deployment().board().LatchHang("hot loop");

  ExecOutcome outcome = Run(kFreertosBenign);
  EXPECT_EQ(outcome.status, ExecStatus::kStalled);
  ASSERT_TRUE(outcome.dump.has_value());
  EXPECT_EQ(outcome.dump->reason, "power_plateau");
  EXPECT_EQ(executor_->stats().snapshot_restores, 1u);
  EXPECT_EQ(std::string(executor_->last_restore()), "snapshot");
  EXPECT_EQ(Run(kFreertosBenign).status, ExecStatus::kCompleted);
}

TEST_F(SnapshotSessionTest, LinkLostOnDeadCoreFallsBackToReflash) {
  MakeExecutor("freertos");
  // Kill the target behind the executor's back: corrupt the kernel partition and
  // power-cycle, so the boot ROM refuses to come up and core ops time out. This is
  // the run-control failure the in-flow "link_lost" label keys on...
  CorruptKernelFlash();
  ASSERT_TRUE(executor_->deployment().port().ResetTarget().ok());
  ASSERT_EQ(executor_->deployment().board().power_state(), PowerState::kBootFailed);
  EXPECT_EQ(executor_->deployment().port().Continue().status().code(),
            ErrorCode::kTimeout);

  // ...but with atomic link batches a dead core is always discovered at publish
  // time (memory writes need the core too), so the session reports the link loss
  // with a write_failed dump rather than dying mid-continue.
  ExecOutcome outcome = Run(kFreertosBenign);
  EXPECT_EQ(outcome.status, ExecStatus::kLinkLost);
  ASSERT_TRUE(outcome.dump.has_value());
  EXPECT_EQ(outcome.dump->reason, "write_failed");
  // The warm path cannot vouch for corrupted flash; the fallback reflash repaired it.
  ExecStats stats = executor_->stats();
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.restores, 1u);
  EXPECT_EQ(stats.snapshot_restores, 0u);
  EXPECT_EQ(std::string(executor_->last_restore()), "cold");
  EXPECT_EQ(executor_->deployment().board().power_state(), PowerState::kRunning);
  auto resets = Rows("liveness_reset");
  ASSERT_EQ(resets.size(), 1u);
  EXPECT_EQ(TextField(resets[0], "restore"), "cold");
  EXPECT_EQ(Run(kFreertosBenign).status, ExecStatus::kCompleted);
}

// Satellite regression: a link severed before/through the restore must never hand
// back a half-restored board. RunBatch is atomic (a severed batch applies nothing),
// so the whole restore attempt — shadow check, warm core restore, RAM write — either
// fails cleanly before touching the board or falls back to the full reflash.
TEST_F(SnapshotSessionTest, SeveredLinkMidRestoreLeavesNoHalfRestoredBoard) {
  MakeExecutor("freertos");
  Board& board = executor_->deployment().board();
  const uint64_t boots_before = board.reset_count();

  executor_->deployment().port().InjectLinkFailure(true);
  auto outcome = executor_->ExecuteOne(Encode(kFreertosBenign));
  // Publish failed, the warm path failed, and the reflash fallback failed too:
  // the error propagates (the farm parks this worker) instead of faking success.
  EXPECT_FALSE(outcome.ok());

  // The board was never half restored: no warm core restore, no power cycle, the
  // firmware still parked and intact.
  EXPECT_EQ(board.warm_restore_count(), 0u);
  EXPECT_EQ(board.reset_count(), boots_before);
  EXPECT_EQ(board.power_state(), PowerState::kRunning);
  ExecStats stats = executor_->stats();
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.snapshot_restores, 0u);
  // The failed attempt was journaled as a write_failed dump but no liveness_reset
  // row (the restore never completed).
  auto dumps = Rows("crash_dump");
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(TextField(dumps[0], "reason"), "write_failed");
  EXPECT_EQ(Rows("liveness_reset").size(), 0u);

  // Link repaired: the untouched board keeps fuzzing with no restoration at all.
  executor_->deployment().port().InjectLinkFailure(false);
  EXPECT_EQ(Run(kFreertosBenign).status, ExecStatus::kCompleted);
  EXPECT_EQ(board.warm_restore_count(), 0u);
}

// The shadow audit is write-count gated: as long as the flash controller reports
// no programming since the last audit, warm restores skip the per-partition
// checksums (one status-word read instead of re-digesting the whole image). Any
// flash write — even one that leaves the bytes identical — reopens the gate for
// exactly one full audit.
TEST_F(SnapshotSessionTest, ShadowAuditIsWriteCountGated) {
  MakeExecutor("rtthread");
  BoardSnapshot* snapshot = executor_->snapshot_for_test();
  ASSERT_NE(snapshot, nullptr);
  // Capture itself certified the image; warm restores on untouched flash never
  // re-audit.
  EXPECT_EQ(snapshot->shadow_audits(), 0u);
  EXPECT_EQ(Run(kHeapCrasher).status, ExecStatus::kCrashed);
  EXPECT_EQ(executor_->stats().snapshot_restores, 1u);
  EXPECT_EQ(snapshot->shadow_audits(), 0u);

  // Rewrite a kernel word with its own pristine bytes: digests still match, but
  // the controller's write count moved, so the next restore must re-prove the
  // shadow — and, having passed, close the gate at the new count.
  Deployment& deployment = executor_->deployment();
  const Partition* kernel = deployment.image().partition_table().Find("kernel");
  ASSERT_NE(kernel, nullptr);
  auto pristine = deployment.board().flash().Read(kernel->offset + 64, 2);
  ASSERT_TRUE(pristine.ok());
  ASSERT_TRUE(deployment.board().FlashWrite(kernel->offset + 64, pristine.value()).ok());

  EXPECT_EQ(Run(kHeapCrasher).status, ExecStatus::kCrashed);
  EXPECT_EQ(executor_->stats().snapshot_restores, 2u);
  EXPECT_EQ(snapshot->shadow_audits(), 1u);
  EXPECT_EQ(std::string(executor_->last_restore()), "snapshot");

  EXPECT_EQ(Run(kHeapCrasher).status, ExecStatus::kCrashed);
  EXPECT_EQ(executor_->stats().snapshot_restores, 3u);
  EXPECT_EQ(snapshot->shadow_audits(), 1u);
}

TEST_F(SnapshotSessionTest, PeriodicResetFailureFallsBackToReflashThenRecovers) {
  FuzzerConfig config;
  config.periodic_reset_execs = 1;  // every completed exec sheds state
  MakeExecutor("freertos", config);
  // Scribble on the kernel partition while the board runs: the resident firmware
  // keeps going, but the flash shadow no longer matches the snapshot's digests.
  CorruptKernelFlash();

  EXPECT_EQ(Run(kFreertosBenign).status, ExecStatus::kCompleted);
  // The periodic warm restore refused the mismatched flash and fell back cold.
  auto dumps = Rows("crash_dump");
  ASSERT_EQ(dumps.size(), 1u);
  EXPECT_EQ(TextField(dumps[0], "reason"), "periodic_reset_failed");
  ExecStats stats = executor_->stats();
  EXPECT_EQ(stats.restores, 1u);
  EXPECT_EQ(stats.snapshot_restores, 0u);
  EXPECT_EQ(std::string(executor_->last_restore()), "cold");
  auto resets = Rows("liveness_reset");
  ASSERT_EQ(resets.size(), 1u);
  EXPECT_EQ(TextField(resets[0], "reason"), "periodic_reset_failed");
  EXPECT_EQ(TextField(resets[0], "restore"), "cold");

  // The fallback reflash repaired the flash, so the digests match again and the
  // next periodic reset rides the warm path.
  EXPECT_EQ(Run(kFreertosBenign).status, ExecStatus::kCompleted);
  EXPECT_EQ(executor_->stats().snapshot_restores, 1u);
  EXPECT_EQ(std::string(executor_->last_restore()), "snapshot");
}

// --- Delta-reflash interaction (satellite) ----------------------------------

// Alternating warm restores and (flash-damage-forced) reflashes must keep the
// delta-reflash cache honest: clean partitions stay skipped, the damaged one is
// reprogrammed, and the repaired flash revalidates against the snapshot's shadow.
TEST_F(SnapshotSessionTest, WarmRestoresKeepDeltaReflashCacheValid) {
  FuzzerConfig config;
  config.periodic_reset_execs = 1;
  MakeExecutor("freertos", config);
  const DebugPortStats after_deploy = executor_->port_stats();

  // Warm periodic restore: no flash traffic at all.
  EXPECT_EQ(Run(kFreertosBenign).status, ExecStatus::kCompleted);
  DebugPortStats after_warm = executor_->port_stats();
  EXPECT_EQ(after_warm.flash_bytes, after_deploy.flash_bytes);
  EXPECT_EQ(after_warm.flash_skipped_bytes, after_deploy.flash_skipped_bytes);
  EXPECT_EQ(executor_->stats().snapshot_restores, 1u);

  // Bug #13 corrupts the on-flash partition table; the warm path refuses the
  // board and the delta reflash reprograms ONLY the damaged partition.
  ExecOutcome crash = Run(kFlashCorruptingCrasher);
  EXPECT_EQ(crash.status, ExecStatus::kCrashed);
  DebugPortStats after_reflash = executor_->port_stats();
  EXPECT_EQ(std::string(executor_->last_restore()), "cold");
  const uint64_t programmed = after_reflash.flash_bytes - after_warm.flash_bytes;
  const uint64_t skipped =
      after_reflash.flash_skipped_bytes - after_warm.flash_skipped_bytes;
  EXPECT_GT(programmed, 0u);  // the damaged partition was rewritten
  EXPECT_GT(skipped, 0u);     // the clean partitions were proven clean and skipped
  EXPECT_GT(skipped, programmed);  // ptable is tiny next to bootloader+kernel

  // Repaired flash matches the shadow again: back on the warm path, still no
  // flash traffic — the snapshot restores did not poison the payload cache.
  EXPECT_EQ(Run(kFreertosBenign).status, ExecStatus::kCompleted);
  DebugPortStats after_second_warm = executor_->port_stats();
  EXPECT_EQ(after_second_warm.flash_bytes, after_reflash.flash_bytes);
  EXPECT_EQ(after_second_warm.flash_skipped_bytes, after_reflash.flash_skipped_bytes);
  EXPECT_EQ(executor_->stats().snapshot_restores, 2u);
  EXPECT_EQ(std::string(executor_->last_restore()), "snapshot");

  // Second round of damage: the cache still skips exactly the clean partitions.
  EXPECT_EQ(Run(kFlashCorruptingCrasher).status, ExecStatus::kCrashed);
  DebugPortStats after_third = executor_->port_stats();
  EXPECT_EQ(after_third.flash_bytes - after_second_warm.flash_bytes, programmed);
  EXPECT_EQ(after_third.flash_skipped_bytes - after_second_warm.flash_skipped_bytes,
            skipped);
}

// --- Flight recorder lifecycle (satellite) ----------------------------------

TEST_F(SnapshotSessionTest, FlightRingsSurviveWarmRestoresAndResetOnColdBoot) {
  MakeExecutor("rtthread");

  EXPECT_EQ(Run(kRtthreadBenign).status, ExecStatus::kCompleted);
  const uint64_t seen_benign = executor_->flight_recorder().port_ops_seen();
  EXPECT_GT(seen_benign, 0u);

  // Warm restore: the board session continues, so the rings keep accumulating.
  EXPECT_EQ(Run(kHeapCrasher).status, ExecStatus::kCrashed);
  const uint64_t seen_first_crash = executor_->flight_recorder().port_ops_seen();
  EXPECT_GT(seen_first_crash, seen_benign);

  EXPECT_EQ(Run(kHeapCrasher).status, ExecStatus::kCrashed);
  const uint64_t seen_second_crash = executor_->flight_recorder().port_ops_seen();
  EXPECT_GT(seen_second_crash, seen_first_crash);

  // The crash_dump rows label the restore mode that produced the crashing state:
  // first crash on the freshly deployed board, second on a warm-restored one.
  auto dumps = Rows("crash_dump");
  ASSERT_EQ(dumps.size(), 2u);
  EXPECT_EQ(TextField(dumps[0], "reason"), "crash");
  EXPECT_EQ(TextField(dumps[0], "last_restore"), "none");
  EXPECT_EQ(TextField(dumps[1], "last_restore"), "snapshot");

  // Flash damage forces the cold fallback: a cold boot wipes the board-session
  // context the rings describe, so they restart from (nearly) empty.
  CorruptKernelFlash();
  EXPECT_EQ(Run(kHeapCrasher).status, ExecStatus::kCrashed);
  EXPECT_EQ(std::string(executor_->last_restore()), "cold");
  EXPECT_LT(executor_->flight_recorder().port_ops_seen(), seen_second_crash);
  dumps = Rows("crash_dump");
  ASSERT_EQ(dumps.size(), 3u);
  EXPECT_EQ(TextField(dumps[2], "last_restore"), "snapshot");
}

// --- Cold-boot validation oracle --------------------------------------------

// Campaign-state harness: executor + scheduler wired the way EofFuzzer wires them,
// including the snapshot-mode validation oracle.
class SnapshotValidationTest : public SnapshotSessionTest {
 protected:
  void MakeScheduler() {
    scheduler_options_ = MakeSchedulerOptions(config_, /*workers=*/1);
    scheduler_options_.sink = &sink_;
    ASSERT_TRUE(scheduler_options_.validator != nullptr);  // kSnapshot installs it
    scheduler_ = std::make_unique<CampaignScheduler>(plan_.specs, scheduler_options_);
    generator_ = std::make_unique<fuzz::Generator>(plan_.specs, config_.gen, config_.seed);
  }

  void Submit(const std::string& text, const ExecOutcome& outcome) {
    fuzz::Program program = Parse(text);
    scheduler_->OnOutcome(program, outcome, *generator_, executor_->Elapsed(),
                          /*worker=*/0);
  }

  CampaignScheduler::Options scheduler_options_;
  std::unique_ptr<CampaignScheduler> scheduler_;
  std::unique_ptr<fuzz::Generator> generator_;
};

// The libriscv lesson, end to end: plant hidden kernel state in the snapshot so
// every warm restore replays it, crash on that state, and watch the oracle refuse
// the sighting because a freshly flashed board does not reproduce it.
TEST_F(SnapshotValidationTest, PoisonedSnapshotSightingIsRejected) {
  FuzzerConfig config;
  config.os_name = "rtthread";
  config.periodic_reset_execs = 1;
  MakeExecutor("rtthread", config);
  MakeScheduler();

  // Poison the captured RAM: a pre-loaded mailbox program the agent will consume
  // during every warm-resume handshake, leaving heap_used at 6000 — state a cold
  // boot never has.
  std::vector<uint8_t> poison = Encode(kHeapPressure);
  ASSERT_FALSE(poison.empty());
  std::vector<uint8_t>& ram = executor_->snapshot_for_test()->ram_for_test();
  ASSERT_GE(ram.size(), kMailboxOffset + kMailboxDataOffset + poison.size());
  PutU32(ram, kMailboxOffset + kMailboxLenOffset, static_cast<uint32_t>(poison.size()));
  std::copy(poison.begin(), poison.end(),
            ram.begin() + kMailboxOffset + kMailboxDataOffset);
  PutU32(ram, kMailboxOffset + kMailboxFlagOffset, 1);

  // A completed exec triggers the periodic warm restore, which replays the poison.
  EXPECT_EQ(Run(kRtthreadBenign).status, ExecStatus::kCompleted);
  ASSERT_GE(executor_->stats().snapshot_restores, 1u);

  // On the poisoned heap, a single odd-size allocation panics (Bug #9)...
  ExecOutcome crash = Run(kOddOomMalloc);
  ASSERT_EQ(crash.status, ExecStatus::kCrashed);
  ASSERT_TRUE(crash.signature.has_value());

  // ...but the oracle replays `r0 = rt_malloc(0x1001)` on a freshly flashed board,
  // where it completes quietly — the sighting is an artifact, not a bug.
  Submit(kOddOomMalloc, crash);
  telemetry::CampaignView view = scheduler_->View();
  EXPECT_EQ(view.bugs, 0u);
  EXPECT_EQ(view.bugs_rejected, 1u);
  std::vector<BugReport> rejected = scheduler_->RejectedBugs();
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected[0].catalog_id, 9);
  EXPECT_EQ(rejected[0].snapshot_validation, "rejected");

  // The provenance row is journaled with the verdict; no "bug" event exists.
  auto reports = Rows("bug_report");
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(TextField(reports[0], "snapshot_validation"), "rejected");
  EXPECT_EQ(Rows("bug").size(), 0u);

  // A re-trigger of the same artifact dedups against the rejected table instead
  // of burning another validation replay.
  EXPECT_EQ(Run(kRtthreadBenign).status, ExecStatus::kCompleted);
  ExecOutcome again = Run(kOddOomMalloc);
  ASSERT_EQ(again.status, ExecStatus::kCrashed);
  Submit(kOddOomMalloc, again);
  EXPECT_EQ(scheduler_->View().bugs_rejected, 1u);
  EXPECT_EQ(Rows("bug_report").size(), 1u);
  EXPECT_EQ(Rows("bug_dedup").size(), 1u);

  CampaignResult result = scheduler_->Finalize(executor_->stats(),
                                               executor_->Elapsed(),
                                               executor_->port_stats());
  EXPECT_TRUE(result.bugs.empty());
  EXPECT_EQ(result.bugs_rejected, 1u);
}

TEST_F(SnapshotValidationTest, ColdReproducibleCrashIsConfirmed) {
  FuzzerConfig config;
  config.os_name = "rtthread";
  MakeExecutor("rtthread", config);
  MakeScheduler();

  // The genuine Bug #9 reproducer carries its own heap pressure, so it crashes a
  // freshly flashed board too — the oracle confirms it.
  ExecOutcome crash = Run(kHeapCrasher);
  ASSERT_EQ(crash.status, ExecStatus::kCrashed);
  Submit(kHeapCrasher, crash);

  telemetry::CampaignView view = scheduler_->View();
  EXPECT_EQ(view.bugs, 1u);
  EXPECT_EQ(view.bugs_rejected, 0u);
  CampaignResult result = scheduler_->Finalize(executor_->stats(),
                                               executor_->Elapsed(),
                                               executor_->port_stats());
  ASSERT_EQ(result.bugs.size(), 1u);
  EXPECT_EQ(result.bugs[0].catalog_id, 9);
  EXPECT_EQ(result.bugs[0].snapshot_validation, "confirmed");
  EXPECT_EQ(result.bugs_rejected, 0u);
  EXPECT_EQ(Rows("bug").size(), 1u);
  auto reports = Rows("bug_report");
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(TextField(reports[0], "snapshot_validation"), "confirmed");
}

// --- Differential campaigns --------------------------------------------------

class SnapshotDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }

  // Capped on exec count, not virtual time: both modes run the exact same input
  // sequence even though the snapshot path burns far less virtual time.
  static FuzzerConfig CappedConfig(RestoreMode mode, uint64_t seed,
                                   uint64_t max_execs) {
    FuzzerConfig config;
    config.os_name = "freertos";
    config.restore_mode = mode;
    config.seed = seed;
    config.budget = 24 * kVirtualHour;  // never the binding constraint
    config.max_execs = max_execs;
    config.sample_points = 8;
    // Seed the corpus near Bug #13 so the differential bug tables are non-empty.
    config.seed_programs = {kFlashCorruptingCrasher};
    return config;
  }

  static void ExpectSameBugTable(const CampaignResult& reflash,
                                 const CampaignResult& snapshot) {
    ASSERT_EQ(reflash.bugs.size(), snapshot.bugs.size());
    for (size_t i = 0; i < reflash.bugs.size(); ++i) {
      SCOPED_TRACE(reflash.bugs[i].program_text);
      EXPECT_EQ(reflash.bugs[i].catalog_id, snapshot.bugs[i].catalog_id);
      EXPECT_EQ(reflash.bugs[i].detector, snapshot.bugs[i].detector);
      EXPECT_EQ(reflash.bugs[i].kind, snapshot.bugs[i].kind);
      EXPECT_EQ(reflash.bugs[i].excerpt, snapshot.bugs[i].excerpt);
      EXPECT_EQ(reflash.bugs[i].program_text, snapshot.bugs[i].program_text);
      EXPECT_EQ(reflash.bugs[i].first_exec, snapshot.bugs[i].first_exec);
      EXPECT_EQ(reflash.bugs[i].board, snapshot.bugs[i].board);
      EXPECT_EQ(reflash.bugs[i].seed_stream, snapshot.bugs[i].seed_stream);
      EXPECT_EQ(reflash.bugs[i].coverage_delta, snapshot.bugs[i].coverage_delta);
      // The validation column is the one deliberate difference.
      EXPECT_EQ(reflash.bugs[i].snapshot_validation, "not_checked");
      EXPECT_EQ(snapshot.bugs[i].snapshot_validation, "confirmed");
    }
  }
};

TEST_F(SnapshotDifferentialTest, SnapshotCampaignBitMatchesReflashJobs1) {
  constexpr uint64_t kSeed = 11;
  constexpr uint64_t kExecs = 350;
  auto reflash = EofFuzzer(CappedConfig(RestoreMode::kReflash, kSeed, kExecs)).Run();
  auto snapshot = EofFuzzer(CappedConfig(RestoreMode::kSnapshot, kSeed, kExecs)).Run();
  ASSERT_TRUE(reflash.ok()) << reflash.status().ToString();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  // Identical campaign: same execs, same coverage, same corpus, same crash and
  // restore counts, same deduped bug table.
  EXPECT_EQ(reflash->execs, kExecs);
  EXPECT_EQ(snapshot->execs, kExecs);
  EXPECT_EQ(reflash->final_coverage, snapshot->final_coverage);
  EXPECT_EQ(reflash->corpus_size, snapshot->corpus_size);
  EXPECT_EQ(reflash->crashes, snapshot->crashes);
  EXPECT_EQ(reflash->stalls, snapshot->stalls);
  EXPECT_EQ(reflash->timeouts, snapshot->timeouts);
  EXPECT_EQ(reflash->restores, snapshot->restores);
  EXPECT_EQ(reflash->rejected, snapshot->rejected);
  ASSERT_FALSE(snapshot->bugs.empty());  // the differential must prove something
  ExpectSameBugTable(*reflash, *snapshot);
  EXPECT_EQ(snapshot->bugs_rejected, 0u);

  // Only the snapshot campaign rode the warm path — and killed the reboot tax.
  EXPECT_EQ(reflash->snapshot_restores, 0u);
  EXPECT_GT(snapshot->snapshot_restores, 0u);
  EXPECT_GT(snapshot->snapshot_bytes, 0u);
  EXPECT_LT(snapshot->elapsed, reflash->elapsed);
}

TEST_F(SnapshotDifferentialTest, SnapshotCampaignMatchesReflashJobs4) {
  constexpr uint64_t kSeed = 5;
  constexpr uint64_t kExecsPerWorker = 120;
  // Feedback off: each worker's input stream is then a pure function of its seed,
  // so farm results are interleaving-independent and the modes comparable.
  FuzzerConfig reflash_config =
      CappedConfig(RestoreMode::kReflash, kSeed, kExecsPerWorker);
  FuzzerConfig snapshot_config =
      CappedConfig(RestoreMode::kSnapshot, kSeed, kExecsPerWorker);
  reflash_config.coverage_feedback = false;
  snapshot_config.coverage_feedback = false;

  auto reflash = BoardFarm(reflash_config, /*jobs=*/4).Run();
  auto snapshot = BoardFarm(snapshot_config, /*jobs=*/4).Run();
  ASSERT_TRUE(reflash.ok()) << reflash.status().ToString();
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  EXPECT_EQ(reflash->execs, 4 * kExecsPerWorker);
  EXPECT_EQ(snapshot->execs, 4 * kExecsPerWorker);
  EXPECT_EQ(reflash->final_coverage, snapshot->final_coverage);
  EXPECT_EQ(reflash->crashes, snapshot->crashes);
  EXPECT_EQ(reflash->stalls, snapshot->stalls);
  EXPECT_EQ(reflash->timeouts, snapshot->timeouts);
  EXPECT_EQ(reflash->restores, snapshot->restores);

  // Bug identity is worker-timing-independent only as a set: first-sighting
  // attribution may land on a different worker across runs.
  auto ids = [](const CampaignResult& result) {
    std::vector<int> ids;
    for (const BugReport& bug : result.bugs) {
      ids.push_back(bug.catalog_id);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  EXPECT_EQ(ids(*reflash), ids(*snapshot));
  for (const BugReport& bug : snapshot->bugs) {
    EXPECT_EQ(bug.snapshot_validation, "confirmed") << bug.program_text;
  }
  EXPECT_EQ(snapshot->bugs_rejected, 0u);
  EXPECT_EQ(reflash->snapshot_restores, 0u);
  EXPECT_GT(snapshot->snapshot_restores, 0u);
}

}  // namespace
}  // namespace eof
