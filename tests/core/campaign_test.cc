// Campaign aggregation, repetition seeding, and the board farm: Band() truncation
// semantics, hashed repetition-seed independence, farm determinism (--jobs 1 must
// bit-match the single-threaded engine), and multi-worker scaling.

#include "src/core/campaign.h"

#include <gtest/gtest.h>

#include <set>

#include "src/common/hash.h"
#include "src/core/board_farm.h"
#include "src/os/all_oses.h"

namespace eof {
namespace {

class CampaignTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }
};

CampaignResult ResultWithSeries(std::initializer_list<uint64_t> coverages) {
  CampaignResult result;
  VirtualTime t = 0;
  for (uint64_t coverage : coverages) {
    t += kVirtualMinute;
    result.series.push_back(CampaignSample{t, coverage});
  }
  return result;
}

TEST_F(CampaignTest, BandTruncatesToShortestSeries) {
  RepeatedResult repeated;
  repeated.runs.push_back(ResultWithSeries({10, 20, 30, 40, 50}));
  repeated.runs.push_back(ResultWithSeries({12, 18, 36}));

  SeriesBand band = repeated.Band();
  // Unequal-length series aggregate only over the shared prefix: the band stops at
  // the shortest run.
  ASSERT_EQ(band.time.size(), 3u);
  ASSERT_EQ(band.mean.size(), 3u);
  ASSERT_EQ(band.min.size(), 3u);
  ASSERT_EQ(band.max.size(), 3u);
  EXPECT_DOUBLE_EQ(band.mean[2], (30.0 + 36.0) / 2);
  EXPECT_DOUBLE_EQ(band.min[0], 10.0);
  EXPECT_DOUBLE_EQ(band.max[0], 12.0);
}

TEST_F(CampaignTest, BandOfEmptyRunsIsEmpty) {
  RepeatedResult repeated;
  EXPECT_TRUE(repeated.Band().time.empty());
  repeated.runs.push_back(ResultWithSeries({1, 2}));
  repeated.runs.push_back(CampaignResult{});  // no samples at all
  EXPECT_TRUE(repeated.Band().time.empty());
}

TEST_F(CampaignTest, RepetitionSeedsAreUniqueAcrossAdjacentBasesAndReps) {
  // The old additive scheme (base + rep * 7919) collided: (base, rep) and
  // (base + 7919, rep - 1) shared a seed. The hashed derivation must keep every
  // (base, rep) pair distinct — including across the stride that used to collide.
  std::set<uint64_t> seeds;
  size_t expected = 0;
  for (uint64_t base : {1ull, 2ull, 3ull, 42ull, 1ull + 7919ull, 2ull + 7919ull}) {
    for (int rep = 0; rep < 5; ++rep) {
      seeds.insert(RepetitionSeed(base, rep));
      ++expected;
    }
  }
  EXPECT_EQ(seeds.size(), expected);

  // Repetition streams must not alias farm worker streams of the same base seed.
  for (int lane = 0; lane < 8; ++lane) {
    EXPECT_EQ(seeds.count(FarmWorkerSeed(1, lane)), 0u);
  }
}

TEST_F(CampaignTest, FarmWorkerZeroKeepsBaseSeed) {
  EXPECT_EQ(FarmWorkerSeed(77, 0), 77u);
  EXPECT_NE(FarmWorkerSeed(77, 1), 77u);
  EXPECT_NE(FarmWorkerSeed(77, 1), FarmWorkerSeed(77, 2));
  EXPECT_NE(FarmWorkerSeed(77, 1), FarmWorkerSeed(78, 1));
}

FuzzerConfig ShortCampaign(uint64_t seed) {
  FuzzerConfig config;
  config.os_name = "freertos";
  config.seed = seed;
  config.budget = 5 * kVirtualMinute;
  config.sample_points = 10;
  return config;
}

TEST_F(CampaignTest, FarmWithOneJobBitMatchesSingleThreadedEngine) {
  FuzzerConfig config = ShortCampaign(21);

  EofFuzzer fuzzer(config);
  auto single = fuzzer.Run();
  ASSERT_TRUE(single.ok()) << single.status().ToString();

  BoardFarm farm(config, /*jobs=*/1);
  auto farmed = farm.Run();
  ASSERT_TRUE(farmed.ok()) << farmed.status().ToString();

  const CampaignResult& a = single.value();
  const CampaignResult& b = farmed.value();
  EXPECT_EQ(a.execs, b.execs);
  EXPECT_EQ(a.final_coverage, b.final_coverage);
  EXPECT_EQ(a.corpus_size, b.corpus_size);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.restores, b.restores);
  EXPECT_EQ(a.elapsed, b.elapsed);
  ASSERT_EQ(a.series.size(), b.series.size());
  for (size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].time, b.series[i].time) << "sample " << i;
    EXPECT_EQ(a.series[i].coverage, b.series[i].coverage) << "sample " << i;
  }
  ASSERT_EQ(a.bugs.size(), b.bugs.size());
  for (size_t i = 0; i < a.bugs.size(); ++i) {
    EXPECT_EQ(a.bugs[i].catalog_id, b.bugs[i].catalog_id);
    EXPECT_EQ(a.bugs[i].program_text, b.bugs[i].program_text);
  }
}

TEST_F(CampaignTest, FarmScalesExecutionsAcrossWorkers) {
  FuzzerConfig config = ShortCampaign(31);
  // Long enough that one unlucky state restoration (tens of virtual minutes of
  // reflash/reboot cost) cannot consume a worker's whole window.
  config.budget = 30 * kVirtualMinute;

  BoardFarm one(config, 1);
  auto one_result = one.Run();
  ASSERT_TRUE(one_result.ok()) << one_result.status().ToString();

  BoardFarm two(config, 2);
  auto two_result = two.Run();
  ASSERT_TRUE(two_result.ok()) << two_result.status().ToString();

  // Two boards each burn the full virtual budget, so the farmed campaign executes
  // roughly twice the payloads in the same campaign window.
  EXPECT_GT(two_result.value().execs, one_result.value().execs * 3 / 2);
  EXPECT_GE(two_result.value().final_coverage, one_result.value().final_coverage / 2);
  EXPECT_EQ(two_result.value().series.size(), config.sample_points);
  // Merged series stays monotone.
  for (size_t i = 1; i < two_result.value().series.size(); ++i) {
    EXPECT_GE(two_result.value().series[i].coverage,
              two_result.value().series[i - 1].coverage);
  }
}

TEST_F(CampaignTest, RunRepeatedParallelMatchesSerial) {
  FuzzerConfig config = ShortCampaign(5);
  auto serial = RunRepeated(config, 2, /*parallelism=*/1);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto parallel = RunRepeated(config, 2, /*parallelism=*/2);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  ASSERT_EQ(serial.value().runs.size(), parallel.value().runs.size());
  for (size_t i = 0; i < serial.value().runs.size(); ++i) {
    EXPECT_EQ(serial.value().runs[i].execs, parallel.value().runs[i].execs) << i;
    EXPECT_EQ(serial.value().runs[i].final_coverage,
              parallel.value().runs[i].final_coverage)
        << i;
  }
}

}  // namespace
}  // namespace eof
