// Telemetry subsystem tests: registry semantics (idempotent registration, snapshot
// Diff/Merge), concurrent writers against a snapshotting reader (the TSan target),
// journal drop accounting under a tiny buffer, deterministic span ids, the snapshot
// emitter's interval/frontier rules, the flight recorder's bounded rings and dump
// determinism, and the campaign-level contract that a telemetry-consuming run is
// bit-identical to a telemetry-off run.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "src/core/fuzzer.h"
#include "src/hw/board.h"
#include "src/hw/board_catalog.h"
#include "src/hw/debug_port.h"
#include "src/os/all_oses.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/snapshot.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/trace.h"

namespace eof {
namespace telemetry {
namespace {

TEST(MetricsRegistryTest, RegistrationIsIdempotentWithStableHandles) {
  MetricsRegistry registry;
  Counter* a = registry.RegisterCounter("link.transactions");
  Counter* b = registry.RegisterCounter("link.transactions");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->Value(), 3u);

  Gauge* g1 = registry.RegisterGauge("exec.local_coverage");
  Gauge* g2 = registry.RegisterGauge("exec.local_coverage");
  EXPECT_EQ(g1, g2);

  Histogram* h1 = registry.RegisterHistogram("span.reflash_us", {10, 100});
  Histogram* h2 = registry.RegisterHistogram("span.reflash_us", {99999});
  EXPECT_EQ(h1, h2);  // existing bounds win
}

TEST(MetricsRegistryTest, SnapshotCapturesAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.RegisterCounter("c")->Add(7);
  registry.RegisterGauge("g")->Set(42);
  Histogram* h = registry.RegisterHistogram("h", {10, 100});
  h->Observe(5);
  h->Observe(50);
  h->Observe(5000);

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("c"), 7u);
  EXPECT_EQ(snapshot.GaugeValue("g"), 42u);
  EXPECT_EQ(snapshot.CounterValue("missing"), 0u);
  const HistogramSnapshot& hist = snapshot.histograms.at("h");
  EXPECT_EQ(hist.count, 3u);
  EXPECT_EQ(hist.sum, 5055u);
  ASSERT_EQ(hist.buckets.size(), 3u);
  EXPECT_EQ(hist.buckets[0], 1u);  // <= 10
  EXPECT_EQ(hist.buckets[1], 1u);  // <= 100
  EXPECT_EQ(hist.buckets[2], 1u);  // overflow
}

TEST(MetricsSnapshotTest, DiffIsolatesAProbeWindow) {
  MetricsRegistry registry;
  Counter* c = registry.RegisterCounter("c");
  Gauge* g = registry.RegisterGauge("g");
  c->Add(10);
  g->Set(1);
  MetricsSnapshot before = registry.Snapshot();
  c->Add(5);
  g->Set(9);
  MetricsSnapshot delta = registry.Snapshot().Diff(before);
  EXPECT_EQ(delta.CounterValue("c"), 5u);
  EXPECT_EQ(delta.GaugeValue("g"), 9u);  // gauges keep the later level
}

TEST(MetricsSnapshotTest, MergeSumsCountersAndMaxesGauges) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.RegisterCounter("c")->Add(2);
  b.RegisterCounter("c")->Add(40);
  b.RegisterCounter("only_b")->Add(1);
  a.RegisterGauge("g")->Set(7);
  b.RegisterGauge("g")->Set(3);
  a.RegisterHistogram("h", {10})->Observe(4);
  b.RegisterHistogram("h", {10})->Observe(400);

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.CounterValue("c"), 42u);
  EXPECT_EQ(merged.CounterValue("only_b"), 1u);
  EXPECT_EQ(merged.GaugeValue("g"), 7u);
  EXPECT_EQ(merged.histograms.at("h").count, 2u);
  EXPECT_EQ(merged.histograms.at("h").sum, 404u);
}

// The TSan target: hammer one registry from several writer threads while a reader
// snapshots concurrently. Counter totals must be exact; snapshots must be torn-free
// enough to never exceed the final total.
TEST(MetricsRegistryTest, ConcurrentWritersAndSnapshotReader) {
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 20000;
  MetricsRegistry registry;
  Counter* counter = registry.RegisterCounter("exec.execs");
  Histogram* histogram = registry.RegisterHistogram("span.exec_us", {100, 1000});
  std::atomic<bool> stop(false);

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsSnapshot snapshot = registry.Snapshot();
      EXPECT_LE(snapshot.CounterValue("exec.execs"), kWriters * kPerWriter);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, counter, histogram, w] {
      // Concurrent registration of the same and of distinct names must be safe too.
      Gauge* gauge =
          registry.RegisterGauge("exec.worker" + std::to_string(w) + ".gauge");
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        counter->Increment();
        histogram->Observe(i % 2000);
        gauge->Set(i);
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  MetricsSnapshot final_snapshot = registry.Snapshot();
  EXPECT_EQ(final_snapshot.CounterValue("exec.execs"), kWriters * kPerWriter);
  EXPECT_EQ(final_snapshot.histograms.at("span.exec_us").count, kWriters * kPerWriter);
}

TEST(JournalTest, MemorySinkDropsAndCountsBeyondCapacity) {
  MemoryEventSink sink(/*capacity=*/2);
  Event event;
  event.type = "new_coverage";
  EXPECT_TRUE(sink.Emit(event));
  EXPECT_TRUE(sink.Emit(event));
  EXPECT_FALSE(sink.Emit(event));
  EXPECT_FALSE(sink.Emit(event));
  EXPECT_EQ(sink.dropped(), 2u);
  EXPECT_EQ(sink.Events().size(), 2u);
}

TEST(JournalTest, ConcurrentEmittersNeverLoseTheCount) {
  // Tiny capacity forces the drop path under contention; kept + dropped must equal
  // the number of Emit calls exactly.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  MemoryEventSink sink(/*capacity=*/64);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink] {
      Event event;
      event.type = "liveness_reset";
      for (int i = 0; i < kPerThread; ++i) {
        sink.Emit(event);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(sink.Events().size() + sink.dropped(),
            static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(sink.Events().size(), 64u);
}

TEST(JournalTest, EventRendersAsOneJsonObject) {
  Event event;
  event.at = 1500;
  event.type = "bug";
  event.worker = 2;
  event.fields.push_back(EventField::Uint("catalog_id", 7));
  event.fields.push_back(EventField::Real("rate", 2.5));
  event.fields.push_back(EventField::Text("detector", "log\"mon\""));
  EXPECT_EQ(event.ToJsonLine(),
            "{\"type\":\"bug\",\"t_us\":1500,\"worker\":2,\"catalog_id\":7,"
            "\"rate\":2.5000,\"detector\":\"log\\\"mon\\\"\"}");
}

TEST(JournalTest, FileSinkWritesParseableLinesAndFlushes) {
  std::string path = ::testing::TempDir() + "/telemetry_file_sink.jsonl";
  auto sink_or = FileEventSink::Open(path, /*buffer_lines=*/4);
  ASSERT_TRUE(sink_or.ok());
  std::unique_ptr<FileEventSink> sink = std::move(sink_or).value();
  Event event;
  event.type = "campaign_start";
  for (int i = 0; i < 10; ++i) {
    event.at = static_cast<VirtualTime>(i);
    EXPECT_TRUE(sink->Emit(event));
  }
  sink->Flush();
  FILE* file = fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  int lines = 0;
  int c;
  while ((c = fgetc(file)) != EOF) {
    if (c == '\n') {
      ++lines;
    }
  }
  fclose(file);
  EXPECT_EQ(lines, 10);
  EXPECT_EQ(sink->dropped(), 0u);
  remove(path.c_str());
}

TEST(TracerTest, SpanIdsAreSeedDeterministicAndDurationsLand) {
  MetricsRegistry reg_a;
  MetricsRegistry reg_b;
  Tracer tracer_a(&reg_a, /*session_seed=*/11, /*worker=*/0, nullptr);
  Tracer tracer_b(&reg_b, /*session_seed=*/11, /*worker=*/0, nullptr);
  Tracer other(&reg_b, /*session_seed=*/12, /*worker=*/0, nullptr);

  Tracer::Span s1 = tracer_a.Begin("reflash", 100);
  Tracer::Span s2 = tracer_b.Begin("reflash", 100);
  EXPECT_EQ(s1.id, s2.id);  // same seed, same sequence -> same id
  EXPECT_NE(s1.id, other.Begin("reflash", 100).id);

  tracer_a.End(s1, 350);
  MetricsSnapshot snapshot = reg_a.Snapshot();
  const HistogramSnapshot& hist = snapshot.histograms.at("span.reflash_us");
  EXPECT_EQ(hist.count, 1u);
  EXPECT_EQ(hist.sum, 250u);
}

TEST(TracerTest, JournaledSpanCarriesBeginAndDuration) {
  MetricsRegistry registry;
  MemoryEventSink sink;
  Tracer tracer(&registry, /*session_seed=*/3, /*worker=*/1, &sink);
  Tracer::Span span = tracer.Begin("deploy", 1000);
  tracer.End(span, 4000, /*journal=*/true);
  auto events = sink.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, "span");
  EXPECT_EQ(events[0].at, 4000u);
  EXPECT_EQ(events[0].worker, 1);
}

TEST(SnapshotEmitterTest, BoardRowsFollowEachClockFarmRowsFollowTheFrontier) {
  MetricsRegistry board0;
  MetricsRegistry board1;
  board0.RegisterCounter("exec.execs")->Add(10);
  board1.RegisterCounter("exec.execs")->Add(20);
  MemoryEventSink sink;
  SnapshotEmitter emitter({&board0, &board1}, /*view=*/nullptr, &sink,
                          /*interval=*/100, /*budget=*/1000);

  emitter.MaybeEmit(0, 250);  // board 0 crossed t=100 and t=200
  auto events = sink.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, "board_snapshot");
  EXPECT_EQ(events[0].at, 100u);
  EXPECT_EQ(events[1].at, 200u);

  // Farm rows wait for the slowest active board: only when board 1 reaches t>=100
  // does the frontier cross the first boundary.
  emitter.MaybeEmit(1, 120);
  events = sink.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[2].type, "board_snapshot");
  EXPECT_EQ(events[2].worker, 1);
  EXPECT_EQ(events[3].type, "farm_snapshot");
  EXPECT_EQ(events[3].at, 100u);
  // The farm row merges both boards' registries.
  bool found = false;
  for (const EventField& field : events[3].fields) {
    if (field.key == "execs") {
      EXPECT_EQ(field.uint_value, 30u);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // A finished worker stops holding the frontier back.
  emitter.WorkerDone(1);
  events = sink.Events();
  EXPECT_EQ(events.back().type, "farm_snapshot");
  EXPECT_EQ(events.back().at, 200u);
}

TEST(FlightRecorderTest, RingsBoundHistoryAndOverwriteOldestFirst) {
  FlightRecorder::Options options;
  options.port_op_capacity = 4;
  options.uart_line_capacity = 2;
  options.event_capacity = 3;
  FlightRecorder recorder(options);

  for (uint64_t i = 0; i < 6; ++i) {
    recorder.RecordPortOp(/*at=*/i * 10, FlightPortOp::kRead, /*address=*/0x1000 + i,
                          /*size=*/4, /*ok=*/true);
  }
  recorder.RecordUartText(5, "one\ntwo\nthree");
  for (uint64_t i = 0; i < 5; ++i) {
    recorder.RecordEvent(i, "exec_begin", i);
  }

  FlightDump dump = recorder.Dump("test", /*at=*/999);
  EXPECT_EQ(dump.reason, "test");
  EXPECT_EQ(dump.at, 999u);
  EXPECT_EQ(dump.port_ops_seen, 6u);
  ASSERT_EQ(dump.port_ops.size(), 4u);  // capacity bound
  // Oldest kept entry first: appends 2..5 survive in order.
  EXPECT_EQ(dump.port_ops.front().address, 0x1002u);
  EXPECT_EQ(dump.port_ops.back().address, 0x1005u);

  EXPECT_EQ(dump.uart_lines_seen, 3u);
  ASSERT_EQ(dump.uart_tail.size(), 2u);
  EXPECT_EQ(dump.uart_tail[0], "two");
  EXPECT_EQ(dump.uart_tail[1], "three");

  EXPECT_EQ(dump.events_seen, 5u);
  ASSERT_EQ(dump.events.size(), 3u);
  EXPECT_EQ(dump.events.front().value, 2u);
  EXPECT_EQ(dump.events.back().value, 4u);
}

TEST(FlightRecorderTest, UartLinesSplitTruncateAndSkipEmpties) {
  FlightRecorder recorder;
  std::string long_line(3 * kUartLineCapacity, 'x');
  recorder.RecordUartText(1, "\n\nfirst\n" + long_line + "\n");
  FlightDump dump = recorder.Dump("test", 2);
  ASSERT_EQ(dump.uart_tail.size(), 2u);  // blank lines are not recorded
  EXPECT_EQ(dump.uart_tail[0], "first");
  EXPECT_EQ(dump.uart_tail[1].size(), kUartLineCapacity);  // truncated, not dropped
  EXPECT_EQ(dump.uart_lines_seen, 2u);
}

TEST(FlightRecorderTest, IdenticalHistoriesRenderBitIdenticalDumps) {
  auto record = [](FlightRecorder* recorder) {
    recorder->RecordPortOp(10, FlightPortOp::kWrite, 0x2000, 64, true);
    recorder->RecordPortOp(20, FlightPortOp::kContinue, 0x08000100, 0, true);
    recorder->RecordUartText(25, "assertion failed: q != NULL\n");
    recorder->RecordEvent(30, "exec_begin", 7);
    recorder->RecordPortOp(40, FlightPortOp::kRead, 0x2000, 4, false);
  };
  FlightRecorder a;
  FlightRecorder b;
  record(&a);
  record(&b);
  EXPECT_EQ(a.Dump("crash", 50).RenderText(), b.Dump("crash", 50).RenderText());

  // The rendered dump carries all three sections.
  std::string text = a.Dump("crash", 50).RenderText();
  EXPECT_NE(text.find("reason=crash"), std::string::npos);
  EXPECT_NE(text.find("-- port ops --"), std::string::npos);
  EXPECT_NE(text.find("assertion failed: q != NULL"), std::string::npos);
  EXPECT_NE(text.find("exec_begin=7"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
}

TEST(FlightRecorderTest, DebugPortFeedsTheAttachedRecorder) {
  Board board(BoardSpecByName("stm32f407-disco").value());
  DebugPort port(&board);
  ASSERT_TRUE(port.Connect().ok());
  board.LatchFault(0x1000, "test: park the core past boot");

  FlightRecorder recorder;
  port.set_flight_recorder(&recorder);
  uint64_t ram = board.spec().ram_base;
  ASSERT_TRUE(port.WriteMem(ram + 0x10, {1, 2, 3}).ok());
  (void)port.ReadMem(ram + 0x10, 3);
  (void)port.DrainUart();

  FlightDump dump = recorder.Dump("test", port.Now());
  ASSERT_GE(dump.port_ops.size(), 3u);
  EXPECT_EQ(dump.port_ops[0].op, FlightPortOp::kWrite);
  EXPECT_EQ(dump.port_ops[0].address, ram + 0x10);
  EXPECT_EQ(dump.port_ops[0].size, 3u);
  EXPECT_EQ(dump.port_ops[1].op, FlightPortOp::kRead);
  EXPECT_EQ(dump.port_ops.back().op, FlightPortOp::kUartDrain);

  // Detaching stops the feed.
  port.set_flight_recorder(nullptr);
  (void)port.ReadMem(ram + 0x10, 1);
  EXPECT_EQ(recorder.port_ops_seen(), dump.port_ops_seen);
}

// TSan target: distinct boards own distinct recorders and record from their own
// worker threads concurrently (the farm's confinement rule — no sharing).
TEST(FlightRecorderTest, DistinctBoardRecordersAreConcurrencySafe) {
  constexpr int kBoards = 4;
  constexpr uint64_t kOps = 20000;
  std::vector<std::unique_ptr<FlightRecorder>> recorders;
  for (int i = 0; i < kBoards; ++i) {
    recorders.push_back(std::make_unique<FlightRecorder>());
  }
  std::vector<std::thread> threads;
  for (int b = 0; b < kBoards; ++b) {
    threads.emplace_back([&recorders, b] {
      FlightRecorder* recorder = recorders[static_cast<size_t>(b)].get();
      for (uint64_t i = 0; i < kOps; ++i) {
        recorder->RecordPortOp(i, FlightPortOp::kRead, i, 4, true);
        if (i % 64 == 0) {
          recorder->RecordUartText(i, "tick\n");
          recorder->RecordEvent(i, "exec_begin", i);
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (const auto& recorder : recorders) {
    EXPECT_EQ(recorder->port_ops_seen(), kOps);
  }
}

TEST(CampaignTelemetryTest, OpenFailureSurfacesAndEmptyPathMeansNoSink) {
  CampaignTelemetry::Options options;
  options.metrics_out = "/nonexistent-dir/metrics.jsonl";
  EXPECT_FALSE(CampaignTelemetry::Create(options).ok());

  options.metrics_out.clear();
  options.workers = 3;
  auto telemetry_or = CampaignTelemetry::Create(options);
  ASSERT_TRUE(telemetry_or.ok());
  EXPECT_EQ(telemetry_or.value()->sink(), nullptr);
  EXPECT_EQ(telemetry_or.value()->workers(), 3);
  EXPECT_EQ(telemetry_or.value()->emitter(), nullptr);
}

// The campaign-level determinism contract: with --jobs 1, a campaign writing a
// telemetry journal must produce bit-identical fuzzing results (coverage, series,
// execs, bugs) to the same campaign with telemetry off.
TEST(CampaignTelemetryTest, JournalingCampaignIsBitIdenticalToSilentOne) {
  ASSERT_TRUE(RegisterAllOses().ok());
  FuzzerConfig config;
  config.os_name = "freertos";
  config.seed = 11;
  config.budget = 90 * kVirtualSecond;
  config.sample_points = 6;

  EofFuzzer silent(config);
  auto silent_result = silent.Run();
  ASSERT_TRUE(silent_result.ok());

  config.metrics_out = ::testing::TempDir() + "/determinism_probe.jsonl";
  config.metrics_interval = 15 * kVirtualSecond;
  EofFuzzer journaled(config);
  auto journaled_result = journaled.Run();
  ASSERT_TRUE(journaled_result.ok());

  const CampaignResult& a = silent_result.value();
  const CampaignResult& b = journaled_result.value();
  EXPECT_EQ(a.final_coverage, b.final_coverage);
  EXPECT_EQ(a.execs, b.execs);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.bugs.size(), b.bugs.size());
  ASSERT_EQ(a.series.size(), b.series.size());
  for (size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].time, b.series[i].time);
    EXPECT_EQ(a.series[i].coverage, b.series[i].coverage);
  }
  // And the journal actually has content.
  FILE* file = fopen(config.metrics_out.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  fseek(file, 0, SEEK_END);
  EXPECT_GT(ftell(file), 0);
  fclose(file);
  remove(config.metrics_out.c_str());
}

}  // namespace
}  // namespace telemetry
}  // namespace eof
