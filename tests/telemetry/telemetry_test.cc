// Telemetry subsystem tests: registry semantics (idempotent registration, snapshot
// Diff/Merge), concurrent writers against a snapshotting reader (the TSan target),
// journal drop accounting under a tiny buffer, deterministic span ids, the snapshot
// emitter's interval/frontier rules, and the campaign-level contract that a
// telemetry-consuming run is bit-identical to a telemetry-off run.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "src/core/fuzzer.h"
#include "src/os/all_oses.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/snapshot.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/trace.h"

namespace eof {
namespace telemetry {
namespace {

TEST(MetricsRegistryTest, RegistrationIsIdempotentWithStableHandles) {
  MetricsRegistry registry;
  Counter* a = registry.RegisterCounter("link.transactions");
  Counter* b = registry.RegisterCounter("link.transactions");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->Value(), 3u);

  Gauge* g1 = registry.RegisterGauge("exec.local_coverage");
  Gauge* g2 = registry.RegisterGauge("exec.local_coverage");
  EXPECT_EQ(g1, g2);

  Histogram* h1 = registry.RegisterHistogram("span.reflash_us", {10, 100});
  Histogram* h2 = registry.RegisterHistogram("span.reflash_us", {99999});
  EXPECT_EQ(h1, h2);  // existing bounds win
}

TEST(MetricsRegistryTest, SnapshotCapturesAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.RegisterCounter("c")->Add(7);
  registry.RegisterGauge("g")->Set(42);
  Histogram* h = registry.RegisterHistogram("h", {10, 100});
  h->Observe(5);
  h->Observe(50);
  h->Observe(5000);

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("c"), 7u);
  EXPECT_EQ(snapshot.GaugeValue("g"), 42u);
  EXPECT_EQ(snapshot.CounterValue("missing"), 0u);
  const HistogramSnapshot& hist = snapshot.histograms.at("h");
  EXPECT_EQ(hist.count, 3u);
  EXPECT_EQ(hist.sum, 5055u);
  ASSERT_EQ(hist.buckets.size(), 3u);
  EXPECT_EQ(hist.buckets[0], 1u);  // <= 10
  EXPECT_EQ(hist.buckets[1], 1u);  // <= 100
  EXPECT_EQ(hist.buckets[2], 1u);  // overflow
}

TEST(MetricsSnapshotTest, DiffIsolatesAProbeWindow) {
  MetricsRegistry registry;
  Counter* c = registry.RegisterCounter("c");
  Gauge* g = registry.RegisterGauge("g");
  c->Add(10);
  g->Set(1);
  MetricsSnapshot before = registry.Snapshot();
  c->Add(5);
  g->Set(9);
  MetricsSnapshot delta = registry.Snapshot().Diff(before);
  EXPECT_EQ(delta.CounterValue("c"), 5u);
  EXPECT_EQ(delta.GaugeValue("g"), 9u);  // gauges keep the later level
}

TEST(MetricsSnapshotTest, MergeSumsCountersAndMaxesGauges) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.RegisterCounter("c")->Add(2);
  b.RegisterCounter("c")->Add(40);
  b.RegisterCounter("only_b")->Add(1);
  a.RegisterGauge("g")->Set(7);
  b.RegisterGauge("g")->Set(3);
  a.RegisterHistogram("h", {10})->Observe(4);
  b.RegisterHistogram("h", {10})->Observe(400);

  MetricsSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.CounterValue("c"), 42u);
  EXPECT_EQ(merged.CounterValue("only_b"), 1u);
  EXPECT_EQ(merged.GaugeValue("g"), 7u);
  EXPECT_EQ(merged.histograms.at("h").count, 2u);
  EXPECT_EQ(merged.histograms.at("h").sum, 404u);
}

// The TSan target: hammer one registry from several writer threads while a reader
// snapshots concurrently. Counter totals must be exact; snapshots must be torn-free
// enough to never exceed the final total.
TEST(MetricsRegistryTest, ConcurrentWritersAndSnapshotReader) {
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 20000;
  MetricsRegistry registry;
  Counter* counter = registry.RegisterCounter("exec.execs");
  Histogram* histogram = registry.RegisterHistogram("span.exec_us", {100, 1000});
  std::atomic<bool> stop(false);

  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsSnapshot snapshot = registry.Snapshot();
      EXPECT_LE(snapshot.CounterValue("exec.execs"), kWriters * kPerWriter);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, counter, histogram, w] {
      // Concurrent registration of the same and of distinct names must be safe too.
      Gauge* gauge =
          registry.RegisterGauge("exec.worker" + std::to_string(w) + ".gauge");
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        counter->Increment();
        histogram->Observe(i % 2000);
        gauge->Set(i);
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  MetricsSnapshot final_snapshot = registry.Snapshot();
  EXPECT_EQ(final_snapshot.CounterValue("exec.execs"), kWriters * kPerWriter);
  EXPECT_EQ(final_snapshot.histograms.at("span.exec_us").count, kWriters * kPerWriter);
}

TEST(JournalTest, MemorySinkDropsAndCountsBeyondCapacity) {
  MemoryEventSink sink(/*capacity=*/2);
  Event event;
  event.type = "new_coverage";
  EXPECT_TRUE(sink.Emit(event));
  EXPECT_TRUE(sink.Emit(event));
  EXPECT_FALSE(sink.Emit(event));
  EXPECT_FALSE(sink.Emit(event));
  EXPECT_EQ(sink.dropped(), 2u);
  EXPECT_EQ(sink.Events().size(), 2u);
}

TEST(JournalTest, ConcurrentEmittersNeverLoseTheCount) {
  // Tiny capacity forces the drop path under contention; kept + dropped must equal
  // the number of Emit calls exactly.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  MemoryEventSink sink(/*capacity=*/64);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink] {
      Event event;
      event.type = "liveness_reset";
      for (int i = 0; i < kPerThread; ++i) {
        sink.Emit(event);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(sink.Events().size() + sink.dropped(),
            static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(sink.Events().size(), 64u);
}

TEST(JournalTest, EventRendersAsOneJsonObject) {
  Event event;
  event.at = 1500;
  event.type = "bug";
  event.worker = 2;
  event.fields.push_back(EventField::Uint("catalog_id", 7));
  event.fields.push_back(EventField::Real("rate", 2.5));
  event.fields.push_back(EventField::Text("detector", "log\"mon\""));
  EXPECT_EQ(event.ToJsonLine(),
            "{\"type\":\"bug\",\"t_us\":1500,\"worker\":2,\"catalog_id\":7,"
            "\"rate\":2.5000,\"detector\":\"log\\\"mon\\\"\"}");
}

TEST(JournalTest, FileSinkWritesParseableLinesAndFlushes) {
  std::string path = ::testing::TempDir() + "/telemetry_file_sink.jsonl";
  auto sink_or = FileEventSink::Open(path, /*buffer_lines=*/4);
  ASSERT_TRUE(sink_or.ok());
  std::unique_ptr<FileEventSink> sink = std::move(sink_or).value();
  Event event;
  event.type = "campaign_start";
  for (int i = 0; i < 10; ++i) {
    event.at = static_cast<VirtualTime>(i);
    EXPECT_TRUE(sink->Emit(event));
  }
  sink->Flush();
  FILE* file = fopen(path.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  int lines = 0;
  int c;
  while ((c = fgetc(file)) != EOF) {
    if (c == '\n') {
      ++lines;
    }
  }
  fclose(file);
  EXPECT_EQ(lines, 10);
  EXPECT_EQ(sink->dropped(), 0u);
  remove(path.c_str());
}

TEST(TracerTest, SpanIdsAreSeedDeterministicAndDurationsLand) {
  MetricsRegistry reg_a;
  MetricsRegistry reg_b;
  Tracer tracer_a(&reg_a, /*session_seed=*/11, /*worker=*/0, nullptr);
  Tracer tracer_b(&reg_b, /*session_seed=*/11, /*worker=*/0, nullptr);
  Tracer other(&reg_b, /*session_seed=*/12, /*worker=*/0, nullptr);

  Tracer::Span s1 = tracer_a.Begin("reflash", 100);
  Tracer::Span s2 = tracer_b.Begin("reflash", 100);
  EXPECT_EQ(s1.id, s2.id);  // same seed, same sequence -> same id
  EXPECT_NE(s1.id, other.Begin("reflash", 100).id);

  tracer_a.End(s1, 350);
  MetricsSnapshot snapshot = reg_a.Snapshot();
  const HistogramSnapshot& hist = snapshot.histograms.at("span.reflash_us");
  EXPECT_EQ(hist.count, 1u);
  EXPECT_EQ(hist.sum, 250u);
}

TEST(TracerTest, JournaledSpanCarriesBeginAndDuration) {
  MetricsRegistry registry;
  MemoryEventSink sink;
  Tracer tracer(&registry, /*session_seed=*/3, /*worker=*/1, &sink);
  Tracer::Span span = tracer.Begin("deploy", 1000);
  tracer.End(span, 4000, /*journal=*/true);
  auto events = sink.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, "span");
  EXPECT_EQ(events[0].at, 4000u);
  EXPECT_EQ(events[0].worker, 1);
}

TEST(SnapshotEmitterTest, BoardRowsFollowEachClockFarmRowsFollowTheFrontier) {
  MetricsRegistry board0;
  MetricsRegistry board1;
  board0.RegisterCounter("exec.execs")->Add(10);
  board1.RegisterCounter("exec.execs")->Add(20);
  MemoryEventSink sink;
  SnapshotEmitter emitter({&board0, &board1}, /*view=*/nullptr, &sink,
                          /*interval=*/100, /*budget=*/1000);

  emitter.MaybeEmit(0, 250);  // board 0 crossed t=100 and t=200
  auto events = sink.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, "board_snapshot");
  EXPECT_EQ(events[0].at, 100u);
  EXPECT_EQ(events[1].at, 200u);

  // Farm rows wait for the slowest active board: only when board 1 reaches t>=100
  // does the frontier cross the first boundary.
  emitter.MaybeEmit(1, 120);
  events = sink.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[2].type, "board_snapshot");
  EXPECT_EQ(events[2].worker, 1);
  EXPECT_EQ(events[3].type, "farm_snapshot");
  EXPECT_EQ(events[3].at, 100u);
  // The farm row merges both boards' registries.
  bool found = false;
  for (const EventField& field : events[3].fields) {
    if (field.key == "execs") {
      EXPECT_EQ(field.uint_value, 30u);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // A finished worker stops holding the frontier back.
  emitter.WorkerDone(1);
  events = sink.Events();
  EXPECT_EQ(events.back().type, "farm_snapshot");
  EXPECT_EQ(events.back().at, 200u);
}

TEST(CampaignTelemetryTest, OpenFailureSurfacesAndEmptyPathMeansNoSink) {
  CampaignTelemetry::Options options;
  options.metrics_out = "/nonexistent-dir/metrics.jsonl";
  EXPECT_FALSE(CampaignTelemetry::Create(options).ok());

  options.metrics_out.clear();
  options.workers = 3;
  auto telemetry_or = CampaignTelemetry::Create(options);
  ASSERT_TRUE(telemetry_or.ok());
  EXPECT_EQ(telemetry_or.value()->sink(), nullptr);
  EXPECT_EQ(telemetry_or.value()->workers(), 3);
  EXPECT_EQ(telemetry_or.value()->emitter(), nullptr);
}

// The campaign-level determinism contract: with --jobs 1, a campaign writing a
// telemetry journal must produce bit-identical fuzzing results (coverage, series,
// execs, bugs) to the same campaign with telemetry off.
TEST(CampaignTelemetryTest, JournalingCampaignIsBitIdenticalToSilentOne) {
  ASSERT_TRUE(RegisterAllOses().ok());
  FuzzerConfig config;
  config.os_name = "freertos";
  config.seed = 11;
  config.budget = 90 * kVirtualSecond;
  config.sample_points = 6;

  EofFuzzer silent(config);
  auto silent_result = silent.Run();
  ASSERT_TRUE(silent_result.ok());

  config.metrics_out = ::testing::TempDir() + "/determinism_probe.jsonl";
  config.metrics_interval = 15 * kVirtualSecond;
  EofFuzzer journaled(config);
  auto journaled_result = journaled.Run();
  ASSERT_TRUE(journaled_result.ok());

  const CampaignResult& a = silent_result.value();
  const CampaignResult& b = journaled_result.value();
  EXPECT_EQ(a.final_coverage, b.final_coverage);
  EXPECT_EQ(a.execs, b.execs);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.bugs.size(), b.bugs.size());
  ASSERT_EQ(a.series.size(), b.series.size());
  for (size_t i = 0; i < a.series.size(); ++i) {
    EXPECT_EQ(a.series[i].time, b.series[i].time);
    EXPECT_EQ(a.series[i].coverage, b.series[i].coverage);
  }
  // And the journal actually has content.
  FILE* file = fopen(config.metrics_out.c_str(), "rb");
  ASSERT_NE(file, nullptr);
  fseek(file, 0, SEEK_END);
  EXPECT_GT(ftell(file), 0);
  fclose(file);
  remove(config.metrics_out.c_str());
}

}  // namespace
}  // namespace telemetry
}  // namespace eof
