// Observability-plane tests: Prometheus text exposition goldens (stable names,
// labels, cumulative histogram buckets ending at +Inf), Chrome trace-event
// export (valid JSON, span nesting preserved), and journal rotation — a
// rotated multi-segment journal must reproduce the single-file CampaignReport
// bit-for-bit.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/prometheus.h"
#include "src/telemetry/report.h"
#include "src/telemetry/trace_export.h"

namespace eof {
namespace telemetry {
namespace {

using Field = EventField;

TEST(PrometheusTest, NameSanitizationAndEscaping) {
  EXPECT_EQ(PrometheusName("span.exec_continue_us"), "eof_span_exec_continue_us");
  EXPECT_EQ(PrometheusName("exec.execs"), "eof_exec_execs");
  EXPECT_EQ(PrometheusName("eof_already_prefixed"), "eof_already_prefixed");
  EXPECT_EQ(PrometheusName("weird-name with spaces"), "eof_weird_name_with_spaces");
  EXPECT_EQ(PrometheusEscape("plain"), "plain");
  EXPECT_EQ(PrometheusEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(PrometheusLabelSet({}), "");
  EXPECT_EQ(PrometheusLabelSet({{"campaign", "c\"1"}, {"worker", "w0"}}),
            "{campaign=\"c\\\"1\",worker=\"w0\"}");
}

TEST(PrometheusTest, GoldenExposition) {
  MetricsRegistry registry;
  Counter* execs = registry.RegisterCounter("exec.execs");
  Gauge* corpus = registry.RegisterGauge("corpus.size");
  Histogram* latency = registry.RegisterHistogram("span.deploy_us", {10, 100, 1000});
  execs->Add(42);
  corpus->Set(7);
  latency->Observe(5);     // bucket le=10
  latency->Observe(50);    // bucket le=100
  latency->Observe(51);    // bucket le=100
  latency->Observe(9999);  // overflow -> le=+Inf only

  std::string got = RenderPrometheus(registry.Snapshot(), {{"campaign", "c1"}});
  // The full exposition, byte for byte: counters (with _total) before gauges
  // before histograms; histogram buckets are cumulative and end at +Inf fed by
  // the snapshot's overflow bucket.
  const char* want =
      "# TYPE eof_exec_execs_total counter\n"
      "eof_exec_execs_total{campaign=\"c1\"} 42\n"
      "# TYPE eof_corpus_size gauge\n"
      "eof_corpus_size{campaign=\"c1\"} 7\n"
      "# TYPE eof_span_deploy_us histogram\n"
      "eof_span_deploy_us_bucket{campaign=\"c1\",le=\"10\"} 1\n"
      "eof_span_deploy_us_bucket{campaign=\"c1\",le=\"100\"} 3\n"
      "eof_span_deploy_us_bucket{campaign=\"c1\",le=\"1000\"} 3\n"
      "eof_span_deploy_us_bucket{campaign=\"c1\",le=\"+Inf\"} 4\n"
      "eof_span_deploy_us_sum{campaign=\"c1\"} 10105\n"
      "eof_span_deploy_us_count{campaign=\"c1\"} 4\n";
  EXPECT_EQ(got, want);
}

TEST(PrometheusTest, UnlabeledRenderAndEmptySnapshot) {
  MetricsSnapshot empty;
  EXPECT_EQ(RenderPrometheus(empty), "");

  MetricsRegistry registry;
  registry.RegisterCounter("a")->Increment();
  EXPECT_EQ(RenderPrometheus(registry.Snapshot()),
            "# TYPE eof_a_total counter\neof_a_total 1\n");
}

// Rows built by hand: the journal shapes the tracer and campaign writers emit.
JournalRow SpanRow(VirtualTime at, int worker, const std::string& name,
                   uint64_t begin_us, uint64_t dur_us) {
  JournalRow row;
  row.type = "span";
  row.at = at;
  row.worker = worker;
  row.texts["span"] = name;
  row.uints["span_id"] = 99;
  row.uints["begin_us"] = begin_us;
  row.uints["dur_us"] = dur_us;
  return row;
}

TEST(TraceExportTest, SpansNestAndInstantsRender) {
  std::vector<JournalRow> rows;
  // Child journaled before parent (journals close spans in End() order), at a
  // shared begin timestamp: the export must still put the enclosing span first.
  rows.push_back(SpanRow(1500, 0, "reflash", 1000, 300));
  rows.push_back(SpanRow(2000, 0, "watchdog_recovery", 1000, 1000));
  rows.push_back(SpanRow(5000, 1, "deploy", 4000, 1000));
  JournalRow bug;
  bug.type = "bug_report";
  bug.at = 4200;
  bug.worker = -1;
  bug.uints["catalog_id"] = 7;
  bug.uints["board"] = 1;
  bug.texts["kind"] = "double free";
  bug.texts["detector"] = "exception";
  rows.push_back(bug);
  JournalRow reset;
  reset.type = "liveness_reset";
  reset.at = 4300;
  reset.worker = -1;  // campaign scope -> global instant
  reset.texts["reason"] = "stall";
  rows.push_back(reset);
  JournalRow ignored;
  ignored.type = "heartbeat";  // not a trace row; must be skipped
  ignored.at = 1;
  rows.push_back(ignored);

  std::string json = RenderChromeTrace(rows);
  // Structure: one JSON object with a traceEvents array, newline-terminated.
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  // Lane metadata for boards 0 and 1.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"board 0\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"board 1\"}"), std::string::npos);
  // Nesting: at ts=1000, watchdog_recovery (dur 1000) precedes reflash (300).
  size_t parent = json.find("\"name\":\"watchdog_recovery\"");
  size_t child = json.find("\"name\":\"reflash\"");
  ASSERT_NE(parent, std::string::npos);
  ASSERT_NE(child, std::string::npos);
  EXPECT_LT(parent, child);
  // Complete events carry ts and dur in (virtual) microseconds.
  EXPECT_NE(json.find("\"ph\":\"X\",\"ts\":1000,\"dur\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\",\"ts\":4000,\"dur\":1000"), std::string::npos);
  // Instants: the bug lands on its board's lane, the campaign-scope reset is a
  // global instant.
  EXPECT_NE(json.find("\"name\":\"bug 7 double free\",\"ph\":\"i\",\"ts\":4200,"
                      "\"s\":\"t\",\"pid\":0,\"tid\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"liveness_reset stall\",\"ph\":\"i\",\"ts\":4300,"
                      "\"s\":\"g\""),
            std::string::npos);
  // The heartbeat row left no event behind.
  EXPECT_EQ(json.find("heartbeat"), std::string::npos);
}

TEST(TraceExportTest, EmptyRowsRenderEmptyTrace) {
  EXPECT_EQ(RenderChromeTrace({}), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
}

// The event sequence a small fleet campaign journals, synthesized so the test
// controls the byte sizes that drive rotation.
std::vector<Event> CampaignEvents() {
  std::vector<Event> events;
  Event start;
  start.at = 0;
  start.type = "campaign_start";
  start.fields = {Field::Text("os", "zephyr"), Field::Text("board", "default"),
                  Field::Uint("workers", 2), Field::Uint("seed", 7),
                  Field::Uint("budget_us", 60000000),
                  Field::Uint("interval_us", 1000000), Field::Uint("fleet", 1),
                  Field::Text("campaign", "c1")};
  events.push_back(start);
  for (int i = 0; i < 40; ++i) {
    Event grant;
    grant.at = 1000 + 10 * i;
    grant.type = "lease_grant";
    grant.worker = 1 + (i % 2);
    grant.fields = {Field::Text("campaign", "c1"), Field::Uint("shard", i % 4),
                    Field::Uint("lease", 100 + i), Field::Uint("attempt", 1)};
    events.push_back(grant);
    Event farm;
    farm.at = 2000 + 100 * i;
    farm.type = "farm_snapshot";
    farm.fields = {Field::Uint("boards", 4),
                   Field::Uint("campaign_coverage", 10 + i),
                   Field::Uint("corpus", 20 + i),
                   Field::Uint("campaign_execs", 100 * i),
                   Field::Uint("crashes", 0),
                   Field::Uint("bugs", 0),
                   Field::Uint("bugs_rejected", 0),
                   Field::Uint("journal_dropped", 0),
                   Field::Uint("journal_dropped_workers", 0),
                   Field::Text("campaign", "c1")};
    events.push_back(farm);
  }
  Event end;
  end.at = 60000000;
  end.type = "campaign_end";
  end.fields = {Field::Uint("execs", 4000), Field::Uint("coverage", 49),
                Field::Uint("journal_dropped", 0), Field::Text("campaign", "c1")};
  events.push_back(end);
  return events;
}

TEST(JournalRotationTest, SegmentsStayUnderCapAndCarryMarkers) {
  std::string base = ::testing::TempDir() + "eof_rotate_markers.jsonl";
  auto sink = RotatingFileEventSink::Open(base, /*rotate_bytes=*/2048);
  ASSERT_TRUE(sink.ok());
  for (const Event& event : CampaignEvents()) {
    EXPECT_TRUE(sink.value()->Emit(event));
  }
  sink.value()->Flush();
  std::vector<std::string> segments = sink.value()->SegmentPaths();
  ASSERT_GT(segments.size(), 2u);
  EXPECT_EQ(segments.front(),
            ::testing::TempDir() + "eof_rotate_markers.000.jsonl");
  EXPECT_EQ(sink.value()->dropped(), 0u);

  for (size_t i = 0; i < segments.size(); ++i) {
    FILE* file = fopen(segments[i].c_str(), "rb");
    ASSERT_NE(file, nullptr) << segments[i];
    fseek(file, 0, SEEK_END);
    long size = ftell(file);
    // Every segment respects the cap (no single line here exceeds it).
    EXPECT_LE(size, 2048) << segments[i];
    fseek(file, 0, SEEK_SET);
    char line[4096];
    ASSERT_NE(fgets(line, sizeof(line), file), nullptr);
    if (i > 0) {
      // Continuation segments open with the journal_segment header row the
      // report loader keys on.
      EXPECT_NE(std::string(line).find("\"type\":\"journal_segment\""),
                std::string::npos)
          << segments[i];
    }
    fclose(file);
  }
  // Every closed segment ends with its journal_rotate manifest row.
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    FILE* file = fopen(segments[i].c_str(), "rb");
    std::string last, current;
    char line[4096];
    while (fgets(line, sizeof(line), file) != nullptr) {
      current = line;
      if (!current.empty() && current.back() == '\n') {
        last = current;
      }
    }
    fclose(file);
    EXPECT_NE(last.find("\"type\":\"journal_rotate\""), std::string::npos)
        << segments[i];
  }
}

TEST(JournalRotationTest, RotatedSegmentsReproduceSingleFileReportExactly) {
  std::vector<Event> events = CampaignEvents();

  std::string single_path = ::testing::TempDir() + "eof_rotate_single.jsonl";
  {
    auto single = FileEventSink::Open(single_path, /*buffer_lines=*/1);
    ASSERT_TRUE(single.ok());
    for (const Event& event : events) {
      ASSERT_TRUE(single.value()->Emit(event));
    }
    single.value()->Flush();
  }

  std::string rotated_base = ::testing::TempDir() + "eof_rotate_multi.jsonl";
  std::vector<std::string> segments;
  {
    auto rotated = RotatingFileEventSink::Open(rotated_base, /*rotate_bytes=*/1024);
    ASSERT_TRUE(rotated.ok());
    for (const Event& event : events) {
      ASSERT_TRUE(rotated.value()->Emit(event));
    }
    rotated.value()->Flush();
    segments = rotated.value()->SegmentPaths();
  }
  ASSERT_GT(segments.size(), 3u);

  auto single_rows = LoadMergedJournalRows({single_path});
  ASSERT_TRUE(single_rows.ok());
  auto rotated_rows = LoadMergedJournalRows(segments);
  ASSERT_TRUE(rotated_rows.ok());

  // The rotated stream is the single stream plus interleaved rotation markers;
  // stripped of markers it must match row-for-row in order.
  std::vector<const JournalRow*> rotated_payload;
  size_t markers = 0;
  for (const JournalRow& row : rotated_rows.value()) {
    if (row.type == "journal_rotate" || row.type == "journal_segment") {
      ++markers;
      continue;
    }
    rotated_payload.push_back(&row);
  }
  EXPECT_EQ(markers, 2 * (segments.size() - 1));
  ASSERT_EQ(rotated_payload.size(), single_rows.value().size());
  for (size_t i = 0; i < rotated_payload.size(); ++i) {
    EXPECT_EQ(rotated_payload[i]->type, single_rows.value()[i].type) << i;
    EXPECT_EQ(rotated_payload[i]->at, single_rows.value()[i].at) << i;
  }

  // The folded report — text and JSON renderings — is bit-for-bit identical.
  CampaignReport single_report = BuildReport(single_rows.value());
  CampaignReport rotated_report = BuildReport(rotated_rows.value());
  EXPECT_EQ(single_report.RenderText(), rotated_report.RenderText());
  EXPECT_EQ(single_report.RenderJson(), rotated_report.RenderJson());

  // And the trace export sees identical spans (markers are not trace rows).
  EXPECT_EQ(RenderChromeTrace(single_rows.value()),
            RenderChromeTrace(rotated_rows.value()));
}

TEST(JournalRotationTest, RejectsZeroRotateBytes) {
  EXPECT_FALSE(RotatingFileEventSink::Open("/tmp/x.jsonl", 0).ok());
}

}  // namespace
}  // namespace telemetry
}  // namespace eof
