// Report-builder tests: strict JSONL parsing (malformed lines fail with their line
// number), BuildReport's folding and warning rules, golden-file rendering of a
// fixture journal (text and JSON, including the bug-provenance table), and the
// round-trip contract from the ISSUE acceptance list — a `--jobs 4` campaign's
// journal, fed through `eof report`'s loader, reproduces the live CampaignResult's
// final coverage, exec count, and deduped bug list exactly, and every bug carries a
// flight-recorder dump with a non-empty UART tail, port-op ring, and reproducer.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "src/core/board_farm.h"
#include "src/core/fuzzer.h"
#include "src/os/all_oses.h"
#include "src/telemetry/report.h"

namespace eof {
namespace telemetry {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  FILE* file = fopen(path.c_str(), "rb");
  EXPECT_NE(file, nullptr) << "cannot open " << path;
  if (file == nullptr) {
    return "";
  }
  std::string text;
  char buffer[4096];
  size_t got;
  while ((got = fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  fclose(file);
  return text;
}

std::string TestdataPath(const std::string& name) {
  return std::string(EOF_TESTDATA_DIR) + "/" + name;
}

TEST(ParseJournalLineTest, ParsesEnvelopeAndTypedFields) {
  auto row = ParseJournalLine(
      R"({"type":"bug_report","t_us":1234,"worker":2,"catalog_id":7,)"
      R"("execs_per_vsec":8.25,"excerpt":"line one\nline \"two\""})");
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  EXPECT_EQ(row->type, "bug_report");
  EXPECT_EQ(row->at, 1234u);
  EXPECT_EQ(row->worker, 2);
  EXPECT_EQ(row->Uint("catalog_id"), 7u);
  EXPECT_DOUBLE_EQ(row->Real("execs_per_vsec"), 8.25);
  EXPECT_EQ(row->Text("excerpt"), "line one\nline \"two\"");
  EXPECT_FALSE(row->Has("no_such_key"));
  EXPECT_EQ(row->Uint("no_such_key", 42), 42u);
  // Envelope keys are lifted out of the maps.
  EXPECT_FALSE(row->Has("type"));
  EXPECT_FALSE(row->Has("t_us"));
}

TEST(ParseJournalLineTest, UintAndRealCoerceAcrossNumberKinds) {
  auto row = ParseJournalLine(R"({"type":"x","count":9,"rate":2.5})");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->Uint("rate"), 2u);          // real truncates to uint
  EXPECT_DOUBLE_EQ(row->Real("count"), 9.0); // uint widens to real
}

TEST(ParseJournalLineTest, RejectsMalformedRows) {
  EXPECT_FALSE(ParseJournalLine("not json").ok());
  EXPECT_FALSE(ParseJournalLine(R"({"t_us":5})").ok());            // no "type"
  EXPECT_FALSE(ParseJournalLine(R"({"type":"x","a":[1]})").ok());  // nested value
  EXPECT_FALSE(ParseJournalLine(R"({"type":"x"} trailing)").ok());
  EXPECT_FALSE(ParseJournalLine(R"({"type":"x","s":"unterminated)").ok());
  EXPECT_FALSE(ParseJournalLine(R"({"type":"x","s":"bad \q escape"})").ok());
}

TEST(ParseJournalTest, SkipsBlankLinesAndReportsTheFailingLineNumber) {
  auto rows = ParseJournal("{\"type\":\"a\"}\n\n  \n{\"type\":\"b\"}\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].type, "a");
  EXPECT_EQ((*rows)[1].type, "b");

  auto bad = ParseJournal("{\"type\":\"a\"}\n\nnot json\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 3"), std::string::npos)
      << bad.status().ToString();
}

TEST(BuildReportTest, MissingBookendsAndDropsBecomeWarnings) {
  auto rows = ParseJournal(R"({"type":"farm_snapshot","t_us":100,"campaign_coverage":5,)"
                           R"("campaign_execs":10,"journal_dropped":3})");
  ASSERT_TRUE(rows.ok());
  CampaignReport report = BuildReport(rows.value());
  EXPECT_EQ(report.final_coverage, 5u);
  EXPECT_EQ(report.final_execs, 10u);
  EXPECT_EQ(report.journal_dropped, 3u);
  ASSERT_EQ(report.warnings.size(), 3u);  // no start, no end, dropped rows
  EXPECT_NE(report.RenderText().find("WARNING"), std::string::npos);
}

TEST(BuildReportTest, DedupRowsCreditTheFirstSightingOfTheCatalogId) {
  auto rows = ParseJournal(
      "{\"type\":\"campaign_start\",\"t_us\":0,\"os\":\"x\",\"board\":\"y\"}\n"
      "{\"type\":\"bug_report\",\"t_us\":10,\"catalog_id\":3,\"program\":\"p\"}\n"
      "{\"type\":\"bug_dedup\",\"t_us\":20,\"catalog_id\":3}\n"
      "{\"type\":\"bug_dedup\",\"t_us\":30,\"catalog_id\":3}\n"
      "{\"type\":\"campaign_end\",\"t_us\":40,\"journal_dropped\":0}\n");
  ASSERT_TRUE(rows.ok());
  CampaignReport report = BuildReport(rows.value());
  ASSERT_EQ(report.bugs.size(), 1u);
  EXPECT_EQ(report.bugs[0].duplicates, 2u);
  // bugs_found (1) disagrees with the absent snapshot count (0) -> warning.
  ASSERT_EQ(report.warnings.size(), 1u);
}

// Golden rendering of the checked-in fixture journal. Regenerate the goldens with
// `./build/tools/eof report tests/telemetry/testdata/sample_journal.jsonl` redirected
// into sample_report.txt (and with --json into sample_report.json).
TEST(ReportGoldenTest, TextRenderingMatchesGolden) {
  auto report = LoadReportFromFile(TestdataPath("sample_journal.jsonl"));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  std::string golden = ReadFileOrDie(TestdataPath("sample_report.txt"));
  EXPECT_EQ(report->RenderText(), golden);
  // The text form carries the bug-provenance table.
  EXPECT_NE(golden.find("first_exec="), std::string::npos);
  EXPECT_NE(golden.find("seed_stream="), std::string::npos);
}

TEST(ReportGoldenTest, JsonRenderingMatchesGolden) {
  auto report = LoadReportFromFile(TestdataPath("sample_journal.jsonl"));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  std::string golden = ReadFileOrDie(TestdataPath("sample_report.json"));
  EXPECT_EQ(report->RenderJson(), golden);
  EXPECT_NE(golden.find("\"seed_stream\":"), std::string::npos);
  EXPECT_NE(golden.find("\"uart_tail\":"), std::string::npos);
}

TEST(ReportLoadTest, MissingFileAndMalformedJournalFailWithContext) {
  auto missing = LoadReportFromFile(TestdataPath("no_such_journal.jsonl"));
  EXPECT_FALSE(missing.ok());

  std::string path = ::testing::TempDir() + "eof_malformed_journal.jsonl";
  FILE* file = fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  fputs("{\"type\":\"campaign_start\"}\n{broken\n", file);
  fclose(file);
  auto bad = LoadReportFromFile(path);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos)
      << bad.status().ToString();
  remove(path.c_str());
}

// The ISSUE acceptance check: a --jobs 4 campaign journal, loaded back through the
// report pipeline, reproduces the live campaign's final coverage and bug list
// exactly, and every deduped bug carries full forensics.
TEST(ReportRoundTripTest, FarmJournalReproducesTheLiveCampaignResult) {
  ASSERT_TRUE(RegisterAllOses().ok());
  std::string journal = ::testing::TempDir() + "eof_report_roundtrip_farm.jsonl";

  FuzzerConfig config;
  config.os_name = "zephyr";  // k_heap_init(size<8) crashes are shallow: bugs expected
  config.seed = 5;
  config.budget = 20 * kVirtualMinute;
  config.sample_points = 10;
  config.metrics_out = journal;
  BoardFarm farm(config, /*jobs=*/4);
  auto result = farm.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_GT(result->crashes, 0u) << "config no longer crashes; pick another seed";
  ASSERT_FALSE(result->bugs.empty());
  EXPECT_EQ(result->journal_dropped, 0u);

  auto report = LoadReportFromFile(journal);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->warnings.empty())
      << "unexpected warning: " << report->warnings.front();

  // Campaign header and final truths match the live result.
  EXPECT_EQ(report->os, "zephyr");
  EXPECT_EQ(report->workers, 4u);
  EXPECT_EQ(report->seed, 5u);
  EXPECT_EQ(report->budget, config.budget);
  EXPECT_EQ(report->end, result->elapsed);
  EXPECT_EQ(report->final_coverage, result->final_coverage);
  EXPECT_EQ(report->final_execs, result->execs);
  EXPECT_EQ(report->crashes, result->crashes);
  EXPECT_EQ(report->corpus, result->corpus_size);
  EXPECT_EQ(report->journal_dropped, result->journal_dropped);

  // The deduped bug list matches one-to-one, in order, with full provenance.
  ASSERT_EQ(report->bugs.size(), result->bugs.size());
  for (size_t i = 0; i < report->bugs.size(); ++i) {
    const ReportBug& from_journal = report->bugs[i];
    const BugReport& live = result->bugs[i];
    EXPECT_EQ(from_journal.catalog_id, live.catalog_id);
    EXPECT_EQ(from_journal.detector, live.detector);
    EXPECT_EQ(from_journal.kind, live.kind);
    EXPECT_EQ(from_journal.excerpt, live.excerpt);
    EXPECT_EQ(from_journal.program, live.program_text);
    EXPECT_EQ(from_journal.at, live.at);
    EXPECT_EQ(from_journal.first_exec, live.first_exec);
    EXPECT_EQ(from_journal.board, live.board);
    EXPECT_EQ(from_journal.seed_stream, live.seed_stream);
    EXPECT_EQ(from_journal.coverage_delta, live.coverage_delta);
    // Every bug carries a crash dump with real forensics content.
    EXPECT_FALSE(from_journal.program.empty());
    EXPECT_FALSE(from_journal.dump_reason.empty());
    EXPECT_FALSE(from_journal.uart_tail.empty());
    EXPECT_FALSE(from_journal.port_ops.empty());
    EXPECT_FALSE(from_journal.events.empty());
  }
  EXPECT_GE(report->crash_dumps, report->bugs.size());

  // Time accounting covers all four boards and the series reaches the end.
  EXPECT_EQ(report->boards.size(), 4u);
  for (const BoardAccounting& board : report->boards) {
    EXPECT_GT(board.clock, 0u);
    EXPECT_GT(board.execs, 0u);
    EXPECT_GT(board.exec_us, 0u);
  }
  ASSERT_FALSE(report->series.empty());
  EXPECT_EQ(report->series.back().at, result->elapsed);
  EXPECT_EQ(report->series.back().coverage, result->final_coverage);

  remove(journal.c_str());
}

// Same contract on the single-threaded engine (the fuzzer.cc journal path).
TEST(ReportRoundTripTest, SingleEngineJournalReproducesTheLiveResult) {
  ASSERT_TRUE(RegisterAllOses().ok());
  std::string journal = ::testing::TempDir() + "eof_report_roundtrip_single.jsonl";

  FuzzerConfig config;
  config.os_name = "freertos";
  config.seed = 11;
  config.budget = 5 * kVirtualMinute;
  config.sample_points = 10;
  config.metrics_out = journal;
  EofFuzzer fuzzer(config);
  auto result = fuzzer.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto report = LoadReportFromFile(journal);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->warnings.empty());
  EXPECT_EQ(report->workers, 1u);
  EXPECT_EQ(report->final_coverage, result->final_coverage);
  EXPECT_EQ(report->final_execs, result->execs);
  EXPECT_EQ(report->bugs.size(), result->bugs.size());
  ASSERT_EQ(report->boards.size(), 1u);
  EXPECT_EQ(report->boards[0].clock, result->elapsed);

  remove(journal.c_str());
}

}  // namespace
}  // namespace telemetry
}  // namespace eof
