// Agent state-machine tests driven through a raw Board (no fuzzer): pausing at each
// Figure-4 program point, mailbox consumption, rejection reporting, result-reference
// resolution, and the coverage-buffer-full pause.

#include <gtest/gtest.h>

#include "src/agent/agent.h"
#include "src/core/image_builder.h"
#include "src/hw/board_catalog.h"
#include "src/kernel/os.h"
#include "src/os/all_oses.h"

namespace eof {
namespace {

class AgentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }

  void SetUp() override {
    BoardSpec spec = BoardSpecByName("esp32-devkitc").value();
    ImageBuildOptions options;
    options.os_name = "freertos";
    image_ = BuildImage(spec, options).value();
    board_ = std::make_unique<Board>(spec);
    board_->InstallImage(image_);
    for (const Partition& part : image_->partition_table().partitions) {
      auto payload = image_->PayloadOf(part.name);
      if (payload.ok()) {
        ASSERT_TRUE(board_->FlashWrite(part.offset, payload.value()).ok());
      }
    }
    board_->Reset();
    ASSERT_EQ(board_->power_state(), PowerState::kRunning);
    os_ = OsRegistry::Instance().Find("freertos").value().factory();
  }

  uint64_t Addr(const char* symbol) { return image_->symbols().AddressOf(symbol).value(); }

  void WriteMailbox(const WireProgram& program) {
    std::vector<uint8_t> encoded = EncodeProgram(program);
    ASSERT_TRUE(board_->RamWrite(kMailboxOffset + kMailboxDataOffset, encoded).ok());
    ASSERT_TRUE(board_->RamWriteU32(kMailboxOffset + kMailboxLenOffset,
                                    static_cast<uint32_t>(encoded.size())).ok());
    ASSERT_TRUE(board_->RamWriteU32(kMailboxOffset + kMailboxFlagOffset, 1).ok());
  }

  uint32_t StatusField(uint64_t offset) {
    return board_->RamReadU32(kStatusBlockOffset + offset).value();
  }

  std::shared_ptr<FirmwareImage> image_;
  std::unique_ptr<Board> board_;
  std::unique_ptr<Os> os_;
};

TEST_F(AgentTest, PausesAtEveryArmedProgramPoint) {
  for (const char* symbol : {"executor_main", "read_prog", "execute_one"}) {
    ASSERT_TRUE(board_->AddBreakpoint(Addr(symbol)).ok());
  }
  WireProgram program;
  WireCall call;
  call.api_id = os_->registry().FindByName("uxTaskGetNumberOfTasks")->id;
  program.calls.push_back(call);
  WriteMailbox(program);

  // The agent pauses, in order, at each armed point of the Figure-4 loop.
  EXPECT_EQ(board_->Continue().symbol, "executor_main");
  EXPECT_EQ(board_->Continue().symbol, "read_prog");
  EXPECT_EQ(board_->Continue().symbol, "execute_one");
  EXPECT_EQ(board_->Continue().symbol, "executor_main");  // loop closed
  EXPECT_EQ(StatusField(kStatusProgsOffset), 1u);
  EXPECT_EQ(StatusField(kStatusTotalCallsOffset), 1u);
}

TEST_F(AgentTest, ReportsEachDecoderErrorKind) {
  struct Case {
    std::vector<uint8_t> bytes;
    AgentError expected;
  };
  // Craft wire images for each rejection class.
  ByteWriter too_many;
  too_many.PutU32(kWireMagic);
  too_many.PutU16(kWireMaxCalls + 1);
  ByteWriter bad_ref;
  bad_ref.PutU32(kWireMagic);
  bad_ref.PutU16(1);
  bad_ref.PutU32(0);
  bad_ref.PutU8(1);
  bad_ref.PutU8(1);  // kResultRef
  bad_ref.PutU16(0);  // references itself
  const Case cases[] = {
      {{0x00, 0x01, 0x02, 0x03}, AgentError::kBadMagic},
      {too_many.bytes(), AgentError::kTooManyCalls},
      {bad_ref.bytes(), AgentError::kBadResultRef},
  };
  for (const Case& test_case : cases) {
    ASSERT_TRUE(board_->RamWrite(kMailboxOffset + kMailboxDataOffset, test_case.bytes).ok());
    ASSERT_TRUE(board_->RamWriteU32(kMailboxOffset + kMailboxLenOffset,
                                    static_cast<uint32_t>(test_case.bytes.size())).ok());
    ASSERT_TRUE(board_->RamWriteU32(kMailboxOffset + kMailboxFlagOffset, 1).ok());
    StopInfo stop = board_->Continue();
    EXPECT_EQ(stop.reason, HaltReason::kIdle);
    EXPECT_EQ(StatusField(kStatusLastErrorOffset),
              static_cast<uint32_t>(test_case.expected));
  }
  EXPECT_EQ(StatusField(kStatusProgsOffset), 3u);  // rejected programs still count
}

TEST_F(AgentTest, ResultReferencesResolveAcrossCalls) {
  WireProgram program;
  WireCall create;
  create.api_id = os_->registry().FindByName("xQueueCreate")->id;
  create.args = {WireArg::Scalar(4), WireArg::Scalar(8)};
  program.calls.push_back(create);
  WireCall send;
  send.api_id = os_->registry().FindByName("xQueueSend")->id;
  send.args = {WireArg::ResultRef(0), WireArg::Bytes({1, 2}), WireArg::Scalar(0)};
  program.calls.push_back(send);
  WireCall depth;
  depth.api_id = os_->registry().FindByName("uxQueueMessagesWaiting")->id;
  depth.args = {WireArg::ResultRef(0)};
  program.calls.push_back(depth);

  WriteMailbox(program);
  EXPECT_EQ(board_->Continue().reason, HaltReason::kIdle);
  EXPECT_EQ(StatusField(kStatusLastErrorOffset), 0u);
  EXPECT_EQ(StatusField(kStatusTotalCallsOffset), 3u);
  // The send actually landed on the queue the first call created: verified through the
  // coverage ring being non-trivial and no rejection. (State itself is target-internal.)
}

TEST_F(AgentTest, CovBufferFullPausesWhenArmed) {
  ASSERT_TRUE(board_->AddBreakpoint(Addr("_kcmp_buf_full")).ok());
  // Enough chatty calls to overflow the 4096-entry ring? Too slow; instead shrink the
  // observable: the esp32 ring is 4096 entries, so drive ~70 calls x ~60+ edges and check
  // either a pause happened or the ring simply never filled (both acceptable); the strict
  // version runs on the tiny-RAM board below.
  WireProgram program;
  for (int i = 0; i < 40; ++i) {
    WireCall call;
    call.api_id = os_->registry().FindByName("pvPortMalloc")->id;
    call.args = {WireArg::Scalar(32 + static_cast<uint64_t>(i))};
    program.calls.push_back(call);
  }
  WriteMailbox(program);
  StopInfo stop = board_->Continue();
  EXPECT_TRUE(stop.reason == HaltReason::kIdle ||
              (stop.reason == HaltReason::kBreakpoint && stop.symbol == "_kcmp_buf_full"));
}

TEST(AgentTinyRamTest, SmallRingOverflowsAndAgentSelfClears) {
  ASSERT_TRUE(RegisterAllOses().ok());
  // PoKOS on the HiFive1: 16 KiB RAM -> a 192-entry coverage ring.
  BoardSpec spec = BoardSpecByName("hifive1-revb").value();
  ASSERT_EQ(CovRingCapacityFor(spec.ram_bytes), 192u);
  ImageBuildOptions options;
  options.os_name = "pokos";
  auto image = BuildImage(spec, options).value();
  Board board(spec);
  board.InstallImage(image);
  for (const Partition& part : image->partition_table().partitions) {
    auto payload = image->PayloadOf(part.name);
    if (payload.ok()) {
      ASSERT_TRUE(board.FlashWrite(part.offset, payload.value()).ok());
    }
  }
  board.Reset();
  ASSERT_EQ(board.power_state(), PowerState::kRunning);

  auto os = OsRegistry::Instance().Find("pokos").value().factory();
  WireProgram program;
  for (int i = 0; i < 60; ++i) {
    WireCall call;
    call.api_id = os->registry().FindByName("pok_time_get")->id;
    program.calls.push_back(call);
  }
  // No breakpoint at _kcmp_buf_full: the agent must self-clear and keep going; drops are
  // counted in the ring header.
  std::vector<uint8_t> encoded = EncodeProgram(program);
  ASSERT_TRUE(board.RamWrite(kMailboxOffset + kMailboxDataOffset, encoded).ok());
  ASSERT_TRUE(board.RamWriteU32(kMailboxOffset + kMailboxLenOffset,
                                static_cast<uint32_t>(encoded.size())).ok());
  ASSERT_TRUE(board.RamWriteU32(kMailboxOffset + kMailboxFlagOffset, 1).ok());
  StopInfo stop = board.Continue();
  EXPECT_EQ(stop.reason, HaltReason::kIdle);
  CovRingLayout ring;
  ring.ram_offset = kCovRingOffset;
  ring.capacity = 192;
  uint32_t count =
      board.RamReadU32(ring.BankOffset(0) + CovRingLayout::kCountOffset).value();
  EXPECT_LE(count, 192u);
}

TEST(AgentTinyRamTest, BankFlipAbsorbsOverflowUntilBackpressure) {
  ASSERT_TRUE(RegisterAllOses().ok());
  // FreeRTOS on the HiFive1's 192-entry ring: heap walks emit a few coverage events per
  // call, so one max-length program overflows a bank and a second exhausts both.
  BoardSpec spec = BoardSpecByName("hifive1-revb").value();
  ImageBuildOptions options;
  options.os_name = "freertos";
  auto image = BuildImage(spec, options).value();
  Board board(spec);
  board.InstallImage(image);
  for (const Partition& part : image->partition_table().partitions) {
    auto payload = image->PayloadOf(part.name);
    if (payload.ok()) {
      ASSERT_TRUE(board.FlashWrite(part.offset, payload.value()).ok());
    }
  }
  board.Reset();
  ASSERT_EQ(board.power_state(), PowerState::kRunning);

  CovRingLayout ring;
  ring.ram_offset = kCovRingOffset;
  ring.capacity = 192;
  // Grant self-service flips the way Deployment::SetBankFlipMode does: host writes the
  // enable bit into the (freshly zeroed) active_bank word while the target is stopped.
  ASSERT_TRUE(board.RamWriteU32(ring.ram_offset + CovRingLayout::kActiveBankOffset,
                                CovRingLayout::kBankFlipEnableBit).ok());
  ASSERT_TRUE(
      board.AddBreakpoint(image->symbols().AddressOf("_kcmp_buf_full").value()).ok());

  auto os = OsRegistry::Instance().Find("freertos").value().factory();
  WireProgram program;
  for (uint32_t i = 0; i < kWireMaxCalls; ++i) {
    WireCall call;
    call.api_id = os->registry().FindByName("pvPortMalloc")->id;
    call.args = {WireArg::Scalar(32 + i)};
    program.calls.push_back(call);
  }
  std::vector<uint8_t> encoded = EncodeProgram(program);
  auto send = [&] {
    ASSERT_TRUE(board.RamWrite(kMailboxOffset + kMailboxDataOffset, encoded).ok());
    ASSERT_TRUE(board.RamWriteU32(kMailboxOffset + kMailboxLenOffset,
                                  static_cast<uint32_t>(encoded.size())).ok());
    ASSERT_TRUE(board.RamWriteU32(kMailboxOffset + kMailboxFlagOffset, 1).ok());
  };

  // The first program overflows bank 0; the flip absorbs it — NO halt, even though the
  // breakpoint is armed — and the rest of the program appends into bank 1 out to idle.
  send();
  StopInfo stop = board.Continue();
  ASSERT_EQ(stop.reason, HaltReason::kIdle);
  EXPECT_EQ(board.RamReadU32(ring.BankOffset(0) + CovRingLayout::kCountOffset).value(),
            192u);
  // The target toggled only the bank bit; the host-owned enable bit survived the flip.
  EXPECT_EQ(board.RamReadU32(ring.ram_offset + CovRingLayout::kActiveBankOffset).value(),
            CovRingLayout::kBankFlipEnableBit | 1u);

  // A second identical program fills bank 1 with bank 0 still undrained: the agent can
  // no longer flip and must take the backpressure halt, both banks parked full.
  send();
  stop = board.Continue();
  ASSERT_EQ(stop.reason, HaltReason::kBreakpoint);
  EXPECT_EQ(stop.symbol, "_kcmp_buf_full");
  EXPECT_EQ(board.RamReadU32(ring.BankOffset(0) + CovRingLayout::kCountOffset).value(),
            192u);
  EXPECT_EQ(board.RamReadU32(ring.BankOffset(1) + CovRingLayout::kCountOffset).value(),
            192u);

  // Host drains both banks (zeroes the headers) and resumes: the agent passes the pause
  // point and the program runs out to idle without another halt.
  for (uint32_t bank : {0u, 1u}) {
    ASSERT_TRUE(
        board.RamWriteU32(ring.BankOffset(bank) + CovRingLayout::kCountOffset, 0).ok());
    ASSERT_TRUE(
        board.RamWriteU32(ring.BankOffset(bank) + CovRingLayout::kDroppedOffset, 0).ok());
  }
  stop = board.Continue();
  EXPECT_EQ(stop.reason, HaltReason::kIdle);
}

}  // namespace
}  // namespace eof
