// Unit tests for the common substrate: Status/Result, string helpers, RNG statistical
// sanity, byte IO round-trips, hashing stability, and the coverage map.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/byteio.h"
#include "src/common/coverage_map.h"
#include "src/common/coverage_serial.h"
#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/strings.h"
#include "src/common/vclock.h"

namespace eof {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(OkStatus().ok());
  EXPECT_EQ(OkStatus().ToString(), "OK");
  Status timeout = TimeoutError("gdb continue did not ack");
  EXPECT_FALSE(timeout.ok());
  EXPECT_EQ(timeout.code(), ErrorCode::kTimeout);
  EXPECT_EQ(timeout.ToString(), "TIMEOUT: gdb continue did not ack");
}

TEST(StatusTest, ResultValueAndError) {
  Result<int> good = 42;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  EXPECT_TRUE(good.status().ok());

  Result<int> bad = NotFoundError("nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kNotFound);
}

TEST(StatusTest, Macros) {
  auto fails = []() -> Status { return InvalidArgumentError("boom"); };
  auto wrapper = [&]() -> Status {
    RETURN_IF_ERROR(fails());
    return InternalError("unreachable");
  };
  EXPECT_EQ(wrapper().code(), ErrorCode::kInvalidArgument);

  auto produce = []() -> Result<int> { return 7; };
  auto assign = [&]() -> Result<int> {
    ASSIGN_OR_RETURN(int value, produce());
    return value * 2;
  };
  EXPECT_EQ(assign().value(), 14);
}

TEST(StringsTest, FormatSplitStrip) {
  EXPECT_EQ(StrFormat("%s-%d", "x", 5), "x-5");
  EXPECT_EQ(StrSplit("a,b,,c", ',').size(), 3u);
  EXPECT_EQ(StrSplit("a,b,,c", ',', /*keep_empty=*/true).size(), 4u);
  EXPECT_EQ(StripWhitespace("  hi \t"), "hi");
  EXPECT_TRUE(StartsWith("transfer-encoding", "transfer"));
  EXPECT_TRUE(EndsWith("panic_handler", "handler"));
  EXPECT_TRUE(Contains("Guru Meditation Error", "Meditation"));
  EXPECT_EQ(StrJoin({"a", "b"}, "::"), "a::b");
}

TEST(StringsTest, BytesToHex) {
  uint8_t data[] = {0xde, 0xad, 0x01};
  EXPECT_EQ(BytesToHex(data, 3), "dead01");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BelowIsInRangeAndRoughlyUniform) {
  Rng rng(99);
  std::map<uint64_t, int> histogram;
  for (int i = 0; i < 10000; ++i) {
    uint64_t value = rng.Below(10);
    ASSERT_LT(value, 10u);
    ++histogram[value];
  }
  for (const auto& [value, count] : histogram) {
    EXPECT_GT(count, 700) << "bucket " << value;  // ~1000 expected
    EXPECT_LT(count, 1300) << "bucket " << value;
  }
}

TEST(RngTest, BiasedSizeFavorsSmall) {
  Rng rng(3);
  int small = 0;
  for (int i = 0; i < 4000; ++i) {
    if (rng.BiasedSize(1000) < 100) {
      ++small;
    }
  }
  EXPECT_GT(small, 800);  // well above the uniform 10% (= 400)
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(5);
  int picks[3] = {0, 0, 0};
  for (int i = 0; i < 9000; ++i) {
    ++picks[rng.WeightedIndex({1, 1, 7})];
  }
  EXPECT_GT(picks[2], picks[0] * 3);
  EXPECT_GT(picks[2], picks[1] * 3);
}

TEST(ByteIoTest, RoundTrip) {
  ByteWriter writer;
  writer.PutU8(0xab);
  writer.PutU16(0x1234);
  writer.PutU32(0xdeadbeef);
  writer.PutU64(0x0102030405060708ULL);
  writer.PutLengthPrefixed(std::string("hello"));

  ByteReader reader(writer.bytes());
  EXPECT_EQ(reader.GetU8(), 0xab);
  EXPECT_EQ(reader.GetU16(), 0x1234);
  EXPECT_EQ(reader.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(reader.GetU64(), 0x0102030405060708ULL);
  std::vector<uint8_t> blob = reader.GetLengthPrefixed();
  EXPECT_EQ(std::string(blob.begin(), blob.end()), "hello");
  EXPECT_FALSE(reader.failed());
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(ByteIoTest, OverrunSetsFailureFlag) {
  std::vector<uint8_t> two = {1, 2};
  ByteReader reader(two);
  EXPECT_EQ(reader.GetU32(), 0u);
  EXPECT_TRUE(reader.failed());
}

TEST(ByteIoTest, LengthPrefixOverrunRejected) {
  ByteWriter writer;
  writer.PutU32(1000);  // claims 1000 bytes, provides none
  ByteReader reader(writer.bytes());
  EXPECT_TRUE(reader.GetLengthPrefixed().empty());
  EXPECT_TRUE(reader.failed());
}

TEST(HashTest, StableAcrossCalls) {
  EXPECT_EQ(Fnv1a("freertos/queue"), Fnv1a("freertos/queue"));
  EXPECT_NE(Fnv1a("a"), Fnv1a("b"));
  constexpr uint64_t kCompileTime = Fnv1a("compile-time");
  EXPECT_EQ(kCompileTime, Fnv1a("compile-time"));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(CoverageMapTest, AddMergeCount) {
  CoverageMap map;
  EXPECT_TRUE(map.Add(1));
  EXPECT_FALSE(map.Add(1));
  EXPECT_EQ(map.AddBatch({1, 2, 3, 3}), 2u);
  EXPECT_EQ(map.Count(), 3u);

  CoverageMap other;
  other.AddBatch({3, 4});
  EXPECT_EQ(map.Merge(other), 1u);
  EXPECT_EQ(map.Count(), 4u);
}

TEST(CoverageMapTest, ExactCountAgainstReferenceSet) {
  // The bitmap fast path may alias (two edge IDs sharing a low-16-bit slot); the
  // exact table behind it must still report set-accurate membership and counts.
  CoverageMap map;
  std::set<uint64_t> reference;
  Rng rng(0x5eed);
  for (int i = 0; i < 5000; ++i) {
    // A narrow range forces heavy bitmap aliasing and table growth past the
    // initial slot count.
    uint64_t id = rng.Below(1 << 20) * 0x10001ULL;
    EXPECT_EQ(map.Add(id), reference.insert(id).second);
  }
  EXPECT_EQ(map.Count(), reference.size());
  for (uint64_t id : reference) {
    EXPECT_TRUE(map.Contains(id));
  }
  // IDs one off every stored value: aliasing must not fabricate membership.
  for (uint64_t id : reference) {
    if (reference.count(id + 1) == 0) {
      EXPECT_FALSE(map.Contains(id + 1));
    }
  }
}

TEST(CoverageMapTest, IdZeroIsAFirstClassEdge) {
  // Edge ID 0 collides with the open-addressed table's empty-slot marker and needs
  // its dedicated flag: it must count once and survive merge/clear like any other.
  CoverageMap map;
  EXPECT_FALSE(map.Contains(0));
  EXPECT_TRUE(map.Add(0));
  EXPECT_FALSE(map.Add(0));
  EXPECT_TRUE(map.Contains(0));
  EXPECT_EQ(map.Count(), 1u);

  CoverageMap other;
  other.AddBatch({0, 1});
  EXPECT_EQ(map.Merge(other), 1u);
  EXPECT_EQ(map.Count(), 2u);

  map.Clear();
  EXPECT_FALSE(map.Contains(0));
  EXPECT_EQ(map.Count(), 0u);
  EXPECT_TRUE(map.Add(0));
}

TEST(CoverageMapTest, AddBatchFilteredKeepsOrderAndFirstSighting) {
  CoverageMap map;
  map.AddBatch({10, 20});
  std::vector<uint64_t> fresh;
  EXPECT_EQ(map.AddBatchFiltered({30, 10, 40, 30, 20, 50}, &fresh), 3u);
  // Fresh edges come back in drain order, duplicates and already-known IDs removed.
  EXPECT_EQ(fresh, (std::vector<uint64_t>{30, 40, 50}));
  EXPECT_EQ(map.Count(), 5u);
}

TEST(CoverageMapTest, AddBatchAttributedCreditsFirstSightingCall) {
  CoverageMap map;
  map.AddBatch({10});
  std::vector<CovHit> fresh;
  // Edge 30 appears twice with different call indices: attribution must credit the
  // FIRST sighting (call 2), the later one is a duplicate.
  std::vector<CovHit> hits = {{30, 2}, {10, 0}, {40, 5}, {30, 9}, {50, 1}};
  EXPECT_EQ(map.AddBatchAttributed(hits, &fresh), 3u);
  ASSERT_EQ(fresh.size(), 3u);
  EXPECT_EQ(fresh[0], (CovHit{30, 2}));
  EXPECT_EQ(fresh[1], (CovHit{40, 5}));
  EXPECT_EQ(fresh[2], (CovHit{50, 1}));
  EXPECT_EQ(map.Count(), 4u);
  // Null fresh_out is the count-only mode the baselines use.
  EXPECT_EQ(map.AddBatchAttributed({{50, 0}, {60, 0}}, nullptr), 1u);
}

TEST(CoverageMapTest, ForEachVisitsEveryEdgeOnce) {
  CoverageMap map;
  std::vector<uint64_t> ids = {0, 1, 0x10001, 0x20002, 77};
  map.AddBatch(ids);
  std::set<uint64_t> seen;
  map.ForEach([&](uint64_t id) { EXPECT_TRUE(seen.insert(id).second); });
  EXPECT_EQ(seen, std::set<uint64_t>(ids.begin(), ids.end()));
}

TEST(CoverageSerialTest, FullSnapshotRoundTrips) {
  CoverageMap map;
  map.AddBatch({7, 0, 0xdeadbeef, 42, 0xffffffffffffffffULL, 42});
  std::vector<uint8_t> blob = SerializeCoverage(map);
  auto decoded = DecodeCoverage(blob);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, CoverageWireKind::kFull);
  EXPECT_EQ(decoded->ids,
            (std::vector<uint64_t>{0, 7, 42, 0xdeadbeef, 0xffffffffffffffffULL}));

  CoverageMap restored;
  auto merged = MergeSerializedCoverage(blob, &restored);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value(), 5u);
  EXPECT_EQ(restored.Count(), map.Count());
  // Idempotent: replaying the same blob adds nothing.
  EXPECT_EQ(MergeSerializedCoverage(blob, &restored).value(), 0u);
}

TEST(CoverageSerialTest, DiffRoundTripsAndDedups) {
  std::vector<uint8_t> blob =
      SerializeCoverageIds({9, 3, 9, 3, 1000000}, CoverageWireKind::kDiff);
  auto decoded = DecodeCoverage(blob);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->kind, CoverageWireKind::kDiff);
  EXPECT_EQ(decoded->ids, (std::vector<uint64_t>{3, 9, 1000000}));
}

TEST(CoverageSerialTest, EmptyMapRoundTrips) {
  CoverageMap map;
  auto decoded = DecodeCoverage(SerializeCoverage(map));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->ids.empty());
}

TEST(CoverageSerialTest, EncodingIsCanonical) {
  // Two maps with the same edge set serialize to identical bytes regardless of
  // insertion order — the property the orchestrator's dedup relies on.
  CoverageMap a;
  CoverageMap b;
  a.AddBatch({5, 1, 900, 77});
  b.AddBatch({900, 77, 5, 1});
  EXPECT_EQ(SerializeCoverage(a), SerializeCoverage(b));
}

TEST(CoverageSerialTest, MergeIsCommutative) {
  std::vector<uint8_t> left = SerializeCoverageIds({1, 2, 3}, CoverageWireKind::kDiff);
  std::vector<uint8_t> right =
      SerializeCoverageIds({3, 4, 100}, CoverageWireKind::kDiff);
  CoverageMap lr;
  CoverageMap rl;
  ASSERT_TRUE(MergeSerializedCoverage(left, &lr).ok());
  ASSERT_TRUE(MergeSerializedCoverage(right, &lr).ok());
  ASSERT_TRUE(MergeSerializedCoverage(right, &rl).ok());
  ASSERT_TRUE(MergeSerializedCoverage(left, &rl).ok());
  EXPECT_EQ(SerializeCoverage(lr), SerializeCoverage(rl));
  EXPECT_EQ(lr.Count(), 5u);
}

TEST(CoverageSerialTest, RejectsCorruptBlobs) {
  CoverageMap map;
  map.AddBatch({10, 20, 30});
  std::vector<uint8_t> blob = SerializeCoverage(map);

  std::vector<uint8_t> bad_magic = blob;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(DecodeCoverage(bad_magic).ok());

  std::vector<uint8_t> truncated(blob.begin(), blob.end() - 1);
  EXPECT_FALSE(DecodeCoverage(truncated).ok());

  EXPECT_FALSE(DecodeCoverage({}).ok());

  // A failed merge must not half-apply: the target map stays unchanged.
  CoverageMap target;
  target.Add(1);
  EXPECT_FALSE(MergeSerializedCoverage(truncated, &target).ok());
  EXPECT_EQ(target.Count(), 1u);
}

TEST(VClockTest, AdvanceAndUnits) {
  VirtualClock clock;
  clock.Advance(2 * kVirtualHour + kVirtualMinute);
  EXPECT_EQ(clock.Now(), 121 * kVirtualMinute);
}

}  // namespace
}  // namespace eof
