// Fidelity tests of the emit→parse→compile round trip at the argument level: ranges,
// flag sets (including extended-tier values), string sets, buffer bounds, resource
// optionality, and tier attributes must survive the trip bit-exact.

#include <gtest/gtest.h>

#include "src/kernel/os.h"
#include "src/os/all_oses.h"
#include "src/spec/emitter.h"
#include "src/spec/parser.h"
#include "src/spec/spec_miner.h"

namespace eof {
namespace spec {
namespace {

class EmitterFidelity : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }
};

TEST_P(EmitterFidelity, ArgumentModelSurvivesRoundTrip) {
  auto os = OsRegistry::Instance().Find(GetParam()).value().factory();
  const ApiRegistry& registry = os->registry();
  auto mined = MineValidatedSpecs(registry);
  ASSERT_TRUE(mined.ok());
  const CompiledSpecs& specs = mined.value().specs;

  for (const ApiSpec& api : registry.all()) {
    const CompiledCall* compiled = specs.FindByName(api.name);
    ASSERT_NE(compiled, nullptr) << api.name;
    EXPECT_EQ(compiled->api_id, api.id);
    EXPECT_EQ(compiled->produces, api.produces) << api.name;
    EXPECT_EQ(compiled->is_pseudo, api.is_pseudo) << api.name;
    EXPECT_EQ(compiled->extended, api.extended_spec) << api.name;
    ASSERT_EQ(compiled->args.size(), api.args.size()) << api.name;
    for (size_t i = 0; i < api.args.size(); ++i) {
      const ArgSpec& original = api.args[i];
      const ArgSpec& round = compiled->args[i];
      SCOPED_TRACE(api.name + "/" + original.name);
      EXPECT_EQ(round.kind, original.kind);
      switch (original.kind) {
        case ArgKind::kScalar: {
          uint64_t cap = original.bits >= 64 ? UINT64_MAX : (1ULL << original.bits) - 1;
          EXPECT_EQ(round.min, original.min);
          EXPECT_EQ(round.max, std::min(original.max, cap));
          break;
        }
        case ArgKind::kFlags:
          EXPECT_EQ(round.flag_values, original.flag_values);
          EXPECT_EQ(round.extended_flag_values, original.extended_flag_values);
          break;
        case ArgKind::kResource:
          EXPECT_EQ(round.resource_kind, original.resource_kind);
          EXPECT_EQ(round.optional_null, original.optional_null);
          break;
        case ArgKind::kBuffer:
          EXPECT_EQ(round.buf_min, original.buf_min);
          EXPECT_EQ(round.buf_max, original.buf_max);
          break;
        case ArgKind::kString:
          EXPECT_EQ(round.string_set, original.string_set);
          break;
        case ArgKind::kLen:
          EXPECT_EQ(round.len_of, original.len_of);
          break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOses, EmitterFidelity,
                         ::testing::Values("freertos", "rtthread", "nuttx", "zephyr",
                                           "pokos"));

TEST(EmitterFidelityExtras, ExtendedFlagValuesEmitNamedSets) {
  ASSERT_TRUE(RegisterAllOses().ok());
  auto os = OsRegistry::Instance().Find("nuttx").value().factory();
  std::string source = EmitSyzlang(os->registry());
  // clock_getres carries header-only ids 6/7 in the extended tier.
  EXPECT_NE(source.find("clock_getres_clockid_flags ="), std::string::npos) << source;
  EXPECT_NE(source.find("extended:"), std::string::npos);

  EmitOptions base_only;
  base_only.include_extended = false;
  std::string base = EmitSyzlang(os->registry(), base_only);
  auto parsed = ParseSpec(base);
  ASSERT_TRUE(parsed.ok());
  for (const auto& [name, decl] : parsed.value().flag_sets) {
    EXPECT_TRUE(decl.extended_values.empty())
        << name << " leaked extended values into the base tier";
  }
}

}  // namespace
}  // namespace spec
}  // namespace eof
