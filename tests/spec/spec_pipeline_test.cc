// Tests of the Syzlang pipeline: lexing, parsing, emission round-trips, post-validation,
// and the miner's noise-repair loop.

#include <gtest/gtest.h>

#include "src/kernel/os.h"
#include "src/os/all_oses.h"
#include "src/spec/emitter.h"
#include "src/spec/lexer.h"
#include "src/spec/parser.h"
#include "src/spec/spec_miner.h"

namespace eof {
namespace spec {
namespace {

TEST(LexerTest, TokenizesDeclaration) {
  auto tokens = Tokenize("resource task[int32]\nfoo(a int32[0:5]) task # comment\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].text, "resource");
  bool found_five = false;
  for (const Token& token : tokens.value()) {
    if (token.kind == TokenKind::kNumber && token.number == 5) {
      found_five = true;
    }
  }
  EXPECT_TRUE(found_five);
  EXPECT_EQ(tokens.value().back().kind, TokenKind::kEnd);
}

TEST(LexerTest, HexNumbersAndStrings) {
  auto tokens = Tokenize("f = 0x40, 2\ng(n string[\"uart0\", \"pin\"])\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[2].number, 0x40u);
  bool found = false;
  for (const Token& token : tokens.value()) {
    if (token.kind == TokenKind::kString && token.text == "uart0") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, RejectsUnterminatedString) {
  EXPECT_FALSE(Tokenize("g(n string[\"oops)\n").ok());
}

TEST(ParserTest, ParsesFullFile) {
  const char* source = R"(
# a queue API
resource q[int32]
opts = 0, 1, 2 extended: 7
make_q(len int32[1:64]) q
send(dst q, data buffer[0:128], n len[data], mode flags[opts])
del(dst q[opt]) (extended)
pipeline(w int32[0:8]) (pseudo, extended)
)";
  auto parsed = ParseSpec(source);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const SpecFile& file = parsed.value();
  EXPECT_EQ(file.resources.count("q"), 1u);
  ASSERT_EQ(file.calls.size(), 4u);
  EXPECT_EQ(file.calls[1].args.size(), 4u);
  EXPECT_EQ(file.calls[1].args[2].type.kind, TypeKind::kLen);
  EXPECT_EQ(file.calls[1].args[2].type.len_target, "data");
  EXPECT_TRUE(file.calls[2].extended);
  EXPECT_TRUE(file.calls[3].pseudo);
  EXPECT_EQ(file.flag_sets.at("opts").extended_values.size(), 1u);
}

TEST(ParserTest, RejectsMalformedRange) {
  EXPECT_FALSE(ParseSpec("f(a int32[0:])\n").ok());
  EXPECT_FALSE(ParseSpec("f(a int32[0 5])\n").ok());
  EXPECT_FALSE(ParseSpec("resource r\n").ok());
}

class RegistryRoundTrip : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }
};

TEST_P(RegistryRoundTrip, EmitParseCompile) {
  auto info = OsRegistry::Instance().Find(GetParam());
  ASSERT_TRUE(info.ok());
  std::unique_ptr<Os> os = info.value().factory();
  std::string source = EmitSyzlang(os->registry());
  auto parsed = ParseSpec(source);
  ASSERT_TRUE(parsed.ok()) << GetParam() << ": " << parsed.status().ToString() << "\n"
                           << source;
  std::vector<std::string> rejected;
  auto compiled = CompileSpec(parsed.value(), os->registry(), &rejected);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  // Every registered API must survive the round trip.
  EXPECT_EQ(compiled.value().calls.size(), os->registry().size())
      << "rejected: " << (rejected.empty() ? "" : rejected[0]);
}

TEST_P(RegistryRoundTrip, BaseTierExcludesExtended) {
  auto info = OsRegistry::Instance().Find(GetParam());
  ASSERT_TRUE(info.ok());
  std::unique_ptr<Os> os = info.value().factory();
  EmitOptions options;
  options.include_extended = false;
  std::string source = EmitSyzlang(os->registry(), options);
  auto parsed = ParseSpec(source);
  ASSERT_TRUE(parsed.ok());
  size_t extended = 0;
  for (const ApiSpec& api : os->registry().all()) {
    if (api.extended_spec) {
      ++extended;
    }
  }
  EXPECT_EQ(parsed.value().calls.size(), os->registry().size() - extended);
}

INSTANTIATE_TEST_SUITE_P(AllOses, RegistryRoundTrip,
                         ::testing::Values("freertos", "rtthread", "nuttx", "zephyr",
                                           "pokos"));

TEST(SpecMinerTest, NoisyOutputIsRepairedAndValidated) {
  ASSERT_TRUE(RegisterAllOses().ok());
  auto info = OsRegistry::Instance().Find("rtthread");
  ASSERT_TRUE(info.ok());
  std::unique_ptr<Os> os = info.value().factory();
  MinerOptions options;
  options.noise_per_mille = 150;  // heavy corruption
  options.seed = 7;
  auto mined = MineValidatedSpecs(os->registry(), options);
  ASSERT_TRUE(mined.ok()) << mined.status().ToString();
  // Something was admitted, something was rejected, and nothing invalid slipped through.
  EXPECT_GT(mined.value().specs.calls.size(), 0u);
  EXPECT_GT(mined.value().rejected.size() + static_cast<size_t>(mined.value().repair_rounds),
            0u);
  for (const CompiledCall& call : mined.value().specs.calls) {
    EXPECT_NE(os->registry().FindByName(call.name), nullptr);
  }
}

TEST(SpecMinerTest, CleanMiningAdmitsEverything) {
  ASSERT_TRUE(RegisterAllOses().ok());
  auto info = OsRegistry::Instance().Find("zephyr");
  ASSERT_TRUE(info.ok());
  std::unique_ptr<Os> os = info.value().factory();
  auto mined = MineValidatedSpecs(os->registry());
  ASSERT_TRUE(mined.ok());
  EXPECT_EQ(mined.value().specs.calls.size(), os->registry().size());
  EXPECT_EQ(mined.value().repair_rounds, 0);
}

}  // namespace
}  // namespace spec
}  // namespace eof
