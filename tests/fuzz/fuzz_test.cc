// Unit + property tests for the fuzzing engine: wire round-trips, generator invariants
// (refs always valid, constraints honoured, option fences), mutation invariants across
// sweeps, corpus scheduling, and the byte mutator.

#include <gtest/gtest.h>

#include "src/agent/wire.h"
#include "src/fuzz/byte_mutator.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/trimmer.h"
#include "src/kernel/os.h"
#include "src/os/all_oses.h"
#include "src/spec/spec_miner.h"

namespace eof {
namespace fuzz {
namespace {

const spec::CompiledSpecs& SpecsFor(const std::string& os_name) {
  static auto* cache = new std::map<std::string, spec::CompiledSpecs>();
  auto it = cache->find(os_name);
  if (it == cache->end()) {
    (void)RegisterAllOses();
    auto os = OsRegistry::Instance().Find(os_name).value().factory();
    auto mined = spec::MineValidatedSpecs(os->registry());
    it = cache->emplace(os_name, std::move(mined.value().specs)).first;
  }
  return it->second;
}

TEST(WireTest, RoundTrip) {
  WireProgram program;
  WireCall call;
  call.api_id = 3;
  call.args = {WireArg::Scalar(0xdeadbeefcafef00dULL), WireArg::Bytes({1, 2, 3})};
  program.calls.push_back(call);
  WireCall second;
  second.api_id = 9;
  second.args = {WireArg::ResultRef(0)};
  program.calls.push_back(second);

  std::vector<uint8_t> encoded = EncodeProgram(program);
  WireProgram decoded;
  ASSERT_EQ(DecodeProgram(encoded.data(), encoded.size(), &decoded), AgentError::kNone);
  ASSERT_EQ(decoded.calls.size(), 2u);
  EXPECT_EQ(decoded.calls[0].args[0].scalar, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(decoded.calls[1].args[0].kind, WireArgKind::kResultRef);
}

TEST(WireTest, RejectsForwardResultRefs) {
  WireProgram program;
  WireCall call;
  call.api_id = 1;
  call.args = {WireArg::ResultRef(0)};  // references itself
  program.calls.push_back(call);
  std::vector<uint8_t> encoded = EncodeProgram(program);
  WireProgram decoded;
  EXPECT_EQ(DecodeProgram(encoded.data(), encoded.size(), &decoded),
            AgentError::kBadResultRef);
}

TEST(WireTest, RejectsBadMagicAndTruncation) {
  WireProgram decoded;
  std::vector<uint8_t> junk = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(DecodeProgram(junk.data(), junk.size(), &decoded), AgentError::kBadMagic);

  WireProgram program;
  WireCall call;
  call.api_id = 1;
  call.args = {WireArg::Bytes({1, 2, 3, 4})};
  program.calls.push_back(call);
  std::vector<uint8_t> encoded = EncodeProgram(program);
  for (size_t cut = 5; cut < encoded.size(); cut += 3) {
    AgentError error = DecodeProgram(encoded.data(), cut, &decoded);
    EXPECT_NE(error, AgentError::kNone) << "truncation at " << cut << " accepted";
  }
}

// Property sweep: every generated and mutated program keeps refs valid and arity right.
class GeneratorProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratorProperty, GeneratedProgramsAreWellFormed) {
  const spec::CompiledSpecs& specs = SpecsFor(GetParam());
  Generator generator(specs, GeneratorOptions{}, 1234);
  for (int i = 0; i < 300; ++i) {
    Program program = generator.Generate();
    ASSERT_FALSE(program.calls.empty());
    ASSERT_TRUE(program.RefsValid()) << program.Format(specs);
    for (const ProgCall& call : program.calls) {
      ASSERT_LT(call.spec_index, specs.calls.size());
      ASSERT_EQ(call.args.size(), specs.calls[call.spec_index].args.size());
    }
  }
}

TEST_P(GeneratorProperty, MutationPreservesInvariants) {
  const spec::CompiledSpecs& specs = SpecsFor(GetParam());
  Generator generator(specs, GeneratorOptions{}, 99);
  Program seed = generator.Generate();
  for (int i = 0; i < 400; ++i) {
    Program mutated = generator.Mutate(seed);
    ASSERT_TRUE(mutated.RefsValid()) << mutated.Format(specs);
    ASSERT_FALSE(mutated.calls.empty());
    for (const ProgCall& call : mutated.calls) {
      ASSERT_EQ(call.args.size(), specs.calls[call.spec_index].args.size());
    }
    if (i % 10 == 0) {
      seed = mutated;  // walk the mutation chain
    }
  }
}

TEST_P(GeneratorProperty, SpliceKeepsRefsValid) {
  const spec::CompiledSpecs& specs = SpecsFor(GetParam());
  Generator generator(specs, GeneratorOptions{}, 77);
  for (int i = 0; i < 200; ++i) {
    Program a = generator.Generate();
    Program b = generator.Generate();
    Program spliced = generator.Splice(a, b);
    ASSERT_TRUE(spliced.RefsValid()) << spliced.Format(specs);
  }
}

INSTANTIATE_TEST_SUITE_P(AllOses, GeneratorProperty,
                         ::testing::Values("freertos", "rtthread", "nuttx", "zephyr",
                                           "pokos"));

TEST(GeneratorOptionsTest, SubsystemFenceHolds) {
  const spec::CompiledSpecs& specs = SpecsFor("freertos");
  GeneratorOptions options;
  options.allowed_subsystems = {"json"};
  Generator generator(specs, options, 5);
  for (int i = 0; i < 100; ++i) {
    Program program = generator.Generate();
    for (const ProgCall& call : program.calls) {
      EXPECT_EQ(specs.calls[call.spec_index].subsystem, "json");
    }
  }
}

TEST(GeneratorOptionsTest, BaseTierExcludesExtendedCalls) {
  const spec::CompiledSpecs& specs = SpecsFor("rtthread");
  GeneratorOptions options;
  options.use_extended = false;
  Generator generator(specs, options, 5);
  for (int i = 0; i < 100; ++i) {
    Program program = generator.Generate();
    for (const ProgCall& call : program.calls) {
      const spec::CompiledCall& decl = specs.calls[call.spec_index];
      EXPECT_FALSE(decl.extended || decl.is_pseudo) << decl.name;
    }
  }
}

TEST(GeneratorOptionsTest, BufferCapRespected) {
  const spec::CompiledSpecs& specs = SpecsFor("freertos");
  GeneratorOptions options;
  options.max_buffer_len = 48;
  options.wild_scalar_per_mille = 0;
  Generator generator(specs, options, 5);
  for (int i = 0; i < 200; ++i) {
    Program program = generator.Generate();
    for (const ProgCall& call : program.calls) {
      const spec::CompiledCall& decl = specs.calls[call.spec_index];
      for (size_t a = 0; a < call.args.size(); ++a) {
        if (decl.args[a].kind == ArgKind::kBuffer) {
          EXPECT_LE(call.args[a].bytes.size(), 48u);
        }
      }
    }
  }
}

TEST(GeneratorFocusTest, FocusBoostSkewsSelectionAndClears) {
  const spec::CompiledSpecs& specs = SpecsFor("freertos");
  GeneratorOptions options;
  options.max_calls = 1;
  Generator generator(specs, options, 42);
  ASSERT_GE(generator.eligible().size(), 2u);
  size_t focused = generator.eligible()[0];

  // Only the final call of a max_calls=1 program is the weighted pick; earlier
  // calls are producers EmitCall prepended, which the focus boost does not touch.
  auto count_focused = [&](int rounds) {
    int hits = 0;
    for (int i = 0; i < rounds; ++i) {
      Program program = generator.Generate();
      if (!program.calls.empty() && program.calls.back().spec_index == focused) {
        ++hits;
      }
    }
    return hits;
  };

  int baseline = count_focused(400);
  generator.SetFocus({focused});
  int boosted = count_focused(400);
  // kFocusBoost is 6x the base weight: the focused call must come up far more often.
  EXPECT_GT(boosted, baseline * 2);
  // Unknown indices are ignored, an empty focus clears the boost entirely.
  generator.SetFocus({SIZE_MAX});
  generator.SetFocus({});
  int cleared = count_focused(400);
  EXPECT_LT(cleared, boosted / 2);
}

// A program shaped like: c0 produces, c1 noise, c2 consumes c0, c3 noise, c4
// consumes c2. Owner call 4 must pull in its full producer chain {0, 2, 4}.
Program ChainProgram() {
  Program program;
  for (int i = 0; i < 5; ++i) {
    ProgCall call;
    call.spec_index = static_cast<size_t>(i);
    if (i == 2) {
      call.args = {ProgArg::Result(0), ProgArg::Scalar(7)};
    } else if (i == 4) {
      call.args = {ProgArg::Result(2)};
    } else {
      call.args = {ProgArg::Scalar(static_cast<uint64_t>(i))};
    }
    program.calls.push_back(call);
  }
  return program;
}

TEST(TrimmerTest, KeepsOwnersAndTransitiveProducers) {
  Program program = ChainProgram();
  TrimStats stats;
  Program trimmed = TrimToCalls(program, {4}, &stats);
  ASSERT_EQ(trimmed.calls.size(), 3u);
  EXPECT_EQ(stats.kept_calls, 3u);
  EXPECT_EQ(stats.removed_calls, 2u);
  // Surviving calls in original order: 0, 2, 4 with refs remapped to 0, 1.
  EXPECT_EQ(trimmed.calls[0].spec_index, 0u);
  EXPECT_EQ(trimmed.calls[1].spec_index, 2u);
  EXPECT_EQ(trimmed.calls[2].spec_index, 4u);
  EXPECT_EQ(trimmed.calls[1].args[0].ref, 0);
  EXPECT_EQ(trimmed.calls[2].args[0].ref, 1);
  EXPECT_TRUE(trimmed.RefsValid());
}

TEST(TrimmerTest, EmptyOrOutOfRangeKeepSetReturnsProgramUnchanged) {
  Program program = ChainProgram();
  TrimStats stats;
  // A trim that keeps nothing explains nothing: hand the program back whole.
  Program trimmed = TrimToCalls(program, {}, &stats);
  EXPECT_EQ(trimmed.calls.size(), program.calls.size());
  EXPECT_EQ(stats.kept_calls, 5u);
  EXPECT_EQ(stats.removed_calls, 0u);
  // Out-of-range owners (a scribbled call index from the target) are ignored.
  trimmed = TrimToCalls(program, {99}, &stats);
  EXPECT_EQ(trimmed.calls.size(), program.calls.size());
  EXPECT_EQ(stats.removed_calls, 0u);
}

TEST(TrimmerTest, MiddleOwnerDropsUnreferencedTail) {
  Program program = ChainProgram();
  TrimStats stats;
  Program trimmed = TrimToCalls(program, {2, 2}, &stats);  // duplicate owners fold
  ASSERT_EQ(trimmed.calls.size(), 2u);
  EXPECT_EQ(trimmed.calls[0].spec_index, 0u);
  EXPECT_EQ(trimmed.calls[1].spec_index, 2u);
  EXPECT_EQ(trimmed.calls[1].args[0].ref, 0);
  EXPECT_EQ(stats.removed_calls, 3u);
  EXPECT_TRUE(trimmed.RefsValid());
}

TEST(CorpusTest, DedupAndScheduling) {
  Corpus corpus;
  Program program;
  program.calls.push_back(ProgCall{0, {ProgArg::Scalar(1)}});
  EXPECT_TRUE(corpus.Add(program, 5));
  EXPECT_FALSE(corpus.Add(program, 5));  // duplicate hash
  EXPECT_TRUE(corpus.Seen(program));

  Program other;
  other.calls.push_back(ProgCall{0, {ProgArg::Scalar(2)}});
  EXPECT_TRUE(corpus.Add(other, 50));

  Rng rng(1);
  int picked_high = 0;
  for (int i = 0; i < 2000; ++i) {
    const Program* seed = corpus.PickSeed(rng);
    ASSERT_NE(seed, nullptr);
    if (seed->calls[0].args[0].scalar == 2) {
      ++picked_high;
    }
  }
  EXPECT_GT(picked_high, 1000);  // higher-value seed scheduled more
}

TEST(CorpusTest, TrimKeepsHighValueEntries) {
  Corpus corpus(30);
  for (uint64_t i = 0; i < 60; ++i) {
    Program program;
    program.calls.push_back(ProgCall{0, {ProgArg::Scalar(i)}});
    corpus.Add(std::move(program), i);  // later entries more valuable
  }
  EXPECT_LE(corpus.size(), 30u);
  uint64_t high_value = 0;
  for (const CorpusEntry& entry : corpus.entries()) {
    if (entry.new_edges >= 30) {
      ++high_value;
    }
  }
  EXPECT_GT(high_value, corpus.size() / 2);
}

TEST(ByteMutatorTest, BoundsAndVariety) {
  ByteMutator mutator(64);
  Rng rng(42);
  std::vector<uint8_t> seed = {1, 2, 3, 4, 5, 6, 7, 8};
  int changed = 0;
  for (int i = 0; i < 300; ++i) {
    std::vector<uint8_t> mutated = mutator.Mutate(seed, rng);
    ASSERT_LE(mutated.size(), 64u);
    if (mutated != seed) {
      ++changed;
    }
  }
  EXPECT_GT(changed, 250);
  std::vector<uint8_t> spliced = mutator.Splice(seed, {9, 9, 9, 9}, rng);
  EXPECT_LE(spliced.size(), 64u);
}

TEST(ProgramTest, HashSensitivity) {
  Program a;
  a.calls.push_back(ProgCall{1, {ProgArg::Scalar(5)}});
  Program b = a;
  EXPECT_EQ(a.Hash(), b.Hash());
  b.calls[0].args[0].scalar = 6;
  EXPECT_NE(a.Hash(), b.Hash());
  b = a;
  b.calls[0].args[0] = ProgArg::Result(0);
  EXPECT_NE(a.Hash(), b.Hash());
}

}  // namespace
}  // namespace fuzz
}  // namespace eof
