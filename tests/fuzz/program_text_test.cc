// Tests of the reproducer text format: serialize→parse round-trips (property sweep over
// generated programs), malformed-input rejection, and end-to-end replay of a catalog bug
// from its text form.

#include <gtest/gtest.h>

#include "src/core/replay.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/generator.h"
#include "src/fuzz/program_text.h"
#include "src/kernel/os.h"
#include "src/os/all_oses.h"
#include "src/spec/spec_miner.h"

namespace eof {
namespace fuzz {
namespace {

const spec::CompiledSpecs& Specs(const std::string& os_name) {
  static auto* cache = new std::map<std::string, spec::CompiledSpecs>();
  auto it = cache->find(os_name);
  if (it == cache->end()) {
    (void)RegisterAllOses();
    auto os = OsRegistry::Instance().Find(os_name).value().factory();
    it = cache->emplace(os_name,
                        std::move(spec::MineValidatedSpecs(os->registry()).value().specs))
             .first;
  }
  return it->second;
}

TEST(ProgramTextTest, RoundTripPropertySweep) {
  for (const char* os : {"freertos", "rtthread", "nuttx"}) {
    const spec::CompiledSpecs& specs = Specs(os);
    Generator generator(specs, GeneratorOptions{}, 314);
    for (int i = 0; i < 200; ++i) {
      Program program = generator.Generate();
      std::string text = SerializeProgramText(specs, program);
      auto parsed = ParseProgramText(specs, text);
      ASSERT_TRUE(parsed.ok()) << os << ": " << parsed.status().ToString() << "\n" << text;
      EXPECT_EQ(parsed.value().Hash(), program.Hash()) << text;
    }
  }
}

TEST(ProgramTextTest, ParsesCommentsAndWhitespace) {
  const spec::CompiledSpecs& specs = Specs("freertos");
  const char* text = R"(
# a queue round trip
r0 = xQueueCreate(0x4, 0x8)
  r1 = xQueueSend(r0, `6869`, 0x0)
r2 = uxQueueMessagesWaiting(r0)
)";
  auto parsed = ParseProgramText(specs, text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().calls.size(), 3u);
  EXPECT_EQ(parsed.value().calls[1].args[1].bytes,
            (std::vector<uint8_t>{'h', 'i'}));
  EXPECT_TRUE(parsed.value().RefsValid());
}

TEST(ProgramTextTest, RejectsMalformedInputs) {
  const spec::CompiledSpecs& specs = Specs("freertos");
  const char* bad[] = {
      "",                                        // empty
      "r0 = notAnApi(0x1)",                      // unknown API
      "r0 = xQueueCreate(0x4)",                  // arity
      "r0 = xQueueSend(r5, `00`, 0x0)",          // forward ref
      "r0 = xQueueCreate(0x4, 0x8",              // missing paren
      "r0 = xQueueSend(r0, `0`, 0x0)",           // odd hex length (also self-ref)
      "r0 = xQueueSend(r0, `zz`, 0x0)",          // bad hex
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParseProgramText(specs, text).ok()) << text;
  }
}

TEST(ProgramTextTest, ReplayReproducesCatalogBug) {
  (void)RegisterAllOses();
  // Bug #4 (zephyr k_heap_init with a tiny region), as a reproducer file's contents.
  auto outcome = ReplayReproducer("zephyr", "r0 = k_heap_init(0x4)\n");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome.value().crashed);
  EXPECT_EQ(outcome.value().catalog_id, 4);
  EXPECT_EQ(outcome.value().detector, "exception");

  // A benign program replays clean.
  auto benign = ReplayReproducer("zephyr", "r0 = k_heap_init(0x400)\n");
  ASSERT_TRUE(benign.ok());
  EXPECT_FALSE(benign.value().crashed);
}

TEST(ProgramTextTest, CorpusCheckpointRoundTrip) {
  const spec::CompiledSpecs& specs = Specs("rtthread");
  Generator generator(specs, GeneratorOptions{}, 2718);
  Corpus original;
  for (int i = 0; i < 40; ++i) {
    original.Add(generator.Generate(), static_cast<uint64_t>(i % 7) + 1);
  }
  std::string checkpoint = original.SaveText(specs);

  Corpus restored;
  auto admitted = restored.LoadText(specs, checkpoint);
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(admitted.value(), original.size());
  EXPECT_EQ(restored.size(), original.size());
  // Entry programs and their discovery value survive.
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored.entries()[i].program.Hash(), original.entries()[i].program.Hash());
    EXPECT_EQ(restored.entries()[i].new_edges, original.entries()[i].new_edges);
  }
  // Loading the same checkpoint again admits nothing (dedup holds).
  EXPECT_EQ(restored.LoadText(specs, checkpoint).value(), 0u);
}

TEST(ProgramTextTest, CorpusLoadSkipsStaleEntries) {
  const spec::CompiledSpecs& specs = Specs("rtthread");
  Corpus corpus;
  std::string checkpoint =
      "# new_edges=3\nr0 = rt_sem_create(`73656d30`, 0x1)\n\n"
      "# from an older build\nr0 = rt_api_gone(0x1)\n\n";
  auto admitted = corpus.LoadText(specs, checkpoint);
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(admitted.value(), 1u);  // the stale entry is dropped, the live one admitted
  EXPECT_EQ(corpus.entries()[0].new_edges, 3u);
}

TEST(ProgramTextTest, ReplayCatchesAssertionViaLogMonitor) {
  (void)RegisterAllOses();
  auto outcome = ReplayReproducer("rtthread", "r0 = rt_object_get_type(0x0)\n");
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_TRUE(outcome.value().crashed);
  EXPECT_EQ(outcome.value().catalog_id, 5);
  EXPECT_EQ(outcome.value().detector, "log");
}

}  // namespace
}  // namespace fuzz
}  // namespace eof
