// Corpus checkpointing and concurrency: SaveText/LoadText round-trips preserve the
// corpus, and the thread-safe access path (Add / PickSeedCopy / Seen from many
// threads) holds its invariants — run under -fsanitize=thread in CI to catch races.

#include "src/fuzz/corpus.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "src/fuzz/generator.h"
#include "src/fuzz/program_text.h"
#include "src/kernel/os.h"
#include "src/os/all_oses.h"
#include "src/spec/spec_miner.h"

namespace eof {
namespace fuzz {
namespace {

const spec::CompiledSpecs& Specs() {
  static const spec::CompiledSpecs* specs = [] {
    (void)RegisterAllOses();
    auto os = OsRegistry::Instance().Find("freertos").value().factory();
    auto mined = spec::MineValidatedSpecs(os->registry());
    return new spec::CompiledSpecs(std::move(mined.value().specs));
  }();
  return *specs;
}

TEST(CorpusCheckpointTest, SaveLoadRoundTripPreservesEntryCountAndTexts) {
  Generator generator(Specs(), GeneratorOptions{}, 7);
  Corpus original;
  for (int i = 0; i < 24; ++i) {
    original.Add(generator.Generate(), static_cast<uint64_t>(i % 5 + 1));
  }
  ASSERT_GT(original.size(), 0u);

  std::string text = original.SaveText(Specs());

  Corpus restored;
  auto admitted = restored.LoadText(Specs(), text);
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  EXPECT_EQ(admitted.value(), original.size());
  EXPECT_EQ(restored.size(), original.size());

  // Same programs, same order, same recorded discovery value.
  for (size_t i = 0; i < original.entries().size(); ++i) {
    EXPECT_EQ(SerializeProgramText(Specs(), restored.entries()[i].program),
              SerializeProgramText(Specs(), original.entries()[i].program))
        << "entry " << i;
    EXPECT_EQ(restored.entries()[i].new_edges, original.entries()[i].new_edges);
  }

  // A second save of the restored corpus is byte-identical (stable fixed point).
  EXPECT_EQ(restored.SaveText(Specs()), text);
}

TEST(CorpusCheckpointTest, LoadSkipsGarbageBlocksKeepsValidOnes) {
  Generator generator(Specs(), GeneratorOptions{}, 9);
  Corpus original;
  for (int i = 0; i < 4; ++i) {
    original.Add(generator.Generate(), 1);
  }
  std::string text = original.SaveText(Specs());
  text += "\nthis_is_not_an_api(1, 2, 3)\n\n";

  Corpus restored;
  auto admitted = restored.LoadText(Specs(), text);
  ASSERT_TRUE(admitted.ok());
  EXPECT_EQ(admitted.value(), original.size());
}

TEST(CorpusConcurrencyTest, ParallelAddPickSeenKeepsInvariants) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  constexpr size_t kMaxEntries = 256;

  Corpus corpus(kMaxEntries);
  std::atomic<uint64_t> added{0};
  std::atomic<uint64_t> picked{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Per-thread generator and RNG: only the corpus itself is shared.
      Generator generator(Specs(), GeneratorOptions{}, 1000 + static_cast<uint64_t>(t));
      Rng rng(2000 + static_cast<uint64_t>(t));
      Program scratch;
      for (int i = 0; i < kOpsPerThread; ++i) {
        switch (i % 4) {
          case 0:
          case 1: {
            Program program = generator.Generate();
            if (corpus.Add(std::move(program), rng.Range(1, 16))) {
              added.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          case 2:
            if (corpus.PickSeedCopy(rng, &scratch)) {
              picked.fetch_add(1, std::memory_order_relaxed);
              EXPECT_FALSE(scratch.calls.empty());
            }
            break;
          default:
            (void)corpus.Seen(generator.Generate());
            break;
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  EXPECT_GT(added.load(), 0u);
  EXPECT_GT(picked.load(), 0u);
  EXPECT_LE(corpus.size(), kMaxEntries);
  EXPECT_GT(corpus.size(), 0u);
  // Post-condition sanity on the (now quiescent) store: sequence numbers unique.
  std::set<uint64_t> seqs;
  for (const CorpusEntry& entry : corpus.entries()) {
    EXPECT_TRUE(seqs.insert(entry.added_seq).second);
  }
}

}  // namespace
}  // namespace fuzz
}  // namespace eof
