// Unit tests for the kernel framework: handle table semantics (including staleness),
// API registry validation/dispatch, kernel-context coverage plumbing (ring writes,
// overflow, module filtering, bucket identity), and fault signal behaviour.

#include <gtest/gtest.h>

#include "src/hw/board.h"
#include "src/hw/board_catalog.h"
#include "src/kernel/api.h"
#include "src/kernel/coverage.h"
#include "src/kernel/handle_table.h"
#include "src/kernel/kernel_context.h"
#include "src/kernel/kernel_fault.h"

namespace eof {
namespace {

TEST(HandleTableTest, InsertFindRemove) {
  HandleTable<int> table(4);
  int64_t a = table.Insert(10);
  int64_t b = table.Insert(20);
  ASSERT_NE(a, 0);
  ASSERT_NE(b, 0);
  EXPECT_EQ(*table.Find(a), 10);
  EXPECT_EQ(table.live(), 2u);
  EXPECT_TRUE(table.Remove(a));
  EXPECT_EQ(table.Find(a), nullptr);
  EXPECT_FALSE(table.Remove(a));
}

TEST(HandleTableTest, StaleHandleDetectsRecycledSlot) {
  HandleTable<int> table(4);
  int64_t a = table.Insert(10);
  table.Remove(a);
  int64_t b = table.Insert(30);  // recycles the slot
  EXPECT_EQ(table.Find(a), nullptr);
  EXPECT_TRUE(table.IsStale(a));
  EXPECT_FALSE(table.IsStale(b));
  // The raw slot view shows what a dangling pointer would reference.
  EXPECT_EQ(*table.FindSlotRaw(a), 30);
}

TEST(HandleTableTest, CapacityBound) {
  HandleTable<int> table(2);
  EXPECT_NE(table.Insert(1), 0);
  EXPECT_NE(table.Insert(2), 0);
  EXPECT_EQ(table.Insert(3), 0);
}

TEST(ApiRegistryTest, RegistrationValidation) {
  ApiRegistry registry;
  ApiSpec bad_len;
  bad_len.name = "f";
  bad_len.args = {ArgSpec::Len("n", 0)};  // len target is itself, not a buffer
  EXPECT_FALSE(registry.Register(bad_len, nullptr).ok());

  ApiSpec empty_flags;
  empty_flags.name = "g";
  empty_flags.args = {ArgSpec::Flags("mode", {})};
  EXPECT_FALSE(registry.Register(empty_flags, nullptr).ok());

  ApiSpec good;
  good.name = "h";
  good.args = {ArgSpec::Buffer("data", 0, 16), ArgSpec::Len("n", 0)};
  auto id = registry.Register(good, [](KernelContext&, const std::vector<ArgValue>&) {
    return int64_t{7};
  });
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(registry.Register(good, nullptr).ok());  // duplicate name
  EXPECT_EQ(registry.FindByName("h")->id, id.value());
}

class KernelContextTest : public ::testing::Test {
 protected:
  KernelContextTest() : board_(BoardSpecByName("stm32h745-nucleo").value()) {
    image_ = std::make_shared<FirmwareImage>();
    image_->set_os_name("testos");
    image_->set_code_base(board_.spec().text_base + 0x1000);
    (void)image_->AddModule("test/mod", 64);
    InstrumentationOptions instr;
    instr.enabled = true;
    image_->set_instrumentation(instr);
    board_.InstallImage(image_);
    ring_.ram_offset = 0x2200;
    ring_.capacity = 4;
  }

  uint32_t RingCount(uint32_t bank = 0) {
    return board_.RamReadU32(ring_.BankOffset(bank) + CovRingLayout::kCountOffset)
        .value();
  }
  uint32_t RingDropped(uint32_t bank = 0) {
    return board_.RamReadU32(ring_.BankOffset(bank) + CovRingLayout::kDroppedOffset)
        .value();
  }

  Board board_;
  std::shared_ptr<FirmwareImage> image_;
  CovRingLayout ring_;
};

TEST_F(KernelContextTest, CovWritesRingAndOverflows) {
  KernelContext ctx(board_, *image_, ring_);
  constexpr EdgeSite site = MakeEdgeSite("test/mod", "f.cc", 10);
  for (uint64_t bucket = 0; bucket < 4; ++bucket) {
    ctx.CovBucket(site, bucket);
  }
  EXPECT_EQ(RingCount(), 4u);
  EXPECT_FALSE(ctx.cov_overflow_pending());
  ctx.CovBucket(site, 5);  // ring full
  EXPECT_TRUE(ctx.cov_overflow_pending());
  EXPECT_EQ(RingDropped(), 1u);
  ctx.ClearCovOverflow();
  EXPECT_FALSE(ctx.cov_overflow_pending());
}

TEST_F(KernelContextTest, BucketsYieldDistinctEdges) {
  KernelContext ctx(board_, *image_, ring_);
  constexpr EdgeSite site = MakeEdgeSite("test/mod", "f.cc", 20);
  ctx.CovBucket(site, 0);
  ctx.CovBucket(site, 1);
  EXPECT_EQ(RingCount(), 2u);
  auto entry0 = board_.RamRead(ring_.EntryOffset(0, 0), 8).value();
  auto entry1 = board_.RamRead(ring_.EntryOffset(0, 1), 8).value();
  EXPECT_NE(entry0, entry1);
}

TEST_F(KernelContextTest, ConstructionStampsVersionedHeader) {
  KernelContext ctx(board_, *image_, ring_);
  EXPECT_EQ(board_.RamReadU32(ring_.ram_offset + CovRingLayout::kVersionOffset).value(),
            CovRingLayout::kVersionMagic);
  EXPECT_EQ(board_.RamReadU32(ring_.ram_offset + CovRingLayout::kCapacityOffset).value(),
            ring_.capacity);
  EXPECT_EQ(
      board_.RamReadU32(ring_.ram_offset + CovRingLayout::kActiveBankOffset).value(),
      0u);
}

TEST_F(KernelContextTest, EntriesCarryCurrentCallIndex) {
  KernelContext ctx(board_, *image_, ring_);
  constexpr EdgeSite site = MakeEdgeSite("test/mod", "f.cc", 21);
  ctx.SetCurrentCall(3);
  ctx.CovBucket(site, 0);
  ctx.SetCurrentCall(7);
  ctx.CovBucket(site, 1);
  EXPECT_EQ(board_.RamReadU32(ring_.EntryOffset(0, 0) + 8).value(), 3u);
  EXPECT_EQ(board_.RamReadU32(ring_.EntryOffset(0, 1) + 8).value(), 7u);
  EXPECT_EQ(board_.RamReadU32(ring_.ram_offset + CovRingLayout::kCurrentCallOffset)
                .value(),
            7u);
}

TEST_F(KernelContextTest, AppendsFollowBankSwitchAfterResumeWindow) {
  KernelContext ctx(board_, *image_, ring_);
  constexpr EdgeSite site = MakeEdgeSite("test/mod", "f.cc", 22);
  ctx.CovBucket(site, 0);
  EXPECT_EQ(RingCount(0), 1u);
  // The host flips the active bank while the target is stopped; the context picks
  // the switch up at its next resume window, not mid-window.
  ASSERT_TRUE(
      board_.RamWriteU32(ring_.ram_offset + CovRingLayout::kActiveBankOffset, 1).ok());
  ctx.CovBucket(site, 1);
  EXPECT_EQ(RingCount(0), 2u);  // still the cached bank
  ctx.BeginResumeWindow();
  ctx.CovBucket(site, 2);
  EXPECT_EQ(RingCount(0), 2u);
  EXPECT_EQ(RingCount(1), 1u);
}

// Regression: the dropped counter used to be re-read from RAM and incremented per
// dropped entry, and wrapped past UINT32_MAX back to zero — making a maximally
// lossy window look lossless. It must saturate.
TEST_F(KernelContextTest, DroppedCounterSaturatesAtMax) {
  KernelContext ctx(board_, *image_, ring_);
  constexpr EdgeSite site = MakeEdgeSite("test/mod", "f.cc", 23);
  for (uint64_t bucket = 0; bucket < 4; ++bucket) {
    ctx.CovBucket(site, bucket);
  }
  ASSERT_TRUE(board_.RamWriteU32(ring_.BankOffset(0) + CovRingLayout::kDroppedOffset,
                                 UINT32_MAX - 1)
                  .ok());
  ctx.CovBucket(site, 5);  // reads the pre-seeded value, bumps to UINT32_MAX
  EXPECT_EQ(RingDropped(), UINT32_MAX);
  ctx.CovBucket(site, 6);  // saturated: must NOT wrap to 0
  ctx.CovBucket(site, 7);
  EXPECT_EQ(RingDropped(), UINT32_MAX);
  EXPECT_TRUE(ctx.cov_overflow_pending());
}

TEST_F(KernelContextTest, UndeclaredModuleIsInvisible) {
  KernelContext ctx(board_, *image_, ring_);
  constexpr EdgeSite site = MakeEdgeSite("other/mod", "f.cc", 30);
  ctx.Cov(site);
  EXPECT_EQ(RingCount(), 0u);
}

TEST_F(KernelContextTest, FilteredModuleReportsBlocksButNoRingEntries) {
  InstrumentationOptions instr;
  instr.enabled = true;
  instr.module_filter = {"apps/"};
  image_->set_instrumentation(instr);
  KernelContext ctx(board_, *image_, ring_);
  constexpr EdgeSite site = MakeEdgeSite("test/mod", "f.cc", 40);

  // Arm a hardware breakpoint on the site's block; an uninstrumented module must still
  // trip it (GDBFuzz observes uninstrumented images).
  uint64_t bb = FirmwareImage::BasicBlockAddress(image_->ModuleOf("test/mod").value(),
                                                 site.id);
  ASSERT_TRUE(board_.AddBreakpoint(bb).ok());
  ctx.Cov(site);
  EXPECT_EQ(RingCount(), 0u);
  EXPECT_EQ(board_.TakeBreakpointHits().size(), 1u);
}

TEST_F(KernelContextTest, PanicWritesBannerThenThrows) {
  KernelContext ctx(board_, *image_, ring_);
  EXPECT_THROW(ctx.Panic("BUG: test panic", "backtrace line"), KernelPanicSignal);
  std::string uart = board_.uart().Drain();
  EXPECT_NE(uart.find("BUG: test panic"), std::string::npos);
  EXPECT_NE(uart.find("backtrace line"), std::string::npos);
}

TEST_F(KernelContextTest, AssertFailLogsAndThrows) {
  KernelContext ctx(board_, *image_, ring_);
  EXPECT_THROW(ctx.AssertFail("(x != NULL) assertion failed"), KernelAssertSignal);
  EXPECT_NE(board_.uart().Drain().find("assertion failed"), std::string::npos);
}

TEST_F(KernelContextTest, RamBudgetEnforced) {
  KernelContext ctx(board_, *image_, ring_);
  uint64_t budget = board_.spec().ram_bytes * 3 / 4;
  EXPECT_TRUE(ctx.ReserveRam(budget - 16).ok());
  EXPECT_FALSE(ctx.ReserveRam(64).ok());
  ctx.ReleaseRam(1024);
  EXPECT_TRUE(ctx.ReserveRam(64).ok());
}

TEST(CovSizeClassTest, Buckets) {
  EXPECT_EQ(CovSizeClass(0), 0u);
  EXPECT_EQ(CovSizeClass(1), 0u);
  EXPECT_EQ(CovSizeClass(2), 1u);
  EXPECT_EQ(CovSizeClass(1024), 10u);
  EXPECT_LT(CovSizeClass(UINT64_MAX), kMaxCovBuckets);
}

}  // namespace
}  // namespace eof
