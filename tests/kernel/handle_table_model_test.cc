// Model-based property test: HandleTable against a reference std::map under long random
// operation sequences — inserts, removes, stale lookups, capacity pressure, iteration.

#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/kernel/handle_table.h"

namespace eof {
namespace {

TEST(HandleTableModelTest, MatchesReferenceModelUnderRandomOps) {
  HandleTable<uint64_t> table(32);
  std::map<int64_t, uint64_t> model;  // live handle -> value
  std::vector<int64_t> dead_handles;
  Rng rng(0xdecafbad);
  uint64_t next_value = 1;

  for (int step = 0; step < 20000; ++step) {
    switch (rng.Below(5)) {
      case 0:
      case 1: {  // insert
        int64_t handle = table.Insert(next_value);
        if (model.size() < 32) {
          ASSERT_NE(handle, 0) << "table refused below capacity at step " << step;
          ASSERT_EQ(model.count(handle), 0u) << "handle reuse while live";
          model[handle] = next_value;
        } else {
          ASSERT_EQ(handle, 0) << "table exceeded capacity";
        }
        ++next_value;
        break;
      }
      case 2: {  // remove a live handle
        if (model.empty()) {
          break;
        }
        auto it = model.begin();
        std::advance(it, static_cast<long>(rng.Index(model.size())));
        ASSERT_TRUE(table.Remove(it->first));
        dead_handles.push_back(it->first);
        model.erase(it);
        break;
      }
      case 3: {  // lookup a live handle
        if (model.empty()) {
          break;
        }
        auto it = model.begin();
        std::advance(it, static_cast<long>(rng.Index(model.size())));
        uint64_t* value = table.Find(it->first);
        ASSERT_NE(value, nullptr);
        ASSERT_EQ(*value, it->second);
        break;
      }
      default: {  // lookup a dead (stale) handle
        if (dead_handles.empty()) {
          break;
        }
        int64_t handle = dead_handles[rng.Index(dead_handles.size())];
        ASSERT_EQ(table.Find(handle), nullptr) << "stale handle resolved";
        ASSERT_FALSE(table.Remove(handle));
        break;
      }
    }
    ASSERT_EQ(table.live(), model.size());
  }

  // Iteration sees exactly the live set.
  std::map<int64_t, uint64_t> seen;
  table.ForEach([&](int64_t handle, uint64_t& value) { seen[handle] = value; });
  EXPECT_EQ(seen, model);
}

}  // namespace
}  // namespace eof
