// Behavioural tests of the simulated kernels' normal-path semantics, called directly
// through each OS's API registry (no agent in the loop). These pin down the contracts the
// fuzzer relies on: status conventions, resource lifecycles, bounds checking, and the
// hardware-peripheral gates.

#include <gtest/gtest.h>

#include "src/agent/agent_layout.h"
#include "src/core/image_builder.h"
#include "src/hw/board_catalog.h"
#include "src/kernel/kernel_context.h"
#include "src/kernel/os.h"
#include "src/os/all_oses.h"

namespace eof {
namespace {

class OsApiTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }

  void Boot(const std::string& os_name, const std::string& board_name = "") {
    OsInfo info = OsRegistry::Instance().Find(os_name).value();
    std::string board = board_name.empty() ? info.default_board : board_name;
    BoardSpec spec = BoardSpecByName(board).value();
    ImageBuildOptions options;
    options.os_name = os_name;
    image_ = BuildImage(spec, options).value();
    board_ = std::make_unique<Board>(spec);
    board_->InstallImage(image_);
    CovRingLayout ring;
    ring.ram_offset = kCovRingOffset;
    ring.capacity = CovRingCapacityFor(spec.ram_bytes);
    ctx_ = std::make_unique<KernelContext>(*board_, *image_, ring);
    os_ = info.factory();
    ASSERT_TRUE(os_->Init(*ctx_).ok());
  }

  int64_t Call(const char* api, std::vector<ArgValue> args = {}) {
    const ApiSpec* spec = os_->registry().FindByName(api);
    EXPECT_NE(spec, nullptr) << api;
    auto result = os_->registry().Call(*ctx_, spec->id, args);
    EXPECT_TRUE(result.ok()) << api << ": " << result.status().ToString();
    return result.ok() ? result.value() : INT64_MIN;
  }

  static ArgValue S(uint64_t value) {
    ArgValue arg;
    arg.scalar = value;
    return arg;
  }
  static ArgValue B(const std::string& text) {
    ArgValue arg;
    arg.bytes.assign(text.begin(), text.end());
    return arg;
  }

  std::shared_ptr<FirmwareImage> image_;
  std::unique_ptr<Board> board_;
  std::unique_ptr<KernelContext> ctx_;
  std::unique_ptr<Os> os_;
};

// --- FreeRTOS ---

TEST_F(OsApiTest, FreertosTaskLifecycle) {
  Boot("freertos");
  int64_t task = Call("xTaskCreate", {B("worker"), S(256), S(5)});
  ASSERT_GT(task, 0);
  EXPECT_EQ(Call("uxTaskPriorityGet", {S(static_cast<uint64_t>(task))}), 5);
  EXPECT_EQ(Call("vTaskPrioritySet", {S(static_cast<uint64_t>(task)), S(99)}), 1);
  EXPECT_EQ(Call("uxTaskPriorityGet", {S(static_cast<uint64_t>(task))}), 24);  // clamped
  EXPECT_EQ(Call("vTaskSuspend", {S(static_cast<uint64_t>(task))}), 1);
  EXPECT_EQ(Call("vTaskResume", {S(static_cast<uint64_t>(task))}), 1);
  EXPECT_EQ(Call("vTaskResume", {S(static_cast<uint64_t>(task))}), 0);  // not suspended
  EXPECT_EQ(Call("uxTaskGetNumberOfTasks"), 2);  // IDLE + worker
  EXPECT_EQ(Call("vTaskDelete", {S(static_cast<uint64_t>(task))}), 1);
  EXPECT_EQ(Call("uxTaskPriorityGet", {S(static_cast<uint64_t>(task))}), -1);  // stale
  EXPECT_EQ(Call("xTaskCreate", {B("tiny"), S(16), S(1)}), -3);  // stack below minimum
}

TEST_F(OsApiTest, FreertosQueueAndSemaphoreConventions) {
  Boot("freertos");
  int64_t queue = Call("xQueueCreate", {S(2), S(8)});
  ASSERT_GT(queue, 0);
  uint64_t q = static_cast<uint64_t>(queue);
  EXPECT_EQ(Call("xQueueReceive", {S(q)}), -2);  // errQUEUE_EMPTY
  EXPECT_EQ(Call("xQueueSend", {S(q), B("ab"), S(0)}), 1);
  EXPECT_EQ(Call("xQueueSend", {S(q), B("cd"), S(0)}), 1);
  EXPECT_EQ(Call("xQueueSend", {S(q), B("ef"), S(0)}), -1);  // errQUEUE_FULL
  EXPECT_EQ(Call("uxQueueMessagesWaiting", {S(q)}), 2);
  EXPECT_EQ(Call("xQueueReset", {S(q)}), 1);
  EXPECT_EQ(Call("uxQueueMessagesWaiting", {S(q)}), 0);

  int64_t mutex = Call("xSemaphoreCreateMutex");
  ASSERT_GT(mutex, 0);
  uint64_t m = static_cast<uint64_t>(mutex);
  EXPECT_EQ(Call("xSemaphoreTake", {S(m)}), 1);
  EXPECT_EQ(Call("xSemaphoreTake", {S(m)}), 0);  // held
  EXPECT_EQ(Call("xSemaphoreGive", {S(m)}), 1);
  EXPECT_EQ(Call("xSemaphoreGive", {S(m)}), 0);  // nobody holds it
}

TEST_F(OsApiTest, FreertosHeapCoalesces) {
  Boot("freertos");
  int64_t free_before = Call("xPortGetFreeHeapSize");
  int64_t a = Call("pvPortMalloc", {S(1000)});
  int64_t b = Call("pvPortMalloc", {S(2000)});
  ASSERT_GT(a, 0);
  ASSERT_GT(b, 0);
  EXPECT_LT(Call("xPortGetFreeHeapSize"), free_before);
  EXPECT_EQ(Call("vPortFree", {S(static_cast<uint64_t>(a))}), 1);
  EXPECT_EQ(Call("vPortFree", {S(static_cast<uint64_t>(b))}), 1);
  EXPECT_EQ(Call("xPortGetFreeHeapSize"), free_before);  // fully coalesced
  EXPECT_EQ(Call("vPortFree", {S(static_cast<uint64_t>(a))}), 0);  // stale handle
  EXPECT_EQ(Call("pvPortMalloc", {S(0)}), 0);
  EXPECT_LE(Call("xPortGetMinimumEverFreeHeapSize"), free_before);
}

TEST_F(OsApiTest, FreertosPartitionGates) {
  // On real hardware, partitions work after load_partitions(); on QEMU the flash
  // controller is absent and the API degrades.
  Boot("freertos");
  EXPECT_EQ(Call("load_partitions", {S(0), S(4)}), 0);
  int64_t nvs = Call("esp_partition_find", {B("nvs")});
  ASSERT_GT(nvs, 0);
  EXPECT_EQ(Call("esp_partition_write",
                 {S(static_cast<uint64_t>(nvs)), S(0), B("blob")}),
            0);
  int64_t kernel = Call("esp_partition_find", {B("kernel")});
  EXPECT_EQ(Call("esp_partition_write",
                 {S(static_cast<uint64_t>(kernel)), S(0), B("x")}),
            -262);  // write-protected

  Boot("freertos", "qemu-virt-arm");
  EXPECT_EQ(Call("load_partitions", {S(0), S(4)}), -262);  // ESP_ERR_NOT_SUPPORTED
}

// --- RT-Thread ---

TEST_F(OsApiTest, RtthreadObjectRegistry) {
  Boot("rtthread");
  int64_t object = Call("rt_object_init", {S(2), B("sem2")});
  ASSERT_GT(object, 0);
  EXPECT_EQ(Call("rt_object_get_type", {S(static_cast<uint64_t>(object))}), 2);
  EXPECT_EQ(Call("rt_object_find", {B("sem2"), S(2)}), object);
  EXPECT_EQ(Call("rt_object_get_length", {S(2)}), 1);
  EXPECT_EQ(Call("rt_object_detach", {S(static_cast<uint64_t>(object))}), 0);
  EXPECT_EQ(Call("rt_object_detach", {S(static_cast<uint64_t>(object))}), -1);
  EXPECT_EQ(Call("rt_object_find", {B("sem2"), S(2)}), 0);
}

TEST_F(OsApiTest, RtthreadEventSemantics) {
  Boot("rtthread");
  int64_t event = Call("rt_event_create", {B("evt0")});
  ASSERT_GT(event, 0);
  uint64_t e = static_cast<uint64_t>(event);
  EXPECT_EQ(Call("rt_event_send", {S(e), S(0)}), -10);      // empty set rejected
  EXPECT_EQ(Call("rt_event_send", {S(e), S(0x3)}), 0);
  EXPECT_EQ(Call("rt_event_recv", {S(e), S(0x1), S(2)}), 0);       // OR satisfied
  EXPECT_EQ(Call("rt_event_recv", {S(e), S(0x3), S(1 | 4)}), 0);   // AND+CLEAR
  EXPECT_EQ(Call("rt_event_recv", {S(e), S(0x3), S(1)}), -2);      // cleared -> timeout
  EXPECT_EQ(Call("rt_event_delete", {S(e)}), 0);
}

TEST_F(OsApiTest, RtthreadMessageQueueSemantics) {
  Boot("rtthread");
  EXPECT_EQ(Call("rt_mq_create", {B("mq0"), S(0), S(4)}), 0);    // zero msg size
  EXPECT_EQ(Call("rt_mq_create", {B("mq0"), S(16), S(64)}), 0);  // depth beyond limit
  int64_t mq = Call("rt_mq_create", {B("mq0"), S(16), S(2)});
  ASSERT_GT(mq, 0);
  uint64_t q = static_cast<uint64_t>(mq);
  EXPECT_EQ(Call("rt_mq_recv", {S(q)}), -2);  // empty -> timeout
  EXPECT_EQ(Call("rt_mq_send", {S(q), B("0123456789abcdef0")}), -1);  // oversized
  EXPECT_EQ(Call("rt_mq_send", {S(q), B("first")}), 0);
  EXPECT_EQ(Call("rt_mq_send", {S(q), B("second")}), 0);
  EXPECT_EQ(Call("rt_mq_send", {S(q), B("third")}), -3);  // full
  EXPECT_EQ(Call("rt_mq_urgent", {S(q), B("x")}), -3);    // urgent needs room too
  EXPECT_EQ(Call("rt_mq_recv", {S(q)}), 5);               // "first"
  EXPECT_EQ(Call("rt_mq_urgent", {S(q), B("vip")}), 0);
  EXPECT_EQ(Call("rt_mq_recv", {S(q)}), 3);               // urgent jumped the line
  EXPECT_EQ(Call("rt_mq_recv", {S(q)}), 6);               // "second"
  EXPECT_EQ(Call("rt_mq_delete", {S(q)}), 0);
  EXPECT_EQ(Call("rt_mq_recv", {S(q)}), -10);             // stale handle
}

TEST_F(OsApiTest, RtthreadDeviceFrameworkAndConsole) {
  Boot("rtthread");
  int64_t uart = Call("rt_device_find", {B("uart1")});
  ASSERT_GT(uart, 0);
  uint64_t d = static_cast<uint64_t>(uart);
  EXPECT_EQ(Call("rt_device_write", {S(d), B("x")}), -1);  // not opened
  EXPECT_EQ(Call("rt_device_open", {S(d), S(0x003)}), 0);
  EXPECT_EQ(Call("rt_device_write", {S(d), B("hello")}), 5);
  EXPECT_EQ(Call("rt_console_set_device", {B("uart1")}), 0);
  EXPECT_EQ(Call("rt_device_close", {S(d)}), 0);
  EXPECT_EQ(Call("rt_device_unregister", {S(d)}), 0);
  EXPECT_EQ(Call("rt_device_find", {B("uart1")}), 0);  // gone from the registry
}

TEST_F(OsApiTest, RtthreadSmemLifecycle) {
  Boot("rtthread");
  int64_t smem = Call("rt_smem_init", {B("sm0"), S(1024)});
  ASSERT_GT(smem, 0);
  uint64_t s = static_cast<uint64_t>(smem);
  int64_t mem = Call("rt_smem_alloc", {S(s), S(100)});
  ASSERT_GT(mem, 0);
  EXPECT_EQ(Call("rt_smem_free", {S(static_cast<uint64_t>(mem))}), 0);
  EXPECT_EQ(Call("rt_smem_free", {S(static_cast<uint64_t>(mem))}), -10);  // double free
  EXPECT_EQ(Call("rt_smem_setname", {S(s), B("short")}), 0);
  EXPECT_EQ(Call("rt_smem_alloc", {S(s), S(4096)}), 0);  // larger than the instance
  EXPECT_EQ(Call("rt_smem_detach", {S(s)}), 0);
  EXPECT_EQ(Call("rt_smem_init", {B("sm1"), S(16)}), 0);  // below minimum size
}

// --- NuttX ---

TEST_F(OsApiTest, NuttxEnvironSemantics) {
  Boot("nuttx");
  EXPECT_EQ(Call("getenv", {B("PATH")}), 4);  // "/bin" from boot
  EXPECT_EQ(Call("setenv", {B("TZ"), B("UTC"), S(1)}), 0);
  EXPECT_EQ(Call("getenv", {B("TZ")}), 3);
  EXPECT_EQ(Call("setenv", {B("TZ"), B("CET+1"), S(0)}), 0);  // no-overwrite keeps UTC
  EXPECT_EQ(Call("getenv", {B("TZ")}), 3);
  EXPECT_EQ(Call("setenv", {B("BAD=NAME"), B("v"), S(1)}), -22);
  EXPECT_EQ(Call("unsetenv", {B("TZ")}), 0);
  EXPECT_EQ(Call("getenv", {B("TZ")}), 0);
  EXPECT_EQ(Call("clearenv"), 0);
  EXPECT_EQ(Call("getenv", {B("PATH")}), 0);
}

TEST_F(OsApiTest, NuttxMqueueSemantics) {
  Boot("nuttx");
  EXPECT_EQ(Call("mq_open", {B("noslash"), S(4), S(16)}), -22);
  int64_t mq = Call("mq_open", {B("/mq0"), S(2), S(8)});
  ASSERT_GT(mq, 0);
  uint64_t m = static_cast<uint64_t>(mq);
  EXPECT_EQ(Call("mq_receive", {S(m)}), -11);             // EAGAIN on empty
  EXPECT_EQ(Call("mq_send", {S(m), B("0123456789")}), -90);  // EMSGSIZE
  EXPECT_EQ(Call("mq_send", {S(m), B("ab")}), 0);
  EXPECT_EQ(Call("mq_send", {S(m), B("cd")}), 0);
  EXPECT_EQ(Call("mq_send", {S(m), B("ef")}), -11);       // full
  EXPECT_EQ(Call("mq_receive", {S(m)}), 2);               // returns message size
  EXPECT_EQ(Call("mq_close", {S(m)}), 0);
}

TEST_F(OsApiTest, NuttxClockAndTimers) {
  Boot("nuttx");
  EXPECT_EQ(Call("clock_settime", {S(1), S(100), S(0)}), -22);  // monotonic not settable
  EXPECT_EQ(Call("clock_settime", {S(0), S(1700000123), S(500)}), 0);
  EXPECT_EQ(Call("clock_gettime", {S(0)}), 1700000123);
  EXPECT_EQ(Call("clock_getres", {S(0)}), 10000000);
  EXPECT_EQ(Call("gettimeofday"), 1700000123);

  int64_t timer = Call("timer_create", {S(0), S(4)});
  ASSERT_GT(timer, 0);
  uint64_t t = static_cast<uint64_t>(timer);
  EXPECT_EQ(Call("timer_gettime", {S(t)}), 0);  // disarmed
  EXPECT_EQ(Call("timer_settime", {S(t), S(5000000)}), 0);
  EXPECT_EQ(Call("timer_gettime", {S(t)}), 5000000);
  EXPECT_EQ(Call("timer_settime", {S(t), S(0)}), 0);  // disarm
  EXPECT_EQ(Call("timer_gettime", {S(t)}), 0);
  EXPECT_EQ(Call("timer_delete", {S(t)}), 0);
  EXPECT_EQ(Call("timer_create", {S(0), S(50)}), -22);  // signo out of range, checked path
}

// --- Zephyr ---

TEST_F(OsApiTest, ZephyrSysHeapAllocFree) {
  Boot("zephyr");
  int64_t a = Call("sys_heap_alloc", {S(100)});
  int64_t b = Call("sys_heap_alloc", {S(200)});
  ASSERT_GT(a, 0);
  ASSERT_GT(b, 0);
  EXPECT_GT(Call("sys_heap_runtime_stats_get"), 0);
  EXPECT_EQ(Call("sys_heap_free", {S(static_cast<uint64_t>(a))}), 0);
  EXPECT_EQ(Call("sys_heap_free", {S(static_cast<uint64_t>(a))}), -22);  // stale
  EXPECT_EQ(Call("sys_heap_free", {S(static_cast<uint64_t>(b))}), 0);
  EXPECT_EQ(Call("sys_heap_runtime_stats_get"), 0);
  EXPECT_EQ(Call("sys_heap_alloc", {S(0)}), 0);
}

TEST_F(OsApiTest, ZephyrMsgqSemantics) {
  Boot("zephyr");
  EXPECT_EQ(Call("k_msgq_alloc_init", {S(0), S(4)}), -22);  // validated alloc path
  int64_t msgq = Call("k_msgq_alloc_init", {S(8), S(2)});
  ASSERT_GT(msgq, 0);
  uint64_t q = static_cast<uint64_t>(msgq);
  EXPECT_EQ(Call("k_msgq_get", {S(q)}), -42);  // ENOMSG
  EXPECT_EQ(Call("k_msgq_put", {S(q), B("hi")}), 0);
  EXPECT_EQ(Call("k_msgq_put", {S(q), B("ho")}), 0);
  EXPECT_EQ(Call("k_msgq_put", {S(q), B("xx")}), -11);  // EAGAIN when full
  EXPECT_EQ(Call("k_msgq_num_used_get", {S(q)}), 2);
  EXPECT_EQ(Call("k_msgq_get", {S(q)}), 0);
  EXPECT_EQ(Call("k_msgq_purge", {S(q)}), 0);
  EXPECT_EQ(Call("k_msgq_num_used_get", {S(q)}), 0);
}

TEST_F(OsApiTest, ZephyrThreadPriorityWindow) {
  Boot("zephyr");
  EXPECT_EQ(Call("k_thread_create", {B("rx"), S(1024), S(31)}), 0);  // outside [-16, 15]
  int64_t thread = Call("k_thread_create", {B("rx"), S(1024), S(5)});
  ASSERT_GT(thread, 0);
  uint64_t t = static_cast<uint64_t>(thread);
  EXPECT_EQ(Call("k_thread_suspend", {S(t)}), 0);
  EXPECT_EQ(Call("k_thread_resume", {S(t)}), 0);
  EXPECT_EQ(Call("k_thread_abort", {S(t)}), 0);
  EXPECT_EQ(Call("k_thread_suspend", {S(t)}), -22);  // gone
}

// --- PoKOS ---

TEST_F(OsApiTest, PokosArinc653ModeMachine) {
  Boot("pokos");
  int64_t partition = Call("pok_partition_create", {B("p0"), S(4096), S(100)});
  ASSERT_GT(partition, 0);
  uint64_t p = static_cast<uint64_t>(partition);
  // Threads can only be created before NORMAL and started after it.
  int64_t thread = Call("pok_thread_create", {S(p), S(10), S(50)});
  ASSERT_GT(thread, 0);
  EXPECT_EQ(Call("pok_thread_start", {S(static_cast<uint64_t>(thread))}), 8);  // MODE
  EXPECT_EQ(Call("pok_partition_set_mode", {S(p), S(3)}), 0);  // cold-start -> NORMAL
  EXPECT_EQ(Call("pok_thread_start", {S(static_cast<uint64_t>(thread))}), 0);
  EXPECT_EQ(Call("pok_thread_create", {S(p), S(10), S(50)}), 0);  // too late now
  EXPECT_EQ(Call("pok_partition_set_mode", {S(p), S(3)}), 8);    // NORMAL -> NORMAL illegal
  EXPECT_EQ(Call("pok_partition_set_mode", {S(p), S(1)}), 0);    // back to cold start
}

TEST_F(OsApiTest, PokosPortsDirectionAndValidity) {
  Boot("pokos");
  int64_t source = Call("pok_sampling_port_create", {B("sp0"), S(64), S(1), S(10)});
  int64_t sink = Call("pok_sampling_port_create", {B("sp1"), S(64), S(0), S(10)});
  ASSERT_GT(source, 0);
  ASSERT_GT(sink, 0);
  EXPECT_EQ(Call("pok_sampling_port_write", {S(static_cast<uint64_t>(sink)), B("x")}), 8);
  EXPECT_EQ(Call("pok_sampling_port_read", {S(static_cast<uint64_t>(source))}), 3);  // EMPTY
  EXPECT_EQ(Call("pok_sampling_port_write", {S(static_cast<uint64_t>(source)), B("abc")}),
            0);
  EXPECT_EQ(Call("pok_sampling_port_read", {S(static_cast<uint64_t>(source))}), 3);

  int64_t qport = Call("pok_queuing_port_create", {B("qp0"), S(32), S(2), S(1)});
  ASSERT_GT(qport, 0);
  uint64_t qp = static_cast<uint64_t>(qport);
  EXPECT_EQ(Call("pok_queuing_port_send", {S(qp), B("m1")}), 0);
  EXPECT_EQ(Call("pok_queuing_port_send", {S(qp), B("m2")}), 0);
  EXPECT_EQ(Call("pok_queuing_port_send", {S(qp), B("m3")}), 4);  // FULL
  EXPECT_EQ(Call("pok_queuing_port_receive", {S(qp)}), 2);
}

// Hardware gates close on emulated machines: the same call sequence yields strictly fewer
// coverage entries on QEMU than on the real board.
TEST_F(OsApiTest, PeripheralGatingReducesEmulatedCoverage) {
  auto run = [&](const std::string& board) {
    Boot("rtthread", board);
    (void)Call("rt_sem_create", {B("sem0"), S(0)});
    // Unsatisfied event receive arms a waiter only with a hardware timer present.
    int64_t event = Call("rt_event_create", {B("evt0")});
    (void)Call("rt_event_recv", {S(static_cast<uint64_t>(event)), S(1), S(2)});
    return ctx_->cov_events();
  };
  uint64_t hardware = run("stm32h745-nucleo");
  uint64_t emulated = run("qemu-virt-arm");
  EXPECT_GT(hardware, emulated);
}

}  // namespace
}  // namespace eof
