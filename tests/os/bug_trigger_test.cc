// Ground-truth reproduction of every Table-2 bug: each test drives the exact triggering
// call sequence through the deployed target and asserts that (a) the right monitor fires,
// (b) the crash text attributes to the right catalog entry, and (c) the target recovers
// via state restoration. These are the "reproducer" programs a fuzzing campaign distils.

#include <gtest/gtest.h>

#include "src/agent/wire.h"
#include "src/core/bug_catalog.h"
#include "src/core/deployment.h"
#include "src/core/monitors.h"
#include "src/kernel/os.h"
#include "src/os/all_oses.h"

namespace eof {
namespace {

struct Call {
  const char* api;
  std::vector<WireArg> args;
};

class BugTriggerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }

  void Deploy(const std::string& os_name) {
    DeployOptions options;
    options.os_name = os_name;
    auto deployment = Deployment::Create(options);
    ASSERT_TRUE(deployment.ok()) << deployment.status().ToString();
    deployment_ = std::move(deployment.value());
    os_ = OsRegistry::Instance().Find(os_name).value().factory();
    os_name_ = os_name;
    ASSERT_TRUE(exception_monitor_.Arm(*deployment_, os_->exception_symbol()).ok());
    uint64_t executor_main = deployment_->SymbolAddress("executor_main").value();
    ASSERT_TRUE(deployment_->port().SetBreakpoint(executor_main).ok());
    auto parked = deployment_->port().Continue();
    ASSERT_TRUE(parked.ok());
    (void)deployment_->port().DrainUart();
  }

  WireProgram Build(const std::vector<Call>& calls) {
    WireProgram program;
    for (const Call& call : calls) {
      const ApiSpec* spec = os_->registry().FindByName(call.api);
      EXPECT_NE(spec, nullptr) << call.api;
      WireCall wire;
      wire.api_id = spec != nullptr ? spec->id : 0;
      wire.args = call.args;
      program.calls.push_back(std::move(wire));
    }
    return program;
  }

  // Runs the sequence and expects the catalog bug `id` to manifest with `detector`.
  void ExpectBug(int id, const std::string& detector, const std::vector<Call>& calls) {
    const BugInfo* info = FindBug(id);
    ASSERT_NE(info, nullptr);
    ASSERT_TRUE(deployment_->WriteTestCase(EncodeProgram(Build(calls))).ok());
    auto stop = deployment_->port().Continue();
    ASSERT_TRUE(stop.ok()) << stop.status().ToString();

    std::string crash_text;
    if (detector == "exception") {
      // Panic path: the run vectors to the OS exception function.
      for (int round = 0; round < 4 && !exception_monitor_.IsExceptionStop(stop.value());
           ++round) {
        auto next = deployment_->port().Continue();
        ASSERT_TRUE(next.ok());
        stop = next;
      }
      EXPECT_TRUE(exception_monitor_.IsExceptionStop(stop.value()))
          << "stopped at " << stop.value().symbol << " (" << HaltReasonName(stop.value().reason)
          << ") instead of " << os_->exception_symbol();
      crash_text = deployment_->port().DrainUart();
    } else {
      // Assertion path: text on the console, core parked (PC stall).
      for (int round = 0; round < 6; ++round) {
        crash_text += deployment_->port().DrainUart();
        if (log_monitor_.Scan(crash_text).has_value()) {
          break;
        }
        auto next = deployment_->port().Continue();
        ASSERT_TRUE(next.ok());
      }
      auto hit = log_monitor_.Scan(crash_text);
      ASSERT_TRUE(hit.has_value()) << "no log-monitor match in: " << crash_text;
      EXPECT_EQ(hit->kind, "assertion");
    }
    EXPECT_EQ(AttributeBug(os_name_, crash_text), id) << crash_text;

    // Recovery: full restoration brings the target back.
    ASSERT_TRUE(deployment_->ReflashAndReboot().ok());
    EXPECT_EQ(deployment_->board().power_state(), PowerState::kRunning);
  }

  static WireArg S(uint64_t value) { return WireArg::Scalar(value); }
  static WireArg R(uint16_t index) { return WireArg::ResultRef(index); }
  static WireArg B(const std::string& text) {
    return WireArg::Bytes(std::vector<uint8_t>(text.begin(), text.end()));
  }

  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<Os> os_;
  std::string os_name_;
  ExceptionMonitor exception_monitor_;
  LogMonitor log_monitor_;
};

// --- Zephyr ---

TEST_F(BugTriggerTest, Bug01SysHeapStress) {
  Deploy("zephyr");
  ExpectBug(1, "exception", {{"sys_heap_stress", {S(250), S(1000)}}});
}

TEST_F(BugTriggerTest, Bug02MsgqGetDivide) {
  Deploy("zephyr");
  ExpectBug(2, "exception", {{"syz_msgq_roundtrip", {S(0), S(6)}}});
}

TEST_F(BugTriggerTest, Bug03JsonEncodeDepth) {
  Deploy("zephyr");
  std::vector<Call> calls;
  for (int i = 0; i < 5; ++i) {
    calls.push_back({"json_obj_init", {}});
  }
  for (uint16_t i = 0; i < 4; ++i) {
    calls.push_back({"json_obj_append_child", {R(i), R(static_cast<uint16_t>(i + 1)),
                                               B("inner")}});
  }
  calls.push_back({"json_obj_encode", {R(0)}});
  ExpectBug(3, "exception", calls);
}

TEST_F(BugTriggerTest, Bug04KHeapInitTiny) {
  Deploy("zephyr");
  ExpectBug(4, "exception", {{"k_heap_init", {S(4)}}});
}

// --- RT-Thread ---

TEST_F(BugTriggerTest, Bug05ObjectGetTypeNull) {
  Deploy("rtthread");
  ExpectBug(5, "log", {{"rt_object_get_type", {S(0)}}});
}

TEST_F(BugTriggerTest, Bug06ServiceListCorrupt) {
  Deploy("rtthread");
  std::vector<Call> calls;
  for (int i = 0; i < 5; ++i) {
    calls.push_back({"rt_service_register", {B("svc0")}});
  }
  calls.push_back({"rt_service_unregister", {R(0)}});
  calls.push_back({"rt_service_unregister", {R(0)}});  // double unlink
  calls.push_back({"rt_service_poll", {}});
  ExpectBug(6, "exception", calls);
}

TEST_F(BugTriggerTest, Bug07MempoolSuspendHead) {
  Deploy("rtthread");
  std::vector<Call> calls = {{"rt_mp_create", {B("mp0"), S(8), S(16)}}};
  for (int i = 0; i < 8; ++i) {
    calls.push_back({"rt_mp_alloc", {R(0), S(0)}});
  }
  calls.push_back({"rt_mp_alloc", {R(0), S(100)}});  // blocking alloc on drained pool
  ExpectBug(7, "exception", calls);
}

TEST_F(BugTriggerTest, Bug08ObjectInitDuplicate) {
  Deploy("rtthread");
  std::vector<Call> calls;
  const char* names[] = {"obj0", "tmr1", "sem2", "dev3", "thr4", "obj0", "obj0"};
  for (const char* name : names) {
    calls.push_back({"rt_object_init", {S(2), B(name)}});
  }
  ExpectBug(8, "log", calls);
}

TEST_F(BugTriggerTest, Bug09HeapLockUnderflow) {
  Deploy("rtthread");
  ExpectBug(9, "exception", {{"rt_malloc", {S(4000)}},
                             {"rt_malloc", {S(2000)}},
                             {"rt_malloc", {S(4097)}}});  // odd-size OOM under pressure
}

TEST_F(BugTriggerTest, Bug10EventSendTripleResume) {
  Deploy("rtthread");
  std::vector<Call> calls = {{"rt_event_create", {B("evt0")}}};
  for (int i = 0; i < 3; ++i) {
    calls.push_back({"rt_event_recv", {R(0), S(1), S(2)}});  // OR, unsatisfied -> waiter
  }
  calls.push_back({"rt_event_send", {R(0), S(1)}});
  ExpectBug(10, "exception", calls);
}

TEST_F(BugTriggerTest, Bug11SmemSetnameOverflow) {
  Deploy("rtthread");
  std::vector<Call> calls = {{"rt_smem_init", {B("sm0"), S(4096)}}};
  for (int i = 0; i < 4; ++i) {
    calls.push_back({"rt_smem_alloc", {R(0), S(64)}});
  }
  calls.push_back({"rt_smem_setname", {R(0), B("longname8")}});
  ExpectBug(11, "exception", calls);
}

TEST_F(BugTriggerTest, Bug12SerialWriteStaleConsole) {
  Deploy("rtthread");
  std::vector<Call> calls = {{"rt_device_find", {B("uart1")}},
                             {"rt_device_open", {R(0), S(0x043)}}};
  for (int i = 0; i < 4; ++i) {
    calls.push_back({"rt_device_write", {R(0), B("log\n")}});
  }
  calls.push_back({"rt_console_set_device", {B("uart1")}});
  calls.push_back({"rt_device_unregister", {R(0)}});
  calls.push_back({"syz_create_bind_socket", {S(2), S(1), S(0), S(8080)}});
  ExpectBug(12, "exception", calls);
}

// --- FreeRTOS ---

TEST_F(BugTriggerTest, Bug13LoadPartitionsOverrun) {
  Deploy("freertos");
  ExpectBug(13, "exception", {{"load_partitions", {S(7), S(15)}}});
}

// --- NuttX ---

TEST_F(BugTriggerTest, Bug14SetenvGroupCorrupt) {
  Deploy("nuttx");
  std::vector<Call> calls;
  const char* names[] = {"HOME", "TZ", "LANG", "TMP", "PS1", "TERM"};
  for (const char* name : names) {
    calls.push_back({"setenv", {B(name), B("v"), S(1)}});
  }
  calls.push_back({"setenv", {B("USER"), B(std::string(70, 'x')), S(1)}});
  ExpectBug(14, "exception", calls);
}

TEST_F(BugTriggerTest, Bug15GettimeofdayOverflow) {
  Deploy("nuttx");
  ExpectBug(15, "exception", {{"clock_settime", {S(0), S(0x80000001ULL), S(600000000)}},
                              {"gettimeofday", {}}});
}

TEST_F(BugTriggerTest, Bug16MqTimedsendPrioBitmap) {
  Deploy("nuttx");
  std::vector<Call> calls = {{"mq_open", {B("/mq0"), S(8), S(16)}}};
  for (int i = 0; i < 8; ++i) {
    calls.push_back({"mq_send", {R(0), B("mesg")}});
  }
  calls.push_back({"nxmq_timedsend", {R(0), B("mesg"), S(40), S(100)}});
  ExpectBug(16, "exception", calls);
}

TEST_F(BugTriggerTest, Bug17SemTrywaitCountCorrupt) {
  Deploy("nuttx");
  std::vector<Call> calls = {{"sem_init", {S(0)}}, {"nxsem_trywait", {R(0)}}};
  for (int i = 0; i < 5; ++i) {
    calls.push_back({"sem_post", {R(0)}});
  }
  calls.push_back({"nxsem_trywait", {R(0)}});
  ExpectBug(17, "log", calls);
}

TEST_F(BugTriggerTest, Bug18TimerCreateSigsetSmash) {
  Deploy("nuttx");
  ExpectBug(18, "exception", {{"timer_create", {S(0), S(5)}},
                              {"timer_create", {S(1), S(6)}},
                              {"timer_create", {S(7), S(50)}}});
}

TEST_F(BugTriggerTest, Bug19ClockGetresNullRow) {
  Deploy("nuttx");
  ExpectBug(19, "exception", {{"clock_getres", {S(6)}}});
}

// Every catalog entry has a reproducer above; the catalog itself is consistent.
TEST_F(BugTriggerTest, CatalogIsComplete) {
  EXPECT_EQ(BugCatalog().size(), 19u);
  int confirmed = 0;
  for (const BugInfo& bug : BugCatalog()) {
    EXPECT_NE(FindBug(bug.id), nullptr);
    EXPECT_FALSE(bug.signature.empty());
    if (bug.confirmed) {
      ++confirmed;
    }
  }
  EXPECT_EQ(confirmed, 5);  // paper: 5 confirmed by maintainers
}

}  // namespace
}  // namespace eof
