// Tests of the baseline configurations and the byte-buffer fuzzer engine (GDBFuzz /
// SHIFT / GUSTAVE): configuration invariants, short-campaign progress, and the
// mode-specific coverage sources.

#include <gtest/gtest.h>

#include "src/baselines/baselines.h"
#include "src/baselines/byte_fuzzer.h"
#include "src/os/all_oses.h"

namespace eof {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }
};

TEST_F(BaselinesTest, TardisConfigMatchesItsDesign) {
  FuzzerConfig tardis = TardisConfig("rtthread", 1, kVirtualHour);
  EXPECT_EQ(tardis.board_name, "qemu-virt-arm");
  EXPECT_FALSE(tardis.use_extended_specs);
  EXPECT_FALSE(tardis.log_monitor);
  EXPECT_FALSE(tardis.exception_monitor);
  EXPECT_TRUE(tardis.coverage_feedback);  // Syzkaller-based: coverage-guided
  EXPECT_EQ(tardis.restore_mode, RestoreMode::kRebootOnly);
  EXPECT_EQ(tardis.gen.max_buffer_len, 48u);
  EXPECT_EQ(TardisConfig("pokos", 1, kVirtualHour).board_name, "qemu-virt-riscv");
}

TEST_F(BaselinesTest, EofNfOnlyDropsFeedback) {
  FuzzerConfig nf = EofNfConfig("zephyr", 1, kVirtualHour);
  EXPECT_FALSE(nf.coverage_feedback);
  EXPECT_TRUE(nf.log_monitor);
  EXPECT_TRUE(nf.exception_monitor);
  EXPECT_TRUE(nf.use_extended_specs);
  EXPECT_EQ(nf.restore_mode, RestoreMode::kReflash);
}

TEST_F(BaselinesTest, GdbFuzzObservesCoverageThroughBreakpoints) {
  ByteFuzzerConfig config;
  config.mode = ByteFuzzerMode::kGdbFuzz;
  config.entry = "json";
  config.seed = 3;
  config.budget = 20 * kVirtualMinute;
  config.sample_points = 4;
  ByteFuzzer fuzzer(config);
  auto result = fuzzer.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().execs, 50u);
  EXPECT_GT(result.value().final_coverage, 0u);  // hits observed via rotating hw bps
}

TEST_F(BaselinesTest, ShiftCollectsSemihostCoverage) {
  ByteFuzzerConfig config;
  config.mode = ByteFuzzerMode::kShift;
  config.entry = "json";
  config.seed = 3;
  config.budget = 10 * kVirtualMinute;
  config.sample_points = 4;
  ByteFuzzer fuzzer(config);
  auto result = fuzzer.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().final_coverage, 5u);
}

TEST_F(BaselinesTest, ShiftIsSlowerThanGdbFuzzPerExec) {
  uint64_t execs[2] = {0, 0};
  int index = 0;
  for (ByteFuzzerMode mode : {ByteFuzzerMode::kGdbFuzz, ByteFuzzerMode::kShift}) {
    ByteFuzzerConfig config;
    config.mode = mode;
    config.entry = "json";
    config.seed = 5;
    config.budget = 10 * kVirtualMinute;
    ByteFuzzer fuzzer(config);
    auto result = fuzzer.Run();
    ASSERT_TRUE(result.ok());
    execs[index++] = result.value().execs;
  }
  // Semihosting traps throttle SHIFT's execution rate.
  EXPECT_LT(execs[1], execs[0]);
}

TEST_F(BaselinesTest, GustaveDecodesTapesIntoSyscalls) {
  ByteFuzzerConfig config;
  config.mode = ByteFuzzerMode::kGustave;
  config.os_name = "pokos";
  config.seed = 9;
  config.budget = 20 * kVirtualMinute;
  ByteFuzzer fuzzer(config);
  auto result = fuzzer.Run();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().execs, 100u);
  EXPECT_GT(result.value().final_coverage, 10u);  // TCG coverage of decoded syscalls
}

}  // namespace
}  // namespace eof
