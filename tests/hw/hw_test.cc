// Unit tests for the hardware substrate: flash + partitions, UART loss semantics, symbol
// tables, image payload validation, board lifecycle/fault latching, and the debug port's
// cost accounting and timeout behaviour.

#include <gtest/gtest.h>

#include "src/hw/board.h"
#include "src/hw/board_catalog.h"
#include "src/hw/debug_port.h"
#include "src/hw/image.h"
#include "src/hw/timing.h"

namespace eof {
namespace {

TEST(FlashTest, WriteReadErase) {
  Flash flash(4096);
  ASSERT_TRUE(flash.Write(16, {1, 2, 3}).ok());
  auto read = flash.Read(16, 3);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_FALSE(flash.Write(4095, {1, 2}).ok());
  flash.MassErase();
  EXPECT_EQ(flash.Read(16, 1).value()[0], 0xff);
}

TEST(PartitionTableTest, ValidationRejectsOverlapAndOverflow) {
  PartitionTable table;
  table.partitions = {{"a", 0, 100}, {"b", 100, 100}};
  EXPECT_TRUE(table.Validate(200).ok());
  EXPECT_FALSE(table.Validate(150).ok());  // b overflows
  table.partitions.push_back({"c", 50, 100});
  EXPECT_FALSE(table.Validate(1000).ok());  // c overlaps a and b
  EXPECT_NE(table.Find("a"), nullptr);
  EXPECT_EQ(table.Find("zzz"), nullptr);
}

TEST(UartTest, DrainAndFreeze) {
  Uart uart(64);
  uart.WriteLine("boot ok");
  EXPECT_EQ(uart.Drain(), "boot ok\n");
  EXPECT_EQ(uart.Drain(), "");
  uart.WriteLine("crash imminent");
  uart.Freeze();
  uart.WriteLine("lost");
  EXPECT_EQ(uart.Drain(), "crash imminent\n");
  EXPECT_GT(uart.dropped_bytes(), 0u);
}

TEST(UartTest, CapacityKeepsOldest) {
  Uart uart(8);
  uart.Write("12345678ABC");
  EXPECT_EQ(uart.Drain(), "12345678");
  EXPECT_EQ(uart.dropped_bytes(), 3u);
}

TEST(SymbolTableTest, AddLookupContaining) {
  SymbolTable symbols;
  ASSERT_TRUE(symbols.Add("executor_main", 0x1000, 0x40).ok());
  EXPECT_FALSE(symbols.Add("executor_main", 0x2000, 0x40).ok());
  EXPECT_FALSE(symbols.Add("overlap", 0x1020, 0x40).ok());
  EXPECT_EQ(symbols.AddressOf("executor_main").value(), 0x1000u);
  EXPECT_FALSE(symbols.AddressOf("missing").ok());
  EXPECT_EQ(symbols.Containing(0x1008), "executor_main");
  EXPECT_EQ(symbols.Containing(0x2000), "");
}

TEST(ImageTest, PayloadRoundTripAndCorruptionDetection) {
  std::vector<uint8_t> payload = FirmwareImage::MakePayload("kernel", 1, 512);
  EXPECT_TRUE(FirmwareImage::VerifyPayload(payload).ok());
  payload[40] ^= 0xff;
  EXPECT_FALSE(FirmwareImage::VerifyPayload(payload).ok());
}

TEST(ImageTest, FlashVerification) {
  FirmwareImage image;
  ASSERT_TRUE(image.AddPartition("kernel", 0x100, 0x1000, 256, 5).ok());
  ASSERT_TRUE(image.AddRawPartition("nvs", 0x2000, 0x100).ok());
  Flash flash(16384);
  EXPECT_FALSE(image.VerifyFlash(flash).ok());  // nothing flashed
  ASSERT_TRUE(flash.Write(0x100, image.PayloadOf("kernel").value()).ok());
  EXPECT_TRUE(image.VerifyFlash(flash).ok());
  // nvs is a raw partition: scribbling there must NOT fail validation.
  ASSERT_TRUE(flash.Write(0x2000, {0xaa, 0xbb}).ok());
  EXPECT_TRUE(image.VerifyFlash(flash).ok());
  // kernel corruption must.
  ASSERT_TRUE(flash.Write(0x120, {0x00}).ok());
  EXPECT_FALSE(image.VerifyFlash(flash).ok());
}

TEST(ImageTest, ModuleLayoutsAndCodeSpace) {
  FirmwareImage image;
  image.set_code_base(0x10000);
  auto http = image.AddModule("apps/http", 64);
  ASSERT_TRUE(http.ok());
  auto json = image.AddModule("apps/json", 32);
  ASSERT_TRUE(json.ok());
  EXPECT_FALSE(image.AddModule("apps/http", 8).ok());
  EXPECT_EQ(http.value().base, 0x10000u);
  EXPECT_EQ(json.value().base, 0x10000u + 64 * kBasicBlockStride);
  EXPECT_TRUE(image.InCodeSpace(http.value().base + 8));
  EXPECT_FALSE(image.InCodeSpace(0x10000 + 96 * kBasicBlockStride));
  uint64_t bb = FirmwareImage::BasicBlockAddress(http.value(), 12345);
  EXPECT_TRUE(image.InCodeSpace(bb));
}

TEST(InstrumentationOptionsTest, ModuleFilter) {
  InstrumentationOptions options;
  EXPECT_TRUE(options.Covers("freertos/queue"));
  options.module_filter = {"apps/"};
  EXPECT_TRUE(options.Covers("apps/json"));
  EXPECT_FALSE(options.Covers("freertos/queue"));
  options.enabled = false;
  EXPECT_FALSE(options.Covers("apps/json"));
}

TEST(BoardCatalogTest, KnownBoards) {
  EXPECT_GE(KnownBoardNames().size(), 6u);
  auto esp32 = BoardSpecByName("esp32-devkitc");
  ASSERT_TRUE(esp32.ok());
  EXPECT_EQ(esp32.value().arch, Arch::kXtensa);
  EXPECT_EQ(esp32.value().max_hw_breakpoints, 2);
  EXPECT_FALSE(esp32.value().emulated);
  auto qemu = BoardSpecByName("qemu-virt-arm");
  ASSERT_TRUE(qemu.ok());
  EXPECT_TRUE(qemu.value().emulated);
  EXPECT_TRUE(qemu.value().peripherals.empty());
  EXPECT_FALSE(BoardSpecByName("imaginary").ok());
}

class BoardTest : public ::testing::Test {
 protected:
  BoardTest() : board_(BoardSpecByName("stm32f407-disco").value()) {}
  Board board_;
};

TEST_F(BoardTest, RamAccessAndBounds) {
  ASSERT_TRUE(board_.RamWrite(0x100, {9, 8, 7}).ok());
  EXPECT_EQ(board_.RamRead(0x100, 3).value(), (std::vector<uint8_t>{9, 8, 7}));
  EXPECT_FALSE(board_.RamRead(board_.spec().ram_bytes - 1, 2).ok());
  ASSERT_TRUE(board_.RamWriteU32(0x200, 0xcafef00d).ok());
  EXPECT_EQ(board_.RamReadU32(0x200).value(), 0xcafef00du);
}

TEST_F(BoardTest, ResetWithoutImageIsOff) {
  board_.Reset();
  EXPECT_EQ(board_.power_state(), PowerState::kOff);
  EXPECT_EQ(board_.Continue().reason, HaltReason::kPoweredOff);
}

TEST_F(BoardTest, FaultLatchFreezesPc) {
  board_.LatchFault(0xdead00, "test fault");
  EXPECT_EQ(board_.power_state(), PowerState::kFaulted);
  uint64_t pc1 = board_.ReadPC();
  StopInfo stop = board_.Continue();
  EXPECT_EQ(stop.reason, HaltReason::kQuantumExpired);
  EXPECT_EQ(board_.ReadPC(), pc1);  // frozen
  EXPECT_TRUE(board_.uart().frozen());
}

TEST_F(BoardTest, HardwareBreakpointBudget) {
  // bb-space breakpoints need an installed image; program-point (sw) ones do not.
  auto image = std::make_shared<FirmwareImage>();
  image->set_code_base(0x20000);
  (void)image->AddModule("m", 64);
  board_.InstallImage(image);
  int budget = board_.spec().max_hw_breakpoints;
  for (int i = 0; i < budget; ++i) {
    EXPECT_TRUE(board_.AddBreakpoint(0x20000 + static_cast<uint64_t>(i) * 16).ok());
  }
  EXPECT_FALSE(board_.AddBreakpoint(0x20000 + 1000 * 16 % (64 * 16)).ok());
  // Software breakpoints remain unlimited.
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(board_.AddBreakpoint(0x900000 + i * 4).ok());
  }
}

TEST(DebugPortTest, RequiresAttachAndTimesOutWhenSevered) {
  Board board(BoardSpecByName("stm32f407-disco").value());
  DebugPort port(&board);
  EXPECT_FALSE(port.ReadPC().ok());  // not attached
  ASSERT_TRUE(port.Connect().ok());

  port.InjectLinkFailure(true);
  VirtualTime before = port.Now();
  auto pc = port.ReadPC();
  EXPECT_FALSE(pc.ok());
  EXPECT_EQ(pc.status().code(), ErrorCode::kTimeout);
  EXPECT_GE(port.Now() - before, kLinkTimeout);  // the timeout burns link-timeout time
  EXPECT_EQ(port.stats().timeouts, 1u);

  port.InjectLinkFailure(false);
  // Run-control still times out (the core never booted), but link-level operations
  // (breakpoint units) are serviced again.
  EXPECT_TRUE(port.SetBreakpoint(0x1000).ok());
}

TEST(DebugPortTest, MemoryWindowsAndCosts) {
  Board board(BoardSpecByName("stm32f407-disco").value());
  // Give the core a live state so memory ops are serviced.
  DebugPort port(&board);
  ASSERT_TRUE(port.Connect().ok());
  // Never-booted board: run-control and memory requests time out (watchdog #1 surface).
  EXPECT_FALSE(port.ReadMem(board.spec().ram_base, 16).ok());
}

TEST(DebugPortTest, NoDebugPortBoardRefusesConnection) {
  BoardSpec spec = BoardSpecByName("stm32f407-disco").value();
  spec.has_debug_port = false;
  Board board(spec);
  DebugPort port(&board);
  EXPECT_EQ(port.Connect().code(), ErrorCode::kUnavailable);
}

}  // namespace
}  // namespace eof
