// Tests of the vectored debug-port batch API and the extended link statistics:
// one-transaction batches, the adapter-side read-then-subtract helper, the severed-link
// mid-batch timeout path, target-assisted checksums, and delta-reflash skip accounting.

#include <gtest/gtest.h>

#include "src/common/hash.h"
#include "src/hw/board.h"
#include "src/hw/board_catalog.h"
#include "src/hw/debug_port.h"
#include "src/hw/timing.h"

namespace eof {
namespace {

class DebugPortBatchTest : public ::testing::Test {
 protected:
  DebugPortBatchTest() : board_(BoardSpecByName("stm32f407-disco").value()), port_(&board_) {
    EXPECT_TRUE(port_.Connect().ok());
    // Park the core in a serviced power state: batches with memory ops gate on the core
    // being past the boot ROM, and a latched fault (like a live kernel) qualifies.
    board_.LatchFault(0x1000, "test: park the core");
  }

  uint64_t Ram(uint64_t offset) const { return board_.spec().ram_base + offset; }

  Board board_;
  DebugPort port_;
};

TEST_F(DebugPortBatchTest, BatchIsOneTransactionAndAppliesInOrder) {
  ASSERT_TRUE(board_.RamWrite(0x40, {0xaa, 0xbb, 0xcc, 0xdd}).ok());
  const DebugPortStats before = port_.stats();

  std::vector<PortOp> ops;
  ops.push_back(PortOp::Write(Ram(0x10), {1, 2, 3}));
  ops.push_back(PortOp::Write(Ram(0x10), {9}));  // later op wins: queue order is commit order
  ops.push_back(PortOp::Read(Ram(0x40), 4));
  ASSERT_TRUE(port_.RunBatch(&ops).ok());

  const DebugPortStats after = port_.stats();
  EXPECT_EQ(after.transactions - before.transactions, 1u);
  EXPECT_EQ(after.batches - before.batches, 1u);
  EXPECT_EQ(after.batched_ops - before.batched_ops, 3u);
  EXPECT_EQ(after.bytes_written - before.bytes_written, 4u);
  EXPECT_EQ(after.bytes_read - before.bytes_read, 4u);
  EXPECT_EQ(ops[2].result, (std::vector<uint8_t>{0xaa, 0xbb, 0xcc, 0xdd}));
  EXPECT_EQ(board_.RamRead(0x10, 1).value()[0], 9);
}

TEST_F(DebugPortBatchTest, BatchCostIsOneLatencyChargePlusBytes) {
  std::vector<PortOp> ops;
  ops.push_back(PortOp::Write(Ram(0x10), std::vector<uint8_t>(64, 0x11)));
  ops.push_back(PortOp::Read(Ram(0x80), 128));
  VirtualTime t0 = port_.Now();
  ASSERT_TRUE(port_.RunBatch(&ops).ok());
  // One kDebugTransactionCost for the whole batch plus the per-byte link cost —
  // not one latency charge per op.
  EXPECT_EQ(port_.Now() - t0, DebugBatchCost(64 + 128));
  EXPECT_LT(DebugBatchCost(64 + 128), 2 * kDebugTransactionCost);
}

TEST_F(DebugPortBatchTest, EmptyBatchIsFree) {
  const DebugPortStats before = port_.stats();
  VirtualTime t0 = port_.Now();
  std::vector<PortOp> ops;
  EXPECT_TRUE(port_.RunBatch(&ops).ok());
  EXPECT_TRUE(port_.RunBatch(nullptr).ok());
  EXPECT_EQ(port_.Now(), t0);
  EXPECT_EQ(port_.stats().transactions, before.transactions);
  EXPECT_EQ(port_.stats().batches, before.batches);
}

TEST_F(DebugPortBatchTest, SubU32SubtractsTheValueTheBatchRead) {
  ASSERT_TRUE(board_.RamWriteU32(0x100, 7).ok());
  std::vector<PortOp> ops;
  ops.push_back(PortOp::Read(Ram(0x100), 4));
  ops.push_back(PortOp::SubU32(Ram(0x100), /*operand_op=*/0, /*operand_offset=*/0));
  ASSERT_TRUE(port_.RunBatch(&ops).ok());
  // read 7, then 7 - 7 = 0: a drain that subtracts exactly what it saw.
  EXPECT_EQ(board_.RamReadU32(0x100).value(), 0u);
}

TEST_F(DebugPortBatchTest, SubU32SaturatesAtZero) {
  ASSERT_TRUE(board_.RamWriteU32(0x100, 9).ok());  // minuend source
  ASSERT_TRUE(board_.RamWriteU32(0x104, 5).ok());  // target smaller than the subtrahend
  std::vector<PortOp> ops;
  ops.push_back(PortOp::Read(Ram(0x100), 4));
  ops.push_back(PortOp::SubU32(Ram(0x104), 0, 0));
  ASSERT_TRUE(port_.RunBatch(&ops).ok());
  EXPECT_EQ(board_.RamReadU32(0x104).value(), 0u);
}

TEST_F(DebugPortBatchTest, SubU32ValidatesItsOperandReference) {
  // No operand read.
  std::vector<PortOp> ops;
  ops.push_back(PortOp::SubU32(Ram(0x100), -1, 0));
  EXPECT_EQ(port_.RunBatch(&ops).code(), ErrorCode::kInvalidArgument);

  // Forward reference: the operand read has not executed yet.
  ops.clear();
  ops.push_back(PortOp::SubU32(Ram(0x100), 1, 0));
  ops.push_back(PortOp::Read(Ram(0x100), 4));
  EXPECT_EQ(port_.RunBatch(&ops).code(), ErrorCode::kInvalidArgument);

  // Operand is not a read.
  ops.clear();
  ops.push_back(PortOp::Write(Ram(0x100), {1, 2, 3, 4}));
  ops.push_back(PortOp::SubU32(Ram(0x100), 0, 0));
  EXPECT_EQ(port_.RunBatch(&ops).code(), ErrorCode::kInvalidArgument);

  // Offset past the end of the read's window.
  ops.clear();
  ops.push_back(PortOp::Read(Ram(0x100), 4));
  ops.push_back(PortOp::SubU32(Ram(0x100), 0, /*operand_offset=*/2));
  EXPECT_EQ(port_.RunBatch(&ops).code(), ErrorCode::kInvalidArgument);
}

TEST_F(DebugPortBatchTest, SeveredLinkBurnsOneTimeoutAndAppliesNothing) {
  ASSERT_TRUE(board_.RamWriteU32(0x100, 42).ok());
  const DebugPortStats before = port_.stats();
  port_.InjectLinkFailure(true);

  std::vector<PortOp> ops;
  ops.push_back(PortOp::Write(Ram(0x100), {0, 0, 0, 0}));
  ops.push_back(PortOp::Read(Ram(0x100), 4));
  ops.push_back(PortOp::SubU32(Ram(0x100), 1, 0));
  VirtualTime t0 = port_.Now();
  Status status = port_.RunBatch(&ops);

  // The whole batch fails as ONE link transaction: a single kLinkTimeout is burned
  // (not one per queued op), no batch is counted, and no op took effect.
  EXPECT_EQ(status.code(), ErrorCode::kTimeout);
  EXPECT_EQ(port_.Now() - t0, kLinkTimeout);
  EXPECT_EQ(port_.stats().timeouts - before.timeouts, 1u);
  EXPECT_EQ(port_.stats().batches, before.batches);
  EXPECT_EQ(port_.stats().transactions, before.transactions);
  EXPECT_EQ(board_.RamReadU32(0x100).value(), 42u);
}

TEST_F(DebugPortBatchTest, BreakpointOnlyBatchNeedsNoLiveCore) {
  // A fresh, never-booted board: comparator programming goes through the debug unit,
  // so a breakpoint-only batch succeeds where any memory op would time out.
  Board cold(BoardSpecByName("stm32f407-disco").value());
  DebugPort port(&cold);
  ASSERT_TRUE(port.Connect().ok());

  std::vector<PortOp> ops;
  ops.push_back(PortOp::SetBp(0x900000));
  ops.push_back(PortOp::SetBp(0x900004));
  EXPECT_TRUE(port.RunBatch(&ops).ok());
  EXPECT_EQ(port.stats().batched_ops, 2u);

  ops.clear();
  ops.push_back(PortOp::SetBp(0x900008));
  ops.push_back(PortOp::Read(cold.spec().ram_base, 4));
  EXPECT_EQ(port.RunBatch(&ops).code(), ErrorCode::kTimeout);
}

TEST_F(DebugPortBatchTest, ChecksumMatchesContentAndMovesOnlyTheDigest) {
  std::vector<uint8_t> blob(512);
  for (size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<uint8_t>(i * 7);
  }
  ASSERT_TRUE(board_.RamWrite(0x200, blob).ok());

  const DebugPortStats before = port_.stats();
  auto digest = port_.ChecksumMem(Ram(0x200), blob.size());
  ASSERT_TRUE(digest.ok());
  EXPECT_EQ(digest.value(), Fnv1aBytes(blob.data(), blob.size()));
  // The hash runs on-target; only the 8-byte digest crosses the link.
  EXPECT_EQ(port_.stats().bytes_read - before.bytes_read, 8u);
  EXPECT_EQ(port_.stats().transactions - before.transactions, 1u);

  // Checksums are serviced on a never-booted core (the flash-verify path must work
  // before first boot).
  Board cold(BoardSpecByName("stm32f407-disco").value());
  DebugPort cold_port(&cold);
  ASSERT_TRUE(cold_port.Connect().ok());
  EXPECT_TRUE(cold_port.ChecksumMem(cold.spec().flash_base, 256).ok());
}

TEST_F(DebugPortBatchTest, ContinueWithReadIsOneRoundTrip) {
  ASSERT_TRUE(board_.RamWrite(0x300, {5, 6, 7, 8}).ok());
  const DebugPortStats before = port_.stats();
  std::vector<uint8_t> out;
  auto stop = port_.ContinueWithRead(Ram(0x300), 4, &out);
  ASSERT_TRUE(stop.ok());
  EXPECT_EQ(out, (std::vector<uint8_t>{5, 6, 7, 8}));
  EXPECT_EQ(port_.stats().transactions - before.transactions, 1u);
  EXPECT_EQ(port_.stats().batches - before.batches, 1u);
  EXPECT_EQ(port_.stats().batched_ops - before.batched_ops, 2u);
}

TEST_F(DebugPortBatchTest, FlashSkippedBytesAccounting) {
  const DebugPortStats before = port_.stats();
  port_.NoteFlashSkipped(4096);
  port_.NoteFlashSkipped(100);
  EXPECT_EQ(port_.stats().flash_skipped_bytes - before.flash_skipped_bytes, 4196u);
  // Skips are bookkeeping, not link traffic.
  EXPECT_EQ(port_.stats().transactions, before.transactions);
}

// Farm aggregation goes through registry snapshot merges now: two boards' link
// ledgers merged must sum every `link.*` counter, and the stats view built from the
// merged snapshot must report those sums field for field.
TEST(DebugPortStatsTest, SnapshotMergeSumsEveryLinkCounter) {
  telemetry::MetricsRegistry reg_a;
  telemetry::MetricsRegistry reg_b;
  const char* names[] = {"link.transactions",        "link.batches",
                         "link.batched_ops",         "link.bytes_read",
                         "link.bytes_written",       "link.timeouts",
                         "link.flash_bytes",         "link.flash_skipped_bytes",
                         "link.resets"};
  uint64_t value = 1;
  for (const char* name : names) {
    reg_a.RegisterCounter(name)->Add(value);
    reg_b.RegisterCounter(name)->Add(value * 10);
    ++value;
  }
  telemetry::MetricsSnapshot merged = reg_a.Snapshot();
  merged.Merge(reg_b.Snapshot());

  DebugPortStats stats = DebugPortStatsFromSnapshot(merged);
  EXPECT_EQ(stats.transactions, 11u);
  EXPECT_EQ(stats.batches, 22u);
  EXPECT_EQ(stats.batched_ops, 33u);
  EXPECT_EQ(stats.bytes_read, 44u);
  EXPECT_EQ(stats.bytes_written, 55u);
  EXPECT_EQ(stats.timeouts, 66u);
  EXPECT_EQ(stats.flash_bytes, 77u);
  EXPECT_EQ(stats.flash_skipped_bytes, 88u);
  EXPECT_EQ(stats.resets, 99u);
}

// A port's live counters and a snapshot of its registry must agree: stats() is a
// view, not a second ledger.
TEST(DebugPortStatsTest, StatsMatchesRegistrySnapshot) {
  auto spec_or = BoardSpecByName("stm32f407-disco");
  ASSERT_TRUE(spec_or.ok());
  Board board(spec_or.value());
  DebugPort port(&board);
  port.NoteFlashSkipped(4096);
  DebugPortStats from_snapshot = DebugPortStatsFromSnapshot(port.registry().Snapshot());
  EXPECT_EQ(from_snapshot.flash_skipped_bytes, port.stats().flash_skipped_bytes);
  EXPECT_EQ(from_snapshot.transactions, port.stats().transactions);
  EXPECT_EQ(from_snapshot.timeouts, port.stats().timeouts);
}

}  // namespace
}  // namespace eof
