// Tests of the §6 extension: peripheral event injection. Events flow host → debug port →
// board queue → agent → OS interrupt handlers, with per-source ISR coverage and
// peripheral gating (a machine without the device sees a spurious IRQ at most).

#include <gtest/gtest.h>

#include "src/agent/agent.h"
#include "src/core/deployment.h"
#include "src/core/fuzzer.h"
#include "src/kernel/os.h"
#include "src/os/all_oses.h"
#include "src/os/freertos/freertos.h"

namespace eof {
namespace {

class PeripheralEventsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { ASSERT_TRUE(RegisterAllOses().ok()); }
};

TEST_F(PeripheralEventsTest, BoardQueueBoundsAndReset) {
  Board board(BoardSpecByName("esp32-devkitc").value());
  PeripheralEvent event{PeripheralEventKind::kSerialRx, 'x'};
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(board.InjectPeripheralEvent(event));
  }
  EXPECT_FALSE(board.InjectPeripheralEvent(event));  // saturated
  board.Reset();
  PeripheralEvent out;
  EXPECT_FALSE(board.NextPeripheralEvent(&out));  // reset drains the queue
}

TEST_F(PeripheralEventsTest, EventsReachTheIsrThroughTheAgent) {
  DeployOptions options;
  options.os_name = "freertos";
  auto deployment = Deployment::Create(options).value();
  DebugPort& port = deployment->port();

  // Inject a serial byte, two GPIO edges on line 2, and a timer tick.
  ASSERT_TRUE(port.InjectPeripheralEvent({PeripheralEventKind::kSerialRx, 'A'}).ok());
  ASSERT_TRUE(port.InjectPeripheralEvent({PeripheralEventKind::kGpioEdge, 2}).ok());
  ASSERT_TRUE(port.InjectPeripheralEvent({PeripheralEventKind::kGpioEdge, 2 | 0x100}).ok());
  ASSERT_TRUE(port.InjectPeripheralEvent({PeripheralEventKind::kTimerTick, 0}).ok());

  // Run one trivial call so the agent dispatches the pending events.
  std::unique_ptr<Os> scratch = OsRegistry::Instance().Find("freertos").value().factory();
  WireProgram program;
  WireCall call;
  call.api_id = scratch->registry().FindByName("uxTaskGetNumberOfTasks")->id;
  program.calls.push_back(call);
  ASSERT_TRUE(deployment->WriteTestCase(EncodeProgram(program)).ok());
  auto stop = port.Continue();
  ASSERT_TRUE(stop.ok());

  // The kernel state is target-internal; observe the plumbing through the queue bound
  // instead: all four events were consumed, so a fresh burst is fully accepted up to the
  // 64-entry generator limit.
  int accepted = 0;
  for (int i = 0; i < 70; ++i) {
    if (port.InjectPeripheralEvent({PeripheralEventKind::kSerialRx,
                                    static_cast<uint32_t>(i)}).ok()) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 64);
}

TEST_F(PeripheralEventsTest, IsrHandlersUpdateKernelStateAndGate) {
  // Drive the OS handler directly (unit level) on boards with and without the devices.
  for (const char* board_name : {"esp32-devkitc", "qemu-virt-arm"}) {
    OsInfo info = OsRegistry::Instance().Find("freertos").value();
    BoardSpec spec = BoardSpecByName(board_name).value();
    ImageBuildOptions build;
    build.os_name = "freertos";
    auto image = BuildImage(spec, build).value();
    Board board(spec);
    board.InstallImage(image);
    CovRingLayout ring;
    ring.ram_offset = kCovRingOffset;
    ring.capacity = 256;
    KernelContext ctx(board, *image, ring);
    auto os = info.factory();
    ASSERT_TRUE(os->Init(ctx).ok());
    auto* freertos = static_cast<freertos::FreeRtosOs*>(os.get());

    os->OnPeripheralEvent(ctx, {PeripheralEventKind::kSerialRx, 'Z'});
    os->OnPeripheralEvent(ctx, {PeripheralEventKind::kGpioEdge, 1});
    if (spec.HasPeripheral(Peripheral::kUartHw)) {
      EXPECT_EQ(freertos->state_for_test().uart_rx_ring.size(), 1u) << board_name;
      EXPECT_EQ(freertos->state_for_test().gpio_edge_count[1], 1u);
      EXPECT_EQ(freertos->state_for_test().spurious_irq_count, 0u);
    } else {
      // Emulated machine without the devices: spurious IRQs, no state change.
      EXPECT_TRUE(freertos->state_for_test().uart_rx_ring.empty()) << board_name;
      EXPECT_EQ(freertos->state_for_test().spurious_irq_count, 2u);
    }
  }
}

TEST_F(PeripheralEventsTest, TimerTickEventFiresSoftwareTimers) {
  OsInfo info = OsRegistry::Instance().Find("freertos").value();
  BoardSpec spec = BoardSpecByName("esp32-devkitc").value();
  ImageBuildOptions build;
  build.os_name = "freertos";
  auto image = BuildImage(spec, build).value();
  Board board(spec);
  board.InstallImage(image);
  CovRingLayout ring;
  ring.ram_offset = kCovRingOffset;
  ring.capacity = 256;
  KernelContext ctx(board, *image, ring);
  auto os = info.factory();
  ASSERT_TRUE(os->Init(ctx).ok());
  auto* freertos = static_cast<freertos::FreeRtosOs*>(os.get());

  // Arm a 2-tick timer, then inject tick events until it fires.
  freertos::SwTimer timer;
  timer.name = "t";
  timer.period_ticks = 2;
  timer.autoreload = false;
  timer.active = true;
  timer.expiry_tick = freertos->state_for_test().tick_count + 2;
  int64_t handle = freertos->state_for_test().timers.Insert(std::move(timer));
  ASSERT_NE(handle, 0);
  for (int i = 0; i < 3; ++i) {
    os->OnPeripheralEvent(ctx, {PeripheralEventKind::kTimerTick, 1});
  }
  EXPECT_GT(freertos->state_for_test().timers.Find(handle)->fire_count, 0u);
}

TEST_F(PeripheralEventsTest, CampaignWithInjectionGainsIsrCoverage) {
  uint64_t coverage[2] = {0, 0};
  int index = 0;
  for (bool inject : {false, true}) {
    FuzzerConfig config;
    config.os_name = "rtthread";
    config.seed = 77;
    config.budget = 30 * kVirtualMinute;
    config.inject_peripheral_events = inject;
    EofFuzzer fuzzer(config);
    auto result = fuzzer.Run();
    ASSERT_TRUE(result.ok());
    coverage[index++] = result.value().final_coverage;
  }
  EXPECT_GT(coverage[1], coverage[0]);  // ISR rows only exist with injection
}

}  // namespace
}  // namespace eof
