// POSIX semaphores.
//
// ── Bug #17 (Table 2): NuttX / Semaphore / Kernel Assertion / nxsem_trywait() ──
// A failed nxsem_trywait() registers cancellation-point bookkeeping (stamped from the
// hardware timer). Subsequent sem_posts that pump the count past four leave the
// bookkeeping inconsistent with the count, and the next nxsem_trywait() trips
// DEBUGASSERT(sem->count <= waiters_expected) — assertion text on the console, core
// parked: the log monitor's bug. Requires failed-trywait → ≥5 posts → trywait, a sequence
// with per-stage coverage edges.

#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/nuttx/apis.h"

namespace eof {
namespace nuttx {
namespace {

EOF_COV_MODULE("nuttx/semaphore");

int64_t SemInit(KernelContext& ctx, NuttxState& state, const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t value = args[0].scalar;
  if (value > 0x7fffffff) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  PosixSem sem;
  sem.value = static_cast<int32_t>(value);
  int64_t handle = state.semaphores.Insert(std::move(sem));
  if (handle == 0) {
    EOF_COV(ctx);
    return ENOMEM_;
  }
  EOF_COV(ctx);
  return handle;
}

int64_t SemPost(KernelContext& ctx, NuttxState& state, const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  PosixSem* sem = state.semaphores.Find(static_cast<int64_t>(args[0].scalar));
  if (sem == nullptr) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  ++sem->value;
  ++sem->post_count;
  EOF_COV_BUCKET(ctx, CovSizeClass(static_cast<uint64_t>(sem->value)));
  // Post-count staircase (only meaningful once a trywait failed and armed bookkeeping).
  if (sem->trywait_failed) {
    EOF_COV(ctx);
    if (sem->post_count == 2) {
      EOF_COV(ctx);
    }
    if (sem->post_count == 4) {
      EOF_COV(ctx);
    }
    if (sem->post_count >= 5) {
      EOF_COV(ctx);
    }
  }
  return OK_;
}

int64_t SemWait(KernelContext& ctx, NuttxState& state, const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  PosixSem* sem = state.semaphores.Find(static_cast<int64_t>(args[0].scalar));
  if (sem == nullptr) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  if (sem->value <= 0) {
    EOF_COV(ctx);
    return EAGAIN_;  // zero-wait in agent context
  }
  EOF_COV(ctx);
  --sem->value;
  return OK_;
}

int64_t NxsemTrywait(KernelContext& ctx, NuttxState& state,
                     const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  PosixSem* sem = state.semaphores.Find(static_cast<int64_t>(args[0].scalar));
  if (sem == nullptr) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  if (sem->value <= 0) {
    // Failed trywait: cancellation-point bookkeeping is stamped off the hardware timer.
    if (ctx.HasPeripheral(Peripheral::kHwTimer)) {
      EOF_COV(ctx);
      sem->trywait_failed = true;
      sem->post_count = 0;
    } else {
      EOF_COV(ctx);
    }
    return EAGAIN_;
  }
  if (sem->trywait_failed && sem->post_count >= 5) {
    EOF_COV(ctx);
    // BUG #17: count vs. cancellation bookkeeping inconsistency.
    ctx.AssertFail(StrFormat(
        "DEBUGASSERT failed at sem_trywait.c:112: sem->count(%d) corrupt vs waiters",
        sem->value));
  }
  EOF_COV(ctx);
  --sem->value;
  return OK_;
}

int64_t SemDestroy(KernelContext& ctx, NuttxState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  if (state.semaphores.Find(handle) == nullptr) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  EOF_COV(ctx);
  state.semaphores.Remove(handle);
  return OK_;
}

}  // namespace

Status RegisterSemApis(ApiRegistry& registry, NuttxState& state) {
  NuttxState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "sem_init";
    spec.subsystem = "semaphore";
    spec.doc = "initialise an unnamed semaphore";
    spec.args = {ArgSpec::Scalar("value", 32, 0, 16)};
    spec.produces = "nx_sem";
    RETURN_IF_ERROR(add(std::move(spec), SemInit));
  }
  {
    ApiSpec spec;
    spec.name = "sem_post";
    spec.subsystem = "semaphore";
    spec.doc = "post a semaphore";
    spec.args = {ArgSpec::Resource("sem", "nx_sem")};
    RETURN_IF_ERROR(add(std::move(spec), SemPost));
  }
  {
    ApiSpec spec;
    spec.name = "sem_wait";
    spec.subsystem = "semaphore";
    spec.doc = "wait on a semaphore (zero wait)";
    spec.args = {ArgSpec::Resource("sem", "nx_sem")};
    RETURN_IF_ERROR(add(std::move(spec), SemWait));
  }
  {
    ApiSpec spec;
    spec.name = "nxsem_trywait";
    spec.subsystem = "semaphore";
    spec.doc = "non-blocking wait";
    spec.args = {ArgSpec::Resource("sem", "nx_sem")};
    RETURN_IF_ERROR(add(std::move(spec), NxsemTrywait));
  }
  {
    ApiSpec spec;
    spec.name = "sem_destroy";
    spec.subsystem = "semaphore";
    spec.doc = "destroy a semaphore";
    spec.args = {ArgSpec::Resource("sem", "nx_sem")};
    RETURN_IF_ERROR(add(std::move(spec), SemDestroy));
  }
  return OkStatus();
}

}  // namespace nuttx
}  // namespace eof
