// The NuttX-like target OS (paper target #3): POSIX-flavoured RTOS surface.

#ifndef SRC_OS_NUTTX_NUTTX_H_
#define SRC_OS_NUTTX_NUTTX_H_

#include <memory>
#include <string>
#include <vector>

#include "src/kernel/os.h"
#include "src/os/nuttx/state.h"

namespace eof {
namespace nuttx {

class NuttxOs : public Os {
 public:
  NuttxOs();

  const std::string& name() const override { return name_; }
  const ApiRegistry& registry() const override { return registry_; }
  Status Init(KernelContext& ctx) override;
  std::string exception_symbol() const override { return "up_assert"; }
  OsFootprint footprint() const override;
  std::vector<std::pair<std::string, uint64_t>> modules() const override;
  void Tick(KernelContext& ctx) override;

  NuttxState& state_for_test() { return state_; }

 private:
  std::string name_ = "nuttx";
  NuttxState state_;
  ApiRegistry registry_;
};

Status RegisterNuttxOs();

}  // namespace nuttx
}  // namespace eof

#endif  // SRC_OS_NUTTX_NUTTX_H_
