// Task control (task_create/task_delete/getpid-style surface).

#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/nuttx/apis.h"

namespace eof {
namespace nuttx {
namespace {

EOF_COV_MODULE("nuttx/task");

int64_t TaskCreate(KernelContext& ctx, NuttxState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint32_t priority = static_cast<uint32_t>(args[1].scalar);
  uint32_t stack_size = static_cast<uint32_t>(args[2].scalar);
  if (priority == 0 || priority > 255) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  if (stack_size < 512) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  if (!ctx.ReserveRam(stack_size + 256).ok()) {
    EOF_COV(ctx);
    return ENOMEM_;
  }
  NxTask task;
  task.name = args[0].AsString().substr(0, 15);
  task.priority = priority;
  task.stack_size = stack_size;
  int64_t handle = state.tasks.Insert(std::move(task));
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(stack_size + 256);
    return EAGAIN_;
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, state.tasks.live());
  EOF_COV_BUCKET(ctx, priority / 16 + 8);
  ctx.ConsumeCycles(kContextSwitchCycles);
  return handle;
}

int64_t TaskDelete(KernelContext& ctx, NuttxState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  NxTask* task = state.tasks.Find(handle);
  if (task == nullptr) {
    EOF_COV(ctx);
    return ENOENT_;
  }
  EOF_COV(ctx);
  ctx.ReleaseRam(task->stack_size + 256);
  state.tasks.Remove(handle);
  ctx.ConsumeCycles(kContextSwitchCycles);
  return OK_;
}

int64_t TaskSetPriority(KernelContext& ctx, NuttxState& state,
                        const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  NxTask* task = state.tasks.Find(static_cast<int64_t>(args[0].scalar));
  if (task == nullptr) {
    EOF_COV(ctx);
    return ENOENT_;
  }
  uint32_t priority = static_cast<uint32_t>(args[1].scalar);
  if (priority == 0 || priority > 255) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  EOF_COV(ctx);
  task->priority = priority;
  return OK_;
}

int64_t Usleep(KernelContext& ctx, NuttxState& state, const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t usec = args[0].scalar;
  if (usec > 100000) {
    EOF_COV(ctx);
    usec = 100000;  // capped so fuzzing keeps moving
  }
  state.boot_ticks += usec / 10000 + 1;
  ctx.ConsumeCycles(usec / 4 + 100);
  return OK_;
}

}  // namespace

Status RegisterTaskApis(ApiRegistry& registry, NuttxState& state) {
  NuttxState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "task_create";
    spec.subsystem = "task";
    spec.doc = "spawn a task (name, priority, stack bytes)";
    spec.args = {ArgSpec::String("name", {"worker", "logger", "netmon"}),
                 ArgSpec::Scalar("priority", 32, 0, 300),
                 ArgSpec::Scalar("stack_size", 32, 0, 8192)};
    spec.produces = "nx_task";
    RETURN_IF_ERROR(add(std::move(spec), TaskCreate));
  }
  {
    ApiSpec spec;
    spec.name = "task_delete";
    spec.subsystem = "task";
    spec.doc = "kill a task";
    spec.args = {ArgSpec::Resource("task", "nx_task")};
    RETURN_IF_ERROR(add(std::move(spec), TaskDelete));
  }
  {
    ApiSpec spec;
    spec.name = "task_setpriority";
    spec.subsystem = "task";
    spec.doc = "change a task's priority";
    spec.args = {ArgSpec::Resource("task", "nx_task"),
                 ArgSpec::Scalar("priority", 32, 0, 300)};
    RETURN_IF_ERROR(add(std::move(spec), TaskSetPriority));
  }
  {
    ApiSpec spec;
    spec.name = "usleep";
    spec.subsystem = "task";
    spec.doc = "sleep for N microseconds";
    spec.args = {ArgSpec::Scalar("usec", 32, 0, 1000000)};
    RETURN_IF_ERROR(add(std::move(spec), Usleep));
  }
  return OkStatus();
}

}  // namespace nuttx
}  // namespace eof
