#include "src/os/nuttx/nuttx.h"

#include "src/common/logging.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/nuttx/apis.h"

namespace eof {
namespace nuttx {
namespace {

EOF_COV_MODULE("nuttx/kernel");

}  // namespace

NuttxOs::NuttxOs() {
  Status status = OkStatus();
  auto accumulate = [&status](Status step) {
    if (status.ok() && !step.ok()) {
      status = step;
    }
  };
  accumulate(RegisterEnvApis(registry_, state_));
  accumulate(RegisterTimeApis(registry_, state_));
  accumulate(RegisterMqApis(registry_, state_));
  accumulate(RegisterSemApis(registry_, state_));
  accumulate(RegisterTimerApis(registry_, state_));
  accumulate(RegisterTaskApis(registry_, state_));
  EOF_CHECK(status.ok()) << "NuttX API registration failed: " << status.ToString();
}

Status NuttxOs::Init(KernelContext& ctx) {
  EOF_COV(ctx);
  ctx.ConsumeCycles(kApiBaseCycles * 4);
  state_.environ.push_back(EnvVar{"PATH", "/bin"});
  state_.environ_bytes = 11;
  ctx.LogLine("NuttShell (NSH) NuttX-12.5 (EOF sim) on " + ctx.env().spec().name);
  return OkStatus();
}

OsFootprint NuttxOs::footprint() const {
  // §5.5.1: 3.36 MB -> 3.52 MB with instrumentation (+4.76%).
  OsFootprint footprint;
  footprint.base_image_bytes = 3440 * 1024;
  footprint.edge_sites = 9100;
  return footprint;
}

std::vector<std::pair<std::string, uint64_t>> NuttxOs::modules() const {
  return {
      {"nuttx/kernel", 256},  {"nuttx/env", 768},       {"nuttx/libc", 768},
      {"nuttx/mqueue", 1024}, {"nuttx/semaphore", 768}, {"nuttx/timer", 768},
      {"nuttx/task", 640},
  };
}

void NuttxOs::Tick(KernelContext& ctx) {
  ++state_.boot_ticks;
  ctx.ConsumeCycles(kTickCycles);
}

Status RegisterNuttxOs() {
  OsInfo info;
  info.name = "nuttx";
  info.factory = [] { return std::make_unique<NuttxOs>(); };
  info.supported_archs = {Arch::kArm, Arch::kRiscV, Arch::kXtensa};
  info.default_board = "esp32-devkitc";
  info.description = "NuttX-like kernel: environ, POSIX mqueues/semaphores/timers, libc "
                     "time, task control";
  return OsRegistry::Instance().Register(std::move(info));
}

}  // namespace nuttx
}  // namespace eof
