// POSIX timers.
//
// ── Bug #18 (Table 2): NuttX / Timer / Kernel Panic / timer_create() ──
// timer_create() stores the notification signal in a per-task sigset indexed by signo.
// For CLOCK_BOOTTIME timers the early-path validation is skipped (a refactor artifact),
// so signo > 31 indexes past the 32-bit sigset into the TCB — kernel panic.

#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/nuttx/apis.h"

namespace eof {
namespace nuttx {
namespace {

EOF_COV_MODULE("nuttx/timer");

constexpr uint32_t CLOCK_REALTIME_ = 0;
constexpr uint32_t CLOCK_MONOTONIC_ = 1;
constexpr uint32_t CLOCK_BOOTTIME_ = 7;
constexpr uint32_t MAX_SIGNO_ = 31;

int64_t TimerCreate(KernelContext& ctx, NuttxState& state,
                    const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint32_t clockid = static_cast<uint32_t>(args[0].scalar);
  uint32_t signo = static_cast<uint32_t>(args[1].scalar);
  if (clockid != CLOCK_REALTIME_ && clockid != CLOCK_MONOTONIC_ &&
      clockid != CLOCK_BOOTTIME_) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  if (clockid == CLOCK_BOOTTIME_) {
    EOF_COV(ctx);
    // Refactor artifact: the signo range check below is skipped for boot-time timers, and
    // the sigset row it smashes belongs to the TCB only once earlier timers populated the
    // adjacent rows.
    if (signo > MAX_SIGNO_ && state.timers.live() >= 2) {
      EOF_COV(ctx);
      // BUG #18: sigset indexed past its 32 bits into the TCB.
      ctx.Panic(StrFormat("up_assert: PANIC! timer_create: signo %u smashes TCB sigset",
                          signo),
                "Stack frames at BUG:\n"
                " Level 1: timer_create.c : timer_create : 143\n"
                " Level 2: agent : execute_one");
    }
  } else if (signo > MAX_SIGNO_) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  PosixTimer timer;
  timer.clockid = clockid;
  timer.signo = signo;
  int64_t handle = state.timers.Insert(std::move(timer));
  if (handle == 0) {
    EOF_COV(ctx);
    return ENOMEM_;
  }
  EOF_COV(ctx);
  return handle;
}

int64_t TimerSettime(KernelContext& ctx, NuttxState& state,
                     const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  PosixTimer* timer = state.timers.Find(static_cast<int64_t>(args[0].scalar));
  if (timer == nullptr) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  uint64_t period_ns = args[1].scalar;
  if (period_ns == 0) {
    EOF_COV(ctx);
    timer->armed = false;  // zero it -> disarm
    return OK_;
  }
  EOF_COV(ctx);
  if (ctx.HasPeripheral(Peripheral::kHwTimer)) {
    // High-resolution arming path: programs the hardware compare unit.
    EOF_COV_BUCKET(ctx, CovSizeClass(period_ns / 1000000));  // period class (ms)
    EOF_COV_BUCKET(ctx, state.timers.live() + 12);
  }
  timer->period_ns = period_ns;
  timer->armed = true;
  return OK_;
}

int64_t TimerGettime(KernelContext& ctx, NuttxState& state,
                     const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  PosixTimer* timer = state.timers.Find(static_cast<int64_t>(args[0].scalar));
  if (timer == nullptr) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  EOF_COV(ctx);
  return timer->armed ? static_cast<int64_t>(timer->period_ns) : 0;
}

int64_t TimerGetoverrun(KernelContext& ctx, NuttxState& state,
                        const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  PosixTimer* timer = state.timers.Find(static_cast<int64_t>(args[0].scalar));
  if (timer == nullptr) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  EOF_COV(ctx);
  return timer->overruns;
}

int64_t TimerDelete(KernelContext& ctx, NuttxState& state,
                    const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  if (state.timers.Find(handle) == nullptr) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  EOF_COV(ctx);
  state.timers.Remove(handle);
  return OK_;
}

}  // namespace

Status RegisterTimerApis(ApiRegistry& registry, NuttxState& state) {
  NuttxState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "timer_create";
    spec.subsystem = "timer";
    spec.doc = "create a POSIX timer with a notification signal";
    spec.args = {ArgSpec::Flags("clockid", {0, 1, 7}, /*combinable=*/false),
                 ArgSpec::Scalar("signo", 32, 0, 63)};
    spec.produces = "nx_timer";
    RETURN_IF_ERROR(add(std::move(spec), TimerCreate));
  }
  {
    ApiSpec spec;
    spec.name = "timer_settime";
    spec.subsystem = "timer";
    spec.doc = "arm/disarm a timer (period in ns; 0 disarms)";
    spec.args = {ArgSpec::Resource("timer", "nx_timer"),
                 ArgSpec::Scalar("period_ns", 64, 0, 10000000000ULL)};
    RETURN_IF_ERROR(add(std::move(spec), TimerSettime));
  }
  {
    ApiSpec spec;
    spec.name = "timer_gettime";
    spec.subsystem = "timer";
    spec.doc = "remaining time of an armed timer";
    spec.args = {ArgSpec::Resource("timer", "nx_timer")};
    RETURN_IF_ERROR(add(std::move(spec), TimerGettime));
  }
  {
    ApiSpec spec;
    spec.name = "timer_getoverrun";
    spec.subsystem = "timer";
    spec.doc = "overrun count of a timer";
    spec.args = {ArgSpec::Resource("timer", "nx_timer")};
    RETURN_IF_ERROR(add(std::move(spec), TimerGetoverrun));
  }
  {
    ApiSpec spec;
    spec.name = "timer_delete";
    spec.subsystem = "timer";
    spec.doc = "destroy a timer";
    spec.args = {ArgSpec::Resource("timer", "nx_timer")};
    RETURN_IF_ERROR(add(std::move(spec), TimerDelete));
  }
  return OkStatus();
}

}  // namespace nuttx
}  // namespace eof
