// Per-subsystem registration hooks for the NuttX-like kernel.

#ifndef SRC_OS_NUTTX_APIS_H_
#define SRC_OS_NUTTX_APIS_H_

#include "src/common/status.h"
#include "src/kernel/api.h"
#include "src/os/nuttx/state.h"

namespace eof {
namespace nuttx {

Status RegisterEnvApis(ApiRegistry& registry, NuttxState& state);
Status RegisterTimeApis(ApiRegistry& registry, NuttxState& state);
Status RegisterMqApis(ApiRegistry& registry, NuttxState& state);
Status RegisterSemApis(ApiRegistry& registry, NuttxState& state);
Status RegisterTimerApis(ApiRegistry& registry, NuttxState& state);
Status RegisterTaskApis(ApiRegistry& registry, NuttxState& state);

}  // namespace nuttx
}  // namespace eof

#endif  // SRC_OS_NUTTX_APIS_H_
