// Kernel state of the NuttX-like target: a POSIX-flavoured RTOS with environment
// variables, POSIX message queues, semaphores, timers, and a small libc.

#ifndef SRC_OS_NUTTX_STATE_H_
#define SRC_OS_NUTTX_STATE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/kernel/handle_table.h"

namespace eof {
namespace nuttx {

// errno-style returns (negated, NuttX kernel convention).
inline constexpr int64_t OK_ = 0;
inline constexpr int64_t EPERM_ = -1;
inline constexpr int64_t ENOENT_ = -2;
inline constexpr int64_t EAGAIN_ = -11;
inline constexpr int64_t ENOMEM_ = -12;
inline constexpr int64_t EEXIST_ = -17;
inline constexpr int64_t EINVAL_ = -22;
inline constexpr int64_t EMSGSIZE_ = -90;
inline constexpr int64_t ETIMEDOUT_ = -110;

struct EnvVar {
  std::string name;
  std::string value;
};

struct MsgQueue {
  std::string name;
  uint32_t maxmsg = 0;
  uint32_t msgsize = 0;
  std::deque<std::vector<uint8_t>> msgs;
  bool open = true;
};

struct PosixSem {
  int32_t value = 0;
  uint32_t post_count = 0;       // posts since init
  bool trywait_failed = false;   // a failed trywait armed the cancellation bookkeeping
};

struct PosixTimer {
  uint32_t clockid = 0;
  uint32_t signo = 0;
  uint64_t period_ns = 0;
  bool armed = false;
  uint32_t overruns = 0;
};

struct NxTask {
  std::string name;
  uint32_t priority = 100;
  uint32_t stack_size = 2048;
  bool running = true;
};

struct NuttxState {
  // Environment block: packed name=value strings with a fixed capacity.
  std::vector<EnvVar> environ;
  uint64_t environ_bytes = 0;
  static constexpr uint64_t kEnvironCapacity = 1024;

  HandleTable<MsgQueue> mqueues{32};
  HandleTable<PosixSem> semaphores{64};
  HandleTable<PosixTimer> timers{32};
  HandleTable<NxTask> tasks{32};

  // System clock (settable realtime + monotonic since boot).
  uint64_t realtime_sec = 1700000000;
  uint64_t realtime_nsec = 0;
  bool clock_was_set = false;
  uint64_t boot_ticks = 0;
};

}  // namespace nuttx
}  // namespace eof

#endif  // SRC_OS_NUTTX_STATE_H_
