// libc time: clock_settime/gettime/getres and gettimeofday.
//
// ── Bug #15 (Table 2): NuttX / Libc / Kernel Panic / gettimeofday() ──
// gettimeofday() converts the 64-bit realtime seconds through a signed 32-bit
// intermediate; after clock_settime set an epoch beyond INT32_MAX the microsecond
// multiply overflows and the result-pointer arithmetic faults.
//
// ── Bug #19 (Table 2): NuttX / Libc / Kernel Panic / clock_getres() ──
// The resolution table indexes clockids 0..5 but CLOCK_MONOTONIC_COARSE (6) slipped into
// the headers without a table row — clock_getres(6) reads a null row pointer. The id 6
// exists only in header text, i.e. only the LLM-mined extended specs know it.

#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/nuttx/apis.h"

namespace eof {
namespace nuttx {
namespace {

EOF_COV_MODULE("nuttx/libc");

constexpr uint32_t CLOCK_REALTIME_ = 0;
constexpr uint32_t CLOCK_MONOTONIC_ = 1;
constexpr uint32_t CLOCK_BOOTTIME_ = 7;
constexpr uint32_t CLOCK_MONOTONIC_COARSE_ = 6;

int64_t ClockSettime(KernelContext& ctx, NuttxState& state,
                     const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint32_t clockid = static_cast<uint32_t>(args[0].scalar);
  uint64_t sec = args[1].scalar;
  uint64_t nsec = args[2].scalar;
  if (clockid != CLOCK_REALTIME_) {
    EOF_COV(ctx);
    return EINVAL_;  // only the realtime clock is settable
  }
  if (nsec >= 1000000000ULL) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  EOF_COV(ctx);
  state.realtime_sec = sec;
  state.realtime_nsec = nsec;
  state.clock_was_set = true;
  return OK_;
}

int64_t ClockGettime(KernelContext& ctx, NuttxState& state,
                     const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint32_t clockid = static_cast<uint32_t>(args[0].scalar);
  switch (clockid) {
    case CLOCK_REALTIME_:
      EOF_COV(ctx);
      return static_cast<int64_t>(state.realtime_sec);
    case CLOCK_MONOTONIC_:
    case CLOCK_BOOTTIME_:
      EOF_COV(ctx);
      if (ctx.HasPeripheral(Peripheral::kHwTimer)) {
        EOF_COV(ctx);  // sub-tick refinement from the free-running counter
        EOF_COV_BUCKET(ctx, CovSizeClass(state.boot_ticks) + 12);
      }
      return static_cast<int64_t>(state.boot_ticks / 100);
    default:
      EOF_COV(ctx);
      return EINVAL_;
  }
}

int64_t ClockGetres(KernelContext& ctx, NuttxState& state,
                    const std::vector<ArgValue>& args) {
  (void)state;
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint32_t clockid = static_cast<uint32_t>(args[0].scalar);
  if (clockid == CLOCK_MONOTONIC_COARSE_) {
    EOF_COV(ctx);
    // BUG #19: header constant without a resolution-table row.
    ctx.Panic("up_assert: PANIC! null deref in clock_getres (clockid=6)",
              "Stack frames at BUG:\n"
              " Level 1: clock_getres.c : clock_getres : 98\n"
              " Level 2: agent : execute_one");
  }
  if (clockid > CLOCK_BOOTTIME_) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  EOF_COV(ctx);
  return 10000000;  // 10 ms tick resolution, ns
}

int64_t Gettimeofday(KernelContext& ctx, NuttxState& state,
                     const std::vector<ArgValue>& args) {
  (void)args;
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  if (state.clock_was_set && state.realtime_sec > 0x7fffffffULL &&
      state.realtime_nsec > 500000000ULL) {
    EOF_COV(ctx);
    // BUG #15: signed-32 intermediate overflow after a far-future clock_settime.
    ctx.Panic("up_assert: PANIC! arithmetic fault in gettimeofday tv_usec conversion",
              "Stack frames at BUG:\n"
              " Level 1: lib_gettimeofday.c : gettimeofday : 71\n"
              " Level 2: agent : execute_one");
  }
  EOF_COV(ctx);
  return static_cast<int64_t>(state.realtime_sec);
}

}  // namespace

Status RegisterTimeApis(ApiRegistry& registry, NuttxState& state) {
  NuttxState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "clock_settime";
    spec.subsystem = "libc";
    spec.doc = "set a system clock";
    spec.args = {ArgSpec::Flags("clockid", {0, 1}),
                 ArgSpec::Scalar("sec", 64, 0, 8589934592ULL),
                 ArgSpec::Scalar("nsec", 32, 0, 2000000000)};
    RETURN_IF_ERROR(add(std::move(spec), ClockSettime));
  }
  {
    ApiSpec spec;
    spec.name = "clock_gettime";
    spec.subsystem = "libc";
    spec.doc = "read a system clock";
    spec.args = {ArgSpec::Flags("clockid", {0, 1}, /*combinable=*/false)};
    spec.args[0].extended_flag_values = {4, 7};
    RETURN_IF_ERROR(add(std::move(spec), ClockGettime));
  }
  {
    ApiSpec spec;
    spec.name = "clock_getres";
    spec.subsystem = "libc";
    spec.doc = "clock resolution query";
    spec.args = {ArgSpec::Flags("clockid", {0, 1, 4}, /*combinable=*/false)};
    spec.args[0].extended_flag_values = {6, 7};  // header-only ids, LLM-mined
    RETURN_IF_ERROR(add(std::move(spec), ClockGetres));
  }
  {
    ApiSpec spec;
    spec.name = "gettimeofday";
    spec.subsystem = "libc";
    spec.doc = "BSD-style wall-clock read";
    RETURN_IF_ERROR(add(std::move(spec), Gettimeofday));
  }
  return OkStatus();
}

}  // namespace nuttx
}  // namespace eof
