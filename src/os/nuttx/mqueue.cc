// POSIX message queues.
//
// ── Bug #16 (Table 2): NuttX / MQueue / Kernel Panic / nxmq_timedsend() ──
// The priority-ordered insert in nxmq_timedsend() indexes a 32-entry priority bitmap.
// On a full queue, the blocking path first records the waiter under the message priority;
// priorities above 31 index past the bitmap into the wait-queue head — kernel panic when
// the record is linked. Needs a full queue (maxmsg-deep fill staircase) plus an
// out-of-range priority; the absolute-timeout wait needs the hardware timer.

#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/nuttx/apis.h"

namespace eof {
namespace nuttx {
namespace {

EOF_COV_MODULE("nuttx/mqueue");

constexpr uint32_t MQ_PRIO_MAX_ = 32;

int64_t MqOpen(KernelContext& ctx, NuttxState& state, const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  std::string name = args[0].AsString();
  uint32_t maxmsg = static_cast<uint32_t>(args[1].scalar);
  uint32_t msgsize = static_cast<uint32_t>(args[2].scalar);
  if (name.empty() || name[0] != '/') {
    EOF_COV(ctx);
    return EINVAL_;
  }
  if (maxmsg == 0 || maxmsg > 16 || msgsize == 0 || msgsize > 512) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  if (!ctx.ReserveRam(static_cast<uint64_t>(maxmsg) * msgsize + 96).ok()) {
    EOF_COV(ctx);
    return ENOMEM_;
  }
  MsgQueue queue;
  queue.name = name;
  queue.maxmsg = maxmsg;
  queue.msgsize = msgsize;
  int64_t handle = state.mqueues.Insert(std::move(queue));
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(static_cast<uint64_t>(maxmsg) * msgsize + 96);
    return ENOMEM_;
  }
  EOF_COV(ctx);
  return handle;
}

int64_t MqSend(KernelContext& ctx, NuttxState& state, const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  MsgQueue* queue = state.mqueues.Find(static_cast<int64_t>(args[0].scalar));
  if (queue == nullptr || !queue->open) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  const std::vector<uint8_t>& msg = args[1].bytes;
  if (msg.size() > queue->msgsize) {
    EOF_COV(ctx);
    return EMSGSIZE_;
  }
  if (queue->msgs.size() >= queue->maxmsg) {
    EOF_COV(ctx);
    return EAGAIN_;  // non-blocking send on a full queue
  }
  // Fill staircase toward the bug-#16 precondition.
  if (queue->msgs.size() + 1 == queue->maxmsg / 2) {
    EOF_COV(ctx);
  }
  if (queue->msgs.size() + 1 == queue->maxmsg) {
    EOF_COV(ctx);  // queue now full
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, queue->msgs.size());
  if (ctx.HasPeripheral(Peripheral::kHwTimer)) {
    EOF_COV_BUCKET(ctx, CovSizeClass(msg.size()) + 12);  // timestamped enqueue rows
  }
  ctx.ConsumeCycles(kCopyPerByteCycles * msg.size());
  queue->msgs.push_back(msg);
  return OK_;
}

int64_t NxmqTimedsend(KernelContext& ctx, NuttxState& state,
                      const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  MsgQueue* queue = state.mqueues.Find(static_cast<int64_t>(args[0].scalar));
  if (queue == nullptr || !queue->open) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  const std::vector<uint8_t>& msg = args[1].bytes;
  uint32_t prio = static_cast<uint32_t>(args[2].scalar);
  uint64_t timeout_ms = args[3].scalar;
  if (msg.size() > queue->msgsize) {
    EOF_COV(ctx);
    return EMSGSIZE_;
  }
  if (queue->msgs.size() < queue->maxmsg) {
    EOF_COV(ctx);
    ctx.ConsumeCycles(kCopyPerByteCycles * msg.size());
    // Priority insert: higher-priority messages jump the line.
    if (prio >= MQ_PRIO_MAX_ / 2 && !queue->msgs.empty()) {
      EOF_COV(ctx);
      queue->msgs.push_front(msg);
    } else {
      queue->msgs.push_back(msg);
    }
    return OK_;
  }
  // Full queue: blocking path.
  if (timeout_ms == 0) {
    EOF_COV(ctx);
    return EAGAIN_;
  }
  if (!ctx.HasPeripheral(Peripheral::kHwTimer)) {
    EOF_COV(ctx);
    return ETIMEDOUT_;  // no absolute-timeout source
  }
  if (queue->maxmsg < 8) {
    EOF_COV(ctx);
    ctx.ConsumeCycles(kContextSwitchCycles);
    return ETIMEDOUT_;  // small queues park on the static wait slot, no bitmap index
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, prio / 4);  // priority-band rows of the waiter bitmap walk
  if (prio >= MQ_PRIO_MAX_) {
    EOF_COV(ctx);
    // BUG #16: waiter record indexed past the 32-entry priority bitmap.
    ctx.Panic(StrFormat("up_assert: PANIC! nxmq_timedsend: prio %u overruns wait bitmap",
                        prio),
              "Stack frames at BUG:\n"
              " Level 1: mq_timedsend.c : nxmq_timedsend : 387\n"
              " Level 2: agent : execute_one");
  }
  ctx.ConsumeCycles(kContextSwitchCycles);
  return ETIMEDOUT_;  // the wait would expire; agent context never blocks for real
}

int64_t MqReceive(KernelContext& ctx, NuttxState& state,
                  const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  MsgQueue* queue = state.mqueues.Find(static_cast<int64_t>(args[0].scalar));
  if (queue == nullptr || !queue->open) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  if (queue->msgs.empty()) {
    EOF_COV(ctx);
    return EAGAIN_;
  }
  EOF_COV(ctx);
  int64_t size = static_cast<int64_t>(queue->msgs.front().size());
  ctx.ConsumeCycles(kCopyPerByteCycles * static_cast<uint64_t>(size));
  queue->msgs.pop_front();
  return size;
}

int64_t MqClose(KernelContext& ctx, NuttxState& state, const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  MsgQueue* queue = state.mqueues.Find(handle);
  if (queue == nullptr) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  EOF_COV(ctx);
  ctx.ReleaseRam(static_cast<uint64_t>(queue->maxmsg) * queue->msgsize + 96);
  state.mqueues.Remove(handle);
  return OK_;
}

}  // namespace

Status RegisterMqApis(ApiRegistry& registry, NuttxState& state) {
  NuttxState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "mq_open";
    spec.subsystem = "mqueue";
    spec.doc = "open/create a POSIX message queue";
    spec.args = {ArgSpec::String("name", {"/mq0", "/mq1", "/ctrl"}),
                 ArgSpec::Scalar("maxmsg", 32, 0, 32), ArgSpec::Scalar("msgsize", 32, 0, 1024)};
    spec.produces = "nx_mq";
    RETURN_IF_ERROR(add(std::move(spec), MqOpen));
  }
  {
    ApiSpec spec;
    spec.name = "mq_send";
    spec.subsystem = "mqueue";
    spec.doc = "non-blocking send";
    spec.args = {ArgSpec::Resource("mq", "nx_mq"), ArgSpec::Buffer("msg", 0, 512)};
    RETURN_IF_ERROR(add(std::move(spec), MqSend));
  }
  {
    ApiSpec spec;
    spec.name = "nxmq_timedsend";
    spec.subsystem = "mqueue";
    spec.doc = "send with priority and absolute timeout";
    spec.args = {ArgSpec::Resource("mq", "nx_mq"), ArgSpec::Buffer("msg", 0, 512),
                 ArgSpec::Scalar("prio", 32, 0, 64),
                 ArgSpec::Scalar("timeout_ms", 32, 0, 1000)};
    RETURN_IF_ERROR(add(std::move(spec), NxmqTimedsend));
  }
  {
    ApiSpec spec;
    spec.name = "mq_receive";
    spec.subsystem = "mqueue";
    spec.doc = "non-blocking receive";
    spec.args = {ArgSpec::Resource("mq", "nx_mq")};
    RETURN_IF_ERROR(add(std::move(spec), MqReceive));
  }
  {
    ApiSpec spec;
    spec.name = "mq_close";
    spec.subsystem = "mqueue";
    spec.doc = "close a message queue";
    spec.args = {ArgSpec::Resource("mq", "nx_mq")};
    RETURN_IF_ERROR(add(std::move(spec), MqClose));
  }
  return OkStatus();
}

}  // namespace nuttx
}  // namespace eof
