// Environment variables (group environ block).
//
// ── Bug #14 (Table 2, confirmed): NuttX / Kernel / Kernel Panic / setenv() ──
// The environ block packs name=value pairs into one allocation and setenv() grows it by
// realloc. With eight or more variables the block has been compacted in place, and adding
// a value longer than 64 bytes makes the copy length computation wrap past the block end:
// the terminating NUL lands on the adjacent group structure — kernel panic on the next
// group dereference inside setenv's epilogue. Random programs essentially never stack
// eight setenvs before the long write; the variable-count edges give coverage-guided
// search a staircase.

#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/nuttx/apis.h"

namespace eof {
namespace nuttx {
namespace {

EOF_COV_MODULE("nuttx/env");

int64_t SetEnv(KernelContext& ctx, NuttxState& state, const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  std::string name = args[0].AsString();
  std::string value = args[1].AsString();
  bool overwrite = args[2].scalar != 0;
  if (name.empty() || name.find('=') != std::string::npos) {
    EOF_COV(ctx);
    return EINVAL_;
  }
  // Existing variable?
  for (EnvVar& var : state.environ) {
    ctx.ConsumeCycles(kListOpCycles);
    if (var.name == name) {
      if (!overwrite) {
        EOF_COV(ctx);
        return OK_;
      }
      EOF_COV(ctx);
      state.environ_bytes -= var.value.size();
      state.environ_bytes += value.size();
      var.value = value;
      return OK_;
    }
  }
  uint64_t entry_bytes = name.size() + value.size() + 2;
  if (state.environ_bytes + entry_bytes > NuttxState::kEnvironCapacity) {
    EOF_COV(ctx);
    return ENOMEM_;
  }
  // Variable-count staircase.
  size_t count = state.environ.size() + 1;
  if (count == 2) {
    EOF_COV(ctx);
  }
  if (count == 4) {
    EOF_COV(ctx);
  }
  if (count == 6) {
    EOF_COV(ctx);
  }
  if (count >= 8) {
    EOF_COV(ctx);
    if (value.size() > 64) {
      EOF_COV(ctx);
      // BUG #14: compacted block + long value -> wrapped copy length.
      ctx.Panic("up_assert: Assertion failed at file:environ.c line 214: group corrupt",
                "Stack frames at BUG:\n"
                " Level 1: environ.c : setenv : 214\n"
                " Level 2: agent : execute_one");
    }
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, count);                       // environ population
  EOF_COV_BUCKET(ctx, CovSizeClass(value.size()) + 12);  // value size class
  ctx.ConsumeCycles(kCopyPerByteCycles * entry_bytes + kAllocOpCycles);
  state.environ.push_back(EnvVar{name, value});
  state.environ_bytes += entry_bytes;
  return OK_;
}

int64_t GetEnv(KernelContext& ctx, NuttxState& state, const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  std::string name = args[0].AsString();
  for (const EnvVar& var : state.environ) {
    ctx.ConsumeCycles(kListOpCycles);
    if (var.name == name) {
      EOF_COV(ctx);
      return static_cast<int64_t>(var.value.size());  // "pointer" stand-in
    }
  }
  EOF_COV(ctx);
  return 0;
}

int64_t UnsetEnv(KernelContext& ctx, NuttxState& state, const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  std::string name = args[0].AsString();
  for (size_t i = 0; i < state.environ.size(); ++i) {
    ctx.ConsumeCycles(kListOpCycles);
    if (state.environ[i].name == name) {
      EOF_COV(ctx);
      state.environ_bytes -= state.environ[i].name.size() + state.environ[i].value.size() + 2;
      state.environ.erase(state.environ.begin() + static_cast<std::ptrdiff_t>(i));
      return OK_;
    }
  }
  EOF_COV(ctx);
  return OK_;  // POSIX: unsetting an absent variable succeeds
}

int64_t ClearEnv(KernelContext& ctx, NuttxState& state, const std::vector<ArgValue>& args) {
  (void)args;
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  state.environ.clear();
  state.environ_bytes = 0;
  return OK_;
}

}  // namespace

Status RegisterEnvApis(ApiRegistry& registry, NuttxState& state) {
  NuttxState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "setenv";
    spec.subsystem = "env";
    spec.doc = "set an environment variable";
    spec.args = {ArgSpec::String("name", {"PATH", "HOME", "TZ", "LANG", "TMP", "PS1",
                                          "TERM", "USER", "SHELL"}),
                 ArgSpec::String("value"), ArgSpec::Scalar("overwrite", 8, 0, 1)};
    spec.args[1].buf_max = 256;
    RETURN_IF_ERROR(add(std::move(spec), SetEnv));
  }
  {
    ApiSpec spec;
    spec.name = "getenv";
    spec.subsystem = "env";
    spec.doc = "read an environment variable";
    spec.args = {ArgSpec::String("name", {"PATH", "HOME", "TZ", "LANG"})};
    RETURN_IF_ERROR(add(std::move(spec), GetEnv));
  }
  {
    ApiSpec spec;
    spec.name = "unsetenv";
    spec.subsystem = "env";
    spec.doc = "remove an environment variable";
    spec.args = {ArgSpec::String("name", {"PATH", "HOME", "TZ", "LANG"})};
    RETURN_IF_ERROR(add(std::move(spec), UnsetEnv));
  }
  {
    ApiSpec spec;
    spec.name = "clearenv";
    spec.subsystem = "env";
    spec.doc = "drop all environment variables";
    RETURN_IF_ERROR(add(std::move(spec), ClearEnv));
  }
  return OkStatus();
}

}  // namespace nuttx
}  // namespace eof
