#include "src/os/all_oses.h"

#include "src/os/freertos/freertos.h"
#include "src/os/nuttx/nuttx.h"
#include "src/os/pokos/pokos.h"
#include "src/os/rtthread/rtthread.h"
#include "src/os/zephyr/zephyr.h"

namespace eof {

Status RegisterAllOses() {
  static const Status* status = new Status([] {
    Status result = OkStatus();
    auto accumulate = [&result](Status step) {
      if (result.ok() && !step.ok() && step.code() != ErrorCode::kAlreadyExists) {
        result = step;
      }
    };
    accumulate(freertos::RegisterFreeRtosOs());
    accumulate(rtthread::RegisterRtThreadOs());
    accumulate(nuttx::RegisterNuttxOs());
    accumulate(zephyr::RegisterZephyrOs());
    accumulate(pokos::RegisterPokOs());
    return result;
  }());
  return *status;
}

}  // namespace eof
