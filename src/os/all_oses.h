// One-stop registration of every supported target OS. Binaries call RegisterAllOses()
// once at startup; re-registration is reported as AlreadyExists and ignored here.

#ifndef SRC_OS_ALL_OSES_H_
#define SRC_OS_ALL_OSES_H_

#include "src/common/status.h"

namespace eof {

// Registers FreeRTOS, RT-Thread, NuttX, Zephyr, and PoKOS. Idempotent.
Status RegisterAllOses();

}  // namespace eof

#endif  // SRC_OS_ALL_OSES_H_
