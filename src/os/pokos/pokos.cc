#include "src/os/pokos/pokos.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"

namespace eof {
namespace pokos {
namespace {

EOF_COV_MODULE("pokos/kernel");

int64_t PartitionCreate(KernelContext& ctx, PokState& state,
                        const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t memory = args[1].scalar;
  uint64_t slice = args[2].scalar;
  if (memory == 0 || memory > 64 * 1024) {
    EOF_COV(ctx);
    return POK_ERRNO_EINVAL;
  }
  if (slice == 0 || slice > 1000) {
    EOF_COV(ctx);
    return POK_ERRNO_EINVAL;
  }
  if (!ctx.ReserveRam(memory).ok()) {
    EOF_COV(ctx);
    return POK_ERRNO_TOOMANY;
  }
  PokPartition partition;
  partition.name = args[0].AsString().substr(0, 16);
  partition.memory_bytes = memory;
  partition.time_slice_ms = slice;
  int64_t handle = state.partitions.Insert(std::move(partition));
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(memory);
    return POK_ERRNO_TOOMANY;
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, state.partitions.live() + 8);
  EOF_COV_BUCKET(ctx, CovSizeClass(memory) + 12);
  return handle;
}

int64_t PartitionSetMode(KernelContext& ctx, PokState& state,
                         const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  PokPartition* partition = state.partitions.Find(static_cast<int64_t>(args[0].scalar));
  if (partition == nullptr) {
    EOF_COV(ctx);
    return POK_ERRNO_EINVAL;
  }
  uint64_t mode = args[1].scalar;
  if (mode > 3) {
    EOF_COV(ctx);
    return POK_ERRNO_EINVAL;
  }
  // ARINC 653 mode transition rules: NORMAL can only be entered from a START mode.
  PartitionMode target = static_cast<PartitionMode>(mode);
  if (target == PartitionMode::kNormal &&
      partition->mode != PartitionMode::kColdStart &&
      partition->mode != PartitionMode::kWarmStart) {
    EOF_COV(ctx);
    return POK_ERRNO_MODE;
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, static_cast<uint64_t>(partition->mode) * 4 + mode);  // transition pair
  partition->mode = target;
  ctx.ConsumeCycles(kContextSwitchCycles);
  return POK_ERRNO_OK;
}

int64_t ThreadCreate(KernelContext& ctx, PokState& state,
                     const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  PokPartition* partition = state.partitions.Find(static_cast<int64_t>(args[0].scalar));
  if (partition == nullptr) {
    EOF_COV(ctx);
    return 0;
  }
  if (partition->mode == PartitionMode::kNormal) {
    EOF_COV(ctx);
    return 0;  // threads may only be created before NORMAL mode
  }
  uint32_t priority = static_cast<uint32_t>(args[1].scalar);
  if (priority > 255) {
    EOF_COV(ctx);
    return 0;
  }
  if (partition->thread_count >= 8) {
    EOF_COV(ctx);
    return 0;
  }
  PokThread thread;
  thread.partition = static_cast<int64_t>(args[0].scalar);
  thread.priority = priority;
  thread.period_ms = args[2].scalar;
  int64_t handle = state.threads.Insert(std::move(thread));
  if (handle == 0) {
    EOF_COV(ctx);
    return 0;
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, partition->thread_count + 16);
  ++partition->thread_count;
  return handle;
}

int64_t ThreadStart(KernelContext& ctx, PokState& state,
                    const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  PokThread* thread = state.threads.Find(static_cast<int64_t>(args[0].scalar));
  if (thread == nullptr) {
    EOF_COV(ctx);
    return POK_ERRNO_EINVAL;
  }
  PokPartition* partition = state.partitions.Find(thread->partition);
  if (partition == nullptr || partition->mode != PartitionMode::kNormal) {
    EOF_COV(ctx);
    return POK_ERRNO_MODE;  // threads run only in NORMAL mode
  }
  EOF_COV(ctx);
  thread->started = true;
  ctx.ConsumeCycles(kContextSwitchCycles);
  return POK_ERRNO_OK;
}

int64_t SamplingCreate(KernelContext& ctx, PokState& state,
                       const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint32_t max_size = static_cast<uint32_t>(args[1].scalar);
  if (max_size == 0 || max_size > 1024) {
    EOF_COV(ctx);
    return 0;
  }
  SamplingPort port;
  port.name = args[0].AsString().substr(0, 16);
  port.max_size = max_size;
  port.is_source = args[2].scalar != 0;
  port.validity_ms = std::max<uint64_t>(args[3].scalar, 1);
  int64_t handle = state.sampling_ports.Insert(std::move(port));
  if (handle == 0) {
    EOF_COV(ctx);
    return 0;
  }
  EOF_COV(ctx);
  return handle;
}

int64_t SamplingWrite(KernelContext& ctx, PokState& state,
                      const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  SamplingPort* port = state.sampling_ports.Find(static_cast<int64_t>(args[0].scalar));
  if (port == nullptr) {
    EOF_COV(ctx);
    return POK_ERRNO_EINVAL;
  }
  if (!port->is_source) {
    EOF_COV(ctx);
    return POK_ERRNO_MODE;  // writing a destination port
  }
  const std::vector<uint8_t>& message = args[1].bytes;
  if (message.empty() || message.size() > port->max_size) {
    EOF_COV(ctx);
    return POK_ERRNO_EINVAL;
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, CovSizeClass(message.size()));
  ctx.ConsumeCycles(kCopyPerByteCycles * message.size());
  port->last_message = message;
  port->last_write_tick = state.tick_ms;
  return POK_ERRNO_OK;
}

int64_t SamplingRead(KernelContext& ctx, PokState& state,
                     const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  SamplingPort* port = state.sampling_ports.Find(static_cast<int64_t>(args[0].scalar));
  if (port == nullptr) {
    EOF_COV(ctx);
    return POK_ERRNO_EINVAL;
  }
  if (port->last_message.empty()) {
    EOF_COV(ctx);
    return POK_ERRNO_EMPTY;
  }
  bool valid = state.tick_ms - port->last_write_tick <= port->validity_ms;
  if (!valid) {
    EOF_COV(ctx);  // stale sample: reported with the validity flag cleared
    EOF_COV_BUCKET(ctx, CovSizeClass(state.tick_ms - port->last_write_tick) + 10);
  }
  EOF_COV(ctx);
  ctx.ConsumeCycles(kCopyPerByteCycles * port->last_message.size());
  return static_cast<int64_t>(port->last_message.size());
}

int64_t QueuingCreate(KernelContext& ctx, PokState& state,
                      const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint32_t max_size = static_cast<uint32_t>(args[1].scalar);
  uint32_t depth = static_cast<uint32_t>(args[2].scalar);
  if (max_size == 0 || max_size > 1024 || depth == 0 || depth > 32) {
    EOF_COV(ctx);
    return 0;
  }
  if (!ctx.ReserveRam(static_cast<uint64_t>(max_size) * depth).ok()) {
    EOF_COV(ctx);
    return 0;
  }
  QueuingPort port;
  port.name = args[0].AsString().substr(0, 16);
  port.max_size = max_size;
  port.depth = depth;
  port.is_source = args[3].scalar != 0;
  int64_t handle = state.queuing_ports.Insert(std::move(port));
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(static_cast<uint64_t>(max_size) * depth);
    return 0;
  }
  EOF_COV(ctx);
  return handle;
}

int64_t QueuingSend(KernelContext& ctx, PokState& state,
                    const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  QueuingPort* port = state.queuing_ports.Find(static_cast<int64_t>(args[0].scalar));
  if (port == nullptr || !port->is_source) {
    EOF_COV(ctx);
    return POK_ERRNO_EINVAL;
  }
  const std::vector<uint8_t>& message = args[1].bytes;
  if (message.size() > port->max_size) {
    EOF_COV(ctx);
    return POK_ERRNO_EINVAL;
  }
  if (port->queue.size() >= port->depth) {
    EOF_COV(ctx);
    return POK_ERRNO_FULL;
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, port->queue.size());  // absolute queue depth
  ctx.ConsumeCycles(kCopyPerByteCycles * message.size());
  port->queue.push_back(message);
  return POK_ERRNO_OK;
}

int64_t QueuingReceive(KernelContext& ctx, PokState& state,
                       const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  QueuingPort* port = state.queuing_ports.Find(static_cast<int64_t>(args[0].scalar));
  if (port == nullptr) {
    EOF_COV(ctx);
    return POK_ERRNO_EINVAL;
  }
  if (port->queue.empty()) {
    EOF_COV(ctx);
    return POK_ERRNO_EMPTY;
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, CovSizeClass(port->queue.front().size()) + 12);
  int64_t size = static_cast<int64_t>(port->queue.front().size());
  ctx.ConsumeCycles(kCopyPerByteCycles * static_cast<uint64_t>(size));
  port->queue.pop_front();
  return size;
}

int64_t TimeGet(KernelContext& ctx, PokState& state, const std::vector<ArgValue>& args) {
  (void)args;
  ctx.ConsumeCycles(kApiBaseCycles / 4);
  EOF_COV(ctx);
  return static_cast<int64_t>(state.tick_ms);
}

int64_t TimedWait(KernelContext& ctx, PokState& state, const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t ms = std::min<uint64_t>(args[0].scalar, 100);
  state.tick_ms += ms;
  ctx.ConsumeCycles(ms * kTickCycles / 4);
  return POK_ERRNO_OK;
}

}  // namespace

PokOs::PokOs() {
  PokState* s = &state_;
  Status status = OkStatus();
  auto add = [&](ApiSpec spec, auto fn) {
    if (!status.ok()) {
      return;
    }
    auto result = registry_.Register(
        std::move(spec), [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
          return fn(ctx, *s, args);
        });
    status = result.status();
  };

  {
    ApiSpec spec;
    spec.name = "pok_partition_create";
    spec.subsystem = "kernel";
    spec.doc = "create a spatial/temporal partition";
    spec.args = {ArgSpec::String("name", {"p0", "p1", "fctl"}),
                 ArgSpec::Scalar("memory", 32, 0, 131072),
                 ArgSpec::Scalar("slice_ms", 32, 0, 2000)};
    spec.produces = "pok_partition";
    add(std::move(spec), PartitionCreate);
  }
  {
    ApiSpec spec;
    spec.name = "pok_partition_set_mode";
    spec.subsystem = "kernel";
    spec.doc = "ARINC-653 mode transition (0=idle 1=cold 2=warm 3=normal)";
    spec.args = {ArgSpec::Resource("partition", "pok_partition"),
                 ArgSpec::Flags("mode", {0, 1, 2, 3})};
    add(std::move(spec), PartitionSetMode);
  }
  {
    ApiSpec spec;
    spec.name = "pok_thread_create";
    spec.subsystem = "kernel";
    spec.doc = "create a thread inside a partition (before NORMAL mode)";
    spec.args = {ArgSpec::Resource("partition", "pok_partition"),
                 ArgSpec::Scalar("priority", 32, 0, 300),
                 ArgSpec::Scalar("period_ms", 32, 0, 1000)};
    spec.produces = "pok_thread";
    add(std::move(spec), ThreadCreate);
  }
  {
    ApiSpec spec;
    spec.name = "pok_thread_start";
    spec.subsystem = "kernel";
    spec.doc = "start a thread (partition must be NORMAL)";
    spec.args = {ArgSpec::Resource("thread", "pok_thread")};
    add(std::move(spec), ThreadStart);
  }
  {
    ApiSpec spec;
    spec.name = "pok_sampling_port_create";
    spec.subsystem = "port";
    spec.doc = "create a sampling port";
    spec.args = {ArgSpec::String("name", {"sp0", "sp1"}),
                 ArgSpec::Scalar("max_size", 32, 0, 2048),
                 ArgSpec::Scalar("is_source", 8, 0, 1),
                 ArgSpec::Scalar("validity_ms", 32, 0, 1000)};
    spec.produces = "pok_sport";
    add(std::move(spec), SamplingCreate);
  }
  {
    ApiSpec spec;
    spec.name = "pok_sampling_port_write";
    spec.subsystem = "port";
    spec.doc = "publish a sample";
    spec.args = {ArgSpec::Resource("port", "pok_sport"), ArgSpec::Buffer("msg", 0, 1024)};
    add(std::move(spec), SamplingWrite);
  }
  {
    ApiSpec spec;
    spec.name = "pok_sampling_port_read";
    spec.subsystem = "port";
    spec.doc = "read the latest sample with validity";
    spec.args = {ArgSpec::Resource("port", "pok_sport")};
    add(std::move(spec), SamplingRead);
  }
  {
    ApiSpec spec;
    spec.name = "pok_queuing_port_create";
    spec.subsystem = "port";
    spec.doc = "create a queuing port";
    spec.args = {ArgSpec::String("name", {"qp0", "qp1"}),
                 ArgSpec::Scalar("max_size", 32, 0, 2048),
                 ArgSpec::Scalar("depth", 32, 0, 64), ArgSpec::Scalar("is_source", 8, 0, 1)};
    spec.produces = "pok_qport";
    add(std::move(spec), QueuingCreate);
  }
  {
    ApiSpec spec;
    spec.name = "pok_queuing_port_send";
    spec.subsystem = "port";
    spec.doc = "enqueue a message";
    spec.args = {ArgSpec::Resource("port", "pok_qport"), ArgSpec::Buffer("msg", 0, 1024)};
    add(std::move(spec), QueuingSend);
  }
  {
    ApiSpec spec;
    spec.name = "pok_queuing_port_receive";
    spec.subsystem = "port";
    spec.doc = "dequeue a message";
    spec.args = {ArgSpec::Resource("port", "pok_qport")};
    add(std::move(spec), QueuingReceive);
  }
  {
    ApiSpec spec;
    spec.name = "pok_time_get";
    spec.subsystem = "kernel";
    spec.doc = "milliseconds since boot";
    add(std::move(spec), TimeGet);
  }
  {
    ApiSpec spec;
    spec.name = "pok_thread_sleep";
    spec.subsystem = "kernel";
    spec.doc = "sleep the calling thread";
    spec.args = {ArgSpec::Scalar("ms", 32, 0, 1000)};
    add(std::move(spec), TimedWait);
  }
  EOF_CHECK(status.ok()) << "PoKOS API registration failed: " << status.ToString();
}

Status PokOs::Init(KernelContext& ctx) {
  EOF_COV(ctx);
  ctx.ConsumeCycles(kApiBaseCycles * 4);
  ctx.LogLine("POK kernel (EOF sim) initialising on " + ctx.env().spec().name);
  return OkStatus();
}

OsFootprint PokOs::footprint() const {
  OsFootprint footprint;
  footprint.base_image_bytes = 1400 * 1024;
  footprint.edge_sites = 5200;
  return footprint;
}

std::vector<std::pair<std::string, uint64_t>> PokOs::modules() const {
  return {{"pokos/kernel", 2048}};
}

void PokOs::Tick(KernelContext& ctx) {
  ++state_.tick_ms;
  ctx.ConsumeCycles(kTickCycles);
}

Status RegisterPokOs() {
  OsInfo info;
  info.name = "pokos";
  info.factory = [] { return std::make_unique<PokOs>(); };
  info.supported_archs = {Arch::kArm, Arch::kRiscV};
  info.default_board = "hifive1-revb";
  info.description = "POK-like ARINC-653 kernel: partitions, sampling/queuing ports, "
                     "partition-scoped threads";
  return OsRegistry::Instance().Register(std::move(info));
}

}  // namespace pokos
}  // namespace eof
