// The POK-like target OS ("PoKOS"): an ARINC-653-flavoured partitioned kernel — the
// target GUSTAVE fuzzes in the paper's evaluation. Spatial/temporal partitions, intra-
// partition threads, and sampling/queuing ports for inter-partition communication.

#ifndef SRC_OS_POKOS_POKOS_H_
#define SRC_OS_POKOS_POKOS_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/kernel/handle_table.h"
#include "src/kernel/os.h"

namespace eof {
namespace pokos {

// POK return codes.
inline constexpr int64_t POK_ERRNO_OK = 0;
inline constexpr int64_t POK_ERRNO_EINVAL = 1;
inline constexpr int64_t POK_ERRNO_TOOMANY = 5;
inline constexpr int64_t POK_ERRNO_UNAVAILABLE = 2;
inline constexpr int64_t POK_ERRNO_EMPTY = 3;
inline constexpr int64_t POK_ERRNO_FULL = 4;
inline constexpr int64_t POK_ERRNO_MODE = 8;

enum class PartitionMode : uint8_t { kIdle = 0, kColdStart = 1, kWarmStart = 2, kNormal = 3 };

struct PokPartition {
  std::string name;
  uint64_t memory_bytes = 0;
  uint64_t time_slice_ms = 0;
  PartitionMode mode = PartitionMode::kColdStart;
  uint32_t thread_count = 0;
};

struct PokThread {
  int64_t partition = 0;
  uint32_t priority = 0;
  uint64_t period_ms = 0;
  bool started = false;
};

struct SamplingPort {
  std::string name;
  uint32_t max_size = 0;
  bool is_source = false;
  std::vector<uint8_t> last_message;
  uint64_t last_write_tick = 0;
  uint64_t validity_ms = 0;
};

struct QueuingPort {
  std::string name;
  uint32_t max_size = 0;
  uint32_t depth = 0;
  bool is_source = false;
  std::deque<std::vector<uint8_t>> queue;
};

struct PokState {
  HandleTable<PokPartition> partitions{8};
  HandleTable<PokThread> threads{32};
  HandleTable<SamplingPort> sampling_ports{16};
  HandleTable<QueuingPort> queuing_ports{16};
  uint64_t tick_ms = 0;
};

class PokOs : public Os {
 public:
  PokOs();

  const std::string& name() const override { return name_; }
  const ApiRegistry& registry() const override { return registry_; }
  Status Init(KernelContext& ctx) override;
  std::string exception_symbol() const override { return "pok_fatal"; }
  OsFootprint footprint() const override;
  std::vector<std::pair<std::string, uint64_t>> modules() const override;
  void Tick(KernelContext& ctx) override;

  PokState& state_for_test() { return state_; }

 private:
  std::string name_ = "pokos";
  PokState state_;
  ApiRegistry registry_;
};

Status RegisterPokOs();

}  // namespace pokos
}  // namespace eof

#endif  // SRC_OS_POKOS_POKOS_H_
