// IPC: events, semaphores, mailboxes (ipc.c semantics).
//
// ── Bug #10 (Table 2): RT-Thread / IPC / Kernel Panic / rt_event_send() ──
// rt_event_recv with RT_EVENT_FLAG_CLEAR queues a waiter record. rt_event_send walks the
// waiter list resuming every satisfied waiter; when one send satisfies three or more
// waiters at once, the resume loop unlinks a node it already unlinked and follows a freed
// pointer — a kernel panic. Needs an armed three-deep waiter list, i.e. a call sequence a
// random generator virtually never stacks up, but a coverage-guided one climbs via the
// waiter-count edges. The waiter timeout machinery runs off the hardware timer, so the
// arming path is closed on emulated boards.

#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/rtthread/apis.h"

namespace eof {
namespace rtthread {
namespace {

EOF_COV_MODULE("rtthread/ipc");

constexpr uint8_t RT_EVENT_FLAG_AND = 0x01;
constexpr uint8_t RT_EVENT_FLAG_OR = 0x02;
constexpr uint8_t RT_EVENT_FLAG_CLEAR = 0x04;

int64_t MakeIpcObject(KernelContext& ctx, RtThreadState& state, ObjectClass type,
                      const std::string& name) {
  RtObject object;
  object.name = name.substr(0, 8);
  object.type = type;
  int64_t handle = state.objects.Insert(std::move(object));
  if (handle == 0) {
    EOF_COV(ctx);
  }
  return handle;
}

int64_t EventCreate(KernelContext& ctx, RtThreadState& state,
                    const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  if (!ctx.ReserveRam(64).ok()) {
    EOF_COV(ctx);
    return 0;
  }
  Event event;
  event.object = MakeIpcObject(ctx, state, ObjectClass::kEvent, args[0].AsString());
  int64_t handle = state.events.Insert(std::move(event));
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(64);
  }
  return handle;
}

int64_t EventSend(KernelContext& ctx, RtThreadState& state,
                  const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Event* event = state.events.Find(static_cast<int64_t>(args[0].scalar));
  if (event == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  uint32_t set = static_cast<uint32_t>(args[1].scalar);
  if (set == 0) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  event->set |= set;
  // Walk the waiter list, resuming satisfied waiters.
  uint32_t resumed = 0;
  for (size_t i = 0; i < event->waiters.size();) {
    ctx.ConsumeCycles(kListOpCycles * 2);
    const Event::Waiter& waiter = event->waiters[i];
    bool satisfied = (waiter.option & RT_EVENT_FLAG_AND) != 0
                         ? (event->set & waiter.pattern) == waiter.pattern
                         : (event->set & waiter.pattern) != 0;
    if (!satisfied) {
      ++i;
      continue;
    }
    EOF_COV(ctx);
    ++resumed;
    if (resumed == 2) {
      EOF_COV(ctx);  // double-resume path: second unlink in one pass
    }
    if (resumed >= 3) {
      EOF_COV(ctx);
      // BUG #10: the third unlink in a single send pass follows a node freed by the
      // second one.
      ctx.Panic("BUG: kernel panic - rt_event_send: resumed thread list corrupt",
                "Stack frames at BUG:\n"
                " Level 1: ipc.c : rt_event_send : 1203\n"
                " Level 2: agent : execute_one");
    }
    if ((waiter.option & RT_EVENT_FLAG_CLEAR) != 0) {
      event->set &= ~waiter.pattern;
    }
    event->waiters.erase(event->waiters.begin() + static_cast<std::ptrdiff_t>(i));
    ctx.ConsumeCycles(kContextSwitchCycles);
  }
  return RT_EOK;
}

int64_t EventRecv(KernelContext& ctx, RtThreadState& state,
                  const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Event* event = state.events.Find(static_cast<int64_t>(args[0].scalar));
  if (event == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  uint32_t pattern = static_cast<uint32_t>(args[1].scalar);
  uint8_t option = static_cast<uint8_t>(args[2].scalar);
  if (pattern == 0) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  if ((option & (RT_EVENT_FLAG_AND | RT_EVENT_FLAG_OR)) == 0) {
    EOF_COV(ctx);
    return RT_EINVAL;  // must pick a combine mode
  }
  bool satisfied = (option & RT_EVENT_FLAG_AND) != 0
                       ? (event->set & pattern) == pattern
                       : (event->set & pattern) != 0;
  if (satisfied) {
    EOF_COV(ctx);
    if ((option & RT_EVENT_FLAG_CLEAR) != 0) {
      EOF_COV(ctx);
      event->set &= ~pattern;
    }
    return RT_EOK;
  }
  // Unsatisfied: queue a waiter (the thread would block). Waiter timeouts are programmed
  // on the hardware timer; without one the kernel refuses to arm the waiter.
  if (!ctx.HasPeripheral(Peripheral::kHwTimer)) {
    EOF_COV(ctx);
    return RT_ETIMEOUT;
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, event->waiters.size());
  if (event->waiters.size() == 1) {
    EOF_COV(ctx);  // first -> second waiter transition
  }
  if (event->waiters.size() == 2) {
    EOF_COV(ctx);  // second -> third waiter transition (the staircase to bug #10)
  }
  event->waiters.push_back(Event::Waiter{pattern, option});
  return RT_ETIMEOUT;
}

int64_t EventDelete(KernelContext& ctx, RtThreadState& state,
                    const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  Event* event = state.events.Find(handle);
  if (event == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  EOF_COV(ctx);
  state.objects.Remove(event->object);
  state.events.Remove(handle);
  ctx.ReleaseRam(64);
  return RT_EOK;
}

int64_t SemCreate(KernelContext& ctx, RtThreadState& state,
                  const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint32_t value = static_cast<uint32_t>(args[1].scalar);
  if (value > 65535) {
    EOF_COV(ctx);
    return 0;  // sem value is 16-bit
  }
  if (!ctx.ReserveRam(48).ok()) {
    EOF_COV(ctx);
    return 0;
  }
  Semaphore sem;
  sem.object = MakeIpcObject(ctx, state, ObjectClass::kSemaphore, args[0].AsString());
  sem.value = value;
  int64_t handle = state.semaphores.Insert(std::move(sem));
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(48);
  }
  return handle;
}

int64_t SemTake(KernelContext& ctx, RtThreadState& state,
                const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Semaphore* sem = state.semaphores.Find(static_cast<int64_t>(args[0].scalar));
  if (sem == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  if (sem->value == 0) {
    EOF_COV(ctx);
    return RT_ETIMEOUT;  // zero wait in agent context
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, CovSizeClass(sem->value));
  --sem->value;
  return RT_EOK;
}

int64_t SemRelease(KernelContext& ctx, RtThreadState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Semaphore* sem = state.semaphores.Find(static_cast<int64_t>(args[0].scalar));
  if (sem == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  if (sem->value >= sem->max_value) {
    EOF_COV(ctx);
    return RT_EFULL;
  }
  EOF_COV(ctx);
  ++sem->value;
  return RT_EOK;
}

int64_t SemDelete(KernelContext& ctx, RtThreadState& state,
                  const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  Semaphore* sem = state.semaphores.Find(handle);
  if (sem == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  EOF_COV(ctx);
  state.objects.Remove(sem->object);
  state.semaphores.Remove(handle);
  ctx.ReleaseRam(48);
  return RT_EOK;
}

int64_t MbCreate(KernelContext& ctx, RtThreadState& state,
                 const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint32_t size = static_cast<uint32_t>(args[1].scalar);
  if (size == 0 || size > 256) {
    EOF_COV(ctx);
    return 0;
  }
  if (!ctx.ReserveRam(size * 8 + 48).ok()) {
    EOF_COV(ctx);
    return 0;
  }
  Mailbox mailbox;
  mailbox.object = MakeIpcObject(ctx, state, ObjectClass::kMailBox, args[0].AsString());
  mailbox.capacity = size;
  int64_t handle = state.mailboxes.Insert(std::move(mailbox));
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(size * 8 + 48);
  }
  return handle;
}

int64_t MbSend(KernelContext& ctx, RtThreadState& state,
               const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Mailbox* mailbox = state.mailboxes.Find(static_cast<int64_t>(args[0].scalar));
  if (mailbox == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  if (mailbox->mails.size() >= mailbox->capacity) {
    EOF_COV(ctx);
    return RT_EFULL;
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, mailbox->mails.size());
  mailbox->mails.push_back(args[1].scalar);
  return RT_EOK;
}

int64_t MbRecv(KernelContext& ctx, RtThreadState& state,
               const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Mailbox* mailbox = state.mailboxes.Find(static_cast<int64_t>(args[0].scalar));
  if (mailbox == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  if (mailbox->mails.empty()) {
    EOF_COV(ctx);
    return RT_ETIMEOUT;
  }
  EOF_COV(ctx);
  int64_t value = static_cast<int64_t>(mailbox->mails.front());
  mailbox->mails.pop_front();
  return value;
}

int64_t MqCreate(KernelContext& ctx, RtThreadState& state,
                 const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint32_t msg_size = static_cast<uint32_t>(args[1].scalar);
  uint32_t max_msgs = static_cast<uint32_t>(args[2].scalar);
  if (msg_size == 0 || msg_size > 256) {
    EOF_COV(ctx);
    return 0;
  }
  if (max_msgs == 0 || max_msgs > 32) {
    EOF_COV(ctx);
    return 0;
  }
  if (!ctx.ReserveRam(static_cast<uint64_t>(msg_size + 8) * max_msgs + 64).ok()) {
    EOF_COV(ctx);
    return 0;
  }
  RtMessageQueue queue;
  queue.object = MakeIpcObject(ctx, state, ObjectClass::kMessageQueue, args[0].AsString());
  queue.msg_size = msg_size;
  queue.max_msgs = max_msgs;
  int64_t handle = state.mqueues.Insert(std::move(queue));
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(static_cast<uint64_t>(msg_size + 8) * max_msgs + 64);
  }
  return handle;
}

int64_t MqSend(KernelContext& ctx, RtThreadState& state,
               const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  RtMessageQueue* queue = state.mqueues.Find(static_cast<int64_t>(args[0].scalar));
  if (queue == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  const std::vector<uint8_t>& payload = args[1].bytes;
  if (payload.size() > queue->msg_size) {
    EOF_COV(ctx);
    return RT_ERROR;  // rt_mq_send rejects oversized messages
  }
  if (queue->msgs.size() >= queue->max_msgs) {
    EOF_COV(ctx);
    return RT_EFULL;
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, queue->msgs.size());  // absolute fill depth
  ctx.ConsumeCycles(kCopyPerByteCycles * payload.size());
  queue->msgs.push_back(payload);
  return RT_EOK;
}

int64_t MqUrgent(KernelContext& ctx, RtThreadState& state,
                 const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  RtMessageQueue* queue = state.mqueues.Find(static_cast<int64_t>(args[0].scalar));
  if (queue == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  const std::vector<uint8_t>& payload = args[1].bytes;
  if (payload.size() > queue->msg_size || queue->msgs.size() >= queue->max_msgs) {
    EOF_COV(ctx);
    return RT_EFULL;
  }
  EOF_COV(ctx);
  ctx.ConsumeCycles(kCopyPerByteCycles * payload.size());
  queue->msgs.push_front(payload);  // urgent messages jump the line
  return RT_EOK;
}

int64_t MqRecv(KernelContext& ctx, RtThreadState& state,
               const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  RtMessageQueue* queue = state.mqueues.Find(static_cast<int64_t>(args[0].scalar));
  if (queue == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  if (queue->msgs.empty()) {
    EOF_COV(ctx);
    return RT_ETIMEOUT;
  }
  EOF_COV(ctx);
  int64_t size = static_cast<int64_t>(queue->msgs.front().size());
  ctx.ConsumeCycles(kCopyPerByteCycles * static_cast<uint64_t>(size));
  queue->msgs.pop_front();
  return size;
}

int64_t MqDelete(KernelContext& ctx, RtThreadState& state,
                 const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  RtMessageQueue* queue = state.mqueues.Find(handle);
  if (queue == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  EOF_COV(ctx);
  ctx.ReleaseRam(static_cast<uint64_t>(queue->msg_size + 8) * queue->max_msgs + 64);
  state.objects.Remove(queue->object);
  state.mqueues.Remove(handle);
  return RT_EOK;
}

}  // namespace

Status RegisterIpcApis(ApiRegistry& registry, RtThreadState& state) {
  RtThreadState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "rt_event_create";
    spec.subsystem = "ipc";
    spec.doc = "create an event object";
    spec.args = {ArgSpec::String("name", {"evt0", "evt1"})};
    spec.produces = "rt_event";
    RETURN_IF_ERROR(add(std::move(spec), EventCreate));
  }
  {
    ApiSpec spec;
    spec.name = "rt_event_send";
    spec.subsystem = "ipc";
    spec.doc = "set event bits and resume satisfied waiters";
    spec.args = {ArgSpec::Resource("event", "rt_event"),
                 ArgSpec::Scalar("set", 32, 0, UINT32_MAX)};
    RETURN_IF_ERROR(add(std::move(spec), EventSend));
  }
  {
    ApiSpec spec;
    spec.name = "rt_event_recv";
    spec.subsystem = "ipc";
    spec.doc = "receive event bits (AND=1/OR=2 | CLEAR=4 options)";
    spec.args = {ArgSpec::Resource("event", "rt_event"),
                 ArgSpec::Scalar("pattern", 32, 0, UINT32_MAX),
                 ArgSpec::Flags("option", {1, 2, 3, 5, 6, 7}, /*combinable=*/false)};
    RETURN_IF_ERROR(add(std::move(spec), EventRecv));
  }
  {
    ApiSpec spec;
    spec.name = "rt_event_delete";
    spec.subsystem = "ipc";
    spec.doc = "destroy an event object";
    spec.args = {ArgSpec::Resource("event", "rt_event")};
    RETURN_IF_ERROR(add(std::move(spec), EventDelete));
  }
  {
    ApiSpec spec;
    spec.name = "rt_sem_create";
    spec.subsystem = "ipc";
    spec.doc = "create a semaphore";
    spec.args = {ArgSpec::String("name", {"sem0", "sem1"}),
                 ArgSpec::Scalar("value", 32, 0, 70000)};
    spec.produces = "rt_sem";
    RETURN_IF_ERROR(add(std::move(spec), SemCreate));
  }
  {
    ApiSpec spec;
    spec.name = "rt_sem_take";
    spec.subsystem = "ipc";
    spec.doc = "take a semaphore (zero wait)";
    spec.args = {ArgSpec::Resource("sem", "rt_sem")};
    RETURN_IF_ERROR(add(std::move(spec), SemTake));
  }
  {
    ApiSpec spec;
    spec.name = "rt_sem_release";
    spec.subsystem = "ipc";
    spec.doc = "release a semaphore";
    spec.args = {ArgSpec::Resource("sem", "rt_sem")};
    RETURN_IF_ERROR(add(std::move(spec), SemRelease));
  }
  {
    ApiSpec spec;
    spec.name = "rt_sem_delete";
    spec.subsystem = "ipc";
    spec.doc = "destroy a semaphore";
    spec.args = {ArgSpec::Resource("sem", "rt_sem")};
    RETURN_IF_ERROR(add(std::move(spec), SemDelete));
  }
  {
    ApiSpec spec;
    spec.name = "rt_mq_create";
    spec.subsystem = "ipc";
    spec.doc = "create a message queue (msg size, depth)";
    spec.args = {ArgSpec::String("name", {"mq0", "mq1"}),
                 ArgSpec::Scalar("msg_size", 32, 0, 512),
                 ArgSpec::Scalar("max_msgs", 32, 0, 64)};
    spec.produces = "rt_mq";
    RETURN_IF_ERROR(add(std::move(spec), MqCreate));
  }
  {
    ApiSpec spec;
    spec.name = "rt_mq_send";
    spec.subsystem = "ipc";
    spec.doc = "enqueue a message";
    spec.args = {ArgSpec::Resource("mq", "rt_mq"), ArgSpec::Buffer("msg", 0, 256)};
    RETURN_IF_ERROR(add(std::move(spec), MqSend));
  }
  {
    ApiSpec spec;
    spec.name = "rt_mq_urgent";
    spec.subsystem = "ipc";
    spec.doc = "enqueue a message at the head";
    spec.args = {ArgSpec::Resource("mq", "rt_mq"), ArgSpec::Buffer("msg", 0, 256)};
    RETURN_IF_ERROR(add(std::move(spec), MqUrgent));
  }
  {
    ApiSpec spec;
    spec.name = "rt_mq_recv";
    spec.subsystem = "ipc";
    spec.doc = "dequeue a message (zero wait)";
    spec.args = {ArgSpec::Resource("mq", "rt_mq")};
    RETURN_IF_ERROR(add(std::move(spec), MqRecv));
  }
  {
    ApiSpec spec;
    spec.name = "rt_mq_delete";
    spec.subsystem = "ipc";
    spec.doc = "destroy a message queue";
    spec.args = {ArgSpec::Resource("mq", "rt_mq")};
    RETURN_IF_ERROR(add(std::move(spec), MqDelete));
  }
  {
    ApiSpec spec;
    spec.name = "rt_mb_create";
    spec.subsystem = "ipc";
    spec.doc = "create a mailbox of N 64-bit mails";
    spec.args = {ArgSpec::String("name", {"mb0", "mb1"}), ArgSpec::Scalar("size", 32, 0, 512)};
    spec.produces = "rt_mailbox";
    RETURN_IF_ERROR(add(std::move(spec), MbCreate));
  }
  {
    ApiSpec spec;
    spec.name = "rt_mb_send";
    spec.subsystem = "ipc";
    spec.doc = "post a mail";
    spec.args = {ArgSpec::Resource("mb", "rt_mailbox"),
                 ArgSpec::Scalar("value", 64, 0, UINT64_MAX)};
    RETURN_IF_ERROR(add(std::move(spec), MbSend));
  }
  {
    ApiSpec spec;
    spec.name = "rt_mb_recv";
    spec.subsystem = "ipc";
    spec.doc = "fetch a mail (zero wait)";
    spec.args = {ArgSpec::Resource("mb", "rt_mailbox")};
    RETURN_IF_ERROR(add(std::move(spec), MbRecv));
  }
  return OkStatus();
}

}  // namespace rtthread
}  // namespace eof
