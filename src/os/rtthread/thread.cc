// Thread management (thread.c): create/startup/delay/suspend/resume/delete.

#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/rtthread/apis.h"

namespace eof {
namespace rtthread {
namespace {

EOF_COV_MODULE("rtthread/thread");

constexpr uint32_t RT_THREAD_PRIORITY_MAX = 32;

int64_t ThreadCreate(KernelContext& ctx, RtThreadState& state,
                     const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint32_t stack_size = static_cast<uint32_t>(args[1].scalar);
  uint32_t priority = static_cast<uint32_t>(args[2].scalar);
  uint32_t tick = static_cast<uint32_t>(args[3].scalar);
  if (stack_size < 256) {
    EOF_COV(ctx);
    return 0;
  }
  if (priority >= RT_THREAD_PRIORITY_MAX) {
    EOF_COV(ctx);
    return 0;  // rt_thread_create rejects out-of-range priorities
  }
  if (tick == 0) {
    EOF_COV(ctx);
    return 0;
  }
  if (!ctx.ReserveRam(stack_size + 160).ok()) {
    EOF_COV(ctx);
    return 0;
  }
  RtObject object;
  object.name = args[0].AsString().substr(0, 8);
  object.type = ObjectClass::kThread;
  Thread thread;
  thread.object = state.objects.Insert(std::move(object));
  thread.priority = priority;
  thread.stack_size = stack_size;
  thread.tick_slice = tick;
  EOF_COV_BUCKET(ctx, state.threads.live());
  EOF_COV_BUCKET(ctx, priority / 3 + 12);
  int64_t handle = state.threads.Insert(std::move(thread));
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(stack_size + 160);
  }
  return handle;
}

int64_t ThreadStartup(KernelContext& ctx, RtThreadState& state,
                      const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Thread* thread = state.threads.Find(static_cast<int64_t>(args[0].scalar));
  if (thread == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  if (thread->started) {
    EOF_COV(ctx);
    return RT_ERROR;
  }
  EOF_COV(ctx);
  thread->started = true;
  ctx.ConsumeCycles(kContextSwitchCycles);
  return RT_EOK;
}

int64_t ThreadDelay(KernelContext& ctx, RtThreadState& state,
                    const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t ticks = args[0].scalar;
  if (ticks > 500) {
    EOF_COV(ctx);
    ticks = 500;
  }
  state.tick += ticks;
  ctx.ConsumeCycles(ticks * kTickCycles / 10);
  return RT_EOK;
}

int64_t ThreadSuspend(KernelContext& ctx, RtThreadState& state,
                      const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Thread* thread = state.threads.Find(static_cast<int64_t>(args[0].scalar));
  if (thread == nullptr || !thread->started) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  if (thread->suspended) {
    EOF_COV(ctx);
    return RT_ERROR;
  }
  EOF_COV(ctx);
  thread->suspended = true;
  ctx.ConsumeCycles(kContextSwitchCycles);
  return RT_EOK;
}

int64_t ThreadResume(KernelContext& ctx, RtThreadState& state,
                     const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Thread* thread = state.threads.Find(static_cast<int64_t>(args[0].scalar));
  if (thread == nullptr || !thread->suspended) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  EOF_COV(ctx);
  thread->suspended = false;
  ctx.ConsumeCycles(kContextSwitchCycles);
  return RT_EOK;
}

int64_t ThreadDelete(KernelContext& ctx, RtThreadState& state,
                     const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  Thread* thread = state.threads.Find(handle);
  if (thread == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  EOF_COV(ctx);
  ctx.ReleaseRam(thread->stack_size + 160);
  state.objects.Remove(thread->object);
  state.threads.Remove(handle);
  ctx.ConsumeCycles(kContextSwitchCycles);
  return RT_EOK;
}

}  // namespace

Status RegisterThreadApis(ApiRegistry& registry, RtThreadState& state) {
  RtThreadState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "rt_thread_create";
    spec.subsystem = "thread";
    spec.doc = "create a thread (name, stack bytes, priority, tick slice)";
    spec.args = {ArgSpec::String("name", {"thr0", "thr1"}),
                 ArgSpec::Scalar("stack_size", 32, 0, 8192),
                 ArgSpec::Scalar("priority", 8, 0, 40), ArgSpec::Scalar("tick", 8, 0, 100)};
    spec.produces = "rt_thread";
    RETURN_IF_ERROR(add(std::move(spec), ThreadCreate));
  }
  {
    ApiSpec spec;
    spec.name = "rt_thread_startup";
    spec.subsystem = "thread";
    spec.doc = "start a created thread";
    spec.args = {ArgSpec::Resource("thread", "rt_thread")};
    RETURN_IF_ERROR(add(std::move(spec), ThreadStartup));
  }
  {
    ApiSpec spec;
    spec.name = "rt_thread_delay";
    spec.subsystem = "thread";
    spec.doc = "sleep the calling thread for N ticks";
    spec.args = {ArgSpec::Scalar("ticks", 32, 0, 1000)};
    RETURN_IF_ERROR(add(std::move(spec), ThreadDelay));
  }
  {
    ApiSpec spec;
    spec.name = "rt_thread_suspend";
    spec.subsystem = "thread";
    spec.doc = "suspend a started thread";
    spec.args = {ArgSpec::Resource("thread", "rt_thread")};
    RETURN_IF_ERROR(add(std::move(spec), ThreadSuspend));
  }
  {
    ApiSpec spec;
    spec.name = "rt_thread_resume";
    spec.subsystem = "thread";
    spec.doc = "resume a suspended thread";
    spec.args = {ArgSpec::Resource("thread", "rt_thread")};
    RETURN_IF_ERROR(add(std::move(spec), ThreadResume));
  }
  {
    ApiSpec spec;
    spec.name = "rt_thread_delete";
    spec.subsystem = "thread";
    spec.doc = "destroy a thread";
    spec.args = {ArgSpec::Resource("thread", "rt_thread")};
    RETURN_IF_ERROR(add(std::move(spec), ThreadDelete));
  }
  return OkStatus();
}

}  // namespace rtthread
}  // namespace eof
