// Per-subsystem registration hooks for the RT-Thread-like kernel.

#ifndef SRC_OS_RTTHREAD_APIS_H_
#define SRC_OS_RTTHREAD_APIS_H_

#include "src/common/status.h"
#include "src/kernel/api.h"
#include "src/os/rtthread/state.h"

namespace eof {
namespace rtthread {

Status RegisterObjectApis(ApiRegistry& registry, RtThreadState& state);
Status RegisterThreadApis(ApiRegistry& registry, RtThreadState& state);
Status RegisterIpcApis(ApiRegistry& registry, RtThreadState& state);
Status RegisterMemPoolApis(ApiRegistry& registry, RtThreadState& state);
Status RegisterSmemApis(ApiRegistry& registry, RtThreadState& state);
Status RegisterHeapApis(ApiRegistry& registry, RtThreadState& state);
Status RegisterDeviceApis(ApiRegistry& registry, RtThreadState& state);
Status RegisterServiceApis(ApiRegistry& registry, RtThreadState& state);
Status RegisterSocketApis(ApiRegistry& registry, RtThreadState& state);

// Console output path: rt_kprintf -> _kputs -> rt_device_write -> rt_serial_write.
// Exposed to the socket layer, whose logging rides this path (Figure 6 / bug #12).
void RtKprintf(KernelContext& ctx, RtThreadState& state, const std::string& line);

// Boot-time device table population (uart0/uart1, pin device).
void DevicesInit(KernelContext& ctx, RtThreadState& state);

}  // namespace rtthread
}  // namespace eof

#endif  // SRC_OS_RTTHREAD_APIS_H_
