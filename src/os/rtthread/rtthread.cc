#include "src/os/rtthread/rtthread.h"

#include "src/common/logging.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/rtthread/apis.h"

namespace eof {
namespace rtthread {
namespace {

EOF_COV_MODULE("rtthread/kernel");

}  // namespace

RtThreadOs::RtThreadOs() {
  Status status = OkStatus();
  auto accumulate = [&status](Status step) {
    if (status.ok() && !step.ok()) {
      status = step;
    }
  };
  accumulate(RegisterObjectApis(registry_, state_));
  accumulate(RegisterThreadApis(registry_, state_));
  accumulate(RegisterIpcApis(registry_, state_));
  accumulate(RegisterMemPoolApis(registry_, state_));
  accumulate(RegisterSmemApis(registry_, state_));
  accumulate(RegisterHeapApis(registry_, state_));
  accumulate(RegisterDeviceApis(registry_, state_));
  accumulate(RegisterServiceApis(registry_, state_));
  accumulate(RegisterSocketApis(registry_, state_));
  EOF_CHECK(status.ok()) << "RT-Thread API registration failed: " << status.ToString();
}

Status RtThreadOs::Init(KernelContext& ctx) {
  EOF_COV(ctx);
  ctx.ConsumeCycles(kApiBaseCycles * 4);
  DevicesInit(ctx, state_);
  ctx.LogLine(" \\ | /");
  ctx.LogLine("- RT -     Thread Operating System (EOF sim)");
  ctx.LogLine(" / | \\     5.1.0 build " + ctx.env().spec().name);
  return OkStatus();
}

OsFootprint RtThreadOs::footprint() const {
  // §5.5.1: 2.53 MB -> 2.71 MB with instrumentation (+7.11%).
  OsFootprint footprint;
  footprint.base_image_bytes = 2530 * 1024;
  footprint.edge_sites = 10200;
  return footprint;
}

std::vector<std::pair<std::string, uint64_t>> RtThreadOs::modules() const {
  return {
      {"rtthread/kernel", 256},  {"rtthread/object", 768}, {"rtthread/thread", 768},
      {"rtthread/ipc", 1280},    {"rtthread/mempool", 640}, {"rtthread/memory", 1024},
      {"rtthread/serial", 896},  {"rtthread/service", 512}, {"rtthread/socket", 896},
  };
}

void RtThreadOs::OnPeripheralEvent(KernelContext& ctx, const PeripheralEvent& event) {
  ctx.ConsumeCycles(kContextSwitchCycles);
  switch (event.kind) {
    case PeripheralEventKind::kSerialRx: {
      if (!ctx.HasPeripheral(Peripheral::kUartHw)) {
        return;
      }
      EOF_COV(ctx);
      if (state_.serial_rx_ring.size() >= 32) {
        EOF_COV(ctx);
        ++state_.serial_rx_overruns;
        return;
      }
      state_.serial_rx_ring.push_back(static_cast<uint8_t>(event.value));
      EOF_COV_BUCKET(ctx, state_.serial_rx_ring.size() / 2);
      return;
    }
    case PeripheralEventKind::kCanFrame: {
      if (!ctx.HasPeripheral(Peripheral::kCan)) {
        EOF_COV(ctx);
        return;
      }
      EOF_COV(ctx);
      ++state_.can_frames_seen;
      EOF_COV_BUCKET(ctx, (event.value >> 4) & 0xf);  // filter-bank row
      return;
    }
    case PeripheralEventKind::kGpioEdge: {
      if (!ctx.HasPeripheral(Peripheral::kGpio)) {
        return;
      }
      EOF_COV(ctx);
      ++state_.gpio_service_kicks;
      EOF_COV_BUCKET(ctx, event.value & 0x7);
      return;
    }
    default:
      EOF_COV(ctx);
      return;
  }
}

void RtThreadOs::Tick(KernelContext& ctx) {
  ++state_.tick;
  ctx.ConsumeCycles(kTickCycles);
}

Status RegisterRtThreadOs() {
  OsInfo info;
  info.name = "rtthread";
  info.factory = [] { return std::make_unique<RtThreadOs>(); };
  info.supported_archs = {Arch::kArm, Arch::kRiscV};
  info.default_board = "stm32h745-nucleo";
  info.description = "RT-Thread-like kernel: object registry, threads, IPC, memory pools, "
                     "small-memory allocator, device framework with serial console, SAL "
                     "sockets, background services";
  return OsRegistry::Instance().Register(std::move(info));
}

}  // namespace rtthread
}  // namespace eof
