// Kernel state of the RT-Thread-like target. RT-Thread structures everything around a
// central object registry (rt_object), with IPC, memory pools, the small-memory allocator,
// the device framework, and the SAL socket layer on top.

#ifndef SRC_OS_RTTHREAD_STATE_H_
#define SRC_OS_RTTHREAD_STATE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/kernel/handle_table.h"

namespace eof {
namespace rtthread {

// RT-Thread error codes (rtdef.h).
inline constexpr int64_t RT_EOK = 0;
inline constexpr int64_t RT_ERROR = -1;
inline constexpr int64_t RT_ETIMEOUT = -2;
inline constexpr int64_t RT_EFULL = -3;
inline constexpr int64_t RT_EEMPTY = -4;
inline constexpr int64_t RT_ENOMEM = -5;
inline constexpr int64_t RT_EINVAL = -10;

// rt_object_class_type.
enum class ObjectClass : uint8_t {
  kNull = 0,
  kThread = 1,
  kSemaphore = 2,
  kMutex = 3,
  kEvent = 4,
  kMailBox = 5,
  kMessageQueue = 6,
  kMemPool = 7,
  kDevice = 8,
  kTimer = 9,
};

struct RtObject {
  std::string name;  // max 8 chars, RT_NAME_MAX
  ObjectClass type = ObjectClass::kNull;
  bool is_static = false;
  bool detached = false;
};

struct Thread {
  int64_t object = 0;  // handle into objects
  uint32_t priority = 10;
  uint32_t stack_size = 1024;
  uint32_t tick_slice = 10;
  bool started = false;
  bool suspended = false;
};

struct Event {
  int64_t object = 0;
  uint32_t set = 0;
  struct Waiter {
    uint32_t pattern = 0;
    uint8_t option = 0;
  };
  std::vector<Waiter> waiters;
};

struct Semaphore {
  int64_t object = 0;
  uint32_t value = 0;
  uint32_t max_value = 65535;
};

struct Mailbox {
  int64_t object = 0;
  uint32_t capacity = 0;
  std::deque<uint64_t> mails;
};

struct RtMessageQueue {
  int64_t object = 0;
  uint32_t msg_size = 0;
  uint32_t max_msgs = 0;
  std::deque<std::vector<uint8_t>> msgs;
};

struct MemPool {
  int64_t object = 0;
  uint32_t block_size = 0;
  uint32_t block_count = 0;
  uint32_t used = 0;
};

// rt_smem small-memory heap instance.
struct SmemBlock {
  uint64_t offset = 0;
  uint64_t size = 0;
  bool used = false;
};

struct Smem {
  int64_t object = 0;
  std::string name;
  uint64_t total = 0;
  uint64_t used_bytes = 0;
  std::vector<SmemBlock> blocks;
};

// Device framework node. Serial devices carry extra state.
struct Device {
  int64_t object = 0;
  std::string name;
  uint8_t device_class = 0;  // RT_Device_Class_Char = 0, _Serial-ish marker below
  bool is_serial = false;
  bool registered = true;
  bool opened = false;
  uint16_t open_flag = 0;
  uint32_t tx_count = 0;  // writes since open (fills the poll-tx buffer)
};

// "RTService" background service registry (the rt_list surface of bug #6).
struct ServiceNode {
  std::string name;
  bool registered = false;
  bool ever_registered = false;
};

struct Socket {
  int domain = 0;
  int type = 0;
  int protocol = 0;
  bool bound = false;
  bool connected = false;
};

struct RtThreadState {
  HandleTable<RtObject> objects{256};
  HandleTable<Thread> threads{64};
  HandleTable<Event> events{64};
  HandleTable<Semaphore> semaphores{64};
  HandleTable<Mailbox> mailboxes{64};
  HandleTable<RtMessageQueue> mqueues{32};
  HandleTable<MemPool> mempools{32};
  HandleTable<Smem> smems{16};
  HandleTable<uint64_t> smem_allocs{256};  // handle -> (smem_handle << 32 | block index)
  HandleTable<Socket> sockets{32};

  // Devices are indexed by slot without generation so stale handles alias recycled slots —
  // the substrate of bug #12.
  std::vector<Device> devices;

  std::vector<ServiceNode> services;
  bool service_list_corrupt = false;
  uint32_t services_ever = 0;

  // Main heap (rt_malloc) bookkeeping.
  uint64_t heap_total = 8 * 1024;
  uint64_t heap_used = 0;
  uint32_t heap_lock_nest = 0;

  // Console: index into devices of the current console device, -1 when unset.
  int console_device = -1;
  // Set when rt_console_set_device() re-targeted the console after boot — the re-target
  // path skips the teardown hook registration, the precondition of bug #12.
  bool console_retargeted = false;

  uint64_t tick = 0;

  // ISR-side state (peripheral event injection, the §6 extension).
  std::deque<uint8_t> serial_rx_ring;  // console RX; capacity 32
  uint32_t serial_rx_overruns = 0;
  uint32_t can_frames_seen = 0;
  uint32_t gpio_service_kicks = 0;
};

}  // namespace rtthread
}  // namespace eof

#endif  // SRC_OS_RTTHREAD_STATE_H_
