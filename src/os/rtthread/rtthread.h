// The RT-Thread-like target OS (paper target #2; 8 of the 19 Table-2 bugs live here).

#ifndef SRC_OS_RTTHREAD_RTTHREAD_H_
#define SRC_OS_RTTHREAD_RTTHREAD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/kernel/os.h"
#include "src/os/rtthread/state.h"

namespace eof {
namespace rtthread {

class RtThreadOs : public Os {
 public:
  RtThreadOs();

  const std::string& name() const override { return name_; }
  const ApiRegistry& registry() const override { return registry_; }
  Status Init(KernelContext& ctx) override;
  std::string exception_symbol() const override { return "common_exception"; }
  OsFootprint footprint() const override;
  std::vector<std::pair<std::string, uint64_t>> modules() const override;
  void Tick(KernelContext& ctx) override;
  void OnPeripheralEvent(KernelContext& ctx, const PeripheralEvent& event) override;

  RtThreadState& state_for_test() { return state_; }

 private:
  std::string name_ = "rtthread";
  RtThreadState state_;
  ApiRegistry registry_;
};

Status RegisterRtThreadOs();

}  // namespace rtthread
}  // namespace eof

#endif  // SRC_OS_RTTHREAD_RTTHREAD_H_
