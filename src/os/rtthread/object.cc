// The rt_object registry: every kernel object carries a name and class type, and the
// registry APIs operate on raw object pointers with RT_ASSERT-style checking.
//
// ── Bug #5 (Table 2): RT-Thread / Kernel / Kernel Assertion / rt_object_get_type() ──
// rt_object_get_type(RT_NULL) fires RT_ASSERT(object != RT_NULL); the assertion prints on
// the console and the core parks in the abort loop. Detected by the log monitor.
//
// ── Bug #8 (Table 2): RT-Thread / Kernel / Kernel Assertion / rt_object_init() ──
// Statically initialising an object whose name already exists in the same class container
// fires RT_ASSERT(object != iter_object) in the duplicate scan — again console text plus a
// parked core, caught by the log monitor.

#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/rtthread/apis.h"

namespace eof {
namespace rtthread {
namespace {

EOF_COV_MODULE("rtthread/object");

constexpr size_t RT_NAME_MAX = 8;

int64_t ObjectInit(KernelContext& ctx, RtThreadState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t type_value = args[0].scalar;
  std::string name = args[1].AsString().substr(0, RT_NAME_MAX);
  if (type_value == 0 || type_value > 9) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  ObjectClass type = static_cast<ObjectClass>(type_value);
  // Duplicate scan over the class container.
  int64_t duplicate = 0;
  uint64_t live_of_type = 0;
  state.objects.ForEach([&](int64_t handle, RtObject& object) {
    ctx.ConsumeCycles(kListOpCycles);
    if (object.detached || object.type != type) {
      return;
    }
    ++live_of_type;
    if (object.name == name) {
      duplicate = handle;
    }
  });
  if (duplicate != 0 && live_of_type >= 6) {
    // The duplicate check walks chunked container rows; with six or more live objects the
    // scan crosses a chunk boundary and the assert reads the duplicate from a stale row.
    EOF_COV(ctx);
    // BUG #8: rt_object_init on a name already present in the class container.
    ctx.AssertFail(StrFormat("(object != object_find(\"%s\")) assertion failed at "
                             "rt_object_init:342",
                             name.c_str()));
  }
  EOF_COV_BUCKET(ctx, state.objects.live() / 2);  // container population
  EOF_COV_BUCKET(ctx, type_value + 12);            // per-class container row
  RtObject object;
  object.name = name;
  object.type = type;
  object.is_static = true;
  int64_t handle = state.objects.Insert(std::move(object));
  if (handle == 0) {
    EOF_COV(ctx);
    return RT_ENOMEM;
  }
  EOF_COV(ctx);
  return handle;
}

int64_t ObjectDetach(KernelContext& ctx, RtThreadState& state,
                     const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  RtObject* object = state.objects.Find(handle);
  if (object == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  if (object->detached) {
    EOF_COV(ctx);
    return RT_ERROR;
  }
  EOF_COV(ctx);
  object->detached = true;
  return RT_EOK;
}

int64_t ObjectGetType(KernelContext& ctx, RtThreadState& state,
                      const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  if (handle == 0) {
    EOF_COV(ctx);
    // BUG #5: rt_object_get_type(RT_NULL).
    ctx.AssertFail("(object != RT_NULL) assertion failed at rt_object_get_type:127");
  }
  RtObject* object = state.objects.Find(handle);
  if (object == nullptr) {
    EOF_COV(ctx);
    return static_cast<int64_t>(ObjectClass::kNull);
  }
  EOF_COV(ctx);
  return static_cast<int64_t>(object->type);
}

int64_t ObjectFind(KernelContext& ctx, RtThreadState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  std::string name = args[0].AsString().substr(0, RT_NAME_MAX);
  uint64_t type_value = args[1].scalar;
  int64_t found = 0;
  state.objects.ForEach([&](int64_t handle, RtObject& object) {
    ctx.ConsumeCycles(kListOpCycles);
    if (!object.detached && object.name == name &&
        (type_value == 0 || static_cast<uint64_t>(object.type) == type_value)) {
      found = handle;
    }
  });
  if (found == 0) {
    EOF_COV(ctx);
    return 0;
  }
  EOF_COV(ctx);
  return found;
}

int64_t ObjectGetLength(KernelContext& ctx, RtThreadState& state,
                        const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t type_value = args[0].scalar;
  int64_t count = 0;
  state.objects.ForEach([&](int64_t handle, RtObject& object) {
    (void)handle;
    ctx.ConsumeCycles(kListOpCycles);
    if (!object.detached && static_cast<uint64_t>(object.type) == type_value) {
      ++count;
    }
  });
  return count;
}

}  // namespace

Status RegisterObjectApis(ApiRegistry& registry, RtThreadState& state) {
  RtThreadState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "rt_object_init";
    spec.subsystem = "object";
    spec.doc = "statically initialise a kernel object in its class container";
    spec.args = {ArgSpec::Flags("type", {1, 2, 3, 4, 5, 6, 7, 8, 9}),
                 ArgSpec::String("name", {"obj0", "tmr1", "sem2", "dev3", "thr4"})};
    spec.produces = "rt_object";
    RETURN_IF_ERROR(add(std::move(spec), ObjectInit));
  }
  {
    ApiSpec spec;
    spec.name = "rt_object_detach";
    spec.subsystem = "object";
    spec.doc = "detach a statically initialised object";
    spec.args = {ArgSpec::Resource("object", "rt_object")};
    RETURN_IF_ERROR(add(std::move(spec), ObjectDetach));
  }
  {
    ApiSpec spec;
    spec.name = "rt_object_get_type";
    spec.subsystem = "object";
    spec.doc = "class type of an object";
    spec.args = {ArgSpec::Resource("object", "rt_object", /*optional_null=*/true)};
    RETURN_IF_ERROR(add(std::move(spec), ObjectGetType));
  }
  {
    ApiSpec spec;
    spec.name = "rt_object_find";
    spec.subsystem = "object";
    spec.doc = "find an object by name and type";
    spec.args = {ArgSpec::String("name", {"obj0", "tmr1", "sem2", "dev3", "thr4"}),
                 ArgSpec::Scalar("type", 8, 0, 9)};
    spec.produces = "rt_object";
    RETURN_IF_ERROR(add(std::move(spec), ObjectFind));
  }
  {
    ApiSpec spec;
    spec.name = "rt_object_get_length";
    spec.subsystem = "object";
    spec.doc = "number of live objects of a class";
    spec.args = {ArgSpec::Scalar("type", 8, 0, 9)};
    RETURN_IF_ERROR(add(std::move(spec), ObjectGetLength));
  }
  return OkStatus();
}

}  // namespace rtthread
}  // namespace eof
