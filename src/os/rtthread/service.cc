// "RTService": the background service registry built on rt_list (the rt_slist surface the
// paper attributes bug #6 to).
//
// ── Bug #6 (Table 2): RT-Thread / RTService / Kernel Panic / rt_list_isempty() ──
// Unregistering a service whose node was already unlinked leaves the registry list with a
// self-referencing node. With three or more services ever registered the poll loop's
// rt_list_isempty() dereferences the poisoned next pointer — kernel panic. The poll loop
// samples GPIO lines, so the whole subsystem is dormant on boards without GPIO hardware.

#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/rtthread/apis.h"

namespace eof {
namespace rtthread {
namespace {

EOF_COV_MODULE("rtthread/service");

int64_t ServiceRegister(KernelContext& ctx, RtThreadState& state,
                        const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  if (!ctx.HasPeripheral(Peripheral::kGpio)) {
    EOF_COV(ctx);
    return RT_ERROR;  // service workers poll GPIO; absent hardware, registration fails
  }
  if (state.services.size() >= 16) {
    EOF_COV(ctx);
    return RT_EFULL;
  }
  ServiceNode node;
  node.name = args[0].AsString().substr(0, 8);
  node.registered = true;
  node.ever_registered = true;
  state.services.push_back(node);
  ++state.services_ever;
  // Registration staircase toward the bug-#6 precondition.
  if (state.services_ever == 2) {
    EOF_COV(ctx);
  }
  if (state.services_ever == 3) {
    EOF_COV(ctx);
  }
  if (state.services_ever == 4) {
    EOF_COV(ctx);
  }
  if (state.services_ever >= 5) {
    EOF_COV(ctx);
  }
  EOF_COV_BUCKET(ctx, state.services.size());
  return static_cast<int64_t>(state.services.size());  // handle = index + 1, no generation
}

int64_t ServiceUnregister(KernelContext& ctx, RtThreadState& state,
                          const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  if (handle <= 0 || static_cast<size_t>(handle) > state.services.size()) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  ServiceNode& node = state.services[static_cast<size_t>(handle) - 1];
  if (!node.registered) {
    EOF_COV(ctx);
    // Second unlink of the same node: rt_list_remove on an already-unlinked node leaves
    // next pointing at the node itself. The damage only reaches the live list when the
    // node sits between two still-registered neighbours.
    uint64_t live = 0;
    for (const ServiceNode& other : state.services) {
      if (other.registered) {
        ++live;
      }
    }
    if (live >= 2) {
      EOF_COV(ctx);
      state.service_list_corrupt = true;
    }
    return RT_EOK;  // and the API reports success, hiding the damage
  }
  EOF_COV(ctx);
  node.registered = false;
  ctx.ConsumeCycles(kListOpCycles * 2);
  return RT_EOK;
}

int64_t ServicePoll(KernelContext& ctx, RtThreadState& state,
                    const std::vector<ArgValue>& args) {
  (void)args;
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  if (!ctx.HasPeripheral(Peripheral::kGpio)) {
    EOF_COV(ctx);
    return RT_ERROR;
  }
  if (state.service_list_corrupt && state.services_ever >= 5) {
    EOF_COV(ctx);
    // BUG #6: rt_list_isempty on the poisoned list head.
    ctx.Panic("BUG: kernel panic - rt_list_isempty: invalid list node 0xdeadbeef",
              "Stack frames at BUG:\n"
              " Level 1: rtservice.h : rt_list_isempty : 88\n"
              " Level 2: rtservice.c : rt_service_poll : 412\n"
              " Level 3: agent : execute_one");
  }
  int64_t active = 0;
  for (const ServiceNode& node : state.services) {
    ctx.ConsumeCycles(kListOpCycles * 3);  // GPIO sample per service
    if (node.registered) {
      ++active;
    }
  }
  EOF_COV(ctx);
  return active;
}

}  // namespace

Status RegisterServiceApis(ApiRegistry& registry, RtThreadState& state) {
  RtThreadState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "rt_service_register";
    spec.subsystem = "service";
    spec.doc = "register a background GPIO-polling service";
    spec.args = {ArgSpec::String("name", {"svc0", "svc1", "svc2"})};
    spec.produces = "rt_service";
    RETURN_IF_ERROR(add(std::move(spec), ServiceRegister));
  }
  {
    ApiSpec spec;
    spec.name = "rt_service_unregister";
    spec.subsystem = "service";
    spec.doc = "unregister a service";
    spec.args = {ArgSpec::Resource("service", "rt_service")};
    RETURN_IF_ERROR(add(std::move(spec), ServiceUnregister));
  }
  {
    ApiSpec spec;
    spec.name = "rt_service_poll";
    spec.subsystem = "service";
    spec.doc = "run one poll pass over all registered services";
    RETURN_IF_ERROR(add(std::move(spec), ServicePoll));
  }
  return OkStatus();
}

}  // namespace rtthread
}  // namespace eof
