// SAL socket layer plus the syz_create_bind_socket pseudo-syscall of Figure 6. Socket
// creation logs through rt_kprintf, which rides the serial console path — the road into
// bug #12 when the console device has gone stale.

#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/rtthread/apis.h"

namespace eof {
namespace rtthread {
namespace {

EOF_COV_MODULE("rtthread/socket");

constexpr int AF_INET_ = 2;
constexpr int AF_INET6_ = 10;
constexpr int SOCK_STREAM_ = 1;
constexpr int SOCK_DGRAM_ = 2;

int64_t SalSocket(KernelContext& ctx, RtThreadState& state,
                  const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int domain = static_cast<int>(args[0].scalar);
  int type = static_cast<int>(args[1].scalar);
  int protocol = static_cast<int>(args[2].scalar);
  if (domain != AF_INET_ && domain != AF_INET6_) {
    EOF_COV(ctx);
    return -1;
  }
  if (type != SOCK_STREAM_ && type != SOCK_DGRAM_) {
    EOF_COV(ctx);
    return -1;
  }
  // sal_socket logs the new endpoint over the console (Figure 6, level 5).
  RtKprintf(ctx, state,
            StrFormat("[sal] socket created: domain=%d type=%d proto=%d", domain, type,
                      protocol));
  Socket socket;
  socket.domain = domain;
  socket.type = type;
  socket.protocol = protocol;
  int64_t handle = state.sockets.Insert(std::move(socket));
  if (handle == 0) {
    EOF_COV(ctx);
    return -1;
  }
  EOF_COV(ctx);
  return handle;
}

int64_t SalBind(KernelContext& ctx, RtThreadState& state,
                const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Socket* socket = state.sockets.Find(static_cast<int64_t>(args[0].scalar));
  if (socket == nullptr) {
    EOF_COV(ctx);
    return -1;
  }
  uint64_t port = args[1].scalar;
  if (port == 0 || port > 65535) {
    EOF_COV(ctx);
    return -1;
  }
  if (socket->bound) {
    EOF_COV(ctx);
    return -1;
  }
  EOF_COV(ctx);
  socket->bound = true;
  return 0;
}

int64_t SalConnect(KernelContext& ctx, RtThreadState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Socket* socket = state.sockets.Find(static_cast<int64_t>(args[0].scalar));
  if (socket == nullptr) {
    EOF_COV(ctx);
    return -1;
  }
  if (socket->type != SOCK_STREAM_) {
    EOF_COV(ctx);
    return -1;
  }
  if (!ctx.HasPeripheral(Peripheral::kEthernet) && !ctx.HasPeripheral(Peripheral::kWifi)) {
    EOF_COV(ctx);
    return -1;  // no transport
  }
  EOF_COV(ctx);
  socket->connected = true;
  ctx.ConsumeCycles(kApiBaseCycles * 2);  // handshake
  return 0;
}

int64_t SalSend(KernelContext& ctx, RtThreadState& state,
                const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Socket* socket = state.sockets.Find(static_cast<int64_t>(args[0].scalar));
  if (socket == nullptr) {
    EOF_COV(ctx);
    return -1;
  }
  const std::vector<uint8_t>& data = args[1].bytes;
  if (socket->type == SOCK_STREAM_ && !socket->connected) {
    EOF_COV(ctx);
    return -1;
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, CovSizeClass(data.size()));
  ctx.ConsumeCycles(kCopyPerByteCycles * data.size());
  return static_cast<int64_t>(data.size());
}

int64_t SalClose(KernelContext& ctx, RtThreadState& state,
                 const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  if (state.sockets.Find(handle) == nullptr) {
    EOF_COV(ctx);
    return -1;
  }
  EOF_COV(ctx);
  state.sockets.Remove(handle);
  return 0;
}

// Figure 6 lines 3-8: create a socket and bind it, as one pseudo-syscall.
int64_t SyzCreateBindSocket(KernelContext& ctx, RtThreadState& state,
                            const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  std::vector<ArgValue> socket_args = {args[0], args[1], args[2]};
  int64_t sock = SalSocket(ctx, state, socket_args);
  if (sock < 0) {
    EOF_COV(ctx);
    return -1;
  }
  std::vector<ArgValue> bind_args(2);
  bind_args[0].scalar = static_cast<uint64_t>(sock);
  bind_args[1].scalar = args[3].scalar;
  if (SalBind(ctx, state, bind_args) != 0) {
    EOF_COV(ctx);
    return -1;
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, state.sockets.live());
  return sock;
}

}  // namespace

Status RegisterSocketApis(ApiRegistry& registry, RtThreadState& state) {
  RtThreadState* s = &state;
  auto add = [&](ApiSpec spec, auto fn, bool pseudo = false) -> Status {
    spec.is_pseudo = pseudo;
    spec.extended_spec = pseudo;
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "socket";
    spec.subsystem = "socket";
    spec.doc = "create a SAL socket";
    spec.args = {ArgSpec::Flags("domain", {2, 10}), ArgSpec::Flags("type", {1, 2}),
                 ArgSpec::Scalar("protocol", 32, 0, 255)};
    spec.produces = "rt_socket";
    RETURN_IF_ERROR(add(std::move(spec), SalSocket));
  }
  {
    ApiSpec spec;
    spec.name = "sal_bind";
    spec.subsystem = "socket";
    spec.doc = "bind a socket to a local port";
    spec.args = {ArgSpec::Resource("sock", "rt_socket"),
                 ArgSpec::Scalar("port", 16, 0, 65535)};
    RETURN_IF_ERROR(add(std::move(spec), SalBind));
  }
  {
    ApiSpec spec;
    spec.name = "sal_connect";
    spec.subsystem = "socket";
    spec.doc = "connect a stream socket";
    spec.args = {ArgSpec::Resource("sock", "rt_socket"),
                 ArgSpec::Scalar("port", 16, 0, 65535)};
    RETURN_IF_ERROR(add(std::move(spec), SalConnect));
  }
  {
    ApiSpec spec;
    spec.name = "sal_send";
    spec.subsystem = "socket";
    spec.doc = "send bytes on a socket";
    spec.args = {ArgSpec::Resource("sock", "rt_socket"), ArgSpec::Buffer("data", 0, 1024)};
    RETURN_IF_ERROR(add(std::move(spec), SalSend));
  }
  {
    ApiSpec spec;
    spec.name = "sal_close";
    spec.subsystem = "socket";
    spec.doc = "close a socket";
    spec.args = {ArgSpec::Resource("sock", "rt_socket")};
    RETURN_IF_ERROR(add(std::move(spec), SalClose));
  }
  {
    ApiSpec spec;
    spec.name = "syz_create_bind_socket";
    spec.subsystem = "socket";
    spec.doc = "create a socket and bind it (Figure 6 pseudo-syscall)";
    spec.args = {ArgSpec::Flags("domain", {2, 10}), ArgSpec::Flags("type", {1, 2}),
                 ArgSpec::Scalar("protocol", 32, 0, 255),
                 ArgSpec::Scalar("port", 16, 0, 65535)};
    spec.produces = "rt_socket";
    RETURN_IF_ERROR(add(std::move(spec), SyzCreateBindSocket, /*pseudo=*/true));
  }
  return OkStatus();
}

}  // namespace rtthread
}  // namespace eof
