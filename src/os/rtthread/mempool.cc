// Fixed-block memory pools (mempool.c).
//
// ── Bug #7 (Table 2): RT-Thread / Memory / Kernel Panic / rt_mp_alloc() ──
// Allocating from an exhausted pool with a blocking timeout parks the caller on the pool's
// suspend list; the list head is carved from the pool's own control block and the last
// block allocation overwrites its prev pointer. The next blocking rt_mp_alloc on the fully
// drained pool follows the clobbered pointer — kernel panic. Reaching it requires draining
// the pool (a block_count-deep allocation chain with progress edges at fill thresholds)
// and then a blocking alloc; the suspend machinery needs the hardware timer.

#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/rtthread/apis.h"

namespace eof {
namespace rtthread {
namespace {

EOF_COV_MODULE("rtthread/mempool");

int64_t MpCreate(KernelContext& ctx, RtThreadState& state,
                 const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint32_t block_count = static_cast<uint32_t>(args[1].scalar);
  uint32_t block_size = static_cast<uint32_t>(args[2].scalar);
  if (block_count == 0 || block_size == 0) {
    EOF_COV(ctx);
    return 0;
  }
  if (block_count > 64 || block_size > 1024) {
    EOF_COV(ctx);
    return 0;  // pool would not fit kernel RAM
  }
  uint64_t footprint = static_cast<uint64_t>(block_count) * (block_size + 4) + 64;
  if (!ctx.ReserveRam(footprint).ok()) {
    EOF_COV(ctx);
    return 0;
  }
  RtObject object;
  object.name = args[0].AsString().substr(0, 8);
  object.type = ObjectClass::kMemPool;
  MemPool pool;
  pool.object = state.objects.Insert(std::move(object));
  pool.block_count = block_count;
  pool.block_size = block_size;
  int64_t handle = state.mempools.Insert(std::move(pool));
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(footprint);
  }
  return handle;
}

int64_t MpAlloc(KernelContext& ctx, RtThreadState& state,
                const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  MemPool* pool = state.mempools.Find(static_cast<int64_t>(args[0].scalar));
  if (pool == nullptr) {
    EOF_COV(ctx);
    return 0;
  }
  uint64_t timeout = args[1].scalar;  // 0 = no wait, else ticks (UINT32_MAX = forever)
  if (pool->used < pool->block_count) {
    ++pool->used;
    ctx.ConsumeCycles(kAllocOpCycles);
    // Fill-level staircase: distinct edges as the pool drains.
    EOF_COV_BUCKET(ctx, pool->used);  // absolute drain depth
    if (pool->used * 2 >= pool->block_count) {
      EOF_COV(ctx);  // half drained
    }
    if (pool->used + 1 == pool->block_count) {
      EOF_COV(ctx);  // one block left
    }
    if (pool->used == pool->block_count) {
      EOF_COV(ctx);  // last block handed out: control-block prev pointer clobbered
    }
    return static_cast<int64_t>((static_cast<uint64_t>(args[0].scalar) << 16) | pool->used);
  }
  // Pool exhausted.
  if (timeout == 0) {
    EOF_COV(ctx);
    return 0;  // RT_NULL, no wait
  }
  if (!ctx.HasPeripheral(Peripheral::kHwTimer)) {
    EOF_COV(ctx);
    return 0;  // cannot program a wakeup; degrade to no-wait
  }
  if (pool->block_count < 8) {
    EOF_COV(ctx);
    return 0;  // small pools keep the suspend head in the control block proper
  }
  EOF_COV(ctx);
  // BUG #7: the blocking path trusts the suspend-list head that the final block
  // allocation overwrote (only pools of >= 8 blocks spill it into the block area).
  ctx.Panic("BUG: kernel panic - rt_mp_alloc: suspend list head corrupt",
            "Stack frames at BUG:\n"
            " Level 1: mempool.c : rt_mp_alloc : 318\n"
            " Level 2: agent : execute_one");
}

int64_t MpFree(KernelContext& ctx, RtThreadState& state,
               const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  MemPool* pool = state.mempools.Find(static_cast<int64_t>(args[0].scalar >> 16));
  if (pool == nullptr || pool->used == 0) {
    EOF_COV(ctx);
    return RT_ERROR;
  }
  EOF_COV(ctx);
  --pool->used;
  ctx.ConsumeCycles(kAllocOpCycles);
  return RT_EOK;
}

int64_t MpDelete(KernelContext& ctx, RtThreadState& state,
                 const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  MemPool* pool = state.mempools.Find(handle);
  if (pool == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  EOF_COV(ctx);
  uint64_t footprint =
      static_cast<uint64_t>(pool->block_count) * (pool->block_size + 4) + 64;
  ctx.ReleaseRam(footprint);
  state.objects.Remove(pool->object);
  state.mempools.Remove(handle);
  return RT_EOK;
}

}  // namespace

Status RegisterMemPoolApis(ApiRegistry& registry, RtThreadState& state) {
  RtThreadState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "rt_mp_create";
    spec.subsystem = "mempool";
    spec.doc = "create a fixed-block memory pool";
    spec.args = {ArgSpec::String("name", {"mp0", "mp1"}),
                 ArgSpec::Scalar("block_count", 32, 0, 16),
                 ArgSpec::Scalar("block_size", 32, 0, 2048)};
    spec.produces = "rt_mempool";
    RETURN_IF_ERROR(add(std::move(spec), MpCreate));
  }
  {
    ApiSpec spec;
    spec.name = "rt_mp_alloc";
    spec.subsystem = "mempool";
    spec.doc = "allocate a block (timeout 0 = no wait)";
    spec.args = {ArgSpec::Resource("pool", "rt_mempool"),
                 ArgSpec::Scalar("timeout", 32, 0, UINT32_MAX)};
    spec.produces = "rt_mp_block";
    RETURN_IF_ERROR(add(std::move(spec), MpAlloc));
  }
  {
    ApiSpec spec;
    spec.name = "rt_mp_free";
    spec.subsystem = "mempool";
    spec.doc = "return a block to its pool";
    spec.args = {ArgSpec::Resource("block", "rt_mp_block")};
    RETURN_IF_ERROR(add(std::move(spec), MpFree));
  }
  {
    ApiSpec spec;
    spec.name = "rt_mp_delete";
    spec.subsystem = "mempool";
    spec.doc = "destroy a memory pool";
    spec.args = {ArgSpec::Resource("pool", "rt_mempool")};
    RETURN_IF_ERROR(add(std::move(spec), MpDelete));
  }
  return OkStatus();
}

}  // namespace rtthread
}  // namespace eof
