// The RT-Thread device framework and the serial console path
// rt_kprintf -> _kputs -> rt_device_write -> rt_serial_write -> _serial_poll_tx.
//
// ── Bug #12 (Table 2): RT-Thread / Serial / Kernel Panic / rt_serial_write() ──
// The case study of Figure 6. The console keeps a raw pointer to its serial device; after
// the device is unregistered the pointer is stale but non-NULL, so the RT_ASSERT in
// _serial_poll_tx does not fire. With the poll-tx buffer warmed by at least two prior
// writes, the next console message (e.g. the socket layer's creation log) dereferences the
// recycled ops table — a bus fault. Requires real UART hardware: on peripheral-less
// emulated boards console output degrades to the semihost path and never enters
// rt_serial_write.

#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/rtthread/apis.h"

namespace eof {
namespace rtthread {
namespace {

EOF_COV_MODULE("rtthread/serial");

constexpr uint16_t RT_DEVICE_FLAG_STREAM = 0x040;

Device* DeviceAt(RtThreadState& state, int64_t handle) {
  if (handle <= 0 || static_cast<size_t>(handle) > state.devices.size()) {
    return nullptr;
  }
  return &state.devices[static_cast<size_t>(handle) - 1];
}

void SerialPollTx(KernelContext& ctx, RtThreadState& state, Device& serial, size_t bytes) {
  // RT_ASSERT(serial != RT_NULL) — passes even when the device is stale (Figure 6:20).
  EOF_COV(ctx);
  ctx.ConsumeCycles(kCopyPerByteCycles * 8 * bytes);  // polled TX at UART pace
  if (!serial.registered) {
    EOF_COV(ctx);
    if ((serial.open_flag & RT_DEVICE_FLAG_STREAM) == 0 || (serial.open_flag & 0x3) == 0) {
      // Non-stream or read-only stale consoles spin on the TX-empty poll instead.
      ctx.Hang("serial TX on cold stale device spins on TX-empty");
    }
    // Only a console installed through rt_console_set_device() misses the unregister
    // teardown hook; the boot console is torn down correctly and just wedges.
    if (serial.tx_count >= 4 && state.console_retargeted) {
      EOF_COV(ctx);
      // BUG #12: dereference of the recycled ops table behind the stale pointer.
      ctx.Panic(
          "BUG: unexpected stop: bus fault on serial->ops->putc",
          "Stack frames at BUG:\n"
          " Level 1: /path/to/serial.c : rt_serial_write : 917\n"
          " Level 2: /path/to/device.c : rt_device_write : 396\n"
          " Level 3: /path/to/kservice.c : _kputs : 298\n"
          " Level 4: /path/to/kservice.c : rt_kprintf : 349\n"
          " Level 5: /path/to/sal_socket.c : sal_socket : 1059\n"
          " Level 6: /path/to/net_sockets.c : socket : 244\n"
          " Level 7: /path/to/agent : syz_create_bind_socket : 896");
    }
    ctx.Hang("serial TX on cold stale device spins on TX-empty");
  }
  ++serial.tx_count;
  (void)state;
}

}  // namespace

void DevicesInit(KernelContext& ctx, RtThreadState& state) {
  (void)ctx;
  Device uart0;
  uart0.name = "uart0";
  uart0.is_serial = true;
  Device uart1;
  uart1.name = "uart1";
  uart1.is_serial = true;
  Device pin;
  pin.name = "pin";
  state.devices = {uart0, uart1, pin};
  state.console_device = 0;  // console on uart0
}

void RtKprintf(KernelContext& ctx, RtThreadState& state, const std::string& line) {
  ctx.ConsumeCycles(kListOpCycles * 4);
  if (state.console_device < 0 ||
      static_cast<size_t>(state.console_device) >= state.devices.size() ||
      !ctx.HasPeripheral(Peripheral::kUartHw)) {
    // No console serial (or no UART hardware): semihost fallback.
    ctx.LogLine(line);
    return;
  }
  Device& console = state.devices[static_cast<size_t>(state.console_device)];
  SerialPollTx(ctx, state, console, line.size());
  ctx.LogLine(line);
}

namespace {

int64_t DeviceFind(KernelContext& ctx, RtThreadState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  std::string name = args[0].AsString();
  for (size_t i = 0; i < state.devices.size(); ++i) {
    ctx.ConsumeCycles(kListOpCycles);
    if (state.devices[i].registered && state.devices[i].name == name) {
      EOF_COV(ctx);
      return static_cast<int64_t>(i) + 1;
    }
  }
  EOF_COV(ctx);
  return 0;
}

int64_t DeviceOpen(KernelContext& ctx, RtThreadState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Device* device = DeviceAt(state, static_cast<int64_t>(args[0].scalar));
  if (device == nullptr || !device->registered) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  if (device->opened) {
    EOF_COV(ctx);
    return RT_EOK;  // reference-counted open
  }
  EOF_COV(ctx);
  device->opened = true;
  device->open_flag = static_cast<uint16_t>(args[1].scalar);
  device->tx_count = 0;
  return RT_EOK;
}

int64_t DeviceClose(KernelContext& ctx, RtThreadState& state,
                    const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Device* device = DeviceAt(state, static_cast<int64_t>(args[0].scalar));
  if (device == nullptr || !device->opened) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  EOF_COV(ctx);
  device->opened = false;
  return RT_EOK;
}

int64_t DeviceWrite(KernelContext& ctx, RtThreadState& state,
                    const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Device* device = DeviceAt(state, static_cast<int64_t>(args[0].scalar));
  if (device == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  if (!device->opened) {
    EOF_COV(ctx);
    return RT_ERROR;
  }
  const std::vector<uint8_t>& data = args[1].bytes;
  if (device->is_serial) {
    if (!ctx.HasPeripheral(Peripheral::kUartHw)) {
      EOF_COV(ctx);
      return static_cast<int64_t>(data.size());  // swallowed by the emulated stub
    }
    EOF_COV(ctx);
    EOF_COV_BUCKET(ctx, CovSizeClass(data.size()));
    EOF_COV_BUCKET(ctx, device->tx_count > 12 ? 12 : device->tx_count);
    SerialPollTx(ctx, state, *device, data.size());
    if ((device->open_flag & RT_DEVICE_FLAG_STREAM) != 0) {
      EOF_COV(ctx);  // '\n' -> '\r\n' expansion path
    }
    return static_cast<int64_t>(data.size());
  }
  EOF_COV(ctx);
  ctx.ConsumeCycles(kCopyPerByteCycles * data.size());
  return static_cast<int64_t>(data.size());
}

int64_t DeviceUnregister(KernelContext& ctx, RtThreadState& state,
                         const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Device* device = DeviceAt(state, static_cast<int64_t>(args[0].scalar));
  if (device == nullptr || !device->registered) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  EOF_COV(ctx);
  // Note: the console pointer is NOT cleared — the incomplete teardown behind bug #12.
  device->registered = false;
  return RT_EOK;
}

int64_t ConsoleSetDevice(KernelContext& ctx, RtThreadState& state,
                         const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  std::string name = args[0].AsString();
  for (size_t i = 0; i < state.devices.size(); ++i) {
    ctx.ConsumeCycles(kListOpCycles);
    if (state.devices[i].registered && state.devices[i].is_serial &&
        state.devices[i].name == name) {
      EOF_COV(ctx);
      EOF_COV_BUCKET(ctx, i + (state.devices[i].opened ? 8 : 0));  // switch rows
      state.console_device = static_cast<int>(i);
      state.console_retargeted = true;
      return RT_EOK;
    }
  }
  EOF_COV(ctx);
  return RT_ERROR;
}

}  // namespace

Status RegisterDeviceApis(ApiRegistry& registry, RtThreadState& state) {
  RtThreadState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "rt_device_find";
    spec.subsystem = "serial";
    spec.doc = "look up a registered device by name";
    spec.args = {ArgSpec::String("name", {"uart0", "uart1", "pin", "spi0"})};
    spec.produces = "rt_device";
    RETURN_IF_ERROR(add(std::move(spec), DeviceFind));
  }
  {
    ApiSpec spec;
    spec.name = "rt_device_open";
    spec.subsystem = "serial";
    spec.doc = "open a device (flag 0x040 = stream mode)";
    spec.args = {ArgSpec::Resource("dev", "rt_device"),
                 ArgSpec::Flags("oflag", {0, 0x001, 0x002, 0x003, 0x040, 0x043},
                                /*combinable=*/false)};
    RETURN_IF_ERROR(add(std::move(spec), DeviceOpen));
  }
  {
    ApiSpec spec;
    spec.name = "rt_device_close";
    spec.subsystem = "serial";
    spec.doc = "close a device";
    spec.args = {ArgSpec::Resource("dev", "rt_device")};
    RETURN_IF_ERROR(add(std::move(spec), DeviceClose));
  }
  {
    ApiSpec spec;
    spec.name = "rt_device_write";
    spec.subsystem = "serial";
    spec.doc = "write bytes to a device";
    spec.args = {ArgSpec::Resource("dev", "rt_device"), ArgSpec::Buffer("data", 0, 256)};
    RETURN_IF_ERROR(add(std::move(spec), DeviceWrite));
  }
  {
    ApiSpec spec;
    spec.name = "rt_device_unregister";
    spec.subsystem = "serial";
    spec.doc = "remove a device from the registry";
    spec.args = {ArgSpec::Resource("dev", "rt_device")};
    RETURN_IF_ERROR(add(std::move(spec), DeviceUnregister));
  }
  {
    ApiSpec spec;
    spec.name = "rt_console_set_device";
    spec.subsystem = "serial";
    spec.doc = "route the kernel console to a serial device";
    spec.args = {ArgSpec::String("name", {"uart0", "uart1"})};
    RETURN_IF_ERROR(add(std::move(spec), ConsoleSetDevice));
  }
  return OkStatus();
}

}  // namespace rtthread
}  // namespace eof
