// rt_smem: the small-memory allocator instances (src/mm/slab-less builds), plus the main
// kernel heap entry points rt_malloc/rt_free that ride on _heap_lock.
//
// ── Bug #11 (Table 2, confirmed): RT-Thread / Memory / Kernel Panic / rt_smem_setname() ──
// rt_smem_setname() copies the new name into the 8-byte name field of the smem header with
// an unterminated copy. When the instance has four or more live allocations the header's
// slack bytes are occupied by the smallest-block fast path cache, and a name longer than
// 7 characters overwrites its first entry — the next dereference panics inside setname's
// cache-touch epilogue.
//
// ── Bug #9 (Table 2): RT-Thread / Heap / Kernel Panic / _heap_lock() ──
// The main heap lock takes a hardware-timer-stamped ticket. rt_malloc aligns the request
// size up; for odd sizes on the out-of-memory path, the error epilogue releases the ticket
// twice and the nest count underflows — _heap_lock panics on the corrupt nest. The ticket
// stamp needs the hardware timer, so the path is closed on emulated boards.

#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/rtthread/apis.h"

namespace eof {
namespace rtthread {
namespace {

EOF_COV_MODULE("rtthread/memory");

constexpr uint64_t kSmemMinSize = 128;
constexpr uint64_t kSmemMaxSize = 8192;

int64_t SmemInit(KernelContext& ctx, RtThreadState& state,
                 const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t size = args[1].scalar;
  if (size < kSmemMinSize || size > kSmemMaxSize) {
    EOF_COV(ctx);
    return 0;
  }
  if (!ctx.ReserveRam(size).ok()) {
    EOF_COV(ctx);
    return 0;
  }
  Smem smem;
  RtObject object;
  object.name = args[0].AsString().substr(0, 8);
  object.type = ObjectClass::kMemPool;
  smem.object = state.objects.Insert(std::move(object));
  smem.name = args[0].AsString().substr(0, 8);
  smem.total = size;
  smem.blocks = {SmemBlock{0, size, false}};
  int64_t handle = state.smems.Insert(std::move(smem));
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(size);
  }
  return handle;
}

int64_t SmemAlloc(KernelContext& ctx, RtThreadState& state,
                  const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t smem_handle = static_cast<int64_t>(args[0].scalar);
  Smem* smem = state.smems.Find(smem_handle);
  if (smem == nullptr) {
    EOF_COV(ctx);
    return 0;
  }
  uint64_t size = args[1].scalar;
  if (size == 0 || size > smem->total) {
    EOF_COV(ctx);
    return 0;
  }
  uint64_t want = (size + 7) & ~7ULL;
  // Best-fit scan (smem uses a two-level scan; modelled as best-fit here).
  size_t best = smem->blocks.size();
  for (size_t i = 0; i < smem->blocks.size(); ++i) {
    ctx.ConsumeCycles(kListOpCycles);
    const SmemBlock& block = smem->blocks[i];
    if (!block.used && block.size >= want &&
        (best == smem->blocks.size() || block.size < smem->blocks[best].size)) {
      best = i;
    }
  }
  if (best == smem->blocks.size()) {
    EOF_COV(ctx);
    return 0;
  }
  if (smem->blocks[best].size > want + 16) {
    EOF_COV(ctx);
    SmemBlock tail{smem->blocks[best].offset + want, smem->blocks[best].size - want, false};
    smem->blocks[best].size = want;
    // The insert may reallocate the vector; re-index instead of holding a reference.
    smem->blocks.insert(smem->blocks.begin() + static_cast<std::ptrdiff_t>(best) + 1, tail);
  } else {
    EOF_COV(ctx);
  }
  SmemBlock& block = smem->blocks[best];
  block.used = true;
  smem->used_bytes += block.size;
  EOF_COV_BUCKET(ctx, CovSizeClass(size));
  EOF_COV_BUCKET(ctx, smem->blocks.size() + 12);  // fragmentation class
  ctx.ConsumeCycles(kAllocOpCycles);
  // Live-allocation staircase toward the bug-#11 precondition.
  uint64_t live = 0;
  for (const SmemBlock& b : smem->blocks) {
    if (b.used) {
      ++live;
    }
  }
  if (live == 2) {
    EOF_COV(ctx);
  }
  if (live == 4) {
    EOF_COV(ctx);  // fast-path cache now lives in the header slack
  }
  int64_t handle = state.smem_allocs.Insert(
      (static_cast<uint64_t>(smem_handle) << 32) | block.offset);
  if (handle == 0) {
    EOF_COV(ctx);
    block.used = false;
    smem->used_bytes -= block.size;
    return 0;
  }
  return handle;
}

int64_t SmemFree(KernelContext& ctx, RtThreadState& state,
                 const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  uint64_t* packed = state.smem_allocs.Find(handle);
  if (packed == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  Smem* smem = state.smems.Find(static_cast<int64_t>(*packed >> 32));
  uint64_t offset = *packed & 0xffffffff;
  state.smem_allocs.Remove(handle);
  if (smem == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;  // instance detached first
  }
  for (size_t i = 0; i < smem->blocks.size(); ++i) {
    ctx.ConsumeCycles(kListOpCycles);
    if (smem->blocks[i].offset == offset && smem->blocks[i].used) {
      EOF_COV(ctx);
      smem->blocks[i].used = false;
      smem->used_bytes -= smem->blocks[i].size;
      // Coalesce with the next block when free.
      if (i + 1 < smem->blocks.size() && !smem->blocks[i + 1].used) {
        EOF_COV(ctx);
        smem->blocks[i].size += smem->blocks[i + 1].size;
        smem->blocks.erase(smem->blocks.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      }
      return RT_EOK;
    }
  }
  EOF_COV(ctx);
  return RT_ERROR;
}

int64_t SmemSetname(KernelContext& ctx, RtThreadState& state,
                    const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Smem* smem = state.smems.Find(static_cast<int64_t>(args[0].scalar));
  if (smem == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  std::string name = args[1].AsString();
  uint64_t live = 0;
  for (const SmemBlock& block : smem->blocks) {
    ctx.ConsumeCycles(kListOpCycles);
    if (block.used) {
      ++live;
    }
  }
  if (name.size() > 7) {
    EOF_COV(ctx);  // unterminated copy writes all 8+ bytes of the field
    if (live >= 4) {
      EOF_COV(ctx);
      // BUG #11: the copy clobbers the fast-path cache entry sitting in the header slack;
      // the cache-touch epilogue dereferences it.
      ctx.Panic("BUG: kernel panic - rt_smem_setname: fastbin cache corrupt",
                "Stack frames at BUG:\n"
                " Level 1: slab.c : rt_smem_setname : 214\n"
                " Level 2: agent : execute_one");
    }
  }
  EOF_COV(ctx);
  smem->name = name.substr(0, 8);
  return RT_EOK;
}

int64_t SmemDetach(KernelContext& ctx, RtThreadState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  Smem* smem = state.smems.Find(handle);
  if (smem == nullptr) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  EOF_COV(ctx);
  ctx.ReleaseRam(smem->total);
  state.objects.Remove(smem->object);
  state.smems.Remove(handle);
  return RT_EOK;
}

// --- main heap: rt_malloc / rt_free over _heap_lock ---

int64_t RtMalloc(KernelContext& ctx, RtThreadState& state,
                 const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t size = args[0].scalar;
  if (size == 0) {
    EOF_COV(ctx);
    return 0;
  }
  // _heap_lock(): ticket lock, stamped from the hardware timer when present.
  ++state.heap_lock_nest;
  ctx.ConsumeCycles(kListOpCycles * 2);
  uint64_t want = (size + 7) & ~7ULL;
  // Pressure staircase: the lock epilogue only misbehaves on a heap fragmented by real use.
  if (state.heap_used > state.heap_total / 4) {
    EOF_COV(ctx);
  }
  if (state.heap_used > state.heap_total / 2) {
    EOF_COV(ctx);
  }
  if (state.heap_used + want > state.heap_total) {
    // Out-of-memory path.
    EOF_COV(ctx);
    if (state.heap_used > state.heap_total / 2 && (size & 1) != 0 &&
        ctx.HasPeripheral(Peripheral::kHwTimer)) {
      EOF_COV(ctx);
      // BUG #9: the odd-size OOM epilogue releases the hw-timer-stamped ticket twice.
      state.heap_lock_nest = 0;
      ctx.Panic("BUG: kernel panic - _heap_lock: lock nest underflow",
                "Stack frames at BUG:\n"
                " Level 1: kservice.c : _heap_lock : 89\n"
                " Level 2: kservice.c : rt_malloc : 156\n"
                " Level 3: agent : execute_one");
    }
    --state.heap_lock_nest;
    return 0;
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, CovSizeClass(want));
  EOF_COV_BUCKET(ctx, state.heap_used * 8 / state.heap_total + 14);
  state.heap_used += want;
  --state.heap_lock_nest;
  ctx.ConsumeCycles(kAllocOpCycles);
  return static_cast<int64_t>(want);  // rt_malloc returns the pointer; we return the size
}

int64_t RtFree(KernelContext& ctx, RtThreadState& state,
               const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t size = args[0].scalar & ~7ULL;
  if (size == 0 || size > state.heap_used) {
    EOF_COV(ctx);
    return RT_EINVAL;
  }
  EOF_COV(ctx);
  state.heap_used -= size;
  return RT_EOK;
}

}  // namespace

Status RegisterSmemApis(ApiRegistry& registry, RtThreadState& state) {
  RtThreadState* s = &state;
  auto add = [&](ApiSpec spec, auto fn, bool extended = false) -> Status {
    spec.extended_spec = extended;
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "rt_smem_init";
    spec.subsystem = "memory";
    spec.doc = "create a small-memory allocator instance over a byte region";
    spec.args = {ArgSpec::String("name", {"sm0", "sm1"}),
                 ArgSpec::Scalar("size", 32, 0, 16384)};
    spec.produces = "rt_smem";
    RETURN_IF_ERROR(add(std::move(spec), SmemInit));
  }
  {
    ApiSpec spec;
    spec.name = "rt_smem_alloc";
    spec.subsystem = "memory";
    spec.doc = "allocate from a small-memory instance";
    spec.args = {ArgSpec::Resource("smem", "rt_smem"), ArgSpec::Scalar("size", 32, 0, 4096)};
    spec.produces = "rt_smem_mem";
    RETURN_IF_ERROR(add(std::move(spec), SmemAlloc));
  }
  {
    ApiSpec spec;
    spec.name = "rt_smem_free";
    spec.subsystem = "memory";
    spec.doc = "free a small-memory allocation";
    spec.args = {ArgSpec::Resource("mem", "rt_smem_mem")};
    RETURN_IF_ERROR(add(std::move(spec), SmemFree));
  }
  {
    ApiSpec spec;
    spec.name = "rt_smem_setname";
    spec.subsystem = "memory";
    spec.doc = "rename a small-memory instance (LLM-mined API, absent from base specs)";
    spec.args = {ArgSpec::Resource("smem", "rt_smem"), ArgSpec::String("name")};
    RETURN_IF_ERROR(add(std::move(spec), SmemSetname, /*extended=*/true));
  }
  {
    ApiSpec spec;
    spec.name = "rt_smem_detach";
    spec.subsystem = "memory";
    spec.doc = "destroy a small-memory instance";
    spec.args = {ArgSpec::Resource("smem", "rt_smem")};
    RETURN_IF_ERROR(add(std::move(spec), SmemDetach));
  }
  return OkStatus();
}

Status RegisterHeapApis(ApiRegistry& registry, RtThreadState& state) {
  RtThreadState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "rt_malloc";
    spec.subsystem = "heap";
    spec.doc = "allocate from the main kernel heap";
    spec.args = {ArgSpec::Scalar("size", 32, 0, 16384)};
    RETURN_IF_ERROR(add(std::move(spec), RtMalloc));
  }
  {
    ApiSpec spec;
    spec.name = "rt_free";
    spec.subsystem = "heap";
    spec.doc = "return memory to the main kernel heap";
    spec.args = {ArgSpec::Scalar("size", 32, 0, 16384)};
    RETURN_IF_ERROR(add(std::move(spec), RtFree));
  }
  return OkStatus();
}

}  // namespace rtthread
}  // namespace eof
