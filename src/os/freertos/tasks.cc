// Task management: creation, deletion, priorities, suspend/resume, direct-to-task
// notifications. Mirrors FreeRTOS tasks.c semantics at the API level: xTaskCreate with a
// caller-supplied stack depth, tick-driven delays, priority ceiling configMAX_PRIORITIES.

#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/freertos/apis.h"

namespace eof {
namespace freertos {
namespace {

EOF_COV_MODULE("freertos/task");

constexpr uint32_t configMAX_PRIORITIES = 25;
constexpr uint32_t configMINIMAL_STACK_SIZE = 128;  // words

// eNotifyAction values.
constexpr uint64_t eNoAction = 0;
constexpr uint64_t eSetBits = 1;
constexpr uint64_t eIncrement = 2;
constexpr uint64_t eSetValueWithOverwrite = 3;
constexpr uint64_t eSetValueWithoutOverwrite = 4;

int64_t TaskCreate(KernelContext& ctx, FreeRtosState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  std::string name = args[0].AsString();
  uint32_t stack_words = static_cast<uint32_t>(args[1].scalar);
  uint32_t priority = static_cast<uint32_t>(args[2].scalar);

  if (stack_words < configMINIMAL_STACK_SIZE) {
    EOF_COV(ctx);
    return errCOULD_NOT_ALLOCATE_REQUIRED_MEMORY;
  }
  if (priority >= configMAX_PRIORITIES) {
    EOF_COV(ctx);
    priority = configMAX_PRIORITIES - 1;  // FreeRTOS silently clamps
  }
  // Stack + TCB come from the kernel heap.
  uint64_t footprint = static_cast<uint64_t>(stack_words) * 4 + 128;
  if (!ctx.ReserveRam(footprint).ok()) {
    EOF_COV(ctx);
    return errCOULD_NOT_ALLOCATE_REQUIRED_MEMORY;
  }
  Tcb tcb;
  tcb.name = name.substr(0, 16);
  tcb.priority = priority;
  tcb.stack_words = stack_words;
  int64_t handle = state.tasks.Insert(std::move(tcb));
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(footprint);
    return errCOULD_NOT_ALLOCATE_REQUIRED_MEMORY;
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, state.tasks.live());       // ready-list population
  if (ctx.HasPeripheral(Peripheral::kHwTimer)) {
    EOF_COV_BUCKET(ctx, priority / 2 + 12);      // tickless-idle wakeup rows
  }
  ctx.ConsumeCycles(kContextSwitchCycles);
  return handle;
}

int64_t TaskDelete(KernelContext& ctx, FreeRtosState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  if (handle == 0) {
    // Deleting the calling task: legal, the idle task reaps it.
    EOF_COV(ctx);
    return pdPASS;
  }
  Tcb* tcb = state.tasks.Find(handle);
  if (tcb == nullptr) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  EOF_COV(ctx);
  ctx.ReleaseRam(static_cast<uint64_t>(tcb->stack_words) * 4 + 128);
  state.tasks.Remove(handle);
  ctx.ConsumeCycles(kContextSwitchCycles);
  return pdPASS;
}

int64_t TaskDelay(KernelContext& ctx, FreeRtosState& state,
                  const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t ticks = args[0].scalar;
  if (ticks == 0) {
    EOF_COV(ctx);
    return pdPASS;  // taskYIELD equivalent
  }
  if (ticks > 1000) {
    EOF_COV(ctx);
    ticks = 1000;  // the agent caps sleeps so fuzzing keeps moving
  }
  state.tick_count += ticks;
  ctx.ConsumeCycles(ticks * kTickCycles / 10);
  return pdPASS;
}

int64_t TaskPrioritySet(KernelContext& ctx, FreeRtosState& state,
                        const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Tcb* tcb = state.tasks.Find(static_cast<int64_t>(args[0].scalar));
  if (tcb == nullptr) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  uint32_t priority = static_cast<uint32_t>(args[1].scalar);
  if (priority >= configMAX_PRIORITIES) {
    EOF_COV(ctx);
    priority = configMAX_PRIORITIES - 1;
  }
  if (priority > tcb->priority) {
    EOF_COV(ctx);  // priority raise may trigger an immediate switch
    ctx.ConsumeCycles(kContextSwitchCycles);
  }
  tcb->priority = priority;
  return pdPASS;
}

int64_t TaskPriorityGet(KernelContext& ctx, FreeRtosState& state,
                        const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Tcb* tcb = state.tasks.Find(static_cast<int64_t>(args[0].scalar));
  if (tcb == nullptr) {
    EOF_COV(ctx);
    return -1;
  }
  return tcb->priority;
}

int64_t TaskSuspend(KernelContext& ctx, FreeRtosState& state,
                    const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Tcb* tcb = state.tasks.Find(static_cast<int64_t>(args[0].scalar));
  if (tcb == nullptr) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  if (tcb->state == TaskState::kSuspended) {
    EOF_COV(ctx);
    return pdPASS;  // idempotent
  }
  EOF_COV(ctx);
  tcb->state = TaskState::kSuspended;
  ctx.ConsumeCycles(kContextSwitchCycles);
  return pdPASS;
}

int64_t TaskResume(KernelContext& ctx, FreeRtosState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Tcb* tcb = state.tasks.Find(static_cast<int64_t>(args[0].scalar));
  if (tcb == nullptr) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  if (tcb->state != TaskState::kSuspended) {
    EOF_COV(ctx);
    return pdFAIL;  // vTaskResume on a non-suspended task is a no-op
  }
  EOF_COV(ctx);
  tcb->state = TaskState::kReady;
  ctx.ConsumeCycles(kContextSwitchCycles);
  return pdPASS;
}

int64_t TaskCount(KernelContext& ctx, FreeRtosState& state,
                  const std::vector<ArgValue>& args) {
  (void)args;
  ctx.ConsumeCycles(kApiBaseCycles / 4);
  EOF_COV(ctx);
  return static_cast<int64_t>(state.tasks.live());
}

int64_t TaskNotify(KernelContext& ctx, FreeRtosState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Tcb* tcb = state.tasks.Find(static_cast<int64_t>(args[0].scalar));
  if (tcb == nullptr) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  uint32_t value = static_cast<uint32_t>(args[1].scalar);
  uint64_t action = args[2].scalar;
  switch (action) {
    case eNoAction:
      EOF_COV(ctx);
      break;
    case eSetBits:
      EOF_COV(ctx);
      tcb->notify_value |= value;
      break;
    case eIncrement:
      EOF_COV(ctx);
      ++tcb->notify_value;
      break;
    case eSetValueWithOverwrite:
      EOF_COV(ctx);
      tcb->notify_value = value;
      break;
    case eSetValueWithoutOverwrite:
      if (tcb->notify_pending) {
        EOF_COV(ctx);
        return pdFAIL;
      }
      EOF_COV(ctx);
      tcb->notify_value = value;
      break;
    default:
      EOF_COV(ctx);
      return pdFAIL;
  }
  tcb->notify_pending = true;
  return pdPASS;
}

int64_t TaskNotifyTake(KernelContext& ctx, FreeRtosState& state,
                       const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  bool clear_on_exit = args[0].scalar != 0;
  int64_t handle = static_cast<int64_t>(args[1].scalar);
  Tcb* tcb = state.tasks.Find(handle);
  if (tcb == nullptr) {
    EOF_COV(ctx);
    return 0;
  }
  uint32_t value = tcb->notify_value;
  if (!tcb->notify_pending) {
    EOF_COV(ctx);
    return 0;  // would block; agent context never blocks
  }
  EOF_COV(ctx);
  tcb->notify_pending = false;
  if (clear_on_exit) {
    EOF_COV(ctx);
    tcb->notify_value = 0;
  } else {
    tcb->notify_value = value > 0 ? value - 1 : 0;
  }
  return value;
}

}  // namespace

Status RegisterTaskApis(ApiRegistry& registry, FreeRtosState& state) {
  FreeRtosState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    ASSIGN_OR_RETURN(uint32_t id, registry.Register(std::move(spec),
                                                    [s, fn](KernelContext& ctx,
                                                            const std::vector<ArgValue>& args) {
                                                      return fn(ctx, *s, args);
                                                    }));
    (void)id;
    return OkStatus();
  };

  {
    ApiSpec spec;
    spec.name = "xTaskCreate";
    spec.subsystem = "task";
    spec.doc = "create a task with a name, stack depth (words) and priority";
    spec.args = {ArgSpec::String("name"),
                 ArgSpec::Scalar("stack_words", 32, 0, 4096),
                 ArgSpec::Scalar("priority", 32, 0, 32)};
    spec.produces = "task";
    RETURN_IF_ERROR(add(std::move(spec), TaskCreate));
  }
  {
    ApiSpec spec;
    spec.name = "vTaskDelete";
    spec.subsystem = "task";
    spec.doc = "delete a task (0 = calling task)";
    spec.args = {ArgSpec::Resource("task", "task", /*optional_null=*/true)};
    RETURN_IF_ERROR(add(std::move(spec), TaskDelete));
  }
  {
    ApiSpec spec;
    spec.name = "vTaskDelay";
    spec.subsystem = "task";
    spec.doc = "block the calling task for N ticks";
    spec.args = {ArgSpec::Scalar("ticks", 32, 0, 2000)};
    RETURN_IF_ERROR(add(std::move(spec), TaskDelay));
  }
  {
    ApiSpec spec;
    spec.name = "vTaskPrioritySet";
    spec.subsystem = "task";
    spec.doc = "change a task's priority";
    spec.args = {ArgSpec::Resource("task", "task"), ArgSpec::Scalar("priority", 32, 0, 64)};
    RETURN_IF_ERROR(add(std::move(spec), TaskPrioritySet));
  }
  {
    ApiSpec spec;
    spec.name = "uxTaskPriorityGet";
    spec.subsystem = "task";
    spec.doc = "read a task's priority";
    spec.args = {ArgSpec::Resource("task", "task")};
    RETURN_IF_ERROR(add(std::move(spec), TaskPriorityGet));
  }
  {
    ApiSpec spec;
    spec.name = "vTaskSuspend";
    spec.subsystem = "task";
    spec.doc = "suspend a task";
    spec.args = {ArgSpec::Resource("task", "task")};
    RETURN_IF_ERROR(add(std::move(spec), TaskSuspend));
  }
  {
    ApiSpec spec;
    spec.name = "vTaskResume";
    spec.subsystem = "task";
    spec.doc = "resume a suspended task";
    spec.args = {ArgSpec::Resource("task", "task")};
    RETURN_IF_ERROR(add(std::move(spec), TaskResume));
  }
  {
    ApiSpec spec;
    spec.name = "uxTaskGetNumberOfTasks";
    spec.subsystem = "task";
    spec.doc = "number of live tasks";
    RETURN_IF_ERROR(add(std::move(spec), TaskCount));
  }
  {
    ApiSpec spec;
    spec.name = "xTaskNotify";
    spec.subsystem = "task";
    spec.doc = "send a direct-to-task notification";
    spec.args = {ArgSpec::Resource("task", "task"),
                 ArgSpec::Scalar("value", 32, 0, UINT32_MAX),
                 ArgSpec::Flags("action", {0, 1, 2, 3, 4})};
    RETURN_IF_ERROR(add(std::move(spec), TaskNotify));
  }
  {
    ApiSpec spec;
    spec.name = "ulTaskNotifyTake";
    spec.subsystem = "task";
    spec.doc = "consume a pending notification";
    spec.args = {ArgSpec::Scalar("clear_on_exit", 8, 0, 1),
                 ArgSpec::Resource("task", "task")};
    RETURN_IF_ERROR(add(std::move(spec), TaskNotifyTake));
  }
  return OkStatus();
}

}  // namespace freertos
}  // namespace eof
