// Software timers, serviced by the (simulated) timer daemon task on each tick.

#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/freertos/apis.h"

namespace eof {
namespace freertos {
namespace {

EOF_COV_MODULE("freertos/timer");

int64_t TimerCreate(KernelContext& ctx, FreeRtosState& state,
                    const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t period = args[1].scalar;
  if (period == 0) {
    EOF_COV(ctx);
    return 0;  // configASSERT(xTimerPeriodInTicks > 0)
  }
  if (!ctx.ReserveRam(64).ok()) {
    EOF_COV(ctx);
    return 0;
  }
  SwTimer timer;
  timer.name = args[0].AsString().substr(0, 16);
  timer.period_ticks = period;
  timer.autoreload = args[2].scalar != 0;
  int64_t handle = state.timers.Insert(std::move(timer));
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(64);
  }
  return handle;
}

int64_t TimerStart(KernelContext& ctx, FreeRtosState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  SwTimer* timer = state.timers.Find(static_cast<int64_t>(args[0].scalar));
  if (timer == nullptr) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  EOF_COV(ctx);
  if (ctx.HasPeripheral(Peripheral::kHwTimer)) {
    // High-resolution prescaler rows: programmed on the hardware timer block.
    EOF_COV_BUCKET(ctx, state.timers.live());
    EOF_COV_BUCKET(ctx, CovSizeClass(timer->period_ticks) + 10);
  }
  timer->active = true;
  timer->expiry_tick = state.tick_count + timer->period_ticks;
  return pdPASS;
}

int64_t TimerStop(KernelContext& ctx, FreeRtosState& state,
                  const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  SwTimer* timer = state.timers.Find(static_cast<int64_t>(args[0].scalar));
  if (timer == nullptr) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  if (!timer->active) {
    EOF_COV(ctx);
    return pdFAIL;  // stop command on a dormant timer fails the daemon queue check
  }
  EOF_COV(ctx);
  timer->active = false;
  return pdPASS;
}

int64_t TimerChangePeriod(KernelContext& ctx, FreeRtosState& state,
                          const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  SwTimer* timer = state.timers.Find(static_cast<int64_t>(args[0].scalar));
  if (timer == nullptr) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  uint64_t period = args[1].scalar;
  if (period == 0) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  EOF_COV(ctx);
  timer->period_ticks = period;
  // xTimerChangePeriod (re)starts the timer, even if it was dormant.
  timer->active = true;
  timer->expiry_tick = state.tick_count + period;
  return pdPASS;
}

int64_t TimerDelete(KernelContext& ctx, FreeRtosState& state,
                    const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  if (state.timers.Find(handle) == nullptr) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  EOF_COV(ctx);
  state.timers.Remove(handle);
  ctx.ReleaseRam(64);
  return pdPASS;
}

int64_t TimerIsActive(KernelContext& ctx, FreeRtosState& state,
                      const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles / 4);
  EOF_COV(ctx);
  SwTimer* timer = state.timers.Find(static_cast<int64_t>(args[0].scalar));
  if (timer == nullptr) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  return timer->active ? pdPASS : pdFAIL;
}

}  // namespace

void TimersOnTick(KernelContext& ctx, FreeRtosState& state) {
  state.timers.ForEach([&](int64_t handle, SwTimer& timer) {
    (void)handle;
    if (!timer.active || timer.expiry_tick > state.tick_count) {
      return;
    }
    EOF_COV(ctx);
    ++timer.fire_count;
    ctx.ConsumeCycles(kListOpCycles * 4);
    if (timer.autoreload) {
      timer.expiry_tick = state.tick_count + timer.period_ticks;
    } else {
      timer.active = false;
    }
  });
}

Status RegisterTimerApis(ApiRegistry& registry, FreeRtosState& state) {
  FreeRtosState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "xTimerCreate";
    spec.subsystem = "timer";
    spec.doc = "create a software timer";
    spec.args = {ArgSpec::String("name"), ArgSpec::Scalar("period_ticks", 32, 0, 10000),
                 ArgSpec::Scalar("autoreload", 8, 0, 1)};
    spec.produces = "fr_timer";
    RETURN_IF_ERROR(add(std::move(spec), TimerCreate));
  }
  {
    ApiSpec spec;
    spec.name = "xTimerStart";
    spec.subsystem = "timer";
    spec.doc = "start a timer";
    spec.args = {ArgSpec::Resource("timer", "fr_timer")};
    RETURN_IF_ERROR(add(std::move(spec), TimerStart));
  }
  {
    ApiSpec spec;
    spec.name = "xTimerStop";
    spec.subsystem = "timer";
    spec.doc = "stop a timer";
    spec.args = {ArgSpec::Resource("timer", "fr_timer")};
    RETURN_IF_ERROR(add(std::move(spec), TimerStop));
  }
  {
    ApiSpec spec;
    spec.name = "xTimerChangePeriod";
    spec.subsystem = "timer";
    spec.doc = "change a timer's period (restarts it)";
    spec.args = {ArgSpec::Resource("timer", "fr_timer"),
                 ArgSpec::Scalar("period_ticks", 32, 0, 10000)};
    RETURN_IF_ERROR(add(std::move(spec), TimerChangePeriod));
  }
  {
    ApiSpec spec;
    spec.name = "xTimerDelete";
    spec.subsystem = "timer";
    spec.doc = "destroy a timer";
    spec.args = {ArgSpec::Resource("timer", "fr_timer")};
    RETURN_IF_ERROR(add(std::move(spec), TimerDelete));
  }
  {
    ApiSpec spec;
    spec.name = "xTimerIsTimerActive";
    spec.subsystem = "timer";
    spec.doc = "query whether a timer is running";
    spec.args = {ArgSpec::Resource("timer", "fr_timer")};
    RETURN_IF_ERROR(add(std::move(spec), TimerIsActive));
  }
  return OkStatus();
}

}  // namespace freertos
}  // namespace eof
