// Queues, binary/counting semaphores and mutexes. As in real FreeRTOS, the semaphore and
// mutex APIs are thin layers over the queue machinery, so their state shares struct Queue.

#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/freertos/apis.h"

namespace eof {
namespace freertos {
namespace {

EOF_COV_MODULE("freertos/queue");

int64_t QueueCreate(KernelContext& ctx, FreeRtosState& state,
                    const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint32_t length = static_cast<uint32_t>(args[0].scalar);
  uint32_t item_size = static_cast<uint32_t>(args[1].scalar);
  if (length == 0) {
    EOF_COV(ctx);
    return 0;  // NULL
  }
  uint64_t storage = static_cast<uint64_t>(length) * item_size + 96;
  if (!ctx.ReserveRam(storage).ok()) {
    EOF_COV(ctx);
    return 0;
  }
  Queue queue;
  queue.length = length;
  queue.item_size = item_size;
  int64_t handle = state.queues.Insert(std::move(queue));
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(storage);
    return 0;
  }
  EOF_COV(ctx);
  return handle;
}

int64_t QueueSend(KernelContext& ctx, FreeRtosState& state,
                  const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Queue* queue = state.queues.Find(static_cast<int64_t>(args[0].scalar));
  if (queue == nullptr || queue->is_semaphore) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  const std::vector<uint8_t>& payload = args[1].bytes;
  if (queue->items.size() >= queue->length) {
    EOF_COV(ctx);
    return errQUEUE_FULL;  // zero block time in agent context
  }
  EOF_COV_BUCKET(ctx, queue->items.size());  // absolute fill depth
  EOF_COV_BUCKET(ctx, CovSizeClass(queue->item_size));
  std::vector<uint8_t> item(payload.begin(),
                            payload.begin() + static_cast<std::ptrdiff_t>(std::min<size_t>(
                                                  payload.size(), queue->item_size)));
  item.resize(queue->item_size, 0);
  ctx.ConsumeCycles(kCopyPerByteCycles * queue->item_size);
  bool to_front = args[2].scalar != 0;
  if (to_front) {
    EOF_COV(ctx);
    queue->items.push_front(std::move(item));
  } else {
    EOF_COV(ctx);
    queue->items.push_back(std::move(item));
  }
  return pdPASS;
}

int64_t QueueReceive(KernelContext& ctx, FreeRtosState& state,
                     const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Queue* queue = state.queues.Find(static_cast<int64_t>(args[0].scalar));
  if (queue == nullptr || queue->is_semaphore) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  if (queue->items.empty()) {
    EOF_COV(ctx);
    return errQUEUE_EMPTY;
  }
  EOF_COV(ctx);
  ctx.ConsumeCycles(kCopyPerByteCycles * queue->item_size);
  queue->items.pop_front();
  return pdPASS;
}

int64_t QueuePeek(KernelContext& ctx, FreeRtosState& state,
                  const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Queue* queue = state.queues.Find(static_cast<int64_t>(args[0].scalar));
  if (queue == nullptr) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  if (queue->items.empty()) {
    EOF_COV(ctx);
    return errQUEUE_EMPTY;
  }
  EOF_COV(ctx);
  return pdPASS;
}

int64_t QueueMessagesWaiting(KernelContext& ctx, FreeRtosState& state,
                             const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles / 4);
  EOF_COV(ctx);
  Queue* queue = state.queues.Find(static_cast<int64_t>(args[0].scalar));
  if (queue == nullptr) {
    EOF_COV(ctx);
    return 0;
  }
  return queue->is_semaphore ? queue->sem_count : static_cast<int64_t>(queue->items.size());
}

int64_t QueueReset(KernelContext& ctx, FreeRtosState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Queue* queue = state.queues.Find(static_cast<int64_t>(args[0].scalar));
  if (queue == nullptr) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  EOF_COV(ctx);
  queue->items.clear();
  return pdPASS;
}

int64_t QueueDelete(KernelContext& ctx, FreeRtosState& state,
                    const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  Queue* queue = state.queues.Find(handle);
  if (queue == nullptr) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  EOF_COV(ctx);
  ctx.ReleaseRam(static_cast<uint64_t>(queue->length) * queue->item_size + 96);
  state.queues.Remove(handle);
  return pdPASS;
}

int64_t SemaphoreCreateBinary(KernelContext& ctx, FreeRtosState& state,
                              const std::vector<ArgValue>& args) {
  (void)args;
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  if (!ctx.ReserveRam(96).ok()) {
    EOF_COV(ctx);
    return 0;
  }
  Queue sem;
  sem.is_semaphore = true;
  sem.sem_max = 1;
  sem.sem_count = 0;  // binary semaphores start empty
  int64_t handle = state.queues.Insert(std::move(sem));
  if (handle == 0) {
    ctx.ReleaseRam(96);
  }
  return handle;
}

int64_t SemaphoreCreateCounting(KernelContext& ctx, FreeRtosState& state,
                                const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint32_t max_count = static_cast<uint32_t>(args[0].scalar);
  uint32_t initial = static_cast<uint32_t>(args[1].scalar);
  if (max_count == 0 || initial > max_count) {
    EOF_COV(ctx);
    return 0;
  }
  if (!ctx.ReserveRam(96).ok()) {
    EOF_COV(ctx);
    return 0;
  }
  Queue sem;
  sem.is_semaphore = true;
  sem.sem_max = max_count;
  sem.sem_count = initial;
  int64_t handle = state.queues.Insert(std::move(sem));
  if (handle == 0) {
    ctx.ReleaseRam(96);
  }
  return handle;
}

int64_t SemaphoreCreateMutex(KernelContext& ctx, FreeRtosState& state,
                             const std::vector<ArgValue>& args) {
  (void)args;
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  if (!ctx.ReserveRam(96).ok()) {
    EOF_COV(ctx);
    return 0;
  }
  Queue mutex;
  mutex.is_semaphore = true;
  mutex.is_mutex = true;
  mutex.sem_max = 1;
  mutex.sem_count = 1;  // mutexes start available
  int64_t handle = state.queues.Insert(std::move(mutex));
  if (handle == 0) {
    ctx.ReleaseRam(96);
  }
  return handle;
}

int64_t SemaphoreTake(KernelContext& ctx, FreeRtosState& state,
                      const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Queue* sem = state.queues.Find(static_cast<int64_t>(args[0].scalar));
  if (sem == nullptr || !sem->is_semaphore) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  if (sem->sem_count == 0) {
    EOF_COV(ctx);
    return pdFAIL;  // would block
  }
  EOF_COV_BUCKET(ctx, CovSizeClass(sem->sem_count));
  --sem->sem_count;
  if (sem->is_mutex) {
    EOF_COV(ctx);
    sem->mutex_holder = 1;  // agent task
    ++sem->recursion;
  }
  return pdPASS;
}

int64_t SemaphoreGive(KernelContext& ctx, FreeRtosState& state,
                      const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Queue* sem = state.queues.Find(static_cast<int64_t>(args[0].scalar));
  if (sem == nullptr || !sem->is_semaphore) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  if (sem->is_mutex && sem->mutex_holder == 0) {
    EOF_COV(ctx);
    return pdFAIL;  // giving a mutex nobody holds
  }
  if (sem->sem_count >= sem->sem_max) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  EOF_COV(ctx);
  ++sem->sem_count;
  if (sem->is_mutex && sem->recursion > 0 && --sem->recursion == 0) {
    sem->mutex_holder = 0;
  }
  return pdPASS;
}

}  // namespace

Status RegisterQueueApis(ApiRegistry& registry, FreeRtosState& state) {
  FreeRtosState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "xQueueCreate";
    spec.subsystem = "queue";
    spec.doc = "create a queue of N items of a given size";
    spec.args = {ArgSpec::Scalar("length", 32, 0, 256), ArgSpec::Scalar("item_size", 32, 0, 512)};
    spec.produces = "queue";
    RETURN_IF_ERROR(add(std::move(spec), QueueCreate));
  }
  {
    ApiSpec spec;
    spec.name = "xQueueSend";
    spec.subsystem = "queue";
    spec.doc = "enqueue an item (to_front selects xQueueSendToFront)";
    spec.args = {ArgSpec::Resource("queue", "queue"), ArgSpec::Buffer("item", 0, 512),
                 ArgSpec::Scalar("to_front", 8, 0, 1)};
    RETURN_IF_ERROR(add(std::move(spec), QueueSend));
  }
  {
    ApiSpec spec;
    spec.name = "xQueueReceive";
    spec.subsystem = "queue";
    spec.doc = "dequeue an item";
    spec.args = {ArgSpec::Resource("queue", "queue")};
    RETURN_IF_ERROR(add(std::move(spec), QueueReceive));
  }
  {
    ApiSpec spec;
    spec.name = "xQueuePeek";
    spec.subsystem = "queue";
    spec.doc = "peek at the head item without removing it";
    spec.args = {ArgSpec::Resource("queue", "queue")};
    RETURN_IF_ERROR(add(std::move(spec), QueuePeek));
  }
  {
    ApiSpec spec;
    spec.name = "uxQueueMessagesWaiting";
    spec.subsystem = "queue";
    spec.doc = "number of queued items";
    spec.args = {ArgSpec::Resource("queue", "queue")};
    RETURN_IF_ERROR(add(std::move(spec), QueueMessagesWaiting));
  }
  {
    ApiSpec spec;
    spec.name = "xQueueReset";
    spec.subsystem = "queue";
    spec.doc = "drop all queued items";
    spec.args = {ArgSpec::Resource("queue", "queue")};
    RETURN_IF_ERROR(add(std::move(spec), QueueReset));
  }
  {
    ApiSpec spec;
    spec.name = "vQueueDelete";
    spec.subsystem = "queue";
    spec.doc = "destroy a queue or semaphore";
    spec.args = {ArgSpec::Resource("queue", "queue")};
    RETURN_IF_ERROR(add(std::move(spec), QueueDelete));
  }
  {
    ApiSpec spec;
    spec.name = "xSemaphoreCreateBinary";
    spec.subsystem = "queue";
    spec.doc = "create a binary semaphore (starts empty)";
    spec.produces = "queue";
    RETURN_IF_ERROR(add(std::move(spec), SemaphoreCreateBinary));
  }
  {
    ApiSpec spec;
    spec.name = "xSemaphoreCreateCounting";
    spec.subsystem = "queue";
    spec.doc = "create a counting semaphore";
    spec.args = {ArgSpec::Scalar("max_count", 32, 0, 1024),
                 ArgSpec::Scalar("initial_count", 32, 0, 1024)};
    spec.produces = "queue";
    RETURN_IF_ERROR(add(std::move(spec), SemaphoreCreateCounting));
  }
  {
    ApiSpec spec;
    spec.name = "xSemaphoreCreateMutex";
    spec.subsystem = "queue";
    spec.doc = "create a mutex (priority-inheritance semaphore)";
    spec.produces = "queue";
    RETURN_IF_ERROR(add(std::move(spec), SemaphoreCreateMutex));
  }
  {
    ApiSpec spec;
    spec.name = "xSemaphoreTake";
    spec.subsystem = "queue";
    spec.doc = "take a semaphore or lock a mutex";
    spec.args = {ArgSpec::Resource("sem", "queue")};
    RETURN_IF_ERROR(add(std::move(spec), SemaphoreTake));
  }
  {
    ApiSpec spec;
    spec.name = "xSemaphoreGive";
    spec.subsystem = "queue";
    spec.doc = "give a semaphore or unlock a mutex";
    spec.args = {ArgSpec::Resource("sem", "queue")};
    RETURN_IF_ERROR(add(std::move(spec), SemaphoreGive));
  }
  return OkStatus();
}

}  // namespace freertos
}  // namespace eof
