// The FreeRTOS-like target OS (paper target #1, evaluated on ESP32).

#ifndef SRC_OS_FREERTOS_FREERTOS_H_
#define SRC_OS_FREERTOS_FREERTOS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/apps/apps_state.h"
#include "src/kernel/os.h"
#include "src/os/freertos/state.h"

namespace eof {
namespace freertos {

class FreeRtosOs : public Os {
 public:
  FreeRtosOs();

  const std::string& name() const override { return name_; }
  const ApiRegistry& registry() const override { return registry_; }
  Status Init(KernelContext& ctx) override;
  std::string exception_symbol() const override { return "panic_handler"; }
  OsFootprint footprint() const override;
  std::vector<std::pair<std::string, uint64_t>> modules() const override;
  void Tick(KernelContext& ctx) override;
  void OnPeripheralEvent(KernelContext& ctx, const PeripheralEvent& event) override;

  // Test access to internal kernel state.
  FreeRtosState& state_for_test() { return state_; }
  apps::AppsState& apps_state_for_test() { return apps_state_; }

 private:
  std::string name_ = "freertos";
  FreeRtosState state_;
  // The application layer (HTTP server + JSON component) ships in the same firmware;
  // Table 4 confines instrumentation and generation to these modules.
  apps::AppsState apps_state_;
  ApiRegistry registry_;
};

// Adds FreeRTOS to the global OS registry (idempotent-unsafe; call once via
// RegisterAllOses()).
Status RegisterFreeRtosOs();

}  // namespace freertos
}  // namespace eof

#endif  // SRC_OS_FREERTOS_FREERTOS_H_
