// Pseudo-syscalls: multi-API sequences behind one entry point, the Syzkaller idiom the
// paper adopts for behaviours plain Syzlang cannot express (§4.5, Figure 6). These are
// extended-tier specs — products of the LLM/miner pass, absent from baseline spec sets.

#include <algorithm>
#include <vector>

#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/freertos/apis.h"

namespace eof {
namespace freertos {
namespace {

EOF_COV_MODULE("freertos/pseudo");

// Creates a queue and a set of worker tasks, then pushes work items through the queue —
// the producer/consumer skeleton most FreeRTOS applications are built on.
int64_t SyzWorkerPipeline(KernelContext& ctx, FreeRtosState& state,
                          const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  // Clamps mirror the declared ArgSpec maxima: values beyond them come only from
  // wild/interesting scalars, which probe past the constraint on purpose.
  uint64_t workers = std::min<uint64_t>(args[0].scalar, 16);
  uint64_t items = std::min<uint64_t>(args[1].scalar, 64);
  if (workers == 0) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  Queue queue;
  queue.length = static_cast<uint32_t>(items == 0 ? 1 : items);
  queue.item_size = 16;
  if (!ctx.ReserveRam(queue.length * 16 + 96).ok()) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  int64_t queue_handle = state.queues.Insert(std::move(queue));
  if (queue_handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(16 * (items == 0 ? 1 : items) + 96);
    return pdFAIL;
  }
  uint64_t spawned = 0;
  std::vector<int64_t> worker_handles;
  for (uint64_t i = 0; i < workers; ++i) {
    ctx.ConsumeCycles(kContextSwitchCycles);
    Tcb tcb;
    tcb.name = "syz_worker";
    tcb.priority = 5;
    tcb.stack_words = 256;
    if (!ctx.ReserveRam(256 * 4 + 128).ok()) {
      EOF_COV(ctx);
      break;
    }
    int64_t worker_handle = state.tasks.Insert(std::move(tcb));
    if (worker_handle == 0) {
      EOF_COV(ctx);
      ctx.ReleaseRam(256 * 4 + 128);
      break;
    }
    worker_handles.push_back(worker_handle);
    ++spawned;
  }
  Queue* q = state.queues.Find(queue_handle);
  for (uint64_t i = 0; i < items && q != nullptr; ++i) {
    ctx.ConsumeCycles(kCopyPerByteCycles * 16);
    if (q->items.size() < q->length) {
      EOF_COV(ctx);
      q->items.push_back(std::vector<uint8_t>(16, static_cast<uint8_t>(i)));
    }
    if (!q->items.empty() && (i % 2) == 1) {
      EOF_COV(ctx);
      q->items.pop_front();  // a worker drains
      ctx.ConsumeCycles(kContextSwitchCycles);
    }
  }
  // Pipeline drained: the workers exit and the queue is deleted. Pseudo-calls tear
  // down their transient objects so repeated calls exercise the same paths instead
  // of wedging the tiny boards on leaked stacks.
  for (int64_t worker_handle : worker_handles) {
    ctx.ConsumeCycles(kContextSwitchCycles);
    state.tasks.Remove(worker_handle);
    ctx.ReleaseRam(256 * 4 + 128);
  }
  state.queues.Remove(queue_handle);
  ctx.ReleaseRam(16 * (items == 0 ? 1 : items) + 96);
  EOF_COV(ctx);
  return static_cast<int64_t>(spawned);
}

// Binary-semaphore ping-pong between two logical tasks, with priority churn.
int64_t SyzSemPingpong(KernelContext& ctx, FreeRtosState& state,
                       const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t rounds = std::min<uint64_t>(args[0].scalar, 512);  // the declared ArgSpec max
  if (!ctx.ReserveRam(96).ok()) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  Queue sem;
  sem.is_semaphore = true;
  sem.sem_max = 1;
  sem.sem_count = 1;
  int64_t handle = state.queues.Insert(std::move(sem));
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(96);
    return pdFAIL;
  }
  Queue* s = state.queues.Find(handle);
  uint64_t exchanged = 0;
  for (uint64_t i = 0; i < rounds; ++i) {
    ctx.ConsumeCycles(kContextSwitchCycles);
    if (s->sem_count > 0) {
      EOF_COV(ctx);
      --s->sem_count;  // take
      ++s->sem_count;  // give back from the peer
      ++exchanged;
    } else {
      EOF_COV(ctx);
      break;
    }
  }
  state.queues.Remove(handle);
  ctx.ReleaseRam(96);
  return static_cast<int64_t>(exchanged);
}

// Creates a burst of auto-reload timers and advances ticks so several fire.
int64_t SyzTimerBurst(KernelContext& ctx, FreeRtosState& state,
                      const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t count = std::min<uint64_t>(args[0].scalar, 32);  // the declared ArgSpec max
  uint64_t period = args[1].scalar;
  if (period == 0 || count == 0) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  uint64_t created = 0;
  std::vector<int64_t> timer_handles;
  for (uint64_t i = 0; i < count; ++i) {
    if (!ctx.ReserveRam(64).ok()) {
      EOF_COV(ctx);
      break;
    }
    SwTimer timer;
    timer.name = "syz_burst";
    timer.period_ticks = period;
    timer.autoreload = true;
    timer.active = true;
    timer.expiry_tick = state.tick_count + period;
    int64_t timer_handle = state.timers.Insert(std::move(timer));
    if (timer_handle == 0) {
      EOF_COV(ctx);
      ctx.ReleaseRam(64);
      break;
    }
    timer_handles.push_back(timer_handle);
    ++created;
  }
  EOF_COV(ctx);
  state.tick_count += period * 2;
  TimersOnTick(ctx, state);
  // Burst observed: delete the timers again (xTimerDelete on each) — transient
  // pseudo-call objects must not outlive the call on RAM-starved boards.
  for (int64_t timer_handle : timer_handles) {
    state.timers.Remove(timer_handle);
    ctx.ReleaseRam(64);
  }
  return static_cast<int64_t>(created);
}

}  // namespace

Status RegisterPseudoApis(ApiRegistry& registry, FreeRtosState& state) {
  FreeRtosState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    spec.is_pseudo = true;
    spec.extended_spec = true;
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "syz_worker_pipeline";
    spec.subsystem = "pseudo";
    spec.doc = "queue + worker-task producer/consumer pipeline";
    spec.args = {ArgSpec::Scalar("workers", 32, 0, 16), ArgSpec::Scalar("items", 32, 0, 64)};
    RETURN_IF_ERROR(add(std::move(spec), SyzWorkerPipeline));
  }
  {
    ApiSpec spec;
    spec.name = "syz_sem_pingpong";
    spec.subsystem = "pseudo";
    spec.doc = "binary-semaphore ping-pong rounds";
    spec.args = {ArgSpec::Scalar("rounds", 32, 0, 512)};
    RETURN_IF_ERROR(add(std::move(spec), SyzSemPingpong));
  }
  {
    ApiSpec spec;
    spec.name = "syz_timer_burst";
    spec.subsystem = "pseudo";
    spec.doc = "auto-reload timer burst with tick advance";
    spec.args = {ArgSpec::Scalar("count", 32, 0, 32), ArgSpec::Scalar("period", 32, 0, 100)};
    RETURN_IF_ERROR(add(std::move(spec), SyzTimerBurst));
  }
  return OkStatus();
}

}  // namespace freertos
}  // namespace eof
