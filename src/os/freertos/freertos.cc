#include "src/os/freertos/freertos.h"

#include "src/common/logging.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/apps/apps.h"
#include "src/os/freertos/apis.h"

namespace eof {
namespace freertos {
namespace {

EOF_COV_MODULE("freertos/kernel");

constexpr uint64_t kHeapArenaBytes = 64 * 1024;

}  // namespace

FreeRtosOs::FreeRtosOs() {
  Status status = OkStatus();
  auto accumulate = [&status](Status step) {
    if (status.ok() && !step.ok()) {
      status = step;
    }
  };
  accumulate(RegisterTaskApis(registry_, state_));
  accumulate(RegisterQueueApis(registry_, state_));
  accumulate(RegisterEventGroupApis(registry_, state_));
  accumulate(RegisterTimerApis(registry_, state_));
  accumulate(RegisterHeapApis(registry_, state_));
  accumulate(RegisterStreamBufferApis(registry_, state_));
  accumulate(RegisterPartitionApis(registry_, state_));
  accumulate(RegisterPseudoApis(registry_, state_));
  accumulate(apps::RegisterAppApis(registry_, apps_state_));
  EOF_CHECK(status.ok()) << "FreeRTOS API registration failed: " << status.ToString();
}

Status FreeRtosOs::Init(KernelContext& ctx) {
  EOF_COV(ctx);
  ctx.ConsumeCycles(kApiBaseCycles * 4);  // clock tree, heap init, scheduler start
  HeapInit(state_, kHeapArenaBytes);
  state_.scheduler_running = true;
  // The IDLE task always exists once the scheduler starts.
  Tcb idle;
  idle.name = "IDLE";
  idle.priority = 0;
  idle.stack_words = 128;
  if (state_.tasks.Insert(std::move(idle)) == 0) {
    return InternalError("could not create IDLE task");
  }
  ctx.LogLine("FreeRTOS v10.5 (EOF sim) — scheduler started on " + ctx.env().spec().name);
  return OkStatus();
}

OsFootprint FreeRtosOs::footprint() const {
  // Base .text+.rodata+.data of the evaluation build (§5.5.1 reports 2.825 MB -> 2.947 MB
  // with instrumentation). edge_sites is the instrumentable-site population of the build.
  OsFootprint footprint;
  footprint.base_image_bytes = 2825 * 1024;
  footprint.edge_sites = 6800;
  return footprint;
}

std::vector<std::pair<std::string, uint64_t>> FreeRtosOs::modules() const {
  // Basic-block estimates per module; generous vs. the real site counts so hash collisions
  // in the synthetic BB space stay rare.
  return {
      {"freertos/kernel", 256},  {"freertos/task", 768},  {"freertos/queue", 1024},
      {"freertos/event", 512},   {"freertos/timer", 512}, {"freertos/heap", 768},
      {"freertos/stream", 512},  {"freertos/partition", 768}, {"freertos/pseudo", 512},
      {"apps/http", 1024},       {"apps/json", 768},
  };
}

void FreeRtosOs::OnPeripheralEvent(KernelContext& ctx, const PeripheralEvent& event) {
  // Interrupt context: short, no blocking, per-source coverage rows.
  ctx.ConsumeCycles(kContextSwitchCycles);
  switch (event.kind) {
    case PeripheralEventKind::kSerialRx: {
      if (!ctx.HasPeripheral(Peripheral::kUartHw)) {
        ++state_.spurious_irq_count;
        EOF_COV(ctx);
        return;
      }
      EOF_COV(ctx);
      if (state_.uart_rx_ring.size() >= 64) {
        EOF_COV(ctx);  // RX overrun path
        ++state_.uart_rx_overruns;
        return;
      }
      state_.uart_rx_ring.push_back(static_cast<uint8_t>(event.value));
      EOF_COV_BUCKET(ctx, state_.uart_rx_ring.size() / 4);
      return;
    }
    case PeripheralEventKind::kGpioEdge: {
      if (!ctx.HasPeripheral(Peripheral::kGpio)) {
        ++state_.spurious_irq_count;
        EOF_COV(ctx);
        return;
      }
      EOF_COV(ctx);
      uint32_t line = event.value & 0x3;
      ++state_.gpio_edge_count[line];
      EOF_COV_BUCKET(ctx, line * 4 + (event.value >> 8 & 1));
      return;
    }
    case PeripheralEventKind::kTimerTick: {
      if (!ctx.HasPeripheral(Peripheral::kHwTimer)) {
        ++state_.spurious_irq_count;
        return;
      }
      EOF_COV(ctx);
      state_.tick_count += 1 + (event.value & 0x7);
      TimersOnTick(ctx, state_);
      return;
    }
    default:
      EOF_COV(ctx);
      ++state_.spurious_irq_count;  // no CAN controller on this target
      return;
  }
}

void FreeRtosOs::Tick(KernelContext& ctx) {
  ++state_.tick_count;
  ctx.ConsumeCycles(kTickCycles);
  TimersOnTick(ctx, state_);
}

Status RegisterFreeRtosOs() {
  OsInfo info;
  info.name = "freertos";
  info.factory = [] { return std::make_unique<FreeRtosOs>(); };
  info.supported_archs = {Arch::kArm, Arch::kRiscV, Arch::kXtensa};
  info.default_board = "esp32-devkitc";
  info.description = "FreeRTOS-like kernel: tasks, queues, semaphores, event groups, "
                     "software timers, heap_4, stream buffers, ESP-IDF partitions";
  return OsRegistry::Instance().Register(std::move(info));
}

}  // namespace freertos
}  // namespace eof
