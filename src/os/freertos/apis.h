// Per-subsystem registration hooks for the FreeRTOS-like kernel. Each function registers
// its subsystem's API specs + implementations against the shared state.

#ifndef SRC_OS_FREERTOS_APIS_H_
#define SRC_OS_FREERTOS_APIS_H_

#include "src/common/status.h"
#include "src/kernel/api.h"
#include "src/os/freertos/state.h"

namespace eof {
namespace freertos {

Status RegisterTaskApis(ApiRegistry& registry, FreeRtosState& state);
Status RegisterQueueApis(ApiRegistry& registry, FreeRtosState& state);
Status RegisterEventGroupApis(ApiRegistry& registry, FreeRtosState& state);
Status RegisterTimerApis(ApiRegistry& registry, FreeRtosState& state);
Status RegisterHeapApis(ApiRegistry& registry, FreeRtosState& state);
Status RegisterStreamBufferApis(ApiRegistry& registry, FreeRtosState& state);
Status RegisterPartitionApis(ApiRegistry& registry, FreeRtosState& state);
Status RegisterPseudoApis(ApiRegistry& registry, FreeRtosState& state);

// Heap bookkeeping shared with Init().
void HeapInit(FreeRtosState& state, uint64_t arena_size);

// Timer expiry processing, called from FreeRtosOs::Tick().
void TimersOnTick(KernelContext& ctx, FreeRtosState& state);

}  // namespace freertos
}  // namespace eof

#endif  // SRC_OS_FREERTOS_APIS_H_
