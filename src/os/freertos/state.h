// Kernel state of the FreeRTOS-like target. One instance lives inside FreeRtosOs and is
// shared by the per-subsystem implementation files; it dies with the boot.

#ifndef SRC_OS_FREERTOS_STATE_H_
#define SRC_OS_FREERTOS_STATE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/kernel/handle_table.h"

namespace eof {
namespace freertos {

// FreeRTOS-style status codes.
inline constexpr int64_t pdPASS = 1;
inline constexpr int64_t pdFAIL = 0;
inline constexpr int64_t errQUEUE_FULL = -1;
inline constexpr int64_t errQUEUE_EMPTY = -2;
inline constexpr int64_t errCOULD_NOT_ALLOCATE_REQUIRED_MEMORY = -3;
inline constexpr uint64_t portMAX_DELAY = 0xffffffffULL;

enum class TaskState : uint8_t { kReady, kRunning, kBlocked, kSuspended, kDeleted };

struct Tcb {
  std::string name;
  uint32_t priority = 0;
  uint32_t stack_words = 0;
  TaskState state = TaskState::kReady;
  uint32_t notify_value = 0;
  bool notify_pending = false;
  uint64_t run_ticks = 0;
};

struct Queue {
  uint32_t length = 0;      // max items
  uint32_t item_size = 0;   // bytes per item
  std::deque<std::vector<uint8_t>> items;
  // FreeRTOS implements semaphores and mutexes as queues; this mirrors that.
  bool is_semaphore = false;
  bool is_mutex = false;
  uint32_t sem_count = 0;   // current count for semaphore queues
  uint32_t sem_max = 0;
  int64_t mutex_holder = 0;  // task handle holding the mutex (0 = free)
  uint32_t recursion = 0;
};

struct EventGroup {
  uint32_t bits = 0;
};

struct SwTimer {
  std::string name;
  uint64_t period_ticks = 0;
  bool autoreload = false;
  bool active = false;
  uint64_t expiry_tick = 0;
  uint32_t fire_count = 0;
};

struct StreamBuffer {
  uint64_t capacity = 0;
  uint64_t trigger_level = 0;
  std::deque<uint8_t> data;
};

// heap_4-style block list over a virtual arena (offsets, not host memory).
struct HeapBlock {
  uint64_t offset = 0;
  uint64_t size = 0;
  bool free = true;
};

struct Heap4 {
  uint64_t arena_size = 0;
  std::vector<HeapBlock> blocks;  // sorted by offset, adjacent-free coalesced
  uint64_t free_bytes = 0;
  uint64_t min_ever_free = 0;
  uint64_t alloc_count = 0;
};

struct FreeRtosState {
  HandleTable<Tcb> tasks{64};
  HandleTable<Queue> queues{128};
  HandleTable<EventGroup> event_groups{64};
  HandleTable<SwTimer> timers{64};
  HandleTable<StreamBuffer> stream_buffers{64};
  Heap4 heap;
  HandleTable<uint64_t> heap_allocs{256};  // handle -> arena offset

  uint64_t tick_count = 0;
  bool scheduler_running = false;

  // ISR-side state (peripheral event injection, the §6 extension).
  std::deque<uint8_t> uart_rx_ring;   // serial RX ISR fills; capacity 64
  uint32_t uart_rx_overruns = 0;
  uint32_t gpio_edge_count[4] = {0, 0, 0, 0};
  uint32_t spurious_irq_count = 0;

  // ESP-IDF-style partition registry state (bug #13 lives here).
  struct PartitionSlot {
    std::string label;
    uint64_t flash_offset = 0;
    uint64_t size = 0;
    bool loaded = false;
  };
  std::vector<PartitionSlot> partition_slots;
};

}  // namespace freertos
}  // namespace eof

#endif  // SRC_OS_FREERTOS_STATE_H_
