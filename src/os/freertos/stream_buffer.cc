// Stream buffers: byte-stream pipes with a trigger level (stream_buffer.c semantics,
// single-writer/single-reader).

#include <algorithm>

#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/freertos/apis.h"

namespace eof {
namespace freertos {
namespace {

EOF_COV_MODULE("freertos/stream");

int64_t StreamBufferCreate(KernelContext& ctx, FreeRtosState& state,
                           const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t capacity = args[0].scalar;
  uint64_t trigger = args[1].scalar;
  if (capacity == 0) {
    EOF_COV(ctx);
    return 0;
  }
  if (trigger == 0 || trigger > capacity) {
    EOF_COV(ctx);
    return 0;  // configASSERT(xTriggerLevelBytes <= xBufferSizeBytes)
  }
  if (!ctx.ReserveRam(capacity + 64).ok()) {
    EOF_COV(ctx);
    return 0;
  }
  StreamBuffer buffer;
  buffer.capacity = capacity;
  buffer.trigger_level = trigger;
  int64_t handle = state.stream_buffers.Insert(std::move(buffer));
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(capacity + 64);
  }
  return handle;
}

int64_t StreamBufferSend(KernelContext& ctx, FreeRtosState& state,
                         const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  StreamBuffer* buffer = state.stream_buffers.Find(static_cast<int64_t>(args[0].scalar));
  if (buffer == nullptr) {
    EOF_COV(ctx);
    return 0;
  }
  const std::vector<uint8_t>& payload = args[1].bytes;
  uint64_t room = buffer->capacity - buffer->data.size();
  uint64_t to_write = std::min<uint64_t>(payload.size(), room);
  if (to_write == 0) {
    EOF_COV(ctx);
    return 0;  // full; zero block time
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, CovSizeClass(buffer->data.size()));  // absolute fill class
  ctx.ConsumeCycles(kCopyPerByteCycles * to_write);
  buffer->data.insert(buffer->data.end(), payload.begin(),
                      payload.begin() + static_cast<std::ptrdiff_t>(to_write));
  return static_cast<int64_t>(to_write);
}

int64_t StreamBufferReceive(KernelContext& ctx, FreeRtosState& state,
                            const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  StreamBuffer* buffer = state.stream_buffers.Find(static_cast<int64_t>(args[0].scalar));
  if (buffer == nullptr) {
    EOF_COV(ctx);
    return 0;
  }
  uint64_t max_len = args[1].scalar;
  if (buffer->data.size() < buffer->trigger_level) {
    EOF_COV(ctx);
    return 0;  // below trigger level the reader would block
  }
  EOF_COV(ctx);
  uint64_t to_read = std::min<uint64_t>(max_len, buffer->data.size());
  ctx.ConsumeCycles(kCopyPerByteCycles * to_read);
  buffer->data.erase(buffer->data.begin(),
                     buffer->data.begin() + static_cast<std::ptrdiff_t>(to_read));
  return static_cast<int64_t>(to_read);
}

int64_t StreamBufferReset(KernelContext& ctx, FreeRtosState& state,
                          const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  StreamBuffer* buffer = state.stream_buffers.Find(static_cast<int64_t>(args[0].scalar));
  if (buffer == nullptr) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  EOF_COV(ctx);
  buffer->data.clear();
  return pdPASS;
}

int64_t StreamBufferDelete(KernelContext& ctx, FreeRtosState& state,
                           const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  StreamBuffer* buffer = state.stream_buffers.Find(handle);
  if (buffer == nullptr) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  EOF_COV(ctx);
  ctx.ReleaseRam(buffer->capacity + 64);
  state.stream_buffers.Remove(handle);
  return pdPASS;
}

}  // namespace

Status RegisterStreamBufferApis(ApiRegistry& registry, FreeRtosState& state) {
  FreeRtosState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "xStreamBufferCreate";
    spec.subsystem = "stream";
    spec.doc = "create a byte stream buffer";
    spec.args = {ArgSpec::Scalar("capacity", 32, 0, 8192),
                 ArgSpec::Scalar("trigger_level", 32, 0, 8192)};
    spec.produces = "stream_buffer";
    RETURN_IF_ERROR(add(std::move(spec), StreamBufferCreate));
  }
  {
    ApiSpec spec;
    spec.name = "xStreamBufferSend";
    spec.subsystem = "stream";
    spec.doc = "write bytes into a stream buffer";
    spec.args = {ArgSpec::Resource("buffer", "stream_buffer"), ArgSpec::Buffer("data", 0, 1024)};
    RETURN_IF_ERROR(add(std::move(spec), StreamBufferSend));
  }
  {
    ApiSpec spec;
    spec.name = "xStreamBufferReceive";
    spec.subsystem = "stream";
    spec.doc = "read bytes from a stream buffer";
    spec.args = {ArgSpec::Resource("buffer", "stream_buffer"),
                 ArgSpec::Scalar("max_len", 32, 0, 1024)};
    RETURN_IF_ERROR(add(std::move(spec), StreamBufferReceive));
  }
  {
    ApiSpec spec;
    spec.name = "xStreamBufferReset";
    spec.subsystem = "stream";
    spec.doc = "drop buffered bytes";
    spec.args = {ArgSpec::Resource("buffer", "stream_buffer")};
    RETURN_IF_ERROR(add(std::move(spec), StreamBufferReset));
  }
  {
    ApiSpec spec;
    spec.name = "vStreamBufferDelete";
    spec.subsystem = "stream";
    spec.doc = "destroy a stream buffer";
    spec.args = {ArgSpec::Resource("buffer", "stream_buffer")};
    RETURN_IF_ERROR(add(std::move(spec), StreamBufferDelete));
  }
  return OkStatus();
}

}  // namespace freertos
}  // namespace eof
