// heap_4-style allocator: first-fit over a free-block list with coalescing of adjacent
// free blocks, 8-byte alignment, and a free-bytes watermark. The arena is virtual (block
// offsets, not host memory); the algorithm and its branch structure follow heap_4.c.

#include <algorithm>

#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/freertos/apis.h"

namespace eof {
namespace freertos {
namespace {

EOF_COV_MODULE("freertos/heap");

constexpr uint64_t kAlignment = 8;
constexpr uint64_t kHeapStructSize = 16;  // per-block bookkeeping overhead

uint64_t AlignUp(uint64_t value) { return (value + kAlignment - 1) & ~(kAlignment - 1); }

// First-fit scan. Returns blocks.size() when no block fits.
size_t FindFreeBlock(KernelContext& ctx, const Heap4& heap, uint64_t want) {
  for (size_t i = 0; i < heap.blocks.size(); ++i) {
    ctx.ConsumeCycles(kListOpCycles);
    if (heap.blocks[i].free && heap.blocks[i].size >= want) {
      return i;
    }
  }
  return heap.blocks.size();
}

void Coalesce(KernelContext& ctx, Heap4& heap) {
  for (size_t i = 0; i + 1 < heap.blocks.size();) {
    ctx.ConsumeCycles(kListOpCycles);
    HeapBlock& cur = heap.blocks[i];
    HeapBlock& next = heap.blocks[i + 1];
    if (cur.free && next.free && cur.offset + cur.size == next.offset) {
      EOF_COV(ctx);
      cur.size += next.size;
      heap.blocks.erase(heap.blocks.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    } else {
      ++i;
    }
  }
}

int64_t PortMalloc(KernelContext& ctx, FreeRtosState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t size = args[0].scalar;
  Heap4& heap = state.heap;
  if (size == 0) {
    EOF_COV(ctx);
    return 0;
  }
  uint64_t want = AlignUp(size + kHeapStructSize);
  if (want < size) {
    EOF_COV(ctx);
    return 0;  // overflow in the size computation is rejected
  }
  EOF_COV_BUCKET(ctx, CovSizeClass(size));
  size_t index = FindFreeBlock(ctx, heap, want);
  if (index == heap.blocks.size()) {
    EOF_COV(ctx);
    return 0;  // out of heap
  }
  EOF_COV_BUCKET(ctx, heap.blocks.size());  // fragmentation depth
  HeapBlock& block = heap.blocks[index];
  uint64_t alloc_offset = block.offset;
  if (block.size - want >= 2 * kHeapStructSize + kAlignment) {
    // Split: keep the tail as a new free block.
    EOF_COV(ctx);
    HeapBlock tail;
    tail.offset = block.offset + want;
    tail.size = block.size - want;
    tail.free = true;
    block.size = want;
    block.free = false;
    heap.blocks.insert(heap.blocks.begin() + static_cast<std::ptrdiff_t>(index) + 1, tail);
  } else {
    // Hand out the whole block.
    EOF_COV(ctx);
    block.free = false;
  }
  ctx.ConsumeCycles(kAllocOpCycles);
  heap.free_bytes -= heap.blocks[index].size;
  heap.min_ever_free = std::min(heap.min_ever_free, heap.free_bytes);
  ++heap.alloc_count;
  int64_t handle = state.heap_allocs.Insert(alloc_offset);
  if (handle == 0) {
    EOF_COV(ctx);
    // Allocation tracker full: roll back so the heap stays consistent.
    heap.blocks[index].free = true;
    heap.free_bytes += heap.blocks[index].size;
    Coalesce(ctx, heap);
    return 0;
  }
  return handle;
}

int64_t PortFree(KernelContext& ctx, FreeRtosState& state,
                 const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  uint64_t* offset = state.heap_allocs.Find(handle);
  if (offset == nullptr) {
    EOF_COV(ctx);
    return pdFAIL;  // vPortFree(NULL) and stale pointers are no-ops here
  }
  Heap4& heap = state.heap;
  for (HeapBlock& block : heap.blocks) {
    ctx.ConsumeCycles(kListOpCycles);
    if (block.offset == *offset) {
      if (block.free) {
        EOF_COV(ctx);
        return pdFAIL;  // double free caught by the allocated-bit check
      }
      EOF_COV(ctx);
      block.free = true;
      heap.free_bytes += block.size;
      state.heap_allocs.Remove(handle);
      Coalesce(ctx, heap);
      ctx.ConsumeCycles(kAllocOpCycles);
      return pdPASS;
    }
  }
  EOF_COV(ctx);
  return pdFAIL;
}

int64_t GetFreeHeapSize(KernelContext& ctx, FreeRtosState& state,
                        const std::vector<ArgValue>& args) {
  (void)args;
  ctx.ConsumeCycles(kApiBaseCycles / 4);
  EOF_COV(ctx);
  return static_cast<int64_t>(state.heap.free_bytes);
}

int64_t GetMinimumEverFreeHeapSize(KernelContext& ctx, FreeRtosState& state,
                                   const std::vector<ArgValue>& args) {
  (void)args;
  ctx.ConsumeCycles(kApiBaseCycles / 4);
  EOF_COV(ctx);
  return static_cast<int64_t>(state.heap.min_ever_free);
}

}  // namespace

void HeapInit(FreeRtosState& state, uint64_t arena_size) {
  state.heap.arena_size = arena_size;
  state.heap.blocks = {HeapBlock{0, arena_size, true}};
  state.heap.free_bytes = arena_size;
  state.heap.min_ever_free = arena_size;
  state.heap.alloc_count = 0;
}

Status RegisterHeapApis(ApiRegistry& registry, FreeRtosState& state) {
  FreeRtosState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "pvPortMalloc";
    spec.subsystem = "heap";
    spec.doc = "allocate from the FreeRTOS heap";
    spec.args = {ArgSpec::Scalar("size", 32, 0, 16384)};
    spec.produces = "heap_mem";
    RETURN_IF_ERROR(add(std::move(spec), PortMalloc));
  }
  {
    ApiSpec spec;
    spec.name = "vPortFree";
    spec.subsystem = "heap";
    spec.doc = "return memory to the FreeRTOS heap";
    spec.args = {ArgSpec::Resource("mem", "heap_mem")};
    RETURN_IF_ERROR(add(std::move(spec), PortFree));
  }
  {
    ApiSpec spec;
    spec.name = "xPortGetFreeHeapSize";
    spec.subsystem = "heap";
    spec.doc = "current free heap bytes";
    RETURN_IF_ERROR(add(std::move(spec), GetFreeHeapSize));
  }
  {
    ApiSpec spec;
    spec.name = "xPortGetMinimumEverFreeHeapSize";
    spec.subsystem = "heap";
    spec.doc = "low-watermark of free heap bytes";
    RETURN_IF_ERROR(add(std::move(spec), GetMinimumEverFreeHeapSize));
  }
  return OkStatus();
}

}  // namespace freertos
}  // namespace eof
