// ESP-IDF-flavoured partition registry on top of the board's SPI flash.
//
// ── Bug #13 (Table 2): FreeRTOS / Kernel / Kernel Panic / load_partitions() ──
// load_partitions() copies `count` entries starting at `start_slot` into a fixed 8-entry
// in-RAM table. It validates start_slot but not start_slot + count, so an overlong copy
// runs off the table into the adjacent flash-cache writeback buffer: the dirty line is
// flushed over the on-flash partition table, corrupting it, and the loader then faults on
// the mangled entry. After the panic the image no longer passes boot validation — this is
// the bug class that makes a plain reboot insufficient (§4.4.2) and forces EOF's reflash
// path. Requires real SPI flash, so emulation-based tools never reach it.

#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/image_layout.h"
#include "src/kernel/kernel_context.h"
#include "src/os/freertos/apis.h"

namespace eof {
namespace freertos {
namespace {

EOF_COV_MODULE("freertos/partition");

constexpr uint64_t ESP_OK = 0;
constexpr int64_t ESP_ERR_NOT_SUPPORTED = -262;
constexpr int64_t ESP_ERR_NOT_FOUND = -261;
constexpr int64_t ESP_ERR_INVALID_ARG = -258;
constexpr int64_t ESP_ERR_INVALID_STATE = -259;
constexpr int64_t ESP_ERR_FLASH_OP_FAIL = -260;

constexpr size_t kMaxSlots = 8;

int64_t LoadPartitions(KernelContext& ctx, FreeRtosState& state,
                       const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  if (!ctx.HasPeripheral(Peripheral::kSpiFlash)) {
    EOF_COV(ctx);
    return ESP_ERR_NOT_SUPPORTED;  // no flash controller on emulated machines
  }
  uint64_t start_slot = args[0].scalar;
  uint64_t count = args[1].scalar;
  if (start_slot >= kMaxSlots) {
    EOF_COV(ctx);
    return ESP_ERR_INVALID_ARG;
  }
  if (count == 0) {
    EOF_COV(ctx);
    return ESP_ERR_INVALID_ARG;
  }
  // Populate from the image's on-flash table.
  const PartitionTable& table = ctx.image().partition_table();
  state.partition_slots.clear();
  for (const Partition& part : table.partitions) {
    EOF_COV(ctx);
    ctx.ConsumeCycles(kListOpCycles * 8);
    FreeRtosState::PartitionSlot slot;
    slot.label = part.name;
    slot.flash_offset = part.offset;
    slot.size = part.size;
    slot.loaded = true;
    state.partition_slots.push_back(slot);
  }
  // BUG: the bound check uses start_slot only; a long copy from a high slot runs past the
  // table (short overruns land in padding and stay silent).
  if (start_slot >= 4 && start_slot + count > kMaxSlots + 7) {
    EOF_COV(ctx);
    // The copy loop runs out of the slot array into the flash-cache writeback buffer;
    // the dirty line lands on the on-flash partition table.
    std::vector<uint8_t> garbage(128, 0xa5);
    (void)ctx.env().flash().Write(kPtableFlashOffset, garbage);
    ctx.Panic(
        "Guru Meditation Error: Core 0 panic'ed (LoadProhibited)",
        StrFormat("Backtrace: load_partitions:0x%llx <- esp_partition_init <- app_main",
                  static_cast<unsigned long long>(kPtableFlashOffset)));
  }
  EOF_COV(ctx);
  return ESP_OK;
}

int64_t PartitionFind(KernelContext& ctx, FreeRtosState& state,
                      const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  if (state.partition_slots.empty()) {
    EOF_COV(ctx);
    return ESP_ERR_INVALID_STATE;  // load_partitions() first
  }
  std::string label = args[0].AsString();
  for (size_t i = 0; i < state.partition_slots.size(); ++i) {
    ctx.ConsumeCycles(kListOpCycles);
    if (state.partition_slots[i].label == label) {
      EOF_COV(ctx);
      return static_cast<int64_t>(i) + 1;  // partition handle = slot index + 1
    }
  }
  EOF_COV(ctx);
  return ESP_ERR_NOT_FOUND;
}

FreeRtosState::PartitionSlot* SlotOf(FreeRtosState& state, int64_t handle) {
  if (handle <= 0 || static_cast<size_t>(handle) > state.partition_slots.size()) {
    return nullptr;
  }
  return &state.partition_slots[static_cast<size_t>(handle) - 1];
}

int64_t PartitionRead(KernelContext& ctx, FreeRtosState& state,
                      const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  FreeRtosState::PartitionSlot* slot = SlotOf(state, static_cast<int64_t>(args[0].scalar));
  if (slot == nullptr) {
    EOF_COV(ctx);
    return ESP_ERR_INVALID_ARG;
  }
  uint64_t offset = args[1].scalar;
  uint64_t length = args[2].scalar;
  if (offset + length > slot->size) {
    EOF_COV(ctx);
    return ESP_ERR_INVALID_ARG;  // esp_partition bounds its accesses
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, CovSizeClass(length));
  ctx.ConsumeCycles(kCopyPerByteCycles * length);
  auto data = ctx.env().flash().Read(slot->flash_offset + offset, length);
  return data.ok() ? static_cast<int64_t>(ESP_OK) : ESP_ERR_FLASH_OP_FAIL;
}

int64_t PartitionWrite(KernelContext& ctx, FreeRtosState& state,
                       const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  FreeRtosState::PartitionSlot* slot = SlotOf(state, static_cast<int64_t>(args[0].scalar));
  if (slot == nullptr) {
    EOF_COV(ctx);
    return ESP_ERR_INVALID_ARG;
  }
  if (slot->label != "nvs") {
    EOF_COV(ctx);
    return ESP_ERR_NOT_SUPPORTED;  // app/bootloader partitions are write-protected
  }
  uint64_t offset = args[1].scalar;
  const std::vector<uint8_t>& data = args[2].bytes;
  if (offset + data.size() > slot->size) {
    EOF_COV(ctx);
    return ESP_ERR_INVALID_ARG;
  }
  EOF_COV(ctx);
  ctx.ConsumeCycles(kCopyPerByteCycles * 8 * data.size());  // flash programming is slow
  Status written = ctx.env().flash().Write(slot->flash_offset + offset, data);
  return written.ok() ? static_cast<int64_t>(ESP_OK) : ESP_ERR_FLASH_OP_FAIL;
}

int64_t PartitionErase(KernelContext& ctx, FreeRtosState& state,
                       const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  FreeRtosState::PartitionSlot* slot = SlotOf(state, static_cast<int64_t>(args[0].scalar));
  if (slot == nullptr) {
    EOF_COV(ctx);
    return ESP_ERR_INVALID_ARG;
  }
  if (slot->label != "nvs") {
    EOF_COV(ctx);
    return ESP_ERR_NOT_SUPPORTED;
  }
  EOF_COV(ctx);
  std::vector<uint8_t> blank(slot->size, 0xff);
  ctx.ConsumeCycles(kCopyPerByteCycles * 16 * slot->size);
  Status erased = ctx.env().flash().Write(slot->flash_offset, blank);
  return erased.ok() ? static_cast<int64_t>(ESP_OK) : ESP_ERR_FLASH_OP_FAIL;
}

}  // namespace

Status RegisterPartitionApis(ApiRegistry& registry, FreeRtosState& state) {
  FreeRtosState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "load_partitions";
    spec.subsystem = "partition";
    spec.doc = "load partition table entries into the kernel registry";
    spec.args = {ArgSpec::Scalar("start_slot", 32, 0, 7), ArgSpec::Scalar("count", 32, 0, 15)};
    RETURN_IF_ERROR(add(std::move(spec), LoadPartitions));
  }
  {
    ApiSpec spec;
    spec.name = "esp_partition_find";
    spec.subsystem = "partition";
    spec.doc = "find a partition by label";
    spec.args = {ArgSpec::String("label", {"bootloader", "ptable", "kernel", "nvs", "ota_0"})};
    spec.produces = "partition";
    RETURN_IF_ERROR(add(std::move(spec), PartitionFind));
  }
  {
    ApiSpec spec;
    spec.name = "esp_partition_read";
    spec.subsystem = "partition";
    spec.doc = "read bytes from a partition";
    spec.args = {ArgSpec::Resource("part", "partition"),
                 ArgSpec::Scalar("offset", 32, 0, 65536),
                 ArgSpec::Scalar("length", 32, 0, 4096)};
    RETURN_IF_ERROR(add(std::move(spec), PartitionRead));
  }
  {
    ApiSpec spec;
    spec.name = "esp_partition_write";
    spec.subsystem = "partition";
    spec.doc = "program bytes into a writable partition";
    spec.args = {ArgSpec::Resource("part", "partition"),
                 ArgSpec::Scalar("offset", 32, 0, 65536), ArgSpec::Buffer("data", 0, 512)};
    RETURN_IF_ERROR(add(std::move(spec), PartitionWrite));
  }
  {
    ApiSpec spec;
    spec.name = "esp_partition_erase";
    spec.subsystem = "partition";
    spec.doc = "erase a writable partition";
    spec.args = {ArgSpec::Resource("part", "partition")};
    RETURN_IF_ERROR(add(std::move(spec), PartitionErase));
  }
  return OkStatus();
}

}  // namespace freertos
}  // namespace eof
