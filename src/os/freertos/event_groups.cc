// Event groups: 24 usable bits per group, set/clear/wait semantics per event_groups.c.

#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/freertos/apis.h"

namespace eof {
namespace freertos {
namespace {

EOF_COV_MODULE("freertos/event");

// The top byte of the bits word is reserved for kernel control bits.
constexpr uint32_t kEventBitsMask = 0x00ffffff;

int64_t EventGroupCreate(KernelContext& ctx, FreeRtosState& state,
                         const std::vector<ArgValue>& args) {
  (void)args;
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  if (!ctx.ReserveRam(48).ok()) {
    EOF_COV(ctx);
    return 0;
  }
  int64_t handle = state.event_groups.Insert(EventGroup{});
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(48);
  }
  return handle;
}

int64_t EventGroupSetBits(KernelContext& ctx, FreeRtosState& state,
                          const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  EventGroup* group = state.event_groups.Find(static_cast<int64_t>(args[0].scalar));
  if (group == nullptr) {
    EOF_COV(ctx);
    return 0;
  }
  uint32_t bits = static_cast<uint32_t>(args[1].scalar);
  if ((bits & ~kEventBitsMask) != 0) {
    EOF_COV(ctx);  // control bits stripped, as configASSERT would flag in debug builds
    bits &= kEventBitsMask;
  }
  EOF_COV_BUCKET(ctx, static_cast<uint64_t>(__builtin_popcount(group->bits | bits)));
  group->bits |= bits;
  return group->bits;
}

int64_t EventGroupClearBits(KernelContext& ctx, FreeRtosState& state,
                            const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  EventGroup* group = state.event_groups.Find(static_cast<int64_t>(args[0].scalar));
  if (group == nullptr) {
    EOF_COV(ctx);
    return 0;
  }
  uint32_t before = group->bits;
  group->bits &= ~static_cast<uint32_t>(args[1].scalar);
  return before;
}

int64_t EventGroupWaitBits(KernelContext& ctx, FreeRtosState& state,
                           const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  EventGroup* group = state.event_groups.Find(static_cast<int64_t>(args[0].scalar));
  if (group == nullptr) {
    EOF_COV(ctx);
    return 0;
  }
  uint32_t wait_bits = static_cast<uint32_t>(args[1].scalar) & kEventBitsMask;
  bool clear_on_exit = args[2].scalar != 0;
  bool wait_all = args[3].scalar != 0;
  if (wait_bits == 0) {
    EOF_COV(ctx);
    return 0;  // waiting for nothing is rejected
  }
  bool satisfied = wait_all ? (group->bits & wait_bits) == wait_bits
                            : (group->bits & wait_bits) != 0;
  uint32_t snapshot = group->bits;
  if (satisfied) {
    EOF_COV(ctx);
    if (clear_on_exit) {
      EOF_COV(ctx);
      group->bits &= ~wait_bits;
    }
    return snapshot;
  }
  EOF_COV(ctx);
  return snapshot;  // zero-timeout poll: return current bits unsatisfied
}

int64_t EventGroupDelete(KernelContext& ctx, FreeRtosState& state,
                         const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  if (state.event_groups.Find(handle) == nullptr) {
    EOF_COV(ctx);
    return pdFAIL;
  }
  EOF_COV(ctx);
  state.event_groups.Remove(handle);
  ctx.ReleaseRam(48);
  return pdPASS;
}

}  // namespace

Status RegisterEventGroupApis(ApiRegistry& registry, FreeRtosState& state) {
  FreeRtosState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "xEventGroupCreate";
    spec.subsystem = "event";
    spec.doc = "create an event group";
    spec.produces = "event_group";
    RETURN_IF_ERROR(add(std::move(spec), EventGroupCreate));
  }
  {
    ApiSpec spec;
    spec.name = "xEventGroupSetBits";
    spec.subsystem = "event";
    spec.doc = "set bits in an event group";
    spec.args = {ArgSpec::Resource("group", "event_group"),
                 ArgSpec::Scalar("bits", 32, 0, UINT32_MAX)};
    RETURN_IF_ERROR(add(std::move(spec), EventGroupSetBits));
  }
  {
    ApiSpec spec;
    spec.name = "xEventGroupClearBits";
    spec.subsystem = "event";
    spec.doc = "clear bits in an event group";
    spec.args = {ArgSpec::Resource("group", "event_group"),
                 ArgSpec::Scalar("bits", 32, 0, UINT32_MAX)};
    RETURN_IF_ERROR(add(std::move(spec), EventGroupClearBits));
  }
  {
    ApiSpec spec;
    spec.name = "xEventGroupWaitBits";
    spec.subsystem = "event";
    spec.doc = "poll for bits in an event group";
    spec.args = {ArgSpec::Resource("group", "event_group"),
                 ArgSpec::Scalar("bits", 32, 0, UINT32_MAX),
                 ArgSpec::Scalar("clear_on_exit", 8, 0, 1),
                 ArgSpec::Scalar("wait_all", 8, 0, 1)};
    RETURN_IF_ERROR(add(std::move(spec), EventGroupWaitBits));
  }
  {
    ApiSpec spec;
    spec.name = "vEventGroupDelete";
    spec.subsystem = "event";
    spec.doc = "destroy an event group";
    spec.args = {ArgSpec::Resource("group", "event_group")};
    RETURN_IF_ERROR(add(std::move(spec), EventGroupDelete));
  }
  return OkStatus();
}

}  // namespace freertos
}  // namespace eof
