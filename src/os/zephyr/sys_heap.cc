// sys_heap: Zephyr's chunk-based allocator, plus the sys_heap_stress() validation hook
// from lib/heap that applications can invoke in test builds.
//
// ── Bug #1 (Table 2): Zephyr / Heap / Kernel Panic / sys_heap_stress() ──
// The stress routine drives a random alloc/free storm seeded from the TRNG. With more
// than 100 operations and request sizes above 512 bytes the storm splits chunks below the
// minimum chunk size; the validation pass then walks a header whose size field is smaller
// than a header — kernel panic. Needs the TRNG peripheral for its seed material, so the
// path is closed on emulated machines.

#include <algorithm>

#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/zephyr/apis.h"

namespace eof {
namespace zephyr {
namespace {

EOF_COV_MODULE("zephyr/heap");

constexpr uint64_t kMinChunk = 16;

// First-fit allocation over the chunk list; returns chunk index or size() on failure.
size_t SysAllocChunk(KernelContext& ctx, SysHeap& heap, uint64_t want) {
  for (size_t i = 0; i < heap.chunks.size(); ++i) {
    ctx.ConsumeCycles(kListOpCycles);
    if (!heap.chunks[i].used && heap.chunks[i].size >= want) {
      SysChunk& chunk = heap.chunks[i];
      if (chunk.size >= want + kMinChunk) {
        SysChunk tail{chunk.offset + want, chunk.size - want, false};
        chunk.size = want;
        heap.chunks.insert(heap.chunks.begin() + static_cast<std::ptrdiff_t>(i) + 1, tail);
      }
      heap.chunks[i].used = true;
      heap.used_bytes += heap.chunks[i].size;
      return i;
    }
  }
  return heap.chunks.size();
}

void SysFreeChunk(KernelContext& ctx, SysHeap& heap, size_t index) {
  heap.chunks[index].used = false;
  heap.used_bytes -= heap.chunks[index].size;
  // Coalesce neighbours.
  for (size_t i = 0; i + 1 < heap.chunks.size();) {
    ctx.ConsumeCycles(kListOpCycles);
    if (!heap.chunks[i].used && !heap.chunks[i + 1].used &&
        heap.chunks[i].offset + heap.chunks[i].size == heap.chunks[i + 1].offset) {
      heap.chunks[i].size += heap.chunks[i + 1].size;
      heap.chunks.erase(heap.chunks.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    } else {
      ++i;
    }
  }
}

int64_t SysHeapAlloc(KernelContext& ctx, ZephyrState& state,
                     const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t size = args[0].scalar;
  if (size == 0) {
    EOF_COV(ctx);
    return 0;
  }
  uint64_t want = std::max<uint64_t>((size + 7) & ~7ULL, kMinChunk);
  size_t index = SysAllocChunk(ctx, state.sys_heap, want);
  if (index == state.sys_heap.chunks.size()) {
    EOF_COV(ctx);
    return 0;
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, CovSizeClass(size));
  EOF_COV_BUCKET(ctx, state.sys_heap.chunks.size());  // fragmentation depth
  ctx.ConsumeCycles(kAllocOpCycles);
  int64_t handle = state.sys_allocs.Insert(state.sys_heap.chunks[index].offset);
  if (handle == 0) {
    EOF_COV(ctx);
    SysFreeChunk(ctx, state.sys_heap, index);
    return 0;
  }
  return handle;
}

int64_t SysHeapFree(KernelContext& ctx, ZephyrState& state,
                    const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  uint64_t* offset = state.sys_allocs.Find(handle);
  if (offset == nullptr) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  for (size_t i = 0; i < state.sys_heap.chunks.size(); ++i) {
    ctx.ConsumeCycles(kListOpCycles);
    if (state.sys_heap.chunks[i].offset == *offset && state.sys_heap.chunks[i].used) {
      EOF_COV(ctx);
      SysFreeChunk(ctx, state.sys_heap, i);
      state.sys_allocs.Remove(handle);
      ctx.ConsumeCycles(kAllocOpCycles);
      return Z_OK;
    }
  }
  EOF_COV(ctx);
  return Z_EINVAL;
}

int64_t SysHeapRuntimeStats(KernelContext& ctx, ZephyrState& state,
                            const std::vector<ArgValue>& args) {
  (void)args;
  ctx.ConsumeCycles(kApiBaseCycles / 4);
  EOF_COV(ctx);
  return static_cast<int64_t>(state.sys_heap.used_bytes);
}

int64_t SysHeapStress(KernelContext& ctx, ZephyrState& state,
                      const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t op_count = args[0].scalar;
  uint64_t max_size = args[1].scalar;
  if (op_count == 0 || max_size == 0) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  if (!ctx.HasPeripheral(Peripheral::kTrng)) {
    EOF_COV(ctx);
    return Z_EAGAIN;  // stress seeds its PRNG from the TRNG
  }
  op_count = std::min<uint64_t>(op_count, 512);
  max_size = std::min<uint64_t>(max_size, 2048);
  std::vector<size_t> live;
  SysHeap scratch;
  scratch.total = 4096;
  scratch.chunks = {SysChunk{0, 4096, false}};
  uint64_t splits = 0;
  for (uint64_t op = 0; op < op_count; ++op) {
    ctx.ConsumeCycles(kAllocOpCycles);
    if (ctx.rng().CoinFlip() || live.empty()) {
      uint64_t size = ctx.rng().Range(1, max_size);
      size_t index = SysAllocChunk(ctx, scratch, std::max<uint64_t>(size & ~7ULL, 8));
      if (index != scratch.chunks.size()) {
        live.push_back(index);
        if (size < kMinChunk) {
          ++splits;  // sub-minimum split: the metadata hazard accumulates
        }
      }
    } else {
      size_t pick = ctx.rng().Index(live.size());
      if (scratch.chunks.size() > live[pick] && scratch.chunks[live[pick]].used) {
        SysFreeChunk(ctx, scratch, live[pick]);
      }
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  if (op_count > 100) {
    EOF_COV(ctx);
  }
  if (op_count > 200 && max_size > 768) {
    EOF_COV(ctx);
    // BUG #1: validation pass walks a chunk whose size field undercuts its header.
    ctx.Panic("FATAL: sys_heap_stress: chunk header smaller than header size",
              "Stack frames at BUG:\n"
              " Level 1: heap-validate.c : sys_heap_stress : 471\n"
              " Level 2: agent : execute_one");
  }
  EOF_COV(ctx);
  return static_cast<int64_t>(splits);
}

}  // namespace

void SysHeapInit(ZephyrState& state, uint64_t bytes) {
  state.sys_heap.total = bytes;
  state.sys_heap.chunks = {SysChunk{0, bytes, false}};
  state.sys_heap.used_bytes = 0;
}

Status RegisterSysHeapApis(ApiRegistry& registry, ZephyrState& state) {
  ZephyrState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "sys_heap_alloc";
    spec.subsystem = "heap";
    spec.doc = "allocate from the system heap";
    spec.args = {ArgSpec::Scalar("size", 32, 0, 8192)};
    spec.produces = "z_mem";
    RETURN_IF_ERROR(add(std::move(spec), SysHeapAlloc));
  }
  {
    ApiSpec spec;
    spec.name = "sys_heap_free";
    spec.subsystem = "heap";
    spec.doc = "free a system-heap allocation";
    spec.args = {ArgSpec::Resource("mem", "z_mem")};
    RETURN_IF_ERROR(add(std::move(spec), SysHeapFree));
  }
  {
    ApiSpec spec;
    spec.name = "sys_heap_runtime_stats_get";
    spec.subsystem = "heap";
    spec.doc = "bytes currently allocated";
    RETURN_IF_ERROR(add(std::move(spec), SysHeapRuntimeStats));
  }
  {
    ApiSpec spec;
    spec.name = "sys_heap_stress";
    spec.subsystem = "heap";
    spec.doc = "random alloc/free storm with validation (test-build hook)";
    spec.args = {ArgSpec::Scalar("op_count", 32, 0, 256),
                 ArgSpec::Scalar("max_size", 32, 0, 1024)};
    RETURN_IF_ERROR(add(std::move(spec), SysHeapStress));
  }
  return OkStatus();
}

}  // namespace zephyr
}  // namespace eof
