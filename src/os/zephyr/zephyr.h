// The Zephyr-like target OS (paper target #4).

#ifndef SRC_OS_ZEPHYR_ZEPHYR_H_
#define SRC_OS_ZEPHYR_ZEPHYR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/kernel/os.h"
#include "src/os/zephyr/state.h"

namespace eof {
namespace zephyr {

class ZephyrOs : public Os {
 public:
  ZephyrOs();

  const std::string& name() const override { return name_; }
  const ApiRegistry& registry() const override { return registry_; }
  Status Init(KernelContext& ctx) override;
  std::string exception_symbol() const override { return "z_fatal_error"; }
  OsFootprint footprint() const override;
  std::vector<std::pair<std::string, uint64_t>> modules() const override;
  void Tick(KernelContext& ctx) override;

  ZephyrState& state_for_test() { return state_; }

 private:
  std::string name_ = "zephyr";
  ZephyrState state_;
  ApiRegistry registry_;
};

Status RegisterZephyrOs();

}  // namespace zephyr
}  // namespace eof

#endif  // SRC_OS_ZEPHYR_ZEPHYR_H_
