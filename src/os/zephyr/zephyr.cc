#include "src/os/zephyr/zephyr.h"

#include "src/common/logging.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/zephyr/apis.h"

namespace eof {
namespace zephyr {
namespace {

EOF_COV_MODULE("zephyr/kernel");

}  // namespace

ZephyrOs::ZephyrOs() {
  Status status = OkStatus();
  auto accumulate = [&status](Status step) {
    if (status.ok() && !step.ok()) {
      status = step;
    }
  };
  accumulate(RegisterSysHeapApis(registry_, state_));
  accumulate(RegisterKHeapApis(registry_, state_));
  accumulate(RegisterMsgqApis(registry_, state_));
  accumulate(RegisterJsonApis(registry_, state_));
  accumulate(RegisterThreadApis(registry_, state_));
  accumulate(RegisterFifoApis(registry_, state_));
  EOF_CHECK(status.ok()) << "Zephyr API registration failed: " << status.ToString();
}

Status ZephyrOs::Init(KernelContext& ctx) {
  EOF_COV(ctx);
  ctx.ConsumeCycles(kApiBaseCycles * 4);
  SysHeapInit(state_, 32 * 1024);
  ctx.LogLine("*** Booting Zephyr OS build v3.6.0 (EOF sim) on " + ctx.env().spec().name +
              " ***");
  return OkStatus();
}

OsFootprint ZephyrOs::footprint() const {
  // §5.5.1: 0.803 MB -> 0.88 MB with instrumentation (+9.58%).
  OsFootprint footprint;
  footprint.base_image_bytes = 822 * 1024;
  footprint.edge_sites = 4400;
  return footprint;
}

std::vector<std::pair<std::string, uint64_t>> ZephyrOs::modules() const {
  return {
      {"zephyr/kernel", 256}, {"zephyr/heap", 896},  {"zephyr/kheap", 512},
      {"zephyr/msgq", 768},   {"zephyr/json", 896},  {"zephyr/thread", 896},
      {"zephyr/fifo", 512},
  };
}

void ZephyrOs::Tick(KernelContext& ctx) {
  ++state_.uptime_ticks;
  ctx.ConsumeCycles(kTickCycles);
}

Status RegisterZephyrOs() {
  OsInfo info;
  info.name = "zephyr";
  info.factory = [] { return std::make_unique<ZephyrOs>(); };
  info.supported_archs = {Arch::kArm, Arch::kRiscV, Arch::kXtensa};
  info.default_board = "stm32f407-disco";
  info.description = "Zephyr-like kernel: sys_heap/k_heap, message queues, JSON library, "
                     "preemptive threads + work queues, FIFOs";
  return OsRegistry::Instance().Register(std::move(info));
}

}  // namespace zephyr
}  // namespace eof
