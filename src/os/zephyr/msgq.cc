// Message queues (k_msgq) and the syz_msgq_roundtrip pseudo-syscall.
//
// ── Bug #2 (Table 2, confirmed): Zephyr / Kernel / Kernel Panic / z_impl_k_msgq_get() ──
// k_msgq_alloc_init() validates msg_size != 0, but applications that initialise a static
// k_msgq with k_msgq_init() bypass that check (the pattern the syz_msgq_roundtrip pseudo-
// syscall reproduces). On a zero-size queue, z_impl_k_msgq_get()'s read-index arithmetic
// divides by msg_size — division fault, kernel panic. Only the LLM-mined pseudo-syscall
// reaches the unvalidated init, so baseline spec sets never see this path.

#include <algorithm>

#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/zephyr/apis.h"

namespace eof {
namespace zephyr {
namespace {

EOF_COV_MODULE("zephyr/msgq");

// Shared get path (z_impl_k_msgq_get): the ring arithmetic with the msg_size divide.
// The divide sits on the empty-queue index-recompute path, so it needs a drained queue.
int64_t MsgqGetImpl(KernelContext& ctx, Msgq& queue) {
  if (queue.ring.empty()) {
    if (queue.msg_size == 0) {
      EOF_COV(ctx);
      // BUG #2: read-index recompute = used_bytes / msg_size.
      ctx.Panic("FATAL EXCEPTION: divide fault in z_impl_k_msgq_get (msg_size=0)",
                "Stack frames at BUG:\n"
                " Level 1: msg_q.c : z_impl_k_msgq_get : 201\n"
                " Level 2: agent : execute_one");
    }
    EOF_COV(ctx);
    return Z_ENOMSG;
  }
  EOF_COV(ctx);
  ctx.ConsumeCycles(kCopyPerByteCycles * queue.msg_size);
  queue.ring.pop_front();
  return Z_OK;
}

int64_t MsgqAllocInit(KernelContext& ctx, ZephyrState& state,
                      const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint32_t msg_size = static_cast<uint32_t>(args[0].scalar);
  uint32_t max_msgs = static_cast<uint32_t>(args[1].scalar);
  if (msg_size == 0 || max_msgs == 0) {
    EOF_COV(ctx);
    return Z_EINVAL;  // the alloc path validates
  }
  if (msg_size > 256 || max_msgs > 64) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  if (!ctx.ReserveRam(static_cast<uint64_t>(msg_size) * max_msgs + 64).ok()) {
    EOF_COV(ctx);
    return Z_ENOMEM;
  }
  Msgq queue;
  queue.msg_size = msg_size;
  queue.max_msgs = max_msgs;
  int64_t handle = state.msgqs.Insert(std::move(queue));
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(static_cast<uint64_t>(msg_size) * max_msgs + 64);
    return Z_ENOMEM;
  }
  EOF_COV(ctx);
  return handle;
}

int64_t MsgqPut(KernelContext& ctx, ZephyrState& state,
                const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Msgq* queue = state.msgqs.Find(static_cast<int64_t>(args[0].scalar));
  if (queue == nullptr) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  if (queue->ring.size() >= queue->max_msgs) {
    EOF_COV(ctx);
    return Z_EAGAIN;
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, queue->ring.size());
  EOF_COV_BUCKET(ctx, CovSizeClass(queue->msg_size) + 10);
  const std::vector<uint8_t>& payload = args[1].bytes;
  std::vector<uint8_t> msg(queue->msg_size, 0);
  std::copy_n(payload.begin(),
              std::min<size_t>(payload.size(), queue->msg_size), msg.begin());
  ctx.ConsumeCycles(kCopyPerByteCycles * queue->msg_size);
  queue->ring.push_back(std::move(msg));
  return Z_OK;
}

int64_t MsgqGet(KernelContext& ctx, ZephyrState& state,
                const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Msgq* queue = state.msgqs.Find(static_cast<int64_t>(args[0].scalar));
  if (queue == nullptr) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  return MsgqGetImpl(ctx, *queue);
}

int64_t MsgqPurge(KernelContext& ctx, ZephyrState& state,
                  const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Msgq* queue = state.msgqs.Find(static_cast<int64_t>(args[0].scalar));
  if (queue == nullptr) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  EOF_COV(ctx);
  queue->ring.clear();
  return Z_OK;
}

int64_t MsgqNumUsed(KernelContext& ctx, ZephyrState& state,
                    const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles / 4);
  EOF_COV(ctx);
  Msgq* queue = state.msgqs.Find(static_cast<int64_t>(args[0].scalar));
  if (queue == nullptr) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  return static_cast<int64_t>(queue->ring.size());
}

// Pseudo-syscall: static-init a msgq (no validation, as k_msgq_init on a user buffer),
// put `count` messages, then get them back.
int64_t SyzMsgqRoundtrip(KernelContext& ctx, ZephyrState& state,
                         const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint32_t msg_size = static_cast<uint32_t>(args[0].scalar);  // NOT validated (k_msgq_init)
  uint32_t count = static_cast<uint32_t>(std::min<uint64_t>(args[1].scalar, 16));
  if (msg_size > 256) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  Msgq queue;
  queue.msg_size = msg_size;
  queue.max_msgs = 16;
  EOF_COV(ctx);
  for (uint32_t i = 0; i < count; ++i) {
    ctx.ConsumeCycles(kCopyPerByteCycles * (msg_size + 4));
    queue.ring.push_back(std::vector<uint8_t>(msg_size, static_cast<uint8_t>(i)));
  }
  int64_t rc = Z_OK;
  for (uint32_t i = 0; i < count && rc == Z_OK && !queue.ring.empty(); ++i) {
    rc = MsgqGetImpl(ctx, queue);
  }
  // The polling pattern: after a burst of six or more messages the consumer polls once
  // more on the drained queue — the extra get is where a zero msg_size divides.
  if (count >= 6) {
    EOF_COV(ctx);
    rc = MsgqGetImpl(ctx, queue);
  }
  return rc;
}

}  // namespace

Status RegisterMsgqApis(ApiRegistry& registry, ZephyrState& state) {
  ZephyrState* s = &state;
  auto add = [&](ApiSpec spec, auto fn, bool pseudo = false) -> Status {
    spec.is_pseudo = pseudo;
    spec.extended_spec = pseudo;
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "k_msgq_alloc_init";
    spec.subsystem = "msgq";
    spec.doc = "create a message queue (validated alloc path)";
    spec.args = {ArgSpec::Scalar("msg_size", 32, 0, 512),
                 ArgSpec::Scalar("max_msgs", 32, 0, 128)};
    spec.produces = "z_msgq";
    RETURN_IF_ERROR(add(std::move(spec), MsgqAllocInit));
  }
  {
    ApiSpec spec;
    spec.name = "k_msgq_put";
    spec.subsystem = "msgq";
    spec.doc = "enqueue a message";
    spec.args = {ArgSpec::Resource("msgq", "z_msgq"), ArgSpec::Buffer("msg", 0, 256)};
    RETURN_IF_ERROR(add(std::move(spec), MsgqPut));
  }
  {
    ApiSpec spec;
    spec.name = "k_msgq_get";
    spec.subsystem = "msgq";
    spec.doc = "dequeue a message";
    spec.args = {ArgSpec::Resource("msgq", "z_msgq")};
    RETURN_IF_ERROR(add(std::move(spec), MsgqGet));
  }
  {
    ApiSpec spec;
    spec.name = "k_msgq_purge";
    spec.subsystem = "msgq";
    spec.doc = "drop all queued messages";
    spec.args = {ArgSpec::Resource("msgq", "z_msgq")};
    RETURN_IF_ERROR(add(std::move(spec), MsgqPurge));
  }
  {
    ApiSpec spec;
    spec.name = "k_msgq_num_used_get";
    spec.subsystem = "msgq";
    spec.doc = "number of queued messages";
    spec.args = {ArgSpec::Resource("msgq", "z_msgq")};
    RETURN_IF_ERROR(add(std::move(spec), MsgqNumUsed));
  }
  {
    ApiSpec spec;
    spec.name = "syz_msgq_roundtrip";
    spec.subsystem = "msgq";
    spec.doc = "static k_msgq_init + put/get roundtrip (application pattern)";
    spec.args = {ArgSpec::Scalar("msg_size", 32, 0, 256), ArgSpec::Scalar("count", 32, 0, 32)};
    RETURN_IF_ERROR(add(std::move(spec), SyzMsgqRoundtrip, /*pseudo=*/true));
  }
  return OkStatus();
}

}  // namespace zephyr
}  // namespace eof
