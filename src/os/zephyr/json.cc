// Zephyr's descriptor-based JSON library surface: build a DOM of objects/values and
// encode it.
//
// ── Bug #3 (Table 2, confirmed): Zephyr / JSON / Kernel Panic / json_obj_encode() ──
// The encoder recurses per nesting level with a fixed-depth scratch descriptor stack of
// four frames; a fifth level smashes the adjacent encode state — kernel panic. Nesting is
// built up one json_obj_append_child() at a time, with depth edges guiding the climb.

#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/zephyr/apis.h"

namespace eof {
namespace zephyr {
namespace {

EOF_COV_MODULE("zephyr/json");

constexpr int kEncodeMaxDepth = 4;

int Depth(KernelContext& ctx, ZephyrState& state, int64_t handle, int guard) {
  if (guard > 16) {
    return guard;  // cycle protection in the measurement itself
  }
  JsonNode* node = state.json_nodes.Find(handle);
  if (node == nullptr || node->kind != JsonNode::Kind::kObject) {
    return 1;
  }
  int deepest = 1;
  for (int64_t child : node->children) {
    ctx.ConsumeCycles(kListOpCycles);
    deepest = std::max(deepest, 1 + Depth(ctx, state, child, guard + 1));
  }
  return deepest;
}

int64_t JsonObjInit(KernelContext& ctx, ZephyrState& state,
                    const std::vector<ArgValue>& args) {
  (void)args;
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  JsonNode node;
  node.kind = JsonNode::Kind::kObject;
  int64_t handle = state.json_nodes.Insert(std::move(node));
  if (handle == 0) {
    EOF_COV(ctx);
    return Z_ENOMEM;
  }
  EOF_COV(ctx);
  return handle;
}

int64_t JsonObjAppendNum(KernelContext& ctx, ZephyrState& state,
                         const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  JsonNode* parent = state.json_nodes.Find(static_cast<int64_t>(args[0].scalar));
  if (parent == nullptr || parent->kind != JsonNode::Kind::kObject) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  JsonNode value;
  value.kind = JsonNode::Kind::kNumber;
  value.key = args[1].AsString().substr(0, 16);
  value.num = static_cast<int64_t>(args[2].scalar);
  int64_t handle = state.json_nodes.Insert(std::move(value));
  if (handle == 0) {
    EOF_COV(ctx);
    return Z_ENOMEM;
  }
  EOF_COV(ctx);
  // Insert can grow the table and invalidate `parent`; re-resolve before use.
  parent = state.json_nodes.Find(static_cast<int64_t>(args[0].scalar));
  parent->children.push_back(handle);
  return Z_OK;
}

int64_t JsonObjAppendStr(KernelContext& ctx, ZephyrState& state,
                         const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  JsonNode* parent = state.json_nodes.Find(static_cast<int64_t>(args[0].scalar));
  if (parent == nullptr || parent->kind != JsonNode::Kind::kObject) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  JsonNode value;
  value.kind = JsonNode::Kind::kString;
  value.key = args[1].AsString().substr(0, 16);
  value.str = args[2].AsString().substr(0, 64);
  int64_t handle = state.json_nodes.Insert(std::move(value));
  if (handle == 0) {
    EOF_COV(ctx);
    return Z_ENOMEM;
  }
  EOF_COV(ctx);
  // Insert can grow the table and invalidate `parent`; re-resolve before use.
  parent = state.json_nodes.Find(static_cast<int64_t>(args[0].scalar));
  parent->children.push_back(handle);
  return Z_OK;
}

int64_t JsonObjAppendChild(KernelContext& ctx, ZephyrState& state,
                           const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t parent_handle = static_cast<int64_t>(args[0].scalar);
  int64_t child_handle = static_cast<int64_t>(args[1].scalar);
  JsonNode* parent = state.json_nodes.Find(parent_handle);
  JsonNode* child = state.json_nodes.Find(child_handle);
  if (parent == nullptr || child == nullptr || parent == child ||
      parent->kind != JsonNode::Kind::kObject || child->kind != JsonNode::Kind::kObject) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  child->key = args[2].AsString().substr(0, 16);
  parent->children.push_back(child_handle);
  // Depth staircase: each new nesting level is a distinct edge.
  int depth = Depth(ctx, state, parent_handle, 0);
  if (depth == 2) {
    EOF_COV(ctx);
  }
  if (depth == 3) {
    EOF_COV(ctx);
  }
  if (depth == 4) {
    EOF_COV(ctx);
  }
  if (depth >= 5) {
    EOF_COV(ctx);
  }
  return Z_OK;
}

std::string Encode(KernelContext& ctx, ZephyrState& state, const JsonNode& node, int depth) {
  ctx.ConsumeCycles(kListOpCycles * 4);
  switch (node.kind) {
    case JsonNode::Kind::kNumber:
      return StrFormat("%lld", static_cast<long long>(node.num));
    case JsonNode::Kind::kString:
      return "\"" + node.str + "\"";
    case JsonNode::Kind::kBool:
      return node.boolean ? "true" : "false";
    case JsonNode::Kind::kObject: {
      std::string out = "{";
      bool first = true;
      for (int64_t child_handle : node.children) {
        JsonNode* child = state.json_nodes.Find(child_handle);
        if (child == nullptr) {
          continue;
        }
        if (!first) {
          out += ",";
        }
        first = false;
        out += "\"" + child->key + "\":" + Encode(ctx, state, *child, depth + 1);
      }
      out += "}";
      return out;
    }
  }
  return "null";
}

int64_t JsonObjEncode(KernelContext& ctx, ZephyrState& state,
                      const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  JsonNode* node = state.json_nodes.Find(handle);
  if (node == nullptr) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  int depth = Depth(ctx, state, handle, 0);
  if (depth > kEncodeMaxDepth) {
    EOF_COV(ctx);
    // BUG #3: fifth recursion frame smashes the fixed descriptor stack.
    ctx.Panic(StrFormat("FATAL: json_obj_encode: descriptor stack smashed at depth %d",
                        depth),
              "Stack frames at BUG:\n"
              " Level 1: json.c : json_obj_encode : 642\n"
              " Level 2: agent : execute_one");
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, static_cast<uint64_t>(depth));
  std::string text = Encode(ctx, state, *node, 1);
  EOF_COV_BUCKET(ctx, CovSizeClass(text.size()) + 8);
  ctx.ConsumeCycles(kCopyPerByteCycles * text.size());
  return static_cast<int64_t>(text.size());
}

int64_t JsonObjRelease(KernelContext& ctx, ZephyrState& state,
                       const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  if (state.json_nodes.Find(handle) == nullptr) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  EOF_COV(ctx);
  state.json_nodes.Remove(handle);  // children leak, as in the modelled release
  return Z_OK;
}

}  // namespace

Status RegisterJsonApis(ApiRegistry& registry, ZephyrState& state) {
  ZephyrState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "json_obj_init";
    spec.subsystem = "json";
    spec.doc = "create an empty JSON object";
    spec.produces = "z_json";
    RETURN_IF_ERROR(add(std::move(spec), JsonObjInit));
  }
  {
    ApiSpec spec;
    spec.name = "json_obj_append_num";
    spec.subsystem = "json";
    spec.doc = "append a numeric field";
    spec.args = {ArgSpec::Resource("obj", "z_json"),
                 ArgSpec::String("key", {"id", "val", "ts", "name"}),
                 ArgSpec::Scalar("value", 64, 0, UINT64_MAX)};
    RETURN_IF_ERROR(add(std::move(spec), JsonObjAppendNum));
  }
  {
    ApiSpec spec;
    spec.name = "json_obj_append_str";
    spec.subsystem = "json";
    spec.doc = "append a string field";
    spec.args = {ArgSpec::Resource("obj", "z_json"),
                 ArgSpec::String("key", {"id", "val", "ts", "name"}),
                 ArgSpec::String("value")};
    RETURN_IF_ERROR(add(std::move(spec), JsonObjAppendStr));
  }
  {
    ApiSpec spec;
    spec.name = "json_obj_append_child";
    spec.subsystem = "json";
    spec.doc = "nest one object inside another";
    spec.args = {ArgSpec::Resource("parent", "z_json"), ArgSpec::Resource("child", "z_json"),
                 ArgSpec::String("key", {"inner", "cfg", "meta"})};
    RETURN_IF_ERROR(add(std::move(spec), JsonObjAppendChild));
  }
  {
    ApiSpec spec;
    spec.name = "json_obj_encode";
    spec.subsystem = "json";
    spec.doc = "serialise an object tree to text";
    spec.args = {ArgSpec::Resource("obj", "z_json")};
    RETURN_IF_ERROR(add(std::move(spec), JsonObjEncode));
  }
  {
    ApiSpec spec;
    spec.name = "json_obj_release";
    spec.subsystem = "json";
    spec.doc = "free a JSON object";
    spec.args = {ArgSpec::Resource("obj", "z_json")};
    RETURN_IF_ERROR(add(std::move(spec), JsonObjRelease));
  }
  return OkStatus();
}

}  // namespace zephyr
}  // namespace eof
