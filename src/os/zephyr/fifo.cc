// k_fifo: pointer FIFOs.

#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/zephyr/apis.h"

namespace eof {
namespace zephyr {
namespace {

EOF_COV_MODULE("zephyr/fifo");

int64_t FifoInit(KernelContext& ctx, ZephyrState& state, const std::vector<ArgValue>& args) {
  (void)args;
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = state.fifos.Insert(Fifo{});
  if (handle == 0) {
    EOF_COV(ctx);
    return Z_ENOMEM;
  }
  EOF_COV(ctx);
  return handle;
}

int64_t FifoPut(KernelContext& ctx, ZephyrState& state, const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Fifo* fifo = state.fifos.Find(static_cast<int64_t>(args[0].scalar));
  if (fifo == nullptr) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  if (fifo->items.size() >= 256) {
    EOF_COV(ctx);
    return Z_ENOMEM;
  }
  EOF_COV(ctx);
  if (ctx.HasPeripheral(Peripheral::kGpio)) {
    // ISR-producer bookkeeping rows: only compiled in with the GPIO driver present.
    EOF_COV_BUCKET(ctx, fifo->items.size());
  }
  fifo->items.push_back(args[1].scalar);
  ctx.ConsumeCycles(kListOpCycles);
  return Z_OK;
}

int64_t FifoGet(KernelContext& ctx, ZephyrState& state, const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  Fifo* fifo = state.fifos.Find(static_cast<int64_t>(args[0].scalar));
  if (fifo == nullptr) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  if (fifo->items.empty()) {
    EOF_COV(ctx);
    return 0;  // NULL with K_NO_WAIT
  }
  EOF_COV(ctx);
  int64_t value = static_cast<int64_t>(fifo->items.front());
  fifo->items.pop_front();
  ctx.ConsumeCycles(kListOpCycles);
  return value;
}

int64_t FifoIsEmpty(KernelContext& ctx, ZephyrState& state,
                    const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles / 4);
  EOF_COV(ctx);
  Fifo* fifo = state.fifos.Find(static_cast<int64_t>(args[0].scalar));
  if (fifo == nullptr) {
    EOF_COV(ctx);
    return 1;
  }
  return fifo->items.empty() ? 1 : 0;
}

}  // namespace

Status RegisterFifoApis(ApiRegistry& registry, ZephyrState& state) {
  ZephyrState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "k_fifo_init";
    spec.subsystem = "fifo";
    spec.doc = "initialise a FIFO";
    spec.produces = "z_fifo";
    RETURN_IF_ERROR(add(std::move(spec), FifoInit));
  }
  {
    ApiSpec spec;
    spec.name = "k_fifo_put";
    spec.subsystem = "fifo";
    spec.doc = "append an item";
    spec.args = {ArgSpec::Resource("fifo", "z_fifo"),
                 ArgSpec::Scalar("value", 64, 0, UINT64_MAX)};
    RETURN_IF_ERROR(add(std::move(spec), FifoPut));
  }
  {
    ApiSpec spec;
    spec.name = "k_fifo_get";
    spec.subsystem = "fifo";
    spec.doc = "pop the head item (K_NO_WAIT)";
    spec.args = {ArgSpec::Resource("fifo", "z_fifo")};
    RETURN_IF_ERROR(add(std::move(spec), FifoGet));
  }
  {
    ApiSpec spec;
    spec.name = "k_fifo_is_empty";
    spec.subsystem = "fifo";
    spec.doc = "emptiness check";
    spec.args = {ArgSpec::Resource("fifo", "z_fifo")};
    RETURN_IF_ERROR(add(std::move(spec), FifoIsEmpty));
  }
  return OkStatus();
}

}  // namespace zephyr
}  // namespace eof
