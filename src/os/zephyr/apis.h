// Per-subsystem registration hooks for the Zephyr-like kernel.

#ifndef SRC_OS_ZEPHYR_APIS_H_
#define SRC_OS_ZEPHYR_APIS_H_

#include "src/common/status.h"
#include "src/kernel/api.h"
#include "src/os/zephyr/state.h"

namespace eof {
namespace zephyr {

Status RegisterSysHeapApis(ApiRegistry& registry, ZephyrState& state);
Status RegisterKHeapApis(ApiRegistry& registry, ZephyrState& state);
Status RegisterMsgqApis(ApiRegistry& registry, ZephyrState& state);
Status RegisterJsonApis(ApiRegistry& registry, ZephyrState& state);
Status RegisterThreadApis(ApiRegistry& registry, ZephyrState& state);
Status RegisterFifoApis(ApiRegistry& registry, ZephyrState& state);

// Boot-time sys_heap arena initialisation.
void SysHeapInit(ZephyrState& state, uint64_t bytes);

}  // namespace zephyr
}  // namespace eof

#endif  // SRC_OS_ZEPHYR_APIS_H_
