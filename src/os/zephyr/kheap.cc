// k_heap: the kernel-object heap wrapper over sys_heap.
//
// ── Bug #4 (Table 2, confirmed): Zephyr / KHeap / Kernel Panic / k_heap_init() ──
// k_heap_init() carves the sys_heap bookkeeping out of the caller-supplied region. For
// region sizes between 1 and 7 bytes the carve-out subtraction wraps, and the first-chunk
// header is written far outside the region — immediate kernel panic.

#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/zephyr/apis.h"

namespace eof {
namespace zephyr {
namespace {

EOF_COV_MODULE("zephyr/kheap");

int64_t KHeapInit(KernelContext& ctx, ZephyrState& state,
                  const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t size = args[0].scalar;
  if (size == 0) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  if (size < 8) {
    EOF_COV(ctx);
    // BUG #4: bookkeeping carve-out wraps for 1..7-byte regions.
    ctx.Panic(StrFormat("FATAL: k_heap_init: first chunk header written at -%llu",
                        static_cast<unsigned long long>(8 - size)),
              "Stack frames at BUG:\n"
              " Level 1: k_heap.c : k_heap_init : 37\n"
              " Level 2: agent : execute_one");
  }
  if (size > 16384) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  if (!ctx.ReserveRam(size).ok()) {
    EOF_COV(ctx);
    return Z_ENOMEM;
  }
  KHeap heap;
  heap.total = size;
  int64_t handle = state.kheaps.Insert(std::move(heap));
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(size);
    return Z_ENOMEM;
  }
  EOF_COV(ctx);
  return handle;
}

int64_t KHeapAlloc(KernelContext& ctx, ZephyrState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  KHeap* heap = state.kheaps.Find(static_cast<int64_t>(args[0].scalar));
  if (heap == nullptr) {
    EOF_COV(ctx);
    return 0;
  }
  uint64_t size = (args[1].scalar + 7) & ~7ULL;
  if (size == 0 || heap->used + size > heap->total) {
    EOF_COV(ctx);
    return 0;
  }
  EOF_COV(ctx);
  EOF_COV_BUCKET(ctx, heap->alloc_count);  // allocation-count row
  if (ctx.HasPeripheral(Peripheral::kTrng)) {
    EOF_COV_BUCKET(ctx, CovSizeClass(size) + 10);  // canary rows, TRNG-seeded
  }
  heap->used += size;
  ++heap->alloc_count;
  ctx.ConsumeCycles(kAllocOpCycles);
  return static_cast<int64_t>(size);
}

int64_t KHeapFree(KernelContext& ctx, ZephyrState& state,
                  const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  KHeap* heap = state.kheaps.Find(static_cast<int64_t>(args[0].scalar));
  if (heap == nullptr) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  uint64_t size = args[1].scalar & ~7ULL;
  if (size > heap->used) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  EOF_COV(ctx);
  heap->used -= size;
  return Z_OK;
}

}  // namespace

Status RegisterKHeapApis(ApiRegistry& registry, ZephyrState& state) {
  ZephyrState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "k_heap_init";
    spec.subsystem = "kheap";
    spec.doc = "initialise a kernel heap over a memory region";
    spec.args = {ArgSpec::Scalar("size", 32, 0, 32768)};
    spec.produces = "k_heap";
    RETURN_IF_ERROR(add(std::move(spec), KHeapInit));
  }
  {
    ApiSpec spec;
    spec.name = "k_heap_alloc";
    spec.subsystem = "kheap";
    spec.doc = "allocate from a kernel heap";
    spec.args = {ArgSpec::Resource("heap", "k_heap"), ArgSpec::Scalar("size", 32, 0, 4096)};
    RETURN_IF_ERROR(add(std::move(spec), KHeapAlloc));
  }
  {
    ApiSpec spec;
    spec.name = "k_heap_free";
    spec.subsystem = "kheap";
    spec.doc = "return bytes to a kernel heap";
    spec.args = {ArgSpec::Resource("heap", "k_heap"), ArgSpec::Scalar("size", 32, 0, 4096)};
    RETURN_IF_ERROR(add(std::move(spec), KHeapFree));
  }
  return OkStatus();
}

}  // namespace zephyr
}  // namespace eof
