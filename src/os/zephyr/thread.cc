// Threads and work queues (fully preemptive scheduling model, k_thread_create /
// k_work_submit surface).

#include "src/kernel/costs.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_context.h"
#include "src/os/zephyr/apis.h"

namespace eof {
namespace zephyr {
namespace {

EOF_COV_MODULE("zephyr/thread");

int64_t ThreadCreate(KernelContext& ctx, ZephyrState& state,
                     const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint32_t stack_size = static_cast<uint32_t>(args[1].scalar);
  int32_t priority = static_cast<int32_t>(static_cast<int64_t>(args[2].scalar));
  if (stack_size < 512) {
    EOF_COV(ctx);
    return 0;
  }
  if (priority < -16 || priority > 15) {
    EOF_COV(ctx);
    return 0;  // CONFIG_NUM_COOP/PREEMPT_PRIORITIES window
  }
  if (!ctx.ReserveRam(stack_size + 192).ok()) {
    EOF_COV(ctx);
    return 0;
  }
  KThread thread;
  thread.name = args[0].AsString().substr(0, 16);
  thread.stack_size = stack_size;
  thread.priority = priority;
  thread.started = true;  // k_thread_create starts unless K_FOREVER delay
  int64_t handle = state.threads.Insert(std::move(thread));
  if (handle == 0) {
    EOF_COV(ctx);
    ctx.ReleaseRam(stack_size + 192);
    return 0;
  }
  EOF_COV(ctx);
  if (ctx.HasPeripheral(Peripheral::kHwTimer)) {
    // Runtime-stats timestamping rows: need the free-running hardware counter.
    EOF_COV_BUCKET(ctx, state.threads.live());
    EOF_COV_BUCKET(ctx, static_cast<uint64_t>(priority + 16) / 2 + 8);
  }
  ctx.ConsumeCycles(kContextSwitchCycles);
  return handle;
}

int64_t ThreadSuspend(KernelContext& ctx, ZephyrState& state,
                      const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  KThread* thread = state.threads.Find(static_cast<int64_t>(args[0].scalar));
  if (thread == nullptr) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  EOF_COV(ctx);
  thread->suspended = true;
  ctx.ConsumeCycles(kContextSwitchCycles);
  return Z_OK;
}

int64_t ThreadResume(KernelContext& ctx, ZephyrState& state,
                     const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  KThread* thread = state.threads.Find(static_cast<int64_t>(args[0].scalar));
  if (thread == nullptr) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  EOF_COV(ctx);
  thread->suspended = false;
  return Z_OK;
}

int64_t ThreadAbort(KernelContext& ctx, ZephyrState& state,
                    const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  KThread* thread = state.threads.Find(handle);
  if (thread == nullptr) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  EOF_COV(ctx);
  ctx.ReleaseRam(thread->stack_size + 192);
  state.threads.Remove(handle);
  ctx.ConsumeCycles(kContextSwitchCycles);
  return Z_OK;
}

int64_t KSleep(KernelContext& ctx, ZephyrState& state, const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint64_t ms = args[0].scalar;
  if (ms > 200) {
    EOF_COV(ctx);
    ms = 200;
  }
  state.uptime_ticks += ms;
  ctx.ConsumeCycles(ms * kTickCycles / 4);
  return Z_OK;
}

int64_t WorkSubmit(KernelContext& ctx, ZephyrState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  uint32_t tag = static_cast<uint32_t>(args[0].scalar);
  WorkItem item;
  item.tag = tag;
  item.pending = true;
  int64_t handle = state.work_items.Insert(std::move(item));
  if (handle == 0) {
    EOF_COV(ctx);
    return Z_ENOMEM;
  }
  EOF_COV(ctx);
  ctx.ConsumeCycles(kContextSwitchCycles);
  return handle;
}

int64_t WorkCancel(KernelContext& ctx, ZephyrState& state,
                   const std::vector<ArgValue>& args) {
  ctx.ConsumeCycles(kApiBaseCycles);
  EOF_COV(ctx);
  int64_t handle = static_cast<int64_t>(args[0].scalar);
  WorkItem* item = state.work_items.Find(handle);
  if (item == nullptr) {
    EOF_COV(ctx);
    return Z_EINVAL;
  }
  if (!item->pending) {
    EOF_COV(ctx);
    return Z_EBUSY;  // already ran
  }
  EOF_COV(ctx);
  state.work_items.Remove(handle);
  return Z_OK;
}

int64_t UptimeGet(KernelContext& ctx, ZephyrState& state,
                  const std::vector<ArgValue>& args) {
  (void)args;
  ctx.ConsumeCycles(kApiBaseCycles / 4);
  EOF_COV(ctx);
  return static_cast<int64_t>(state.uptime_ticks);
}

}  // namespace

Status RegisterThreadApis(ApiRegistry& registry, ZephyrState& state) {
  ZephyrState* s = &state;
  auto add = [&](ApiSpec spec, auto fn) -> Status {
    return registry
        .Register(std::move(spec),
                  [s, fn](KernelContext& ctx, const std::vector<ArgValue>& args) {
                    return fn(ctx, *s, args);
                  })
        .status();
  };

  {
    ApiSpec spec;
    spec.name = "k_thread_create";
    spec.subsystem = "thread";
    spec.doc = "create and start a thread (preemptive scheduler)";
    spec.args = {ArgSpec::String("name", {"worker", "rx", "tx"}),
                 ArgSpec::Scalar("stack_size", 32, 0, 8192),
                 ArgSpec::Scalar("priority", 32, 0, 31)};
    spec.produces = "z_thread";
    RETURN_IF_ERROR(add(std::move(spec), ThreadCreate));
  }
  {
    ApiSpec spec;
    spec.name = "k_thread_suspend";
    spec.subsystem = "thread";
    spec.doc = "suspend a thread";
    spec.args = {ArgSpec::Resource("thread", "z_thread")};
    RETURN_IF_ERROR(add(std::move(spec), ThreadSuspend));
  }
  {
    ApiSpec spec;
    spec.name = "k_thread_resume";
    spec.subsystem = "thread";
    spec.doc = "resume a suspended thread";
    spec.args = {ArgSpec::Resource("thread", "z_thread")};
    RETURN_IF_ERROR(add(std::move(spec), ThreadResume));
  }
  {
    ApiSpec spec;
    spec.name = "k_thread_abort";
    spec.subsystem = "thread";
    spec.doc = "abort a thread";
    spec.args = {ArgSpec::Resource("thread", "z_thread")};
    RETURN_IF_ERROR(add(std::move(spec), ThreadAbort));
  }
  {
    ApiSpec spec;
    spec.name = "k_sleep";
    spec.subsystem = "thread";
    spec.doc = "sleep for N milliseconds";
    spec.args = {ArgSpec::Scalar("ms", 32, 0, 1000)};
    RETURN_IF_ERROR(add(std::move(spec), KSleep));
  }
  {
    ApiSpec spec;
    spec.name = "k_work_submit";
    spec.subsystem = "thread";
    spec.doc = "queue a work item on the system work queue";
    spec.args = {ArgSpec::Scalar("tag", 32, 0, UINT32_MAX)};
    spec.produces = "z_work";
    RETURN_IF_ERROR(add(std::move(spec), WorkSubmit));
  }
  {
    ApiSpec spec;
    spec.name = "k_work_cancel";
    spec.subsystem = "thread";
    spec.doc = "cancel a pending work item";
    spec.args = {ArgSpec::Resource("work", "z_work")};
    RETURN_IF_ERROR(add(std::move(spec), WorkCancel));
  }
  {
    ApiSpec spec;
    spec.name = "k_uptime_get";
    spec.subsystem = "thread";
    spec.doc = "milliseconds since boot";
    RETURN_IF_ERROR(add(std::move(spec), UptimeGet));
  }
  return OkStatus();
}

}  // namespace zephyr
}  // namespace eof
