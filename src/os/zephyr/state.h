// Kernel state of the Zephyr-like target: sys_heap/k_heap allocators, message queues,
// threads + work queues, FIFOs, and the JSON library.

#ifndef SRC_OS_ZEPHYR_STATE_H_
#define SRC_OS_ZEPHYR_STATE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/kernel/handle_table.h"

namespace eof {
namespace zephyr {

// Zephyr error codes (negative errno).
inline constexpr int64_t Z_OK = 0;
inline constexpr int64_t Z_EINVAL = -22;
inline constexpr int64_t Z_ENOMEM = -12;
inline constexpr int64_t Z_EAGAIN = -11;
inline constexpr int64_t Z_ENOMSG = -42;
inline constexpr int64_t Z_EBUSY = -16;

// sys_heap chunk (chunk-header encoded allocator, modelled as an explicit list).
struct SysChunk {
  uint64_t offset = 0;
  uint64_t size = 0;
  bool used = false;
};

struct SysHeap {
  uint64_t total = 0;
  std::vector<SysChunk> chunks;
  uint64_t used_bytes = 0;
};

struct KHeap {
  uint64_t total = 0;
  uint64_t used = 0;
  uint32_t alloc_count = 0;
};

struct Msgq {
  uint32_t msg_size = 0;
  uint32_t max_msgs = 0;
  std::deque<std::vector<uint8_t>> ring;
};

struct KThread {
  std::string name;
  int32_t priority = 0;  // cooperative < 0 <= preemptive
  uint32_t stack_size = 1024;
  bool started = false;
  bool suspended = false;
};

struct WorkItem {
  uint32_t tag = 0;
  bool pending = false;
};

struct Fifo {
  std::deque<uint64_t> items;
};

// JSON DOM node (descriptor-based lib/json surface).
struct JsonNode {
  enum class Kind : uint8_t { kObject, kNumber, kString, kBool };
  Kind kind = Kind::kObject;
  std::string key;
  int64_t num = 0;
  std::string str;
  bool boolean = false;
  std::vector<int64_t> children;  // handles of child nodes (objects only)
};

struct ZephyrState {
  SysHeap sys_heap;
  HandleTable<uint64_t> sys_allocs{256};  // handle -> chunk offset
  HandleTable<KHeap> kheaps{16};
  HandleTable<Msgq> msgqs{32};
  HandleTable<KThread> threads{64};
  HandleTable<WorkItem> work_items{64};
  HandleTable<Fifo> fifos{32};
  HandleTable<JsonNode> json_nodes{128};
  uint64_t uptime_ticks = 0;
};

}  // namespace zephyr
}  // namespace eof

#endif  // SRC_OS_ZEPHYR_STATE_H_
