// Test-case wire format: the serialized program the host writes into the mailbox and the
// agent deserializes with primitive operations only (§4.3.2).
//
//   [magic u32 = kWireMagic][ncalls u16]
//   per call: [api_id u32][nargs u8]
//     per arg: [kind u8]
//       kind 0 (scalar):     [value u64]
//       kind 1 (result ref): [call_index u16]   — use the result of an earlier call
//       kind 2 (bytes):      [len u32][bytes]

#ifndef SRC_AGENT_WIRE_H_
#define SRC_AGENT_WIRE_H_

#include <cstdint>
#include <vector>

#include "src/agent/agent_layout.h"
#include "src/common/byteio.h"

namespace eof {

inline constexpr uint32_t kWireMagic = 0x45304650;  // "E0FP"
inline constexpr uint32_t kWireMaxCalls = 64;
inline constexpr uint32_t kWireMaxArgBytes = 2048;

enum class WireArgKind : uint8_t {
  kScalar = 0,
  kResultRef = 1,
  kBytes = 2,
};

struct WireArg {
  WireArgKind kind = WireArgKind::kScalar;
  uint64_t scalar = 0;     // kScalar value or kResultRef call index
  std::vector<uint8_t> bytes;

  static WireArg Scalar(uint64_t value) {
    WireArg arg;
    arg.kind = WireArgKind::kScalar;
    arg.scalar = value;
    return arg;
  }
  static WireArg ResultRef(uint16_t call_index) {
    WireArg arg;
    arg.kind = WireArgKind::kResultRef;
    arg.scalar = call_index;
    return arg;
  }
  static WireArg Bytes(std::vector<uint8_t> data) {
    WireArg arg;
    arg.kind = WireArgKind::kBytes;
    arg.bytes = std::move(data);
    return arg;
  }
};

struct WireCall {
  uint32_t api_id = 0;
  std::vector<WireArg> args;
};

struct WireProgram {
  std::vector<WireCall> calls;
};

// Host side: serialize for the mailbox.
std::vector<uint8_t> EncodeProgram(const WireProgram& program);

// Target side: decode with full validation. On failure returns the AgentError that the
// agent reports in its status block.
AgentError DecodeProgram(const uint8_t* data, size_t size, WireProgram* out);

}  // namespace eof

#endif  // SRC_AGENT_WIRE_H_
