#include "src/agent/agent.h"

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/kernel/costs.h"
#include "src/kernel/kernel_fault.h"

namespace eof {
namespace {

// Cycles the agent burns per state-machine step outside call execution (mailbox polls,
// status updates) — keeps the PC moving while parked.
constexpr uint64_t kAgentStepCycles = 900;

}  // namespace

AgentFirmware::AgentFirmware(const FirmwareImage& image, std::unique_ptr<Os> os)
    : image_(image), os_(std::move(os)) {}

Status AgentFirmware::OnBoot(TargetEnv& env) {
  text_base_ = env.spec().text_base;
  auto handler = image_.symbols().AddressOf(os_->exception_symbol());
  if (!handler.ok()) {
    return handler.status();
  }
  exception_handler_addr_ = handler.value();

  CovRingLayout ring;
  ring.ram_offset = kCovRingOffset;
  ring.capacity = CovRingCapacityFor(env.spec().ram_bytes);
  ctx_ = std::make_unique<KernelContext>(env, image_, ring);

  env.EnterProgramPoint(text_base_ + kPpAgentStart.text_offset);
  env.ConsumeCycles(kApiBaseCycles * 8);  // ROM handoff, .data/.bss init

  RETURN_IF_ERROR(os_->Init(*ctx_));

  WriteStatus(env, AgentState::kWaiting);
  WriteError(env, AgentError::kNone);
  ctx_->LogLine("eof-agent: ready, os=" + os_->name());
  state_ = LoopState::kAtExecutorMain;
  return OkStatus();
}

bool AgentFirmware::PauseAt(TargetEnv& env, const ProgramPoint& point) {
  if (skip_pause_) {
    skip_pause_ = false;
    return false;
  }
  if (env.EnterProgramPoint(text_base_ + point.text_offset)) {
    skip_pause_ = true;
    return true;
  }
  return false;
}

void AgentFirmware::WriteStatus(TargetEnv& env, AgentState state) {
  uint64_t base = kStatusBlockOffset;
  (void)env.RamWriteU32(base + kStatusStateOffset, static_cast<uint32_t>(state));
  (void)env.RamWriteU32(base + kStatusCallsDoneOffset, static_cast<uint32_t>(call_index_));
  (void)env.RamWriteU32(base + kStatusProgsOffset, progs_done_);
  (void)env.RamWriteU32(base + kStatusTotalCallsOffset, total_calls_);
}

void AgentFirmware::WriteError(TargetEnv& env, AgentError error) {
  (void)env.RamWriteU32(kStatusBlockOffset + kStatusLastErrorOffset,
                        static_cast<uint32_t>(error));
}

bool AgentFirmware::ExecuteCurrentCall(TargetEnv& env) {
  const WireCall& call = program_.calls[call_index_];
  // Resolve wire arguments against earlier results.
  std::vector<ArgValue> args;
  args.reserve(call.args.size());
  for (const WireArg& wire_arg : call.args) {
    ArgValue value;
    switch (wire_arg.kind) {
      case WireArgKind::kScalar:
        value.scalar = wire_arg.scalar;
        break;
      case WireArgKind::kResultRef:
        value.scalar = static_cast<uint64_t>(results_[wire_arg.scalar]);
        break;
      case WireArgKind::kBytes:
        value.bytes = wire_arg.bytes;
        break;
    }
    args.push_back(std::move(value));
  }

  int64_t result = 0;
  try {
    auto outcome = os_->registry().Call(*ctx_, call.api_id, args);
    // Unknown API or arity mismatch: the agent rejects the call but keeps executing.
    result = outcome.ok() ? outcome.value() : -1;
    os_->Tick(*ctx_);
  } catch (const KernelPanicSignal&) {
    // handle_exception(): vector to the OS exception function, freeze there.
    bool bp = env.EnterProgramPoint(exception_handler_addr_);
    env.LatchFault(exception_handler_addr_, "kernel panic");
    trapped_ = true;
    trap_info_.reason = bp ? HaltReason::kBreakpoint : HaltReason::kFault;
    return false;
  } catch (const KernelAssertSignal& signal) {
    // Assertion text already went to the UART; the core parks in the abort loop.
    env.LatchHang("assertion: " + signal.message);
    trapped_ = true;
    trap_info_.reason = HaltReason::kHang;
    return false;
  } catch (const KernelHangSignal& signal) {
    env.LatchHang(signal.message);
    trapped_ = true;
    trap_info_.reason = HaltReason::kHang;
    return false;
  }
  // Pending injected peripheral events preempt the task between calls (ISR dispatch).
  PeripheralEvent event;
  while (env.NextPeripheralEvent(&event)) {
    try {
      os_->OnPeripheralEvent(*ctx_, event);
    } catch (const KernelPanicSignal&) {
      bool bp = env.EnterProgramPoint(exception_handler_addr_);
      env.LatchFault(exception_handler_addr_, "kernel panic in ISR");
      trapped_ = true;
      trap_info_.reason = bp ? HaltReason::kBreakpoint : HaltReason::kFault;
      return false;
    } catch (const KernelAssertSignal& signal) {
      env.LatchHang("assertion in ISR: " + signal.message);
      trapped_ = true;
      trap_info_.reason = HaltReason::kHang;
      return false;
    } catch (const KernelHangSignal& signal) {
      env.LatchHang(signal.message);
      trapped_ = true;
      trap_info_.reason = HaltReason::kHang;
      return false;
    }
  }
  results_.push_back(result);
  ++total_calls_;
  ++call_index_;
  // Inter-call settling delay (scheduler, housekeeping) — the dominant per-call latency
  // on real hardware, and the carrier of the instrumentation execution overhead.
  ctx_->YieldDelay();
  return true;
}

StopInfo AgentFirmware::Resume(TargetEnv& env, uint64_t max_steps) {
  StopInfo stop;
  if (trapped_) {
    // Nothing executes any more; the board reports the frozen state.
    return trap_info_;
  }
  // The host only touches ring RAM (drains, bank flips) while we are stopped, i.e.
  // between Resume calls: re-read the host-owned ring header words this window.
  ctx_->BeginResumeWindow();
  for (uint64_t step = 0; step < max_steps; ++step) {
    env.ConsumeCycles(kAgentStepCycles);
    switch (state_) {
      case LoopState::kAtExecutorMain: {
        if (PauseAt(env, kPpExecutorMain)) {
          stop.reason = HaltReason::kBreakpoint;
          return stop;
        }
        auto flag = env.RamReadU32(kMailboxOffset + kMailboxFlagOffset);
        if (!flag.ok() || flag.value() == 0) {
          WriteStatus(env, AgentState::kWaiting);
          // The idle poll loop keeps walking its body, so the PC a debugger samples
          // varies from poll to poll (a parked-but-healthy core is not a stall).
          env.ConsumeCycles(32 + (++idle_spins_ % 61) * 16);
          stop.reason = HaltReason::kIdle;
          return stop;
        }
        state_ = LoopState::kAtReadProg;
        break;
      }
      case LoopState::kAtReadProg: {
        if (PauseAt(env, kPpReadProg)) {
          stop.reason = HaltReason::kBreakpoint;
          return stop;
        }
        WriteStatus(env, AgentState::kReading);
        auto len = env.RamReadU32(kMailboxOffset + kMailboxLenOffset);
        uint32_t prog_len = len.ok() ? len.value() : 0;
        AgentError error = AgentError::kTruncated;
        program_.calls.clear();
        if (prog_len <= kMailboxMaxBytes) {
          auto bytes = env.RamRead(kMailboxOffset + kMailboxDataOffset, prog_len);
          if (bytes.ok()) {
            error = DecodeProgram(bytes.value().data(), bytes.value().size(), &program_);
            env.ConsumeCycles(kCopyPerByteCycles * prog_len);
          }
        }
        // Consume the mailbox either way.
        (void)env.RamWriteU32(kMailboxOffset + kMailboxFlagOffset, 0);
        if (error != AgentError::kNone) {
          WriteError(env, error);
          ++progs_done_;
          WriteStatus(env, AgentState::kRejected);
          state_ = LoopState::kAtExecutorMain;
          break;
        }
        WriteError(env, AgentError::kNone);
        call_index_ = 0;
        results_.clear();
        state_ = LoopState::kAtExecuteOne;
        break;
      }
      case LoopState::kAtExecuteOne: {
        if (PauseAt(env, kPpExecuteOne)) {
          stop.reason = HaltReason::kBreakpoint;
          return stop;
        }
        WriteStatus(env, AgentState::kExecuting);
        state_ = LoopState::kExecuting;
        break;
      }
      case LoopState::kExecuting: {
        if (call_index_ >= program_.calls.size()) {
          ++progs_done_;
          WriteStatus(env, AgentState::kDone);
          state_ = LoopState::kAtExecutorMain;
          break;
        }
        // Publish the call index about to execute so every coverage entry the call
        // (and the housekeeping after it) appends carries its attribution.
        ctx_->SetCurrentCall(static_cast<uint32_t>(call_index_));
        if (!ExecuteCurrentCall(env)) {
          return trap_info_;  // trap latched; board freezes the PC
        }
        if (ctx_->cov_overflow_pending()) {
          state_ = LoopState::kAtCovBufFull;
        }
        break;
      }
      case LoopState::kAtCovBufFull: {
        // Double-buffered mode: if the host already collected the parked bank, park
        // the full one and flip onto it — no halt, no host round trip; the parked
        // bank rides out at the next stop. skip_pause_ means we are resuming from
        // the pause below (the host just drained both banks), so carry on in place.
        if (!skip_pause_ && ctx_->TryBankFlip()) {
          ctx_->ClearCovOverflow();
          state_ = LoopState::kExecuting;
          break;
        }
        if (PauseAt(env, kPpCovBufFull)) {
          stop.reason = HaltReason::kBreakpoint;
          return stop;
        }
        // If the host never armed _kcmp_buf_full it does not drain mid-program; the agent
        // carries on and further entries are dropped (counted in the ring header).
        ctx_->ClearCovOverflow();
        state_ = LoopState::kExecuting;
        break;
      }
    }
  }
  stop.reason = HaltReason::kQuantumExpired;
  return stop;
}

Result<FirmwareFactory> MakeAgentFactory(const std::string& os_name) {
  ASSIGN_OR_RETURN(OsInfo info, OsRegistry::Instance().Find(os_name));
  OsFactory os_factory = info.factory;
  return FirmwareFactory([os_factory](const FirmwareImage& image) {
    return std::make_unique<AgentFirmware>(image, os_factory());
  });
}

}  // namespace eof
