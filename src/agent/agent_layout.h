// RAM and symbol layout contract between the on-target agent and the host fuzzer.
//
// The host discovers these locations through the image's symbol table (g_eof_status,
// g_eof_mailbox, g_eof_cov_ring, and the program-point symbols of Figure 4); the constants
// here are the link-time addresses the image builder assigns.

#ifndef SRC_AGENT_AGENT_LAYOUT_H_
#define SRC_AGENT_AGENT_LAYOUT_H_

#include <cstdint>

namespace eof {

// --- RAM blocks (offsets from ram_base) ---

// Agent status block.
inline constexpr uint64_t kStatusBlockOffset = 0x100;
inline constexpr uint64_t kStatusStateOffset = 0;      // u32 AgentState
inline constexpr uint64_t kStatusLastErrorOffset = 4;  // u32 AgentError of last program
inline constexpr uint64_t kStatusCallsDoneOffset = 8;  // u32 calls executed in last program
inline constexpr uint64_t kStatusProgsOffset = 12;     // u32 programs completed since boot
inline constexpr uint64_t kStatusTotalCallsOffset = 16;  // u32 calls executed since boot
inline constexpr uint64_t kStatusBlockSize = 32;

// Test-case mailbox: host writes [flag u32][len u32][bytes], agent consumes and clears.
inline constexpr uint64_t kMailboxOffset = 0x140;
inline constexpr uint64_t kMailboxFlagOffset = 0;  // 0 = empty, 1 = program ready
inline constexpr uint64_t kMailboxLenOffset = 4;
inline constexpr uint64_t kMailboxDataOffset = 8;
inline constexpr uint64_t kMailboxMaxBytes = 8192;

// Coverage ring (header layout in src/kernel/cov_ring.h).
inline constexpr uint64_t kCovRingOffset = 0x2200;

// Ring capacity scales with board RAM: tiny parts get a small ring (more _kcmp_buf_full
// pauses — the paper's ESP32 vs. HiFive1 difference).
constexpr uint32_t CovRingCapacityFor(uint64_t ram_bytes) {
  if (ram_bytes >= 512 * 1024) {
    return 4096;
  }
  if (ram_bytes >= 128 * 1024) {
    return 1024;
  }
  return 192;
}

// --- Program-point symbols (offsets from text_base) ---

struct ProgramPoint {
  const char* symbol;
  uint64_t text_offset;
};

inline constexpr ProgramPoint kPpAgentStart = {"agent_start", 0x00};
inline constexpr ProgramPoint kPpExecutorMain = {"executor_main", 0x40};
inline constexpr ProgramPoint kPpReadProg = {"read_prog", 0x80};
inline constexpr ProgramPoint kPpExecuteOne = {"execute_one", 0xc0};
inline constexpr ProgramPoint kPpCovBufFull = {"_kcmp_buf_full", 0x100};
// The OS-specific exception handler symbol is placed at this offset by the image builder.
inline constexpr uint64_t kExceptionSymbolOffset = 0x140;
// Module basic-block regions start here.
inline constexpr uint64_t kCodeSpaceOffset = 0x1000;

// --- agent status values ---

enum class AgentState : uint32_t {
  kBooting = 0,
  kWaiting = 1,    // parked at executor_main
  kReading = 2,
  kExecuting = 3,
  kDone = 4,       // last program completed
  kRejected = 5,   // last program failed to decode
};

enum class AgentError : uint32_t {
  kNone = 0,
  kBadMagic = 1,
  kTruncated = 2,
  kTooManyCalls = 3,
  kBadApiId = 4,
  kBadArgCount = 5,
  kBadResultRef = 6,
  kOversizedBytes = 7,
};

}  // namespace eof

#endif  // SRC_AGENT_AGENT_LAYOUT_H_
