#include "src/agent/wire.h"

namespace eof {

std::vector<uint8_t> EncodeProgram(const WireProgram& program) {
  ByteWriter writer;
  writer.PutU32(kWireMagic);
  writer.PutU16(static_cast<uint16_t>(program.calls.size()));
  for (const WireCall& call : program.calls) {
    writer.PutU32(call.api_id);
    writer.PutU8(static_cast<uint8_t>(call.args.size()));
    for (const WireArg& arg : call.args) {
      writer.PutU8(static_cast<uint8_t>(arg.kind));
      switch (arg.kind) {
        case WireArgKind::kScalar:
          writer.PutU64(arg.scalar);
          break;
        case WireArgKind::kResultRef:
          writer.PutU16(static_cast<uint16_t>(arg.scalar));
          break;
        case WireArgKind::kBytes:
          writer.PutU32(static_cast<uint32_t>(arg.bytes.size()));
          writer.PutBytes(arg.bytes.data(), arg.bytes.size());
          break;
      }
    }
  }
  return writer.TakeBytes();
}

AgentError DecodeProgram(const uint8_t* data, size_t size, WireProgram* out) {
  ByteReader reader(data, size);
  if (reader.GetU32() != kWireMagic) {
    return AgentError::kBadMagic;
  }
  uint16_t ncalls = reader.GetU16();
  if (reader.failed()) {
    return AgentError::kTruncated;
  }
  if (ncalls > kWireMaxCalls) {
    return AgentError::kTooManyCalls;
  }
  out->calls.clear();
  out->calls.reserve(ncalls);
  for (uint16_t i = 0; i < ncalls; ++i) {
    WireCall call;
    call.api_id = reader.GetU32();
    uint8_t nargs = reader.GetU8();
    if (reader.failed()) {
      return AgentError::kTruncated;
    }
    for (uint8_t a = 0; a < nargs; ++a) {
      uint8_t kind = reader.GetU8();
      WireArg arg;
      switch (kind) {
        case 0:
          arg.kind = WireArgKind::kScalar;
          arg.scalar = reader.GetU64();
          break;
        case 1: {
          arg.kind = WireArgKind::kResultRef;
          uint16_t ref = reader.GetU16();
          if (ref >= i) {
            return AgentError::kBadResultRef;  // may only reference earlier calls
          }
          arg.scalar = ref;
          break;
        }
        case 2: {
          arg.kind = WireArgKind::kBytes;
          uint32_t len = reader.GetU32();
          if (reader.failed() || len > kWireMaxArgBytes || len > reader.remaining()) {
            return AgentError::kOversizedBytes;
          }
          arg.bytes.resize(len);
          reader.GetBytes(arg.bytes.data(), len);
          break;
        }
        default:
          return AgentError::kTruncated;
      }
      if (reader.failed()) {
        return AgentError::kTruncated;
      }
      call.args.push_back(std::move(arg));
    }
    out->calls.push_back(std::move(call));
  }
  return AgentError::kNone;
}

}  // namespace eof
