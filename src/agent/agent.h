// The cross-platform execution agent (§4.3.2): firmware that embeds a target OS and runs
// the Figure-4 loop. It pauses at program points (executor_main, read_prog, execute_one,
// _kcmp_buf_full) whenever the host armed breakpoints there, deserializes mailbox programs
// using only primitive operations, dispatches calls through the OS API registry, and
// translates kernel traps into board-level fault/hang latches at handle_exception().

#ifndef SRC_AGENT_AGENT_H_
#define SRC_AGENT_AGENT_H_

#include <memory>
#include <vector>

#include "src/agent/agent_layout.h"
#include "src/agent/wire.h"
#include "src/hw/firmware.h"
#include "src/hw/image.h"
#include "src/kernel/kernel_context.h"
#include "src/kernel/os.h"

namespace eof {

class AgentFirmware : public Firmware {
 public:
  AgentFirmware(const FirmwareImage& image, std::unique_ptr<Os> os);

  Status OnBoot(TargetEnv& env) override;
  StopInfo Resume(TargetEnv& env, uint64_t max_steps) override;

  // Test hooks.
  Os& os_for_test() { return *os_; }
  KernelContext* context_for_test() { return ctx_.get(); }

 private:
  enum class LoopState {
    kAtExecutorMain,
    kAtReadProg,
    kAtExecuteOne,
    kExecuting,
    kAtCovBufFull,
  };

  // Enters the program point at text_base + `point.text_offset`. Returns true when the
  // agent must suspend there (host breakpoint armed and not yet consumed for this visit).
  bool PauseAt(TargetEnv& env, const ProgramPoint& point);

  void WriteStatus(TargetEnv& env, AgentState state);
  void WriteError(TargetEnv& env, AgentError error);

  // Executes calls_[call_index_]; returns false when a trap ended the program.
  bool ExecuteCurrentCall(TargetEnv& env);

  const FirmwareImage& image_;
  std::unique_ptr<Os> os_;
  std::unique_ptr<KernelContext> ctx_;

  uint64_t text_base_ = 0;
  uint64_t exception_handler_addr_ = 0;

  LoopState state_ = LoopState::kAtExecutorMain;
  bool skip_pause_ = false;  // set after a breakpoint stop so resume passes the point

  WireProgram program_;
  size_t call_index_ = 0;
  std::vector<int64_t> results_;
  uint32_t progs_done_ = 0;
  uint64_t idle_spins_ = 0;
  uint32_t total_calls_ = 0;
  bool trapped_ = false;  // a fault/hang latched; Resume only reports it
  StopInfo trap_info_;
};

// Builds the standard firmware factory for `os_name`: the factory instantiates the OS and
// wraps it in an AgentFirmware.
Result<FirmwareFactory> MakeAgentFactory(const std::string& os_name);

}  // namespace eof

#endif  // SRC_AGENT_AGENT_H_
