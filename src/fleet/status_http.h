// Minimal HTTP/1.1 status endpoint for `eof serve --status-port`: a loopback
// listener with an accept thread answering GET /metrics (Prometheus text
// exposition) and GET /healthz. One request per connection (Connection:
// close), bodies built by injected handlers so the server owns no campaign
// state. Deliberately tiny — no keep-alive, no chunking, no TLS; like the
// fleet protocol it binds 127.0.0.1 only.

#ifndef SRC_FLEET_STATUS_HTTP_H_
#define SRC_FLEET_STATUS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "src/common/status.h"

namespace eof {
namespace fleet {

class StatusHttpServer {
 public:
  struct Handlers {
    // Body for GET /metrics; served with the Prometheus content type.
    std::function<std::string()> metrics;
    // Body for GET /healthz; defaults to "ok\n" when unset.
    std::function<std::string()> healthz;
  };

  // Binds 127.0.0.1:`port` (0 picks an ephemeral port, reported via the
  // bound_port() accessor) and starts the accept thread.
  static Result<std::unique_ptr<StatusHttpServer>> Start(uint16_t port,
                                                         Handlers handlers);
  ~StatusHttpServer();

  // Stops the accept thread and closes the listener. Idempotent.
  void Stop();

  uint16_t bound_port() const { return bound_port_; }

 private:
  StatusHttpServer(int listen_fd, uint16_t bound_port, Handlers handlers);

  void AcceptLoop();
  void HandleConnection(int fd);

  int listen_fd_;
  uint16_t bound_port_;
  Handlers handlers_;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
};

}  // namespace fleet
}  // namespace eof

#endif  // SRC_FLEET_STATUS_HTTP_H_
