#include "src/fleet/orchestrator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "src/common/coverage_serial.h"
#include "src/common/hash.h"
#include "src/common/strings.h"

namespace eof {
namespace fleet {

namespace {

std::string BugKey(uint32_t catalog_id, const std::string& excerpt) {
  return StrFormat("%u|%s", catalog_id, excerpt.c_str());
}

}  // namespace

Orchestrator::Orchestrator(Options options) : options_(std::move(options)) {
  status_requests_ = metrics_.RegisterCounter("fleet.status_requests");
  sync_frames_ = metrics_.RegisterCounter("fleet.sync_frames");
  sync_payload_bytes_ = metrics_.RegisterHistogram(
      "fleet.sync_payload_bytes",
      {256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304});
}

Result<std::unique_ptr<Orchestrator>> Orchestrator::Create(Options options) {
  if (options.board_pool < 1) {
    return InvalidArgumentError("Orchestrator: board_pool must be positive");
  }
  if (options.heartbeat_interval_ms == 0 || options.lease_timeout_ms == 0) {
    return InvalidArgumentError(
        "Orchestrator: heartbeat and lease timeouts must be positive");
  }
  if (options.lease_timeout_ms <= options.heartbeat_interval_ms) {
    return InvalidArgumentError(
        "Orchestrator: lease timeout must exceed the heartbeat interval");
  }
  if (!options.metrics_out.empty() && options.sink != nullptr) {
    return InvalidArgumentError(
        "Orchestrator: metrics_out and sink are mutually exclusive");
  }
  auto orchestrator = std::unique_ptr<Orchestrator>(new Orchestrator(std::move(options)));
  if (!orchestrator->options_.metrics_out.empty()) {
    // Unbuffered: the fleet journal is the service's live operational log
    // (lease lifecycle, worker loss), low-rate and tailed while serving —
    // unlike board telemetry, which buys buffering with its row rate.
    if (orchestrator->options_.journal_rotate_bytes > 0) {
      ASSIGN_OR_RETURN(
          orchestrator->file_sink_,
          telemetry::RotatingFileEventSink::Open(
              orchestrator->options_.metrics_out,
              orchestrator->options_.journal_rotate_bytes, /*buffer_lines=*/1));
    } else {
      ASSIGN_OR_RETURN(
          orchestrator->file_sink_,
          telemetry::FileEventSink::Open(orchestrator->options_.metrics_out,
                                         /*buffer_lines=*/1));
    }
  }
  return orchestrator;
}

uint64_t Orchestrator::NowMs() const {
  if (options_.clock_ms) {
    return options_.clock_ms();
  }
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

telemetry::EventSink* Orchestrator::sink() const {
  if (options_.sink != nullptr) {
    return options_.sink;
  }
  return file_sink_.get();
}

void Orchestrator::EmitLocked(VirtualTime at, const char* type, int worker,
                              std::vector<telemetry::EventField> fields) {
  telemetry::EventSink* out = sink();
  if (out == nullptr) {
    return;
  }
  telemetry::Event event;
  event.at = at;
  event.type = type;
  event.worker = worker;
  event.fields = std::move(fields);
  out->Emit(event);
}

Status Orchestrator::AddCampaign(const FleetCampaignSpec& spec) {
  if (spec.campaign_id.empty()) {
    return InvalidArgumentError("AddCampaign: campaign_id must be non-empty");
  }
  if (spec.shards < 1) {
    return InvalidArgumentError("AddCampaign: shards must be positive");
  }
  if (spec.weight < 1) {
    return InvalidArgumentError("AddCampaign: weight must be positive");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (FindCampaignLocked(spec.campaign_id) != nullptr) {
    return AlreadyExistsError(
        StrFormat("AddCampaign: duplicate campaign id '%s'", spec.campaign_id.c_str()));
  }
  auto campaign = std::make_unique<CampaignState>();
  campaign->spec = spec;
  campaign->wire =
      ToWireConfig(spec.config, spec.campaign_id, static_cast<uint32_t>(spec.shards));
  campaign->shards.resize(static_cast<size_t>(spec.shards));
  // The orchestrator's campaign_start mirrors the in-process row (so `eof
  // report` reads the same envelope) with the fleet markers appended last.
  EmitLocked(0, "campaign_start", -1,
             {telemetry::EventField::Text("os", spec.config.os_name),
              telemetry::EventField::Text("board", spec.config.board_name.empty()
                                                       ? "default"
                                                       : spec.config.board_name),
              telemetry::EventField::Uint("workers", static_cast<uint64_t>(spec.shards)),
              telemetry::EventField::Uint("seed", spec.config.seed),
              telemetry::EventField::Uint("budget_us", spec.config.budget),
              telemetry::EventField::Uint("interval_us", spec.config.metrics_interval),
              telemetry::EventField::Text("campaign", spec.campaign_id),
              telemetry::EventField::Uint("fleet", 1)});
  campaigns_.push_back(std::move(campaign));
  return OkStatus();
}

Orchestrator::CampaignState* Orchestrator::FindCampaignLocked(
    const std::string& campaign_id) {
  for (auto& campaign : campaigns_) {
    if (campaign->spec.campaign_id == campaign_id) {
      return campaign.get();
    }
  }
  return nullptr;
}

bool Orchestrator::CampaignDoneLocked(const CampaignState& campaign) const {
  for (const ShardState& shard : campaign.shards) {
    if (shard.phase != ShardPhase::kDone) {
      return false;
    }
  }
  return true;
}

bool Orchestrator::AllDoneLocked() const {
  for (const auto& campaign : campaigns_) {
    if (!CampaignDoneLocked(*campaign)) {
      return false;
    }
  }
  return true;
}

bool Orchestrator::AllCampaignsDone() const {
  std::lock_guard<std::mutex> lock(mu_);
  return AllDoneLocked();
}

int Orchestrator::CompletedShards(const std::string& campaign_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& campaign : campaigns_) {
    if (campaign->spec.campaign_id != campaign_id) {
      continue;
    }
    int done = 0;
    for (const ShardState& shard : campaign->shards) {
      if (shard.phase == ShardPhase::kDone) {
        ++done;
      }
    }
    return done;
  }
  return -1;
}

size_t Orchestrator::ActiveLeasesLocked(const CampaignState& campaign) const {
  size_t active = 0;
  for (const ShardState& shard : campaign.shards) {
    if (shard.phase == ShardPhase::kLeased) {
      ++active;
    }
  }
  return active;
}

size_t Orchestrator::TotalActiveLeasesLocked() const {
  size_t active = 0;
  for (const auto& campaign : campaigns_) {
    active += ActiveLeasesLocked(*campaign);
  }
  return active;
}

void Orchestrator::ReapExpiredLeases() {
  std::lock_guard<std::mutex> lock(mu_);
  ReapLocked();
}

void Orchestrator::ReapLocked() {
  uint64_t now = NowMs();
  for (auto& campaign : campaigns_) {
    if (campaign->finalized) {
      continue;
    }
    std::set<uint32_t> reclaimed_from;
    for (size_t i = 0; i < campaign->shards.size(); ++i) {
      ShardState& shard = campaign->shards[i];
      if (shard.phase != ShardPhase::kLeased || now <= shard.deadline_ms) {
        continue;
      }
      reclaimed_from.insert(shard.worker);
      shard.phase = ShardPhase::kPending;
      ++campaign->leases_reclaimed;
      EmitLocked(campaign->snapshot_at_us, "lease_reclaim",
                 static_cast<int>(shard.worker),
                 {telemetry::EventField::Text("campaign", campaign->spec.campaign_id),
                  telemetry::EventField::Uint("lease", shard.lease_id),
                  telemetry::EventField::Uint("shard", i),
                  telemetry::EventField::Uint("attempt", shard.attempt)});
      shard.lease_id = 0;
    }
    for (uint32_t worker : reclaimed_from) {
      auto it = workers_.find(worker);
      if (it != workers_.end() && !it->second.lost) {
        it->second.lost = true;
        ++campaign->workers_lost;
        EmitLocked(campaign->snapshot_at_us, "worker_lost", static_cast<int>(worker),
                   {telemetry::EventField::Text("campaign", campaign->spec.campaign_id),
                    telemetry::EventField::Text("name", it->second.name)});
      }
    }
  }
}

HelloAckMsg Orchestrator::HandleHello(const HelloMsg& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  HelloAckMsg ack;
  ack.worker_id = next_worker_id_++;
  ack.heartbeat_interval_ms = options_.heartbeat_interval_ms;
  ack.lease_timeout_ms = options_.lease_timeout_ms;
  WorkerInfo info;
  info.name = msg.worker_name;
  info.last_seen_ms = NowMs();
  workers_[ack.worker_id] = std::move(info);
  return ack;
}

Frame Orchestrator::HandleLeaseRequest(const LeaseRequestMsg& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  ReapLocked();

  Frame no_work;
  no_work.type = MsgType::kNoWork;
  NoWorkMsg idle;
  idle.campaign_done = AllDoneLocked() ? 1 : 0;
  idle.retry_ms = options_.heartbeat_interval_ms;
  no_work.payload = Encode(idle);

  auto worker_it = workers_.find(msg.worker_id);
  if (worker_it == workers_.end() || msg.capacity == 0) {
    return no_work;
  }
  worker_it->second.last_seen_ms = NowMs();
  worker_it->second.lost = false;  // a rejoining worker is a worker again

  // Weighted fair share: the campaign with pending work whose active-lease
  // count is smallest relative to its weight wins; earlier registration breaks
  // ties.
  CampaignState* best = nullptr;
  for (auto& campaign : campaigns_) {
    bool pending = false;
    for (const ShardState& shard : campaign->shards) {
      if (shard.phase == ShardPhase::kPending) {
        pending = true;
        break;
      }
    }
    if (!pending) {
      continue;
    }
    if (best == nullptr ||
        ActiveLeasesLocked(*campaign) * static_cast<size_t>(best->spec.weight) <
            ActiveLeasesLocked(*best) * static_cast<size_t>(campaign->spec.weight)) {
      best = campaign.get();
    }
  }
  if (best == nullptr) {
    return no_work;
  }
  size_t pool_left =
      static_cast<size_t>(options_.board_pool) > TotalActiveLeasesLocked()
          ? static_cast<size_t>(options_.board_pool) - TotalActiveLeasesLocked()
          : 0;
  size_t want = std::min<size_t>(msg.capacity, pool_left);
  if (want == 0) {
    return no_work;
  }

  LeaseGrantMsg grant;
  grant.config = best->wire;
  uint64_t now = NowMs();
  for (size_t i = 0; i < best->shards.size() && grant.leases.size() < want; ++i) {
    ShardState& shard = best->shards[i];
    if (shard.phase != ShardPhase::kPending) {
      continue;
    }
    shard.phase = ShardPhase::kLeased;
    shard.lease_id = next_lease_id_++;
    shard.worker = msg.worker_id;
    shard.deadline_ms = now + options_.lease_timeout_ms;
    ++shard.attempt;
    ShardLease lease;
    lease.lease_id = shard.lease_id;
    lease.shard = static_cast<uint32_t>(i);
    lease.attempt = shard.attempt;
    grant.leases.push_back(lease);
    ++best->leases_granted;
    EmitLocked(best->snapshot_at_us, "lease_grant", static_cast<int>(msg.worker_id),
               {telemetry::EventField::Text("campaign", best->spec.campaign_id),
                telemetry::EventField::Uint("lease", lease.lease_id),
                telemetry::EventField::Uint("shard", lease.shard),
                telemetry::EventField::Uint("attempt", lease.attempt)});
  }
  best->workers_served.insert(msg.worker_id);

  // The grant carries the full merged campaign state — this is the crash/rejoin
  // resync path as much as the cold-start one.
  grant.coverage = SerializeCoverage(best->coverage);
  grant.corpus = best->corpus;
  grant.focus = PeerFocusLocked(*best, msg.worker_id);
  WorkerCursor& cursor = best->cursors[msg.worker_id];
  cursor.edge = best->edge_log.size();
  cursor.corpus = best->corpus.size();
  cursor.focus.clear();

  Frame frame;
  frame.type = MsgType::kLeaseGrant;
  frame.payload = Encode(grant);
  return frame;
}

void Orchestrator::MergeCoverageLocked(CampaignState* campaign,
                                       const std::vector<uint8_t>& blob) {
  if (blob.empty()) {
    return;
  }
  Result<DecodedCoverage> decoded = DecodeCoverage(blob);
  if (!decoded.ok()) {
    ++campaign->rejected_uploads;
    return;
  }
  for (uint64_t id : decoded.value().ids) {
    if (campaign->coverage.Add(id)) {
      campaign->edge_log.push_back(id);
    }
  }
}

void Orchestrator::AdmitCorpusLocked(CampaignState* campaign, uint32_t worker,
                                     const std::vector<CorpusEntryWire>& entries) {
  size_t admitted = 0;
  for (const CorpusEntryWire& entry : entries) {
    uint64_t hash = Fnv1a(entry.text);
    if (!campaign->corpus_hashes.insert(hash).second) {
      continue;
    }
    campaign->corpus.push_back(entry);
    campaign->corpus_origin.push_back(worker);
    ++admitted;
  }
  if (admitted > 0) {
    ++campaign->corpus_syncs;
    EmitLocked(campaign->snapshot_at_us, "corpus_sync", static_cast<int>(worker),
               {telemetry::EventField::Text("campaign", campaign->spec.campaign_id),
                telemetry::EventField::Uint("programs", admitted),
                telemetry::EventField::Uint("corpus", campaign->corpus.size())});
  }
}

void Orchestrator::AdmitBugsLocked(CampaignState* campaign,
                                   const std::vector<BugWire>& bugs) {
  for (const BugWire& bug : bugs) {
    if (!campaign->bug_keys.insert(BugKey(bug.catalog_id, bug.excerpt)).second) {
      continue;  // another shard already reported this signature
    }
    campaign->bugs.push_back(bug);
  }
}

std::vector<uint64_t> Orchestrator::PeerFocusLocked(const CampaignState& campaign,
                                                    uint32_t worker) const {
  std::vector<uint64_t> focus;
  for (const auto& [peer, cursor] : campaign.cursors) {
    if (peer == worker) {
      continue;
    }
    focus.insert(focus.end(), cursor.focus.begin(), cursor.focus.end());
  }
  std::sort(focus.begin(), focus.end());
  focus.erase(std::unique(focus.begin(), focus.end()), focus.end());
  return focus;
}

SyncAckMsg Orchestrator::HandleSync(const SyncMsg& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  SyncAckMsg ack;
  auto worker_it = workers_.find(msg.worker_id);
  if (worker_it == workers_.end()) {
    ack.accepted = 0;
    return ack;
  }
  worker_it->second.last_seen_ms = NowMs();
  worker_it->second.lost = false;
  ++worker_it->second.syncs;
  worker_it->second.journal_dropped =
      std::max(worker_it->second.journal_dropped, msg.journal_dropped);
  CampaignState* campaign = FindCampaignLocked(msg.campaign_id);
  if (campaign == nullptr) {
    ack.accepted = 0;
    return ack;
  }
  uint64_t& dropped = campaign->worker_dropped[msg.worker_id];
  dropped = std::max(dropped, msg.journal_dropped);

  uint64_t deadline = NowMs() + options_.lease_timeout_ms;
  uint64_t sync_execs = 0;
  for (const ShardProgressWire& progress : msg.shards) {
    size_t index = progress.shard;
    if (index >= campaign->shards.size() ||
        campaign->shards[index].phase != ShardPhase::kLeased ||
        campaign->shards[index].lease_id != progress.lease_id) {
      // The lease moved on (reclaimed and possibly re-granted elsewhere): the
      // worker must stop fuzzing this shard; its uploads stay (idempotent).
      ack.revoked.push_back(progress.lease_id);
      continue;
    }
    ShardState& shard = campaign->shards[index];
    shard.elapsed_us = std::max(shard.elapsed_us, progress.elapsed_us);
    shard.execs = progress.execs;
    shard.deadline_ms = deadline;
    sync_execs += progress.execs;
    if (progress.completed != 0) {
      shard.phase = ShardPhase::kDone;
      EmitLocked(shard.elapsed_us, "lease_complete", static_cast<int>(msg.worker_id),
                 {telemetry::EventField::Text("campaign", campaign->spec.campaign_id),
                  telemetry::EventField::Uint("lease", progress.lease_id),
                  telemetry::EventField::Uint("shard", index),
                  telemetry::EventField::Uint("execs", progress.execs)});
    }
  }

  MergeCoverageLocked(campaign, msg.coverage_delta);
  AdmitCorpusLocked(campaign, msg.worker_id, msg.corpus);
  AdmitBugsLocked(campaign, msg.bugs);

  WorkerCursor& cursor = campaign->cursors[msg.worker_id];
  // Downstream news: everything merged since this worker's last grant/ack,
  // minus its own corpus contributions (coverage replays are idempotent, so the
  // edge stream is not origin-filtered).
  if (cursor.edge < campaign->edge_log.size()) {
    std::vector<uint64_t> fresh(campaign->edge_log.begin() +
                                    static_cast<ptrdiff_t>(cursor.edge),
                                campaign->edge_log.end());
    ack.coverage_delta = SerializeCoverageIds(std::move(fresh), CoverageWireKind::kDiff);
  }
  for (size_t i = cursor.corpus; i < campaign->corpus.size(); ++i) {
    if (campaign->corpus_origin[i] != msg.worker_id) {
      ack.corpus.push_back(campaign->corpus[i]);
    }
  }
  cursor.edge = campaign->edge_log.size();
  cursor.corpus = campaign->corpus.size();
  cursor.focus = msg.focus;
  ack.focus = PeerFocusLocked(*campaign, msg.worker_id);
  ack.campaign_done = CampaignDoneLocked(*campaign) ? 1 : 0;

  worker_it->second.execs_live = sync_execs;
  EmitLocked(campaign->snapshot_at_us, "heartbeat", static_cast<int>(msg.worker_id),
             {telemetry::EventField::Text("campaign", campaign->spec.campaign_id),
              telemetry::EventField::Uint("seq", msg.seq),
              telemetry::EventField::Uint("leases", msg.shards.size()),
              telemetry::EventField::Uint("execs", sync_execs)});

  // Farm row at the campaign frontier: the slowest still-running shard (or the
  // slowest overall once everything finished), monotone by construction.
  EmitFarmRowLocked(campaign, FrontierLocked(*campaign));
  return ack;
}

uint64_t Orchestrator::FrontierLocked(const CampaignState& campaign) const {
  uint64_t frontier = 0;
  bool any_active = false;
  for (const ShardState& shard : campaign.shards) {
    if (shard.phase == ShardPhase::kLeased) {
      frontier = any_active ? std::min(frontier, shard.elapsed_us) : shard.elapsed_us;
      any_active = true;
    }
  }
  if (!any_active) {
    for (const ShardState& shard : campaign.shards) {
      frontier = std::max(frontier, shard.elapsed_us);
    }
  }
  return frontier;
}

FinalAckMsg Orchestrator::HandleFinal(const WorkerFinalMsg& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  FinalAckMsg ack;
  auto worker_it = workers_.find(msg.worker_id);
  CampaignState* campaign = FindCampaignLocked(msg.campaign_id);
  if (worker_it == workers_.end() || campaign == nullptr) {
    ack.accepted = 0;
    return ack;
  }
  worker_it->second.last_seen_ms = NowMs();
  if (!campaign->finals_seen.insert({msg.worker_id, msg.seq}).second) {
    return ack;  // duplicate upload: acknowledge, count nothing twice
  }
  campaign->finals.push_back(msg);
  campaign->workers_served.insert(msg.worker_id);
  worker_it->second.execs_final += msg.execs;
  worker_it->second.execs_live = 0;  // the batch folded into finals
  worker_it->second.journal_dropped =
      std::max(worker_it->second.journal_dropped, msg.journal_dropped);
  uint64_t& dropped = campaign->worker_dropped[msg.worker_id];
  dropped = std::max(dropped, msg.journal_dropped);
  EmitLocked(msg.elapsed_us, "worker_final", static_cast<int>(msg.worker_id),
             {telemetry::EventField::Text("campaign", campaign->spec.campaign_id),
              telemetry::EventField::Uint("execs", msg.execs),
              telemetry::EventField::Uint("coverage", msg.final_coverage),
              telemetry::EventField::Uint("crashes", msg.crashes)});
  return ack;
}

void Orchestrator::EmitFarmRowLocked(CampaignState* campaign, VirtualTime at) {
  at = std::max<VirtualTime>(at, campaign->snapshot_at_us);
  campaign->snapshot_at_us = at;
  uint64_t execs = 0;
  for (const ShardState& shard : campaign->shards) {
    execs += shard.execs;
  }
  uint64_t crashes = 0;
  uint64_t bugs_rejected = 0;
  for (const WorkerFinalMsg& final : campaign->finals) {
    crashes += final.crashes;
    bugs_rejected += final.bugs_rejected;
  }
  uint64_t dropped_workers = 0;
  for (const auto& [worker, dropped] : campaign->worker_dropped) {
    dropped_workers += dropped;
  }
  telemetry::EventSink* out = sink();
  // `journal_dropped` is this (orchestrator) sink's own drop count;
  // `journal_dropped_workers` sums the latest worker-reported per-sink counts,
  // so a drop is attributable to a specific sink rather than one aggregate.
  EmitLocked(at, "farm_snapshot", -1,
             {telemetry::EventField::Uint("boards", campaign->shards.size()),
              telemetry::EventField::Uint("campaign_coverage",
                                          campaign->coverage.Count()),
              telemetry::EventField::Uint("corpus", campaign->corpus.size()),
              telemetry::EventField::Uint("campaign_execs", execs),
              telemetry::EventField::Uint("crashes", crashes),
              telemetry::EventField::Uint("bugs", campaign->bugs.size()),
              telemetry::EventField::Uint("bugs_rejected", bugs_rejected),
              telemetry::EventField::Uint("journal_dropped",
                                          out == nullptr ? 0 : out->dropped()),
              telemetry::EventField::Uint("journal_dropped_workers",
                                          dropped_workers),
              telemetry::EventField::Text("campaign", campaign->spec.campaign_id)});
}

void Orchestrator::FinalizeCampaignLocked(CampaignState* campaign) {
  if (campaign->finalized) {
    return;
  }
  campaign->finalized = true;
  uint64_t elapsed = 0;
  for (const ShardState& shard : campaign->shards) {
    elapsed = std::max(elapsed, shard.elapsed_us);
  }
  EmitFarmRowLocked(campaign, elapsed);
  telemetry::EventSink* out = sink();
  EmitLocked(elapsed, "campaign_end", -1,
             {telemetry::EventField::Uint("journal_dropped",
                                          out == nullptr ? 0 : out->dropped())});
  if (out != nullptr) {
    out->Flush();
  }
}

std::vector<FleetCampaignResult> Orchestrator::Results() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FleetCampaignResult> results;
  for (auto& campaign : campaigns_) {
    FinalizeCampaignLocked(campaign.get());
    FleetCampaignResult out;
    out.campaign_id = campaign->spec.campaign_id;
    out.bugs = campaign->bugs;
    out.leases_granted = campaign->leases_granted;
    out.leases_reclaimed = campaign->leases_reclaimed;
    out.rejected_uploads = campaign->rejected_uploads;
    out.workers_lost = campaign->workers_lost;
    out.corpus_syncs = campaign->corpus_syncs;
    out.workers_served = campaign->workers_served.size();

    CampaignResult& merged = out.result;
    merged.final_coverage = campaign->coverage.Count();
    for (const ShardState& shard : campaign->shards) {
      merged.elapsed = std::max<VirtualTime>(merged.elapsed, shard.elapsed_us);
    }
    for (const WorkerFinalMsg& final : campaign->finals) {
      merged.execs += final.execs;
      merged.rejected += final.rejected;
      merged.crashes += final.crashes;
      merged.stalls += final.stalls;
      merged.timeouts += final.timeouts;
      merged.restores += final.restores;
      merged.snapshot_restores += final.snapshot_restores;
      merged.snapshot_bytes += final.snapshot_bytes;
      merged.bugs_rejected += final.bugs_rejected;
      merged.directed_hits += final.directed_hits;
      merged.frontier = std::max(merged.frontier, final.frontier);
      merged.trim_removed_calls += final.trim_removed_calls;
      merged.trim_kept_calls += final.trim_kept_calls;
      merged.journal_dropped += final.journal_dropped;
      merged.link.transactions += final.link_transactions;
      merged.link.batches += final.link_batches;
      merged.link.batched_ops += final.link_batched_ops;
      merged.link.bytes_read += final.link_bytes_read;
      merged.link.bytes_written += final.link_bytes_written;
      merged.link.timeouts += final.link_timeouts;
      merged.link.flash_bytes += final.link_flash_bytes;
      merged.link.flash_skipped_bytes += final.link_flash_skipped_bytes;
      merged.link.resets += final.link_resets;
      merged.link.warm_restores += final.link_warm_restores;
    }
    // One worker served the whole campaign in one batch: its corpus count and
    // sampled series ARE the campaign's (the bit-identity case). Otherwise the
    // corpus count is the merged store (which excludes seed programs) and the
    // series is left to the journal's farm_snapshot rows.
    if (campaign->finals.size() == 1) {
      merged.corpus_size = campaign->finals[0].corpus_size;
      for (const auto& [at, coverage] : campaign->finals[0].series) {
        merged.series.push_back(CampaignSample{at, coverage});
      }
    } else {
      merged.corpus_size = campaign->corpus.size();
    }
    for (const CorpusEntryWire& entry : campaign->corpus) {
      merged.corpus_programs.push_back(entry.text);
    }
    results.push_back(std::move(out));
  }
  return results;
}

StatusReplyMsg Orchestrator::AssembleStatusLocked(uint64_t now_ms) {
  StatusReplyMsg reply;
  reply.assembled_ms = now_ms;
  reply.heartbeat_interval_ms = options_.heartbeat_interval_ms;
  for (const auto& campaign : campaigns_) {
    CampaignStatusWire wire;
    wire.campaign_id = campaign->spec.campaign_id;
    wire.os_name = campaign->spec.config.os_name;
    wire.board_name = campaign->spec.config.board_name.empty()
                          ? "default"
                          : campaign->spec.config.board_name;
    wire.budget_us = campaign->spec.config.budget;
    wire.shards_total = static_cast<uint32_t>(campaign->shards.size());
    uint64_t execs = 0;
    for (size_t i = 0; i < campaign->shards.size(); ++i) {
      const ShardState& shard = campaign->shards[i];
      switch (shard.phase) {
        case ShardPhase::kPending: ++wire.shards_pending; break;
        case ShardPhase::kLeased: ++wire.shards_leased; break;
        case ShardPhase::kDone: ++wire.shards_done; break;
      }
      execs += shard.execs;
      ShardStatusWire row;
      row.shard = static_cast<uint32_t>(i);
      row.phase = static_cast<uint8_t>(shard.phase);
      row.lease_id = shard.lease_id;
      row.worker = shard.worker;
      row.attempt = shard.attempt;
      row.deadline_ms = shard.deadline_ms;
      row.elapsed_us = shard.elapsed_us;
      row.execs = shard.execs;
      wire.shards.push_back(row);
    }
    wire.coverage = campaign->coverage.Count();
    wire.corpus = campaign->corpus.size();
    wire.execs = execs;
    for (const WorkerFinalMsg& final : campaign->finals) {
      wire.crashes += final.crashes;
    }
    wire.frontier_us = FrontierLocked(*campaign);
    wire.leases_granted = campaign->leases_granted;
    wire.leases_reclaimed = campaign->leases_reclaimed;
    wire.rejected_uploads = campaign->rejected_uploads;
    wire.workers_lost = campaign->workers_lost;
    wire.corpus_syncs = campaign->corpus_syncs;
    telemetry::EventSink* out = sink();
    wire.journal_dropped = out == nullptr ? 0 : out->dropped();
    for (const auto& [worker, dropped] : campaign->worker_dropped) {
      wire.journal_dropped_workers += dropped;
    }
    wire.finalized = campaign->finalized ? 1 : 0;
    for (const BugWire& bug : campaign->bugs) {
      BugStatusWire row;
      row.catalog_id = bug.catalog_id;
      row.detector = bug.detector;
      row.kind = bug.kind;
      row.excerpt = bug.excerpt;
      row.at_us = bug.at_us;
      row.board = bug.board;
      wire.bugs.push_back(std::move(row));
    }
    reply.campaigns.push_back(std::move(wire));
  }
  for (const auto& [worker_id, info] : workers_) {
    WorkerStatusWire row;
    row.worker_id = worker_id;
    row.name = info.name;
    row.last_seen_ms = info.last_seen_ms;
    row.lost = info.lost ? 1 : 0;
    row.execs = info.execs_final + info.execs_live;
    row.syncs = info.syncs;
    row.journal_dropped = info.journal_dropped;
    for (const auto& campaign : campaigns_) {
      for (const ShardState& shard : campaign->shards) {
        if (shard.phase == ShardPhase::kLeased && shard.worker == worker_id) {
          ++row.leases;
        }
      }
    }
    reply.workers.push_back(std::move(row));
  }
  return reply;
}

StatusReplyMsg Orchestrator::HandleStatus(const StatusRequestMsg& msg) {
  std::lock_guard<std::mutex> lock(mu_);
  status_requests_->Increment();
  uint64_t now = NowMs();
  // Bounded staleness: one assembly per heartbeat interval at most. A poll
  // storm (many observers, short --interval) reuses the cached snapshot, so
  // observers never add more than one state walk per heartbeat on top of the
  // per-message lock they already share with workers.
  if (!status_cache_valid_ || now < status_cache_ms_ ||
      now - status_cache_ms_ >= options_.heartbeat_interval_ms) {
    status_cache_ = AssembleStatusLocked(now);
    status_cache_ms_ = now;
    status_cache_valid_ = true;
  }
  StatusReplyMsg reply = status_cache_;
  reply.server_ms = now;
  if (!msg.campaign_id.empty()) {
    std::vector<CampaignStatusWire> filtered;
    for (CampaignStatusWire& campaign : reply.campaigns) {
      if (campaign.campaign_id == msg.campaign_id) {
        filtered.push_back(std::move(campaign));
      }
    }
    reply.campaigns = std::move(filtered);
  }
  if (msg.include_shards == 0) {
    for (CampaignStatusWire& campaign : reply.campaigns) {
      campaign.shards.clear();
    }
  }
  return reply;
}

telemetry::MetricsSnapshot Orchestrator::MetricsSnapshot() const {
  return metrics_.Snapshot();
}

void Orchestrator::ServeConnection(Transport* transport) {
  // Recv timeout: long enough that a worker sleeping through a NoWork backoff
  // is not dropped, short enough that a dead peer frees the handler promptly.
  int recv_timeout = static_cast<int>(
      std::min<uint64_t>(options_.lease_timeout_ms, 60 * 1000));
  int idle_rounds = 0;
  for (;;) {
    Result<Frame> frame_or = transport->Recv(recv_timeout);
    if (!frame_or.ok()) {
      if (frame_or.status().code() == ErrorCode::kTimeout) {
        ReapExpiredLeases();
        if (AllCampaignsDone() || ++idle_rounds >= 2) {
          break;
        }
        continue;
      }
      break;  // peer closed or stream corrupt — the reaper recovers the leases
    }
    idle_rounds = 0;
    const Frame& frame = frame_or.value();
    Frame reply;
    bool have_reply = true;
    switch (frame.type) {
      case MsgType::kHello: {
        Result<HelloMsg> msg = DecodeHello(frame.payload);
        if (!msg.ok()) {
          return transport->Close();
        }
        reply.type = MsgType::kHelloAck;
        reply.payload = Encode(HandleHello(msg.value()));
        break;
      }
      case MsgType::kLeaseRequest: {
        Result<LeaseRequestMsg> msg = DecodeLeaseRequest(frame.payload);
        if (!msg.ok()) {
          return transport->Close();
        }
        reply = HandleLeaseRequest(msg.value());
        break;
      }
      case MsgType::kSync: {
        Result<SyncMsg> msg = DecodeSync(frame.payload);
        if (!msg.ok()) {
          return transport->Close();
        }
        sync_frames_->Increment();
        sync_payload_bytes_->Observe(frame.payload.size());
        reply.type = MsgType::kSyncAck;
        reply.payload = Encode(HandleSync(msg.value()));
        break;
      }
      case MsgType::kWorkerFinal: {
        Result<WorkerFinalMsg> msg = DecodeWorkerFinal(frame.payload);
        if (!msg.ok()) {
          return transport->Close();
        }
        reply.type = MsgType::kFinalAck;
        reply.payload = Encode(HandleFinal(msg.value()));
        break;
      }
      case MsgType::kStatusRequest: {
        // Observer role: read-only, never takes leases, never says Hello.
        Result<StatusRequestMsg> msg = DecodeStatusRequest(frame.payload);
        if (!msg.ok()) {
          return transport->Close();
        }
        reply.type = MsgType::kStatusReply;
        reply.payload = Encode(HandleStatus(msg.value()));
        break;
      }
      case MsgType::kGoodbye:
        return transport->Close();
      default:
        return transport->Close();  // workers never receive these types
    }
    if (have_reply && !transport->Send(reply).ok()) {
      break;
    }
  }
  transport->Close();
}

Status Orchestrator::Serve(Listener* listener) {
  std::vector<std::thread> handlers;
  std::vector<std::unique_ptr<Transport>> connections;
  std::atomic<int> active{0};
  for (;;) {
    ReapExpiredLeases();
    if (AllCampaignsDone() && active.load() == 0) {
      break;
    }
    Result<std::unique_ptr<Transport>> conn = listener->Accept(50);
    if (!conn.ok()) {
      if (conn.status().code() == ErrorCode::kTimeout) {
        continue;
      }
      break;  // listener closed
    }
    connections.push_back(std::move(conn.value()));
    Transport* transport = connections.back().get();
    active.fetch_add(1);
    handlers.emplace_back([this, transport, &active] {
      ServeConnection(transport);
      active.fetch_sub(1);
    });
  }
  listener->Close();
  for (auto& connection : connections) {
    connection->Close();  // unblock any handler still in Recv
  }
  for (std::thread& handler : handlers) {
    handler.join();
  }
  return OkStatus();
}

}  // namespace fleet
}  // namespace eof
