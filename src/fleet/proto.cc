#include "src/fleet/proto.h"

#include "src/common/byteio.h"
#include "src/common/strings.h"

namespace eof {
namespace fleet {
namespace {

void PutString(ByteWriter* writer, const std::string& text) {
  writer->PutLengthPrefixed(text);
}

std::string GetString(ByteReader* reader) {
  std::vector<uint8_t> bytes = reader->GetLengthPrefixed();
  return std::string(bytes.begin(), bytes.end());
}

void PutBlob(ByteWriter* writer, const std::vector<uint8_t>& blob) {
  writer->PutLengthPrefixed(blob);
}

void PutU64List(ByteWriter* writer, const std::vector<uint64_t>& values) {
  writer->PutU32(static_cast<uint32_t>(values.size()));
  for (uint64_t value : values) {
    writer->PutU64(value);
  }
}

std::vector<uint64_t> GetU64List(ByteReader* reader) {
  uint32_t count = reader->GetU32();
  std::vector<uint64_t> values;
  if (reader->failed() || static_cast<size_t>(count) * 8 > reader->remaining()) {
    return values;
  }
  values.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    values.push_back(reader->GetU64());
  }
  return values;
}

void PutCorpus(ByteWriter* writer, const std::vector<CorpusEntryWire>& entries) {
  writer->PutU32(static_cast<uint32_t>(entries.size()));
  for (const CorpusEntryWire& entry : entries) {
    PutString(writer, entry.text);
    writer->PutU64(entry.new_edges);
  }
}

std::vector<CorpusEntryWire> GetCorpus(ByteReader* reader) {
  uint32_t count = reader->GetU32();
  std::vector<CorpusEntryWire> entries;
  for (uint32_t i = 0; i < count && !reader->failed(); ++i) {
    CorpusEntryWire entry;
    entry.text = GetString(reader);
    entry.new_edges = reader->GetU64();
    entries.push_back(std::move(entry));
  }
  return entries;
}

// Finishes a decode: every payload byte must have been consumed exactly.
template <typename T>
Result<T> Finish(const char* what, const ByteReader& reader, T msg) {
  if (reader.failed()) {
    return DataLossError(StrFormat("%s payload truncated", what));
  }
  if (reader.remaining() != 0) {
    return DataLossError(
        StrFormat("%s payload has %zu trailing bytes", what, reader.remaining()));
  }
  return msg;
}

}  // namespace

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  ByteWriter writer;
  writer.PutU32(kFrameMagic);
  writer.PutU16(kProtoVersion);
  writer.PutU16(static_cast<uint16_t>(frame.type));
  writer.PutU32(static_cast<uint32_t>(frame.payload.size()));
  writer.PutBytes(frame.payload.data(), frame.payload.size());
  return writer.TakeBytes();
}

Result<size_t> DecodeFrameHeader(const uint8_t header[kFrameHeaderBytes],
                                 MsgType* type) {
  ByteReader reader(header, kFrameHeaderBytes);
  uint32_t magic = reader.GetU32();
  if (magic != kFrameMagic) {
    return DataLossError(StrFormat("bad frame magic 0x%08x", magic));
  }
  uint16_t version = reader.GetU16();
  if (version != kProtoVersion) {
    return InvalidArgumentError(
        StrFormat("protocol version %u, expected %u", version, kProtoVersion));
  }
  uint16_t raw_type = reader.GetU16();
  if (raw_type < static_cast<uint16_t>(MsgType::kHello) ||
      raw_type > static_cast<uint16_t>(MsgType::kStatusReply)) {
    return DataLossError(StrFormat("unknown message type %u", raw_type));
  }
  uint32_t length = reader.GetU32();
  if (length > kMaxFramePayload) {
    return DataLossError(StrFormat("frame payload %u exceeds limit", length));
  }
  *type = static_cast<MsgType>(raw_type);
  return static_cast<size_t>(length);
}

Result<Frame> DecodeFrame(const uint8_t* data, size_t size) {
  if (size < kFrameHeaderBytes) {
    return DataLossError(StrFormat("frame truncated: %zu bytes", size));
  }
  Frame frame;
  ASSIGN_OR_RETURN(size_t payload_size, DecodeFrameHeader(data, &frame.type));
  if (size != kFrameHeaderBytes + payload_size) {
    return DataLossError(StrFormat("frame length mismatch: header says %zu, have %zu",
                                   payload_size, size - kFrameHeaderBytes));
  }
  frame.payload.assign(data + kFrameHeaderBytes, data + size);
  return frame;
}

std::vector<uint8_t> Encode(const HelloMsg& msg) {
  ByteWriter writer;
  PutString(&writer, msg.worker_name);
  writer.PutU32(msg.capacity);
  return writer.TakeBytes();
}

Result<HelloMsg> DecodeHello(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  HelloMsg msg;
  msg.worker_name = GetString(&reader);
  msg.capacity = reader.GetU32();
  return Finish("Hello", reader, std::move(msg));
}

std::vector<uint8_t> Encode(const HelloAckMsg& msg) {
  ByteWriter writer;
  writer.PutU32(msg.worker_id);
  writer.PutU64(msg.heartbeat_interval_ms);
  writer.PutU64(msg.lease_timeout_ms);
  return writer.TakeBytes();
}

Result<HelloAckMsg> DecodeHelloAck(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  HelloAckMsg msg;
  msg.worker_id = reader.GetU32();
  msg.heartbeat_interval_ms = reader.GetU64();
  msg.lease_timeout_ms = reader.GetU64();
  return Finish("HelloAck", reader, msg);
}

std::vector<uint8_t> Encode(const LeaseRequestMsg& msg) {
  ByteWriter writer;
  writer.PutU32(msg.worker_id);
  writer.PutU32(msg.capacity);
  return writer.TakeBytes();
}

Result<LeaseRequestMsg> DecodeLeaseRequest(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  LeaseRequestMsg msg;
  msg.worker_id = reader.GetU32();
  msg.capacity = reader.GetU32();
  return Finish("LeaseRequest", reader, msg);
}

namespace {

void PutConfig(ByteWriter* writer, const WireCampaignConfig& config) {
  PutString(writer, config.campaign_id);
  PutString(writer, config.os_name);
  PutString(writer, config.board_name);
  writer->PutU64(config.seed);
  writer->PutU64(config.budget_us);
  writer->PutU64(config.max_execs);
  writer->PutU64(config.metrics_interval_us);
  writer->PutU32(config.total_shards);
  writer->PutU32(config.sample_points);
  writer->PutU32(config.periodic_reset_execs);
  writer->PutU8(config.restore_mode);
  writer->PutU32(config.flags);
  writer->PutU32(static_cast<uint32_t>(config.seed_programs.size()));
  for (const std::string& program : config.seed_programs) {
    PutString(writer, program);
  }
}

WireCampaignConfig GetConfig(ByteReader* reader) {
  WireCampaignConfig config;
  config.campaign_id = GetString(reader);
  config.os_name = GetString(reader);
  config.board_name = GetString(reader);
  config.seed = reader->GetU64();
  config.budget_us = reader->GetU64();
  config.max_execs = reader->GetU64();
  config.metrics_interval_us = reader->GetU64();
  config.total_shards = reader->GetU32();
  config.sample_points = reader->GetU32();
  config.periodic_reset_execs = reader->GetU32();
  config.restore_mode = reader->GetU8();
  config.flags = reader->GetU32();
  uint32_t seed_count = reader->GetU32();
  for (uint32_t i = 0; i < seed_count && !reader->failed(); ++i) {
    config.seed_programs.push_back(GetString(reader));
  }
  return config;
}

}  // namespace

std::vector<uint8_t> Encode(const LeaseGrantMsg& msg) {
  ByteWriter writer;
  PutConfig(&writer, msg.config);
  writer.PutU32(static_cast<uint32_t>(msg.leases.size()));
  for (const ShardLease& lease : msg.leases) {
    writer.PutU64(lease.lease_id);
    writer.PutU32(lease.shard);
    writer.PutU32(lease.attempt);
  }
  PutBlob(&writer, msg.coverage);
  PutCorpus(&writer, msg.corpus);
  PutU64List(&writer, msg.focus);
  return writer.TakeBytes();
}

Result<LeaseGrantMsg> DecodeLeaseGrant(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  LeaseGrantMsg msg;
  msg.config = GetConfig(&reader);
  uint32_t lease_count = reader.GetU32();
  for (uint32_t i = 0; i < lease_count && !reader.failed(); ++i) {
    ShardLease lease;
    lease.lease_id = reader.GetU64();
    lease.shard = reader.GetU32();
    lease.attempt = reader.GetU32();
    msg.leases.push_back(lease);
  }
  msg.coverage = reader.GetLengthPrefixed();
  msg.corpus = GetCorpus(&reader);
  msg.focus = GetU64List(&reader);
  return Finish("LeaseGrant", reader, std::move(msg));
}

std::vector<uint8_t> Encode(const NoWorkMsg& msg) {
  ByteWriter writer;
  writer.PutU8(msg.campaign_done);
  writer.PutU64(msg.retry_ms);
  return writer.TakeBytes();
}

Result<NoWorkMsg> DecodeNoWork(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  NoWorkMsg msg;
  msg.campaign_done = reader.GetU8();
  msg.retry_ms = reader.GetU64();
  return Finish("NoWork", reader, msg);
}

namespace {

void PutBug(ByteWriter* writer, const BugWire& bug) {
  writer->PutU32(bug.catalog_id);
  PutString(writer, bug.detector);
  PutString(writer, bug.kind);
  PutString(writer, bug.excerpt);
  PutString(writer, bug.program_text);
  writer->PutU64(bug.at_us);
  writer->PutU64(bug.first_exec);
  writer->PutU32(bug.board);
  writer->PutU64(bug.seed_stream);
  writer->PutU64(bug.coverage_delta);
  PutString(writer, bug.snapshot_validation);
  PutString(writer, bug.dump_reason);
  PutString(writer, bug.dump_last_restore);
  PutString(writer, bug.uart_tail);
  PutString(writer, bug.port_ops);
  PutString(writer, bug.events);
}

BugWire GetBug(ByteReader* reader) {
  BugWire bug;
  bug.catalog_id = reader->GetU32();
  bug.detector = GetString(reader);
  bug.kind = GetString(reader);
  bug.excerpt = GetString(reader);
  bug.program_text = GetString(reader);
  bug.at_us = reader->GetU64();
  bug.first_exec = reader->GetU64();
  bug.board = reader->GetU32();
  bug.seed_stream = reader->GetU64();
  bug.coverage_delta = reader->GetU64();
  bug.snapshot_validation = GetString(reader);
  bug.dump_reason = GetString(reader);
  bug.dump_last_restore = GetString(reader);
  bug.uart_tail = GetString(reader);
  bug.port_ops = GetString(reader);
  bug.events = GetString(reader);
  return bug;
}

}  // namespace

std::vector<uint8_t> Encode(const SyncMsg& msg) {
  ByteWriter writer;
  writer.PutU32(msg.worker_id);
  PutString(&writer, msg.campaign_id);
  writer.PutU64(msg.seq);
  writer.PutU32(static_cast<uint32_t>(msg.shards.size()));
  for (const ShardProgressWire& shard : msg.shards) {
    writer.PutU64(shard.lease_id);
    writer.PutU32(shard.shard);
    writer.PutU64(shard.elapsed_us);
    writer.PutU64(shard.execs);
    writer.PutU8(shard.completed);
  }
  PutBlob(&writer, msg.coverage_delta);
  PutCorpus(&writer, msg.corpus);
  writer.PutU32(static_cast<uint32_t>(msg.bugs.size()));
  for (const BugWire& bug : msg.bugs) {
    PutBug(&writer, bug);
  }
  PutU64List(&writer, msg.focus);
  writer.PutU64(msg.journal_dropped);
  return writer.TakeBytes();
}

Result<SyncMsg> DecodeSync(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  SyncMsg msg;
  msg.worker_id = reader.GetU32();
  msg.campaign_id = GetString(&reader);
  msg.seq = reader.GetU64();
  uint32_t shard_count = reader.GetU32();
  for (uint32_t i = 0; i < shard_count && !reader.failed(); ++i) {
    ShardProgressWire shard;
    shard.lease_id = reader.GetU64();
    shard.shard = reader.GetU32();
    shard.elapsed_us = reader.GetU64();
    shard.execs = reader.GetU64();
    shard.completed = reader.GetU8();
    msg.shards.push_back(shard);
  }
  msg.coverage_delta = reader.GetLengthPrefixed();
  msg.corpus = GetCorpus(&reader);
  uint32_t bug_count = reader.GetU32();
  for (uint32_t i = 0; i < bug_count && !reader.failed(); ++i) {
    msg.bugs.push_back(GetBug(&reader));
  }
  msg.focus = GetU64List(&reader);
  msg.journal_dropped = reader.GetU64();
  return Finish("Sync", reader, std::move(msg));
}

std::vector<uint8_t> Encode(const SyncAckMsg& msg) {
  ByteWriter writer;
  writer.PutU8(msg.accepted);
  writer.PutU8(msg.campaign_done);
  PutBlob(&writer, msg.coverage_delta);
  PutCorpus(&writer, msg.corpus);
  PutU64List(&writer, msg.focus);
  PutU64List(&writer, msg.revoked);
  return writer.TakeBytes();
}

Result<SyncAckMsg> DecodeSyncAck(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  SyncAckMsg msg;
  msg.accepted = reader.GetU8();
  msg.campaign_done = reader.GetU8();
  msg.coverage_delta = reader.GetLengthPrefixed();
  msg.corpus = GetCorpus(&reader);
  msg.focus = GetU64List(&reader);
  msg.revoked = GetU64List(&reader);
  return Finish("SyncAck", reader, std::move(msg));
}

std::vector<uint8_t> Encode(const WorkerFinalMsg& msg) {
  ByteWriter writer;
  writer.PutU32(msg.worker_id);
  PutString(&writer, msg.campaign_id);
  writer.PutU64(msg.seq);
  const uint64_t scalars[] = {msg.final_coverage,
                              msg.execs,
                              msg.rejected,
                              msg.crashes,
                              msg.stalls,
                              msg.timeouts,
                              msg.restores,
                              msg.snapshot_restores,
                              msg.snapshot_bytes,
                              msg.corpus_size,
                              msg.elapsed_us,
                              msg.bugs_rejected,
                              msg.directed_hits,
                              msg.frontier,
                              msg.trim_removed_calls,
                              msg.trim_kept_calls,
                              msg.journal_dropped,
                              msg.link_transactions,
                              msg.link_batches,
                              msg.link_batched_ops,
                              msg.link_bytes_read,
                              msg.link_bytes_written,
                              msg.link_timeouts,
                              msg.link_flash_bytes,
                              msg.link_flash_skipped_bytes,
                              msg.link_resets,
                              msg.link_warm_restores};
  for (uint64_t scalar : scalars) {
    writer.PutU64(scalar);
  }
  writer.PutU32(static_cast<uint32_t>(msg.series.size()));
  for (const auto& [at, coverage] : msg.series) {
    writer.PutU64(at);
    writer.PutU64(coverage);
  }
  return writer.TakeBytes();
}

Result<WorkerFinalMsg> DecodeWorkerFinal(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  WorkerFinalMsg msg;
  msg.worker_id = reader.GetU32();
  msg.campaign_id = GetString(&reader);
  msg.seq = reader.GetU64();
  uint64_t* scalars[] = {&msg.final_coverage,
                         &msg.execs,
                         &msg.rejected,
                         &msg.crashes,
                         &msg.stalls,
                         &msg.timeouts,
                         &msg.restores,
                         &msg.snapshot_restores,
                         &msg.snapshot_bytes,
                         &msg.corpus_size,
                         &msg.elapsed_us,
                         &msg.bugs_rejected,
                         &msg.directed_hits,
                         &msg.frontier,
                         &msg.trim_removed_calls,
                         &msg.trim_kept_calls,
                         &msg.journal_dropped,
                         &msg.link_transactions,
                         &msg.link_batches,
                         &msg.link_batched_ops,
                         &msg.link_bytes_read,
                         &msg.link_bytes_written,
                         &msg.link_timeouts,
                         &msg.link_flash_bytes,
                         &msg.link_flash_skipped_bytes,
                         &msg.link_resets,
                         &msg.link_warm_restores};
  for (uint64_t* scalar : scalars) {
    *scalar = reader.GetU64();
  }
  uint32_t series_count = reader.GetU32();
  if (!reader.failed() &&
      static_cast<size_t>(series_count) * 16 <= reader.remaining()) {
    msg.series.reserve(series_count);
    for (uint32_t i = 0; i < series_count; ++i) {
      uint64_t at = reader.GetU64();
      uint64_t coverage = reader.GetU64();
      msg.series.emplace_back(at, coverage);
    }
  } else if (series_count > 0) {
    return DataLossError("WorkerFinal series truncated");
  }
  return Finish("WorkerFinal", reader, std::move(msg));
}

std::vector<uint8_t> Encode(const FinalAckMsg& msg) {
  ByteWriter writer;
  writer.PutU8(msg.accepted);
  return writer.TakeBytes();
}

Result<FinalAckMsg> DecodeFinalAck(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  FinalAckMsg msg;
  msg.accepted = reader.GetU8();
  return Finish("FinalAck", reader, msg);
}

std::vector<uint8_t> Encode(const GoodbyeMsg& msg) {
  ByteWriter writer;
  writer.PutU32(msg.worker_id);
  return writer.TakeBytes();
}

Result<GoodbyeMsg> DecodeGoodbye(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  GoodbyeMsg msg;
  msg.worker_id = reader.GetU32();
  return Finish("Goodbye", reader, msg);
}

std::vector<uint8_t> Encode(const StatusRequestMsg& msg) {
  ByteWriter writer;
  PutString(&writer, msg.campaign_id);
  writer.PutU8(msg.include_shards);
  return writer.TakeBytes();
}

Result<StatusRequestMsg> DecodeStatusRequest(
    const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  StatusRequestMsg msg;
  msg.campaign_id = GetString(&reader);
  msg.include_shards = reader.GetU8();
  return Finish("StatusRequest", reader, std::move(msg));
}

namespace {

void PutShardStatus(ByteWriter* writer, const ShardStatusWire& shard) {
  writer->PutU32(shard.shard);
  writer->PutU8(shard.phase);
  writer->PutU64(shard.lease_id);
  writer->PutU32(shard.worker);
  writer->PutU32(shard.attempt);
  writer->PutU64(shard.deadline_ms);
  writer->PutU64(shard.elapsed_us);
  writer->PutU64(shard.execs);
}

ShardStatusWire GetShardStatus(ByteReader* reader) {
  ShardStatusWire shard;
  shard.shard = reader->GetU32();
  shard.phase = reader->GetU8();
  shard.lease_id = reader->GetU64();
  shard.worker = reader->GetU32();
  shard.attempt = reader->GetU32();
  shard.deadline_ms = reader->GetU64();
  shard.elapsed_us = reader->GetU64();
  shard.execs = reader->GetU64();
  return shard;
}

void PutBugStatus(ByteWriter* writer, const BugStatusWire& bug) {
  writer->PutU32(bug.catalog_id);
  PutString(writer, bug.detector);
  PutString(writer, bug.kind);
  PutString(writer, bug.excerpt);
  writer->PutU64(bug.at_us);
  writer->PutU32(bug.board);
}

BugStatusWire GetBugStatus(ByteReader* reader) {
  BugStatusWire bug;
  bug.catalog_id = reader->GetU32();
  bug.detector = GetString(reader);
  bug.kind = GetString(reader);
  bug.excerpt = GetString(reader);
  bug.at_us = reader->GetU64();
  bug.board = reader->GetU32();
  return bug;
}

void PutCampaignStatus(ByteWriter* writer, const CampaignStatusWire& campaign) {
  PutString(writer, campaign.campaign_id);
  PutString(writer, campaign.os_name);
  PutString(writer, campaign.board_name);
  writer->PutU64(campaign.budget_us);
  writer->PutU32(campaign.shards_total);
  writer->PutU32(campaign.shards_pending);
  writer->PutU32(campaign.shards_leased);
  writer->PutU32(campaign.shards_done);
  const uint64_t scalars[] = {campaign.coverage,
                              campaign.corpus,
                              campaign.execs,
                              campaign.crashes,
                              campaign.frontier_us,
                              campaign.leases_granted,
                              campaign.leases_reclaimed,
                              campaign.rejected_uploads,
                              campaign.workers_lost,
                              campaign.corpus_syncs,
                              campaign.journal_dropped,
                              campaign.journal_dropped_workers};
  for (uint64_t scalar : scalars) {
    writer->PutU64(scalar);
  }
  writer->PutU8(campaign.finalized);
  writer->PutU32(static_cast<uint32_t>(campaign.shards.size()));
  for (const ShardStatusWire& shard : campaign.shards) {
    PutShardStatus(writer, shard);
  }
  writer->PutU32(static_cast<uint32_t>(campaign.bugs.size()));
  for (const BugStatusWire& bug : campaign.bugs) {
    PutBugStatus(writer, bug);
  }
}

CampaignStatusWire GetCampaignStatus(ByteReader* reader) {
  CampaignStatusWire campaign;
  campaign.campaign_id = GetString(reader);
  campaign.os_name = GetString(reader);
  campaign.board_name = GetString(reader);
  campaign.budget_us = reader->GetU64();
  campaign.shards_total = reader->GetU32();
  campaign.shards_pending = reader->GetU32();
  campaign.shards_leased = reader->GetU32();
  campaign.shards_done = reader->GetU32();
  uint64_t* scalars[] = {&campaign.coverage,
                         &campaign.corpus,
                         &campaign.execs,
                         &campaign.crashes,
                         &campaign.frontier_us,
                         &campaign.leases_granted,
                         &campaign.leases_reclaimed,
                         &campaign.rejected_uploads,
                         &campaign.workers_lost,
                         &campaign.corpus_syncs,
                         &campaign.journal_dropped,
                         &campaign.journal_dropped_workers};
  for (uint64_t* scalar : scalars) {
    *scalar = reader->GetU64();
  }
  campaign.finalized = reader->GetU8();
  uint32_t shard_count = reader->GetU32();
  if (!reader->failed() &&
      static_cast<size_t>(shard_count) * 41 <= reader->remaining()) {
    campaign.shards.reserve(shard_count);
  }
  for (uint32_t i = 0; i < shard_count && !reader->failed(); ++i) {
    campaign.shards.push_back(GetShardStatus(reader));
  }
  uint32_t bug_count = reader->GetU32();
  for (uint32_t i = 0; i < bug_count && !reader->failed(); ++i) {
    campaign.bugs.push_back(GetBugStatus(reader));
  }
  return campaign;
}

}  // namespace

std::vector<uint8_t> Encode(const StatusReplyMsg& msg) {
  ByteWriter writer;
  writer.PutU64(msg.server_ms);
  writer.PutU64(msg.assembled_ms);
  writer.PutU64(msg.heartbeat_interval_ms);
  writer.PutU32(static_cast<uint32_t>(msg.campaigns.size()));
  for (const CampaignStatusWire& campaign : msg.campaigns) {
    PutCampaignStatus(&writer, campaign);
  }
  writer.PutU32(static_cast<uint32_t>(msg.workers.size()));
  for (const WorkerStatusWire& worker : msg.workers) {
    writer.PutU32(worker.worker_id);
    PutString(&writer, worker.name);
    writer.PutU64(worker.last_seen_ms);
    writer.PutU8(worker.lost);
    writer.PutU64(worker.execs);
    writer.PutU64(worker.leases);
    writer.PutU64(worker.syncs);
    writer.PutU64(worker.journal_dropped);
  }
  return writer.TakeBytes();
}

Result<StatusReplyMsg> DecodeStatusReply(const std::vector<uint8_t>& payload) {
  ByteReader reader(payload);
  StatusReplyMsg msg;
  msg.server_ms = reader.GetU64();
  msg.assembled_ms = reader.GetU64();
  msg.heartbeat_interval_ms = reader.GetU64();
  uint32_t campaign_count = reader.GetU32();
  for (uint32_t i = 0; i < campaign_count && !reader.failed(); ++i) {
    msg.campaigns.push_back(GetCampaignStatus(&reader));
  }
  uint32_t worker_count = reader.GetU32();
  for (uint32_t i = 0; i < worker_count && !reader.failed(); ++i) {
    WorkerStatusWire worker;
    worker.worker_id = reader.GetU32();
    worker.name = GetString(&reader);
    worker.last_seen_ms = reader.GetU64();
    worker.lost = reader.GetU8();
    worker.execs = reader.GetU64();
    worker.leases = reader.GetU64();
    worker.syncs = reader.GetU64();
    worker.journal_dropped = reader.GetU64();
    msg.workers.push_back(std::move(worker));
  }
  return Finish("StatusReply", reader, std::move(msg));
}

}  // namespace fleet
}  // namespace eof
