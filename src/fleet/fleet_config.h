// Bridges between the engine's in-process types (FuzzerConfig, BugReport) and
// their wire forms. Lives apart from proto.h so the codec layer stays free of
// core dependencies.

#ifndef SRC_FLEET_FLEET_CONFIG_H_
#define SRC_FLEET_FLEET_CONFIG_H_

#include <string>

#include "src/core/fuzzer.h"
#include "src/fleet/proto.h"

namespace eof {
namespace fleet {

// The CLI-settable slice of `config`, ready to ship in a LeaseGrant. Generator
// and instrumentation tuning are not carried and stay at their defaults.
WireCampaignConfig ToWireConfig(const FuzzerConfig& config,
                                const std::string& campaign_id,
                                uint32_t total_shards);

// Reconstructs a worker-side FuzzerConfig. `metrics_out` is always empty — the
// fleet worker journals through its own shared sink, never through a scheduler-
// owned file.
FuzzerConfig FromWireConfig(const WireCampaignConfig& wire);

// A confirmed bug with its provenance and flight-recorder text renders, the
// exact fields the scheduler journals in bug_report rows.
BugWire ToWireBug(const BugReport& bug);

}  // namespace fleet
}  // namespace eof

#endif  // SRC_FLEET_FLEET_CONFIG_H_
