// Fleet orchestrator: the campaign-owning half of `eof serve`. It never touches
// a board — workers run the board sessions — but it owns everything campaign-
// wide that the in-process CampaignScheduler owns for a farm: the merged
// coverage map, the merged corpus, the deduplicated bug table, and the decision
// of who fuzzes what next.
//
// Work unit: a *shard* — one campaign-global board lane (label + seed stream,
// the FarmWorkerSeed rule). Shards move Pending -> Leased -> Done; a lease is
// renewed by the worker's periodic Sync and reclaimed (back to Pending, attempt
// incremented) when the worker stays silent past the lease timeout, so a
// crashed worker's shards re-run elsewhere and a rejoining worker simply asks
// for new leases and resyncs from the coverage snapshot in its grant.
//
// Scheduling across campaigns is weighted fair share: a LeaseRequest goes to
// the campaign with pending shards whose active-lease count is smallest
// relative to its weight, with total outstanding leases capped by the board
// pool.
//
// Upload idempotence: coverage merges and corpus/bug admission are set
// operations keyed on content, and exec-stat scalars only count from
// WorkerFinal messages (deduplicated by worker/seq) — so replayed Syncs,
// re-run shards, and duplicated finals never double-count anything.
//
// Thread model: one mutex over all campaign state; connection handlers lock per
// message. The wall clock is injectable so lease-expiry tests run on a fake.

#ifndef SRC_FLEET_ORCHESTRATOR_H_
#define SRC_FLEET_ORCHESTRATOR_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/coverage_map.h"
#include "src/core/fuzzer.h"
#include "src/fleet/fleet_config.h"
#include "src/fleet/proto.h"
#include "src/fleet/transport.h"
#include "src/telemetry/journal.h"
#include "src/telemetry/metrics.h"

namespace eof {
namespace fleet {

struct FleetCampaignSpec {
  std::string campaign_id;
  FuzzerConfig config;
  int shards = 1;  // campaign-global board lanes (the farm's --jobs analogue)
  int weight = 1;  // fair-share weight against the other campaigns
};

struct FleetCampaignResult {
  std::string campaign_id;
  // Merged campaign outcome. `result.bugs` stays empty — wire bugs carry the
  // flight-recorder rings as text renders, which do not reconstruct into
  // structured FlightDumps; they live in `bugs` below instead.
  CampaignResult result;
  std::vector<BugWire> bugs;
  uint64_t leases_granted = 0;
  uint64_t leases_reclaimed = 0;
  uint64_t rejected_uploads = 0;  // malformed or stale upload payloads
  uint64_t workers_lost = 0;
  uint64_t corpus_syncs = 0;  // Syncs that contributed at least one new program
  uint64_t workers_served = 0;
};

class Orchestrator {
 public:
  struct Options {
    int board_pool = 64;  // cap on outstanding leases across all campaigns
    uint64_t heartbeat_interval_ms = 1000;  // Sync cadence workers must keep
    uint64_t lease_timeout_ms = 5000;       // silence after which leases reclaim
    // Fleet journal (lease lifecycle + campaign rows). `metrics_out` opens a
    // file sink; `sink` injects one for tests. At most one may be set.
    std::string metrics_out;
    telemetry::EventSink* sink = nullptr;
    // Size-based journal rotation: when > 0 and metrics_out is set, the journal
    // is written as numbered segments of at most this many bytes each (see
    // telemetry::RotatingFileEventSink). 0 = one unrotated file.
    uint64_t journal_rotate_bytes = 0;
    // Wall clock in milliseconds for lease deadlines; defaults to
    // std::chrono::steady_clock. Tests inject a fake to expire leases instantly.
    std::function<uint64_t()> clock_ms;
  };

  static Result<std::unique_ptr<Orchestrator>> Create(Options options);

  // Registers a campaign (before serving). Fails on a duplicate id, an empty
  // id, or a non-positive shard count / weight.
  Status AddCampaign(const FleetCampaignSpec& spec);

  // Accept loop: serves every connecting worker on its own thread, reaps
  // expired leases between accepts, and returns once every campaign is done
  // and the workers have drained. Closes the listener on exit.
  Status Serve(Listener* listener);

  // Serves one worker connection to completion (blocking). Public so loopback
  // tests drive connections without the accept loop.
  void ServeConnection(Transport* transport);

  // Returns leases whose workers went silent past the timeout to Pending.
  // Serve() calls this continuously; tests with a fake clock call it directly.
  void ReapExpiredLeases();

  bool AllCampaignsDone() const;
  int CompletedShards(const std::string& campaign_id) const;

  // Finalizes every campaign (journals the closing farm_snapshot/campaign_end
  // rows once) and returns the merged results in AddCampaign order.
  std::vector<FleetCampaignResult> Results();

  // Observer-role status poll: a read-only aggregated snapshot of every
  // campaign and worker, assembled under the campaign lock at most once per
  // heartbeat interval (subsequent polls within the interval reuse the cached
  // snapshot — the bounded-staleness guarantee). Never touches lease state.
  StatusReplyMsg HandleStatus(const StatusRequestMsg& msg);

  // Orchestrator-side instruments (status polls served, sync payload sizes,
  // lease counters mirrored as gauges) for the /metrics exposition.
  telemetry::MetricsSnapshot MetricsSnapshot() const;

 private:
  enum class ShardPhase { kPending, kLeased, kDone };

  struct ShardState {
    ShardPhase phase = ShardPhase::kPending;
    uint64_t lease_id = 0;
    uint32_t worker = 0;
    uint64_t deadline_ms = 0;
    uint32_t attempt = 0;
    uint64_t elapsed_us = 0;
    uint64_t execs = 0;
  };

  // What this worker has already been told (grant or ack): positions into the
  // campaign's append-only edge log and corpus store, plus its last focus list.
  struct WorkerCursor {
    size_t edge = 0;
    size_t corpus = 0;
    std::vector<uint64_t> focus;
  };

  struct CampaignState {
    FleetCampaignSpec spec;
    WireCampaignConfig wire;
    std::vector<ShardState> shards;
    CoverageMap coverage;
    std::vector<uint64_t> edge_log;  // distinct edges in merge order
    std::vector<CorpusEntryWire> corpus;
    std::vector<uint32_t> corpus_origin;  // worker id that contributed entry i
    std::unordered_set<uint64_t> corpus_hashes;
    std::vector<BugWire> bugs;
    std::set<std::string> bug_keys;  // catalog_id|excerpt
    std::map<uint32_t, WorkerCursor> cursors;
    // WorkerFinal accumulation (idempotent on worker/seq).
    std::set<std::pair<uint32_t, uint64_t>> finals_seen;
    std::vector<WorkerFinalMsg> finals;
    std::set<uint32_t> workers_served;
    uint64_t leases_granted = 0;
    uint64_t leases_reclaimed = 0;
    uint64_t rejected_uploads = 0;
    uint64_t workers_lost = 0;
    uint64_t corpus_syncs = 0;
    uint64_t snapshot_at_us = 0;  // monotone farm_snapshot stamp
    // Latest worker-reported sink drop count per worker (cumulative on the
    // worker side), so the final farm_snapshot can attribute drops to sinks.
    std::map<uint32_t, uint64_t> worker_dropped;
    bool finalized = false;
  };

  struct WorkerInfo {
    std::string name;
    uint64_t last_seen_ms = 0;
    bool lost = false;
    uint64_t execs_live = 0;   // sum of shard execs in the latest Sync
    uint64_t execs_final = 0;  // summed execs from accepted finals
    uint64_t syncs = 0;        // Sync frames accepted
    uint64_t journal_dropped = 0;  // latest worker-reported sink drops
  };

  explicit Orchestrator(Options options);

  uint64_t NowMs() const;
  telemetry::EventSink* sink() const;
  void EmitLocked(VirtualTime at, const char* type, int worker,
                  std::vector<telemetry::EventField> fields);

  HelloAckMsg HandleHello(const HelloMsg& msg);
  Frame HandleLeaseRequest(const LeaseRequestMsg& msg);
  SyncAckMsg HandleSync(const SyncMsg& msg);
  FinalAckMsg HandleFinal(const WorkerFinalMsg& msg);

  CampaignState* FindCampaignLocked(const std::string& campaign_id);
  bool CampaignDoneLocked(const CampaignState& campaign) const;
  bool AllDoneLocked() const;
  size_t ActiveLeasesLocked(const CampaignState& campaign) const;
  size_t TotalActiveLeasesLocked() const;
  void ReapLocked();
  void MergeCoverageLocked(CampaignState* campaign,
                           const std::vector<uint8_t>& blob);
  void AdmitCorpusLocked(CampaignState* campaign, uint32_t worker,
                         const std::vector<CorpusEntryWire>& entries);
  void AdmitBugsLocked(CampaignState* campaign, const std::vector<BugWire>& bugs);
  std::vector<uint64_t> PeerFocusLocked(const CampaignState& campaign,
                                        uint32_t worker) const;
  uint64_t FrontierLocked(const CampaignState& campaign) const;
  void EmitFarmRowLocked(CampaignState* campaign, VirtualTime at);
  void FinalizeCampaignLocked(CampaignState* campaign);
  StatusReplyMsg AssembleStatusLocked(uint64_t now_ms);

  Options options_;
  std::unique_ptr<telemetry::EventSink> file_sink_;
  telemetry::MetricsRegistry metrics_;
  telemetry::Counter* status_requests_ = nullptr;
  telemetry::Counter* sync_frames_ = nullptr;
  telemetry::Histogram* sync_payload_bytes_ = nullptr;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<CampaignState>> campaigns_;
  std::map<uint32_t, WorkerInfo> workers_;
  uint32_t next_worker_id_ = 1;
  uint64_t next_lease_id_ = 1;
  // Bounded-staleness status cache: the full snapshot (all campaigns, with
  // shard tables) assembled at status_cache_ms_, filtered per request.
  StatusReplyMsg status_cache_;
  uint64_t status_cache_ms_ = 0;
  bool status_cache_valid_ = false;
};

}  // namespace fleet
}  // namespace eof

#endif  // SRC_FLEET_ORCHESTRATOR_H_
