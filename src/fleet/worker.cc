#include "src/fleet/worker.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/common/logging.h"

namespace eof {
namespace fleet {

namespace {

constexpr int kHandshakeTimeoutMs = 30 * 1000;

std::vector<std::pair<std::string, uint64_t>> ToCorpusPairs(
    const std::vector<CorpusEntryWire>& entries) {
  std::vector<std::pair<std::string, uint64_t>> pairs;
  pairs.reserve(entries.size());
  for (const CorpusEntryWire& entry : entries) {
    pairs.emplace_back(entry.text, entry.new_edges);
  }
  return pairs;
}

std::vector<CorpusEntryWire> ToCorpusWire(
    const std::vector<std::pair<std::string, uint64_t>>& pairs) {
  std::vector<CorpusEntryWire> entries;
  entries.reserve(pairs.size());
  for (const auto& [text, new_edges] : pairs) {
    CorpusEntryWire entry;
    entry.text = text;
    entry.new_edges = new_edges;
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::vector<uint64_t> FocusToWire(const std::vector<size_t>& focus) {
  return std::vector<uint64_t>(focus.begin(), focus.end());
}

}  // namespace

FleetWorker::FleetWorker(Options options) : options_(std::move(options)) {}

Result<std::unique_ptr<FleetWorker>> FleetWorker::Create(Options options) {
  if (options.capacity < 1) {
    return InvalidArgumentError("FleetWorker: capacity must be positive");
  }
  if (!options.metrics_out.empty() && options.sink != nullptr) {
    return InvalidArgumentError(
        "FleetWorker: metrics_out and sink are mutually exclusive");
  }
  auto worker = std::unique_ptr<FleetWorker>(new FleetWorker(std::move(options)));
  if (!worker->options_.metrics_out.empty()) {
    ASSIGN_OR_RETURN(worker->file_sink_,
                     telemetry::FileEventSink::Open(worker->options_.metrics_out));
  }
  return worker;
}

telemetry::EventSink* FleetWorker::sink() const {
  if (options_.sink != nullptr) {
    return options_.sink;
  }
  return file_sink_.get();
}

Status FleetWorker::Run(Transport* transport) {
  HelloMsg hello;
  hello.worker_name = options_.name;
  hello.capacity = static_cast<uint32_t>(options_.capacity);
  RETURN_IF_ERROR(transport->Send({MsgType::kHello, Encode(hello)}));
  ASSIGN_OR_RETURN(Frame ack_frame, transport->Recv(kHandshakeTimeoutMs));
  if (ack_frame.type != MsgType::kHelloAck) {
    return FailedPreconditionError("fleet worker: expected HelloAck");
  }
  ASSIGN_OR_RETURN(HelloAckMsg hello_ack, DecodeHelloAck(ack_frame.payload));
  worker_id_ = hello_ack.worker_id;
  heartbeat_ms_ = std::max<uint64_t>(hello_ack.heartbeat_interval_ms, 1);
  lease_timeout_ms_ = std::max<uint64_t>(hello_ack.lease_timeout_ms, heartbeat_ms_ + 1);

  int reply_timeout = static_cast<int>(
      std::max<uint64_t>(lease_timeout_ms_, 1000));
  for (;;) {
    LeaseRequestMsg request;
    request.worker_id = worker_id_;
    request.capacity = static_cast<uint32_t>(options_.capacity);
    RETURN_IF_ERROR(transport->Send({MsgType::kLeaseRequest, Encode(request)}));
    ASSIGN_OR_RETURN(Frame reply, transport->Recv(reply_timeout));
    if (reply.type == MsgType::kNoWork) {
      ASSIGN_OR_RETURN(NoWorkMsg no_work, DecodeNoWork(reply.payload));
      if (no_work.campaign_done != 0) {
        GoodbyeMsg goodbye;
        goodbye.worker_id = worker_id_;
        (void)transport->Send({MsgType::kGoodbye, Encode(goodbye)});
        return OkStatus();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min<uint64_t>(std::max<uint64_t>(no_work.retry_ms, 1), 10 * 1000)));
      continue;
    }
    if (reply.type != MsgType::kLeaseGrant) {
      return FailedPreconditionError("fleet worker: expected LeaseGrant or NoWork");
    }
    ASSIGN_OR_RETURN(LeaseGrantMsg grant, DecodeLeaseGrant(reply.payload));
    if (grant.leases.empty()) {
      continue;
    }
    Result<CampaignResult> batch = RunBatch(transport, grant);
    if (!batch.ok()) {
      // An aborted batch (stale worker / orchestrator refused the sync) is not
      // fatal — ask for fresh work. Board/session errors are.
      if (batch.status().code() == ErrorCode::kFailedPrecondition) {
        continue;
      }
      return batch.status();
    }
    results_.push_back(std::move(batch).value());
  }
}

Result<CampaignResult> FleetWorker::RunBatch(Transport* transport,
                                             const LeaseGrantMsg& grant) {
  FuzzerConfig config = FromWireConfig(grant.config);
  ASSIGN_OR_RETURN(CampaignPlan plan, PrepareCampaign(config));

  const int sessions = static_cast<int>(grant.leases.size());
  std::vector<int> shard_labels;
  shard_labels.reserve(grant.leases.size());
  for (const ShardLease& lease : grant.leases) {
    shard_labels.push_back(static_cast<int>(lease.shard));
  }

  telemetry::CampaignTelemetry::Options telemetry_options =
      MakeTelemetryOptions(config, sessions);
  telemetry_options.campaign_id = grant.config.campaign_id;
  telemetry_options.board_labels = shard_labels;
  telemetry_options.shared_sink = sink();
  telemetry_options.emit_farm_rows = false;  // the orchestrator owns farm rows
  ASSIGN_OR_RETURN(std::unique_ptr<telemetry::CampaignTelemetry> telemetry,
                   telemetry::CampaignTelemetry::Create(telemetry_options));

  CampaignScheduler::Options scheduler_options =
      MakeSchedulerOptions(config, sessions);
  scheduler_options.registry = &telemetry->campaign_registry();
  scheduler_options.sink = telemetry->sink();
  scheduler_options.shard_ids = shard_labels;
  scheduler_options.track_coverage_delta = true;
  scheduler_options.export_corpus = true;
  CampaignScheduler scheduler(plan.specs, scheduler_options);
  scheduler.SeedCorpus(config.seed_programs);

  // Resync from the grant: the orchestrator's merged campaign state. On a cold
  // single-worker campaign all three are empty and these are no-ops.
  if (!grant.coverage.empty()) {
    RETURN_IF_ERROR(scheduler.MergeRemoteCoverage(grant.coverage).status());
  }
  scheduler.AdmitRemotePrograms(ToCorpusPairs(grant.corpus));
  scheduler.MergeRemoteFocus(grant.focus);
  // Upload cursors start after the seeded + granted corpus: only locally
  // discovered programs travel upstream.
  std::vector<std::pair<std::string, uint64_t>> scratch;
  uint64_t corpus_cursor = scheduler.ExportCorpusSince(UINT64_MAX, &scratch);
  size_t bug_cursor = 0;

  // Zero-progress renewal sync for the deploy phase: under host load a serial
  // multi-board deploy can outlast the lease timeout (the fleet bench's top
  // point brings up 64 sessions across 8 processes), and a worker silent that
  // long loses its leases and its connection. Merges from the ack are the
  // pump's usual idempotent set operations; on a single-worker campaign the
  // payloads are empty, so bit-identity with --jobs 1 is untouched.
  auto renew_leases = [&]() -> Result<bool> {
    SyncMsg sync;
    sync.worker_id = worker_id_;
    sync.campaign_id = grant.config.campaign_id;
    sync.seq = ++sync_seq_;
    for (const ShardLease& lease : grant.leases) {
      ShardProgressWire shard;
      shard.lease_id = lease.lease_id;
      shard.shard = lease.shard;
      sync.shards.push_back(shard);
    }
    sync.journal_dropped = sink() != nullptr ? sink()->dropped() : 0;
    RETURN_IF_ERROR(transport->Send({MsgType::kSync, Encode(sync)}));
    ASSIGN_OR_RETURN(Frame reply,
                     transport->Recv(static_cast<int>(lease_timeout_ms_)));
    if (reply.type != MsgType::kSyncAck) {
      return FailedPreconditionError("fleet worker: expected SyncAck");
    }
    ASSIGN_OR_RETURN(SyncAckMsg ack, DecodeSyncAck(reply.payload));
    if (ack.accepted == 0 || !ack.revoked.empty()) {
      return true;  // stale worker or reclaimed lease: abandon the batch
    }
    if (!ack.coverage_delta.empty()) {
      (void)scheduler.MergeRemoteCoverage(ack.coverage_delta);
    }
    scheduler.AdmitRemotePrograms(ToCorpusPairs(ack.corpus));
    scheduler.MergeRemoteFocus(ack.focus);
    return false;
  };

  // Deploy serially on the campaign-global shard seeds, then fuzz.
  auto last_renewal = std::chrono::steady_clock::now();
  std::vector<FarmSession> farm(grant.leases.size());
  for (size_t i = 0; i < grant.leases.size(); ++i) {
    auto since_renewal = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - last_renewal);
    if (static_cast<uint64_t>(since_renewal.count()) >= heartbeat_ms_) {
      ASSIGN_OR_RETURN(bool stale, renew_leases());
      if (stale) {
        return FailedPreconditionError(
            "fleet worker: leases reclaimed during deploy");
      }
      last_renewal = std::chrono::steady_clock::now();
    }
    ASSIGN_OR_RETURN(
        farm[i],
        MakeFarmSession(config, plan,
                        FarmWorkerSeed(config.seed,
                                       static_cast<int>(grant.leases[i].shard)),
                        telemetry->board(static_cast<int>(i))));
  }

  telemetry->CampaignStart(config.os_name, config.board_name);
  telemetry->StartEmitter([&scheduler] { return scheduler.View(); });

  std::atomic<bool> stop(false);
  std::vector<std::unique_ptr<std::atomic<bool>>> cancels;
  std::vector<std::unique_ptr<FarmProgress>> progress;
  for (size_t i = 0; i < farm.size(); ++i) {
    cancels.push_back(std::make_unique<std::atomic<bool>>(false));
    progress.push_back(std::make_unique<FarmProgress>());
  }

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t done_count = 0;
  std::vector<std::thread> threads;
  threads.reserve(farm.size());
  for (size_t i = 0; i < farm.size(); ++i) {
    threads.emplace_back([&, i] {
      RunFarmSession(&farm[i], static_cast<int>(i), &scheduler, &plan.specs,
                     config.budget, config.max_execs, &stop, telemetry->emitter(),
                     cancels[i].get(), progress[i].get());
      {
        std::lock_guard<std::mutex> lock(done_mu);
        ++done_count;
      }
      done_cv.notify_all();
    });
  }

  auto join_all = [&] {
    for (std::thread& thread : threads) {
      thread.join();
    }
  };

  // Sync pump: heartbeat cadence while sessions run, one closing sync (with
  // completed flags) after they drain. Runs on this thread — the transport has
  // exactly one user.
  std::vector<bool> reported(farm.size(), false);  // completed or revoked
  Status pump_status = OkStatus();
  bool aborted = false;
  for (;;) {
    bool all_done;
    {
      std::unique_lock<std::mutex> lock(done_mu);
      done_cv.wait_for(lock, std::chrono::milliseconds(heartbeat_ms_),
                       [&] { return done_count == farm.size(); });
      all_done = done_count == farm.size();
    }

    SyncMsg sync;
    sync.worker_id = worker_id_;
    sync.campaign_id = grant.config.campaign_id;
    sync.seq = ++sync_seq_;
    for (size_t i = 0; i < grant.leases.size(); ++i) {
      if (reported[i]) {
        continue;
      }
      ShardProgressWire shard;
      shard.lease_id = grant.leases[i].lease_id;
      shard.shard = grant.leases[i].shard;
      shard.elapsed_us = progress[i]->elapsed_us.load(std::memory_order_relaxed);
      shard.execs = progress[i]->execs.load(std::memory_order_relaxed);
      bool completed = progress[i]->done.load(std::memory_order_acquire) &&
                       farm[i].status.ok() &&
                       !cancels[i]->load(std::memory_order_relaxed) &&
                       !stop.load(std::memory_order_relaxed);
      shard.completed = completed ? 1 : 0;
      if (completed) {
        reported[i] = true;
      }
      sync.shards.push_back(shard);
    }
    sync.coverage_delta = scheduler.TakeCoverageDelta();
    std::vector<std::pair<std::string, uint64_t>> fresh_corpus;
    corpus_cursor = scheduler.ExportCorpusSince(corpus_cursor, &fresh_corpus);
    sync.corpus = ToCorpusWire(fresh_corpus);
    std::vector<BugReport> fresh_bugs = scheduler.BugsSince(bug_cursor);
    bug_cursor += fresh_bugs.size();
    for (const BugReport& bug : fresh_bugs) {
      sync.bugs.push_back(ToWireBug(bug));
    }
    sync.focus = FocusToWire(scheduler.FocusSpecs());
    sync.journal_dropped = sink() != nullptr ? sink()->dropped() : 0;

    pump_status = transport->Send({MsgType::kSync, Encode(sync)});
    if (pump_status.ok()) {
      Result<Frame> reply =
          transport->Recv(static_cast<int>(lease_timeout_ms_));
      if (!reply.ok()) {
        pump_status = reply.status();
      } else if (reply.value().type != MsgType::kSyncAck) {
        pump_status = FailedPreconditionError("fleet worker: expected SyncAck");
      } else {
        Result<SyncAckMsg> ack_or = DecodeSyncAck(reply.value().payload);
        if (!ack_or.ok()) {
          pump_status = ack_or.status();
        } else {
          const SyncAckMsg& ack = ack_or.value();
          if (ack.accepted == 0) {
            aborted = true;
          } else {
            if (!ack.coverage_delta.empty()) {
              (void)scheduler.MergeRemoteCoverage(ack.coverage_delta);
            }
            // Peer programs re-export upstream on the next sync; the
            // orchestrator's content hash dedups them, so no cursor surgery.
            scheduler.AdmitRemotePrograms(ToCorpusPairs(ack.corpus));
            scheduler.MergeRemoteFocus(ack.focus);
            for (uint64_t lease_id : ack.revoked) {
              for (size_t i = 0; i < grant.leases.size(); ++i) {
                if (grant.leases[i].lease_id == lease_id) {
                  cancels[i]->store(true, std::memory_order_relaxed);
                  reported[i] = true;
                }
              }
            }
          }
        }
      }
    }
    if (!pump_status.ok() || aborted) {
      stop.store(true, std::memory_order_relaxed);
      break;
    }
    if (all_done) {
      break;
    }
  }

  join_all();
  if (aborted) {
    return FailedPreconditionError("fleet worker: batch rejected by orchestrator");
  }
  RETURN_IF_ERROR(pump_status);
  for (const FarmSession& session : farm) {
    RETURN_IF_ERROR(session.status);
  }

  telemetry::MetricsSnapshot merged = telemetry->MergedBoardSnapshot();
  VirtualTime elapsed = 0;
  for (FarmSession& session : farm) {
    elapsed = std::max(elapsed, session.executor->Elapsed());
  }
  CampaignResult result = scheduler.Finalize(
      ExecStatsFromSnapshot(merged), elapsed, DebugPortStatsFromSnapshot(merged));
  telemetry->CampaignEnd(elapsed);
  result.journal_dropped = telemetry->journal_dropped();

  WorkerFinalMsg final;
  final.worker_id = worker_id_;
  final.campaign_id = grant.config.campaign_id;
  final.seq = ++sync_seq_;
  final.final_coverage = result.final_coverage;
  final.execs = result.execs;
  final.rejected = result.rejected;
  final.crashes = result.crashes;
  final.stalls = result.stalls;
  final.timeouts = result.timeouts;
  final.restores = result.restores;
  final.snapshot_restores = result.snapshot_restores;
  final.snapshot_bytes = result.snapshot_bytes;
  final.corpus_size = result.corpus_size;
  final.elapsed_us = result.elapsed;
  final.bugs_rejected = result.bugs_rejected;
  final.directed_hits = result.directed_hits;
  final.frontier = result.frontier;
  final.trim_removed_calls = result.trim_removed_calls;
  final.trim_kept_calls = result.trim_kept_calls;
  final.journal_dropped = result.journal_dropped;
  final.link_transactions = result.link.transactions;
  final.link_batches = result.link.batches;
  final.link_batched_ops = result.link.batched_ops;
  final.link_bytes_read = result.link.bytes_read;
  final.link_bytes_written = result.link.bytes_written;
  final.link_timeouts = result.link.timeouts;
  final.link_flash_bytes = result.link.flash_bytes;
  final.link_flash_skipped_bytes = result.link.flash_skipped_bytes;
  final.link_resets = result.link.resets;
  final.link_warm_restores = result.link.warm_restores;
  for (const CampaignSample& sample : result.series) {
    final.series.emplace_back(sample.time, sample.coverage);
  }
  RETURN_IF_ERROR(transport->Send({MsgType::kWorkerFinal, Encode(final)}));
  ASSIGN_OR_RETURN(Frame final_reply,
                   transport->Recv(static_cast<int>(lease_timeout_ms_)));
  if (final_reply.type != MsgType::kFinalAck) {
    return FailedPreconditionError("fleet worker: expected FinalAck");
  }
  return result;
}

}  // namespace fleet
}  // namespace eof
