// Observer-role client helpers for the live observability plane: one-shot
// status polls against a serving orchestrator, the `eof top` frame renderer,
// and the fleet half of the /metrics exposition.
//
// An observer is read-only by construction: it never says Hello, never takes a
// worker id, and never holds leases — it opens a connection, sends one
// StatusRequest, reads the StatusReply, says Goodbye, and closes. The
// orchestrator serves the request from a bounded-staleness snapshot (at most
// one state walk per heartbeat interval), so a polling observer perturbs
// nothing about the campaign: no coverage, corpus, bug-table, or lease change.

#ifndef SRC_FLEET_OBSERVER_H_
#define SRC_FLEET_OBSERVER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/fleet/proto.h"
#include "src/fleet/transport.h"
#include "src/telemetry/metrics.h"

namespace eof {
namespace fleet {

// One status poll over an already-connected transport. Sends StatusRequest,
// waits up to `timeout_ms` for the StatusReply, then sends Goodbye. The caller
// owns (and typically closes) the transport; observers reconnect per poll.
Result<StatusReplyMsg> FetchStatus(Transport* transport,
                                   const std::string& campaign_id,
                                   bool include_shards, int timeout_ms);

// Renders one `eof top` frame from the poll history (oldest first, newest
// last; the newest reply is the frame's truth, earlier ones feed the exec-rate
// sparkline and the plateau detector). Plain text, one trailing newline.
std::string RenderTopFrame(const std::vector<StatusReplyMsg>& history);

// Renders the fleet half of GET /metrics: per-campaign and per-worker families
// from the status snapshot (campaign= / worker= labels) followed by the
// orchestrator's own instrument registry.
std::string RenderFleetMetrics(const StatusReplyMsg& status,
                               const telemetry::MetricsSnapshot& orchestrator);

}  // namespace fleet
}  // namespace eof

#endif  // SRC_FLEET_OBSERVER_H_
