// Fleet wire protocol: versioned, length-prefixed frames between the campaign
// orchestrator (`eof serve`) and worker processes (`eof worker`).
//
// Framing: a 12-byte header — magic "EOFL", protocol version (u16), message type
// (u16), payload length (u32) — followed by the payload, all little-endian via
// the same ByteWriter/ByteReader primitives as the agent mailbox format. Both
// transports (in-process loopback and TCP) move identical encoded bytes, so the
// deterministic loopback tests exercise the exact codec the sockets do.
//
// Conversation shape: strictly worker-initiated request/response. A worker says
// Hello, then loops LeaseRequest -> (LeaseGrant | NoWork); while running a grant
// it heartbeats with Sync (lease renewal + coverage/corpus/bug deltas) and gets
// SyncAck (the orchestrator's news for this worker); a finished batch uploads
// WorkerFinal and the loop restarts. The orchestrator never pushes, so one
// socket never multiplexes.
//
// The campaign config travels by value in every LeaseGrant (workers are
// stateless between batches — that is what makes crash/rejoin trivial). Fields
// the CLI cannot set (generator/instrumentation tuning) are not carried and stay
// at their defaults on the worker.

#ifndef SRC_FLEET_PROTO_H_
#define SRC_FLEET_PROTO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace eof {
namespace fleet {

inline constexpr uint32_t kFrameMagic = 0x4C464F45;  // "EOFL" little-endian
inline constexpr uint16_t kProtoVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;
// Upper bound on one payload: a full coverage snapshot plus a large corpus is
// well under this; anything bigger is a corrupt or hostile stream.
inline constexpr size_t kMaxFramePayload = 64u << 20;

enum class MsgType : uint16_t {
  kHello = 1,
  kHelloAck = 2,
  kLeaseRequest = 3,
  kLeaseGrant = 4,
  kNoWork = 5,
  kSync = 6,
  kSyncAck = 7,
  kWorkerFinal = 8,
  kFinalAck = 9,
  kGoodbye = 10,
  // Observer role: read-only status polls. An observer connection never says
  // Hello and never holds leases; it sends StatusRequest and gets StatusReply.
  kStatusRequest = 11,
  kStatusReply = 12,
};

struct Frame {
  MsgType type = MsgType::kGoodbye;
  std::vector<uint8_t> payload;
};

// Header + payload as one buffer.
std::vector<uint8_t> EncodeFrame(const Frame& frame);
// Validates magic/version/type/length against a complete buffer.
Result<Frame> DecodeFrame(const uint8_t* data, size_t size);
// Validates a header alone and returns the payload size — stream transports read
// the header first, then exactly this many payload bytes.
Result<size_t> DecodeFrameHeader(const uint8_t header[kFrameHeaderBytes],
                                 MsgType* type);

// --- Messages ---

struct HelloMsg {
  std::string worker_name;
  uint32_t capacity = 1;  // concurrent board sessions this worker runs
};

struct HelloAckMsg {
  uint32_t worker_id = 0;
  uint64_t heartbeat_interval_ms = 1000;  // Sync cadence the worker must keep
  uint64_t lease_timeout_ms = 5000;       // silence after which leases reclaim
};

struct LeaseRequestMsg {
  uint32_t worker_id = 0;
  uint32_t capacity = 1;
};

// The CLI-settable slice of FuzzerConfig, shipped with every grant.
struct WireCampaignConfig {
  std::string campaign_id;
  std::string os_name;
  std::string board_name;
  uint64_t seed = 1;
  uint64_t budget_us = 0;
  uint64_t max_execs = 0;
  uint64_t metrics_interval_us = 0;
  uint32_t total_shards = 1;  // campaign-wide shard count (for context/logs)
  uint32_t sample_points = 96;
  uint32_t periodic_reset_execs = 24;
  uint8_t restore_mode = 0;  // RestoreMode enum value
  // Flag bits, see kFlag* in proto.cc.
  uint32_t flags = 0;
  std::vector<std::string> seed_programs;
};

struct ShardLease {
  uint64_t lease_id = 0;
  uint32_t shard = 0;    // campaign-global shard index = board label + seed lane
  uint32_t attempt = 1;  // grant attempt (>1 after a reclaim)
};

struct CorpusEntryWire {
  std::string text;  // reproducer-text program
  uint64_t new_edges = 0;
};

struct LeaseGrantMsg {
  WireCampaignConfig config;
  std::vector<ShardLease> leases;
  // Orchestrator's merged campaign state at grant time: the rejoin resync.
  std::vector<uint8_t> coverage;        // full coverage snapshot blob
  std::vector<CorpusEntryWire> corpus;  // merged corpus (without seed programs)
  std::vector<uint64_t> focus;          // frontier focus spec indices
};

struct NoWorkMsg {
  uint8_t campaign_done = 0;  // 1 = everything finished, worker should exit
  uint64_t retry_ms = 100;    // backoff before the next LeaseRequest
};

struct ShardProgressWire {
  uint64_t lease_id = 0;
  uint32_t shard = 0;
  uint64_t elapsed_us = 0;
  uint64_t execs = 0;
  uint8_t completed = 0;  // session ran its full budget
};

// Full BugReport provenance; flight-recorder rings travel as their text renders.
struct BugWire {
  uint32_t catalog_id = 0;
  std::string detector;
  std::string kind;
  std::string excerpt;
  std::string program_text;
  uint64_t at_us = 0;
  uint64_t first_exec = 0;
  uint32_t board = 0;
  uint64_t seed_stream = 0;
  uint64_t coverage_delta = 0;
  std::string snapshot_validation;
  std::string dump_reason;
  std::string dump_last_restore;
  std::string uart_tail;
  std::string port_ops;
  std::string events;
};

// Heartbeat + lease renewal + idempotent upload, all in one.
struct SyncMsg {
  uint32_t worker_id = 0;
  std::string campaign_id;
  uint64_t seq = 0;  // per-worker upload sequence (replays are detectable)
  std::vector<ShardProgressWire> shards;
  std::vector<uint8_t> coverage_delta;  // diff blob since the last Sync
  std::vector<CorpusEntryWire> corpus;  // newly admitted programs
  std::vector<BugWire> bugs;            // newly confirmed bugs
  std::vector<uint64_t> focus;          // worker's current focus specs
  uint64_t journal_dropped = 0;  // this worker's sink drop count so far
};

struct SyncAckMsg {
  uint8_t accepted = 1;       // 0 = unknown worker / stale batch, abort it
  uint8_t campaign_done = 0;  // campaign finished elsewhere, stop fuzzing it
  std::vector<uint8_t> coverage_delta;  // global news for this worker
  std::vector<CorpusEntryWire> corpus;  // programs from other workers
  std::vector<uint64_t> focus;          // other workers' focus union
  std::vector<uint64_t> revoked;        // lease ids no longer held (reclaimed)
};

// End-of-batch scalars: only finals count toward the merged campaign's exec
// stats, so a crashed worker's partial numbers are never double-counted when its
// shards re-run elsewhere.
struct WorkerFinalMsg {
  uint32_t worker_id = 0;
  std::string campaign_id;
  uint64_t seq = 0;
  uint64_t final_coverage = 0;
  uint64_t execs = 0;
  uint64_t rejected = 0;
  uint64_t crashes = 0;
  uint64_t stalls = 0;
  uint64_t timeouts = 0;
  uint64_t restores = 0;
  uint64_t snapshot_restores = 0;
  uint64_t snapshot_bytes = 0;
  uint64_t corpus_size = 0;
  uint64_t elapsed_us = 0;
  uint64_t bugs_rejected = 0;
  uint64_t directed_hits = 0;
  uint64_t frontier = 0;
  uint64_t trim_removed_calls = 0;
  uint64_t trim_kept_calls = 0;
  uint64_t journal_dropped = 0;
  // Summed debug-link traffic (DebugPortStats order).
  uint64_t link_transactions = 0;
  uint64_t link_batches = 0;
  uint64_t link_batched_ops = 0;
  uint64_t link_bytes_read = 0;
  uint64_t link_bytes_written = 0;
  uint64_t link_timeouts = 0;
  uint64_t link_flash_bytes = 0;
  uint64_t link_flash_skipped_bytes = 0;
  uint64_t link_resets = 0;
  uint64_t link_warm_restores = 0;
  // Coverage series samples (t_us, coverage); adopted as the campaign series
  // when a single worker served every shard.
  std::vector<std::pair<uint64_t, uint64_t>> series;
};

struct FinalAckMsg {
  uint8_t accepted = 1;
};

struct GoodbyeMsg {
  uint32_t worker_id = 0;
};

// --- Observer role ---

// One status poll. An observer never says Hello: it connects, sends
// StatusRequest, reads StatusReply, says Goodbye (worker_id 0) and closes.
struct StatusRequestMsg {
  std::string campaign_id;    // empty = every registered campaign
  uint8_t include_shards = 1; // 0 = omit the per-shard lease table
};

// Per-shard lease-table row. `phase` mirrors ShardState::Phase.
struct ShardStatusWire {
  uint32_t shard = 0;
  uint8_t phase = 0;  // 0 pending, 1 leased, 2 done
  uint64_t lease_id = 0;
  uint32_t worker = 0;       // worker id holding the lease (leased phase)
  uint32_t attempt = 0;      // grant attempts so far
  uint64_t deadline_ms = 0;  // lease expiry on the orchestrator clock
  uint64_t elapsed_us = 0;   // last reported virtual progress
  uint64_t execs = 0;
};

// Per-worker row: identity, liveness, and accumulated sync-side counters.
struct WorkerStatusWire {
  uint32_t worker_id = 0;
  std::string name;
  uint64_t last_seen_ms = 0;  // orchestrator clock at the last frame
  uint8_t lost = 0;           // 1 = reaped after lease timeout
  uint64_t execs = 0;         // sum of live shard-progress execs
  uint64_t leases = 0;        // leases currently held
  uint64_t syncs = 0;         // Sync frames accepted
  uint64_t journal_dropped = 0;  // worker-side sink drops (from Sync)
};

struct BugStatusWire {
  uint32_t catalog_id = 0;
  std::string detector;
  std::string kind;
  std::string excerpt;
  uint64_t at_us = 0;
  uint32_t board = 0;
};

// Aggregated campaign view assembled under the orchestrator lock.
struct CampaignStatusWire {
  std::string campaign_id;
  std::string os_name;
  std::string board_name;
  uint64_t budget_us = 0;
  uint32_t shards_total = 0;
  uint32_t shards_pending = 0;
  uint32_t shards_leased = 0;
  uint32_t shards_done = 0;
  uint64_t coverage = 0;       // merged edge count
  uint64_t corpus = 0;         // merged corpus size (incl. seed programs)
  uint64_t execs = 0;          // finals + live lease progress
  uint64_t crashes = 0;        // from accepted finals
  uint64_t frontier_us = 0;    // min elapsed over active shards
  uint64_t leases_granted = 0;
  uint64_t leases_reclaimed = 0;
  uint64_t rejected_uploads = 0;
  uint64_t workers_lost = 0;
  uint64_t corpus_syncs = 0;
  uint64_t journal_dropped = 0;          // orchestrator sink drops
  uint64_t journal_dropped_workers = 0;  // sum of worker-reported drops
  uint8_t finalized = 0;
  std::vector<ShardStatusWire> shards;  // empty when include_shards == 0
  std::vector<BugStatusWire> bugs;      // deduped bug table
};

struct StatusReplyMsg {
  uint64_t server_ms = 0;     // orchestrator clock at reply time
  uint64_t assembled_ms = 0;  // clock when this snapshot was assembled
  uint64_t heartbeat_interval_ms = 0;  // staleness bound for the snapshot
  std::vector<CampaignStatusWire> campaigns;
  std::vector<WorkerStatusWire> workers;
};

// Flag bit helpers for WireCampaignConfig::flags.
enum ConfigFlag : uint32_t {
  kFlagCoverageFeedback = 1u << 0,
  kFlagLogMonitor = 1u << 1,
  kFlagExceptionMonitor = 1u << 2,
  kFlagWatchdogs = 1u << 3,
  kFlagPowerProbe = 1u << 4,
  kFlagUseExtendedSpecs = 1u << 5,
  kFlagInjectPeripheralEvents = 1u << 6,
  kFlagBatchedLink = 1u << 7,
  kFlagOverlappedDrain = 1u << 8,
  kFlagDirected = 1u << 9,
  kFlagTrim = 1u << 10,
};

// Per-message payload codecs. Decoders fail on truncated or trailing bytes.
std::vector<uint8_t> Encode(const HelloMsg& msg);
std::vector<uint8_t> Encode(const HelloAckMsg& msg);
std::vector<uint8_t> Encode(const LeaseRequestMsg& msg);
std::vector<uint8_t> Encode(const LeaseGrantMsg& msg);
std::vector<uint8_t> Encode(const NoWorkMsg& msg);
std::vector<uint8_t> Encode(const SyncMsg& msg);
std::vector<uint8_t> Encode(const SyncAckMsg& msg);
std::vector<uint8_t> Encode(const WorkerFinalMsg& msg);
std::vector<uint8_t> Encode(const FinalAckMsg& msg);
std::vector<uint8_t> Encode(const GoodbyeMsg& msg);
std::vector<uint8_t> Encode(const StatusRequestMsg& msg);
std::vector<uint8_t> Encode(const StatusReplyMsg& msg);

Result<HelloMsg> DecodeHello(const std::vector<uint8_t>& payload);
Result<HelloAckMsg> DecodeHelloAck(const std::vector<uint8_t>& payload);
Result<LeaseRequestMsg> DecodeLeaseRequest(const std::vector<uint8_t>& payload);
Result<LeaseGrantMsg> DecodeLeaseGrant(const std::vector<uint8_t>& payload);
Result<NoWorkMsg> DecodeNoWork(const std::vector<uint8_t>& payload);
Result<SyncMsg> DecodeSync(const std::vector<uint8_t>& payload);
Result<SyncAckMsg> DecodeSyncAck(const std::vector<uint8_t>& payload);
Result<WorkerFinalMsg> DecodeWorkerFinal(const std::vector<uint8_t>& payload);
Result<FinalAckMsg> DecodeFinalAck(const std::vector<uint8_t>& payload);
Result<GoodbyeMsg> DecodeGoodbye(const std::vector<uint8_t>& payload);
Result<StatusRequestMsg> DecodeStatusRequest(const std::vector<uint8_t>& payload);
Result<StatusReplyMsg> DecodeStatusReply(const std::vector<uint8_t>& payload);

}  // namespace fleet
}  // namespace eof

#endif  // SRC_FLEET_PROTO_H_
