// Byte transports for the fleet protocol. Two implementations move the same
// encoded frames:
//
//   Loopback — a pair of in-process queues. Deterministic, no sockets, used by
//              the unit and differential tests so protocol behavior is
//              exercised without network flake.
//   TCP      — blocking POSIX sockets with poll()-based receive timeouts, used
//              by `eof serve` / `eof worker` across processes.
//
// Both sides speak strict frames: Recv reads one complete frame or fails, and a
// peer closing mid-frame is an error, not a short read.

#ifndef SRC_FLEET_TRANSPORT_H_
#define SRC_FLEET_TRANSPORT_H_

#include <memory>
#include <string>
#include <utility>

#include "src/common/status.h"
#include "src/fleet/proto.h"

namespace eof {
namespace fleet {

class Transport {
 public:
  virtual ~Transport() = default;

  // Sends one frame; fails if the peer is gone.
  virtual Status Send(const Frame& frame) = 0;

  // Receives one complete frame. TimeoutError when nothing arrived within
  // `timeout_ms`; UnavailableError when the peer closed cleanly between frames;
  // DataLossError on a malformed or truncated frame.
  virtual Result<Frame> Recv(int timeout_ms) = 0;

  // Idempotent; unblocks a peer waiting in Recv with UnavailableError.
  virtual void Close() = 0;
};

class Listener {
 public:
  virtual ~Listener() = default;

  // Waits up to `timeout_ms` for one inbound connection; TimeoutError when none
  // arrived, UnavailableError once the listener is closed.
  virtual Result<std::unique_ptr<Transport>> Accept(int timeout_ms) = 0;

  virtual void Close() = 0;
};

// In-process loopback: Connect() hands back the client end and queues the
// server end for Accept(). Thread-safe; either end may be used from any thread.
class LoopbackListener : public Listener {
 public:
  LoopbackListener();
  ~LoopbackListener() override;

  Result<std::unique_ptr<Transport>> Accept(int timeout_ms) override;
  void Close() override;

  // Creates a connected transport pair and enqueues the server end.
  std::unique_ptr<Transport> Connect();

 private:
  struct State;
  std::shared_ptr<State> state_;
};

// Directly connected loopback pair, for tests that drive both ends by hand.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>> LoopbackPair();

// TCP. `port` 0 picks an ephemeral port; the bound port is written to
// `*bound_port`. Listens on 127.0.0.1 only — the fleet protocol is
// unauthenticated and meant for lab networks behind the operator's own walls.
Result<std::unique_ptr<Listener>> ListenTcp(uint16_t port, uint16_t* bound_port);
Result<std::unique_ptr<Transport>> ConnectTcp(const std::string& host,
                                              uint16_t port);

}  // namespace fleet
}  // namespace eof

#endif  // SRC_FLEET_TRANSPORT_H_
