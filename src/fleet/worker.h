// Fleet worker: the board-owning half of `eof worker`. One worker process holds
// one connection to the orchestrator and loops lease batches:
//
//   Hello -> HelloAck(worker_id, heartbeat, lease timeout)
//   repeat:
//     LeaseRequest -> LeaseGrant | NoWork(backoff / campaign_done)
//     RunBatch: a fresh CampaignScheduler seeded from the grant's coverage
//       snapshot + merged corpus + peer focus, one BoardFarm session per lease
//       (seeded by the campaign-global shard label, FarmWorkerSeed rule); a
//       sync pump heartbeats Sync/SyncAck every heartbeat interval, renewing
//       leases, uploading coverage diffs / new corpus / new bugs, and folding
//       the orchestrator's news back in; finished batches upload WorkerFinal.
//
// Workers are stateless between batches — everything campaign-wide arrives in
// the grant — which is what makes crash/rejoin trivial: a restarted worker is
// indistinguishable from a new one.
//
// Bit-identity: a batch whose grant carries one lease for shard 0 and empty
// sync state runs the exact program sequence of in-process `--jobs 1` — the
// sync pump's merge hooks are no-ops on empty payloads and never touch an RNG
// or a virtual clock.

#ifndef SRC_FLEET_WORKER_H_
#define SRC_FLEET_WORKER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/board_farm.h"
#include "src/fleet/fleet_config.h"
#include "src/fleet/proto.h"
#include "src/fleet/transport.h"
#include "src/telemetry/journal.h"

namespace eof {
namespace fleet {

class FleetWorker {
 public:
  struct Options {
    std::string name = "worker";
    int capacity = 1;  // concurrent board sessions per lease batch
    // Worker journal (board rows + per-batch campaign rows, one file spanning
    // batches). `metrics_out` opens a file sink; `sink` injects one for tests.
    // At most one may be set.
    std::string metrics_out;
    telemetry::EventSink* sink = nullptr;
  };

  static Result<std::unique_ptr<FleetWorker>> Create(Options options);

  // Connects, serves lease batches until the orchestrator reports every
  // campaign done (or the connection drops / a board session fails), says
  // Goodbye, and returns. A batch aborted by the orchestrator (stale worker,
  // revoked leases) is not an error — the loop just requests fresh work.
  Status Run(Transport* transport);

  // Merged result of each completed batch, in completion order.
  const std::vector<CampaignResult>& batch_results() const { return results_; }

 private:
  explicit FleetWorker(Options options);

  // Runs one granted batch to completion (or abort). Returns the batch's
  // CampaignResult; fails only on board/session errors or a dead transport.
  Result<CampaignResult> RunBatch(Transport* transport, const LeaseGrantMsg& grant);

  telemetry::EventSink* sink() const;

  Options options_;
  std::unique_ptr<telemetry::FileEventSink> file_sink_;
  uint32_t worker_id_ = 0;
  uint64_t heartbeat_ms_ = 1000;
  uint64_t lease_timeout_ms_ = 5000;
  uint64_t sync_seq_ = 0;
  std::vector<CampaignResult> results_;
};

}  // namespace fleet
}  // namespace eof

#endif  // SRC_FLEET_WORKER_H_
