#include "src/fleet/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <utility>

#include "src/common/strings.h"

namespace eof {
namespace fleet {

namespace {

// One direction of a loopback link: a bounded-by-nothing queue of encoded
// frames plus a closed flag. Closing either end closes both directions.
struct LoopbackChannel {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::vector<uint8_t>> frames;
  bool closed = false;

  void Push(std::vector<uint8_t> frame) {
    {
      std::lock_guard<std::mutex> lock(mu);
      frames.push_back(std::move(frame));
    }
    cv.notify_all();
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu);
      closed = true;
    }
    cv.notify_all();
  }
};

class LoopbackTransport : public Transport {
 public:
  LoopbackTransport(std::shared_ptr<LoopbackChannel> out,
                    std::shared_ptr<LoopbackChannel> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  ~LoopbackTransport() override { Close(); }

  Status Send(const Frame& frame) override {
    {
      std::lock_guard<std::mutex> lock(out_->mu);
      if (out_->closed) {
        return UnavailableError("loopback peer closed");
      }
    }
    out_->Push(EncodeFrame(frame));
    return OkStatus();
  }

  Result<Frame> Recv(int timeout_ms) override {
    std::unique_lock<std::mutex> lock(in_->mu);
    if (!in_->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms), [this] {
          return !in_->frames.empty() || in_->closed;
        })) {
      return TimeoutError("loopback recv timed out");
    }
    if (in_->frames.empty()) {
      return UnavailableError("loopback peer closed");
    }
    std::vector<uint8_t> bytes = std::move(in_->frames.front());
    in_->frames.pop_front();
    lock.unlock();
    return DecodeFrame(bytes.data(), bytes.size());
  }

  void Close() override {
    out_->Close();
    in_->Close();
  }

 private:
  std::shared_ptr<LoopbackChannel> out_;
  std::shared_ptr<LoopbackChannel> in_;
};

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
MakeLoopbackPair() {
  auto a_to_b = std::make_shared<LoopbackChannel>();
  auto b_to_a = std::make_shared<LoopbackChannel>();
  return {std::make_unique<LoopbackTransport>(a_to_b, b_to_a),
          std::make_unique<LoopbackTransport>(b_to_a, a_to_b)};
}

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
LoopbackPair() {
  return MakeLoopbackPair();
}

struct LoopbackListener::State {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::unique_ptr<Transport>> pending;
  bool closed = false;
};

LoopbackListener::LoopbackListener() : state_(std::make_shared<State>()) {}

LoopbackListener::~LoopbackListener() { Close(); }

std::unique_ptr<Transport> LoopbackListener::Connect() {
  auto [client, server] = MakeLoopbackPair();
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->closed) {
      client->Close();
      return client;  // dead end: every op fails with UnavailableError
    }
    state_->pending.push_back(std::move(server));
  }
  state_->cv.notify_all();
  return std::move(client);
}

Result<std::unique_ptr<Transport>> LoopbackListener::Accept(int timeout_ms) {
  std::unique_lock<std::mutex> lock(state_->mu);
  if (!state_->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms), [this] {
        return !state_->pending.empty() || state_->closed;
      })) {
    return TimeoutError("loopback accept timed out");
  }
  if (state_->pending.empty()) {
    return UnavailableError("loopback listener closed");
  }
  std::unique_ptr<Transport> conn = std::move(state_->pending.front());
  state_->pending.pop_front();
  return conn;
}

void LoopbackListener::Close() {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->closed = true;
  }
  state_->cv.notify_all();
}

namespace {

class TcpTransport : public Transport {
 public:
  explicit TcpTransport(int fd) : fd_(fd) {}
  ~TcpTransport() override { Close(); }

  Status Send(const Frame& frame) override {
    std::vector<uint8_t> bytes = EncodeFrame(frame);
    size_t sent = 0;
    std::lock_guard<std::mutex> lock(send_mu_);
    while (sent < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return UnavailableError(
            StrFormat("tcp send failed: %s", std::strerror(errno)));
      }
      sent += static_cast<size_t>(n);
    }
    return OkStatus();
  }

  Result<Frame> Recv(int timeout_ms) override {
    uint8_t header[kFrameHeaderBytes];
    RETURN_IF_ERROR(ReadExact(header, sizeof(header), timeout_ms, true));
    Frame frame;
    ASSIGN_OR_RETURN(size_t payload_size,
                     DecodeFrameHeader(header, &frame.type));
    frame.payload.resize(payload_size);
    if (payload_size > 0) {
      // The header arrived, so the payload must follow promptly; a peer dying
      // mid-frame is data loss, not a clean close.
      RETURN_IF_ERROR(
          ReadExact(frame.payload.data(), payload_size, timeout_ms, false));
    }
    return frame;
  }

  void Close() override {
    int fd = fd_.exchange(-1);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }

 private:
  // Reads exactly `size` bytes. `clean_eof_ok` maps an EOF before the first
  // byte to UnavailableError (peer closed between frames) instead of data loss.
  Status ReadExact(uint8_t* data, size_t size, int timeout_ms,
                   bool clean_eof_ok) {
    size_t got = 0;
    while (got < size) {
      int fd = fd_.load();
      if (fd < 0) {
        return UnavailableError("tcp transport closed");
      }
      struct pollfd pfd = {fd, POLLIN, 0};
      int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready < 0) {
        if (errno == EINTR) {
          continue;
        }
        return UnavailableError(
            StrFormat("tcp poll failed: %s", std::strerror(errno)));
      }
      if (ready == 0) {
        return TimeoutError("tcp recv timed out");
      }
      ssize_t n = ::recv(fd, data + got, size - got, 0);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        return UnavailableError(
            StrFormat("tcp recv failed: %s", std::strerror(errno)));
      }
      if (n == 0) {
        if (got == 0 && clean_eof_ok) {
          return UnavailableError("tcp peer closed");
        }
        return DataLossError("tcp peer closed mid-frame");
      }
      got += static_cast<size_t>(n);
    }
    return OkStatus();
  }

  std::atomic<int> fd_;
  std::mutex send_mu_;
};

class TcpListener : public Listener {
 public:
  explicit TcpListener(int fd) : fd_(fd) {}
  ~TcpListener() override { Close(); }

  Result<std::unique_ptr<Transport>> Accept(int timeout_ms) override {
    int fd = fd_.load();
    if (fd < 0) {
      return UnavailableError("tcp listener closed");
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) {
        return TimeoutError("tcp accept interrupted");
      }
      return UnavailableError(
          StrFormat("tcp accept poll failed: %s", std::strerror(errno)));
    }
    if (ready == 0) {
      return TimeoutError("tcp accept timed out");
    }
    int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      return UnavailableError(
          StrFormat("tcp accept failed: %s", std::strerror(errno)));
    }
    int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return std::unique_ptr<Transport>(std::make_unique<TcpTransport>(conn));
  }

  void Close() override {
    int fd = fd_.exchange(-1);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
  }

 private:
  std::atomic<int> fd_;
};

}  // namespace

Result<std::unique_ptr<Listener>> ListenTcp(uint16_t port,
                                            uint16_t* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return UnavailableError(
        StrFormat("socket failed: %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = UnavailableError(
        StrFormat("bind to port %u failed: %s", port, std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 64) < 0) {
    Status status =
        UnavailableError(StrFormat("listen failed: %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (bound_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) == 0) {
      *bound_port = ntohs(addr.sin_port);
    }
  }
  return std::unique_ptr<Listener>(std::make_unique<TcpListener>(fd));
}

Result<std::unique_ptr<Transport>> ConnectTcp(const std::string& host,
                                              uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return UnavailableError(
        StrFormat("socket failed: %s", std::strerror(errno)));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError(
        StrFormat("bad host address '%s' (dotted quad required)", host.c_str()));
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = UnavailableError(StrFormat("connect to %s:%u failed: %s",
                                               host.c_str(), port,
                                               std::strerror(errno)));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Transport>(std::make_unique<TcpTransport>(fd));
}

}  // namespace fleet
}  // namespace eof
