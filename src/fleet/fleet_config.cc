#include "src/fleet/fleet_config.h"

namespace eof {
namespace fleet {

WireCampaignConfig ToWireConfig(const FuzzerConfig& config,
                                const std::string& campaign_id,
                                uint32_t total_shards) {
  WireCampaignConfig wire;
  wire.campaign_id = campaign_id;
  wire.os_name = config.os_name;
  wire.board_name = config.board_name;
  wire.seed = config.seed;
  wire.budget_us = config.budget;
  wire.max_execs = config.max_execs;
  wire.metrics_interval_us = config.metrics_interval;
  wire.total_shards = total_shards;
  wire.sample_points = config.sample_points;
  wire.periodic_reset_execs = config.periodic_reset_execs;
  wire.restore_mode = static_cast<uint8_t>(config.restore_mode);
  uint32_t flags = 0;
  if (config.coverage_feedback) flags |= kFlagCoverageFeedback;
  if (config.log_monitor) flags |= kFlagLogMonitor;
  if (config.exception_monitor) flags |= kFlagExceptionMonitor;
  if (config.watchdogs) flags |= kFlagWatchdogs;
  if (config.power_probe) flags |= kFlagPowerProbe;
  if (config.use_extended_specs) flags |= kFlagUseExtendedSpecs;
  if (config.inject_peripheral_events) flags |= kFlagInjectPeripheralEvents;
  if (config.batched_link) flags |= kFlagBatchedLink;
  if (config.overlapped_drain) flags |= kFlagOverlappedDrain;
  if (config.directed) flags |= kFlagDirected;
  if (config.trim) flags |= kFlagTrim;
  wire.flags = flags;
  wire.seed_programs = config.seed_programs;
  return wire;
}

FuzzerConfig FromWireConfig(const WireCampaignConfig& wire) {
  FuzzerConfig config;
  config.os_name = wire.os_name;
  config.board_name = wire.board_name;
  config.seed = wire.seed;
  config.budget = wire.budget_us;
  config.max_execs = wire.max_execs;
  config.metrics_interval = wire.metrics_interval_us;
  config.sample_points = wire.sample_points;
  config.periodic_reset_execs = wire.periodic_reset_execs;
  config.restore_mode = static_cast<RestoreMode>(wire.restore_mode);
  config.coverage_feedback = (wire.flags & kFlagCoverageFeedback) != 0;
  config.log_monitor = (wire.flags & kFlagLogMonitor) != 0;
  config.exception_monitor = (wire.flags & kFlagExceptionMonitor) != 0;
  config.watchdogs = (wire.flags & kFlagWatchdogs) != 0;
  config.power_probe = (wire.flags & kFlagPowerProbe) != 0;
  config.use_extended_specs = (wire.flags & kFlagUseExtendedSpecs) != 0;
  config.inject_peripheral_events = (wire.flags & kFlagInjectPeripheralEvents) != 0;
  config.batched_link = (wire.flags & kFlagBatchedLink) != 0;
  config.overlapped_drain = (wire.flags & kFlagOverlappedDrain) != 0;
  config.directed = (wire.flags & kFlagDirected) != 0;
  config.trim = (wire.flags & kFlagTrim) != 0;
  config.seed_programs = wire.seed_programs;
  config.metrics_out.clear();
  return config;
}

BugWire ToWireBug(const BugReport& bug) {
  BugWire wire;
  wire.catalog_id = static_cast<uint32_t>(bug.catalog_id);
  wire.detector = bug.detector;
  wire.kind = bug.kind;
  wire.excerpt = bug.excerpt;
  wire.program_text = bug.program_text;
  wire.at_us = bug.at;
  wire.first_exec = bug.first_exec;
  wire.board = static_cast<uint32_t>(bug.board);
  wire.seed_stream = bug.seed_stream;
  wire.coverage_delta = bug.coverage_delta;
  wire.snapshot_validation = bug.snapshot_validation;
  wire.dump_reason = bug.dump.reason;
  wire.dump_last_restore = bug.dump.last_restore;
  wire.uart_tail = bug.dump.UartTailText();
  wire.port_ops = bug.dump.PortOpsText();
  wire.events = bug.dump.EventsText();
  return wire;
}

}  // namespace fleet
}  // namespace eof
