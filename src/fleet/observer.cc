#include "src/fleet/observer.h"

#include <algorithm>

#include "src/common/strings.h"
#include "src/telemetry/prometheus.h"

namespace eof {
namespace fleet {

Result<StatusReplyMsg> FetchStatus(Transport* transport,
                                   const std::string& campaign_id,
                                   bool include_shards, int timeout_ms) {
  StatusRequestMsg request;
  request.campaign_id = campaign_id;
  request.include_shards = include_shards ? 1 : 0;
  Frame frame;
  frame.type = MsgType::kStatusRequest;
  frame.payload = Encode(request);
  RETURN_IF_ERROR(transport->Send(frame));
  ASSIGN_OR_RETURN(Frame reply, transport->Recv(timeout_ms));
  if (reply.type != MsgType::kStatusReply) {
    return DataLossError(StrFormat("expected StatusReply, got message type %u",
                                   static_cast<unsigned>(reply.type)));
  }
  ASSIGN_OR_RETURN(StatusReplyMsg status, DecodeStatusReply(reply.payload));
  Frame goodbye;
  goodbye.type = MsgType::kGoodbye;
  goodbye.payload = Encode(GoodbyeMsg{});  // observers have no worker id
  (void)transport->Send(goodbye);  // best effort; the poll already succeeded
  return status;
}

namespace {

const char* PhaseName(uint8_t phase) {
  switch (phase) {
    case 0: return "pending";
    case 1: return "leased";
    case 2: return "done";
  }
  return "?";
}

const CampaignStatusWire* FindCampaign(const StatusReplyMsg& reply,
                                       const std::string& id) {
  for (const CampaignStatusWire& campaign : reply.campaigns) {
    if (campaign.campaign_id == id) {
      return &campaign;
    }
  }
  return nullptr;
}

// Exec rates between successive polls of one campaign, in execs per server
// second. history is oldest-first; returns one rate per adjacent pair.
std::vector<double> ExecRates(const std::vector<StatusReplyMsg>& history,
                              const std::string& campaign_id) {
  std::vector<double> rates;
  for (size_t i = 1; i < history.size(); ++i) {
    const CampaignStatusWire* prev = FindCampaign(history[i - 1], campaign_id);
    const CampaignStatusWire* next = FindCampaign(history[i], campaign_id);
    if (prev == nullptr || next == nullptr) {
      continue;
    }
    uint64_t dt_ms = history[i].server_ms > history[i - 1].server_ms
                         ? history[i].server_ms - history[i - 1].server_ms
                         : 0;
    uint64_t dx = next->execs > prev->execs ? next->execs - prev->execs : 0;
    rates.push_back(dt_ms == 0 ? 0.0 : 1000.0 * static_cast<double>(dx) /
                                           static_cast<double>(dt_ms));
  }
  return rates;
}

// Unicode block sparkline scaled to the window's max rate.
std::string Sparkline(const std::vector<double>& rates) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  if (rates.empty()) {
    return "";
  }
  double max_rate = *std::max_element(rates.begin(), rates.end());
  std::string out;
  for (double rate : rates) {
    if (max_rate <= 0) {
      out += kLevels[0];
      continue;
    }
    int level = static_cast<int>(rate / max_rate * 7.0 + 0.5);
    out += kLevels[std::clamp(level, 0, 7)];
  }
  return out;
}

// Coverage unchanged across the last `need` polls (with at least that many
// polls in the window) — the live plateau highlight.
bool CoveragePlateaued(const std::vector<StatusReplyMsg>& history,
                       const std::string& campaign_id, size_t need) {
  if (history.size() < need) {
    return false;
  }
  const CampaignStatusWire* last =
      FindCampaign(history.back(), campaign_id);
  if (last == nullptr) {
    return false;
  }
  for (size_t i = history.size() - need; i < history.size(); ++i) {
    const CampaignStatusWire* campaign = FindCampaign(history[i], campaign_id);
    if (campaign == nullptr || campaign->coverage != last->coverage) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string RenderTopFrame(const std::vector<StatusReplyMsg>& history) {
  if (history.empty()) {
    return "eof top | no status yet\n";
  }
  const StatusReplyMsg& now = history.back();
  uint64_t age_ms =
      now.server_ms > now.assembled_ms ? now.server_ms - now.assembled_ms : 0;
  std::string out = StrFormat(
      "eof top | server t=%llums | snapshot age %llums (bound %llums) | "
      "campaigns %zu | workers %zu\n",
      static_cast<unsigned long long>(now.server_ms),
      static_cast<unsigned long long>(age_ms),
      static_cast<unsigned long long>(now.heartbeat_interval_ms),
      now.campaigns.size(), now.workers.size());
  for (const CampaignStatusWire& campaign : now.campaigns) {
    out += StrFormat("campaign %s %s/%s | budget %.1fs%s\n",
                     campaign.campaign_id.c_str(), campaign.os_name.c_str(),
                     campaign.board_name.c_str(),
                     static_cast<double>(campaign.budget_us) / 1e6,
                     campaign.finalized != 0 ? " | FINALIZED" : "");
    out += StrFormat(
        "  shards %u: %u pending / %u leased / %u done | frontier %.2fs\n",
        campaign.shards_total, campaign.shards_pending, campaign.shards_leased,
        campaign.shards_done, static_cast<double>(campaign.frontier_us) / 1e6);
    out += StrFormat(
        "  coverage %llu | corpus %llu | execs %llu | crashes %llu | bugs %zu\n",
        static_cast<unsigned long long>(campaign.coverage),
        static_cast<unsigned long long>(campaign.corpus),
        static_cast<unsigned long long>(campaign.execs),
        static_cast<unsigned long long>(campaign.crashes),
        campaign.bugs.size());
    out += StrFormat(
        "  leases granted %llu reclaimed %llu | rejected uploads %llu | "
        "workers lost %llu | corpus syncs %llu\n",
        static_cast<unsigned long long>(campaign.leases_granted),
        static_cast<unsigned long long>(campaign.leases_reclaimed),
        static_cast<unsigned long long>(campaign.rejected_uploads),
        static_cast<unsigned long long>(campaign.workers_lost),
        static_cast<unsigned long long>(campaign.corpus_syncs));
    out += StrFormat(
        "  journal drops: orchestrator %llu, workers %llu\n",
        static_cast<unsigned long long>(campaign.journal_dropped),
        static_cast<unsigned long long>(campaign.journal_dropped_workers));
    std::vector<double> rates = ExecRates(history, campaign.campaign_id);
    std::string line = "  rate ";
    line += rates.empty() ? std::string("n/a")
                          : StrFormat("%.1f execs/s", rates.back());
    std::string spark = Sparkline(rates);
    if (!spark.empty()) {
      line += StrFormat("  [%s]", spark.c_str());
    }
    if (CoveragePlateaued(history, campaign.campaign_id, 3)) {
      line += "  PLATEAU";
    }
    out += line + "\n";
    if (!campaign.shards.empty()) {
      out += "  shard  phase    worker  attempt  execs        elapsed_s\n";
      for (const ShardStatusWire& shard : campaign.shards) {
        out += StrFormat("  %5u  %-7s  %6u  %7u  %-11llu  %.2f\n", shard.shard,
                         PhaseName(shard.phase), shard.worker, shard.attempt,
                         static_cast<unsigned long long>(shard.execs),
                         static_cast<double>(shard.elapsed_us) / 1e6);
      }
    }
    for (const BugStatusWire& bug : campaign.bugs) {
      out += StrFormat("  bug %u %s/%s board %u t=%.2fs \"%s\"\n",
                       bug.catalog_id, bug.detector.c_str(), bug.kind.c_str(),
                       bug.board, static_cast<double>(bug.at_us) / 1e6,
                       bug.excerpt.c_str());
    }
  }
  if (!now.workers.empty()) {
    out += "workers:\n";
    out += "  id  name              leases  execs        syncs  dropped  "
           "sync_age_ms\n";
    for (const WorkerStatusWire& worker : now.workers) {
      uint64_t sync_age = now.server_ms > worker.last_seen_ms
                              ? now.server_ms - worker.last_seen_ms
                              : 0;
      std::string flags;
      if (worker.lost != 0) {
        flags += " LOST";
      } else if (sync_age > 3 * now.heartbeat_interval_ms) {
        flags += " STALLED";
      }
      out += StrFormat("  %2u  %-16s  %6llu  %-11llu  %5llu  %7llu  %-11llu%s\n",
                       worker.worker_id, worker.name.c_str(),
                       static_cast<unsigned long long>(worker.leases),
                       static_cast<unsigned long long>(worker.execs),
                       static_cast<unsigned long long>(worker.syncs),
                       static_cast<unsigned long long>(worker.journal_dropped),
                       static_cast<unsigned long long>(sync_age), flags.c_str());
    }
  }
  return out;
}

namespace {

using telemetry::AppendPrometheusSample;
using telemetry::AppendPrometheusType;
using telemetry::PrometheusLabels;

PrometheusLabels CampaignLabels(const CampaignStatusWire& campaign) {
  return {{"campaign", campaign.campaign_id}};
}

PrometheusLabels WorkerLabels(const WorkerStatusWire& worker) {
  return {{"worker", worker.name},
          {"id", StrFormat("%u", worker.worker_id)}};
}

}  // namespace

std::string RenderFleetMetrics(const StatusReplyMsg& status,
                               const telemetry::MetricsSnapshot& orchestrator) {
  std::string out;
  struct CampaignFamily {
    const char* name;
    const char* type;
    uint64_t (*value)(const CampaignStatusWire&);
  };
  static const CampaignFamily kCampaignFamilies[] = {
      {"eof_fleet_campaign_coverage", "gauge",
       [](const CampaignStatusWire& c) { return c.coverage; }},
      {"eof_fleet_campaign_corpus", "gauge",
       [](const CampaignStatusWire& c) { return c.corpus; }},
      {"eof_fleet_campaign_execs_total", "counter",
       [](const CampaignStatusWire& c) { return c.execs; }},
      {"eof_fleet_campaign_crashes_total", "counter",
       [](const CampaignStatusWire& c) { return c.crashes; }},
      {"eof_fleet_campaign_bugs", "gauge",
       [](const CampaignStatusWire& c) { return static_cast<uint64_t>(c.bugs.size()); }},
      {"eof_fleet_campaign_frontier_us", "gauge",
       [](const CampaignStatusWire& c) { return c.frontier_us; }},
      {"eof_fleet_campaign_budget_us", "gauge",
       [](const CampaignStatusWire& c) { return c.budget_us; }},
      {"eof_fleet_campaign_finalized", "gauge",
       [](const CampaignStatusWire& c) { return static_cast<uint64_t>(c.finalized); }},
      {"eof_fleet_leases_granted_total", "counter",
       [](const CampaignStatusWire& c) { return c.leases_granted; }},
      {"eof_fleet_leases_reclaimed_total", "counter",
       [](const CampaignStatusWire& c) { return c.leases_reclaimed; }},
      {"eof_fleet_rejected_uploads_total", "counter",
       [](const CampaignStatusWire& c) { return c.rejected_uploads; }},
      {"eof_fleet_workers_lost_total", "counter",
       [](const CampaignStatusWire& c) { return c.workers_lost; }},
      {"eof_fleet_corpus_syncs_total", "counter",
       [](const CampaignStatusWire& c) { return c.corpus_syncs; }},
  };
  for (const CampaignFamily& family : kCampaignFamilies) {
    AppendPrometheusType(&out, family.name, family.type);
    for (const CampaignStatusWire& campaign : status.campaigns) {
      AppendPrometheusSample(&out, family.name, CampaignLabels(campaign),
                             family.value(campaign));
    }
  }
  AppendPrometheusType(&out, "eof_fleet_shards", "gauge");
  for (const CampaignStatusWire& campaign : status.campaigns) {
    const std::pair<const char*, uint32_t> phases[] = {
        {"pending", campaign.shards_pending},
        {"leased", campaign.shards_leased},
        {"done", campaign.shards_done}};
    for (const auto& [phase, count] : phases) {
      PrometheusLabels labels = CampaignLabels(campaign);
      labels.emplace_back("phase", phase);
      AppendPrometheusSample(&out, "eof_fleet_shards", labels, count);
    }
  }
  // Per-sink drop attribution: the orchestrator's own sink and the summed
  // worker sinks per campaign, plus the per-worker breakdown below.
  AppendPrometheusType(&out, "eof_fleet_journal_dropped_total", "counter");
  for (const CampaignStatusWire& campaign : status.campaigns) {
    PrometheusLabels orch_labels = CampaignLabels(campaign);
    orch_labels.emplace_back("sink", "orchestrator");
    AppendPrometheusSample(&out, "eof_fleet_journal_dropped_total", orch_labels,
                           campaign.journal_dropped);
    PrometheusLabels worker_labels = CampaignLabels(campaign);
    worker_labels.emplace_back("sink", "workers");
    AppendPrometheusSample(&out, "eof_fleet_journal_dropped_total",
                           worker_labels, campaign.journal_dropped_workers);
  }
  struct WorkerFamily {
    const char* name;
    const char* type;
    uint64_t (*value)(const WorkerStatusWire&);
  };
  static const WorkerFamily kWorkerFamilies[] = {
      {"eof_fleet_worker_execs_total", "counter",
       [](const WorkerStatusWire& w) { return w.execs; }},
      {"eof_fleet_worker_syncs_total", "counter",
       [](const WorkerStatusWire& w) { return w.syncs; }},
      {"eof_fleet_worker_journal_dropped_total", "counter",
       [](const WorkerStatusWire& w) { return w.journal_dropped; }},
      {"eof_fleet_worker_leases", "gauge",
       [](const WorkerStatusWire& w) { return w.leases; }},
      {"eof_fleet_worker_lost", "gauge",
       [](const WorkerStatusWire& w) { return static_cast<uint64_t>(w.lost); }},
      {"eof_fleet_worker_last_seen_ms", "gauge",
       [](const WorkerStatusWire& w) { return w.last_seen_ms; }},
  };
  for (const WorkerFamily& family : kWorkerFamilies) {
    AppendPrometheusType(&out, family.name, family.type);
    for (const WorkerStatusWire& worker : status.workers) {
      AppendPrometheusSample(&out, family.name, WorkerLabels(worker),
                             family.value(worker));
    }
  }
  AppendPrometheusType(&out, "eof_fleet_server_ms", "gauge");
  AppendPrometheusSample(&out, "eof_fleet_server_ms", {}, status.server_ms);
  AppendPrometheusType(&out, "eof_fleet_snapshot_age_ms", "gauge");
  AppendPrometheusSample(
      &out, "eof_fleet_snapshot_age_ms", {},
      status.server_ms > status.assembled_ms
          ? status.server_ms - status.assembled_ms
          : 0);
  AppendPrometheusType(&out, "eof_fleet_heartbeat_interval_ms", "gauge");
  AppendPrometheusSample(&out, "eof_fleet_heartbeat_interval_ms", {},
                         status.heartbeat_interval_ms);
  out += telemetry::RenderPrometheus(orchestrator);
  return out;
}

}  // namespace fleet
}  // namespace eof
