#include "src/fleet/status_http.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "src/common/strings.h"
#include "src/telemetry/prometheus.h"

namespace eof {
namespace fleet {

namespace {

// Bounded read of one request head (through the blank line). Observers send
// tiny GETs; anything larger than this is not a client we serve.
constexpr size_t kMaxRequestBytes = 8192;
constexpr int kRequestTimeoutMs = 2000;

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

std::string HttpResponse(const char* status_line, const char* content_type,
                         const std::string& body) {
  return StrFormat(
             "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
             "Connection: close\r\n\r\n",
             status_line, content_type, body.size()) +
         body;
}

}  // namespace

StatusHttpServer::StatusHttpServer(int listen_fd, uint16_t bound_port,
                                   Handlers handlers)
    : listen_fd_(listen_fd), bound_port_(bound_port),
      handlers_(std::move(handlers)) {}

Result<std::unique_ptr<StatusHttpServer>> StatusHttpServer::Start(
    uint16_t port, Handlers handlers) {
  if (!handlers.metrics) {
    return InvalidArgumentError("StatusHttpServer: metrics handler required");
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return UnavailableError("StatusHttpServer: socket() failed");
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return UnavailableError(
        StrFormat("StatusHttpServer: cannot bind 127.0.0.1:%u", port));
  }
  if (listen(fd, 16) != 0) {
    close(fd);
    return UnavailableError("StatusHttpServer: listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    close(fd);
    return UnavailableError("StatusHttpServer: getsockname() failed");
  }
  auto server = std::unique_ptr<StatusHttpServer>(
      new StatusHttpServer(fd, ntohs(addr.sin_port), std::move(handlers)));
  server->accept_thread_ = std::thread([raw = server.get()] { raw->AcceptLoop(); });
  return server;
}

StatusHttpServer::~StatusHttpServer() { Stop(); }

void StatusHttpServer::Stop() {
  if (stop_.exchange(true)) {
    return;
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  close(listen_fd_);
}

void StatusHttpServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = poll(&pfd, 1, 100);
    if (ready <= 0) {
      continue;
    }
    int conn = accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      continue;
    }
    int one = 1;
    setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    HandleConnection(conn);
    close(conn);
  }
}

void StatusHttpServer::HandleConnection(int fd) {
  std::string request;
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    if (poll(&pfd, 1, kRequestTimeoutMs) <= 0) {
      return;
    }
    char buffer[2048];
    ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      return;
    }
    request.append(buffer, static_cast<size_t>(n));
  }
  // Request line: METHOD SP PATH SP VERSION. Query strings are not served.
  size_t method_end = request.find(' ');
  size_t path_end =
      method_end == std::string::npos ? std::string::npos
                                      : request.find(' ', method_end + 1);
  if (method_end == std::string::npos || path_end == std::string::npos) {
    SendAll(fd, HttpResponse("400 Bad Request", "text/plain; charset=utf-8",
                             "bad request\n"));
    return;
  }
  std::string method = request.substr(0, method_end);
  std::string path = request.substr(method_end + 1, path_end - method_end - 1);
  if (method != "GET") {
    SendAll(fd, HttpResponse("405 Method Not Allowed",
                             "text/plain; charset=utf-8",
                             "only GET is served\n"));
    return;
  }
  if (path == "/metrics") {
    SendAll(fd, HttpResponse("200 OK", telemetry::kPrometheusContentType,
                             handlers_.metrics()));
    return;
  }
  if (path == "/healthz") {
    std::string body = handlers_.healthz ? handlers_.healthz() : "ok\n";
    SendAll(fd, HttpResponse("200 OK", "text/plain; charset=utf-8", body));
    return;
  }
  SendAll(fd, HttpResponse("404 Not Found", "text/plain; charset=utf-8",
                           "not found\n"));
}

}  // namespace fleet
}  // namespace eof
