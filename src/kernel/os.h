// The embedded-OS interface the agent runs against, plus the global registry of supported
// OSs (FreeRTOS, RT-Thread, NuttX, Zephyr, PoKOS — §4.6 "Embedded OS Adaptation").
//
// A fresh Os instance is constructed for every boot, so kernel state resets with the board.

#ifndef SRC_KERNEL_OS_H_
#define SRC_KERNEL_OS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/hw/board_spec.h"
#include "src/hw/peripheral_events.h"
#include "src/kernel/api.h"
#include "src/kernel/kernel_context.h"

namespace eof {

// Static code footprint of an OS build, used for image sizing and the §5.5.1 memory-
// overhead accounting. `edge_sites` is the number of instrumentable coverage sites the
// build contains (maintained per OS; validated against dynamic observations in tests).
struct OsFootprint {
  uint64_t base_image_bytes = 0;
  uint64_t edge_sites = 0;
};

class Os {
 public:
  virtual ~Os() = default;

  virtual const std::string& name() const = 0;

  // The full API surface, including pseudo-syscalls.
  virtual const ApiRegistry& registry() const = 0;

  // Boot-time initialization (scheduler, heaps, device tables). Emits the boot banner.
  virtual Status Init(KernelContext& ctx) = 0;

  // Symbol of the OS's central exception function — where the exception monitor plants its
  // breakpoint (panic_handler in FreeRTOS, common_exception in RT-Thread, ...).
  virtual std::string exception_symbol() const = 0;

  virtual OsFootprint footprint() const = 0;

  // Coverage modules this OS contributes, with per-module basic-block estimates.
  // The image builder declares these as ModuleLayouts.
  virtual std::vector<std::pair<std::string, uint64_t>> modules() const = 0;

  // Optional housekeeping between test-case calls (tick processing, timer expiry).
  virtual void Tick(KernelContext& ctx) { (void)ctx; }

  // Interrupt-path entry for injected peripheral events (§6 extension). The default OS
  // has no handler wired; targets that model ISR paths override this.
  virtual void OnPeripheralEvent(KernelContext& ctx, const PeripheralEvent& event) {
    (void)ctx;
    (void)event;
  }
};

using OsFactory = std::function<std::unique_ptr<Os>()>;

// Registry entry describing a supported OS: its factory plus the deployment metadata the
// paper's "register the target OS in EOF" step supplies (~100 LoC of target registration).
struct OsInfo {
  std::string name;
  OsFactory factory;
  std::vector<Arch> supported_archs;
  std::string default_board;  // catalog name of the board the evaluation uses
  std::string description;
};

// Global OS registry. Registration happens in each OS's RegisterXxxOs() function, invoked
// from RegisterAllOses() (src/os/all_oses.h) so binaries pick up every target.
class OsRegistry {
 public:
  static OsRegistry& Instance();

  Status Register(OsInfo info);
  Result<OsInfo> Find(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::vector<OsInfo> infos_;
};

}  // namespace eof

#endif  // SRC_KERNEL_OS_H_
