// Flash layout conventions shared by the image builder (host) and kernels that touch
// their own flash (e.g. the FreeRTOS partition loader). Offsets are relative to flash
// start; the partition table always sits at kPtableFlashOffset.

#ifndef SRC_KERNEL_IMAGE_LAYOUT_H_
#define SRC_KERNEL_IMAGE_LAYOUT_H_

#include <cstdint>

namespace eof {

inline constexpr uint64_t kBootloaderFlashOffset = 0x0;
inline constexpr uint64_t kBootloaderSize = 0x10000;  // 64 KiB

inline constexpr uint64_t kPtableFlashOffset = 0x10000;
inline constexpr uint64_t kPtableSize = 0x1000;  // 4 KiB

inline constexpr uint64_t kKernelFlashOffset = 0x11000;

// Scratch NVS partition size; its offset is placed after the kernel by the image builder.
inline constexpr uint64_t kNvsSize = 0x8000;  // 32 KiB

}  // namespace eof

#endif  // SRC_KERNEL_IMAGE_LAYOUT_H_
