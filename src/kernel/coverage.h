// SanCov-style coverage instrumentation for the simulated kernels (§4.5.1).
//
// Kernel code marks branch sites with EOF_COV(ctx); each site gets a stable 64-bit ID from
// (module, file, line). When the image was built with instrumentation covering the site's
// module, the hook burns extra cycles (the inserted callback) and appends the site's
// synthetic basic-block address to a coverage ring in target RAM, which the host drains
// over the debug port. When the ring fills, the agent pauses at _kcmp_buf_full so the host
// can drain and reset it — exactly the Figure 5 flow.
//
// Whether or not instrumentation is compiled in, executing a site reports its basic-block
// address to the board, so GDBFuzz-style hardware breakpoints see hits on uninstrumented
// images.

#ifndef SRC_KERNEL_COVERAGE_H_
#define SRC_KERNEL_COVERAGE_H_

#include <cstdint>

#include "src/common/hash.h"

namespace eof {

struct EdgeSite {
  const char* module;
  const char* file;
  int line;
  uint64_t id;  // stable across runs: hash of (module, file, line)
};

constexpr EdgeSite MakeEdgeSite(const char* module, const char* file, int line) {
  uint64_t id = Fnv1a(module);
  id = Fnv1a(file, id);
  id = HashCombine(id, static_cast<uint64_t>(line));
  return EdgeSite{module, file, line, id};
}

// Extra core cycles burnt per instrumented edge (the __sanitizer_cov_trace_* callback plus
// the write_comp_data store, amortized over the real code's much denser edge population).
// Calibrated against kApiBaseCycles (src/kernel/costs.h) so whole-image instrumentation
// lands in the ~15-30% execution-overhead band the paper reports (§5.5.2).
inline constexpr uint64_t kCovCallbackCycles = 450;

// Code-size cost per instrumented site: call + compare + store sequences.
inline constexpr uint64_t kCovBytesPerSite = 18;

// Bucketed sites expand one syntactic site into several runtime edges, keyed by a bounded
// value class (size class, fill level, object count...). This mirrors how real compiled
// kernels expose many more edges than our hand-instrumented branches: unrolled loops,
// inlined memcpy size ladders, per-state dispatch rows. Deep buckets need real state
// buildup, which is exactly the long tail that keeps 24-hour coverage curves growing.
inline constexpr uint64_t kMaxCovBuckets = 24;

// log2-style size class in [0, kMaxCovBuckets): the canonical bucket for byte counts.
constexpr uint64_t CovSizeClass(uint64_t value) {
  uint64_t bucket = 0;
  while (value > 1 && bucket < kMaxCovBuckets - 1) {
    value >>= 1;
    ++bucket;
  }
  return bucket;
}

// Declares the coverage module for the current file. Place inside namespace scope of a .cc.
#define EOF_COV_MODULE(name) static constexpr const char kCovModule[] = name

// Records one edge execution against `ctx` (a KernelContext).
#define EOF_COV(ctx)                                                                     \
  do {                                                                                   \
    static constexpr ::eof::EdgeSite eof_cov_site =                                      \
        ::eof::MakeEdgeSite(kCovModule, __FILE__, __LINE__);                             \
    (ctx).Cov(eof_cov_site);                                                             \
  } while (false)

// Records the (site, bucket) edge; bucket is clamped to kMaxCovBuckets.
#define EOF_COV_BUCKET(ctx, bucket)                                                      \
  do {                                                                                   \
    static constexpr ::eof::EdgeSite eof_cov_site =                                      \
        ::eof::MakeEdgeSite(kCovModule, __FILE__, __LINE__);                             \
    (ctx).CovBucket(eof_cov_site, static_cast<uint64_t>(bucket));                        \
  } while (false)

}  // namespace eof

#endif  // SRC_KERNEL_COVERAGE_H_
