#include "src/kernel/os.h"

#include "src/common/strings.h"

namespace eof {

OsRegistry& OsRegistry::Instance() {
  static OsRegistry* registry = new OsRegistry();
  return *registry;
}

Status OsRegistry::Register(OsInfo info) {
  for (const OsInfo& existing : infos_) {
    if (existing.name == info.name) {
      return AlreadyExistsError(StrFormat("OS '%s' already registered", info.name.c_str()));
    }
  }
  infos_.push_back(std::move(info));
  return OkStatus();
}

Result<OsInfo> OsRegistry::Find(const std::string& name) const {
  for (const OsInfo& info : infos_) {
    if (info.name == name) {
      return info;
    }
  }
  return NotFoundError(StrFormat("OS '%s' not registered", name.c_str()));
}

std::vector<std::string> OsRegistry::Names() const {
  std::vector<std::string> names;
  for (const OsInfo& info : infos_) {
    names.push_back(info.name);
  }
  return names;
}

}  // namespace eof
