// Cycle-cost constants for simulated kernel work. Centralized so the §5.5 overhead
// experiments and the Figure 7/8 curve shapes rest on one consistent model:
//   * each API call burns a base cost (entry, validation, scheduling),
//   * data-structure work burns per-operation costs, and
//   * each instrumented coverage site burns kCovCallbackCycles (src/kernel/coverage.h).
// The ratio of instrumentation cycles to base execution cycles — not any absolute value —
// is what lands execution overhead in the paper's ~15-30% band.

#ifndef SRC_KERNEL_COSTS_H_
#define SRC_KERNEL_COSTS_H_

#include <cstdint>

namespace eof {

// Burnt by the agent for every dispatched call (trap entry, argument marshalling,
// scheduler pass). Dominates per-call execution cost.
inline constexpr uint64_t kApiBaseCycles = 60000;

// Inter-call settling delay (ticks, idle task, housekeeping) burnt by the agent between
// test-case calls. Dominates per-call latency, as it does on real boards, and puts
// campaign throughput in the paper's ~1000-1600 payloads / 10 min band.
inline constexpr uint64_t kYieldBaseCycles = 18'000'000;

// Extra housekeeping cycles per instrumented site in the image (see
// KernelContext::YieldDelay): the carrier of the §5.5.2 execution overhead.
inline constexpr uint64_t kCovYieldCyclesPerSite = 1400;

// Typical fine-grained work units used inside kernels.
inline constexpr uint64_t kListOpCycles = 120;
inline constexpr uint64_t kAllocOpCycles = 900;
inline constexpr uint64_t kCopyPerByteCycles = 4;
inline constexpr uint64_t kContextSwitchCycles = 2600;
inline constexpr uint64_t kTickCycles = 1800;

}  // namespace eof

#endif  // SRC_KERNEL_COSTS_H_
