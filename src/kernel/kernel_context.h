// KernelContext: the services every simulated kernel is written against. It plumbs
// coverage events into the target-RAM ring, kernel log output onto the UART, panics and
// assertion failures into the board's fault machinery (via signals the agent translates),
// and accounts RAM usage against the board's budget.
//
// One context exists per boot; it dies with the firmware instance on reset.

#ifndef SRC_KERNEL_KERNEL_CONTEXT_H_
#define SRC_KERNEL_KERNEL_CONTEXT_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/hw/image.h"
#include "src/hw/target_env.h"
#include "src/kernel/cov_ring.h"
#include "src/kernel/coverage.h"
#include "src/kernel/kernel_fault.h"

namespace eof {

class KernelContext {
 public:
  // `env` and `image` must outlive the context.
  KernelContext(TargetEnv& env, const FirmwareImage& image, CovRingLayout ring);

  // --- coverage (used via EOF_COV / EOF_COV_BUCKET) ---
  void Cov(const EdgeSite& site) { CovBucket(site, 0); }
  void CovBucket(const EdgeSite& site, uint64_t bucket);

  // Publishes the index of the program call about to execute into the ring's
  // current_call header word; every coverage entry appended afterwards carries it.
  // Cheap when the index is unchanged (the header word is cached).
  void SetCurrentCall(uint32_t call_index);

  // Marks the start of one agent resume window. The host only touches ring RAM
  // (drains, bank flips) while the target is stopped — i.e. between resume
  // windows — so the context caches the active bank and the dropped counter for
  // the window's duration and this call invalidates those caches.
  void BeginResumeWindow();

  // Inter-call yield: the agent parks between calls while the OS runs its housekeeping
  // (ticks, idle task, service threads). With instrumentation compiled in, that
  // housekeeping runs the instrumented build, which is where the bulk of the §5.5.2
  // execution overhead comes from.
  void YieldDelay();

  // True when the ring filled since the last host drain; the agent checks this after each
  // call and pauses at _kcmp_buf_full.
  bool cov_overflow_pending() const { return cov_overflow_pending_; }
  void ClearCovOverflow() { cov_overflow_pending_ = false; }

  // Self-service double buffering: if the host enabled bank flips (kBankFlipEnableBit)
  // and the parked bank has been collected (count == 0), parks the full active bank
  // and flips appends onto the other one, returning true. Returns false when flips
  // are disabled or the parked bank still holds undrained entries (backpressure) —
  // the agent must then pause at _kcmp_buf_full for host service. Only called at
  // call boundaries, so the capture windows match halt-mode drains exactly.
  bool TryBankFlip();

  // --- faults (§4.5.2 bug surfaces) ---
  [[noreturn]] void Panic(const std::string& message, const std::string& backtrace = "");
  [[noreturn]] void AssertFail(const std::string& message);
  [[noreturn]] void Hang(const std::string& message);

  // Kernel printk: one line on the UART.
  void LogLine(const std::string& line);

  // --- execution accounting ---
  void ConsumeCycles(uint64_t cycles) { env_.ConsumeCycles(cycles); }
  bool HasPeripheral(Peripheral peripheral) const { return env_.HasPeripheral(peripheral); }

  // --- kernel heap budget (kernels track their arena bytes here; exceeding the board's
  // RAM fails the allocation rather than the board) ---
  Status ReserveRam(uint64_t bytes);
  void ReleaseRam(uint64_t bytes);
  uint64_t ram_in_use() const { return ram_in_use_; }

  // Deterministic kernel-internal jitter (tick phase, allocator placement).
  Rng& rng() { return rng_; }

  TargetEnv& env() { return env_; }
  const FirmwareImage& image() const { return image_; }

  // Total coverage events and instrumented events since boot (tests, overhead bench).
  uint64_t cov_events() const { return cov_events_; }
  uint64_t cov_instrumented_events() const { return cov_instrumented_events_; }

 private:
  TargetEnv& env_;
  const FirmwareImage& image_;
  CovRingLayout ring_;
  Rng rng_;

  // module-name pointer -> layout (module names are string literals, so pointer identity
  // is a valid cache key; a miss falls back to by-value lookup).
  std::unordered_map<const void*, const ModuleLayout*> layout_cache_;

  bool cov_overflow_pending_ = false;

  // Per-resume-window caches (see BeginResumeWindow); valid_* gates the RAM read.
  bool bank_valid_ = false;
  uint32_t active_bank_ = 0;
  bool dropped_valid_ = false;
  uint32_t dropped_ = 0;
  bool current_call_valid_ = false;
  uint32_t current_call_ = 0;

  uint64_t ram_in_use_ = 0;
  uint64_t cov_events_ = 0;
  uint64_t cov_instrumented_events_ = 0;
};

}  // namespace eof

#endif  // SRC_KERNEL_KERNEL_CONTEXT_H_
