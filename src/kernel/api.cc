#include "src/kernel/api.h"

#include "src/common/strings.h"

namespace eof {

const char* ArgKindName(ArgKind kind) {
  switch (kind) {
    case ArgKind::kScalar:
      return "scalar";
    case ArgKind::kFlags:
      return "flags";
    case ArgKind::kResource:
      return "resource";
    case ArgKind::kBuffer:
      return "buffer";
    case ArgKind::kString:
      return "string";
    case ArgKind::kLen:
      return "len";
  }
  return "?";
}

ArgSpec ArgSpec::Scalar(std::string name, unsigned bits, uint64_t min, uint64_t max) {
  ArgSpec spec;
  spec.name = std::move(name);
  spec.kind = ArgKind::kScalar;
  spec.bits = bits;
  spec.min = min;
  spec.max = max;
  return spec;
}

ArgSpec ArgSpec::Flags(std::string name, std::vector<uint64_t> values, bool combinable) {
  ArgSpec spec;
  spec.name = std::move(name);
  spec.kind = ArgKind::kFlags;
  spec.flag_values = std::move(values);
  spec.combinable = combinable;
  return spec;
}

ArgSpec ArgSpec::Resource(std::string name, std::string kind, bool optional_null) {
  ArgSpec spec;
  spec.name = std::move(name);
  spec.kind = ArgKind::kResource;
  spec.resource_kind = std::move(kind);
  spec.optional_null = optional_null;
  return spec;
}

ArgSpec ArgSpec::Buffer(std::string name, uint64_t min_len, uint64_t max_len) {
  ArgSpec spec;
  spec.name = std::move(name);
  spec.kind = ArgKind::kBuffer;
  spec.buf_min = min_len;
  spec.buf_max = max_len;
  return spec;
}

ArgSpec ArgSpec::String(std::string name, std::vector<std::string> candidates) {
  ArgSpec spec;
  spec.name = std::move(name);
  spec.kind = ArgKind::kString;
  spec.string_set = std::move(candidates);
  return spec;
}

ArgSpec ArgSpec::Len(std::string name, int buffer_index) {
  ArgSpec spec;
  spec.name = std::move(name);
  spec.kind = ArgKind::kLen;
  spec.len_of = buffer_index;
  return spec;
}

Result<uint32_t> ApiRegistry::Register(ApiSpec spec, ApiFn fn) {
  if (by_name_.count(spec.name) != 0) {
    return AlreadyExistsError(StrFormat("API '%s' already registered", spec.name.c_str()));
  }
  for (size_t i = 0; i < spec.args.size(); ++i) {
    const ArgSpec& arg = spec.args[i];
    if (arg.kind == ArgKind::kLen &&
        (arg.len_of < 0 || static_cast<size_t>(arg.len_of) >= spec.args.size() ||
         (spec.args[static_cast<size_t>(arg.len_of)].kind != ArgKind::kBuffer &&
          spec.args[static_cast<size_t>(arg.len_of)].kind != ArgKind::kString))) {
      return InvalidArgumentError(StrFormat("API '%s' arg %zu: len_of must reference a buffer",
                                            spec.name.c_str(), i));
    }
    if (arg.kind == ArgKind::kFlags && arg.flag_values.empty()) {
      return InvalidArgumentError(
          StrFormat("API '%s' arg '%s': empty flag set", spec.name.c_str(), arg.name.c_str()));
    }
    if (arg.kind == ArgKind::kResource && arg.resource_kind.empty()) {
      return InvalidArgumentError(StrFormat("API '%s' arg '%s': resource kind missing",
                                            spec.name.c_str(), arg.name.c_str()));
    }
  }
  uint32_t id = static_cast<uint32_t>(specs_.size());
  spec.id = id;
  by_name_[spec.name] = id;
  specs_.push_back(std::move(spec));
  fns_.push_back(std::move(fn));
  return id;
}

const ApiSpec* ApiRegistry::FindById(uint32_t id) const {
  if (id >= specs_.size()) {
    return nullptr;
  }
  return &specs_[id];
}

const ApiSpec* ApiRegistry::FindByName(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return nullptr;
  }
  return &specs_[it->second];
}

Result<int64_t> ApiRegistry::Call(KernelContext& ctx, uint32_t id,
                                  const std::vector<ArgValue>& args) const {
  if (id >= specs_.size()) {
    return NotFoundError(StrFormat("no API with id %u", id));
  }
  if (args.size() != specs_[id].args.size()) {
    return InvalidArgumentError(StrFormat("API '%s' expects %zu args, got %zu",
                                          specs_[id].name.c_str(), specs_[id].args.size(),
                                          args.size()));
  }
  return fns_[id](ctx, args);
}

}  // namespace eof
