// Slot-reusing handle table, the allocation pattern embedded kernels actually use for
// object pools: freed slots are recycled immediately. Handles encode (slot | generation)
// so a stale handle normally fails lookup — but FindSlotRaw() exposes the recycled-slot
// semantics kernels with weaker checks exhibit, which several planted bugs rely on.

#ifndef SRC_KERNEL_HANDLE_TABLE_H_
#define SRC_KERNEL_HANDLE_TABLE_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace eof {

template <typename T>
class HandleTable {
 public:
  explicit HandleTable(size_t max_slots = 256) : max_slots_(max_slots) {}

  // Inserts `value`; returns its handle, or 0 when the table is full.
  int64_t Insert(T value) {
    size_t slot = slots_.size();
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].occupied) {
        slot = i;
        break;
      }
    }
    if (slot == slots_.size()) {
      if (slots_.size() >= max_slots_) {
        return 0;
      }
      slots_.push_back(Slot{});
    }
    Slot& s = slots_[slot];
    s.occupied = true;
    ++s.generation;
    s.value = std::move(value);
    ++live_;
    return MakeHandle(slot, s.generation);
  }

  // Live object for `handle`, or nullptr for stale/invalid handles.
  T* Find(int64_t handle) {
    Slot* slot = Resolve(handle);
    return slot != nullptr ? &*slot->value : nullptr;
  }
  const T* Find(int64_t handle) const {
    return const_cast<HandleTable*>(this)->Find(handle);
  }

  // The object currently occupying the slot `handle` points at, regardless of generation —
  // i.e. what a dangling pointer would actually reference after the slot was recycled.
  // Returns nullptr only when the slot is empty or out of range.
  T* FindSlotRaw(int64_t handle) {
    size_t slot_index = SlotIndex(handle);
    if (slot_index >= slots_.size() || !slots_[slot_index].occupied) {
      return nullptr;
    }
    return &*slots_[slot_index].value;
  }

  // True when `handle` names a slot that was valid once but has since been freed or
  // recycled (the stale-pointer situation).
  bool IsStale(int64_t handle) const {
    size_t slot_index = SlotIndex(handle);
    if (handle == 0 || slot_index >= slots_.size()) {
      return false;
    }
    const Slot& slot = slots_[slot_index];
    return !slot.occupied || slot.generation != Generation(handle);
  }

  // Releases `handle`; returns false for stale/invalid handles.
  bool Remove(int64_t handle) {
    Slot* slot = Resolve(handle);
    if (slot == nullptr) {
      return false;
    }
    slot->occupied = false;
    slot->value.reset();
    --live_;
    return true;
  }

  size_t live() const { return live_; }
  size_t capacity() const { return max_slots_; }

  // Iterates live objects: fn(handle, T&).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].occupied) {
        fn(MakeHandle(i, slots_[i].generation), *slots_[i].value);
      }
    }
  }

 private:
  struct Slot {
    bool occupied = false;
    uint32_t generation = 0;
    std::optional<T> value;
  };

  static int64_t MakeHandle(size_t slot, uint32_t generation) {
    return static_cast<int64_t>((static_cast<uint64_t>(generation) << 20) |
                                (static_cast<uint64_t>(slot) + 1));
  }
  static size_t SlotIndex(int64_t handle) {
    uint64_t low = static_cast<uint64_t>(handle) & 0xfffff;
    return low == 0 ? SIZE_MAX : static_cast<size_t>(low - 1);
  }
  static uint32_t Generation(int64_t handle) {
    return static_cast<uint32_t>(static_cast<uint64_t>(handle) >> 20);
  }

  Slot* Resolve(int64_t handle) {
    size_t slot_index = SlotIndex(handle);
    if (handle <= 0 || slot_index >= slots_.size()) {
      return nullptr;
    }
    Slot& slot = slots_[slot_index];
    if (!slot.occupied || slot.generation != Generation(handle)) {
      return nullptr;
    }
    return &slot;
  }

  size_t max_slots_;
  std::vector<Slot> slots_;
  size_t live_ = 0;
};

}  // namespace eof

#endif  // SRC_KERNEL_HANDLE_TABLE_H_
