// Kernel trap signals. These are *simulator control flow*, not error handling: when a
// target kernel panics, asserts, or wedges, the corresponding signal unwinds out of the
// API call into the agent executor, which then drives the board into the matching
// hardware-observable state (fault latch, hang latch). Host-side code never sees these
// types — it observes only UART text, frozen PCs, and exception-handler breakpoints, just
// as the paper's monitors do.

#ifndef SRC_KERNEL_KERNEL_FAULT_H_
#define SRC_KERNEL_KERNEL_FAULT_H_

#include <string>

namespace eof {

// A kernel panic / bus fault / usage fault: control vectors to the OS exception handler
// and the core freezes there. Detected by the exception monitor (breakpoint on the
// handler) or, failing that, by the PC-stall watchdog.
struct KernelPanicSignal {
  std::string message;     // e.g. "BUG: unexpected stop: ..."
  std::string backtrace;   // rendered stack-frame text for the UART banner
};

// A failed kernel assertion: the OS prints the assertion text and parks in a tight loop
// (no exception vector). Detected by the log monitor; liveness-wise it is a hang.
struct KernelAssertSignal {
  std::string message;  // e.g. "(obj != RT_NULL) assertion failed at rt_object_init"
};

// A wedge with no output at all (infinite polling loop): only the PC-stall watchdog sees
// this one.
struct KernelHangSignal {
  std::string message;  // for test introspection only; never reaches the UART
};

}  // namespace eof

#endif  // SRC_KERNEL_KERNEL_FAULT_H_
