// Layout of the in-RAM coverage ring shared between target instrumentation (writer) and
// the host fuzzer (reader). Mirrors the paper's write_comp_data() buffer, extended for
// per-call attribution and double-buffered drains (layout v2):
//
//   +0   u32  version magic ("EOF2") — written by the target at boot; the host
//             validates it at deploy time and rejects old/corrupt layouts loudly
//   +4   u32  per-bank capacity — written by the target; must match the host's
//   +8   u32  current_call — index of the program call now executing (agent-published)
//   +12  u32  active_bank — bit 0: which bank the target appends to; bit 8: the
//             host-set bank-flip enable (see below). The target owns bit 0, the
//             host owns bit 8, and each preserves the other's bit on write.
//   +16  bank 0:  u32 count, u32 dropped, then capacity x 12-byte entries
//   ...  bank 1:  same layout
//
// Each entry is {u64 edge_id, u32 call_index}. Two banks double-buffer the drain:
// with bank flips enabled (host sets kBankFlipEnableBit while arming breakpoints),
// the target services its own ring-full condition at the next call boundary — it
// parks the full bank and flips onto the other one, provided the host has already
// collected it (count == 0) — and only halts at _kcmp_buf_full for backpressure,
// when both banks hold undrained entries. The host collects parked banks at the
// next stop, oldest (parked) bank first. Flips happen at exactly the call boundary
// where a halt-mode target would have paused for a drain, so the captured entry
// sequence — including mid-call overflow drops — is bit-identical in both modes;
// only the number of host round trips differs.

#ifndef SRC_KERNEL_COV_RING_H_
#define SRC_KERNEL_COV_RING_H_

#include <cstdint>

namespace eof {

struct CovRingLayout {
  uint64_t ram_offset = 0;  // offset of the global header within board RAM
  uint32_t capacity = 0;    // max entries per bank

  static constexpr uint32_t kVersionMagic = 0x454F4632;  // "EOF2" (v2, attributed)

  // Global header (16 bytes).
  static constexpr uint64_t kVersionOffset = 0;      // u32: kVersionMagic
  static constexpr uint64_t kCapacityOffset = 4;     // u32: per-bank capacity
  static constexpr uint64_t kCurrentCallOffset = 8;  // u32: executing call index
  static constexpr uint64_t kActiveBankOffset = 12;  // u32: bank bit + flip-enable bit
  static constexpr uint64_t kGlobalHeaderBytes = 16;

  // Fields of the active_bank word.
  static constexpr uint32_t kActiveBankMask = 1;        // target-owned: bank being filled
  static constexpr uint32_t kBankFlipEnableBit = 0x100;  // host-owned: self-service flips

  // Per-bank header (8 bytes) followed by the entries.
  static constexpr uint64_t kCountOffset = 0;    // u32: valid entries in the bank
  static constexpr uint64_t kDroppedOffset = 4;  // u32: entries dropped since last drain
  static constexpr uint64_t kBankHeaderBytes = 8;
  static constexpr uint64_t kEntryBytes = 12;  // u64 edge_id + u32 call_index

  uint64_t BankBytes() const {
    return kBankHeaderBytes + static_cast<uint64_t>(capacity) * kEntryBytes;
  }
  // RAM offset of bank `bank`'s header (count/dropped words).
  uint64_t BankOffset(uint32_t bank) const {
    return ram_offset + kGlobalHeaderBytes + static_cast<uint64_t>(bank) * BankBytes();
  }
  // RAM offset of entry `index` within bank `bank`.
  uint64_t EntryOffset(uint32_t bank, uint32_t index) const {
    return BankOffset(bank) + kBankHeaderBytes + static_cast<uint64_t>(index) * kEntryBytes;
  }
  uint64_t SizeBytes() const { return kGlobalHeaderBytes + 2 * BankBytes(); }
};

}  // namespace eof

#endif  // SRC_KERNEL_COV_RING_H_
