// Layout of the in-RAM coverage ring shared between target instrumentation (writer) and
// the host fuzzer (reader). Mirrors the paper's write_comp_data() buffer: a header with a
// valid-entry count and a drop counter, followed by fixed-width entries.

#ifndef SRC_KERNEL_COV_RING_H_
#define SRC_KERNEL_COV_RING_H_

#include <cstdint>

namespace eof {

struct CovRingLayout {
  uint64_t ram_offset = 0;  // offset of the header within board RAM
  uint32_t capacity = 0;    // max entries

  static constexpr uint64_t kCountOffset = 0;    // u32: valid entries
  static constexpr uint64_t kDroppedOffset = 4;  // u32: entries dropped since last drain
  static constexpr uint64_t kEntriesOffset = 8;  // u64 per entry

  uint64_t EntryOffset(uint32_t index) const {
    return ram_offset + kEntriesOffset + static_cast<uint64_t>(index) * 8;
  }
  uint64_t SizeBytes() const { return kEntriesOffset + static_cast<uint64_t>(capacity) * 8; }
};

}  // namespace eof

#endif  // SRC_KERNEL_COV_RING_H_
