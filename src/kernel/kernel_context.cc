#include "src/kernel/kernel_context.h"

#include "src/common/hash.h"
#include "src/common/strings.h"
#include "src/hw/timing.h"
#include "src/kernel/costs.h"

namespace eof {

KernelContext::KernelContext(TargetEnv& env, const FirmwareImage& image, CovRingLayout ring)
    : env_(env),
      image_(image),
      ring_(ring),
      rng_(Fnv1a(image.os_name(), Fnv1a(env.spec().name))) {}

void KernelContext::CovBucket(const EdgeSite& site, uint64_t bucket) {
  ++cov_events_;
  // Resolve the site's synthetic basic-block address.
  const ModuleLayout* layout = nullptr;
  auto it = layout_cache_.find(site.module);
  if (it != layout_cache_.end()) {
    layout = it->second;
  } else {
    for (const ModuleLayout& candidate : image_.modules()) {
      if (candidate.module == site.module) {
        layout = &candidate;
        break;
      }
    }
    layout_cache_[site.module] = layout;
  }
  if (layout == nullptr) {
    return;  // module not declared in the image: invisible to every tool
  }
  if (bucket >= kMaxCovBuckets) {
    bucket = kMaxCovBuckets - 1;
  }
  // Knuth-hash the bucket into the site id so buckets land on distinct synthetic blocks.
  uint64_t edge_id = site.id + bucket * 2654435761ULL;
  uint64_t bb_address = FirmwareImage::BasicBlockAddress(*layout, edge_id);
  // The block executed whether or not instrumentation is compiled in — hardware
  // breakpoints (GDBFuzz) observe it either way.
  env_.OnBasicBlockExecuted(bb_address);

  if (!image_.instrumentation().Covers(site.module)) {
    return;
  }
  ++cov_instrumented_events_;
  env_.ConsumeCycles(kCovCallbackCycles);
  if (image_.instrumentation().semihost) {
    // SHIFT-style semihosting: every event traps to the host debugger.
    env_.ConsumeCycles(kSemihostTrapCost * env_.spec().clock_mhz);
  }
  if (ring_.capacity == 0) {
    return;
  }
  auto count_or = env_.RamReadU32(ring_.ram_offset + CovRingLayout::kCountOffset);
  if (!count_or.ok()) {
    return;
  }
  uint32_t count = count_or.value();
  if (count >= ring_.capacity) {
    auto dropped_or = env_.RamReadU32(ring_.ram_offset + CovRingLayout::kDroppedOffset);
    uint32_t dropped = dropped_or.ok() ? dropped_or.value() : 0;
    (void)env_.RamWriteU32(ring_.ram_offset + CovRingLayout::kDroppedOffset, dropped + 1);
    cov_overflow_pending_ = true;
    return;
  }
  (void)env_.RamWriteU64(ring_.EntryOffset(count), bb_address);
  (void)env_.RamWriteU32(ring_.ram_offset + CovRingLayout::kCountOffset, count + 1);
}

void KernelContext::YieldDelay() {
  // The settling delay between test-case calls: ticks, idle task, housekeeping threads.
  uint64_t cycles = kYieldBaseCycles;
  // Housekeeping runs the instrumented build too; its slowdown scales with how much of
  // the image carries callbacks.
  uint64_t extra = image_.instrumented_sites() * kCovYieldCyclesPerSite;
  if (image_.instrumentation().semihost) {
    extra *= 20;  // every housekeeping callback traps to the debugger
  }
  env_.ConsumeCycles(cycles + extra);
}

void KernelContext::Panic(const std::string& message, const std::string& backtrace) {
  // The panic banner races the fault latch on real boards but the first lines make it out.
  LogLine(message);
  if (!backtrace.empty()) {
    LogLine(backtrace);
  }
  env_.ConsumeCycles(200);
  throw KernelPanicSignal{message, backtrace};
}

void KernelContext::AssertFail(const std::string& message) {
  LogLine(message);
  env_.ConsumeCycles(100);
  throw KernelAssertSignal{message};
}

void KernelContext::Hang(const std::string& message) {
  env_.ConsumeCycles(100);
  throw KernelHangSignal{message};
}

void KernelContext::LogLine(const std::string& line) {
  env_.ConsumeCycles(40 + 8 * line.size());  // polled UART transmit is slow
  env_.uart().WriteLine(line);
}

Status KernelContext::ReserveRam(uint64_t bytes) {
  // Keep headroom for stacks and the agent's own blocks.
  uint64_t budget = env_.spec().ram_bytes * 3 / 4;
  if (ram_in_use_ + bytes > budget) {
    return ResourceExhaustedError(
        StrFormat("kernel heap exhausted: %llu in use, %llu requested, %llu budget",
                  static_cast<unsigned long long>(ram_in_use_),
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(budget)));
  }
  ram_in_use_ += bytes;
  return OkStatus();
}

void KernelContext::ReleaseRam(uint64_t bytes) {
  ram_in_use_ = bytes > ram_in_use_ ? 0 : ram_in_use_ - bytes;
}

}  // namespace eof
