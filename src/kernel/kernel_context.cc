#include "src/kernel/kernel_context.h"

#include "src/common/hash.h"
#include "src/common/strings.h"
#include "src/hw/timing.h"
#include "src/kernel/costs.h"

namespace eof {

KernelContext::KernelContext(TargetEnv& env, const FirmwareImage& image, CovRingLayout ring)
    : env_(env),
      image_(image),
      ring_(ring),
      rng_(Fnv1a(image.os_name(), Fnv1a(env.spec().name))) {
  if (ring_.capacity != 0) {
    // Stamp the v2 ring header so the host can validate layout agreement at deploy
    // time: version magic + the capacity this boot will append against. The rest of
    // the header (current_call, active_bank, bank counters) starts zeroed with RAM.
    (void)env_.RamWriteU32(ring_.ram_offset + CovRingLayout::kVersionOffset,
                           CovRingLayout::kVersionMagic);
    (void)env_.RamWriteU32(ring_.ram_offset + CovRingLayout::kCapacityOffset,
                           ring_.capacity);
  }
}

void KernelContext::SetCurrentCall(uint32_t call_index) {
  if (ring_.capacity == 0) {
    return;
  }
  if (current_call_valid_ && current_call_ == call_index) {
    return;
  }
  current_call_ = call_index;
  current_call_valid_ = true;
  (void)env_.RamWriteU32(ring_.ram_offset + CovRingLayout::kCurrentCallOffset, call_index);
}

void KernelContext::BeginResumeWindow() {
  bank_valid_ = false;
  dropped_valid_ = false;
  // current_call stays valid: only this context writes it, so the cache cannot
  // go stale across a host drain.
}

void KernelContext::CovBucket(const EdgeSite& site, uint64_t bucket) {
  ++cov_events_;
  // Resolve the site's synthetic basic-block address.
  const ModuleLayout* layout = nullptr;
  auto it = layout_cache_.find(site.module);
  if (it != layout_cache_.end()) {
    layout = it->second;
  } else {
    for (const ModuleLayout& candidate : image_.modules()) {
      if (candidate.module == site.module) {
        layout = &candidate;
        break;
      }
    }
    layout_cache_[site.module] = layout;
  }
  if (layout == nullptr) {
    return;  // module not declared in the image: invisible to every tool
  }
  if (bucket >= kMaxCovBuckets) {
    bucket = kMaxCovBuckets - 1;
  }
  // Knuth-hash the bucket into the site id so buckets land on distinct synthetic blocks.
  uint64_t edge_id = site.id + bucket * 2654435761ULL;
  uint64_t bb_address = FirmwareImage::BasicBlockAddress(*layout, edge_id);
  // The block executed whether or not instrumentation is compiled in — hardware
  // breakpoints (GDBFuzz) observe it either way.
  env_.OnBasicBlockExecuted(bb_address);

  if (!image_.instrumentation().Covers(site.module)) {
    return;
  }
  ++cov_instrumented_events_;
  env_.ConsumeCycles(kCovCallbackCycles);
  if (image_.instrumentation().semihost) {
    // SHIFT-style semihosting: every event traps to the host debugger.
    env_.ConsumeCycles(kSemihostTrapCost * env_.spec().clock_mhz);
  }
  if (ring_.capacity == 0) {
    return;
  }
  // The host flips the active bank (double-buffered drain) only while the target is
  // stopped, so one read per resume window is coherent.
  if (!bank_valid_) {
    auto bank_or = env_.RamReadU32(ring_.ram_offset + CovRingLayout::kActiveBankOffset);
    active_bank_ = bank_or.ok() ? (bank_or.value() & 1) : 0;
    bank_valid_ = true;
  }
  uint64_t bank_base = ring_.BankOffset(active_bank_);
  auto count_or = env_.RamReadU32(bank_base + CovRingLayout::kCountOffset);
  if (!count_or.ok()) {
    return;
  }
  uint32_t count = count_or.value();
  if (count >= ring_.capacity) {
    // Saturating drop counter, read from RAM at most once per resume window (the
    // host zeroes it only between windows). Saturation keeps a pathological run
    // from wrapping the u32 back to "nothing dropped".
    if (!dropped_valid_) {
      auto dropped_or = env_.RamReadU32(bank_base + CovRingLayout::kDroppedOffset);
      dropped_ = dropped_or.ok() ? dropped_or.value() : 0;
      dropped_valid_ = true;
    }
    if (dropped_ < UINT32_MAX) {
      ++dropped_;
    }
    (void)env_.RamWriteU32(bank_base + CovRingLayout::kDroppedOffset, dropped_);
    cov_overflow_pending_ = true;
    return;
  }
  uint64_t entry = ring_.EntryOffset(active_bank_, count);
  (void)env_.RamWriteU64(entry, bb_address);
  (void)env_.RamWriteU32(entry + 8, current_call_);
  (void)env_.RamWriteU32(bank_base + CovRingLayout::kCountOffset, count + 1);
}

bool KernelContext::TryBankFlip() {
  if (ring_.capacity == 0) {
    return false;
  }
  uint64_t word_offset = ring_.ram_offset + CovRingLayout::kActiveBankOffset;
  auto word_or = env_.RamReadU32(word_offset);
  if (!word_or.ok() || (word_or.value() & CovRingLayout::kBankFlipEnableBit) == 0) {
    return false;
  }
  uint32_t active = word_or.value() & CovRingLayout::kActiveBankMask;
  uint32_t parked = active ^ 1;
  auto parked_count =
      env_.RamReadU32(ring_.BankOffset(parked) + CovRingLayout::kCountOffset);
  if (!parked_count.ok() || parked_count.value() != 0) {
    return false;  // host has not collected the parked bank yet: backpressure
  }
  // Park the full bank and append into the collected one. The host owns bit 8;
  // preserve it (and any future host-owned bits) by toggling only the bank bit.
  (void)env_.RamWriteU32(word_offset, word_or.value() ^ CovRingLayout::kActiveBankMask);
  env_.ConsumeCycles(kListOpCycles);
  active_bank_ = parked;
  bank_valid_ = true;
  // The cached dropped counter described the bank just parked; the fresh bank's
  // counter was zeroed by the host's last drain and must be re-read on first drop.
  dropped_valid_ = false;
  return true;
}

void KernelContext::YieldDelay() {
  // The settling delay between test-case calls: ticks, idle task, housekeeping threads.
  uint64_t cycles = kYieldBaseCycles;
  // Housekeeping runs the instrumented build too; its slowdown scales with how much of
  // the image carries callbacks.
  uint64_t extra = image_.instrumented_sites() * kCovYieldCyclesPerSite;
  if (image_.instrumentation().semihost) {
    extra *= 20;  // every housekeeping callback traps to the debugger
  }
  env_.ConsumeCycles(cycles + extra);
}

void KernelContext::Panic(const std::string& message, const std::string& backtrace) {
  // The panic banner races the fault latch on real boards but the first lines make it out.
  LogLine(message);
  if (!backtrace.empty()) {
    LogLine(backtrace);
  }
  env_.ConsumeCycles(200);
  throw KernelPanicSignal{message, backtrace};
}

void KernelContext::AssertFail(const std::string& message) {
  LogLine(message);
  env_.ConsumeCycles(100);
  throw KernelAssertSignal{message};
}

void KernelContext::Hang(const std::string& message) {
  env_.ConsumeCycles(100);
  throw KernelHangSignal{message};
}

void KernelContext::LogLine(const std::string& line) {
  env_.ConsumeCycles(40 + 8 * line.size());  // polled UART transmit is slow
  env_.uart().WriteLine(line);
}

Status KernelContext::ReserveRam(uint64_t bytes) {
  // Keep headroom for stacks and the agent's own blocks.
  uint64_t budget = env_.spec().ram_bytes * 3 / 4;
  if (ram_in_use_ + bytes > budget) {
    return ResourceExhaustedError(
        StrFormat("kernel heap exhausted: %llu in use, %llu requested, %llu budget",
                  static_cast<unsigned long long>(ram_in_use_),
                  static_cast<unsigned long long>(bytes),
                  static_cast<unsigned long long>(budget)));
  }
  ram_in_use_ += bytes;
  return OkStatus();
}

void KernelContext::ReleaseRam(uint64_t bytes) {
  ram_in_use_ = bytes > ram_in_use_ ? 0 : ram_in_use_ - bytes;
}

}  // namespace eof
