// API registry: the machine-readable ground truth about each embedded OS's API surface.
//
// Every kernel registers its callable APIs here with full type information — argument
// kinds, value ranges, flag sets, resource production/consumption. Two consumers exist:
//   * the agent executor dispatches decoded test-case calls through the registry, and
//   * the spec miner (src/spec/spec_miner.h) emits Syzlang from it, playing the role of
//     the paper's GPT-4o pass over headers/docs (§4.5, "LLM-based Input Generation").

#ifndef SRC_KERNEL_API_H_
#define SRC_KERNEL_API_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace eof {

class KernelContext;

enum class ArgKind : uint8_t {
  kScalar,    // plain integer with an optional [min, max] range
  kFlags,     // OR-combination / one-of a declared value set
  kResource,  // handle produced by an earlier call (task id, queue handle, ...)
  kBuffer,    // byte blob (the fuzzer controls contents and length)
  kString,    // NUL-terminated text, optionally from a candidate set (device names, keys)
  kLen,       // length of a sibling buffer argument
};

const char* ArgKindName(ArgKind kind);

struct ArgSpec {
  std::string name;
  ArgKind kind = ArgKind::kScalar;

  // kScalar:
  unsigned bits = 32;
  uint64_t min = 0;
  uint64_t max = UINT64_MAX;

  // kFlags: the declared values; `combinable` allows OR-ing several.
  std::vector<uint64_t> flag_values;
  // Additional values only the LLM-mined (extended) specs know about — header-only
  // constants hand-written baseline specs typically miss. Baseline generators ignore them.
  std::vector<uint64_t> extended_flag_values;
  bool combinable = false;

  // kResource:
  std::string resource_kind;
  bool optional_null = false;  // 0 is an accepted "no resource" value

  // kBuffer / kString:
  uint64_t buf_min = 0;
  uint64_t buf_max = 256;
  std::vector<std::string> string_set;  // kString candidates ("" = arbitrary text)

  // kLen: index of the sibling buffer argument this is the length of.
  int len_of = -1;

  // --- convenience constructors ---
  static ArgSpec Scalar(std::string name, unsigned bits, uint64_t min, uint64_t max);
  static ArgSpec Flags(std::string name, std::vector<uint64_t> values, bool combinable = false);
  static ArgSpec Resource(std::string name, std::string kind, bool optional_null = false);
  static ArgSpec Buffer(std::string name, uint64_t min_len, uint64_t max_len);
  static ArgSpec String(std::string name, std::vector<std::string> candidates = {});
  static ArgSpec Len(std::string name, int buffer_index);
};

struct ApiSpec {
  uint32_t id = 0;  // assigned by the registry at registration time
  std::string name;        // "xTaskCreate", "rt_event_send", ...
  std::string subsystem;   // coverage-module suffix: "task", "queue", "heap", ...
  std::string doc;         // one-line description (feeds the generated Syzlang comment)
  std::vector<ArgSpec> args;
  std::string produces;    // resource kind returned on success ("" = plain status code)
  bool is_pseudo = false;  // pseudo-syscall: an op sequence behind one entry point
  // Extended-tier specs come from the LLM/miner pass over headers and docs (§4.5); the
  // hand-written baseline spec sets (what Tardis-style tools ship) cover only the base
  // tier. EOF and EOF-nf use both tiers.
  bool extended_spec = false;
};

// A runtime argument value: scalar word and, for buffer/string kinds, the payload bytes.
struct ArgValue {
  uint64_t scalar = 0;
  std::vector<uint8_t> bytes;

  std::string AsString() const {
    return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  }
};

// API entry point. Returns a kernel status / handle value (OS-specific conventions).
// May throw KernelPanicSignal / KernelAssertSignal / KernelHangSignal.
using ApiFn = std::function<int64_t(KernelContext&, const std::vector<ArgValue>&)>;

class ApiRegistry {
 public:
  // Registers `spec` with its implementation; assigns and returns the API id.
  Result<uint32_t> Register(ApiSpec spec, ApiFn fn);

  const ApiSpec* FindById(uint32_t id) const;
  const ApiSpec* FindByName(const std::string& name) const;

  // Dispatches a call. Unknown ids or arity mismatches are *rejected by the agent* with an
  // error return (the paper's agent validates before dispatch), never a crash.
  Result<int64_t> Call(KernelContext& ctx, uint32_t id,
                       const std::vector<ArgValue>& args) const;

  const std::vector<ApiSpec>& all() const { return specs_; }
  size_t size() const { return specs_.size(); }

 private:
  std::vector<ApiSpec> specs_;
  std::vector<ApiFn> fns_;
  std::unordered_map<std::string, uint32_t> by_name_;
};

}  // namespace eof

#endif  // SRC_KERNEL_API_H_
