#include "src/core/deployment.h"

#include "src/common/byteio.h"
#include "src/common/strings.h"
#include "src/kernel/os.h"

namespace eof {

Result<std::unique_ptr<Deployment>> Deployment::Create(const DeployOptions& options) {
  ASSIGN_OR_RETURN(OsInfo info, OsRegistry::Instance().Find(options.os_name));
  std::string board_name = options.board_name.empty() ? info.default_board : options.board_name;
  ASSIGN_OR_RETURN(BoardSpec spec, BoardSpecByName(board_name));

  ImageBuildOptions build;
  build.os_name = options.os_name;
  build.instrumentation = options.instrumentation;
  build.seed = options.seed;
  ASSIGN_OR_RETURN(std::shared_ptr<FirmwareImage> image, BuildImage(spec, build));

  auto deployment = std::unique_ptr<Deployment>(new Deployment());
  deployment->image_ = image;
  deployment->ram_base_ = spec.ram_base;
  deployment->ring_.ram_offset = kCovRingOffset;
  deployment->ring_.capacity = CovRingCapacityFor(spec.ram_bytes);
  deployment->board_ = std::make_unique<Board>(spec);
  deployment->board_->InstallImage(image);
  deployment->port_ = std::make_unique<DebugPort>(deployment->board_.get());

  RETURN_IF_ERROR(deployment->port_->Connect());
  RETURN_IF_ERROR(deployment->ReflashAndReboot());
  return deployment;
}

Status Deployment::ReflashAndReboot() {
  for (const Partition& part : image_->partition_table().partitions) {
    auto payload = image_->PayloadOf(part.name);
    if (!payload.ok()) {
      continue;  // raw partitions (nvs) carry no payload
    }
    RETURN_IF_ERROR(port_->FlashPartition(part.offset, payload.value()));
  }
  return port_->ResetTarget();
}

Result<uint64_t> Deployment::SymbolAddress(const std::string& symbol) const {
  return image_->symbols().AddressOf(symbol);
}

Status Deployment::WriteTestCase(const std::vector<uint8_t>& encoded) {
  if (encoded.size() > kMailboxMaxBytes) {
    return InvalidArgumentError(StrFormat("test case of %zu bytes exceeds the mailbox",
                                          encoded.size()));
  }
  uint64_t base = ram_base_ + kMailboxOffset;
  // Payload first, then length, then the ready flag — the flag write publishes the case.
  RETURN_IF_ERROR(port_->WriteMem(base + kMailboxDataOffset, encoded));
  ByteWriter header;
  header.PutU32(1);  // flag
  header.PutU32(static_cast<uint32_t>(encoded.size()));
  return port_->WriteMem(base + kMailboxFlagOffset, header.bytes());
}

Result<AgentStatusView> Deployment::ReadAgentStatus() {
  ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                   port_->ReadMem(ram_base_ + kStatusBlockOffset, kStatusBlockSize));
  ByteReader reader(raw);
  AgentStatusView view;
  view.state = static_cast<AgentState>(reader.GetU32());
  view.last_error = static_cast<AgentError>(reader.GetU32());
  view.calls_done = reader.GetU32();
  view.progs_done = reader.GetU32();
  view.total_calls = reader.GetU32();
  return view;
}

Result<std::vector<uint64_t>> Deployment::DrainCoverage(uint32_t* dropped) {
  uint64_t ring_base = ram_base_ + ring_.ram_offset;
  ASSIGN_OR_RETURN(std::vector<uint8_t> header, port_->ReadMem(ring_base, 8));
  ByteReader reader(header);
  uint32_t count = reader.GetU32();
  uint32_t drop_count = reader.GetU32();
  if (dropped != nullptr) {
    *dropped = drop_count;
  }
  std::vector<uint64_t> entries;
  if (count > ring_.capacity) {
    count = ring_.capacity;  // a scribbled header must not drive a huge read
  }
  if (count > 0) {
    ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                     port_->ReadMem(ring_base + CovRingLayout::kEntriesOffset,
                                    static_cast<uint64_t>(count) * 8));
    ByteReader entry_reader(raw);
    entries.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      entries.push_back(entry_reader.GetU64());
    }
  }
  // Reset the header (count and dropped).
  ByteWriter zero;
  zero.PutU32(0);
  zero.PutU32(0);
  RETURN_IF_ERROR(port_->WriteMem(ring_base, zero.bytes()));
  return entries;
}

}  // namespace eof
