#include "src/core/deployment.h"

#include <algorithm>

#include "src/common/byteio.h"
#include "src/common/hash.h"
#include "src/common/strings.h"
#include "src/kernel/os.h"

namespace eof {

Result<std::unique_ptr<Deployment>> Deployment::Create(const DeployOptions& options) {
  ASSIGN_OR_RETURN(OsInfo info, OsRegistry::Instance().Find(options.os_name));
  std::string board_name = options.board_name.empty() ? info.default_board : options.board_name;
  ASSIGN_OR_RETURN(BoardSpec spec, BoardSpecByName(board_name));

  ImageBuildOptions build;
  build.os_name = options.os_name;
  build.instrumentation = options.instrumentation;
  build.seed = options.seed;
  ASSIGN_OR_RETURN(std::shared_ptr<FirmwareImage> image, BuildImage(spec, build));

  auto deployment = std::unique_ptr<Deployment>(new Deployment());
  deployment->image_ = image;
  deployment->ram_base_ = spec.ram_base;
  deployment->ring_.ram_offset = kCovRingOffset;
  deployment->ring_.capacity = CovRingCapacityFor(spec.ram_bytes);
  deployment->batched_ = options.batched_link;
  deployment->board_ = std::make_unique<Board>(spec);
  deployment->board_->InstallImage(image);
  deployment->telemetry_ = options.telemetry;
  deployment->port_ = std::make_unique<DebugPort>(
      deployment->board_.get(),
      options.telemetry != nullptr ? &options.telemetry->registry() : nullptr);

  RETURN_IF_ERROR(deployment->port_->Connect());
  RETURN_IF_ERROR(deployment->ReflashAndReboot());
  return deployment;
}

uint64_t Deployment::PayloadHash(const std::string& partition,
                                 const std::vector<uint8_t>& payload) {
  auto it = payload_hash_.find(partition);
  if (it != payload_hash_.end()) {
    return it->second;
  }
  uint64_t hash = Fnv1aBytes(payload.data(), payload.size());
  payload_hash_.emplace(partition, hash);
  return hash;
}

Status Deployment::ReflashAndRebootLegacy(uint64_t* programmed) {
  for (const Partition& part : image_->partition_table().partitions) {
    auto payload = image_->PayloadOf(part.name);
    if (!payload.ok()) {
      continue;  // raw partitions (nvs) carry no payload
    }
    RETURN_IF_ERROR(port_->FlashPartition(part.offset, payload.value()));
    *programmed += payload.value().size();
  }
  return port_->ResetTarget();
}

Status Deployment::ReflashAndReboot() {
  telemetry::Tracer::Span span;
  if (telemetry_ != nullptr) {
    span = telemetry_->tracer().Begin("reflash", port_->Now());
  }
  uint64_t programmed = 0;
  uint64_t skipped = 0;
  Status status = batched_ ? ReflashAndRebootBatched(&programmed, &skipped)
                           : ReflashAndRebootLegacy(&programmed);
  if (telemetry_ != nullptr) {
    telemetry_->tracer().End(span, port_->Now(), /*journal=*/true);
    if (status.ok() && batched_) {
      telemetry_->EmitEvent(port_->Now(), "delta_reflash",
                            {telemetry::EventField::Uint("programmed_bytes", programmed),
                             telemetry::EventField::Uint("skipped_bytes", skipped)});
    }
  }
  return status;
}

Status Deployment::ReflashAndRebootBatched(uint64_t* programmed, uint64_t* skipped) {
  uint64_t flash_base = board_->spec().flash_base;
  for (const Partition& part : image_->partition_table().partitions) {
    auto payload = image_->PayloadOf(part.name);
    if (!payload.ok()) {
      continue;  // raw partitions (nvs) carry no payload
    }
    const std::vector<uint8_t>& bytes = payload.value();
    // Delta reflash: prove the partition's on-flash content unchanged with a
    // target-assisted checksum (~KB/s-free: only the digest crosses the link) and
    // skip the 5 us/byte reprogram when it matches the payload hash. A checksum
    // failure (severed link) aborts the restore like a failed flash write would —
    // retrying with a blind reflash would only burn a second link timeout.
    ASSIGN_OR_RETURN(uint64_t on_flash,
                     port_->ChecksumMem(flash_base + part.offset, bytes.size()));
    if (on_flash == PayloadHash(part.name, bytes)) {
      port_->NoteFlashSkipped(bytes.size());
      *skipped += bytes.size();
      continue;
    }
    RETURN_IF_ERROR(port_->FlashPartition(part.offset, bytes));
    *programmed += bytes.size();
  }
  return port_->ResetTarget();
}

Result<uint64_t> Deployment::SymbolAddress(const std::string& symbol) const {
  return image_->symbols().AddressOf(symbol);
}

Status Deployment::WriteTestCase(const std::vector<uint8_t>& encoded) {
  if (encoded.size() > kMailboxMaxBytes) {
    return InvalidArgumentError(StrFormat("test case of %zu bytes exceeds the mailbox",
                                          encoded.size()));
  }
  uint64_t base = ram_base_ + kMailboxOffset;
  ByteWriter header;
  header.PutU32(1);  // flag
  header.PutU32(static_cast<uint32_t>(encoded.size()));
  if (!batched_) {
    // Payload first, then length, then the ready flag — the flag write publishes the case.
    RETURN_IF_ERROR(port_->WriteMem(base + kMailboxDataOffset, encoded));
    return port_->WriteMem(base + kMailboxFlagOffset, header.bytes());
  }
  // Same publish order inside one round trip: batch ops commit in queue order, so the
  // flag still lands after the payload.
  std::vector<PortOp> ops;
  ops.push_back(PortOp::Write(base + kMailboxDataOffset, encoded));
  ops.push_back(PortOp::Write(base + kMailboxFlagOffset, header.bytes()));
  return port_->RunBatch(&ops);
}

AgentStatusView Deployment::ParseStatusBlock(const std::vector<uint8_t>& raw) {
  ByteReader reader(raw);
  AgentStatusView view;
  view.state = static_cast<AgentState>(reader.GetU32());
  view.last_error = static_cast<AgentError>(reader.GetU32());
  view.calls_done = reader.GetU32();
  view.progs_done = reader.GetU32();
  view.total_calls = reader.GetU32();
  return view;
}

Result<AgentStatusView> Deployment::ReadAgentStatus() {
  ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                   port_->ReadMem(status_address(), kStatusBlockSize));
  return ParseStatusBlock(raw);
}

Result<std::vector<uint64_t>> Deployment::DrainCoverage(uint32_t* dropped,
                                                        AgentStatusView* status) {
  uint64_t ring_base = ram_base_ + ring_.ram_offset;
  if (!batched_) {
    // Legacy protocol: header read, entries read, blind 0/0 header write — three round
    // trips, and entries appended between the reads and the reset are lost (the window
    // the batched protocol's read-then-subtract closes).
    ASSIGN_OR_RETURN(std::vector<uint8_t> header, port_->ReadMem(ring_base, 8));
    ByteReader reader(header);
    uint32_t count = reader.GetU32();
    uint32_t drop_count = reader.GetU32();
    if (dropped != nullptr) {
      *dropped = drop_count;
    }
    std::vector<uint64_t> entries;
    if (count > ring_.capacity) {
      count = ring_.capacity;  // a scribbled header must not drive a huge read
    }
    if (count > 0) {
      ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                       port_->ReadMem(ring_base + CovRingLayout::kEntriesOffset,
                                      static_cast<uint64_t>(count) * 8));
      ByteReader entry_reader(raw);
      entries.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        entries.push_back(entry_reader.GetU64());
      }
    }
    ByteWriter zero;
    zero.PutU32(0);
    zero.PutU32(0);
    RETURN_IF_ERROR(port_->WriteMem(ring_base, zero.bytes()));
    if (status != nullptr) {
      ASSIGN_OR_RETURN(*status, ReadAgentStatus());
    }
    return entries;
  }

  // Batched protocol, one round trip in the common case:
  //   op0  read header + `prefetch` speculative entries (contiguous with the header)
  //   op1  count   -= the count op0 read   (adapter-side read-modify-write)
  //   op2  dropped -= the drops op0 read
  //   op3  (optional) read the agent status block
  // The subtracts land target-side after the read, so entries the target appends in
  // between are preserved: the header keeps exactly the not-yet-drained tail.
  uint32_t prefetch = std::min(prefetch_hint_, ring_.capacity);
  std::vector<PortOp> ops;
  ops.push_back(PortOp::Read(ring_base, 8 + static_cast<uint64_t>(prefetch) * 8));
  ops.push_back(PortOp::SubU32(ring_base + CovRingLayout::kCountOffset, /*operand_op=*/0,
                               /*operand_offset=*/0));
  ops.push_back(PortOp::SubU32(ring_base + CovRingLayout::kDroppedOffset, /*operand_op=*/0,
                               /*operand_offset=*/4));
  if (status != nullptr) {
    ops.push_back(PortOp::Read(status_address(), kStatusBlockSize));
  }
  RETURN_IF_ERROR(port_->RunBatch(&ops));

  ByteReader reader(ops[0].result);
  uint32_t count = reader.GetU32();
  uint32_t drop_count = reader.GetU32();
  if (dropped != nullptr) {
    *dropped = drop_count;
  }
  if (count > ring_.capacity) {
    count = ring_.capacity;  // a scribbled header must not drive a huge read
  }
  std::vector<uint64_t> entries;
  entries.reserve(count);
  uint32_t from_prefetch = std::min(count, prefetch);
  for (uint32_t i = 0; i < from_prefetch; ++i) {
    entries.push_back(reader.GetU64());
  }
  if (count > from_prefetch) {
    // The speculative window undershot: fetch the tail in one follow-up read.
    ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                     port_->ReadMem(ring_base + CovRingLayout::kEntriesOffset +
                                        static_cast<uint64_t>(from_prefetch) * 8,
                                    static_cast<uint64_t>(count - from_prefetch) * 8));
    ByteReader tail(raw);
    for (uint32_t i = from_prefetch; i < count; ++i) {
      entries.push_back(tail.GetU64());
    }
  }
  // Adapt the window: grow fast on an undershoot, decay gently toward recent counts so
  // alternating full/empty drains do not thrash the speculative read size.
  if (count > prefetch) {
    prefetch_hint_ = std::min(ring_.capacity, std::max<uint32_t>(16, count * 2));
  } else {
    prefetch_hint_ = std::max<uint32_t>(16, (prefetch_hint_ + count) / 2);
  }
  if (status != nullptr) {
    *status = ParseStatusBlock(ops.back().result);
  }
  return entries;
}

}  // namespace eof
