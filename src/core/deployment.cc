#include "src/core/deployment.h"

#include <algorithm>

#include "src/common/byteio.h"
#include "src/common/hash.h"
#include "src/common/strings.h"
#include "src/kernel/os.h"

namespace eof {

Result<std::unique_ptr<Deployment>> Deployment::Create(const DeployOptions& options) {
  ASSIGN_OR_RETURN(OsInfo info, OsRegistry::Instance().Find(options.os_name));
  std::string board_name = options.board_name.empty() ? info.default_board : options.board_name;
  ASSIGN_OR_RETURN(BoardSpec spec, BoardSpecByName(board_name));

  ImageBuildOptions build;
  build.os_name = options.os_name;
  build.instrumentation = options.instrumentation;
  build.seed = options.seed;
  ASSIGN_OR_RETURN(std::shared_ptr<FirmwareImage> image, BuildImage(spec, build));

  auto deployment = std::unique_ptr<Deployment>(new Deployment());
  deployment->image_ = image;
  deployment->ram_base_ = spec.ram_base;
  deployment->ring_.ram_offset = kCovRingOffset;
  deployment->ring_.capacity = CovRingCapacityFor(spec.ram_bytes);
  deployment->batched_ = options.batched_link;
  deployment->board_ = std::make_unique<Board>(spec);
  deployment->board_->InstallImage(image);
  deployment->telemetry_ = options.telemetry;
  deployment->port_ = std::make_unique<DebugPort>(
      deployment->board_.get(),
      options.telemetry != nullptr ? &options.telemetry->registry() : nullptr);

  RETURN_IF_ERROR(deployment->port_->Connect());
  RETURN_IF_ERROR(deployment->ReflashAndReboot());
  // Reject a target whose booted agent stamped a different ring layout than the
  // host compiled against — a silent mismatch would drain empty coverage forever.
  RETURN_IF_ERROR(deployment->ValidateCovRing());
  return deployment;
}

Status Deployment::ValidateCovRing() {
  if (ring_.capacity == 0) {
    return OkStatus();
  }
  uint64_t ring_base = ram_base_ + ring_.ram_offset;
  ASSIGN_OR_RETURN(std::vector<uint8_t> raw, port_->ReadMem(ring_base, 8));
  ByteReader reader(raw);
  uint32_t version = reader.GetU32();
  uint32_t capacity = reader.GetU32();
  if (version != CovRingLayout::kVersionMagic) {
    return FailedPreconditionError(
        StrFormat("coverage ring header version 0x%08x != expected 0x%08x: the booted "
                  "agent uses an incompatible ring layout",
                  version, CovRingLayout::kVersionMagic));
  }
  if (capacity != ring_.capacity) {
    return FailedPreconditionError(
        StrFormat("coverage ring capacity mismatch: target stamped %u, host expects %u",
                  capacity, ring_.capacity));
  }
  return OkStatus();
}

uint64_t Deployment::PayloadHash(const std::string& partition,
                                 const std::vector<uint8_t>& payload) {
  auto it = payload_hash_.find(partition);
  if (it != payload_hash_.end()) {
    return it->second;
  }
  uint64_t hash = Fnv1aBytes(payload.data(), payload.size());
  payload_hash_.emplace(partition, hash);
  return hash;
}

Status Deployment::ReflashAndRebootLegacy(uint64_t* programmed) {
  for (const Partition& part : image_->partition_table().partitions) {
    auto payload = image_->PayloadOf(part.name);
    if (!payload.ok()) {
      continue;  // raw partitions (nvs) carry no payload
    }
    RETURN_IF_ERROR(port_->FlashPartition(part.offset, payload.value()));
    *programmed += payload.value().size();
  }
  return port_->ResetTarget();
}

Status Deployment::ReflashAndReboot() {
  telemetry::Tracer::Span span;
  if (telemetry_ != nullptr) {
    span = telemetry_->tracer().Begin("reflash", port_->Now());
  }
  uint64_t programmed = 0;
  uint64_t skipped = 0;
  Status status = batched_ ? ReflashAndRebootBatched(&programmed, &skipped)
                           : ReflashAndRebootLegacy(&programmed);
  if (telemetry_ != nullptr) {
    telemetry_->tracer().End(span, port_->Now(), /*journal=*/true);
    if (status.ok() && batched_) {
      telemetry_->EmitEvent(port_->Now(), "delta_reflash",
                            {telemetry::EventField::Uint("programmed_bytes", programmed),
                             telemetry::EventField::Uint("skipped_bytes", skipped)});
    }
  }
  return status;
}

Status Deployment::ReflashAndRebootBatched(uint64_t* programmed, uint64_t* skipped) {
  uint64_t flash_base = board_->spec().flash_base;
  for (const Partition& part : image_->partition_table().partitions) {
    auto payload = image_->PayloadOf(part.name);
    if (!payload.ok()) {
      continue;  // raw partitions (nvs) carry no payload
    }
    const std::vector<uint8_t>& bytes = payload.value();
    // Delta reflash: prove the partition's on-flash content unchanged with a
    // target-assisted checksum (~KB/s-free: only the digest crosses the link) and
    // skip the 5 us/byte reprogram when it matches the payload hash. A checksum
    // failure (severed link) aborts the restore like a failed flash write would —
    // retrying with a blind reflash would only burn a second link timeout.
    ASSIGN_OR_RETURN(uint64_t on_flash,
                     port_->ChecksumMem(flash_base + part.offset, bytes.size()));
    if (on_flash == PayloadHash(part.name, bytes)) {
      port_->NoteFlashSkipped(bytes.size());
      *skipped += bytes.size();
      continue;
    }
    RETURN_IF_ERROR(port_->FlashPartition(part.offset, bytes));
    *programmed += bytes.size();
  }
  return port_->ResetTarget();
}

Result<uint64_t> Deployment::SymbolAddress(const std::string& symbol) const {
  return image_->symbols().AddressOf(symbol);
}

Status Deployment::WriteTestCase(const std::vector<uint8_t>& encoded) {
  if (encoded.size() > kMailboxMaxBytes) {
    return InvalidArgumentError(StrFormat("test case of %zu bytes exceeds the mailbox",
                                          encoded.size()));
  }
  uint64_t base = ram_base_ + kMailboxOffset;
  ByteWriter header;
  header.PutU32(1);  // flag
  header.PutU32(static_cast<uint32_t>(encoded.size()));
  if (!batched_) {
    // Payload first, then length, then the ready flag — the flag write publishes the case.
    RETURN_IF_ERROR(port_->WriteMem(base + kMailboxDataOffset, encoded));
    return port_->WriteMem(base + kMailboxFlagOffset, header.bytes());
  }
  // Same publish order inside one round trip: batch ops commit in queue order, so the
  // flag still lands after the payload.
  std::vector<PortOp> ops;
  ops.push_back(PortOp::Write(base + kMailboxDataOffset, encoded));
  ops.push_back(PortOp::Write(base + kMailboxFlagOffset, header.bytes()));
  return port_->RunBatch(&ops);
}

AgentStatusView Deployment::ParseStatusBlock(const std::vector<uint8_t>& raw) {
  ByteReader reader(raw);
  AgentStatusView view;
  view.state = static_cast<AgentState>(reader.GetU32());
  view.last_error = static_cast<AgentError>(reader.GetU32());
  view.calls_done = reader.GetU32();
  view.progs_done = reader.GetU32();
  view.total_calls = reader.GetU32();
  return view;
}

Result<AgentStatusView> Deployment::ReadAgentStatus() {
  ASSIGN_OR_RETURN(std::vector<uint8_t> raw,
                   port_->ReadMem(status_address(), kStatusBlockSize));
  return ParseStatusBlock(raw);
}

namespace {

// Parses `count` 12-byte {u64 edge, u32 call} entries from `reader`.
void ParseCovEntries(ByteReader& reader, uint32_t count, std::vector<CovHit>* out) {
  for (uint32_t i = 0; i < count; ++i) {
    CovHit hit;
    hit.edge = reader.GetU64();
    hit.call = reader.GetU32();
    out->push_back(hit);
  }
}

}  // namespace

Status Deployment::SetBankFlipMode(bool enabled) {
  flip_mode_ = enabled;
  if (ring_.capacity == 0) {
    return OkStatus();
  }
  // The target is stopped and owns only the bank bit, which every boot path and
  // every drain leaves at 0 when this runs (deploy and cold restore re-arm from a
  // zeroed header), so a plain write of the host-owned flag is safe.
  ByteWriter word;
  word.PutU32(enabled ? CovRingLayout::kBankFlipEnableBit : 0);
  return port_->WriteMem(ram_base_ + ring_.ram_offset + CovRingLayout::kActiveBankOffset,
                         word.bytes());
}

Result<uint32_t> Deployment::CollectBank(const PortOp& op, uint32_t bank,
                                         uint32_t prefetch, uint32_t* count_out,
                                         std::vector<CovHit>* out) {
  ByteReader reader(op.result);
  uint32_t count = reader.GetU32();
  uint32_t drop_count = reader.GetU32();
  if (count > ring_.capacity) {
    count = ring_.capacity;  // a scribbled header must not drive a huge read
  }
  *count_out = count;
  uint32_t from_prefetch = std::min(count, prefetch);
  out->reserve(out->size() + count);
  ParseCovEntries(reader, from_prefetch, out);
  if (count > from_prefetch) {
    // The speculative window undershot: fetch the tail in one follow-up read.
    // Race-free in every caller: immediate drains run against a stopped target,
    // and a plan's subtracts committed before the continue released the core, so
    // the entries the plan's reads covered are frozen.
    ASSIGN_OR_RETURN(
        std::vector<uint8_t> raw,
        port_->ReadMem(
            ram_base_ + ring_.EntryOffset(bank, from_prefetch),
            static_cast<uint64_t>(count - from_prefetch) * CovRingLayout::kEntryBytes));
    ByteReader tail(raw);
    ParseCovEntries(tail, count - from_prefetch, out);
  }
  return drop_count;
}

Result<std::vector<CovHit>> Deployment::DrainCoverage(uint32_t* dropped,
                                                      AgentStatusView* status) {
  uint64_t ring_base = ram_base_ + ring_.ram_offset;
  if (!batched_) {
    // Legacy protocol: global+bank header read, entries read, blind 0/0 bank-header
    // write — three round trips per bank (bank 0, the steady state without bank
    // flips; flip mode pays the extra header read for the second bank), and entries
    // appended between the reads and the reset are lost (the window the batched
    // read-then-subtract closes).
    ASSIGN_OR_RETURN(std::vector<uint8_t> header,
                     port_->ReadMem(ring_base, CovRingLayout::kGlobalHeaderBytes +
                                                   CovRingLayout::kBankHeaderBytes));
    ByteReader reader(header);
    reader.GetU32();  // version (validated at deploy time)
    reader.GetU32();  // capacity
    reader.GetU32();  // current_call
    uint32_t active = reader.GetU32() & CovRingLayout::kActiveBankMask;
    uint32_t bank0_count = reader.GetU32();  // bank 0's header rides the same read
    uint32_t bank0_drops = reader.GetU32();
    // Oldest entries first: the parked bank (the one the target flipped away from)
    // precedes the active one. Without flips the target never leaves bank 0.
    std::vector<uint32_t> banks;
    if (flip_mode_) {
      banks.push_back(active ^ 1);
    }
    banks.push_back(active);
    std::vector<CovHit> entries;
    uint32_t drop_total = 0;
    for (uint32_t bank : banks) {
      uint64_t bank_base = ram_base_ + ring_.BankOffset(bank);
      uint32_t count = bank0_count;
      uint32_t drop_count = bank0_drops;
      if (bank != 0) {
        ASSIGN_OR_RETURN(std::vector<uint8_t> bank_header,
                         port_->ReadMem(bank_base, CovRingLayout::kBankHeaderBytes));
        ByteReader bank_reader(bank_header);
        count = bank_reader.GetU32();
        drop_count = bank_reader.GetU32();
      }
      drop_total += drop_count;
      if (count > ring_.capacity) {
        count = ring_.capacity;  // a scribbled header must not drive a huge read
      }
      if (count > 0) {
        ASSIGN_OR_RETURN(
            std::vector<uint8_t> raw,
            port_->ReadMem(bank_base + CovRingLayout::kBankHeaderBytes,
                           static_cast<uint64_t>(count) * CovRingLayout::kEntryBytes));
        ByteReader entry_reader(raw);
        entries.reserve(entries.size() + count);
        ParseCovEntries(entry_reader, count, &entries);
      }
      ByteWriter zero;
      zero.PutU32(0);
      zero.PutU32(0);
      RETURN_IF_ERROR(port_->WriteMem(bank_base, zero.bytes()));
    }
    if (dropped != nullptr) {
      *dropped = drop_total;
    }
    if (status != nullptr) {
      ASSIGN_OR_RETURN(*status, ReadAgentStatus());
    }
    return entries;
  }

  // Batched protocol, one round trip in the common case. Per drained bank:
  //   read   bank header + `prefetch` speculative entries (contiguous)
  //   count   -= the count the read saw   (adapter-side read-modify-write)
  //   dropped -= the drops the read saw
  // The subtracts land target-side after the read, so entries the target appends in
  // between are preserved: the header keeps exactly the not-yet-drained tail. In
  // flip mode the active_bank word rides along to order the banks (parked first);
  // the target owns the bank bit and the host never flips it.
  uint32_t prefetch = std::min(prefetch_hint_, ring_.capacity);
  uint64_t bank_read_bytes = CovRingLayout::kBankHeaderBytes +
                             static_cast<uint64_t>(prefetch) * CovRingLayout::kEntryBytes;
  std::vector<PortOp> ops;
  size_t bank_op[2] = {0, 0};
  if (flip_mode_) {
    ops.push_back(PortOp::Read(ring_base + CovRingLayout::kActiveBankOffset, 4));
  }
  for (uint32_t bank = 0; bank < (flip_mode_ ? 2u : 1u); ++bank) {
    uint64_t bank_base = ram_base_ + ring_.BankOffset(bank);
    bank_op[bank] = ops.size();
    ops.push_back(PortOp::Read(bank_base, bank_read_bytes));
    ops.push_back(PortOp::SubU32(bank_base + CovRingLayout::kCountOffset,
                                 /*operand_op=*/bank_op[bank], /*operand_offset=*/0));
    ops.push_back(PortOp::SubU32(bank_base + CovRingLayout::kDroppedOffset,
                                 /*operand_op=*/bank_op[bank], /*operand_offset=*/4));
  }
  if (status != nullptr) {
    ops.push_back(PortOp::Read(status_address(), kStatusBlockSize));
  }
  RETURN_IF_ERROR(port_->RunBatch(&ops));

  uint32_t active = 0;
  if (flip_mode_) {
    ByteReader bank_word(ops[0].result);
    active = bank_word.GetU32() & CovRingLayout::kActiveBankMask;
  }
  std::vector<CovHit> entries;
  uint32_t drop_total = 0;
  uint32_t max_count = 0;
  // Oldest first: parked bank (if flips are on), then the active one.
  std::vector<uint32_t> banks;
  if (flip_mode_) {
    banks.push_back(active ^ 1);
  }
  banks.push_back(active);
  for (uint32_t bank : banks) {
    uint32_t count = 0;
    ASSIGN_OR_RETURN(uint32_t drop_count,
                     CollectBank(ops[bank_op[bank]], bank, prefetch, &count, &entries));
    drop_total += drop_count;
    max_count = std::max(max_count, count);
  }
  if (dropped != nullptr) {
    *dropped = drop_total;
  }
  AdaptPrefetch(max_count, prefetch);
  if (status != nullptr) {
    *status = ParseStatusBlock(ops.back().result);
  }
  return entries;
}

void Deployment::AdaptPrefetch(uint32_t count, uint32_t prefetch) {
  // Grow fast on an undershoot, decay gently toward recent counts so alternating
  // full/empty drains do not thrash the speculative read size.
  if (count > prefetch) {
    prefetch_hint_ = std::min(ring_.capacity, std::max<uint32_t>(16, count * 2));
  } else {
    prefetch_hint_ = std::max<uint32_t>(16, (prefetch_hint_ + count) / 2);
  }
}

Deployment::DrainPlan Deployment::MakeDrainPlan() {
  // The same two-bank read+subtract protocol as the immediate batched drain
  // (op layout: active_bank word, then header+prefetch / count-sub / dropped-sub
  // per bank). The ops commit against the stopped target before the continue
  // releases the core, so everything the reads covered is frozen and the
  // undershoot tails can be fetched after the next stop without racing appends.
  DrainPlan plan;
  plan.prefetch = std::min(prefetch_hint_, ring_.capacity);
  uint64_t ring_base = ram_base_ + ring_.ram_offset;
  uint64_t bank_read_bytes =
      CovRingLayout::kBankHeaderBytes +
      static_cast<uint64_t>(plan.prefetch) * CovRingLayout::kEntryBytes;
  plan.ops.push_back(PortOp::Read(ring_base + CovRingLayout::kActiveBankOffset, 4));
  for (uint32_t bank = 0; bank < 2; ++bank) {
    uint64_t bank_base = ram_base_ + ring_.BankOffset(bank);
    size_t read_op = plan.ops.size();
    plan.ops.push_back(PortOp::Read(bank_base, bank_read_bytes));
    plan.ops.push_back(PortOp::SubU32(bank_base + CovRingLayout::kCountOffset,
                                      /*operand_op=*/read_op, /*operand_offset=*/0));
    plan.ops.push_back(PortOp::SubU32(bank_base + CovRingLayout::kDroppedOffset,
                                      /*operand_op=*/read_op, /*operand_offset=*/4));
  }
  return plan;
}

Result<std::vector<CovHit>> Deployment::FinishDrainPlan(DrainPlan* plan,
                                                        uint32_t* dropped) {
  ByteReader bank_word(plan->ops[0].result);
  uint32_t active = bank_word.GetU32() & CovRingLayout::kActiveBankMask;
  // ops[1..3] drain bank 0, ops[4..6] bank 1; surface oldest entries first — the
  // parked bank the target flipped away from, then the one it was filling.
  std::vector<CovHit> entries;
  uint32_t drop_total = 0;
  uint32_t max_count = 0;
  for (uint32_t bank : {active ^ 1, active}) {
    uint32_t count = 0;
    ASSIGN_OR_RETURN(
        uint32_t drop_count,
        CollectBank(plan->ops[1 + 3 * bank], bank, plan->prefetch, &count, &entries));
    drop_total += drop_count;
    max_count = std::max(max_count, count);
  }
  if (dropped != nullptr) {
    *dropped = drop_total;
  }
  AdaptPrefetch(max_count, plan->prefetch);
  return entries;
}

}  // namespace eof
