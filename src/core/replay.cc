#include "src/core/replay.h"

#include "src/core/bug_catalog.h"
#include "src/core/monitors.h"
#include "src/fuzz/program_text.h"
#include "src/kernel/os.h"
#include "src/spec/spec_miner.h"

namespace eof {

Result<ReplayOutcome> ReplayReproducer(const std::string& os_name,
                                       const std::string& program_text,
                                       const std::string& board_name) {
  DeployOptions deploy;
  deploy.os_name = os_name;
  deploy.board_name = board_name;
  ASSIGN_OR_RETURN(std::unique_ptr<Deployment> deployment, Deployment::Create(deploy));

  ASSIGN_OR_RETURN(OsInfo info, OsRegistry::Instance().Find(os_name));
  std::unique_ptr<Os> scratch = info.factory();
  ASSIGN_OR_RETURN(spec::MinedSpecs mined, spec::MineValidatedSpecs(scratch->registry()));
  ASSIGN_OR_RETURN(fuzz::Program program,
                   fuzz::ParseProgramText(mined.specs, program_text));

  ExceptionMonitor exception_monitor;
  LogMonitor log_monitor;
  RETURN_IF_ERROR(exception_monitor.Arm(*deployment, scratch->exception_symbol()));
  ASSIGN_OR_RETURN(uint64_t executor_main, deployment->SymbolAddress("executor_main"));
  RETURN_IF_ERROR(deployment->port().SetBreakpoint(executor_main));
  ASSIGN_OR_RETURN(StopInfo parked, deployment->port().Continue());
  (void)parked;
  (void)deployment->port().DrainUart();  // boot banner is not part of the verdict

  RETURN_IF_ERROR(deployment->WriteTestCase(EncodeProgram(program.ToWire(mined.specs))));

  ReplayOutcome outcome;
  for (int round = 0; round < 8; ++round) {
    auto stop = deployment->port().Continue();
    if (!stop.ok()) {
      // Link-dead target: the reproducer bricked it (flash damage class).
      outcome.crashed = true;
      outcome.detector = "timeout";
      break;
    }
    outcome.uart += deployment->port().DrainUart();
    if (exception_monitor.IsExceptionStop(stop.value())) {
      outcome.crashed = true;
      outcome.detector = "exception";
      break;
    }
    auto log_hit = log_monitor.Scan(outcome.uart);
    if (log_hit.has_value()) {
      outcome.crashed = true;
      outcome.detector = "log";
      break;
    }
    if (stop.value().reason == HaltReason::kBreakpoint &&
        stop.value().symbol == "executor_main") {
      auto status = deployment->ReadAgentStatus();
      if (status.ok() && status.value().state == AgentState::kWaiting) {
        continue;  // pre-read pause
      }
      break;  // completed without incident
    }
    if (stop.value().reason == HaltReason::kIdle) {
      break;
    }
    // Quantum expired twice in a row with a frozen PC = wedge.
    auto pc1 = deployment->port().ReadPC();
    auto again = deployment->port().Continue();
    auto pc2 = deployment->port().ReadPC();
    outcome.uart += deployment->port().DrainUart();
    if (pc1.ok() && again.ok() && pc2.ok() && pc1.value() != pc2.value()) {
      continue;
    }
    outcome.crashed = true;
    auto log_hit2 = log_monitor.Scan(outcome.uart);
    outcome.detector = log_hit2.has_value() ? "log" : "timeout";
    break;
  }
  if (outcome.crashed) {
    outcome.crash_text = outcome.uart;
    outcome.catalog_id = AttributeBug(os_name, outcome.crash_text);
  }
  return outcome;
}

}  // namespace eof
