#include "src/core/replay.h"

#include "src/common/coverage_map.h"
#include "src/core/bug_catalog.h"
#include "src/core/monitors.h"
#include "src/fuzz/program_text.h"
#include "src/fuzz/trimmer.h"
#include "src/kernel/os.h"
#include "src/spec/spec_miner.h"

namespace eof {

Result<ReplayOutcome> ReplayReproducer(const std::string& os_name,
                                       const std::string& program_text,
                                       const std::string& board_name) {
  DeployOptions deploy;
  deploy.os_name = os_name;
  deploy.board_name = board_name;
  ASSIGN_OR_RETURN(std::unique_ptr<Deployment> deployment, Deployment::Create(deploy));

  ASSIGN_OR_RETURN(OsInfo info, OsRegistry::Instance().Find(os_name));
  std::unique_ptr<Os> scratch = info.factory();
  ASSIGN_OR_RETURN(spec::MinedSpecs mined, spec::MineValidatedSpecs(scratch->registry()));
  ASSIGN_OR_RETURN(fuzz::Program program,
                   fuzz::ParseProgramText(mined.specs, program_text));

  ExceptionMonitor exception_monitor;
  LogMonitor log_monitor;
  RETURN_IF_ERROR(exception_monitor.Arm(*deployment, scratch->exception_symbol()));
  ASSIGN_OR_RETURN(uint64_t executor_main, deployment->SymbolAddress("executor_main"));
  RETURN_IF_ERROR(deployment->port().SetBreakpoint(executor_main));
  ASSIGN_OR_RETURN(StopInfo parked, deployment->port().Continue());
  (void)parked;
  (void)deployment->port().DrainUart();  // boot banner is not part of the verdict

  RETURN_IF_ERROR(deployment->WriteTestCase(EncodeProgram(program.ToWire(mined.specs))));

  ReplayOutcome outcome;
  for (int round = 0; round < 8; ++round) {
    auto stop = deployment->port().Continue();
    if (!stop.ok()) {
      // Link-dead target: the reproducer bricked it (flash damage class).
      outcome.crashed = true;
      outcome.detector = "timeout";
      break;
    }
    outcome.uart += deployment->port().DrainUart();
    if (exception_monitor.IsExceptionStop(stop.value())) {
      outcome.crashed = true;
      outcome.detector = "exception";
      break;
    }
    auto log_hit = log_monitor.Scan(outcome.uart);
    if (log_hit.has_value()) {
      outcome.crashed = true;
      outcome.detector = "log";
      break;
    }
    if (stop.value().reason == HaltReason::kBreakpoint &&
        stop.value().symbol == "executor_main") {
      auto status = deployment->ReadAgentStatus();
      if (status.ok() && status.value().state == AgentState::kWaiting) {
        continue;  // pre-read pause
      }
      break;  // completed without incident
    }
    if (stop.value().reason == HaltReason::kIdle) {
      break;
    }
    // Quantum expired twice in a row with a frozen PC = wedge.
    auto pc1 = deployment->port().ReadPC();
    auto again = deployment->port().Continue();
    auto pc2 = deployment->port().ReadPC();
    outcome.uart += deployment->port().DrainUart();
    if (pc1.ok() && again.ok() && pc2.ok() && pc1.value() != pc2.value()) {
      continue;
    }
    outcome.crashed = true;
    auto log_hit2 = log_monitor.Scan(outcome.uart);
    outcome.detector = log_hit2.has_value() ? "log" : "timeout";
    break;
  }
  if (outcome.crashed) {
    outcome.crash_text = outcome.uart;
    outcome.catalog_id = AttributeBug(os_name, outcome.crash_text);
  }
  return outcome;
}

namespace {

// Runs `program` once on a fresh deployment, draining the coverage ring at every
// stop. The ring-full pause point is armed so mid-program overflows pause the
// agent for a drain instead of dropping entries — attribution stays complete.
Result<std::vector<CovHit>> RunOnceCollect(const std::string& os_name,
                                           const std::string& board_name,
                                           const spec::CompiledSpecs& specs,
                                           const fuzz::Program& program) {
  DeployOptions deploy;
  deploy.os_name = os_name;
  deploy.board_name = board_name;
  ASSIGN_OR_RETURN(std::unique_ptr<Deployment> deployment, Deployment::Create(deploy));
  ASSIGN_OR_RETURN(uint64_t executor_main, deployment->SymbolAddress("executor_main"));
  ASSIGN_OR_RETURN(uint64_t cov_full, deployment->SymbolAddress("_kcmp_buf_full"));
  RETURN_IF_ERROR(deployment->port().SetBreakpoint(executor_main));
  RETURN_IF_ERROR(deployment->port().SetBreakpoint(cov_full));
  ASSIGN_OR_RETURN(StopInfo parked, deployment->port().Continue());
  (void)parked;
  fuzz::Program copy = program;
  RETURN_IF_ERROR(deployment->WriteTestCase(EncodeProgram(copy.ToWire(specs))));
  std::vector<CovHit> hits;
  for (int round = 0; round < 64; ++round) {
    auto stop = deployment->port().Continue();
    if (!stop.ok()) {
      return stop.status();
    }
    auto drained = deployment->DrainCoverage();
    if (drained.ok()) {
      hits.insert(hits.end(), drained.value().begin(), drained.value().end());
    }
    if (stop.value().reason == HaltReason::kBreakpoint &&
        stop.value().symbol == "executor_main") {
      auto status = deployment->ReadAgentStatus();
      if (status.ok() && status.value().state == AgentState::kWaiting) {
        continue;  // pre-read pause
      }
      break;
    }
    if (stop.value().reason == HaltReason::kIdle) {
      break;
    }
  }
  return hits;
}

}  // namespace

Result<TrimOutcome> TrimReproducer(const std::string& os_name,
                                   const std::string& program_text,
                                   const std::string& board_name) {
  ASSIGN_OR_RETURN(OsInfo info, OsRegistry::Instance().Find(os_name));
  std::unique_ptr<Os> scratch = info.factory();
  ASSIGN_OR_RETURN(spec::MinedSpecs mined, spec::MineValidatedSpecs(scratch->registry()));
  ASSIGN_OR_RETURN(fuzz::Program program,
                   fuzz::ParseProgramText(mined.specs, program_text));

  ASSIGN_OR_RETURN(std::vector<CovHit> hits,
                   RunOnceCollect(os_name, board_name, mined.specs, program));
  CoverageMap original_map;
  std::vector<CovHit> fresh;
  original_map.AddBatchAttributed(hits, &fresh);
  std::vector<uint32_t> owner_calls;
  owner_calls.reserve(fresh.size());
  for (const CovHit& hit : fresh) {
    owner_calls.push_back(hit.call);
  }
  fuzz::TrimStats stats;
  fuzz::Program trimmed = fuzz::TrimToCalls(program, owner_calls, &stats);

  TrimOutcome outcome;
  outcome.original_calls = program.calls.size();
  outcome.kept_calls = stats.kept_calls;
  outcome.removed_calls = stats.removed_calls;
  outcome.original_coverage = original_map.Count();
  outcome.trimmed_text = fuzz::SerializeProgramText(mined.specs, trimmed);

  // Verification replay on a second cold board: the trim is only accepted as
  // edge-preserving if every edge of the original run shows up again.
  ASSIGN_OR_RETURN(std::vector<CovHit> verify_hits,
                   RunOnceCollect(os_name, board_name, mined.specs, trimmed));
  CoverageMap verify_map;
  verify_map.AddBatchAttributed(verify_hits, nullptr);
  outcome.trimmed_coverage = verify_map.Count();
  outcome.coverage_preserved = true;
  for (const CovHit& hit : fresh) {
    if (!verify_map.Contains(hit.edge)) {
      outcome.coverage_preserved = false;
      break;
    }
  }
  return outcome;
}

}  // namespace eof
