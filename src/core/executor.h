// TargetExecutor: one fuzzing session against one attached board. It owns the
// Deployment, arms the breakpoints, drives the Figure-4 breakpoint-synchronised
// execution of a single test case, drains the coverage ring, and keeps the target
// alive with the Algorithm-1 watchdogs and restoration protocol.
//
// The executor is deliberately policy-free: it neither schedules inputs nor decides
// what counts as interesting. That is the CampaignScheduler's job (scheduler.h).
// EofFuzzer wires one executor to one scheduler; BoardFarm wires N executors (one
// per worker thread) to a shared scheduler. An executor instance is confined to a
// single thread — cross-worker coordination happens in the scheduler.

#ifndef SRC_CORE_EXECUTOR_H_
#define SRC_CORE_EXECUTOR_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/rng.h"
#include "src/common/vclock.h"
#include "src/core/deployment.h"
#include "src/core/liveness.h"
#include "src/core/monitors.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"

namespace eof {

// How a downed target gets recovered.
enum class RestoreMode {
  kReflash,     // EOF: full image reflash + reboot (works after flash damage)
  kRebootOnly,  // plain reset; a damaged image stays damaged (repeated timeouts)
  kSnapshot,    // warm restore from the post-boot board snapshot; falls back to
                // the full reflash when the fast path fails mid-restore
};

enum class ExecStatus { kCompleted, kCrashed, kStalled, kLinkLost };

// What one test-case execution produced. Hits are raw drain order (duplicate edges
// possible across the in-flight ring drains), each carrying the index of the call
// that was executing when the edge fired; the scheduler folds them into the global
// coverage map and decides how many were new. `dump` is the board's
// flight-recorder state at the moment a monitor fired or a watchdog tripped —
// the forensic context the scheduler attaches to a first-seen bug's report.
struct ExecOutcome {
  ExecStatus status = ExecStatus::kCompleted;
  std::optional<BugSignature> signature;
  std::vector<CovHit> hits;
  std::optional<telemetry::FlightDump> dump;
};

// Per-session liveness/health counters — a point-in-time view over the session's
// `exec.*` telemetry counters. The registry is the source of truth; campaign runners
// aggregate workers by merging registry snapshots, not by summing these structs.
struct ExecStats {
  uint64_t rejected = 0;
  uint64_t stalls = 0;
  uint64_t timeouts = 0;
  uint64_t restores = 0;
  uint64_t snapshot_restores = 0;  // restores served by the warm snapshot path
  uint64_t snapshot_bytes = 0;     // RAM bytes those restores pushed over the link
};

// Reads the `exec.*` counters out of a registry snapshot (per-board or farm-merged).
ExecStats ExecStatsFromSnapshot(const telemetry::MetricsSnapshot& snapshot);

// Board-session configuration: the slice of FuzzerConfig the executor needs, plus
// the OS exception symbol resolved by campaign setup.
struct ExecutorOptions {
  std::string os_name;
  std::string board_name;
  InstrumentationOptions instrumentation;
  uint64_t seed = 1;

  RestoreMode restore_mode = RestoreMode::kReflash;
  bool coverage_feedback = true;
  bool log_monitor = true;
  bool exception_monitor = true;
  bool watchdogs = true;
  bool power_probe = false;
  bool inject_peripheral_events = false;
  bool batched_link = true;  // vectored link batches + delta reflash (see DeployOptions)
  // Double-buffered mid-program drains: when the ring fills, flip the target onto
  // the other bank and ride the drain plan on the next exec-continue round trip
  // instead of paying a separate drain transaction (requires the batched link).
  // Drained entries are bit-identical either way; only virtual time differs.
  bool overlapped_drain = true;
  uint32_t periodic_reset_execs = 24;

  std::string exception_symbol;

  // The board session's telemetry (registry + tracer + journal). nullptr = the
  // executor owns a private, journal-less BoardTelemetry, so instrumentation is
  // always live (the counters are relaxed atomics and never touch the virtual
  // clock or any RNG — fuzzing results are identical with or without a consumer).
  // Must outlive the executor when set.
  telemetry::BoardTelemetry* telemetry = nullptr;
};

class TargetExecutor {
 public:
  // Deploys (build image, attach port, flash, boot to the agent), resolves the
  // workflow symbols, and arms breakpoints. `session_rng` drives the peripheral
  // event bursts and must outlive the executor (the single-threaded engine shares
  // the scheduling RNG here to preserve its historical stream; farm workers pass
  // their own per-worker stream).
  static Result<std::unique_ptr<TargetExecutor>> Create(const ExecutorOptions& options,
                                                        Rng* session_rng);

  // Publishes one encoded test case and runs it to completion / crash / stall /
  // link loss, restoring the target as needed (Algorithm 1).
  Result<ExecOutcome> ExecuteOne(const std::vector<uint8_t>& encoded);

  // Virtual board time spent in this session so far.
  VirtualTime Elapsed() { return deployment_->port().Now() - start_time_; }

  // Current values of the session's `exec.*` counters, materialized on demand.
  ExecStats stats() const;
  // Debug-link traffic counters for this session's board (round trips, batches,
  // flash bytes programmed vs. skipped).
  DebugPortStats port_stats() { return deployment_->port().stats(); }
  Deployment& deployment() { return *deployment_; }

  // The session's telemetry: every instrument this executor, its deployment, and its
  // debug port registered lives in telemetry()->registry().
  telemetry::BoardTelemetry* telemetry() { return telemetry_; }

  // The session's flight recorder (always on; the debug port and the exec loop feed
  // it). Exposed for tests probing ring contents after a campaign.
  const telemetry::FlightRecorder& flight_recorder() const { return flight_; }

  // The once-per-deployment board snapshot (kSnapshot mode only, else nullptr).
  // Exposed for tests that poison the captured state.
  BoardSnapshot* snapshot_for_test() { return snapshot_.get(); }

  // Restore mode that produced the board's current state ("none" until the first
  // restore, then "cold" or "snapshot"). Crash dumps carry this label.
  const char* last_restore() const { return last_restore_; }

  // Publishes the session's current coverage-map population into the
  // `exec.local_coverage` gauge (the campaign runner owns the map, so it reports).
  void SetCoverageGauge(uint64_t edges) { local_coverage_->Set(edges); }

 private:
  TargetExecutor(ExecutorOptions options, Rng* session_rng)
      : options_(std::move(options)), session_rng_(session_rng) {}

  Status Setup();
  Status ArmBreakpoints();
  // `reason` labels the journal's liveness_reset event ("link_lost", "stall", ...).
  Status Restore(const char* reason);
  // Snapshots the flight recorder, journals it as a "crash_dump" row (when a sink is
  // attached), and — with `outcome` non-null — attaches the dump to the outcome so
  // the scheduler can fold it into bug provenance.
  void DumpFlight(const char* reason, ExecOutcome* outcome);
  // Drains the coverage ring into `outcome`. When `status_out` is non-null the agent
  // status block is fetched too — in the drain's own round trip on the batched link —
  // and `*status_ok` reports whether it arrived.
  void HarvestCoverage(ExecOutcome* outcome, AgentStatusView* status_out = nullptr,
                       bool* status_ok = nullptr);

  ExecutorOptions options_;
  Rng* session_rng_;
  std::unique_ptr<Deployment> deployment_;
  std::unique_ptr<BoardSnapshot> snapshot_;  // kSnapshot mode: captured at deploy
  const char* last_restore_ = "none";        // "none" | "cold" | "snapshot"
  LogMonitor log_monitor_;
  ExceptionMonitor exception_monitor_;
  LivenessWatchdog watchdog_;
  telemetry::FlightRecorder flight_;

  std::unique_ptr<telemetry::BoardTelemetry> owned_telemetry_;  // set iff none was passed
  telemetry::BoardTelemetry* telemetry_ = nullptr;
  telemetry::Counter* execs_ = nullptr;
  telemetry::Counter* rejected_ = nullptr;
  telemetry::Counter* stalls_ = nullptr;
  telemetry::Counter* timeouts_ = nullptr;
  telemetry::Counter* restores_ = nullptr;
  telemetry::Counter* snapshot_restores_ = nullptr;
  telemetry::Counter* snapshot_bytes_ = nullptr;
  telemetry::Counter* edges_drained_ = nullptr;
  telemetry::Counter* overlapped_drains_ = nullptr;
  telemetry::Counter* drain_overlap_saved_us_ = nullptr;
  telemetry::Gauge* local_coverage_ = nullptr;

  uint64_t executor_main_addr_ = 0;
  uint64_t cov_full_addr_ = 0;
  uint64_t exception_addr_ = 0;
  // Self-service bank flips for this session (overlapped drain + coverage feedback on a
  // batched link). Re-granted to the target at every arm; see Deployment::SetBankFlipMode.
  bool bank_flip_ = false;
  VirtualTime start_time_ = 0;
  uint64_t execs_since_reset_ = 0;
};

}  // namespace eof

#endif  // SRC_CORE_EXECUTOR_H_
