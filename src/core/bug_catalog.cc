#include "src/core/bug_catalog.h"

#include "src/common/strings.h"

namespace eof {

const std::vector<BugInfo>& BugCatalog() {
  static const std::vector<BugInfo>* catalog = new std::vector<BugInfo>{
      {1, "zephyr", "Heap", "Kernel Panic", "sys_heap_stress()", false, "sys_heap_stress",
       "exception"},
      {2, "zephyr", "Kernel", "Kernel Panic", "z_impl_k_msgq_get()", true,
       "z_impl_k_msgq_get", "exception"},
      {3, "zephyr", "JSON", "Kernel Panic", "json_obj_encode()", true, "json_obj_encode",
       "exception"},
      {4, "zephyr", "KHeap", "Kernel Panic", "k_heap_init()", true, "k_heap_init",
       "exception"},
      {5, "rtthread", "Kernel", "Kernel Assertion", "rt_object_get_type()", false,
       "rt_object_get_type", "log"},
      {6, "rtthread", "RTService", "Kernel Panic", "rt_list_isempty()", false,
       "rt_list_isempty", "exception"},
      {7, "rtthread", "Memory", "Kernel Panic", "rt_mp_alloc()", false, "rt_mp_alloc",
       "exception"},
      {8, "rtthread", "Kernel", "Kernel Assertion", "rt_object_init()", false,
       "rt_object_init", "log"},
      {9, "rtthread", "Heap", "Kernel Panic", "_heap_lock()", false, "_heap_lock",
       "exception"},
      {10, "rtthread", "IPC", "Kernel Panic", "rt_event_send()", false, "rt_event_send",
       "exception"},
      {11, "rtthread", "Memory", "Kernel Panic", "rt_smem_setname()", true,
       "rt_smem_setname", "exception"},
      {12, "rtthread", "Serial", "Kernel Panic", "rt_serial_write()", false,
       "rt_serial_write", "exception"},
      {13, "freertos", "Kernel", "Kernel Panic", "load_partitions()", false,
       "load_partitions", "exception"},
      {14, "nuttx", "Kernel", "Kernel Panic", "setenv()", true, "setenv", "exception"},
      {15, "nuttx", "Libc", "Kernel Panic", "gettimeofday()", false, "gettimeofday",
       "exception"},
      {16, "nuttx", "MQueue", "Kernel Panic", "nxmq_timedsend()", false, "nxmq_timedsend",
       "exception"},
      {17, "nuttx", "Semaphore", "Kernel Assertion", "nxsem_trywait()", false,
       "sem_trywait", "log"},
      {18, "nuttx", "Timer", "Kernel Panic", "timer_create()", false, "timer_create",
       "exception"},
      {19, "nuttx", "Libc", "Kernel Panic", "clock_getres()", false, "clock_getres",
       "exception"},
  };
  return *catalog;
}

int AttributeBug(const std::string& os, const std::string& crash_text) {
  for (const BugInfo& bug : BugCatalog()) {
    if (bug.os == os && Contains(crash_text, bug.signature)) {
      return bug.id;
    }
  }
  return 0;
}

const BugInfo* FindBug(int id) {
  for (const BugInfo& bug : BugCatalog()) {
    if (bug.id == id) {
      return &bug;
    }
  }
  return nullptr;
}

}  // namespace eof
