#include "src/core/executor.h"

#include "src/common/logging.h"
#include "src/hw/timing.h"

namespace eof {
namespace {

// Rounds of exec-continue the executor tolerates before consulting the watchdogs.
constexpr int kMaxContinueRounds = 6;

// Virtual cost of a human walking over to a bricked board when watchdogs are disabled
// (the ablation's "manual intervention").
constexpr VirtualDuration kManualInterventionCost = 30 * kVirtualMinute;

}  // namespace

ExecStats ExecStatsFromSnapshot(const telemetry::MetricsSnapshot& snapshot) {
  ExecStats stats;
  stats.rejected = snapshot.CounterValue("exec.rejected");
  stats.stalls = snapshot.CounterValue("exec.stalls");
  stats.timeouts = snapshot.CounterValue("exec.timeouts");
  stats.restores = snapshot.CounterValue("exec.restores");
  stats.snapshot_restores = snapshot.CounterValue("exec.snapshot_restores");
  stats.snapshot_bytes = snapshot.CounterValue("exec.snapshot_bytes");
  return stats;
}

ExecStats TargetExecutor::stats() const {
  ExecStats stats;
  stats.rejected = rejected_->Value();
  stats.stalls = stalls_->Value();
  stats.timeouts = timeouts_->Value();
  stats.restores = restores_->Value();
  stats.snapshot_restores = snapshot_restores_->Value();
  stats.snapshot_bytes = snapshot_bytes_->Value();
  return stats;
}

Result<std::unique_ptr<TargetExecutor>> TargetExecutor::Create(const ExecutorOptions& options,
                                                               Rng* session_rng) {
  std::unique_ptr<TargetExecutor> executor(new TargetExecutor(options, session_rng));
  RETURN_IF_ERROR(executor->Setup());
  return executor;
}

Status TargetExecutor::Setup() {
  telemetry_ = options_.telemetry;
  if (telemetry_ == nullptr) {
    // Standalone session (tests, repro, single-board tools): instrumentation stays
    // live against a private, journal-less registry.
    owned_telemetry_ = std::make_unique<telemetry::BoardTelemetry>(
        /*worker=*/0, options_.seed, /*sink=*/nullptr);
    telemetry_ = owned_telemetry_.get();
  }
  telemetry::MetricsRegistry& registry = telemetry_->registry();
  execs_ = registry.RegisterCounter("exec.execs");
  rejected_ = registry.RegisterCounter("exec.rejected");
  stalls_ = registry.RegisterCounter("exec.stalls");
  timeouts_ = registry.RegisterCounter("exec.timeouts");
  restores_ = registry.RegisterCounter("exec.restores");
  snapshot_restores_ = registry.RegisterCounter("exec.snapshot_restores");
  snapshot_bytes_ = registry.RegisterCounter("exec.snapshot_bytes");
  edges_drained_ = registry.RegisterCounter("exec.edges_drained");
  overlapped_drains_ = registry.RegisterCounter("exec.overlapped_drains");
  drain_overlap_saved_us_ = registry.RegisterCounter("exec.drain_overlap_saved_us");
  local_coverage_ = registry.RegisterGauge("exec.local_coverage");

  // The deploy span runs from power-on (virtual time 0 on a fresh board) to the
  // target parked at executor_main with breakpoints armed.
  telemetry::Tracer::Span deploy_span = telemetry_->tracer().Begin("deploy", 0);

  DeployOptions deploy;
  deploy.os_name = options_.os_name;
  deploy.board_name = options_.board_name;
  deploy.instrumentation = options_.instrumentation;
  deploy.seed = options_.seed;
  deploy.batched_link = options_.batched_link;
  deploy.telemetry = telemetry_;
  ASSIGN_OR_RETURN(deployment_, Deployment::Create(deploy));
  // From here on every link op and drained UART line lands in the session's flight
  // recorder (deploy-time traffic is deliberately outside the window: the rings
  // should hold the conversation leading up to a crash, not the flash protocol).
  deployment_->port().set_flight_recorder(&flight_);

  ASSIGN_OR_RETURN(executor_main_addr_, deployment_->SymbolAddress("executor_main"));
  ASSIGN_OR_RETURN(cov_full_addr_, deployment_->SymbolAddress("_kcmp_buf_full"));
  if (options_.exception_monitor) {
    // Resolution is host-side (symbol table); the breakpoint itself is planted by
    // ArmBreakpoints so re-arming after a restore stays one link batch.
    ASSIGN_OR_RETURN(exception_addr_,
                     exception_monitor_.Resolve(*deployment_, options_.exception_symbol));
  }
  // Self-service bank flips pair with the overlapped drain: the target parks full
  // banks at call boundaries instead of stalling for host service, and the host
  // collects both banks per drain. Only meaningful when coverage is being drained
  // at all and the link can carry the two-bank batch.
  bank_flip_ = options_.overlapped_drain && options_.coverage_feedback &&
               deployment_->batched_link();
  RETURN_IF_ERROR(ArmBreakpoints());

  if (options_.restore_mode == RestoreMode::kSnapshot) {
    // Capture the healthy post-boot state once per deployment, while the board is
    // parked at executor_main with breakpoints armed. The capture is deploy-time
    // traffic, so it stays outside the flight rings like the flash protocol does.
    deployment_->port().set_flight_recorder(nullptr);
    ASSIGN_OR_RETURN(BoardSnapshot snapshot,
                     BoardSnapshot::Capture(deployment_->port(), deployment_->image()));
    snapshot_ = std::make_unique<BoardSnapshot>(std::move(snapshot));
    deployment_->port().set_flight_recorder(&flight_);
  }

  if (options_.power_probe) {
    watchdog_.EnablePowerProbe();
  }
  start_time_ = deployment_->port().Now();
  telemetry_->tracer().End(deploy_span, deployment_->port().Now(), /*journal=*/true);
  return OkStatus();
}

Status TargetExecutor::ArmBreakpoints() {
  if (deployment_->batched_link()) {
    // All workflow breakpoints travel in one link round trip.
    std::vector<PortOp> ops;
    ops.push_back(PortOp::SetBp(executor_main_addr_));
    if (options_.coverage_feedback) {
      ops.push_back(PortOp::SetBp(cov_full_addr_));
    }
    if (options_.exception_monitor) {
      ops.push_back(PortOp::SetBp(exception_addr_));
    }
    RETURN_IF_ERROR(deployment_->port().RunBatch(&ops));
  } else {
    RETURN_IF_ERROR(deployment_->port().SetBreakpoint(executor_main_addr_));
    if (options_.coverage_feedback) {
      RETURN_IF_ERROR(deployment_->port().SetBreakpoint(cov_full_addr_));
    }
    if (options_.exception_monitor) {
      RETURN_IF_ERROR(deployment_->port().SetBreakpoint(exception_addr_));
    }
  }
  if (bank_flip_) {
    // Every path that arms also just booted (deploy, cold restore), which zeroed
    // the ring header: re-grant the self-service flip bit alongside the arming.
    RETURN_IF_ERROR(deployment_->SetBankFlipMode(true));
  }
  return OkStatus();
}

void TargetExecutor::DumpFlight(const char* reason, ExecOutcome* outcome) {
  telemetry::FlightDump dump = flight_.Dump(reason, deployment_->port().Now());
  // Which restore mode produced the board state the trigger fired on — the column
  // that separates "crashed on a cold-booted board" from "crashed after a warm
  // snapshot restore" when auditing provenance.
  dump.last_restore = last_restore_;
  telemetry_->EmitEvent(dump.at, "crash_dump", dump.ToEventFields());
  if (outcome != nullptr) {
    outcome->dump = std::move(dump);
  }
}

Status TargetExecutor::Restore(const char* reason) {
  restores_->Increment();
  execs_since_reset_ = 0;
  watchdog_.Reset();
  flight_.RecordEvent(deployment_->port().Now(), "restore", restores_->Value());
  telemetry::Tracer::Span span =
      telemetry_->tracer().Begin("watchdog_recovery", deployment_->port().Now());
  bool warm = false;
  if (options_.restore_mode == RestoreMode::kReflash) {
    RETURN_IF_ERROR(StateRestoration(*deployment_));
  } else if (options_.restore_mode == RestoreMode::kSnapshot) {
    // Warm fast path; any mid-restore failure (severed link, flash-shadow
    // mismatch, warm boot failure) falls back to the full reflash inside.
    RETURN_IF_ERROR(StateRestorationWithSnapshot(*deployment_, snapshot_.get(), &warm));
  } else {
    RETURN_IF_ERROR(deployment_->port().ResetTarget());
    if (deployment_->board().power_state() != PowerState::kRunning) {
      // Reboot alone did not bring the target back (damaged image). A human reflashes
      // eventually; until then the campaign pays the walk-over cost.
      deployment_->board().clock().Advance(kManualInterventionCost);
      RETURN_IF_ERROR(StateRestoration(*deployment_));
    }
  }
  Status status = OkStatus();
  if (warm) {
    snapshot_restores_->Increment();
    snapshot_bytes_->Add(snapshot_->ram_bytes());
    last_restore_ = "snapshot";
    // Breakpoints survive a warm restore (the debug unit is never power-cycled),
    // so no re-arm round trip is needed; the flight rings keep running too — the
    // board session continues.
  } else {
    last_restore_ = "cold";
    // A cold boot wiped the board-session context the rings describe.
    flight_.Clear();
    status = ArmBreakpoints();
  }
  telemetry_->EmitEvent(deployment_->port().Now(), "liveness_reset",
                        {telemetry::EventField::Text("reason", reason),
                         telemetry::EventField::Uint("restores", restores_->Value()),
                         telemetry::EventField::Text("restore", last_restore_)});
  telemetry_->tracer().End(span, deployment_->port().Now(), /*journal=*/true);
  return status;
}

void TargetExecutor::HarvestCoverage(ExecOutcome* outcome, AgentStatusView* status_out,
                                     bool* status_ok) {
  telemetry::Tracer::Span span =
      telemetry_->tracer().Begin("coverage_drain", deployment_->port().Now());
  auto entries = deployment_->DrainCoverage(/*dropped=*/nullptr, status_out);
  telemetry_->tracer().End(span, deployment_->port().Now());
  if (status_ok != nullptr) {
    *status_ok = entries.ok() && status_out != nullptr;
  }
  if (!entries.ok()) {
    return;
  }
  edges_drained_->Add(entries.value().size());
  flight_.RecordEvent(deployment_->port().Now(), "drain", entries.value().size());
  outcome->hits.insert(outcome->hits.end(), entries.value().begin(),
                       entries.value().end());
}

Result<ExecOutcome> TargetExecutor::ExecuteOne(const std::vector<uint8_t>& encoded) {
  ExecOutcome outcome;
  DebugPort& port = deployment_->port();
  execs_->Increment();
  flight_.RecordEvent(port.Now(), "exec_begin", execs_->Value());

  if (options_.inject_peripheral_events) {
    // Bench signal generator: a small burst of events rides along with each test case.
    uint64_t burst = session_rng_->Below(4);
    for (uint64_t i = 0; i < burst; ++i) {
      PeripheralEvent event;
      event.kind = static_cast<PeripheralEventKind>(session_rng_->Below(4));
      event.value = static_cast<uint32_t>(session_rng_->Next());
      (void)port.InjectPeripheralEvent(event);
    }
  }
  // Publish the test case; the agent picks it up when it passes executor_main.
  Status write = deployment_->WriteTestCase(encoded);
  if (!write.ok()) {
    // Link or target trouble: run the liveness protocol.
    timeouts_->Increment();
    outcome.status = ExecStatus::kLinkLost;
    DumpFlight("write_failed", &outcome);
    RETURN_IF_ERROR(Restore("write_failed"));
    return outcome;
  }
  flight_.RecordEvent(port.Now(), "publish", encoded.size());

  int stall_strikes = 0;
  int cov_drains = 0;
  bool done = false;
  const bool batched = deployment_->batched_link();
  const bool overlap = options_.overlapped_drain && batched;
  std::optional<Deployment::DrainPlan> pending_plan;
  std::vector<uint8_t> status_raw;
  // One exec_continue span covers the whole breakpoint-synchronised run of this test
  // case (all continue rounds and mid-run coverage drains); recovery time is not
  // included — it gets its own watchdog_recovery span inside Restore.
  telemetry::Tracer::Span exec_span = telemetry_->tracer().Begin("exec_continue", port.Now());
  for (int round = 0; !done && round < kMaxContinueRounds;) {
    // Batched link: the agent status block rides in the stop reply (GDB/MI-style
    // stop-event coalescing), so executor_main stops need no follow-up read. A
    // pending double-buffered drain plan rides the same round trip for free.
    auto stop_or = pending_plan.has_value()
                       ? port.ContinueWithPlan(&pending_plan->ops,
                                               deployment_->status_address(),
                                               kStatusBlockSize, &status_raw)
                       : (batched ? port.ContinueWithRead(deployment_->status_address(),
                                                          kStatusBlockSize, &status_raw)
                                  : port.Continue());
    if (stop_or.ok() && pending_plan.has_value()) {
      // The plan committed before the core was released: collect the parked bank.
      auto drained = deployment_->FinishDrainPlan(&*pending_plan);
      if (drained.ok()) {
        edges_drained_->Add(drained.value().size());
        overlapped_drains_->Increment();
        // vs. the immediate path (separate drain batch + continue): one fixed
        // link-latency charge saved per overlapped drain.
        drain_overlap_saved_us_->Add(kDebugTransactionCost);
        flight_.RecordEvent(port.Now(), "drain", drained.value().size());
        outcome.hits.insert(outcome.hits.end(), drained.value().begin(),
                            drained.value().end());
      }
      pending_plan.reset();
    } else if (pending_plan.has_value()) {
      // Severed link: the plan never applied; the target still fills the same bank
      // and the restore below rewinds everything to bank 0 anyway.
      pending_plan.reset();
    }
    if (!stop_or.ok()) {
      // Watchdog #1: connection timeout.
      timeouts_->Increment();
      if (!options_.watchdogs) {
        deployment_->board().clock().Advance(kManualInterventionCost);
      }
      outcome.status = ExecStatus::kLinkLost;
      telemetry_->tracer().End(exec_span, port.Now());
      DumpFlight("link_lost", &outcome);
      RETURN_IF_ERROR(Restore("link_lost"));
      return outcome;
    }
    const StopInfo& stop = stop_or.value();

    if (options_.exception_monitor && exception_monitor_.IsExceptionStop(stop)) {
      // Crash observed at the OS exception function.
      std::string uart = port.DrainUart();
      BugSignature signature;
      signature.detector = "exception";
      signature.kind = "panic";
      signature.excerpt = uart.empty() ? ("stopped at " + stop.symbol) : uart;
      outcome.status = ExecStatus::kCrashed;
      outcome.signature = signature;
      telemetry_->tracer().End(exec_span, port.Now());
      HarvestCoverage(&outcome);
      DumpFlight("crash", &outcome);
      RETURN_IF_ERROR(Restore("crash"));
      return outcome;
    }

    if (stop.reason == HaltReason::kBreakpoint && stop.symbol == "_kcmp_buf_full") {
      // Coverage ring full mid-program: drain and resume (Figure 4). Drains do not count
      // against the continue-round budget, but cap them against runaway loops.
      //
      // The target sat parked until the host's background status poll noticed the
      // halt: unlike the end-of-case stop (which completes the continue-and-read
      // rendezvous the host is already waiting on), a mid-case instrumentation
      // stall interrupts a host that is off servicing the rest of the farm. With
      // bank flips on, the target absorbs every other overflow itself and this
      // charge — the dominant drain cost — is paid half as often.
      deployment_->board().clock().Advance(kCovStallPollCost);
      if (overlap) {
        // Double-buffered: queue the drain+bank-flip plan onto the next continue
        // instead of paying a round trip now. The entries surface after the next
        // stop — same entries, one transaction cheaper.
        pending_plan = deployment_->MakeDrainPlan();
      } else {
        HarvestCoverage(&outcome);
      }
      if (++cov_drains > 64) {
        ++round;
      }
      continue;
    }

    if (stop.reason == HaltReason::kBreakpoint && stop.symbol == "executor_main") {
      // Back at the top of the loop. The first pass just means "test case accepted, about
      // to run" (the agent pauses before reading the mailbox); the program has completed
      // once the agent consumed the mailbox, which we see as a second stop here.
      bool waiting;
      if (batched) {
        waiting = Deployment::ParseStatusBlock(status_raw).state == AgentState::kWaiting;
      } else {
        auto status = deployment_->ReadAgentStatus();
        waiting = status.ok() && status.value().state == AgentState::kWaiting;
      }
      if (waiting) {
        ++round;
        continue;  // first stop: resume into the program
      }
      outcome.status = ExecStatus::kCompleted;
      done = true;
      break;
    }

    if (stop.reason == HaltReason::kIdle) {
      outcome.status = ExecStatus::kCompleted;
      done = true;
      break;
    }

    // Quantum expired (or an unexpected stop): consult watchdog #2.
    ++round;
    if (!options_.watchdogs) {
      if (round >= kMaxContinueRounds) {
        // No watchdog: the operator eventually notices the wedged board.
        deployment_->board().clock().Advance(kManualInterventionCost);
        outcome.status = ExecStatus::kStalled;
        stalls_->Increment();
        std::string uart = port.DrainUart();
        auto log_hit = log_monitor_.Scan(uart);
        if (options_.log_monitor && log_hit.has_value()) {
          outcome.status = ExecStatus::kCrashed;
          outcome.signature = log_hit;
        }
        telemetry_->tracer().End(exec_span, port.Now());
        HarvestCoverage(&outcome);
        DumpFlight("stall", &outcome);
        RETURN_IF_ERROR(Restore("stall"));
        return outcome;
      }
      continue;
    }
    LivenessVerdict verdict = watchdog_.Check(port);
    if (verdict == LivenessVerdict::kAlive) {
      continue;  // still making progress; keep running
    }
    if (verdict == LivenessVerdict::kPowerPlateau) {
      // Ammeter plateau: the core spins flat-out; skip the PC re-check round.
      stalls_->Increment();
      outcome.status = ExecStatus::kStalled;
      std::string uart_text = port.DrainUart();
      auto log_hit = log_monitor_.Scan(uart_text);
      if (options_.log_monitor && log_hit.has_value()) {
        outcome.status = ExecStatus::kCrashed;
        outcome.signature = log_hit;
      }
      telemetry_->tracer().End(exec_span, port.Now());
      HarvestCoverage(&outcome);
      DumpFlight("power_plateau", &outcome);
      RETURN_IF_ERROR(Restore("power_plateau"));
      return outcome;
    }
    if (verdict == LivenessVerdict::kPcStall) {
      ++stall_strikes;
      if (stall_strikes < 2) {
        continue;  // one more continue to confirm (Algorithm 1 re-check)
      }
      stalls_->Increment();
      outcome.status = ExecStatus::kStalled;
      // The log monitor reads the wedge's last words — this is how assertion bugs
      // (log + parked core) are detected.
      std::string uart = port.DrainUart();
      auto log_hit = log_monitor_.Scan(uart);
      if (options_.log_monitor && log_hit.has_value()) {
        outcome.status = ExecStatus::kCrashed;
        outcome.signature = log_hit;
      }
      telemetry_->tracer().End(exec_span, port.Now());
      HarvestCoverage(&outcome);
      DumpFlight("pc_stall", &outcome);
      RETURN_IF_ERROR(Restore("pc_stall"));
      return outcome;
    }
    // Connection timeout mid-protocol.
    timeouts_->Increment();
    outcome.status = ExecStatus::kLinkLost;
    telemetry_->tracer().End(exec_span, port.Now());
    DumpFlight("link_lost", &outcome);
    RETURN_IF_ERROR(Restore("link_lost"));
    return outcome;
  }

  telemetry_->tracer().End(exec_span, port.Now());

  // Completed path: scan the log for crash text that did not wedge the core, then
  // harvest coverage.
  std::string uart = port.DrainUart();
  if (options_.log_monitor) {
    auto log_hit = log_monitor_.Scan(uart);
    if (log_hit.has_value()) {
      outcome.status = ExecStatus::kCrashed;
      outcome.signature = log_hit;
      HarvestCoverage(&outcome);
      DumpFlight("crash", &outcome);
      RETURN_IF_ERROR(Restore("crash"));
      return outcome;
    }
  }
  // The post-execution status read shares the drain's round trip on the batched link.
  AgentStatusView status_view;
  bool status_read = false;
  HarvestCoverage(&outcome, &status_view, &status_read);
  if (status_read && status_view.last_error != AgentError::kNone) {
    rejected_->Increment();
    flight_.RecordEvent(port.Now(), "rejected", rejected_->Value());
  }
  ++execs_since_reset_;
  if (execs_since_reset_ >= options_.periodic_reset_execs) {
    execs_since_reset_ = 0;
    watchdog_.Reset();
    if (options_.restore_mode == RestoreMode::kSnapshot && snapshot_ != nullptr) {
      // Routine state shedding via the snapshot: the same fresh kernel state the
      // reboot below produces, at kWarmRestoreCost instead of kRebootCost. Like
      // the plain reboot, this is not counted as a liveness restore.
      Status warm = snapshot_->Restore(port);
      if (!warm.ok()) {
        DumpFlight("periodic_reset_failed", /*outcome=*/nullptr);
        RETURN_IF_ERROR(Restore("periodic_reset_failed"));
      } else {
        snapshot_restores_->Increment();
        snapshot_bytes_->Add(snapshot_->ram_bytes());
        last_restore_ = "snapshot";
        flight_.RecordEvent(port.Now(), "periodic_restore", snapshot_restores_->Value());
      }
    } else {
      // Routine state shedding: a plain reboot is enough (nothing is damaged), so
      // the campaign does not pay the reflash cost here.
      RETURN_IF_ERROR(port.ResetTarget());
      if (deployment_->board().power_state() != PowerState::kRunning) {
        DumpFlight("periodic_reset_failed", /*outcome=*/nullptr);
        RETURN_IF_ERROR(Restore("periodic_reset_failed"));
      } else {
        last_restore_ = "cold";
        flight_.Clear();  // a cold boot wipes the board-session context
        RETURN_IF_ERROR(ArmBreakpoints());
      }
    }
  }
  return outcome;
}

}  // namespace eof
