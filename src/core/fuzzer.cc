#include "src/core/fuzzer.h"

#include "src/kernel/os.h"

namespace eof {

Result<CampaignPlan> PrepareCampaign(const FuzzerConfig& config) {
  CampaignPlan plan;
  ASSIGN_OR_RETURN(OsInfo info, OsRegistry::Instance().Find(config.os_name));
  std::unique_ptr<Os> scratch_os = info.factory();
  plan.exception_symbol = scratch_os->exception_symbol();
  spec::MinerOptions miner;
  miner.include_extended = config.use_extended_specs;
  miner.seed = config.seed;
  ASSIGN_OR_RETURN(spec::MinedSpecs mined,
                   spec::MineValidatedSpecs(scratch_os->registry(), miner));
  plan.specs = std::move(mined.specs);
  return plan;
}

ExecutorOptions MakeExecutorOptions(const FuzzerConfig& config, uint64_t seed,
                                    const std::string& exception_symbol) {
  ExecutorOptions options;
  options.os_name = config.os_name;
  options.board_name = config.board_name;
  options.instrumentation = config.instrumentation;
  options.seed = seed;
  options.restore_mode = config.restore_mode;
  options.coverage_feedback = config.coverage_feedback;
  options.log_monitor = config.log_monitor;
  options.exception_monitor = config.exception_monitor;
  options.watchdogs = config.watchdogs;
  options.power_probe = config.power_probe;
  options.inject_peripheral_events = config.inject_peripheral_events;
  options.batched_link = config.batched_link;
  options.periodic_reset_execs = config.periodic_reset_execs;
  options.exception_symbol = exception_symbol;
  return options;
}

CampaignScheduler::Options MakeSchedulerOptions(const FuzzerConfig& config, int workers) {
  CampaignScheduler::Options options;
  options.os_name = config.os_name;
  options.coverage_feedback = config.coverage_feedback;
  options.budget = config.budget;
  options.sample_points = config.sample_points;
  options.workers = workers;
  return options;
}

Result<CampaignResult> EofFuzzer::Run() {
  ASSIGN_OR_RETURN(CampaignPlan plan, PrepareCampaign(config_));

  fuzz::GeneratorOptions gen = config_.gen;
  gen.use_extended = config_.use_extended_specs;
  fuzz::Generator generator(plan.specs, gen, config_.seed);
  Rng schedule_rng(config_.seed ^ 0x5eedf00dULL);

  // The executor shares the scheduling RNG as its session stream, preserving the
  // historical single-threaded stream (peripheral-event bursts and scheduling rolls
  // interleave on one sequence, as the monolithic engine did).
  ASSIGN_OR_RETURN(
      std::unique_ptr<TargetExecutor> executor,
      TargetExecutor::Create(MakeExecutorOptions(config_, config_.seed, plan.exception_symbol),
                             &schedule_rng));
  CampaignScheduler scheduler(plan.specs, MakeSchedulerOptions(config_, /*workers=*/1));
  scheduler.SeedCorpus(config_.seed_programs);

  while (executor->Elapsed() < config_.budget) {
    fuzz::Program program = scheduler.NextProgram(generator, schedule_rng);
    std::vector<uint8_t> encoded;
    if (!EncodeForMailbox(plan.specs, &program, &encoded)) {
      continue;
    }
    ASSIGN_OR_RETURN(ExecOutcome outcome, executor->ExecuteOne(encoded));
    scheduler.OnOutcome(program, outcome, generator, executor->Elapsed(), /*worker=*/0);
  }
  return scheduler.Finalize(executor->stats(), executor->Elapsed(),
                            executor->port_stats());
}

}  // namespace eof
