#include "src/core/fuzzer.h"

#include "src/common/logging.h"
#include "src/core/replay.h"
#include "src/kernel/os.h"

namespace eof {

Result<CampaignPlan> PrepareCampaign(const FuzzerConfig& config) {
  CampaignPlan plan;
  ASSIGN_OR_RETURN(OsInfo info, OsRegistry::Instance().Find(config.os_name));
  std::unique_ptr<Os> scratch_os = info.factory();
  plan.exception_symbol = scratch_os->exception_symbol();
  spec::MinerOptions miner;
  miner.include_extended = config.use_extended_specs;
  miner.seed = config.seed;
  ASSIGN_OR_RETURN(spec::MinedSpecs mined,
                   spec::MineValidatedSpecs(scratch_os->registry(), miner));
  plan.specs = std::move(mined.specs);
  return plan;
}

ExecutorOptions MakeExecutorOptions(const FuzzerConfig& config, uint64_t seed,
                                    const std::string& exception_symbol) {
  ExecutorOptions options;
  options.os_name = config.os_name;
  options.board_name = config.board_name;
  options.instrumentation = config.instrumentation;
  options.seed = seed;
  options.restore_mode = config.restore_mode;
  options.coverage_feedback = config.coverage_feedback;
  options.log_monitor = config.log_monitor;
  options.exception_monitor = config.exception_monitor;
  options.watchdogs = config.watchdogs;
  options.power_probe = config.power_probe;
  options.inject_peripheral_events = config.inject_peripheral_events;
  options.batched_link = config.batched_link;
  options.overlapped_drain = config.overlapped_drain;
  options.periodic_reset_execs = config.periodic_reset_execs;
  options.exception_symbol = exception_symbol;
  return options;
}

CampaignScheduler::Options MakeSchedulerOptions(const FuzzerConfig& config, int workers) {
  CampaignScheduler::Options options;
  options.os_name = config.os_name;
  options.coverage_feedback = config.coverage_feedback;
  options.directed = config.directed;
  options.trim = config.trim;
  options.budget = config.budget;
  options.sample_points = config.sample_points;
  options.workers = workers;
  options.seed = config.seed;
  options.export_corpus = config.export_corpus;
  if (config.restore_mode == RestoreMode::kSnapshot) {
    options.validator = MakeColdBootValidator(config);
  }
  return options;
}

std::function<bool(const BugReport&)> MakeColdBootValidator(const FuzzerConfig& config) {
  // Capture by value: the validator outlives the config reference and runs late in
  // the campaign, replaying each first sighting on a board deployed from scratch.
  std::string os_name = config.os_name;
  std::string board_name = config.board_name;
  return [os_name, board_name](const BugReport& bug) {
    Result<ReplayOutcome> replay =
        ReplayReproducer(os_name, bug.program_text, board_name);
    if (!replay.ok()) {
      // A reproducer that cannot even be replayed (parse failure, deploy failure)
      // is no evidence of a cold-boot bug.
      return false;
    }
    if (!replay->crashed) {
      return false;
    }
    // Attributed sightings must reproduce as the same catalog bug; unattributed
    // ones only need the cold board to crash at all.
    return bug.catalog_id == 0 || replay->catalog_id == bug.catalog_id;
  };
}

telemetry::CampaignTelemetry::Options MakeTelemetryOptions(const FuzzerConfig& config,
                                                           int workers) {
  telemetry::CampaignTelemetry::Options options;
  options.metrics_out = config.metrics_out;
  options.snapshot_interval = config.metrics_interval;
  options.budget = config.budget;
  options.seed = config.seed;
  options.workers = workers;
  return options;
}

Result<CampaignResult> EofFuzzer::Run() {
  ASSIGN_OR_RETURN(CampaignPlan plan, PrepareCampaign(config_));
  ASSIGN_OR_RETURN(std::unique_ptr<telemetry::CampaignTelemetry> telemetry,
                   telemetry::CampaignTelemetry::Create(
                       MakeTelemetryOptions(config_, /*workers=*/1)));

  fuzz::GeneratorOptions gen = config_.gen;
  gen.use_extended = config_.use_extended_specs;
  fuzz::Generator generator(plan.specs, gen, config_.seed);
  Rng schedule_rng(config_.seed ^ 0x5eedf00dULL);

  // The executor shares the scheduling RNG as its session stream, preserving the
  // historical single-threaded stream (peripheral-event bursts and scheduling rolls
  // interleave on one sequence, as the monolithic engine did).
  ExecutorOptions executor_options =
      MakeExecutorOptions(config_, config_.seed, plan.exception_symbol);
  executor_options.telemetry = telemetry->board(0);
  ASSIGN_OR_RETURN(std::unique_ptr<TargetExecutor> executor,
                   TargetExecutor::Create(executor_options, &schedule_rng));

  CampaignScheduler::Options scheduler_options =
      MakeSchedulerOptions(config_, /*workers=*/1);
  scheduler_options.registry = &telemetry->campaign_registry();
  scheduler_options.sink = telemetry->sink();
  CampaignScheduler scheduler(plan.specs, scheduler_options);
  scheduler.SeedCorpus(config_.seed_programs);

  telemetry->CampaignStart(config_.os_name, config_.board_name);
  telemetry->StartEmitter([&scheduler] { return scheduler.View(); });

  uint64_t execs_run = 0;
  while (executor->Elapsed() < config_.budget &&
         (config_.max_execs == 0 || execs_run < config_.max_execs)) {
    fuzz::Program program = scheduler.NextProgram(generator, schedule_rng);
    std::vector<uint8_t> encoded;
    if (!EncodeForMailbox(plan.specs, &program, &encoded)) {
      continue;
    }
    ASSIGN_OR_RETURN(ExecOutcome outcome, executor->ExecuteOne(encoded));
    ++execs_run;
    scheduler.OnOutcome(program, outcome, generator, executor->Elapsed(), /*worker=*/0);
    if (telemetry->emitter() != nullptr) {
      executor->SetCoverageGauge(scheduler.CoverageCount());
      telemetry->emitter()->MaybeEmit(/*worker=*/0, executor->Elapsed());
    }
  }
  VirtualTime elapsed = executor->Elapsed();
  executor->SetCoverageGauge(scheduler.CoverageCount());
  if (telemetry->emitter() != nullptr) {
    telemetry->emitter()->WorkerDone(0, elapsed);
  }
  CampaignResult result =
      scheduler.Finalize(executor->stats(), elapsed, executor->port_stats());
  telemetry->CampaignEnd(elapsed);
  result.journal_dropped = telemetry->journal_dropped();
  if (result.journal_dropped > 0) {
    EOF_LOG(kWarning) << "journal sink dropped " << result.journal_dropped
                      << " rows; " << config_.metrics_out
                      << " is incomplete (eof report numbers are lower bounds)";
  }
  return result;
}

}  // namespace eof
