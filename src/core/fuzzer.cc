#include "src/core/fuzzer.h"

#include "src/common/logging.h"
#include "src/fuzz/program_text.h"
#include "src/common/strings.h"
#include "src/kernel/os.h"

namespace eof {
namespace {

// Rounds of exec-continue the engine tolerates before consulting the watchdogs.
constexpr int kMaxContinueRounds = 6;

// Virtual cost of a human walking over to a bricked board when watchdogs are disabled
// (the ablation's "manual intervention").
constexpr VirtualDuration kManualInterventionCost = 30 * kVirtualMinute;

}  // namespace

Status EofFuzzer::Setup() {
  DeployOptions deploy;
  deploy.os_name = config_.os_name;
  deploy.board_name = config_.board_name;
  deploy.instrumentation = config_.instrumentation;
  deploy.seed = config_.seed;
  ASSIGN_OR_RETURN(deployment_, Deployment::Create(deploy));

  // Mine + post-validate the API specifications (Figure 3 step ②).
  ASSIGN_OR_RETURN(OsInfo info, OsRegistry::Instance().Find(config_.os_name));
  std::unique_ptr<Os> scratch_os = info.factory();
  exception_symbol_ = scratch_os->exception_symbol();
  spec::MinerOptions miner;
  miner.include_extended = config_.use_extended_specs;
  miner.seed = config_.seed;
  ASSIGN_OR_RETURN(spec::MinedSpecs mined, spec::MineValidatedSpecs(scratch_os->registry(),
                                                                    miner));
  specs_ = std::move(mined.specs);

  fuzz::GeneratorOptions gen = config_.gen;
  gen.use_extended = config_.use_extended_specs;
  generator_ = std::make_unique<fuzz::Generator>(specs_, gen, config_.seed);
  schedule_rng_ = std::make_unique<Rng>(config_.seed ^ 0x5eedf00dULL);

  for (const std::string& text : config_.seed_programs) {
    auto parsed = fuzz::ParseProgramText(specs_, text);
    if (parsed.ok() && config_.coverage_feedback) {
      corpus_.Add(std::move(parsed.value()), 1);
    }
  }

  ASSIGN_OR_RETURN(executor_main_addr_, deployment_->SymbolAddress("executor_main"));
  ASSIGN_OR_RETURN(cov_full_addr_, deployment_->SymbolAddress("_kcmp_buf_full"));
  RETURN_IF_ERROR(ArmBreakpoints());

  if (config_.power_probe) {
    watchdog_.EnablePowerProbe();
  }

  start_time_ = deployment_->port().Now();
  sample_interval_ = config_.budget / std::max<uint32_t>(config_.sample_points, 1);
  next_sample_ = start_time_ + sample_interval_;
  return OkStatus();
}

Status EofFuzzer::ArmBreakpoints() {
  RETURN_IF_ERROR(deployment_->port().SetBreakpoint(executor_main_addr_));
  if (config_.coverage_feedback) {
    RETURN_IF_ERROR(deployment_->port().SetBreakpoint(cov_full_addr_));
  }
  if (config_.exception_monitor) {
    RETURN_IF_ERROR(exception_monitor_.Arm(*deployment_, exception_symbol_));
  }
  return OkStatus();
}

Status EofFuzzer::Restore() {
  ++result_.restores;
  execs_since_reset_ = 0;
  watchdog_.Reset();
  if (config_.restore_mode == RestoreMode::kReflash) {
    RETURN_IF_ERROR(StateRestoration(*deployment_));
  } else {
    RETURN_IF_ERROR(deployment_->port().ResetTarget());
    if (deployment_->board().power_state() != PowerState::kRunning) {
      // Reboot alone did not bring the target back (damaged image). A human reflashes
      // eventually; until then the campaign pays the walk-over cost.
      deployment_->board().clock().Advance(kManualInterventionCost);
      RETURN_IF_ERROR(StateRestoration(*deployment_));
    }
  }
  return ArmBreakpoints();
}

void EofFuzzer::HarvestCoverage(ExecOutcome* outcome) {
  auto entries = deployment_->DrainCoverage();
  if (!entries.ok()) {
    return;
  }
  size_t fresh = coverage_.AddBatch(entries.value());
  outcome->new_edges += fresh;
}

void EofFuzzer::RecordBug(const BugSignature& signature, const fuzz::Program& program) {
  ++result_.crashes;
  int catalog_id = AttributeBug(config_.os_name, signature.excerpt);
  // Deduplicate: one report per catalog id (or per excerpt for unknowns).
  for (const BugReport& existing : result_.bugs) {
    if (catalog_id != 0 ? existing.catalog_id == catalog_id
                        : existing.excerpt == signature.excerpt) {
      return;
    }
  }
  BugReport report;
  report.catalog_id = catalog_id;
  report.detector = signature.detector;
  report.kind = signature.kind;
  report.excerpt = signature.excerpt;
  report.at = deployment_->port().Now() - start_time_;
  report.program_text = fuzz::SerializeProgramText(specs_, program);
  result_.bugs.push_back(std::move(report));
  EOF_LOG(kDebug) << config_.os_name << ": bug #" << catalog_id << " via "
                  << signature.detector << ": " << signature.excerpt;
}

Result<EofFuzzer::ExecOutcome> EofFuzzer::ExecuteOne(const fuzz::Program& program,
                                                     const std::vector<uint8_t>& encoded) {
  ExecOutcome outcome;
  DebugPort& port = deployment_->port();

  if (config_.inject_peripheral_events) {
    // Bench signal generator: a small burst of events rides along with each test case.
    uint64_t burst = schedule_rng_->Below(4);
    for (uint64_t i = 0; i < burst; ++i) {
      PeripheralEvent event;
      event.kind = static_cast<PeripheralEventKind>(schedule_rng_->Below(4));
      event.value = static_cast<uint32_t>(schedule_rng_->Next());
      (void)port.InjectPeripheralEvent(event);
    }
  }
  // Publish the test case; the agent picks it up when it passes executor_main.
  Status write = deployment_->WriteTestCase(encoded);
  if (!write.ok()) {
    // Link or target trouble: run the liveness protocol.
    ++result_.timeouts;
    outcome.status = ExecStatus::kLinkLost;
    RETURN_IF_ERROR(Restore());
    return outcome;
  }

  int stall_strikes = 0;
  int cov_drains = 0;
  bool done = false;
  for (int round = 0; !done && round < kMaxContinueRounds;) {
    auto stop_or = port.Continue();
    if (!stop_or.ok()) {
      // Watchdog #1: connection timeout.
      ++result_.timeouts;
      if (!config_.watchdogs) {
        deployment_->board().clock().Advance(kManualInterventionCost);
      }
      outcome.status = ExecStatus::kLinkLost;
      RETURN_IF_ERROR(Restore());
      return outcome;
    }
    const StopInfo& stop = stop_or.value();

    if (config_.exception_monitor && exception_monitor_.IsExceptionStop(stop)) {
      // Crash observed at the OS exception function.
      std::string uart = port.DrainUart();
      BugSignature signature;
      signature.detector = "exception";
      signature.kind = "panic";
      signature.excerpt = uart.empty() ? ("stopped at " + stop.symbol) : uart;
      outcome.status = ExecStatus::kCrashed;
      outcome.signature = signature;
      HarvestCoverage(&outcome);
      RETURN_IF_ERROR(Restore());
      return outcome;
    }

    if (stop.reason == HaltReason::kBreakpoint && stop.symbol == "_kcmp_buf_full") {
      // Coverage ring full mid-program: drain and resume (Figure 4). Drains do not count
      // against the continue-round budget, but cap them against runaway loops.
      HarvestCoverage(&outcome);
      if (++cov_drains > 64) {
        ++round;
      }
      continue;
    }

    if (stop.reason == HaltReason::kBreakpoint && stop.symbol == "executor_main") {
      // Back at the top of the loop. The first pass just means "test case accepted, about
      // to run" (the agent pauses before reading the mailbox); the program has completed
      // once the agent consumed the mailbox, which we see as a second stop here.
      auto status = deployment_->ReadAgentStatus();
      if (status.ok() && status.value().state == AgentState::kWaiting) {
        ++round;
        continue;  // first stop: resume into the program
      }
      outcome.status = ExecStatus::kCompleted;
      done = true;
      break;
    }

    if (stop.reason == HaltReason::kIdle) {
      outcome.status = ExecStatus::kCompleted;
      done = true;
      break;
    }

    // Quantum expired (or an unexpected stop): consult watchdog #2.
    ++round;
    if (!config_.watchdogs) {
      if (round >= kMaxContinueRounds) {
        // No watchdog: the operator eventually notices the wedged board.
        deployment_->board().clock().Advance(kManualInterventionCost);
        outcome.status = ExecStatus::kStalled;
        ++result_.stalls;
        std::string uart = port.DrainUart();
        auto log_hit = log_monitor_.Scan(uart);
        if (config_.log_monitor && log_hit.has_value()) {
          outcome.status = ExecStatus::kCrashed;
          outcome.signature = log_hit;
        }
        HarvestCoverage(&outcome);
        RETURN_IF_ERROR(Restore());
        return outcome;
      }
      continue;
    }
    LivenessVerdict verdict = watchdog_.Check(port);
    if (verdict == LivenessVerdict::kAlive) {
      continue;  // still making progress; keep running
    }
    if (verdict == LivenessVerdict::kPowerPlateau) {
      // Ammeter plateau: the core spins flat-out; skip the PC re-check round.
      ++result_.stalls;
      outcome.status = ExecStatus::kStalled;
      std::string uart_text = port.DrainUart();
      auto log_hit = log_monitor_.Scan(uart_text);
      if (config_.log_monitor && log_hit.has_value()) {
        outcome.status = ExecStatus::kCrashed;
        outcome.signature = log_hit;
      }
      HarvestCoverage(&outcome);
      RETURN_IF_ERROR(Restore());
      return outcome;
    }
    if (verdict == LivenessVerdict::kPcStall) {
      ++stall_strikes;
      if (stall_strikes < 2) {
        continue;  // one more continue to confirm (Algorithm 1 re-check)
      }
      ++result_.stalls;
      outcome.status = ExecStatus::kStalled;
      // The log monitor reads the wedge's last words — this is how assertion bugs
      // (log + parked core) are detected.
      std::string uart = port.DrainUart();
      auto log_hit = log_monitor_.Scan(uart);
      if (config_.log_monitor && log_hit.has_value()) {
        outcome.status = ExecStatus::kCrashed;
        outcome.signature = log_hit;
      }
      HarvestCoverage(&outcome);
      RETURN_IF_ERROR(Restore());
      return outcome;
    }
    // Connection timeout mid-protocol.
    ++result_.timeouts;
    outcome.status = ExecStatus::kLinkLost;
    RETURN_IF_ERROR(Restore());
    return outcome;
  }

  // Completed path: scan the log for crash text that did not wedge the core, then
  // harvest coverage.
  std::string uart = port.DrainUart();
  if (config_.log_monitor) {
    auto log_hit = log_monitor_.Scan(uart);
    if (log_hit.has_value()) {
      outcome.status = ExecStatus::kCrashed;
      outcome.signature = log_hit;
      HarvestCoverage(&outcome);
      RETURN_IF_ERROR(Restore());
      return outcome;
    }
  }
  HarvestCoverage(&outcome);

  auto status = deployment_->ReadAgentStatus();
  if (status.ok() && status.value().last_error != AgentError::kNone) {
    ++result_.rejected;
  }
  ++execs_since_reset_;
  if (execs_since_reset_ >= config_.periodic_reset_execs) {
    // Routine state shedding: a plain reboot is enough (nothing is damaged), so the
    // campaign does not pay the reflash cost here.
    execs_since_reset_ = 0;
    watchdog_.Reset();
    RETURN_IF_ERROR(port.ResetTarget());
    if (deployment_->board().power_state() != PowerState::kRunning) {
      RETURN_IF_ERROR(Restore());
    } else {
      RETURN_IF_ERROR(ArmBreakpoints());
    }
  }
  return outcome;
}

fuzz::Program EofFuzzer::NextProgram() {
  if (config_.coverage_feedback && !corpus_.empty()) {
    uint64_t roll = schedule_rng_->Below(100);
    if (roll < 70) {
      const fuzz::Program* seed = corpus_.PickSeed(*schedule_rng_);
      return generator_->Mutate(*seed);
    }
    if (roll < 80 && corpus_.size() >= 2) {
      const fuzz::Program* a = corpus_.PickSeed(*schedule_rng_);
      const fuzz::Program* b = corpus_.PickSeed(*schedule_rng_);
      return generator_->Splice(*a, *b);
    }
  }
  return generator_->Generate();
}

void EofFuzzer::MaybeSample() {
  VirtualTime now = deployment_->port().Now();
  while (now >= next_sample_ &&
         result_.series.size() < config_.sample_points) {
    result_.series.push_back(CampaignSample{next_sample_ - start_time_, coverage_.Count()});
    next_sample_ += sample_interval_;
  }
}

Result<CampaignResult> EofFuzzer::Run() {
  RETURN_IF_ERROR(Setup());
  DebugPort& port = deployment_->port();

  while (port.Now() - start_time_ < config_.budget) {
    fuzz::Program program = NextProgram();
    std::vector<uint8_t> encoded = EncodeProgram(program.ToWire(specs_));
    if (encoded.size() > kMailboxMaxBytes) {
      // Oversized program: trim calls until it fits the mailbox.
      while (!program.calls.empty() && encoded.size() > kMailboxMaxBytes) {
        program.calls.pop_back();
        encoded = EncodeProgram(program.ToWire(specs_));
      }
      if (program.calls.empty()) {
        continue;
      }
    }

    ASSIGN_OR_RETURN(ExecOutcome outcome, ExecuteOne(program, encoded));
    ++result_.execs;

    if (outcome.signature.has_value()) {
      RecordBug(*outcome.signature, program);
    }
    if (config_.coverage_feedback && outcome.new_edges > 0) {
      if (corpus_.Add(program, outcome.new_edges)) {
        generator_->NotifyNewCoverage(program);
      }
    }
    MaybeSample();
  }

  // Pad the series to its full length so repetitions align.
  while (result_.series.size() < config_.sample_points) {
    result_.series.push_back(
        CampaignSample{config_.budget * (result_.series.size() + 1) / config_.sample_points,
                       coverage_.Count()});
  }
  result_.final_coverage = coverage_.Count();
  result_.corpus_size = corpus_.size();
  result_.elapsed = port.Now() - start_time_;
  return result_;
}

}  // namespace eof
