// Deployment: one attached (board, image, debug port) trio plus the host-side helpers all
// fuzzers share — flashing every partition at its table offset, booting to the agent,
// writing mailbox test cases, reading agent status, and draining the coverage ring.
//
// This corresponds to the paper's per-target adaptation artifacts: the memory-layout
// analysis (partition table), the OpenOCD connection config, and the agent glue.

#ifndef SRC_CORE_DEPLOYMENT_H_
#define SRC_CORE_DEPLOYMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/agent/agent_layout.h"
#include "src/common/status.h"
#include "src/kernel/cov_ring.h"
#include "src/core/image_builder.h"
#include "src/hw/board.h"
#include "src/hw/board_catalog.h"
#include "src/hw/debug_port.h"

namespace eof {

struct DeployOptions {
  std::string os_name;
  std::string board_name;  // "" = the OS's default evaluation board
  InstrumentationOptions instrumentation;
  uint64_t seed = 1;
};

// Snapshot of the agent status block.
struct AgentStatusView {
  AgentState state = AgentState::kBooting;
  AgentError last_error = AgentError::kNone;
  uint32_t calls_done = 0;
  uint32_t progs_done = 0;
  uint32_t total_calls = 0;
};

class Deployment {
 public:
  // Builds the image, constructs the board, attaches the debug port, flashes, and boots to
  // the agent. On success the target is parked at executor_main (kIdle).
  static Result<std::unique_ptr<Deployment>> Create(const DeployOptions& options);

  Board& board() { return *board_; }
  DebugPort& port() { return *port_; }
  const FirmwareImage& image() const { return *image_; }
  const BoardSpec& board_spec() const { return board_->spec(); }

  // Reflash every partition payload at its table offset and reboot — the StateRestoration
  // body of Algorithm 1 (lines 15-18).
  Status ReflashAndReboot();

  // Absolute address of `symbol`, resolved from the image.
  Result<uint64_t> SymbolAddress(const std::string& symbol) const;

  // Writes an encoded program into the mailbox and raises the ready flag.
  Status WriteTestCase(const std::vector<uint8_t>& encoded);

  Result<AgentStatusView> ReadAgentStatus();

  // Reads the coverage ring, resets its header, and returns the drained entries
  // (synthetic basic-block addresses). Also returns entries dropped since last drain via
  // `dropped` when non-null.
  Result<std::vector<uint64_t>> DrainCoverage(uint32_t* dropped = nullptr);

  CovRingLayout cov_ring() const { return ring_; }

 private:
  Deployment() = default;

  std::shared_ptr<FirmwareImage> image_;
  std::unique_ptr<Board> board_;
  std::unique_ptr<DebugPort> port_;
  CovRingLayout ring_;
  uint64_t ram_base_ = 0;
};

}  // namespace eof

#endif  // SRC_CORE_DEPLOYMENT_H_
