// Deployment: one attached (board, image, debug port) trio plus the host-side helpers all
// fuzzers share — flashing every partition at its table offset, booting to the agent,
// writing mailbox test cases, reading agent status, and draining the coverage ring.
//
// This corresponds to the paper's per-target adaptation artifacts: the memory-layout
// analysis (partition table), the OpenOCD connection config, and the agent glue.

#ifndef SRC_CORE_DEPLOYMENT_H_
#define SRC_CORE_DEPLOYMENT_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/agent/agent_layout.h"
#include "src/common/coverage_types.h"
#include "src/common/status.h"
#include "src/kernel/cov_ring.h"
#include "src/core/image_builder.h"
#include "src/hw/board.h"
#include "src/hw/board_catalog.h"
#include "src/hw/debug_port.h"
#include "src/telemetry/telemetry.h"

namespace eof {

struct DeployOptions {
  std::string os_name;
  std::string board_name;  // "" = the OS's default evaluation board
  InstrumentationOptions instrumentation;
  uint64_t seed = 1;

  // Default: coalesce the per-execution link traffic into vectored batches and
  // delta-reflash on restore. false = the legacy per-op protocol (one round trip per
  // read/write, unconditional full reflash) kept for baseline fidelity and for the
  // batched-vs-legacy comparison in bench_port_batching.
  bool batched_link = true;

  // The board session's telemetry; when set, the debug port registers its `link.*`
  // counters there, reflashes are traced as "reflash" spans, and delta-reflash
  // savings are journaled. nullptr = the port keeps a private registry (tests,
  // standalone deployments). Must outlive the deployment.
  telemetry::BoardTelemetry* telemetry = nullptr;
};

// Snapshot of the agent status block.
struct AgentStatusView {
  AgentState state = AgentState::kBooting;
  AgentError last_error = AgentError::kNone;
  uint32_t calls_done = 0;
  uint32_t progs_done = 0;
  uint32_t total_calls = 0;
};

class Deployment {
 public:
  // Builds the image, constructs the board, attaches the debug port, flashes, and boots to
  // the agent. On success the target is parked at executor_main (kIdle).
  static Result<std::unique_ptr<Deployment>> Create(const DeployOptions& options);

  Board& board() { return *board_; }
  DebugPort& port() { return *port_; }
  const FirmwareImage& image() const { return *image_; }
  const BoardSpec& board_spec() const { return board_->spec(); }

  // Restore every partition payload at its table offset and reboot — the StateRestoration
  // body of Algorithm 1 (lines 15-18). On the batched link this is a DELTA reflash: each
  // partition's payload hash (FNV, cached per partition) is compared against a
  // target-assisted flash checksum, and only partitions whose on-flash bytes actually
  // changed since the last flash are reprogrammed; proven-clean bytes are counted in
  // DebugPortStats::flash_skipped_bytes. The legacy link reflashes unconditionally.
  Status ReflashAndReboot();

  // Absolute address of `symbol`, resolved from the image.
  Result<uint64_t> SymbolAddress(const std::string& symbol) const;

  // Writes an encoded program into the mailbox and raises the ready flag. Batched link:
  // payload and header travel in one round trip (the header write still publishes last,
  // so the flag-after-payload order the agent depends on is preserved).
  Status WriteTestCase(const std::vector<uint8_t>& encoded);

  Result<AgentStatusView> ReadAgentStatus();

  // Parses a raw status block (as read from status_address()) into a view.
  static AgentStatusView ParseStatusBlock(const std::vector<uint8_t>& raw);

  // Absolute address of the agent status block.
  uint64_t status_address() const { return ram_base_ + kStatusBlockOffset; }

  // Enables or disables self-service bank flips: sets kBankFlipEnableBit in the
  // ring's active_bank word (the target checks it at every overflow) and switches
  // the host drains onto the two-bank protocol. Call while the target is stopped,
  // after every arm (deploy and cold restore re-zero the header word). One link
  // write; a no-op when the image carries no ring.
  Status SetBankFlipMode(bool enabled);
  bool bank_flip_mode() const { return flip_mode_; }

  // Drains the coverage ring and returns the attributed entries. Also returns
  // entries dropped since last drain via `dropped` when non-null; when `status` is
  // non-null the agent status block is read in the SAME round trip (batched link) or
  // with one extra read (legacy link).
  //
  // Batched link: each bank header and a capacity-bounded entry prefetch are read
  // speculatively in one contiguous op, and the header is updated with an adapter-side
  // read-then-subtract (count -= drained, dropped -= reported) instead of a blind 0/0
  // write — entries the target appends between the read and the header update survive
  // for the next drain. The legacy link keeps the historical read/read/zero protocol.
  //
  // Without bank flips the target never leaves bank 0 and only it is drained. With
  // SetBankFlipMode(true) both banks ride the same round trip and entries surface in
  // write order: the parked bank (the one the target flipped away from — its entries
  // are older) first, then the active one. The host never flips banks itself.
  Result<std::vector<CovHit>> DrainCoverage(uint32_t* dropped = nullptr,
                                            AgentStatusView* status = nullptr);

  // --- overlapped (double-buffered) drain ---
  //
  // MakeDrainPlan builds the op plan for a both-bank drain (the read+subtract
  // protocol above). Ride the plan on the next exec-continue via
  // DebugPort::ContinueWithPlan — the drain then costs zero extra round trips: the
  // ops commit against the stopped target before the continue releases the core, so
  // every entry they cover is frozen — and hand the stopped plan to FinishDrainPlan
  // to order the banks (parked first), fetch any prefetch-undershoot tails, and
  // adapt the prefetch window. If the continue failed, drop the plan on the floor
  // instead: nothing was applied, the ring is untouched.
  struct DrainPlan {
    std::vector<PortOp> ops;
    uint32_t prefetch = 0;  // speculative entries carried per bank-read op
  };
  DrainPlan MakeDrainPlan();
  Result<std::vector<CovHit>> FinishDrainPlan(DrainPlan* plan, uint32_t* dropped = nullptr);

  // Reads the ring's version/capacity header words back from the booted target and
  // fails loudly on a layout mismatch (stale agent, corrupt RAM) — a silent mismatch
  // would read as permanently-empty coverage. Create() runs this after first boot.
  Status ValidateCovRing();

  CovRingLayout cov_ring() const { return ring_; }

  bool batched_link() const { return batched_; }
  // Escape hatch for tests and benches comparing the two link protocols.
  void set_batched_link(bool batched) { batched_ = batched; }

 private:
  Deployment() = default;

  // `programmed`/`skipped` report flash bytes reprogrammed vs. proven clean.
  Status ReflashAndRebootLegacy(uint64_t* programmed);
  Status ReflashAndRebootBatched(uint64_t* programmed, uint64_t* skipped);
  // Payload hash for the delta-reflash cache, computed once per partition (payloads are
  // immutable for the lifetime of the image).
  uint64_t PayloadHash(const std::string& partition, const std::vector<uint8_t>& payload);

  // Adjusts prefetch_hint_ after a drain observed `count` entries against a
  // speculative window of `prefetch`.
  void AdaptPrefetch(uint32_t count, uint32_t prefetch);

  // Parses one bank's header+prefetch read result (`op`), fetching any undershoot
  // tail with a follow-up read, and appends the entries to `out`. Returns the
  // dropped count the header reported.
  Result<uint32_t> CollectBank(const PortOp& op, uint32_t bank, uint32_t prefetch,
                               uint32_t* count_out, std::vector<CovHit>* out);

  std::shared_ptr<FirmwareImage> image_;
  std::unique_ptr<Board> board_;
  std::unique_ptr<DebugPort> port_;
  telemetry::BoardTelemetry* telemetry_ = nullptr;
  CovRingLayout ring_;
  uint64_t ram_base_ = 0;
  bool batched_ = true;
  bool flip_mode_ = false;       // self-service bank flips enabled (two-bank drains)
  uint32_t prefetch_hint_ = 64;  // adaptive entry prefetch for the batched drain
  std::unordered_map<std::string, uint64_t> payload_hash_;
};

}  // namespace eof

#endif  // SRC_CORE_DEPLOYMENT_H_
