// Campaign repetition and aggregation: the evaluation repeats every experiment 5 times
// (§5.1); these helpers run the repetitions with distinct seeds and aggregate coverage
// series (mean/min/max bands for Figures 7/8) and bug sets (union across runs, Table 2).

#ifndef SRC_CORE_CAMPAIGN_H_
#define SRC_CORE_CAMPAIGN_H_

#include <set>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/fuzzer.h"

namespace eof {

struct SeriesBand {
  std::vector<VirtualTime> time;
  std::vector<double> mean;
  std::vector<double> min;
  std::vector<double> max;
};

struct RepeatedResult {
  std::vector<CampaignResult> runs;

  // Mean of final coverage across runs (the "average number of branches" of Tables 3/4).
  double MeanFinalCoverage() const;

  // Union of catalog bug ids found in any run.
  std::set<int> UnionBugs() const;

  // Aggregated coverage-over-time band. Runs whose series lengths differ are
  // truncated to the shortest series (point i is only aggregated when every run
  // has a point i).
  SeriesBand Band() const;

  uint64_t TotalExecs() const;
};

// Seed for repetition `rep` of a campaign seeded with base_seed: FNV-derived so the
// repetitions of nearby base seeds never share a stream (an additive stride like
// base + rep*K collides base b, rep r with base b+K, rep r-1).
uint64_t RepetitionSeed(uint64_t base_seed, int rep);

// Runs `repetitions` campaigns of the EOF engine with seeds RepetitionSeed(base.seed, 0..).
// `parallelism` > 1 runs that many repetitions concurrently (each on its own board);
// results are identical to the serial order regardless of parallelism.
Result<RepeatedResult> RunRepeated(const FuzzerConfig& base, int repetitions,
                                   int parallelism = 1);

// The paper's campaigns run 24 hours; benches scale that down via the EOF_BENCH_SCALE
// environment variable (virtual budget = 24 h / scale; default scale 24 -> 1 virtual
// hour). Set EOF_BENCH_SCALE=1 for full-length runs.
VirtualDuration ScaledCampaignBudget();

// Scaled repetition count: min(5, max(2, 5 - log2(scale))) keeps quick runs quick.
int ScaledRepetitions();

}  // namespace eof

#endif  // SRC_CORE_CAMPAIGN_H_
