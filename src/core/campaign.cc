#include "src/core/campaign.h"

#include <algorithm>
#include <cstdlib>

namespace eof {

double RepeatedResult::MeanFinalCoverage() const {
  if (runs.empty()) {
    return 0;
  }
  double total = 0;
  for (const CampaignResult& run : runs) {
    total += static_cast<double>(run.final_coverage);
  }
  return total / static_cast<double>(runs.size());
}

std::set<int> RepeatedResult::UnionBugs() const {
  std::set<int> bugs;
  for (const CampaignResult& run : runs) {
    for (const BugReport& bug : run.bugs) {
      if (bug.catalog_id != 0) {
        bugs.insert(bug.catalog_id);
      }
    }
  }
  return bugs;
}

SeriesBand RepeatedResult::Band() const {
  SeriesBand band;
  if (runs.empty()) {
    return band;
  }
  size_t points = runs[0].series.size();
  for (const CampaignResult& run : runs) {
    points = std::min(points, run.series.size());
  }
  for (size_t i = 0; i < points; ++i) {
    double sum = 0;
    double lo = static_cast<double>(runs[0].series[i].coverage);
    double hi = lo;
    for (const CampaignResult& run : runs) {
      double value = static_cast<double>(run.series[i].coverage);
      sum += value;
      lo = std::min(lo, value);
      hi = std::max(hi, value);
    }
    band.time.push_back(runs[0].series[i].time);
    band.mean.push_back(sum / static_cast<double>(runs.size()));
    band.min.push_back(lo);
    band.max.push_back(hi);
  }
  return band;
}

uint64_t RepeatedResult::TotalExecs() const {
  uint64_t total = 0;
  for (const CampaignResult& run : runs) {
    total += run.execs;
  }
  return total;
}

Result<RepeatedResult> RunRepeated(const FuzzerConfig& base, int repetitions) {
  RepeatedResult repeated;
  for (int rep = 0; rep < repetitions; ++rep) {
    FuzzerConfig config = base;
    config.seed = base.seed + static_cast<uint64_t>(rep) * 7919;
    EofFuzzer fuzzer(config);
    ASSIGN_OR_RETURN(CampaignResult run, fuzzer.Run());
    repeated.runs.push_back(std::move(run));
  }
  return repeated;
}

namespace {

uint64_t BenchScale() {
  const char* raw = getenv("EOF_BENCH_SCALE");
  if (raw == nullptr) {
    return 8;  // default: 3 virtual hours per campaign
  }
  long value = atol(raw);
  if (value < 1) {
    value = 1;
  }
  return static_cast<uint64_t>(value);
}

}  // namespace

VirtualDuration ScaledCampaignBudget() { return 24 * kVirtualHour / BenchScale(); }

int ScaledRepetitions() {
  uint64_t scale = BenchScale();
  if (scale <= 2) {
    return 5;
  }
  if (scale <= 12) {
    return 3;
  }
  return 2;
}

}  // namespace eof
