#include "src/core/campaign.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "src/common/hash.h"

namespace eof {

double RepeatedResult::MeanFinalCoverage() const {
  if (runs.empty()) {
    return 0;
  }
  double total = 0;
  for (const CampaignResult& run : runs) {
    total += static_cast<double>(run.final_coverage);
  }
  return total / static_cast<double>(runs.size());
}

std::set<int> RepeatedResult::UnionBugs() const {
  std::set<int> bugs;
  for (const CampaignResult& run : runs) {
    for (const BugReport& bug : run.bugs) {
      if (bug.catalog_id != 0) {
        bugs.insert(bug.catalog_id);
      }
    }
  }
  return bugs;
}

SeriesBand RepeatedResult::Band() const {
  SeriesBand band;
  if (runs.empty()) {
    return band;
  }
  size_t points = runs[0].series.size();
  for (const CampaignResult& run : runs) {
    points = std::min(points, run.series.size());
  }
  for (size_t i = 0; i < points; ++i) {
    double sum = 0;
    double lo = static_cast<double>(runs[0].series[i].coverage);
    double hi = lo;
    for (const CampaignResult& run : runs) {
      double value = static_cast<double>(run.series[i].coverage);
      sum += value;
      lo = std::min(lo, value);
      hi = std::max(hi, value);
    }
    band.time.push_back(runs[0].series[i].time);
    band.mean.push_back(sum / static_cast<double>(runs.size()));
    band.min.push_back(lo);
    band.max.push_back(hi);
  }
  return band;
}

uint64_t RepeatedResult::TotalExecs() const {
  uint64_t total = 0;
  for (const CampaignResult& run : runs) {
    total += run.execs;
  }
  return total;
}

uint64_t RepetitionSeed(uint64_t base_seed, int rep) {
  // Stream ids offset past the farm's worker lanes so a repetition never shares a
  // derived stream with a worker of the same base seed.
  return DeriveSeedStream(base_seed, 0x5e9a0000ULL + static_cast<uint64_t>(rep));
}

Result<RepeatedResult> RunRepeated(const FuzzerConfig& base, int repetitions,
                                   int parallelism) {
  RepeatedResult repeated;
  if (repetitions <= 0) {
    return repeated;
  }
  repeated.runs.resize(static_cast<size_t>(repetitions));

  if (parallelism <= 1) {
    for (int rep = 0; rep < repetitions; ++rep) {
      FuzzerConfig config = base;
      config.seed = RepetitionSeed(base.seed, rep);
      EofFuzzer fuzzer(config);
      ASSIGN_OR_RETURN(repeated.runs[static_cast<size_t>(rep)], fuzzer.Run());
    }
    return repeated;
  }

  // Parallel mode: each repetition is an independent seeded campaign on its own
  // simulated board, so running them concurrently reproduces the serial results
  // run-for-run. A shared counter hands out repetition indices.
  std::atomic<int> next_rep(0);
  std::vector<Status> statuses(static_cast<size_t>(repetitions), OkStatus());
  auto run_reps = [&]() {
    for (int rep = next_rep.fetch_add(1); rep < repetitions; rep = next_rep.fetch_add(1)) {
      FuzzerConfig config = base;
      config.seed = RepetitionSeed(base.seed, rep);
      EofFuzzer fuzzer(config);
      auto run = fuzzer.Run();
      if (run.ok()) {
        repeated.runs[static_cast<size_t>(rep)] = std::move(run).value();
      } else {
        statuses[static_cast<size_t>(rep)] = run.status();
      }
    }
  };
  std::vector<std::thread> threads;
  int thread_count = std::min(parallelism, repetitions);
  threads.reserve(static_cast<size_t>(thread_count));
  for (int i = 0; i < thread_count; ++i) {
    threads.emplace_back(run_reps);
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (const Status& status : statuses) {
    RETURN_IF_ERROR(status);
  }
  return repeated;
}

namespace {

uint64_t BenchScale() {
  const char* raw = getenv("EOF_BENCH_SCALE");
  if (raw == nullptr) {
    return 8;  // default: 3 virtual hours per campaign
  }
  long value = atol(raw);
  if (value < 1) {
    value = 1;
  }
  return static_cast<uint64_t>(value);
}

}  // namespace

VirtualDuration ScaledCampaignBudget() { return 24 * kVirtualHour / BenchScale(); }

int ScaledRepetitions() {
  uint64_t scale = BenchScale();
  if (scale <= 2) {
    return 5;
  }
  if (scale <= 12) {
    return 3;
  }
  return 2;
}

}  // namespace eof
