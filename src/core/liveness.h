// Liveness watchdogs and state restoration — Algorithm 1 of the paper.
//
// Watchdog #1: a debug-link/connection timeout means the target failed to boot or became
// entirely unresponsive. Watchdog #2: when exec-continue fails to change the PC, the core
// is not executing instructions. Both are host-side and need no target instrumentation.
// Restoration restores every partition at its table offset and reboots (a plain reboot
// is insufficient when flash was damaged). On the batched link the restore is a DELTA
// reflash: partitions whose on-flash bytes a target-assisted checksum proves unchanged
// are skipped, so Algorithm 1 pays the 5 us/byte flash-programming cost only for what
// the run actually corrupted — the dominant saving of the §5.5 link-overhead work.

#ifndef SRC_CORE_LIVENESS_H_
#define SRC_CORE_LIVENESS_H_

#include <optional>

#include "src/common/status.h"
#include "src/core/deployment.h"
#include "src/hw/board_snapshot.h"

namespace eof {

enum class LivenessVerdict {
  kAlive,
  kConnectionTimeout,  // watchdog #1
  kPcStall,            // watchdog #2
  kPowerPlateau,       // §6 extension: flat high draw = tight loop
};

const char* LivenessVerdictName(LivenessVerdict verdict);

class LivenessWatchdog {
 public:
  // One check: samples the PC; on a link/timeout failure reports kConnectionTimeout; if
  // the PC equals the previous sample reports kPcStall (Algorithm 1 lines 4-11).
  LivenessVerdict Check(DebugPort& port);

  // §6 extension: additionally sample the supply-rail ammeter. Two consecutive samples
  // pinned at the tight-loop plateau flag the target before the PC protocol would.
  // Enabled with EnablePowerProbe().
  void EnablePowerProbe() { power_probe_ = true; }

  // Forget the PC and power history (call after restoration).
  void Reset() {
    last_pc_.reset();
    plateau_strikes_ = 0;
  }

 private:
  // Current draw at or above this, twice in a row, reads as a no-WFI spin loop.
  static constexpr uint32_t kPlateauMilliAmps = 100;

  std::optional<uint64_t> last_pc_;
  bool power_probe_ = false;
  int plateau_strikes_ = 0;
};

// StateRestoration (Algorithm 1 lines 12-19): reflash every partition from the image's
// partition table and reboot. Returns the restored target parked at agent start.
Status StateRestoration(Deployment& deployment);

// Snapshot-aware restoration (RestoreMode::kSnapshot): tries the warm fast path —
// BoardSnapshot::Restore, microseconds-scale instead of reflash+300ms reboot — and
// on ANY mid-restore failure (severed link, flash-shadow mismatch, warm boot
// failure) falls back to the full StateRestoration above, so the board is never
// left half-restored. `used_snapshot`, when non-null, reports which path completed.
// A null snapshot degrades to plain StateRestoration.
Status StateRestorationWithSnapshot(Deployment& deployment, const BoardSnapshot* snapshot,
                                    bool* used_snapshot = nullptr);

}  // namespace eof

#endif  // SRC_CORE_LIVENESS_H_
