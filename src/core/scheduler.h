// CampaignScheduler: the campaign-wide half of the engine. It owns everything that
// is shared across board sessions — the corpus, the global coverage map, bug
// deduplication, campaign counters, and the coverage-over-time series — and decides
// which program each executor runs next (mutate / splice / generate against the
// shared corpus, §4.5).
//
// All public methods are thread-safe: the single-threaded EofFuzzer calls them from
// one thread, the BoardFarm from N worker threads. Program construction (the actual
// Mutate/Splice/Generate work) happens outside the lock on the caller's own
// Generator so workers only serialise on corpus picks and outcome merging.

#ifndef SRC_CORE_SCHEDULER_H_
#define SRC_CORE_SCHEDULER_H_

#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/coverage_map.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/vclock.h"
#include "src/core/executor.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/generator.h"
#include "src/spec/compiler.h"
#include "src/telemetry/telemetry.h"

namespace eof {

struct CampaignSample {
  VirtualTime time = 0;
  uint64_t coverage = 0;
};

struct BugReport {
  int catalog_id = 0;          // 0 = signature did not match the catalog
  std::string detector;        // "exception" | "log" | "timeout"
  std::string kind;            // "panic" | "assertion" | "unresponsive"
  std::string excerpt;         // crash text
  VirtualTime at = 0;
  std::string program_text;    // the triggering program, formatted

  // Provenance of the first sighting (later duplicates only bump the dedup counter).
  uint64_t first_exec = 0;     // campaign exec index that triggered it (1-based)
  int board = 0;               // submitting worker / board index
  uint64_t seed_stream = 0;    // that worker's RNG stream (FarmWorkerSeed rule)
  uint64_t coverage_delta = 0; // fresh edges this execution added to the global map
  // Cold-boot provenance verdict: "confirmed" / "rejected" when a validator replayed
  // the reproducer against a freshly flashed board, "not_checked" when no validator
  // was installed (reflash-mode campaigns — every exec already starts cold).
  std::string snapshot_validation = "not_checked";
  // The board's flight-recorder state at detection: last port ops, UART tail, and
  // exec-loop events leading up to the crash (empty when the detecting execution
  // produced no dump — never the case for the executor's crash/stall/link paths).
  telemetry::FlightDump dump;
};

struct CampaignResult {
  uint64_t final_coverage = 0;
  std::vector<CampaignSample> series;
  std::vector<BugReport> bugs;  // first sighting of each distinct catalog id / signature
  // First sightings the cold-boot validation oracle refused to confirm: the
  // reproducer did not crash a freshly flashed board, so the "bug" was an artifact
  // of accumulated warm-restore state. Journaled (snapshot_validation="rejected")
  // but never admitted to `bugs`.
  uint64_t bugs_rejected = 0;
  uint64_t execs = 0;
  uint64_t rejected = 0;
  uint64_t crashes = 0;
  uint64_t stalls = 0;
  uint64_t timeouts = 0;
  uint64_t restores = 0;
  uint64_t snapshot_restores = 0;  // restores served by the warm snapshot path
  uint64_t snapshot_bytes = 0;     // RAM bytes those restores pushed over the link
  uint64_t corpus_size = 0;
  VirtualTime elapsed = 0;
  // Summed debug-link traffic across the campaign's board sessions (round trips,
  // batches, flash bytes programmed vs. skipped by the delta-reflash cache).
  DebugPortStats link;
  // Journal rows the bounded sink buffer dropped (0 when no journal was attached).
  // Non-zero means the JSONL file is incomplete and `eof report` numbers derived
  // from it are lower bounds — the campaign itself is unaffected.
  uint64_t journal_dropped = 0;
  // Attribution bookkeeping: fresh edges that landed on a predicted frontier
  // neighbour, the frontier size at campaign end, and what the edge-preserving
  // trimmer removed/kept on corpus admission (all 0 unless the modes ran).
  uint64_t directed_hits = 0;
  uint64_t frontier = 0;
  uint64_t trim_removed_calls = 0;
  uint64_t trim_kept_calls = 0;
  // Corpus reproducer texts in admission order; filled only when
  // Options::export_corpus is set (fleet differential tests, checkpointing).
  std::vector<std::string> corpus_programs;

  bool FoundBug(int catalog_id) const {
    for (const BugReport& bug : bugs) {
      if (bug.catalog_id == catalog_id) {
        return true;
      }
    }
    return false;
  }
};

// Fixed-resolution coverage time-series recorder shared by every campaign loop
// (EOF engine, board farm, byte-buffer baselines): records the coverage count at
// each elapsed sample boundary and pads unreached points at campaign end.
class SeriesSampler {
 public:
  SeriesSampler(VirtualDuration budget, uint32_t sample_points)
      : budget_(budget),
        points_(sample_points),
        interval_(budget / std::max<uint32_t>(sample_points, 1)),
        next_(interval_) {}

  // Appends one sample per boundary the campaign has passed.
  void Advance(VirtualTime elapsed, uint64_t coverage, std::vector<CampaignSample>* series) {
    while (elapsed >= next_ && series->size() < points_) {
      series->push_back(CampaignSample{next_, coverage});
      next_ += interval_;
    }
  }

  // Pads the series to its full length so repetitions align.
  void Finish(uint64_t coverage, std::vector<CampaignSample>* series) {
    while (series->size() < points_) {
      series->push_back(
          CampaignSample{budget_ * (series->size() + 1) / points_, coverage});
    }
  }

 private:
  VirtualDuration budget_;
  uint32_t points_;
  VirtualDuration interval_;
  VirtualTime next_;
};

class CampaignScheduler {
 public:
  struct Options {
    std::string os_name;              // bug attribution (catalog is per-OS)
    bool coverage_feedback = true;    // corpus + generator credit
    // Directed mode: bias generation toward the specs whose calls own edges
    // adjacent to the coverage frontier (uncovered ±stride neighbours of covered
    // edges). Frontier bookkeeping itself is always on (host-only, no RNG);
    // this flag only controls whether generators get the focus boost.
    bool directed = false;
    // Edge-preserving trim on corpus admission: keep only the calls the fresh
    // edges attribute to, plus their transitive result producers.
    bool trim = false;
    VirtualDuration budget = 0;
    uint32_t sample_points = 96;
    int workers = 1;
    uint64_t seed = 1;                // campaign base seed — bug provenance records the
                                      // submitting worker's derived stream from it

    // Fleet sharding: `shard_ids[i]` is the campaign-global shard label of local
    // worker slot i. Bug provenance (board, seed_stream) and journal rows are
    // stamped with the global label so merged per-worker journals attribute
    // correctly; session bookkeeping (frontier, sampler) stays local. Empty =
    // identity (the in-process farm).
    std::vector<int> shard_ids;
    // Keep an exact log of locally discovered fresh edges so TakeCoverageDelta
    // can ship bitmap diffs upstream. Off for in-process campaigns.
    bool track_coverage_delta = false;
    // Fill CampaignResult::corpus_programs at Finalize.
    bool export_corpus = false;

    // Campaign-scope telemetry: `registry` takes the campaign.* counters (nullptr =
    // the scheduler owns a private registry); `sink` receives new_coverage / bug /
    // bug_dedup journal events (nullptr = no journal). Both must outlive the
    // scheduler when set.
    telemetry::MetricsRegistry* registry = nullptr;
    telemetry::EventSink* sink = nullptr;

    // Cold-boot validation oracle for snapshot-mode campaigns (the libriscv lesson:
    // reused machine state breeds unreproducible crashes). When set, every
    // first-sighting bug's reproducer is replayed before admission — return true to
    // confirm, false to reject as state-dependent. Runs under the campaign lock on
    // a separate board with its own virtual clock, so validation replays are
    // serialized and never perturb campaign timing. nullptr = admit everything
    // (snapshot_validation stays "not_checked").
    std::function<bool(const BugReport&)> validator;
  };

  CampaignScheduler(const spec::CompiledSpecs& specs, Options options);

  // Parses the initial corpus (reproducer-text programs, §4.5) against the specs;
  // entries that fail to parse are skipped. Admission only with feedback on.
  void SeedCorpus(const std::vector<std::string>& seed_programs);

  // Picks the next input for a worker: 70% mutate a corpus seed, 10% splice two,
  // else generate fresh (only generate while the corpus is empty or feedback is
  // off). The roll and the seed picks consume `rng` under the campaign lock; the
  // program is built outside it on the caller's generator.
  fuzz::Program NextProgram(fuzz::Generator& generator, Rng& rng);

  // Current frontier-owner spec indices (sorted, deduplicated) — the focus list
  // directed mode pushes into worker generators. Exposed for tests.
  std::vector<size_t> FocusSpecs() const;

  // Folds one execution outcome into the campaign: merges drained edges into the
  // global coverage map, records/dedups bugs, admits the program to the corpus
  // when it found new edges (crediting the submitting worker's generator), bumps
  // the exec counter, and advances the sampled series to the campaign frontier.
  // `elapsed` is the submitting worker's session time after the execution.
  void OnOutcome(const fuzz::Program& program, const ExecOutcome& outcome,
                 fuzz::Generator& generator, VirtualTime elapsed, int worker);

  // Marks a worker's session finished so it no longer holds back the sample
  // frontier (its clock stops at the budget).
  void OnWorkerDone(int worker);

  // Pads the series, folds the summed executor stats in, and returns the result.
  // `link` is the campaign's summed per-board debug-port traffic.
  CampaignResult Finalize(const ExecStats& stats, VirtualTime elapsed,
                          const DebugPortStats& link = DebugPortStats());

  uint64_t CoverageCount() const;
  size_t CorpusSize() const;

  // The campaign-global numbers for a farm_snapshot row, read under the lock.
  telemetry::CampaignView View() const;

  // First sightings the validator rejected (copies, read under the lock). Exposed
  // for tests asserting that rejected bugs are remembered for dedup but kept out
  // of the result table.
  std::vector<BugReport> RejectedBugs() const;

  // --- Fleet sync hooks (src/fleet) ---
  // None of these run during a single-worker fleet batch with empty payloads, so
  // the in-process bit-identity contract is untouched.

  // Full coverage snapshot / fresh-edge diff since the last take (requires
  // track_coverage_delta), in the coverage_serial wire format.
  std::vector<uint8_t> SerializeCoverageSnapshot() const;
  std::vector<uint8_t> TakeCoverageDelta();
  // Folds a peer's blob into the campaign map; returns edges new here. Remote
  // edges are not re-logged into the delta (the peer already has them).
  Result<size_t> MergeRemoteCoverage(const std::vector<uint8_t>& blob);
  // Corpus delta export as (reproducer text, new_edges) pairs; returns the next
  // cursor. Pass UINT64_MAX once to learn the current cursor without copying.
  uint64_t ExportCorpusSince(uint64_t from_seq,
                             std::vector<std::pair<std::string, uint64_t>>* out) const;
  // Admits peer programs (hash-deduplicated, no generator credit); returns how
  // many were new.
  size_t AdmitRemotePrograms(
      const std::vector<std::pair<std::string, uint64_t>>& entries);
  // Replaces the remote contribution to the directed focus list (union with the
  // local frontier owners). An empty list restores pure local focus.
  void MergeRemoteFocus(const std::vector<uint64_t>& spec_indices);
  // Confirmed bugs admitted at index >= `from` (upload cursor for fleet sync).
  std::vector<BugReport> BugsSince(size_t from) const;

 private:
  // Maps a local worker slot to its campaign-global shard label.
  int ShardLabel(int worker) const;
  void RecordBugLocked(const BugSignature& signature, const fuzz::Program& program,
                       const ExecOutcome& outcome, uint64_t coverage_delta,
                       VirtualTime elapsed, int worker);
  // Folds the fresh (first-seen) hits of one execution into the frontier table:
  // covered edges leave, their uncovered ±stride neighbours enter, owned by the
  // spec of the call the fresh edge attributes to. Bumps directed_hits for fresh
  // edges that were predicted (present in the table) and refreshes the focus list.
  void UpdateFrontierLocked(const fuzz::Program& program,
                            const std::vector<CovHit>& fresh_hits);
  void AdvanceFrontierLocked(int worker, VirtualTime elapsed);
  // Rebuilds focus_specs_ = sorted distinct union of the frontier owners and the
  // peer focus list (remote_focus_, empty outside fleet batches).
  void RebuildFocusLocked();
  void EmitEventLocked(VirtualTime at, const char* type, int worker,
                       std::vector<telemetry::EventField> fields);

  const spec::CompiledSpecs& specs_;
  Options options_;

  std::unique_ptr<telemetry::MetricsRegistry> owned_registry_;  // set iff none was passed
  telemetry::EventSink* sink_ = nullptr;
  telemetry::Counter* execs_ = nullptr;
  telemetry::Counter* crashes_ = nullptr;
  telemetry::Counter* bugs_found_ = nullptr;
  telemetry::Counter* bug_dedup_hits_ = nullptr;
  telemetry::Counter* bugs_rejected_ = nullptr;
  telemetry::Counter* validation_replays_ = nullptr;
  telemetry::Counter* fresh_edges_ = nullptr;
  telemetry::Counter* corpus_adds_ = nullptr;
  telemetry::Counter* directed_hits_ = nullptr;
  telemetry::Counter* trim_removed_calls_ = nullptr;
  telemetry::Counter* trim_kept_calls_ = nullptr;
  telemetry::Gauge* coverage_gauge_ = nullptr;
  telemetry::Gauge* corpus_gauge_ = nullptr;
  telemetry::Gauge* frontier_gauge_ = nullptr;

  mutable std::mutex mu_;
  fuzz::Corpus corpus_;
  CoverageMap coverage_;
  SeriesSampler sampler_;
  CampaignResult result_;
  // Validator-rejected first sightings. Kept so a rejected signature re-triggering
  // dedups instead of burning another validation replay on the same artifact.
  std::vector<BugReport> rejected_bugs_;
  std::vector<VirtualTime> worker_elapsed_;
  std::vector<bool> worker_done_;
  // Uncovered ±stride neighbour of a covered edge -> spec index of the call the
  // adjacent covered edge attributed to (SIZE_MAX when the hit carried no valid
  // call index). Entries leave when the neighbour gets covered.
  std::unordered_map<uint64_t, size_t> frontier_;
  // Sorted, deduplicated owner specs of frontier_ — rebuilt when fresh edges
  // arrive, pushed into each worker's generator by NextProgram in directed mode.
  std::vector<size_t> focus_specs_;
  // Fleet state: exact log of locally discovered fresh edges since the last
  // TakeCoverageDelta, and the peer focus specs folded into focus_specs_.
  std::vector<uint64_t> coverage_delta_log_;
  std::vector<size_t> remote_focus_;
};

// Shared loop glue: encodes `program` for the agent mailbox, trimming tail calls
// until it fits. Returns false when nothing is left to run (caller skips the case).
bool EncodeForMailbox(const spec::CompiledSpecs& specs, fuzz::Program* program,
                      std::vector<uint8_t>* encoded);

}  // namespace eof

#endif  // SRC_CORE_SCHEDULER_H_
