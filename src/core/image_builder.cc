#include "src/core/image_builder.h"

#include <algorithm>

#include "src/agent/agent.h"
#include "src/agent/agent_layout.h"
#include "src/common/strings.h"
#include "src/kernel/coverage.h"
#include "src/kernel/cov_ring.h"
#include "src/kernel/image_layout.h"
#include "src/kernel/os.h"

namespace eof {
namespace {

constexpr uint64_t kBootloaderBodyBytes = 48 * 1024;
constexpr uint64_t kPtableBodyBytes = 256;
constexpr uint64_t kFlashAlign = 0x1000;

uint64_t AlignUp(uint64_t value) { return (value + kFlashAlign - 1) & ~(kFlashAlign - 1); }

// Instrumented-site count for the given filter: whole build when unfiltered, per-module
// estimates otherwise.
uint64_t InstrumentedSites(const Os& os, const InstrumentationOptions& instrumentation) {
  if (!instrumentation.enabled) {
    return 0;
  }
  if (instrumentation.module_filter.empty()) {
    return os.footprint().edge_sites;
  }
  uint64_t sites = 0;
  for (const auto& [module, bb_count] : os.modules()) {
    if (instrumentation.Covers(module)) {
      sites += bb_count;
    }
  }
  return sites;
}

}  // namespace

Result<uint64_t> ComputeImageSize(const std::string& os_name,
                                  const InstrumentationOptions& instrumentation) {
  ASSIGN_OR_RETURN(OsInfo info, OsRegistry::Instance().Find(os_name));
  std::unique_ptr<Os> os = info.factory();
  uint64_t size = kBootloaderBodyBytes + kPtableBodyBytes + os->footprint().base_image_bytes;
  size += InstrumentedSites(*os, instrumentation) * kCovBytesPerSite;
  return size;
}

Result<std::shared_ptr<FirmwareImage>> BuildImage(const BoardSpec& spec,
                                                  const ImageBuildOptions& options) {
  ASSIGN_OR_RETURN(OsInfo info, OsRegistry::Instance().Find(options.os_name));
  bool arch_ok = std::find(info.supported_archs.begin(), info.supported_archs.end(),
                           spec.arch) != info.supported_archs.end();
  if (!arch_ok) {
    return FailedPreconditionError(StrFormat("OS '%s' has no %s port",
                                             options.os_name.c_str(), ArchName(spec.arch)));
  }
  std::unique_ptr<Os> os = info.factory();

  auto image = std::make_shared<FirmwareImage>();
  image->set_os_name(options.os_name);
  image->set_instrumentation(options.instrumentation);

  // --- flash layout ---
  uint64_t kernel_bytes = os->footprint().base_image_bytes +
                          InstrumentedSites(*os, options.instrumentation) * kCovBytesPerSite;
  uint64_t kernel_part_size = AlignUp(kernel_bytes + 64);
  uint64_t nvs_offset = AlignUp(kKernelFlashOffset + kernel_part_size);
  if (nvs_offset + kNvsSize > spec.flash_bytes) {
    return ResourceExhaustedError(
        StrFormat("image for '%s' (%llu bytes) does not fit board '%s' flash",
                  options.os_name.c_str(), static_cast<unsigned long long>(kernel_bytes),
                  spec.name.c_str()));
  }
  RETURN_IF_ERROR(image->AddPartition("bootloader", kBootloaderFlashOffset, kBootloaderSize,
                                      kBootloaderBodyBytes, options.seed));
  RETURN_IF_ERROR(image->AddPartition("ptable", kPtableFlashOffset, kPtableSize,
                                      kPtableBodyBytes, options.seed));
  RETURN_IF_ERROR(image->AddPartition("kernel", kKernelFlashOffset, kernel_part_size,
                                      kernel_bytes, options.seed));
  RETURN_IF_ERROR(image->AddRawPartition("nvs", nvs_offset, kNvsSize));
  RETURN_IF_ERROR(image->partition_table().Validate(spec.flash_bytes));
  image->set_size_bytes(kBootloaderBodyBytes + kPtableBodyBytes + kernel_bytes);
  image->set_instrumented_sites(InstrumentedSites(*os, options.instrumentation));

  // --- symbols: agent program points, the OS exception handler, agent data blocks ---
  SymbolTable& symbols = image->mutable_symbols();
  for (const ProgramPoint& point :
       {kPpAgentStart, kPpExecutorMain, kPpReadProg, kPpExecuteOne, kPpCovBufFull}) {
    RETURN_IF_ERROR(symbols.Add(point.symbol, spec.text_base + point.text_offset, 0x40));
  }
  RETURN_IF_ERROR(symbols.Add(os->exception_symbol(),
                              spec.text_base + kExceptionSymbolOffset, 0x40));
  RETURN_IF_ERROR(symbols.Add("g_eof_status", spec.ram_base + kStatusBlockOffset,
                              kStatusBlockSize));
  RETURN_IF_ERROR(symbols.Add("g_eof_mailbox", spec.ram_base + kMailboxOffset,
                              kMailboxDataOffset + kMailboxMaxBytes));
  CovRingLayout ring;
  ring.ram_offset = kCovRingOffset;
  ring.capacity = CovRingCapacityFor(spec.ram_bytes);
  RETURN_IF_ERROR(symbols.Add("g_eof_cov_ring", spec.ram_base + kCovRingOffset,
                              ring.SizeBytes()));

  // --- module basic-block regions ---
  image->set_code_base(spec.text_base + kCodeSpaceOffset);
  for (const auto& [module, bb_count] : os->modules()) {
    auto layout = image->AddModule(module, bb_count);
    RETURN_IF_ERROR(layout.status());
  }

  ASSIGN_OR_RETURN(FirmwareFactory factory, MakeAgentFactory(options.os_name));
  image->set_factory(std::move(factory));
  return image;
}

}  // namespace eof
