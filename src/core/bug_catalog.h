// The ground-truth catalog of the 19 previously-unknown bugs of Table 2, with the crash
// signature each one leaves. Campaign code attributes detected crashes back to catalog
// entries, and the Table 2 bench prints its rows from here.

#ifndef SRC_CORE_BUG_CATALOG_H_
#define SRC_CORE_BUG_CATALOG_H_

#include <string>
#include <vector>

namespace eof {

struct BugInfo {
  int id = 0;                 // 1..19 (Table 2 numbering)
  std::string os;             // "zephyr", "rtthread", "freertos", "nuttx"
  std::string scope;          // Table 2 "Scope" column
  std::string bug_type;       // "Kernel Panic" | "Kernel Assertion"
  std::string operation;      // Table 2 "Operations" column
  bool confirmed = false;     // upstream-confirmed
  std::string signature;      // substring present in the crash text
  std::string expected_detector;  // "exception" | "log"
};

// All 19 entries, ordered by id.
const std::vector<BugInfo>& BugCatalog();

// Attributes a crash to a catalog entry by OS and crash text (UART excerpt + backtrace).
// Returns 0 when the crash matches no known entry.
int AttributeBug(const std::string& os, const std::string& crash_text);

// Entry by id, or nullptr.
const BugInfo* FindBug(int id);

}  // namespace eof

#endif  // SRC_CORE_BUG_CATALOG_H_
