// The EOF fuzzing engine (Figure 3): deploys the target, mines + validates specs, drives
// the Figure-4 breakpoint-synchronised execution loop, collects coverage/log/exception
// feedback, maintains liveness with the Algorithm-1 watchdogs, and schedules the corpus.
//
// The baselines in src/baselines configure this same engine where their design matches
// (EOF-nf = feedback off) and provide their own loops where it does not.

#ifndef SRC_CORE_FUZZER_H_
#define SRC_CORE_FUZZER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/coverage_map.h"
#include "src/common/status.h"
#include "src/common/vclock.h"
#include "src/core/bug_catalog.h"
#include "src/core/deployment.h"
#include "src/core/liveness.h"
#include "src/core/monitors.h"
#include "src/fuzz/corpus.h"
#include "src/fuzz/generator.h"
#include "src/spec/spec_miner.h"

namespace eof {

// How a downed target gets recovered.
enum class RestoreMode {
  kReflash,     // EOF: full image reflash + reboot (works after flash damage)
  kRebootOnly,  // plain reset; a damaged image stays damaged (repeated timeouts)
};

struct FuzzerConfig {
  std::string os_name;
  std::string board_name;  // "" = OS default evaluation board

  // Feedback & monitors.
  bool coverage_feedback = true;    // corpus + generator credit (EOF-nf turns this off)
  bool log_monitor = true;
  bool exception_monitor = true;
  bool watchdogs = true;            // Algorithm 1; off = ablation (manual intervention)
  bool power_probe = false;         // §6 extension: ammeter plateau detection
  RestoreMode restore_mode = RestoreMode::kReflash;

  // Input generation.
  bool use_extended_specs = true;
  fuzz::GeneratorOptions gen;

  // Build.
  InstrumentationOptions instrumentation;

  // Initial corpus (reproducer-text programs, §4.5 "initial corpus"). Parsed against the
  // mined specs at setup; entries that fail to parse are skipped.
  std::vector<std::string> seed_programs;

  // §6 extension: inject random peripheral events (GPIO edges, serial RX, timer ticks)
  // alongside each test case, driving interrupt paths. Off by default (the base paper).
  bool inject_peripheral_events = false;

  uint64_t seed = 1;
  VirtualDuration budget = 10 * kVirtualMinute;
  uint32_t sample_points = 96;         // coverage time-series resolution
  uint32_t periodic_reset_execs = 24;  // reboot cadence to shed piled-up kernel state
};

struct CampaignSample {
  VirtualTime time = 0;
  uint64_t coverage = 0;
};

struct BugReport {
  int catalog_id = 0;          // 0 = signature did not match the catalog
  std::string detector;        // "exception" | "log" | "timeout"
  std::string kind;            // "panic" | "assertion" | "unresponsive"
  std::string excerpt;         // crash text
  VirtualTime at = 0;
  std::string program_text;    // the triggering program, formatted
};

struct CampaignResult {
  uint64_t final_coverage = 0;
  std::vector<CampaignSample> series;
  std::vector<BugReport> bugs;  // first sighting of each distinct catalog id / signature
  uint64_t execs = 0;
  uint64_t rejected = 0;
  uint64_t crashes = 0;
  uint64_t stalls = 0;
  uint64_t timeouts = 0;
  uint64_t restores = 0;
  uint64_t corpus_size = 0;
  VirtualTime elapsed = 0;

  bool FoundBug(int catalog_id) const {
    for (const BugReport& bug : bugs) {
      if (bug.catalog_id == catalog_id) {
        return true;
      }
    }
    return false;
  }
};

class EofFuzzer {
 public:
  explicit EofFuzzer(FuzzerConfig config) : config_(std::move(config)) {}

  // Deploys, fuzzes until the virtual budget is exhausted, and reports.
  Result<CampaignResult> Run();

 private:
  enum class ExecStatus { kCompleted, kCrashed, kStalled, kLinkLost };

  struct ExecOutcome {
    ExecStatus status = ExecStatus::kCompleted;
    std::optional<BugSignature> signature;
    uint64_t new_edges = 0;
  };

  Status Setup();
  Status ArmBreakpoints();
  Status Restore();
  Result<ExecOutcome> ExecuteOne(const fuzz::Program& program,
                                 const std::vector<uint8_t>& encoded);
  void HarvestCoverage(ExecOutcome* outcome);
  void RecordBug(const BugSignature& signature, const fuzz::Program& program);
  void MaybeSample();
  fuzz::Program NextProgram();

  FuzzerConfig config_;
  std::unique_ptr<Deployment> deployment_;
  spec::CompiledSpecs specs_;
  std::unique_ptr<fuzz::Generator> generator_;
  std::unique_ptr<Rng> schedule_rng_;
  fuzz::Corpus corpus_;
  CoverageMap coverage_;
  LogMonitor log_monitor_;
  ExceptionMonitor exception_monitor_;
  LivenessWatchdog watchdog_;
  CampaignResult result_;

  uint64_t executor_main_addr_ = 0;
  uint64_t cov_full_addr_ = 0;
  std::string exception_symbol_;
  VirtualTime start_time_ = 0;
  VirtualTime next_sample_ = 0;
  VirtualDuration sample_interval_ = 0;
  uint64_t execs_since_reset_ = 0;
};

}  // namespace eof

#endif  // SRC_CORE_FUZZER_H_
