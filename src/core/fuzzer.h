// The EOF fuzzing engine (Figure 3), wired from two layers:
//
//   TargetExecutor   (executor.h)  — one board session: deployment, breakpoint-
//                                    synchronised execution, coverage drain,
//                                    Algorithm-1 watchdogs and restoration.
//   CampaignScheduler (scheduler.h) — campaign state: corpus, global coverage map,
//                                    bug dedup, input scheduling, sampled series.
//
// EofFuzzer itself is thin glue running one executor against one scheduler on a
// single thread; BoardFarm (board_farm.h) runs N executors against one scheduler.
// The baselines in src/baselines configure this same engine where their design
// matches (EOF-nf = feedback off) and compose the shared pieces where it does not.

#ifndef SRC_CORE_FUZZER_H_
#define SRC_CORE_FUZZER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/vclock.h"
#include "src/core/bug_catalog.h"
#include "src/core/deployment.h"
#include "src/core/executor.h"
#include "src/core/scheduler.h"
#include "src/fuzz/generator.h"
#include "src/spec/spec_miner.h"

namespace eof {

struct FuzzerConfig {
  std::string os_name;
  std::string board_name;  // "" = OS default evaluation board

  // Feedback & monitors.
  bool coverage_feedback = true;    // corpus + generator credit (EOF-nf turns this off)
  bool log_monitor = true;
  bool exception_monitor = true;
  bool watchdogs = true;            // Algorithm 1; off = ablation (manual intervention)
  bool power_probe = false;         // §6 extension: ammeter plateau detection
  RestoreMode restore_mode = RestoreMode::kReflash;

  // Input generation.
  bool use_extended_specs = true;
  fuzz::GeneratorOptions gen;

  // Build.
  InstrumentationOptions instrumentation;

  // Initial corpus (reproducer-text programs, §4.5 "initial corpus"). Parsed against the
  // mined specs at setup; entries that fail to parse are skipped.
  std::vector<std::string> seed_programs;

  // §6 extension: inject random peripheral events (GPIO edges, serial RX, timer ticks)
  // alongside each test case, driving interrupt paths. Off by default (the base paper).
  bool inject_peripheral_events = false;

  // Vectored debug-link batches + delta reflash (§5.5 link-overhead optimisation).
  // false = legacy one-round-trip-per-op protocol, kept for baseline fidelity and the
  // batched-vs-legacy comparison bench.
  bool batched_link = true;

  // Double-buffered mid-program coverage drains: ride each ring drain on the next
  // continue's round trip instead of paying a separate transaction (needs the
  // batched link). Drained entries are bit-identical either way.
  bool overlapped_drain = true;
  // Directed mode: bias generation toward calls owning edges adjacent to the
  // coverage frontier (per-call attribution). Changes the RNG-visible schedule.
  bool directed = false;
  // Edge-preserving corpus trim on admission: keep only the calls fresh edges
  // attribute to plus their transitive result producers.
  bool trim = false;
  // Fill CampaignResult::corpus_programs at Finalize (fleet differential tests,
  // corpus checkpointing). Observer-only: never touches the schedule.
  bool export_corpus = false;

  uint64_t seed = 1;
  VirtualDuration budget = 10 * kVirtualMinute;
  // Per-worker execution cap (0 = unlimited): the session stops at whichever of
  // budget / max_execs it hits first. Differential tests cap execs so reflash-mode
  // and snapshot-mode campaigns run the exact same input sequence even though the
  // snapshot path burns far less virtual time per restore.
  uint64_t max_execs = 0;
  uint32_t sample_points = 96;         // coverage time-series resolution
  uint32_t periodic_reset_execs = 24;  // reboot cadence to shed piled-up kernel state

  // Telemetry journal: when `metrics_out` is a path, campaign events and periodic
  // per-board / farm-wide metric snapshots stream there as JSONL, one snapshot row
  // per `metrics_interval` of virtual time. "" = counters only, no journal. The
  // journal is an observer: fuzzing results are bit-identical either way.
  std::string metrics_out;
  VirtualDuration metrics_interval = 30 * kVirtualSecond;
};

// Shared campaign setup (Figure 3 step ②): mines + post-validates the target's API
// specifications and resolves the OS exception symbol. Board-independent, so farms
// run it once and share the result across workers.
struct CampaignPlan {
  spec::CompiledSpecs specs;
  std::string exception_symbol;
};
Result<CampaignPlan> PrepareCampaign(const FuzzerConfig& config);

// The board-session slice of `config` (plus the resolved exception symbol), for
// constructing executors. `seed` seeds the image build and the deployment.
ExecutorOptions MakeExecutorOptions(const FuzzerConfig& config, uint64_t seed,
                                    const std::string& exception_symbol);

// The campaign-state slice of `config`, for constructing schedulers. Snapshot-mode
// campaigns get the cold-boot validation oracle installed automatically.
CampaignScheduler::Options MakeSchedulerOptions(const FuzzerConfig& config, int workers);

// The cold-boot provenance oracle for snapshot-mode campaigns: replays a first
// sighting's reproducer on a freshly flashed board (ReplayReproducer) and confirms
// the bug only if the cold board crashes too — with a matching catalog id when the
// sighting was attributed. Captures the config's os/board names by value.
std::function<bool(const BugReport&)> MakeColdBootValidator(const FuzzerConfig& config);

// The telemetry slice of `config`, for constructing the campaign's CampaignTelemetry.
telemetry::CampaignTelemetry::Options MakeTelemetryOptions(const FuzzerConfig& config,
                                                           int workers);

class EofFuzzer {
 public:
  explicit EofFuzzer(FuzzerConfig config) : config_(std::move(config)) {}

  // Deploys, fuzzes until the virtual budget is exhausted, and reports.
  Result<CampaignResult> Run();

 private:
  FuzzerConfig config_;
};

}  // namespace eof

#endif  // SRC_CORE_FUZZER_H_
