#include "src/core/board_farm.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "src/common/coverage_map.h"
#include "src/common/hash.h"
#include "src/common/logging.h"

namespace eof {

uint64_t FarmWorkerSeed(uint64_t base_seed, int worker) {
  if (worker == 0) {
    return base_seed;
  }
  return DeriveSeedStream(base_seed, static_cast<uint64_t>(worker));
}

BoardFarm::BoardFarm(FuzzerConfig config, int jobs)
    : config_(std::move(config)), jobs_(std::max(jobs, 1)) {}

Result<FarmSession> MakeFarmSession(const FuzzerConfig& config,
                                    const CampaignPlan& plan, uint64_t seed,
                                    telemetry::BoardTelemetry* board) {
  FarmSession session;
  fuzz::GeneratorOptions gen = config.gen;
  gen.use_extended = config.use_extended_specs;
  session.generator = std::make_unique<fuzz::Generator>(plan.specs, gen, seed);
  session.rng = std::make_unique<Rng>(seed ^ 0x5eedf00dULL);
  ExecutorOptions executor_options =
      MakeExecutorOptions(config, seed, plan.exception_symbol);
  executor_options.telemetry = board;
  ASSIGN_OR_RETURN(session.executor,
                   TargetExecutor::Create(executor_options, session.rng.get()));
  return session;
}

void RunFarmSession(FarmSession* session, int index, CampaignScheduler* scheduler,
                    const spec::CompiledSpecs* specs, VirtualDuration budget,
                    uint64_t max_execs, std::atomic<bool>* stop,
                    telemetry::SnapshotEmitter* emitter,
                    const std::atomic<bool>* cancel, FarmProgress* progress) {
  uint64_t execs_run = 0;
  while (session->executor->Elapsed() < budget &&
         (max_execs == 0 || execs_run < max_execs) &&
         !stop->load(std::memory_order_relaxed) &&
         (cancel == nullptr || !cancel->load(std::memory_order_relaxed))) {
    fuzz::Program program = scheduler->NextProgram(*session->generator, *session->rng);
    std::vector<uint8_t> encoded;
    if (!EncodeForMailbox(*specs, &program, &encoded)) {
      continue;
    }
    auto outcome_or = session->executor->ExecuteOne(encoded);
    if (!outcome_or.ok()) {
      session->status = outcome_or.status();
      stop->store(true, std::memory_order_relaxed);
      break;
    }
    ExecOutcome outcome = std::move(outcome_or).value();
    ++execs_run;
    std::vector<CovHit> fresh_here;
    session->local_coverage.AddBatchAttributed(outcome.hits, &fresh_here);
    outcome.hits = std::move(fresh_here);
    scheduler->OnOutcome(program, outcome, *session->generator,
                         session->executor->Elapsed(), index);
    if (progress != nullptr) {
      progress->elapsed_us.store(session->executor->Elapsed(),
                                 std::memory_order_relaxed);
      progress->execs.store(execs_run, std::memory_order_relaxed);
    }
    if (emitter != nullptr) {
      session->executor->SetCoverageGauge(session->local_coverage.Count());
      emitter->MaybeEmit(index, session->executor->Elapsed());
    }
  }
  session->executor->SetCoverageGauge(session->local_coverage.Count());
  scheduler->OnWorkerDone(index);
  if (emitter != nullptr) {
    emitter->WorkerDone(index, session->executor->Elapsed());
  }
  if (progress != nullptr) {
    progress->elapsed_us.store(session->executor->Elapsed(),
                               std::memory_order_relaxed);
    progress->execs.store(execs_run, std::memory_order_relaxed);
    progress->done.store(true, std::memory_order_release);
  }
}

Result<CampaignResult> BoardFarm::Run() {
  ASSIGN_OR_RETURN(CampaignPlan plan, PrepareCampaign(config_));
  ASSIGN_OR_RETURN(
      std::unique_ptr<telemetry::CampaignTelemetry> telemetry,
      telemetry::CampaignTelemetry::Create(MakeTelemetryOptions(config_, jobs_)));

  CampaignScheduler::Options scheduler_options = MakeSchedulerOptions(config_, jobs_);
  scheduler_options.registry = &telemetry->campaign_registry();
  scheduler_options.sink = telemetry->sink();
  CampaignScheduler scheduler(plan.specs, scheduler_options);
  scheduler.SeedCorpus(config_.seed_programs);

  // Deploy the farm serially so each board's image build and boot stay on the
  // deterministic per-worker seed, then fuzz concurrently.
  std::vector<FarmSession> workers(static_cast<size_t>(jobs_));
  for (int i = 0; i < jobs_; ++i) {
    ASSIGN_OR_RETURN(workers[static_cast<size_t>(i)],
                     MakeFarmSession(config_, plan, FarmWorkerSeed(config_.seed, i),
                                     telemetry->board(i)));
  }

  telemetry->CampaignStart(config_.os_name, config_.board_name);
  telemetry->StartEmitter([&scheduler] { return scheduler.View(); });

  std::atomic<bool> stop(false);
  std::vector<std::thread> threads;
  threads.reserve(workers.size());
  for (int i = 0; i < jobs_; ++i) {
    threads.emplace_back(RunFarmSession, &workers[static_cast<size_t>(i)], i,
                         &scheduler, &plan.specs, config_.budget, config_.max_execs,
                         &stop, telemetry->emitter(), nullptr, nullptr);
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  for (const FarmSession& worker : workers) {
    RETURN_IF_ERROR(worker.status);
  }

  // Farm-wide aggregation is one snapshot merge over the per-board registries —
  // every instrument any layer registered rides along, not just the fields some
  // hand-written summation loop remembered to copy.
  telemetry::MetricsSnapshot merged = telemetry->MergedBoardSnapshot();
  VirtualTime elapsed = 0;
  for (FarmSession& worker : workers) {
    elapsed = std::max(elapsed, worker.executor->Elapsed());
  }
  CampaignResult result = scheduler.Finalize(
      ExecStatsFromSnapshot(merged), elapsed, DebugPortStatsFromSnapshot(merged));
  telemetry->CampaignEnd(elapsed);
  result.journal_dropped = telemetry->journal_dropped();
  if (result.journal_dropped > 0) {
    EOF_LOG(kWarning) << "journal sink dropped " << result.journal_dropped
                      << " rows; " << config_.metrics_out
                      << " is incomplete (eof report numbers are lower bounds)";
  }
  return result;
}

}  // namespace eof
