#include "src/core/monitors.h"

#include "src/common/strings.h"

namespace eof {

LogMonitor::LogMonitor() {
  // The cross-OS crash vocabulary: panic banners, assertion reports, fatal exceptions.
  struct Default {
    const char* pattern;
    const char* kind;
  };
  static const Default kDefaults[] = {
      {R"(BUG: kernel panic)", "panic"},
      {R"(BUG: unexpected stop)", "panic"},
      {R"(Guru Meditation Error)", "panic"},
      {R"(FATAL EXCEPTION|FATAL:)", "panic"},
      {R"(up_assert: PANIC!)", "panic"},
      {R"(Kernel panic)", "panic"},
      {R"(assertion failed|Assertion failed|ASSERT)", "assertion"},
      {R"(DEBUGASSERT)", "assertion"},
  };
  for (const Default& entry : kDefaults) {
    (void)AddPattern(entry.pattern, entry.kind);
  }
}

Status LogMonitor::AddPattern(const std::string& pattern, const std::string& kind) {
  try {
    patterns_.push_back(Pattern{std::regex(pattern), kind});
  } catch (const std::regex_error& error) {
    return InvalidArgumentError(StrFormat("bad pattern '%s': %s", pattern.c_str(),
                                          error.what()));
  }
  return OkStatus();
}

std::optional<BugSignature> LogMonitor::Scan(const std::string& uart_text) const {
  if (uart_text.empty()) {
    return std::nullopt;
  }
  for (const std::string& line : StrSplit(uart_text, '\n')) {
    for (const Pattern& pattern : patterns_) {
      if (std::regex_search(line, pattern.regex)) {
        BugSignature signature;
        signature.detector = "log";
        signature.kind = pattern.kind;
        signature.excerpt = line;
        return signature;
      }
    }
  }
  return std::nullopt;
}

Status ExceptionMonitor::Arm(Deployment& deployment, const std::string& exception_symbol) {
  ASSIGN_OR_RETURN(uint64_t address, Resolve(deployment, exception_symbol));
  return deployment.port().SetBreakpoint(address);
}

Result<uint64_t> ExceptionMonitor::Resolve(Deployment& deployment,
                                           const std::string& exception_symbol) {
  ASSIGN_OR_RETURN(uint64_t address, deployment.SymbolAddress(exception_symbol));
  symbol_ = exception_symbol;
  return address;
}

bool ExceptionMonitor::IsExceptionStop(const StopInfo& stop) const {
  return !symbol_.empty() && stop.reason == HaltReason::kBreakpoint &&
         stop.symbol == symbol_;
}

}  // namespace eof
