#include "src/core/scheduler.h"

#include <algorithm>

#include "src/agent/agent_layout.h"
#include "src/agent/wire.h"
#include "src/common/coverage_serial.h"
#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/core/bug_catalog.h"
#include "src/fuzz/program_text.h"
#include "src/fuzz/trimmer.h"
#include "src/hw/image.h"

namespace eof {

CampaignScheduler::CampaignScheduler(const spec::CompiledSpecs& specs, Options options)
    : specs_(specs),
      options_(options),
      sampler_(options.budget, options.sample_points),
      worker_elapsed_(static_cast<size_t>(std::max(options.workers, 1)), 0),
      worker_done_(static_cast<size_t>(std::max(options.workers, 1)), false) {
  telemetry::MetricsRegistry* registry = options_.registry;
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<telemetry::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  sink_ = options_.sink;
  execs_ = registry->RegisterCounter("campaign.execs");
  crashes_ = registry->RegisterCounter("campaign.crashes");
  bugs_found_ = registry->RegisterCounter("campaign.bugs");
  bug_dedup_hits_ = registry->RegisterCounter("campaign.bug_dedup_hits");
  bugs_rejected_ = registry->RegisterCounter("campaign.bugs_rejected");
  validation_replays_ = registry->RegisterCounter("campaign.validation_replays");
  fresh_edges_ = registry->RegisterCounter("campaign.fresh_edges");
  corpus_adds_ = registry->RegisterCounter("campaign.corpus_adds");
  directed_hits_ = registry->RegisterCounter("campaign.directed_hits");
  trim_removed_calls_ = registry->RegisterCounter("campaign.trim_removed_calls");
  trim_kept_calls_ = registry->RegisterCounter("campaign.trim_kept_calls");
  coverage_gauge_ = registry->RegisterGauge("campaign.coverage");
  corpus_gauge_ = registry->RegisterGauge("campaign.corpus");
  frontier_gauge_ = registry->RegisterGauge("campaign.frontier");
}

void CampaignScheduler::EmitEventLocked(VirtualTime at, const char* type, int worker,
                                        std::vector<telemetry::EventField> fields) {
  if (sink_ == nullptr) {
    return;
  }
  telemetry::Event event;
  event.at = at;
  event.type = type;
  event.worker = worker;
  event.fields = std::move(fields);
  sink_->Emit(event);
}

int CampaignScheduler::ShardLabel(int worker) const {
  if (worker >= 0 && static_cast<size_t>(worker) < options_.shard_ids.size()) {
    return options_.shard_ids[static_cast<size_t>(worker)];
  }
  return worker;
}

void CampaignScheduler::SeedCorpus(const std::vector<std::string>& seed_programs) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& text : seed_programs) {
    auto parsed = fuzz::ParseProgramText(specs_, text);
    if (parsed.ok() && options_.coverage_feedback) {
      corpus_.Add(std::move(parsed.value()), 1);
    }
  }
}

fuzz::Program CampaignScheduler::NextProgram(fuzz::Generator& generator, Rng& rng) {
  if (options_.coverage_feedback) {
    fuzz::Program seed_a;
    fuzz::Program seed_b;
    enum { kGenerate, kMutate, kSplice } action = kGenerate;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (options_.directed) {
        // Refresh this worker's focus from the shared frontier before it builds.
        // Focus only reweights PickSpec — it consumes no RNG, so directed=off
        // campaigns are bit-identical with the bookkeeping compiled in.
        generator.SetFocus(focus_specs_);
      }
      if (!corpus_.empty()) {
        uint64_t roll = rng.Below(100);
        if (roll < 70) {
          if (corpus_.PickSeedCopy(rng, &seed_a)) {
            action = kMutate;
          }
        } else if (roll < 80 && corpus_.size() >= 2) {
          if (corpus_.PickSeedCopy(rng, &seed_a) && corpus_.PickSeedCopy(rng, &seed_b)) {
            action = kSplice;
          }
        }
      }
    }
    if (action == kMutate) {
      return generator.Mutate(seed_a);
    }
    if (action == kSplice) {
      return generator.Splice(seed_a, seed_b);
    }
  }
  return generator.Generate();
}

void CampaignScheduler::RecordBugLocked(const BugSignature& signature,
                                        const fuzz::Program& program,
                                        const ExecOutcome& outcome,
                                        uint64_t coverage_delta, VirtualTime elapsed,
                                        int worker) {
  // Provenance is stamped with the campaign-global shard label so merged
  // per-worker fleet journals attribute bugs to distinct boards.
  int shard = ShardLabel(worker);
  crashes_->Increment();
  int catalog_id = AttributeBug(options_.os_name, signature.excerpt);
  // Deduplicate: one report per catalog id (or per excerpt for unknowns). Rejected
  // sightings count too — an artifact that re-triggers must not re-run validation.
  auto is_duplicate = [&](const std::vector<BugReport>& table) {
    for (const BugReport& existing : table) {
      if (catalog_id != 0 ? existing.catalog_id == catalog_id
                          : existing.excerpt == signature.excerpt) {
        return true;
      }
    }
    return false;
  };
  if (is_duplicate(result_.bugs) || is_duplicate(rejected_bugs_)) {
    bug_dedup_hits_->Increment();
    EmitEventLocked(elapsed, "bug_dedup", shard,
                    {telemetry::EventField::Uint(
                         "catalog_id", static_cast<uint64_t>(catalog_id)),
                     telemetry::EventField::Text("detector", signature.detector)});
    return;
  }
  BugReport report;
  report.catalog_id = catalog_id;
  report.detector = signature.detector;
  report.kind = signature.kind;
  report.excerpt = signature.excerpt;
  report.at = elapsed;
  report.program_text = fuzz::SerializeProgramText(specs_, program);
  report.first_exec = execs_->Value();
  report.board = shard;
  // Same lane rule as FarmWorkerSeed (shard 0 keeps the base stream) without a
  // dependency on the farm layer.
  report.seed_stream = shard == 0 ? options_.seed
                                  : DeriveSeedStream(options_.seed,
                                                     static_cast<uint64_t>(shard));
  report.coverage_delta = coverage_delta;
  if (outcome.dump.has_value()) {
    report.dump = *outcome.dump;
  }
  // Cold-boot provenance gate: before a first sighting enters the bug table, replay
  // its reproducer against a freshly flashed board. A crash that only reproduces on
  // accumulated warm-restore state is an artifact of the snapshot fast path, not an
  // OS bug — journal it as rejected and keep it out of the results.
  bool confirmed = true;
  if (options_.validator) {
    validation_replays_->Increment();
    confirmed = options_.validator(report);
    report.snapshot_validation = confirmed ? "confirmed" : "rejected";
  }
  if (confirmed) {
    bugs_found_->Increment();
    EmitEventLocked(elapsed, "bug", shard,
                    {telemetry::EventField::Uint("catalog_id",
                                                 static_cast<uint64_t>(catalog_id)),
                     telemetry::EventField::Text("detector", signature.detector),
                     telemetry::EventField::Text("kind", signature.kind)});
  } else {
    bugs_rejected_->Increment();
    result_.bugs_rejected++;
  }
  // The full Table-2 provenance row: everything a later `eof report` run needs to
  // rebuild the bug table (attribution, first sighting, reproducer, forensics).
  // Rejected sightings are journaled too — snapshot_validation says which is which.
  {
    const BugInfo* info = FindBug(catalog_id);
    std::vector<telemetry::EventField> fields;
    fields.push_back(telemetry::EventField::Uint("catalog_id",
                                                 static_cast<uint64_t>(catalog_id)));
    fields.push_back(telemetry::EventField::Text("detector", report.detector));
    fields.push_back(telemetry::EventField::Text("kind", report.kind));
    fields.push_back(telemetry::EventField::Text(
        "operation", info != nullptr ? info->operation : ""));
    fields.push_back(telemetry::EventField::Uint("first_exec", report.first_exec));
    fields.push_back(
        telemetry::EventField::Uint("board", static_cast<uint64_t>(shard)));
    fields.push_back(telemetry::EventField::Uint("seed_stream", report.seed_stream));
    fields.push_back(telemetry::EventField::Uint("coverage_delta", coverage_delta));
    fields.push_back(telemetry::EventField::Text("snapshot_validation",
                                                 report.snapshot_validation));
    fields.push_back(telemetry::EventField::Text("last_restore",
                                                 report.dump.last_restore));
    fields.push_back(telemetry::EventField::Text("excerpt", report.excerpt));
    fields.push_back(telemetry::EventField::Text("program", report.program_text));
    fields.push_back(telemetry::EventField::Text("dump_reason", report.dump.reason));
    fields.push_back(telemetry::EventField::Text("uart_tail",
                                                 report.dump.UartTailText()));
    fields.push_back(telemetry::EventField::Text("port_ops",
                                                 report.dump.PortOpsText()));
    fields.push_back(telemetry::EventField::Text("events", report.dump.EventsText()));
    EmitEventLocked(elapsed, "bug_report", shard, std::move(fields));
  }
  if (confirmed) {
    result_.bugs.push_back(std::move(report));
    EOF_LOG(kDebug) << options_.os_name << ": bug #" << catalog_id << " via "
                    << signature.detector << ": " << signature.excerpt;
  } else {
    rejected_bugs_.push_back(std::move(report));
    EOF_LOG(kDebug) << options_.os_name << ": rejected state-dependent sighting #"
                    << catalog_id << " via " << signature.detector << ": "
                    << signature.excerpt;
  }
}

void CampaignScheduler::AdvanceFrontierLocked(int worker, VirtualTime elapsed) {
  size_t slot = static_cast<size_t>(worker);
  if (slot < worker_elapsed_.size()) {
    worker_elapsed_[slot] = std::max(worker_elapsed_[slot], elapsed);
  }
  // The campaign timeline advances to the slowest active session: a sample at time
  // t is recorded once every board has lived through t, so the merged series never
  // credits coverage to a moment some board has not reached yet.
  VirtualTime frontier = options_.budget;
  for (size_t i = 0; i < worker_elapsed_.size(); ++i) {
    if (!worker_done_[i]) {
      frontier = std::min(frontier, worker_elapsed_[i]);
    }
  }
  sampler_.Advance(frontier, coverage_.Count(), &result_.series);
}

void CampaignScheduler::UpdateFrontierLocked(const fuzz::Program& program,
                                             const std::vector<CovHit>& fresh_hits) {
  for (const CovHit& hit : fresh_hits) {
    // A predicted edge: generation aimed at this neighbour and the target's
    // control flow actually reached it.
    auto it = frontier_.find(hit.edge);
    if (it != frontier_.end()) {
      directed_hits_->Increment();
      result_.directed_hits++;
      frontier_.erase(it);
    }
    size_t owner_spec = SIZE_MAX;
    if (hit.call < program.calls.size()) {
      owner_spec = program.calls[hit.call].spec_index;
    }
    // The synthetic code space is a strided lattice (image.h), so the nearest
    // control-flow neighbours of a basic block are one stride away.
    const uint64_t neighbours[2] = {hit.edge - kBasicBlockStride,
                                    hit.edge + kBasicBlockStride};
    for (uint64_t neighbour : neighbours) {
      if (!coverage_.Contains(neighbour)) {
        frontier_.emplace(neighbour, owner_spec);  // first owner wins
      }
    }
  }
  if (!fresh_hits.empty()) {
    RebuildFocusLocked();
    frontier_gauge_->Set(frontier_.size());
  }
}

void CampaignScheduler::RebuildFocusLocked() {
  focus_specs_.clear();
  for (const auto& [edge, spec_index] : frontier_) {
    (void)edge;
    if (spec_index != SIZE_MAX) {
      focus_specs_.push_back(spec_index);
    }
  }
  focus_specs_.insert(focus_specs_.end(), remote_focus_.begin(), remote_focus_.end());
  std::sort(focus_specs_.begin(), focus_specs_.end());
  focus_specs_.erase(std::unique(focus_specs_.begin(), focus_specs_.end()),
                     focus_specs_.end());
}

void CampaignScheduler::OnOutcome(const fuzz::Program& program, const ExecOutcome& outcome,
                                  fuzz::Generator& generator, VirtualTime elapsed,
                                  int worker) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CovHit> fresh_hits;
  uint64_t fresh = coverage_.AddBatchAttributed(outcome.hits, &fresh_hits);
  execs_->Increment();
  if (outcome.signature.has_value()) {
    RecordBugLocked(*outcome.signature, program, outcome, fresh, elapsed, worker);
  }
  if (fresh > 0) {
    fresh_edges_->Add(fresh);
    coverage_gauge_->Set(coverage_.Count());
    if (options_.track_coverage_delta) {
      for (const CovHit& hit : fresh_hits) {
        coverage_delta_log_.push_back(hit.edge);
      }
    }
    EmitEventLocked(elapsed, "new_coverage", ShardLabel(worker),
                    {telemetry::EventField::Uint("fresh", fresh),
                     telemetry::EventField::Uint("total", coverage_.Count())});
    UpdateFrontierLocked(program, fresh_hits);
  }
  if (options_.coverage_feedback && fresh > 0) {
    const fuzz::Program* admit = &program;
    fuzz::Program trimmed;
    if (options_.trim) {
      std::vector<uint32_t> owner_calls;
      owner_calls.reserve(fresh_hits.size());
      for (const CovHit& hit : fresh_hits) {
        owner_calls.push_back(hit.call);
      }
      fuzz::TrimStats trim_stats;
      trimmed = fuzz::TrimToCalls(program, owner_calls, &trim_stats);
      trim_kept_calls_->Add(trim_stats.kept_calls);
      trim_removed_calls_->Add(trim_stats.removed_calls);
      result_.trim_kept_calls += trim_stats.kept_calls;
      result_.trim_removed_calls += trim_stats.removed_calls;
      if (trim_stats.removed_calls > 0) {
        EmitEventLocked(elapsed, "trim", ShardLabel(worker),
                        {telemetry::EventField::Uint("kept", trim_stats.kept_calls),
                         telemetry::EventField::Uint("removed",
                                                     trim_stats.removed_calls)});
      }
      admit = &trimmed;
    }
    if (corpus_.Add(*admit, fresh)) {
      corpus_adds_->Increment();
      corpus_gauge_->Set(corpus_.size());
      generator.NotifyNewCoverage(*admit);
    }
  }
  AdvanceFrontierLocked(worker, elapsed);
}

void CampaignScheduler::OnWorkerDone(int worker) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t slot = static_cast<size_t>(worker);
  if (slot >= worker_done_.size()) {
    return;
  }
  worker_done_[slot] = true;
  AdvanceFrontierLocked(worker, worker_elapsed_[slot]);
}

CampaignResult CampaignScheduler::Finalize(const ExecStats& stats, VirtualTime elapsed,
                                           const DebugPortStats& link) {
  std::lock_guard<std::mutex> lock(mu_);
  sampler_.Finish(coverage_.Count(), &result_.series);
  result_.final_coverage = coverage_.Count();
  result_.corpus_size = corpus_.size();
  result_.elapsed = elapsed;
  result_.execs = execs_->Value();
  result_.crashes = crashes_->Value();
  result_.rejected = stats.rejected;
  result_.stalls = stats.stalls;
  result_.timeouts = stats.timeouts;
  result_.restores = stats.restores;
  result_.snapshot_restores = stats.snapshot_restores;
  result_.snapshot_bytes = stats.snapshot_bytes;
  result_.link = link;
  result_.frontier = frontier_.size();
  if (options_.export_corpus) {
    std::vector<std::pair<std::string, uint64_t>> exported;
    corpus_.ExportSince(specs_, 0, &exported);
    result_.corpus_programs.clear();
    result_.corpus_programs.reserve(exported.size());
    for (auto& [text, new_edges] : exported) {
      (void)new_edges;
      result_.corpus_programs.push_back(std::move(text));
    }
  }
  return result_;
}

std::vector<uint8_t> CampaignScheduler::SerializeCoverageSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return SerializeCoverage(coverage_);
}

std::vector<uint8_t> CampaignScheduler::TakeCoverageDelta() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint8_t> blob =
      SerializeCoverageIds(std::move(coverage_delta_log_), CoverageWireKind::kDiff);
  coverage_delta_log_.clear();
  return blob;
}

Result<size_t> CampaignScheduler::MergeRemoteCoverage(const std::vector<uint8_t>& blob) {
  std::lock_guard<std::mutex> lock(mu_);
  ASSIGN_OR_RETURN(size_t fresh, MergeSerializedCoverage(blob, &coverage_));
  if (fresh > 0) {
    // Peer edges enter the map (so local rediscovery is not "fresh" and the
    // frontier stops chasing them) but are neither logged into the upload delta
    // nor counted as locally discovered.
    coverage_gauge_->Set(coverage_.Count());
  }
  return fresh;
}

uint64_t CampaignScheduler::ExportCorpusSince(
    uint64_t from_seq, std::vector<std::pair<std::string, uint64_t>>* out) const {
  return corpus_.ExportSince(specs_, from_seq, out);
}

size_t CampaignScheduler::AdmitRemotePrograms(
    const std::vector<std::pair<std::string, uint64_t>>& entries) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t admitted = 0;
  for (const auto& [text, new_edges] : entries) {
    auto parsed = fuzz::ParseProgramText(specs_, text);
    if (parsed.ok() &&
        corpus_.Add(std::move(parsed.value()), std::max<uint64_t>(new_edges, 1))) {
      ++admitted;
    }
  }
  if (admitted > 0) {
    corpus_gauge_->Set(corpus_.size());
  }
  return admitted;
}

void CampaignScheduler::MergeRemoteFocus(const std::vector<uint64_t>& spec_indices) {
  std::lock_guard<std::mutex> lock(mu_);
  remote_focus_.clear();
  remote_focus_.reserve(spec_indices.size());
  for (uint64_t index : spec_indices) {
    if (index < specs_.calls.size()) {
      remote_focus_.push_back(static_cast<size_t>(index));
    }
  }
  RebuildFocusLocked();
}

std::vector<BugReport> CampaignScheduler::BugsSince(size_t from) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (from >= result_.bugs.size()) {
    return {};
  }
  return std::vector<BugReport>(result_.bugs.begin() + from, result_.bugs.end());
}

std::vector<size_t> CampaignScheduler::FocusSpecs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return focus_specs_;
}

uint64_t CampaignScheduler::CoverageCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coverage_.Count();
}

size_t CampaignScheduler::CorpusSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return corpus_.size();
}

telemetry::CampaignView CampaignScheduler::View() const {
  std::lock_guard<std::mutex> lock(mu_);
  telemetry::CampaignView view;
  view.coverage = coverage_.Count();
  view.corpus = corpus_.size();
  view.execs = execs_->Value();
  view.crashes = crashes_->Value();
  view.bugs = result_.bugs.size();
  view.bugs_rejected = rejected_bugs_.size();
  view.directed_hits = result_.directed_hits;
  view.frontier = frontier_.size();
  view.trim_removed_calls = result_.trim_removed_calls;
  view.trim_kept_calls = result_.trim_kept_calls;
  return view;
}

std::vector<BugReport> CampaignScheduler::RejectedBugs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_bugs_;
}

bool EncodeForMailbox(const spec::CompiledSpecs& specs, fuzz::Program* program,
                      std::vector<uint8_t>* encoded) {
  *encoded = EncodeProgram(program->ToWire(specs));
  if (encoded->size() <= kMailboxMaxBytes) {
    return true;
  }
  // Oversized program: trim calls until it fits the mailbox.
  while (!program->calls.empty() && encoded->size() > kMailboxMaxBytes) {
    program->calls.pop_back();
    *encoded = EncodeProgram(program->ToWire(specs));
  }
  return !program->calls.empty();
}

}  // namespace eof
