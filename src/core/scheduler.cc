#include "src/core/scheduler.h"

#include <algorithm>

#include "src/agent/agent_layout.h"
#include "src/agent/wire.h"
#include "src/common/logging.h"
#include "src/core/bug_catalog.h"
#include "src/fuzz/program_text.h"

namespace eof {

CampaignScheduler::CampaignScheduler(const spec::CompiledSpecs& specs, Options options)
    : specs_(specs),
      options_(options),
      sampler_(options.budget, options.sample_points),
      worker_elapsed_(static_cast<size_t>(std::max(options.workers, 1)), 0),
      worker_done_(static_cast<size_t>(std::max(options.workers, 1)), false) {}

void CampaignScheduler::SeedCorpus(const std::vector<std::string>& seed_programs) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& text : seed_programs) {
    auto parsed = fuzz::ParseProgramText(specs_, text);
    if (parsed.ok() && options_.coverage_feedback) {
      corpus_.Add(std::move(parsed.value()), 1);
    }
  }
}

fuzz::Program CampaignScheduler::NextProgram(fuzz::Generator& generator, Rng& rng) {
  if (options_.coverage_feedback) {
    fuzz::Program seed_a;
    fuzz::Program seed_b;
    enum { kGenerate, kMutate, kSplice } action = kGenerate;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!corpus_.empty()) {
        uint64_t roll = rng.Below(100);
        if (roll < 70) {
          if (corpus_.PickSeedCopy(rng, &seed_a)) {
            action = kMutate;
          }
        } else if (roll < 80 && corpus_.size() >= 2) {
          if (corpus_.PickSeedCopy(rng, &seed_a) && corpus_.PickSeedCopy(rng, &seed_b)) {
            action = kSplice;
          }
        }
      }
    }
    if (action == kMutate) {
      return generator.Mutate(seed_a);
    }
    if (action == kSplice) {
      return generator.Splice(seed_a, seed_b);
    }
  }
  return generator.Generate();
}

void CampaignScheduler::RecordBugLocked(const BugSignature& signature,
                                        const fuzz::Program& program,
                                        VirtualTime elapsed) {
  ++result_.crashes;
  int catalog_id = AttributeBug(options_.os_name, signature.excerpt);
  // Deduplicate: one report per catalog id (or per excerpt for unknowns).
  for (const BugReport& existing : result_.bugs) {
    if (catalog_id != 0 ? existing.catalog_id == catalog_id
                        : existing.excerpt == signature.excerpt) {
      return;
    }
  }
  BugReport report;
  report.catalog_id = catalog_id;
  report.detector = signature.detector;
  report.kind = signature.kind;
  report.excerpt = signature.excerpt;
  report.at = elapsed;
  report.program_text = fuzz::SerializeProgramText(specs_, program);
  result_.bugs.push_back(std::move(report));
  EOF_LOG(kDebug) << options_.os_name << ": bug #" << catalog_id << " via "
                  << signature.detector << ": " << signature.excerpt;
}

void CampaignScheduler::AdvanceFrontierLocked(int worker, VirtualTime elapsed) {
  size_t slot = static_cast<size_t>(worker);
  if (slot < worker_elapsed_.size()) {
    worker_elapsed_[slot] = std::max(worker_elapsed_[slot], elapsed);
  }
  // The campaign timeline advances to the slowest active session: a sample at time
  // t is recorded once every board has lived through t, so the merged series never
  // credits coverage to a moment some board has not reached yet.
  VirtualTime frontier = options_.budget;
  for (size_t i = 0; i < worker_elapsed_.size(); ++i) {
    if (!worker_done_[i]) {
      frontier = std::min(frontier, worker_elapsed_[i]);
    }
  }
  sampler_.Advance(frontier, coverage_.Count(), &result_.series);
}

void CampaignScheduler::OnOutcome(const fuzz::Program& program, const ExecOutcome& outcome,
                                  fuzz::Generator& generator, VirtualTime elapsed,
                                  int worker) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t fresh = coverage_.AddBatch(outcome.edges);
  ++result_.execs;
  if (outcome.signature.has_value()) {
    RecordBugLocked(*outcome.signature, program, elapsed);
  }
  if (options_.coverage_feedback && fresh > 0) {
    if (corpus_.Add(program, fresh)) {
      generator.NotifyNewCoverage(program);
    }
  }
  AdvanceFrontierLocked(worker, elapsed);
}

void CampaignScheduler::OnWorkerDone(int worker) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t slot = static_cast<size_t>(worker);
  if (slot >= worker_done_.size()) {
    return;
  }
  worker_done_[slot] = true;
  AdvanceFrontierLocked(worker, worker_elapsed_[slot]);
}

CampaignResult CampaignScheduler::Finalize(const ExecStats& stats, VirtualTime elapsed,
                                           const DebugPortStats& link) {
  std::lock_guard<std::mutex> lock(mu_);
  sampler_.Finish(coverage_.Count(), &result_.series);
  result_.final_coverage = coverage_.Count();
  result_.corpus_size = corpus_.size();
  result_.elapsed = elapsed;
  result_.rejected = stats.rejected;
  result_.stalls = stats.stalls;
  result_.timeouts = stats.timeouts;
  result_.restores = stats.restores;
  result_.link = link;
  return result_;
}

uint64_t CampaignScheduler::CoverageCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coverage_.Count();
}

size_t CampaignScheduler::CorpusSize() const {
  std::lock_guard<std::mutex> lock(mu_);
  return corpus_.size();
}

bool EncodeForMailbox(const spec::CompiledSpecs& specs, fuzz::Program* program,
                      std::vector<uint8_t>* encoded) {
  *encoded = EncodeProgram(program->ToWire(specs));
  if (encoded->size() <= kMailboxMaxBytes) {
    return true;
  }
  // Oversized program: trim calls until it fits the mailbox.
  while (!program->calls.empty() && encoded->size() > kMailboxMaxBytes) {
    program->calls.pop_back();
    *encoded = EncodeProgram(program->ToWire(specs));
  }
  return !program->calls.empty();
}

}  // namespace eof
