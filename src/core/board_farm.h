// BoardFarm: one campaign fanned out over a farm of boards (§5.1's per-pair
// campaigns, run wide). N worker threads each own a full board session — their own
// Deployment, TargetExecutor, Generator, and RNG stream — and share one
// CampaignScheduler: seeds are pulled from the shared corpus and per-worker edge
// sets merge into the global coverage map under the scheduler's lock.
//
// Time: every worker burns the same virtual budget on its own board clock, exactly
// as N physical boards racked side by side would; the scheduler aggregates the
// per-worker clocks into one campaign timeline by sampling at the slowest active
// session's elapsed time. Campaign `elapsed` is the longest session.
//
// Determinism: worker 0 reuses the base seed and the engine's historical RNG
// streams, so a --jobs 1 farm campaign reproduces EofFuzzer::Run() bit-for-bit.
// Workers 1..N-1 derive independent streams by hashing (seed, worker).

#ifndef SRC_CORE_BOARD_FARM_H_
#define SRC_CORE_BOARD_FARM_H_

#include <atomic>

#include "src/common/coverage_map.h"
#include "src/core/fuzzer.h"

namespace eof {

// Seed for worker `worker`'s streams: worker 0 keeps `base_seed` (single-threaded
// reproducibility); others get an FNV-derived independent stream.
uint64_t FarmWorkerSeed(uint64_t base_seed, int worker);

// One board session: executor + generator + RNG stream + a local coverage map that
// pre-filters already-seen edges so the global merge holds the campaign lock only
// for genuinely new material. Locally-old edges are a subset of globally-old ones
// (everything a worker drained was merged), so filtering never changes the global
// fresh count — which keeps --jobs 1 bit-identical to the single-threaded engine.
// Shared between the in-process BoardFarm and the fleet worker (src/fleet), which
// runs the same loop against a batch-local scheduler.
struct FarmSession {
  std::unique_ptr<TargetExecutor> executor;
  std::unique_ptr<fuzz::Generator> generator;
  std::unique_ptr<Rng> rng;
  CoverageMap local_coverage;
  Status status = OkStatus();
};

// Builds one deterministic board session. `seed` is the session's stream seed
// (callers apply the FarmWorkerSeed rule to their shard/worker label first);
// `board` is the session's telemetry handle (may be nullptr-fielded options
// upstream, but the farm always passes a real one).
Result<FarmSession> MakeFarmSession(const FuzzerConfig& config,
                                    const CampaignPlan& plan, uint64_t seed,
                                    telemetry::BoardTelemetry* board);

// Live progress mirror for one session, updated with relaxed stores after every
// execution. The fleet worker's sync pump reads it from another thread to build
// heartbeats without touching the session's executor or clock.
struct FarmProgress {
  std::atomic<uint64_t> elapsed_us{0};
  std::atomic<uint64_t> execs{0};
  std::atomic<bool> done{false};
};

// The shared session loop: pull the next program from the scheduler, encode it
// for the agent mailbox, execute, and merge the outcome — until the budget, the
// exec cap, `stop` (latched farm-wide on executor errors), or `cancel` (optional
// per-session abort, the fleet lease-revocation hook) ends the session.
// `progress` (optional) mirrors the session's clock and exec count for
// cross-thread readers.
void RunFarmSession(FarmSession* session, int index, CampaignScheduler* scheduler,
                    const spec::CompiledSpecs* specs, VirtualDuration budget,
                    uint64_t max_execs, std::atomic<bool>* stop,
                    telemetry::SnapshotEmitter* emitter,
                    const std::atomic<bool>* cancel = nullptr,
                    FarmProgress* progress = nullptr);

class BoardFarm {
 public:
  // `jobs` < 1 is clamped to 1.
  BoardFarm(FuzzerConfig config, int jobs);

  // Deploys `jobs` boards, fuzzes them concurrently until every session exhausts
  // the virtual budget, and reports the merged campaign.
  Result<CampaignResult> Run();

  int jobs() const { return jobs_; }

 private:
  FuzzerConfig config_;
  int jobs_;
};

}  // namespace eof

#endif  // SRC_CORE_BOARD_FARM_H_
