// BoardFarm: one campaign fanned out over a farm of boards (§5.1's per-pair
// campaigns, run wide). N worker threads each own a full board session — their own
// Deployment, TargetExecutor, Generator, and RNG stream — and share one
// CampaignScheduler: seeds are pulled from the shared corpus and per-worker edge
// sets merge into the global coverage map under the scheduler's lock.
//
// Time: every worker burns the same virtual budget on its own board clock, exactly
// as N physical boards racked side by side would; the scheduler aggregates the
// per-worker clocks into one campaign timeline by sampling at the slowest active
// session's elapsed time. Campaign `elapsed` is the longest session.
//
// Determinism: worker 0 reuses the base seed and the engine's historical RNG
// streams, so a --jobs 1 farm campaign reproduces EofFuzzer::Run() bit-for-bit.
// Workers 1..N-1 derive independent streams by hashing (seed, worker).

#ifndef SRC_CORE_BOARD_FARM_H_
#define SRC_CORE_BOARD_FARM_H_

#include "src/core/fuzzer.h"

namespace eof {

// Seed for worker `worker`'s streams: worker 0 keeps `base_seed` (single-threaded
// reproducibility); others get an FNV-derived independent stream.
uint64_t FarmWorkerSeed(uint64_t base_seed, int worker);

class BoardFarm {
 public:
  // `jobs` < 1 is clamped to 1.
  BoardFarm(FuzzerConfig config, int jobs);

  // Deploys `jobs` boards, fuzzes them concurrently until every session exhausts
  // the virtual budget, and reports the merged campaign.
  Result<CampaignResult> Run();

  int jobs() const { return jobs_; }

 private:
  FuzzerConfig config_;
  int jobs_;
};

}  // namespace eof

#endif  // SRC_CORE_BOARD_FARM_H_
