// Builds a flashable firmware image for (OS, board): partitions with boot-verifiable
// payloads, the agent + OS symbol table, module basic-block layouts, and instrumentation
// options. This is the host side of Figure 3 steps ① (memory-layout analysis input) and
// ③ (instrumentation), rolled into the build as the paper's compilation-script changes.

#ifndef SRC_CORE_IMAGE_BUILDER_H_
#define SRC_CORE_IMAGE_BUILDER_H_

#include <memory>
#include <string>

#include "src/common/status.h"
#include "src/hw/board_spec.h"
#include "src/hw/image.h"

namespace eof {

struct ImageBuildOptions {
  std::string os_name;
  InstrumentationOptions instrumentation;
  uint64_t seed = 1;  // payload generation seed (build id)
};

// Computes the flash footprint of the image in bytes — base OS build plus instrumentation
// growth (§5.5.1). Exposed separately so the overhead bench can compare without building.
Result<uint64_t> ComputeImageSize(const std::string& os_name,
                                  const InstrumentationOptions& instrumentation);

Result<std::shared_ptr<FirmwareImage>> BuildImage(const BoardSpec& spec,
                                                  const ImageBuildOptions& options);

}  // namespace eof

#endif  // SRC_CORE_IMAGE_BUILDER_H_
