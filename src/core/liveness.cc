#include "src/core/liveness.h"

namespace eof {

const char* LivenessVerdictName(LivenessVerdict verdict) {
  switch (verdict) {
    case LivenessVerdict::kAlive:
      return "alive";
    case LivenessVerdict::kConnectionTimeout:
      return "connection-timeout";
    case LivenessVerdict::kPcStall:
      return "pc-stall";
    case LivenessVerdict::kPowerPlateau:
      return "power-plateau";
  }
  return "?";
}

LivenessVerdict LivenessWatchdog::Check(DebugPort& port) {
  if (power_probe_) {
    if (port.SamplePowerMilliAmps() >= kPlateauMilliAmps) {
      if (++plateau_strikes_ >= 2) {
        return LivenessVerdict::kPowerPlateau;
      }
    } else {
      plateau_strikes_ = 0;
    }
  }
  auto pc = port.ReadPC();
  if (!pc.ok()) {
    last_pc_.reset();
    return LivenessVerdict::kConnectionTimeout;
  }
  if (!last_pc_.has_value()) {
    last_pc_ = pc.value();
    return LivenessVerdict::kAlive;
  }
  if (*last_pc_ == pc.value()) {
    return LivenessVerdict::kPcStall;
  }
  last_pc_ = pc.value();
  return LivenessVerdict::kAlive;
}

Status StateRestoration(Deployment& deployment) {
  return deployment.ReflashAndReboot();
}

Status StateRestorationWithSnapshot(Deployment& deployment, const BoardSnapshot* snapshot,
                                    bool* used_snapshot) {
  if (used_snapshot != nullptr) {
    *used_snapshot = false;
  }
  if (snapshot != nullptr) {
    Status warm = snapshot->Restore(deployment.port());
    if (warm.ok()) {
      if (used_snapshot != nullptr) {
        *used_snapshot = true;
      }
      return OkStatus();
    }
    // The warm path can die between its core restore and its RAM write, leaving a
    // freshly booted core with stale memory. Never hand that board back: fall
    // through to the full reflash+reboot, which re-establishes state from scratch.
  }
  return StateRestoration(deployment);
}

}  // namespace eof
