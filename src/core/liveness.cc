#include "src/core/liveness.h"

namespace eof {

const char* LivenessVerdictName(LivenessVerdict verdict) {
  switch (verdict) {
    case LivenessVerdict::kAlive:
      return "alive";
    case LivenessVerdict::kConnectionTimeout:
      return "connection-timeout";
    case LivenessVerdict::kPcStall:
      return "pc-stall";
    case LivenessVerdict::kPowerPlateau:
      return "power-plateau";
  }
  return "?";
}

LivenessVerdict LivenessWatchdog::Check(DebugPort& port) {
  if (power_probe_) {
    if (port.SamplePowerMilliAmps() >= kPlateauMilliAmps) {
      if (++plateau_strikes_ >= 2) {
        return LivenessVerdict::kPowerPlateau;
      }
    } else {
      plateau_strikes_ = 0;
    }
  }
  auto pc = port.ReadPC();
  if (!pc.ok()) {
    last_pc_.reset();
    return LivenessVerdict::kConnectionTimeout;
  }
  if (!last_pc_.has_value()) {
    last_pc_ = pc.value();
    return LivenessVerdict::kAlive;
  }
  if (*last_pc_ == pc.value()) {
    return LivenessVerdict::kPcStall;
  }
  last_pc_ = pc.value();
  return LivenessVerdict::kAlive;
}

Status StateRestoration(Deployment& deployment) {
  return deployment.ReflashAndReboot();
}

}  // namespace eof
