// Bug monitors (§4.5.2): the log monitor greps UART output against crash patterns with
// regular expressions; the exception monitor plants breakpoints on the target OS's
// exception functions and recognises stops there.

#ifndef SRC_CORE_MONITORS_H_
#define SRC_CORE_MONITORS_H_

#include <optional>
#include <regex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/deployment.h"
#include "src/hw/stop_info.h"

namespace eof {

struct BugSignature {
  std::string detector;  // "log" | "exception"
  std::string kind;      // "panic" | "assertion"
  std::string excerpt;   // the matching line / handler symbol
};

class LogMonitor {
 public:
  // Default pattern set covering the four OSs' crash banners.
  LogMonitor();

  // Adds a pattern (ECMAScript regex, matched per line).
  Status AddPattern(const std::string& pattern, const std::string& kind);

  // Scans captured UART text; returns the first match.
  std::optional<BugSignature> Scan(const std::string& uart_text) const;

 private:
  struct Pattern {
    std::regex regex;
    std::string kind;
  };
  std::vector<Pattern> patterns_;
};

class ExceptionMonitor {
 public:
  // Plants a breakpoint on the OS exception function named by the image.
  Status Arm(Deployment& deployment, const std::string& exception_symbol);

  // Resolves the exception symbol and records it for IsExceptionStop without arming —
  // callers that coalesce breakpoint programming into one vectored batch (the executor's
  // batched ArmBreakpoints) plant the returned address themselves.
  Result<uint64_t> Resolve(Deployment& deployment, const std::string& exception_symbol);

  // True when `stop` is a breakpoint hit on the armed exception function.
  bool IsExceptionStop(const StopInfo& stop) const;

  const std::string& symbol() const { return symbol_; }

 private:
  std::string symbol_;
};

}  // namespace eof

#endif  // SRC_CORE_MONITORS_H_
