// Reproducer replay: run one saved program text against a fresh deployment with full
// monitoring, and report what happened — the triage half of the fuzzing workflow.

#ifndef SRC_CORE_REPLAY_H_
#define SRC_CORE_REPLAY_H_

#include <string>

#include "src/common/status.h"
#include "src/core/fuzzer.h"

namespace eof {

struct ReplayOutcome {
  bool crashed = false;
  int catalog_id = 0;        // attributed Table-2 bug, 0 if unknown/no crash
  std::string detector;      // "exception" | "log" | ""
  std::string crash_text;    // UART capture when crashed
  std::string uart;          // full UART capture of the run
};

// Deploys `os_name` on its default board (or `board_name`), parses `program_text`
// against freshly mined specs, executes it once, and reports.
Result<ReplayOutcome> ReplayReproducer(const std::string& os_name,
                                       const std::string& program_text,
                                       const std::string& board_name = "");

}  // namespace eof

#endif  // SRC_CORE_REPLAY_H_
