// Reproducer replay: run one saved program text against a fresh deployment with full
// monitoring, and report what happened — the triage half of the fuzzing workflow.

#ifndef SRC_CORE_REPLAY_H_
#define SRC_CORE_REPLAY_H_

#include <string>

#include "src/common/status.h"
#include "src/core/fuzzer.h"

namespace eof {

struct ReplayOutcome {
  bool crashed = false;
  int catalog_id = 0;        // attributed Table-2 bug, 0 if unknown/no crash
  std::string detector;      // "exception" | "log" | ""
  std::string crash_text;    // UART capture when crashed
  std::string uart;          // full UART capture of the run
};

// Deploys `os_name` on its default board (or `board_name`), parses `program_text`
// against freshly mined specs, executes it once, and reports.
Result<ReplayOutcome> ReplayReproducer(const std::string& os_name,
                                       const std::string& program_text,
                                       const std::string& board_name = "");

struct TrimOutcome {
  std::string trimmed_text;        // the minimized program, serialized
  size_t original_calls = 0;
  size_t kept_calls = 0;
  size_t removed_calls = 0;
  uint64_t original_coverage = 0;  // distinct edges the original run produced
  uint64_t trimmed_coverage = 0;   // distinct edges the verification run produced
  bool coverage_preserved = false; // verification run reached every original edge
};

// Edge-preserving minimization of one saved program (`eof trim`): runs it once on
// a fresh deployment collecting per-call attributed coverage, keeps only the calls
// that own a first-seen edge plus their transitive result producers, then replays
// the trimmed program on a second fresh board to verify the edge set survived.
Result<TrimOutcome> TrimReproducer(const std::string& os_name,
                                   const std::string& program_text,
                                   const std::string& board_name = "");

}  // namespace eof

#endif  // SRC_CORE_REPLAY_H_
