// CoverageMap wire serialization: the fleet corpus-sync primitive.
//
// A coverage blob is a versioned header followed by the distinct edge IDs sorted
// ascending and delta-encoded as LEB128 varints. Sorting makes the encoding
// canonical — two maps holding the same edge set serialize to identical bytes no
// matter the insertion order — so merge commutativity is testable on raw bytes,
// and the common case (clustered synthetic basic-block addresses, small deltas)
// costs one or two bytes per edge instead of eight.
//
// Two kinds share the format: a *full* snapshot (everything a rejoining worker
// needs to resync) and a *diff* (just the edges discovered since the last sync,
// the steady-state heartbeat payload). Merging either into a CoverageMap is
// idempotent, so replayed uploads are harmless.

#ifndef SRC_COMMON_COVERAGE_SERIAL_H_
#define SRC_COMMON_COVERAGE_SERIAL_H_

#include <cstdint>
#include <vector>

#include "src/common/coverage_map.h"
#include "src/common/status.h"

namespace eof {

enum class CoverageWireKind : uint8_t {
  kFull = 0,  // complete edge set of a map
  kDiff = 1,  // edges discovered since the previous sync point
};

// Serializes the complete ID set of `map` as a full snapshot.
std::vector<uint8_t> SerializeCoverage(const CoverageMap& map);

// Serializes an explicit ID set (sorted and deduplicated internally). Diffs are
// built from the scheduler's fresh-edge log via this entry point.
std::vector<uint8_t> SerializeCoverageIds(std::vector<uint64_t> ids,
                                          CoverageWireKind kind);

struct DecodedCoverage {
  CoverageWireKind kind = CoverageWireKind::kFull;
  std::vector<uint64_t> ids;  // sorted ascending, distinct
};

// Decodes a blob; fails on bad magic, unknown version, truncation, or
// non-monotone ID streams (corruption never silently drops edges).
Result<DecodedCoverage> DecodeCoverage(const std::vector<uint8_t>& blob);

// Decodes and folds a blob into `into`; returns how many edges were new there.
Result<size_t> MergeSerializedCoverage(const std::vector<uint8_t>& blob,
                                       CoverageMap* into);

}  // namespace eof

#endif  // SRC_COMMON_COVERAGE_SERIAL_H_
