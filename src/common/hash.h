// FNV-1a hashing used for coverage-edge identifiers and image checksums. Edge IDs must be
// stable across runs (corpus entries reference them), so we use a fixed, well-known hash
// rather than std::hash, whose value is implementation-defined.

#ifndef SRC_COMMON_HASH_H_
#define SRC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace eof {

inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

constexpr uint64_t Fnv1a(std::string_view data, uint64_t seed = kFnvOffsetBasis) {
  uint64_t hash = seed;
  for (char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

constexpr uint64_t Fnv1aBytes(const uint8_t* data, size_t size,
                              uint64_t seed = kFnvOffsetBasis) {
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= kFnvPrime;
  }
  return hash;
}

// Mixes an integer into an existing hash (order-sensitive: the multiply precedes the
// xor, so HashCombine(a, b) != HashCombine(b, a) in general).
constexpr uint64_t HashCombine(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash *= kFnvPrime;
    hash ^= (value >> (i * 8)) & 0xff;
  }
  return hash;
}

// Derives an independent RNG seed for stream `stream` of a campaign seeded with
// `base_seed` (repetition indices, farm worker lanes). Hashing both words avoids
// the collisions of additive schemes, where adjacent base seeds and strides land
// on the same derived value (e.g. base+rep*K collides base b, rep r with base
// b+K, rep r-1).
constexpr uint64_t DeriveSeedStream(uint64_t base_seed, uint64_t stream) {
  return HashCombine(HashCombine(kFnvOffsetBasis, base_seed), stream);
}

}  // namespace eof

#endif  // SRC_COMMON_HASH_H_
